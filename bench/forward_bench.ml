(* The forwarding-plane sweep behind BENCH_5.json: what the de-boxed
   wire ({!Dift_parallel.Codec}) buys over the boxed one on the
   helper's side of the channel.

   Per (kernel, wire) the kernel's recorded event stream makes one
   trip through a channel whose ring is sized to hold the whole
   stream, so neither side ever blocks:

   - feed: every event encoded (coded) or enqueued (boxed) — the
     producer-side cost of the wire;
   - drain: every event decoded into the reused scratch view and run
     through a fresh Bool-taint engine — the helper-drain work the
     runtime's critical path is made of.

   Both legs are timed separately, best of [reps].  Aggregate
   helper-drain throughput = events / drain time; [drain_ratio] is
   coded over boxed and is what [check_regression] gates on (>= 1.3x
   on >= 2 kernels).  Each trip's final engine stats are compared
   across wires, so a trip that decoded the stream wrong fails loudly
   rather than producing a fast wrong number.

   The sweep also records the producer-side liveness filter's
   effectiveness per kernel (fraction of the stream dropped on a real
   two-domain run with [~forward_filter:true]) — the traffic the
   coded plane never even has to encode. *)

open Dift_vm
open Dift_core
open Dift_workloads
module Channel = Dift_parallel.Channel
module Parallel = Dift_parallel.Parallel
module Bool_engine = Engine.Make (Taint.Bool)

let now_ns = Dift_obs.Clock.now_ns

(* Run the kernel once, recording every executed event (same collector
   as engine_bench / shard_bench). *)
let record_events (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let acc = ref [] in
  let m = Machine.create w.Workload.program ~input in
  Machine.attach m
    (Tool.make ~on_exec:(fun e -> acc := e :: !acc) "bench-collector");
  ignore (Machine.run m);
  Array.of_list (List.rev !acc)

(* One trip: feed the whole pre-recorded stream, close, then drain
   into a fresh engine.  Returns (feed_ns, drain_ns, stats). *)
let trip ~wire ~batch_size ~table program events =
  let n = Array.length events in
  let ch =
    Channel.create ~wire ~queue_capacity:((n / batch_size) + 2) ~batch_size
      ~table ()
  in
  let eng = Bool_engine.create program in
  (* the trips are short: collect pending garbage now so no major
     slice lands inside a timed region *)
  Gc.full_major ();
  let t0 = now_ns () in
  Array.iter (Channel.add ch) events;
  Channel.close ch;
  let t1 = now_ns () in
  Channel.drain ch ~f:(Bool_engine.process_view eng);
  let t2 = now_ns () in
  (t1 - t0, t2 - t1, Bool_engine.stats eng)

type leg = { feed_ns : int; drain_ns : int }

type row = {
  kernel : string;
  events : int;
  boxed : leg;
  coded : leg;
  filtered_events : int;  (* liveness filter, real two-domain run *)
}

let best_trip ~reps ~wire ~batch_size ~table program events =
  let rec go best_feed best_drain stats n =
    if n = 0 then ({ feed_ns = best_feed; drain_ns = best_drain }, stats)
    else begin
      let f, d, s = trip ~wire ~batch_size ~table program events in
      go (min best_feed f) (min best_drain d) (Some s) (n - 1)
    end
  in
  go max_int max_int None (max 1 reps)

let kernels = [ "crc"; "qsort"; "matmul"; "treesum"; "feistel" ]

let run ?(size = 60) ?(seed = 3) ?(reps = 5) ?(batch_size = 64) () =
  List.map
    (fun kname ->
      let w = Spec_like.by_name kname in
      let program = w.Workload.program in
      (* same stream scaling as shard_bench: long enough that a trip
         dwarfs the clock granularity *)
      let ksize =
        match kname with
        | "matmul" -> size
        | "treesum" -> 16 * size
        | _ -> 6 * size
      in
      let events = record_events w ~size:ksize ~seed in
      let table = lazy (Site.of_program program) in
      let boxed, bstats =
        best_trip ~reps ~wire:`Boxed ~batch_size ~table program events
      in
      let coded, cstats =
        best_trip ~reps ~wire:`Coded ~batch_size ~table program events
      in
      (match (bstats, cstats) with
      | Some b, Some c when b <> c ->
          Fmt.failwith "forward_bench: %s decoded differently per wire" kname
      | _ -> ());
      let filtered_events =
        let input = w.Workload.input ~size:ksize ~seed in
        (Parallel.run ~forward_filter:true program ~input)
          .Parallel.filtered_events
      in
      {
        kernel = kname;
        events = Array.length events;
        boxed;
        coded;
        filtered_events;
      })
    kernels

let ms ns = float_of_int ns /. 1e6

(* Events per second through the helper-side drain. *)
let drain_rate ~events (l : leg) =
  float_of_int events *. 1e9 /. float_of_int (max 1 l.drain_ns)

(* Coded helper-drain throughput over boxed — the gated headline. *)
let drain_ratio r =
  drain_rate ~events:r.events r.coded /. drain_rate ~events:r.events r.boxed

let filtered_fraction r =
  float_of_int r.filtered_events /. float_of_int (max 1 r.events)

let json rows =
  let open Dift_obs.Json in
  let leg_json r (l : leg) =
    obj
      [
        ("feed_ms", Float (ms l.feed_ns));
        ("drain_ms", Float (ms l.drain_ns));
        ("drain_ev_per_s", Float (drain_rate ~events:r.events l));
      ]
  in
  obj
    [
      ("bench", String "forwarding-plane");
      ( "method",
        String
          "per (kernel, wire): the recorded stream makes one trip \
           through a channel sized to hold it whole (no blocking); \
           feed and drain timed separately, best of reps; drain runs a \
           fresh Bool-taint engine over the decoded views; \
           coded_vs_boxed = coded drain rate / boxed drain rate" );
      ("batch_size", Int 64);
      ( "results",
        List
          (List.map
             (fun r ->
               obj
                 [
                   ("kernel", String r.kernel);
                   ("events", Int r.events);
                   ("boxed", leg_json r r.boxed);
                   ("coded", leg_json r r.coded);
                   ("coded_vs_boxed", Float (drain_ratio r));
                   ("filtered_events", Int r.filtered_events);
                   ("filtered_fraction", Float (filtered_fraction r));
                 ])
             rows) );
    ]

let pp_rows ppf rows =
  Fmt.pf ppf "%-8s %8s %10s %10s %8s %10s@." "kernel" "events" "boxed ms"
    "coded ms" "ratio" "filtered";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %8d %10.3f %10.3f %7.2fx %9.1f%%@." r.kernel r.events
        (ms r.boxed.drain_ns) (ms r.coded.drain_ns) (drain_ratio r)
        (100.0 *. filtered_fraction r))
    rows
