(* The benchmark harness.

   Three parts:

   1. The experiment tables — one per table/claim in the paper's
      evaluation (E1..E10), regenerated at reduced scale (run
      `experiments` for the full-scale numbers used in
      EXPERIMENTS.md).

   2. Bechamel micro-benchmarks — one [Test.make] per experiment,
      timing the core operation each experiment stresses, so
      regressions in the *implementation's* real performance are
      visible (the tables above measure the modelled cycles, not wall
      clock).

   3. A machine-readable summary: the E11 inline-vs-helper wall-clock
      sweep serialized to BENCH_2.json (see docs/observability.md for
      the schema).  `bench --json [FILE]` writes only that file and
      skips the slow parts — the CI smoke path. *)

open Bechamel
open Toolkit
open Dift_vm
open Dift_core
open Dift_workloads

(* -- part 1: the paper's tables ------------------------------------------- *)

let print_tables () =
  Fmt.pr "===============================================================@.";
  Fmt.pr "Experiment tables (reduced scale; see EXPERIMENTS.md for full)@.";
  Fmt.pr "===============================================================@.@.";
  Dift_experiments.All.run_all ~scale:Dift_experiments.All.Quick Fmt.stdout

(* -- part 2: micro-benchmarks ---------------------------------------------- *)

let kernel_input (w : Workload.t) ~size ~seed = w.Workload.input ~size ~seed

let bench_interpreter =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"vm: interpret crc/60"
    (Staged.stage (fun () ->
         let m = Machine.create w.Workload.program ~input in
         ignore (Machine.run m)))

let bench_ontrac =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"e1/e2: ontrac trace crc/60"
    (Staged.stage (fun () ->
         let m = Machine.create w.Workload.program ~input in
         let tracer = Ontrac.create w.Workload.program in
         Ontrac.attach tracer m;
         ignore (Machine.run m)))

let bench_offline =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"e1: offline trace+postprocess crc/60"
    (Staged.stage (fun () ->
         let m = Machine.create w.Workload.program ~input in
         let off = Offline.create w.Workload.program in
         Offline.attach off m;
         ignore (Machine.run m);
         ignore (Offline.postprocess off)))

module Bool_engine = Engine.Make (Taint.Bool)

let bench_taint =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"e3: inline bool-taint crc/60"
    (Staged.stage (fun () ->
         let m = Machine.create w.Workload.program ~input in
         let eng = Bool_engine.create w.Workload.program in
         Bool_engine.attach eng m;
         ignore (Machine.run m)))

let bench_helper =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"e3: hw helper-thread dift crc/60"
    (Staged.stage (fun () ->
         ignore
           (Dift_multicore.Helper.run
              ~channel:Dift_multicore.Helper.Hardware w.Workload.program
              ~input)))

(* e11: the real two-domain runtime, wall clock.  One inline baseline
   plus a sweep of the forwarding-channel geometry: three ring
   capacities at a fixed batch size, and two batch sizes at a fixed
   capacity (batch 1 is the chatty, unamortised channel). *)

let bench_parallel_inline =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make ~name:"e11: inline (1 domain) dift crc/60"
    (Staged.stage (fun () ->
         ignore (Dift_parallel.Parallel.run_inline w.Workload.program ~input)))

let bench_parallel ~queue_capacity ~batch_size =
  let w = Spec_like.crc in
  let input = kernel_input w ~size:60 ~seed:1 in
  Test.make
    ~name:
      (Fmt.str "e11: helper-domain dift crc/60 (q=%d b=%d)" queue_capacity
         batch_size)
    (Staged.stage (fun () ->
         ignore
           (Dift_parallel.Parallel.run ~queue_capacity ~batch_size
              w.Workload.program ~input)))

let bench_parallel_q4 = bench_parallel ~queue_capacity:4 ~batch_size:64
let bench_parallel_q64 = bench_parallel ~queue_capacity:64 ~batch_size:64
let bench_parallel_q1024 = bench_parallel ~queue_capacity:1024 ~batch_size:64
let bench_parallel_b1 = bench_parallel ~queue_capacity:64 ~batch_size:1
let bench_parallel_b256 = bench_parallel ~queue_capacity:64 ~batch_size:256

let bench_reduction =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:30 ~seed:11 ~faulty:true () in
  Test.make ~name:"e4: execution-reduction pipeline (30 reqs)"
    (Staged.stage (fun () ->
         ignore
           (Dift_replay.Rerun.run ~checkpoint_every:2_000 p
              ~input:batch.Server_sim.input)))

let bench_stm =
  let p = Splash_like.spin_barrier ~threads:2 ~phases:2 () in
  Test.make ~name:"e5: stm sync-aware spin-barrier"
    (Staged.stage (fun () ->
         let t = Dift_tm.Stm_exec.create p ~input:[||] in
         ignore (Dift_tm.Stm_exec.run t)))

let bench_attack =
  let c = Vulnerable.stack_smash in
  Test.make ~name:"e6: pc-taint attack detection (stack-smash)"
    (Staged.stage (fun () ->
         ignore
           (Dift_attack.Detector.protect c.Vulnerable.program
              ~input:c.Vulnerable.attack_input)))

let bench_lineage_naive =
  let pl = Scientific.prefix_sum in
  Test.make ~name:"e7: lineage naive-sets prefix-sum/100"
    (Staged.stage (fun () ->
         ignore (Dift_lineage.Tracer.run_naive pl ~size:100 ~seed:3)))

let bench_lineage_robdd =
  let pl = Scientific.prefix_sum in
  Test.make ~name:"e7: lineage roBDD prefix-sum/100"
    (Staged.stage (fun () ->
         ignore (Dift_lineage.Tracer.run_robdd pl ~size:100 ~seed:3)))

let bench_slicing =
  (* build the graph once; benchmark the slicing traversal *)
  let w = Spec_like.qsort in
  let input = kernel_input w ~size:60 ~seed:2 in
  let m = Machine.create w.Workload.program ~input in
  let tracer = Ontrac.create w.Workload.program in
  Ontrac.attach tracer m;
  ignore (Machine.run m);
  let g, ws = Ontrac.final_graph tracer in
  let out = match Slicing.last_output g with Some s -> s | None -> 0 in
  Test.make ~name:"e8: backward slice qsort/60"
    (Staged.stage (fun () ->
         ignore (Slicing.backward ~window_start:ws g ~criterion:[ out ])))

let bench_pred_switch =
  let c = Buggy.omission_guard in
  Test.make ~name:"e8: predicate switching (omission-guard)"
    (Staged.stage (fun () ->
         ignore
           (Dift_faultloc.Pred_switch.search c.Buggy.program
              ~input:c.Buggy.failing_input)))

let bench_avoidance =
  let c = Vulnerable.heap_overflow in
  let config = { Machine.default_config with check_bounds = true } in
  Test.make ~name:"e9: avoidance search (heap overflow)"
    (Staged.stage (fun () ->
         ignore
           (Dift_avoidance.Framework.avoid ~config c.Vulnerable.program
              ~input:c.Vulnerable.attack_input)))

let bench_races =
  let p = Splash_like.bank_racy ~threads:2 () in
  let input = Splash_like.bank_input ~size:40 ~seed:0 in
  Test.make ~name:"e10: sync-aware race detection (bank-racy)"
    (Staged.stage (fun () ->
         let config =
           { Machine.default_config with quantum_min = 2; quantum_max = 9 }
         in
         let m = Machine.create ~config p ~input in
         let det =
           Dift_faultloc.Race_detect.create Dift_faultloc.Race_detect.Sync_aware
         in
         Dift_faultloc.Race_detect.attach det m;
         ignore (Machine.run m)))

let bench_bdd =
  Test.make ~name:"substrate: bdd union of 64-wide windows"
    (Staged.stage (fun () ->
         let man = Dift_bdd.Bdd.manager () in
         let s =
           List.fold_left
             (fun acc i ->
               Dift_bdd.Bdd.union man acc
                 (Dift_bdd.Bdd.of_list man (List.init 64 (fun j -> i + j))))
             Dift_bdd.Bdd.zero
             (List.init 32 (fun i -> i * 8))
         in
         ignore (Dift_bdd.Bdd.cardinal s)))

let tests =
  Test.make_grouped ~name:"dift" ~fmt:"%s %s"
    [
      bench_interpreter;
      bench_ontrac;
      bench_offline;
      bench_taint;
      bench_helper;
      bench_parallel_inline;
      bench_parallel_q4;
      bench_parallel_q64;
      bench_parallel_q1024;
      bench_parallel_b1;
      bench_parallel_b256;
      bench_reduction;
      bench_stm;
      bench_attack;
      bench_lineage_naive;
      bench_lineage_robdd;
      bench_slicing;
      bench_pred_switch;
      bench_avoidance;
      bench_races;
      bench_bdd;
    ]

let run_benchmarks () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let instances = Instance.[ monotonic_clock; minor_allocated ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Fmt.pr "@.=================================================@.";
  Fmt.pr "Micro-benchmarks (wall clock of this implementation)@.";
  Fmt.pr "=================================================@.@.";
  Fmt.pr "%-50s %14s %16s@." "benchmark" "time/run" "minor words/run";
  let time_tbl = List.nth results 0 in
  let alloc_tbl = List.nth results 1 in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) time_tbl [] |> List.sort compare
  in
  List.iter
    (fun name ->
      let estimate tbl =
        match Hashtbl.find_opt tbl name with
        | Some ols -> (
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | Some [] | None -> nan)
        | None -> nan
      in
      let time_ns = estimate time_tbl in
      let words = estimate alloc_tbl in
      let time_str =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Fmt.str "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Fmt.str "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Fmt.str "%.2f us" (time_ns /. 1e3)
        else Fmt.str "%.0f ns" time_ns
      in
      Fmt.pr "%-50s %14s %16s@." name time_str
        (if Float.is_nan words then "n/a" else Fmt.str "%.0f" words))
    names

(* -- part 3: machine-readable E11 summary ---------------------------------- *)

let bench_json () =
  let open Dift_obs.Json in
  (* size 200 / best-of-10: at the default sweep size the kernel runs
     in tens of microseconds, so the fixed domain spawn/join cost (and
     its scheduling noise, especially on single-core runners) swamps
     the quantity being measured; a longer kernel amortises it and the
     deeper best-of tightens the cost-floor estimate *)
  let r = Dift_experiments.E11_parallel.run ~size:200 ~reps:10 () in
  obj
    [
      ("bench", String "e11-two-domain-dift");
      ("kernel", String r.Dift_experiments.E11_parallel.kernel);
      ("native_ms", Float r.Dift_experiments.E11_parallel.native_ms);
      ("inline_ms", Float r.Dift_experiments.E11_parallel.inline_ms);
      (* inline-DIFT slowdown over the uninstrumented run — the
         sequential-overhead baseline every speedup is judged against *)
      ( "inline_vs_native",
        Float
          (r.Dift_experiments.E11_parallel.inline_ms
          /. r.Dift_experiments.E11_parallel.native_ms) );
      ( "configs",
        List
          (List.map
             (fun (row : Dift_experiments.E11_parallel.row) ->
               obj
                 [
                   ("queue_capacity", Int row.queue_capacity);
                   ("batch_size", Int row.batch_size);
                   ("main_ms", Float row.main_ms);
                   ("total_ms", Float row.total_ms);
                   ("stalls", Int row.stalls);
                   ("speedup_vs_inline", Float row.speedup);
                   ("main_ratio", Float row.main_ratio);
                 ])
             r.Dift_experiments.E11_parallel.rows) );
    ]

let write_bench_json file =
  let json = Dift_obs.Json.to_string (bench_json ()) in
  if file = "-" then print_string json
  else begin
    let oc = open_out file in
    output_string oc json;
    close_out oc;
    Fmt.pr "wrote %s@." file
  end

(* The engine micro-sweep (shadow impl x domain x kernel; see
   engine_bench.ml) serialized to BENCH_3.json. *)
let write_engine_json ?size ?reps file =
  let rows = Engine_bench.run ?size ?reps () in
  Engine_bench.pp_rows Fmt.stdout rows;
  let json = Dift_obs.Json.to_string (Engine_bench.json rows) in
  if file = "-" then print_string json
  else begin
    let oc = open_out file in
    output_string oc json;
    close_out oc;
    Fmt.pr "wrote %s@." file
  end

(* The forwarding-plane sweep (kernel x wire, feed/drain trip; see
   forward_bench.ml) serialized to BENCH_5.json. *)
let write_forward_json ?size ?reps file =
  let rows = Forward_bench.run ?size ?reps () in
  Forward_bench.pp_rows Fmt.stdout rows;
  let json = Dift_obs.Json.to_string (Forward_bench.json rows) in
  if file = "-" then print_string json
  else begin
    let oc = open_out file in
    output_string oc json;
    close_out oc;
    Fmt.pr "wrote %s@." file
  end

(* The shard-scaling sweep (kernel x shard count, two-pass journal
   replay; see shard_bench.ml) serialized to BENCH_4.json. *)
let write_shard_json ?size ?reps file =
  let rows = Shard_bench.run ?size ?reps () in
  Shard_bench.pp_rows Fmt.stdout rows;
  let json = Dift_obs.Json.to_string (Shard_bench.json rows) in
  if file = "-" then print_string json
  else begin
    let oc = open_out file in
    output_string oc json;
    close_out oc;
    Fmt.pr "wrote %s@." file
  end

let () =
  (* `bench --json [FILE]`: only the machine-readable E11 summary;
     `bench --engine-json [FILE]`: only the engine micro-sweep;
     `bench --shard-json [FILE]`: only the shard-scaling sweep;
     `bench --forward-json [FILE]`: only the forwarding-plane sweep
     (`--smoke` shrinks any sweep to the CI scale).  Plain `bench`:
     tables + micro-benchmarks, then all four summaries next to the
     current directory. *)
  match Array.to_list Sys.argv with
  | _ :: "--json" :: rest ->
      write_bench_json (match rest with f :: _ -> f | [] -> "BENCH_2.json")
  | _ :: "--engine-json" :: rest ->
      let smoke = List.mem "--smoke" rest in
      let file =
        match List.filter (fun a -> a <> "--smoke") rest with
        | f :: _ -> f
        | [] -> "BENCH_3.json"
      in
      if smoke then write_engine_json ~size:25 ~reps:3 file
      else write_engine_json file
  | _ :: "--shard-json" :: rest ->
      let smoke = List.mem "--smoke" rest in
      let file =
        match List.filter (fun a -> a <> "--smoke") rest with
        | f :: _ -> f
        | [] -> "BENCH_4.json"
      in
      if smoke then write_shard_json ~size:40 ~reps:3 file
      else write_shard_json file
  | _ :: "--forward-json" :: rest ->
      let smoke = List.mem "--smoke" rest in
      let file =
        match List.filter (fun a -> a <> "--smoke") rest with
        | f :: _ -> f
        | [] -> "BENCH_5.json"
      in
      if smoke then write_forward_json ~size:40 ~reps:3 file
      else write_forward_json file
  | _ ->
      print_tables ();
      run_benchmarks ();
      write_bench_json "BENCH_2.json";
      write_engine_json "BENCH_3.json";
      write_shard_json "BENCH_4.json";
      write_forward_json "BENCH_5.json"
