(* The engine micro-benchmark sweep behind BENCH_3.json: the taint hot
   path measured in isolation, shadow implementation x taint domain x
   kernel.

   Method: each kernel runs once under a collector tool that records
   its full event stream; the stream is then replayed through a fresh
   DIFT engine (so the VM's interpretation cost is excluded and both
   shadow implementations see the byte-identical stream), best of
   [reps] runs.  Two levels per (kernel, domain) pair:

   - engine: the whole per-event transfer function
     ({!Dift_core.Engine.process} under the security policy) over the
     paged shadow ({!Dift_core.Shadow.Make}) and the hashtable
     reference ({!Dift_core.Shadow.Make_ref});

   - shadow: the bare location traffic of the same stream (a [get]
     per read, a [set] per write, sources injected periodically) —
     the data-structure cost with the transfer function factored out.

   [check_regression] re-runs this sweep in-process and fails CI if
   the paged shadow has become slower than the reference. *)

open Dift_vm
open Dift_core
open Dift_workloads

let now_ns = Dift_obs.Clock.now_ns

(* Best of [reps] measurements; each builds fresh state with [setup]
   (untimed — engine construction must not pollute per-event costs),
   then times [inner] replays of the stream over it.  Repeated replay
   both lifts short streams above the clock granularity and measures
   the steady state: after the first pass the shadow is warm, which is
   exactly the regime the hot path is optimised for. *)
let best_ns ~reps ~inner ~setup run =
  let rec go best n =
    if n = 0 then best
    else begin
      let st = setup () in
      let t0 = now_ns () in
      for _ = 1 to inner do
        run st
      done;
      go (min best (now_ns () - t0)) (n - 1)
    end
  in
  go max_int (max 1 reps)

(* Run the kernel once, recording every executed event. *)
let record_events (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let acc = ref [] in
  let m = Machine.create w.Workload.program ~input in
  Machine.attach m
    (Tool.make ~on_exec:(fun e -> acc := e :: !acc) "bench-collector");
  ignore (Machine.run m);
  Array.of_list (List.rev !acc)

module Sweep (D : Taint.DOMAIN) = struct
  module EP = Engine.Make (D)
  module ER = Engine.Make_over (Shadow.Make_ref) (D)
  module SP = Shadow.Make (D)
  module SR = Shadow.Make_ref (D)

  let engine_paged_ns ~reps ~inner program events =
    best_ns ~reps ~inner
      ~setup:(fun () -> EP.create ~policy:Policy.security program)
      (fun eng -> Array.iter (EP.process eng) events)

  let engine_ref_ns ~reps ~inner program events =
    best_ns ~reps ~inner
      ~setup:(fun () -> ER.create ~policy:Policy.security program)
      (fun eng -> Array.iter (ER.process eng) events)

  (* The bare shadow traffic of the stream: a get per read, a set per
     write.  Every 16th event writes a fresh source (so pages fill and
     the table grows); the rest write the join of the event's reads
     (so non-trivial values flow through both structures).  The loops
     are closure-free recursions so the harness adds as little as
     possible on top of the get/set costs being compared. *)
  module Traffic (S : Shadow.S with type elt = D.t) = struct
    let rec join_reads sh acc = function
      | [] -> acc
      | l :: rest -> join_reads sh (D.join acc (S.get sh l)) rest

    let rec set_writes sh v = function
      | [] -> ()
      | l :: rest ->
          S.set sh l v;
          set_writes sh v rest

    let run sh events =
      let n = Array.length events in
      for i = 0 to n - 1 do
        let e : Event.exec = Array.unsafe_get events i in
        let v = join_reads sh D.bottom e.Event.reads in
        let v =
          if e.Event.step land 15 = 0 then
            D.join v
              (D.source ~input_index:(e.Event.step land 7) ~step:e.Event.step)
          else v
        in
        set_writes sh v e.Event.writes
      done
  end

  module Traffic_paged = Traffic (SP)
  module Traffic_ref = Traffic (SR)

  let shadow_paged_ns ~reps ~inner events =
    best_ns ~reps ~inner ~setup:SP.create (fun sh ->
        Traffic_paged.run sh events)

  let shadow_ref_ns ~reps ~inner events =
    best_ns ~reps ~inner ~setup:SR.create (fun sh -> Traffic_ref.run sh events)
end

module Sweep_bool = Sweep (Taint.Bool)
module Sweep_pc = Sweep (Taint.Pc)
module Sweep_set = Sweep (Taint.Input_set)

type level = {
  paged_ns : int;
  ref_ns : int;
}

type row = {
  kernel : string;
  domain : string;
  events : int;
  engine : level;
  shadow : level;
}

let speedup l =
  if l.paged_ns <= 0 then 1.0
  else float_of_int l.ref_ns /. float_of_int l.paged_ns

let kernels = [ "crc"; "qsort"; "hash"; "matmul" ]

let run ?(size = 60) ?(seed = 3) ?(reps = 5) ?(target = 100_000) () =
  List.concat_map
    (fun kname ->
      let w = Spec_like.by_name kname in
      let events = record_events w ~size ~seed in
      let n = Array.length events in
      (* replay short streams until ~[target] events are processed per
         timed measurement *)
      let inner = max 1 ((target + n - 1) / n) in
      let program = w.Workload.program in
      let row domain engine shadow =
        { kernel = kname; domain; events = n * inner; engine; shadow }
      in
      [
        row "bool"
          {
            paged_ns = Sweep_bool.engine_paged_ns ~reps ~inner program events;
            ref_ns = Sweep_bool.engine_ref_ns ~reps ~inner program events;
          }
          {
            paged_ns = Sweep_bool.shadow_paged_ns ~reps ~inner events;
            ref_ns = Sweep_bool.shadow_ref_ns ~reps ~inner events;
          };
        row "pc"
          {
            paged_ns = Sweep_pc.engine_paged_ns ~reps ~inner program events;
            ref_ns = Sweep_pc.engine_ref_ns ~reps ~inner program events;
          }
          {
            paged_ns = Sweep_pc.shadow_paged_ns ~reps ~inner events;
            ref_ns = Sweep_pc.shadow_ref_ns ~reps ~inner events;
          };
        row "input-set"
          {
            paged_ns = Sweep_set.engine_paged_ns ~reps ~inner program events;
            ref_ns = Sweep_set.engine_ref_ns ~reps ~inner program events;
          }
          {
            paged_ns = Sweep_set.shadow_paged_ns ~reps ~inner events;
            ref_ns = Sweep_set.shadow_ref_ns ~reps ~inner events;
          };
      ])
    kernels

let ns_per_event row ns = float_of_int ns /. float_of_int (max 1 row.events)

let json rows =
  let open Dift_obs.Json in
  let level_json row l =
    obj
      [
        ("paged_ns_per_event", Float (ns_per_event row l.paged_ns));
        ("ref_ns_per_event", Float (ns_per_event row l.ref_ns));
        ("paged_speedup", Float (speedup l));
      ]
  in
  obj
    [
      ("bench", String "engine-micro");
      ("method", String "recorded event streams replayed, best-of-reps");
      ( "results",
        List
          (List.map
             (fun r ->
               obj
                 [
                   ("kernel", String r.kernel);
                   ("domain", String r.domain);
                   ("events", Int r.events);
                   ("engine", level_json r r.engine);
                   ("shadow", level_json r r.shadow);
                 ])
             rows) );
    ]

let pp_rows ppf rows =
  Fmt.pf ppf "%-8s %-10s %8s %18s %18s@." "kernel" "domain" "events"
    "engine paged/ref" "shadow paged/ref";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-8s %-10s %8d %7.1f/%-7.1fx%4.2f %7.1f/%-7.1fx%4.2f@."
        r.kernel r.domain r.events
        (ns_per_event r r.engine.paged_ns)
        (ns_per_event r r.engine.ref_ns)
        (speedup r.engine)
        (ns_per_event r r.shadow.paged_ns)
        (ns_per_event r r.shadow.ref_ns)
        (speedup r.shadow))
    rows
