(* CI gate for the performance claims: re-runs the engine micro-sweep
   and the shard-scaling sweep in-process (smoke scale) and fails
   loudly if either regresses.

   Two checks over the sweep of {!Engine_bench}:

   - no row — any kernel, any domain, engine or bare-shadow level —
     may show the paged shadow slower than the reference beyond a
     noise tolerance;

   - the headline claim must hold: for the Bool domain the bare
     shadow traffic must be at least 2x faster on a majority of
     kernels (the single-core CI box is noisy, so the gate asks for 2
     of 3 rather than all).

   One check over the sweep of {!Shard_bench}: the 4-shard aggregate
   drain rate must stay >= 1.5x the 1-shard rate on at least two
   kernels.

   One check over the sweep of {!Forward_bench}: the coded wire's
   helper-drain throughput must stay >= 1.3x the boxed wire's on at
   least two kernels (BENCH_5.json's headline).

   Exit status 1 with a per-row report on failure. *)

(* The shared-runner tolerance: a row only fails if paged is >15%
   slower than the reference. *)
let tolerance = 0.85

let () =
  let rows = Engine_bench.run ~size:25 ~reps:3 () in
  Engine_bench.pp_rows Fmt.stdout rows;
  let failures = ref [] in
  let fail fmt = Fmt.kstr (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun (r : Engine_bench.row) ->
      let e = Engine_bench.speedup r.Engine_bench.engine in
      let s = Engine_bench.speedup r.Engine_bench.shadow in
      if e < tolerance then
        fail "%s/%s: engine with paged shadow %.2fx the reference (slower)"
          r.Engine_bench.kernel r.Engine_bench.domain e;
      if s < tolerance then
        fail "%s/%s: paged shadow traffic %.2fx the reference (slower)"
          r.Engine_bench.kernel r.Engine_bench.domain s)
    rows;
  let bool_2x =
    List.length
      (List.filter
         (fun (r : Engine_bench.row) ->
           r.Engine_bench.domain = "bool"
           && Engine_bench.speedup r.Engine_bench.shadow >= 2.0)
         rows)
  in
  if bool_2x < 2 then
    fail
      "bool shadow traffic >=2x faster than the hashtable on only %d \
       kernel(s); need >=2"
      bool_2x;
  (* The shard-scaling gate (BENCH_4.json; see shard_bench.ml): at 4
     shards the aggregate drain rate must be at least 1.5x the
     one-shard rate on at least two kernels.  The call-dense kernels
     (treesum, feistel) are the ones expected to scale — frame
     striping spreads their activations — while the single-frame
     loops are expected to sit near 1x; the gate fails only if the
     scaling story itself regresses. *)
  let srows = Shard_bench.run ~size:40 ~reps:5 () in
  Shard_bench.pp_rows Fmt.stdout srows;
  let scaling =
    List.length
      (List.filter (fun r -> Shard_bench.speedup_at ~shards:4 r >= 1.5) srows)
  in
  if scaling < 2 then
    fail
      "sharded drain rate >=1.5x at 4 shards on only %d kernel(s); need >=2"
      scaling;
  (* The forwarding-plane gate (BENCH_5.json; see forward_bench.ml):
     the de-boxed wire must keep its helper-drain advantage on at
     least two kernels.  The long-stream kernels (qsort, feistel) are
     the ones expected to clear it comfortably; the gate fails only
     if the coded plane's advantage itself regresses. *)
  let frows = Forward_bench.run ~size:40 ~reps:5 () in
  Forward_bench.pp_rows Fmt.stdout frows;
  let deboxed =
    List.length
      (List.filter (fun r -> Forward_bench.drain_ratio r >= 1.3) frows)
  in
  if deboxed < 2 then
    fail
      "coded drain rate >=1.3x the boxed wire on only %d kernel(s); need >=2"
      deboxed;
  match !failures with
  | [] ->
      Fmt.pr
        "@.check_regression: paged shadow, sharded runtime and de-boxed \
         wire hold their speedups@."
  | fs ->
      Fmt.epr "@.check_regression FAILED:@.";
      List.iter (fun f -> Fmt.epr "  - %s@." f) (List.rev fs);
      exit 1
