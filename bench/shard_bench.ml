(* The shard-scaling sweep behind BENCH_4.json: how the tracking work
   of the sharded runtime ({!Dift_parallel.Shard_engine}) divides
   across N helper shards.

   The CI box exposes a single hardware core, so wall-clocking the
   concurrent cluster measures time-slicing, not scaling.  The sweep
   therefore runs in two passes per (kernel, shard count):

   - pass 1 (concurrent): the kernel's recorded event stream runs
     through a real N-worker exchange mesh with journaling on.  This
     pass establishes correctness — the merged fingerprint must match
     a sequential replay of the same stream — and records, per ring,
     exactly which taint vectors each shard consumed;

   - pass 2 (isolated): each shard is replayed alone — fresh worker,
     exchange rings prefilled from the pass-1 journals, capacities
     sized so no push or pop can ever block — and timed, best of
     [reps].  The isolated busy time is that shard's true tracking
     work, independent of scheduling.  The isolated workers are merged
     and fingerprint-checked again, so the replay provably did the
     same work.

   Aggregate drain rate = events / max isolated shard busy: the
   throughput the slowest shard sustains, i.e. what the cluster
   drains on a machine with one core per shard.  [speedup_at] divides
   a point's drain rate by the one-shard rate of the same stream;
   [check_regression] gates on it. *)

open Dift_vm
open Dift_core
open Dift_workloads
module Router = Dift_parallel.Router
module B = Dift_parallel.Shard_engine.Make (Taint.Bool)

let now_ns = Dift_obs.Clock.now_ns

(* Run the kernel once, recording every executed event (same collector
   as engine_bench). *)
let record_events (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let acc = ref [] in
  let m = Machine.create w.Workload.program ~input in
  Machine.attach m
    (Tool.make ~on_exec:(fun e -> acc := e :: !acc) "bench-collector");
  ignore (Machine.run m);
  Array.of_list (List.rev !acc)

(* Pre-route the stream: shard [s] receives every event whose
   participant mask names it — exactly what [Shard_engine.feed]
   delivers down the per-shard channels. *)
let route_streams router events =
  let shards = Router.shards router in
  let cross = ref 0 in
  let buckets = Array.make shards [] in
  Array.iter
    (fun e ->
      let mask = Router.participants router e in
      if not (Router.is_local mask) then incr cross;
      Router.iter_shards mask (fun s -> buckets.(s) <- e :: buckets.(s)))
    events;
  (!cross, Array.map (fun l -> Array.of_list (List.rev l)) buckets)

(* Pass 1: drive the pre-routed streams through a journaling mesh with
   one domain per shard; return the merged result, the per-ring
   consumption journals and the total exchange volume. *)
let concurrent_journals ~router ~shards program streams =
  let xchg = B.create_xchg ~capacity:256 ~journal:true ~shards () in
  let workers =
    Array.init shards (fun s ->
        B.worker ~router ~route:`Request_reply ~xchg ~record_sinks:false
          ~shard:s program)
  in
  let doms =
    Array.init shards (fun s ->
        Domain.spawn (fun () ->
            try Array.iter (B.handle workers.(s)) streams.(s)
            with e ->
              B.abort_xchg xchg;
              raise e))
  in
  Array.iter Domain.join doms;
  let journals =
    Array.init shards (fun src ->
        Array.init shards (fun dst -> B.journal xchg ~src ~dst))
  in
  let messages =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc j -> acc + List.length j) acc row)
      0 journals
  in
  (B.merge workers, journals, messages)

(* Pass 2: replay shard [s]'s stream against an isolated worker whose
   inbound exchange rings are prefilled from the journals.  Capacity
   covers the largest journal on any ring, so the shard's own pushes
   land in empty rings and its pops hit prefilled ones — nothing
   blocks, and the measured time is pure tracking work.  Returns the
   best-of-[reps] time and the (deterministic) final worker. *)
let isolated ~reps ~router ~shards ~journals program stream s =
  let cap =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc j -> max acc (List.length j)) acc row)
      1 journals
  in
  let setup () =
    let xchg = B.create_xchg ~capacity:(cap + 1) ~shards () in
    for src = 0 to shards - 1 do
      if src <> s then B.prefill xchg ~src ~dst:s journals.(src).(s)
    done;
    let w =
      B.worker ~router ~route:`Request_reply ~xchg ~record_sinks:false
        ~shard:s program
    in
    (* the replays are short (tens of microseconds): collect pending
       garbage now so no major slice lands inside the timed region *)
    Gc.full_major ();
    w
  in
  let rec go best last n =
    if n = 0 then (best, Option.get last)
    else begin
      let w = setup () in
      let t0 = now_ns () in
      Array.iter (B.handle w) stream;
      go (min best (now_ns () - t0)) (Some w) (n - 1)
    end
  in
  go max_int None (max 1 reps)

type point = {
  shards : int;
  cross_events : int;
  exchange_messages : int;
  busy_ns : int array;  (* per shard, isolated replay *)
}

type row = {
  kernel : string;
  events : int;
  sweep : point list;
}

let max_busy p = Array.fold_left max 1 p.busy_ns
let sum_busy p = Array.fold_left ( + ) 0 p.busy_ns

(* Events per second at the pace of the slowest shard. *)
let drain_rate ~events p = float_of_int events *. 1e9 /. float_of_int (max_busy p)

(* Drain rate of the [shards]-shard point over the one-shard point. *)
let speedup_at ~shards r =
  match
    ( List.find_opt (fun p -> p.shards = shards) r.sweep,
      List.find_opt (fun p -> p.shards = 1) r.sweep )
  with
  | Some p, Some base ->
      drain_rate ~events:r.events p /. drain_rate ~events:r.events base
  | _ -> 1.0

let shard_counts = [ 1; 2; 4 ]
let kernels = [ "crc"; "qsort"; "matmul"; "treesum"; "feistel" ]

let run ?(size = 60) ?(seed = 3) ?(reps = 5) () =
  List.map
    (fun kname ->
      let w = Spec_like.by_name kname in
      let program = w.Workload.program in
      (* event counts grow as O(n^3) for matmul but O(n)-ish for the
         rest; scale the linear kernels up so their streams are long
         enough that a per-shard replay dwarfs the clock granularity
         (treesum emits the fewest events per element, so it gets the
         largest factor) *)
      let ksize =
        match kname with
        | "matmul" -> size
        | "treesum" -> 16 * size
        | _ -> 6 * size
      in
      let events = record_events w ~size:ksize ~seed in
      let reference = B.sequential program (Array.to_list events) in
      let sweep =
        List.map
          (fun shards ->
            let router = Router.create ~shards () in
            let cross_events, streams = route_streams router events in
            let m1, journals, exchange_messages =
              concurrent_journals ~router ~shards program streams
            in
            if m1.B.m_fingerprint <> reference.B.m_fingerprint then
              Fmt.failwith
                "shard_bench: %s at %d shards diverged from sequential" kname
                shards;
            let iso =
              Array.init shards (fun s ->
                  isolated ~reps ~router ~shards ~journals program streams.(s)
                    s)
            in
            let m2 = B.merge (Array.map snd iso) in
            if m2.B.m_fingerprint <> reference.B.m_fingerprint then
              Fmt.failwith
                "shard_bench: %s isolated replay at %d shards diverged" kname
                shards;
            {
              shards;
              cross_events;
              exchange_messages;
              busy_ns = Array.map fst iso;
            })
          shard_counts
      in
      { kernel = kname; events = Array.length events; sweep })
    kernels

let ms ns = float_of_int ns /. 1e6

let json rows =
  let open Dift_obs.Json in
  let point_json r p =
    obj
      [
        ("shards", Int p.shards);
        ("cross_events", Int p.cross_events);
        ("exchange_messages", Int p.exchange_messages);
        ( "per_shard_busy_ms",
          List (Array.to_list (Array.map (fun ns -> Float (ms ns)) p.busy_ns))
        );
        ("max_busy_ms", Float (ms (max_busy p)));
        ("sum_busy_ms", Float (ms (sum_busy p)));
        ("drain_ev_per_s", Float (drain_rate ~events:r.events p));
        ("speedup_vs_1", Float (speedup_at ~shards:p.shards r));
      ]
  in
  obj
    [
      ("bench", String "shard-scaling");
      ( "method",
        String
          "two-pass journal replay: a concurrent pass records per-ring \
           exchange journals, then each shard is replayed in isolation \
           against prefilled rings; drain rate = events / max isolated \
           shard busy" );
      ("route", String "request-reply");
      ("block_bits", Int Router.default_block_bits);
      ( "results",
        List
          (List.map
             (fun r ->
               obj
                 [
                   ("kernel", String r.kernel);
                   ("events", Int r.events);
                   ("sweep", List (List.map (point_json r) r.sweep));
                 ])
             rows) );
    ]

let pp_rows ppf rows =
  Fmt.pf ppf "%-8s %8s %7s %6s %6s %10s %10s %8s@." "kernel" "events" "shards"
    "cross" "msgs" "max ms" "sum ms" "vs 1";
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Fmt.pf ppf "%-8s %8d %7d %6d %6d %10.3f %10.3f %7.2fx@." r.kernel
            r.events p.shards p.cross_events p.exchange_messages
            (ms (max_busy p)) (ms (sum_busy p))
            (speedup_at ~shards:p.shards r))
        r.sweep)
    rows
