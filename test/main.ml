(* Test runner aggregating every suite. *)

let () =
  Alcotest.run "dift"
    [
      ("isa", Test_isa.suite);
      ("vm", Test_vm.suite);
      ("core", Test_core.suite);
      ("shadow-diff", Test_shadow_diff.suite);
      ("workloads", Test_workloads.suite);
      ("bdd", Test_bdd.suite);
      ("lineage", Test_lineage.suite);
      ("replay", Test_replay.suite);
      ("tm", Test_tm.suite);
      ("tm-extra", Test_tm_extra.suite);
      ("multicore", Test_multicore.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("parallel", Test_parallel.suite);
      ("codec", Test_codec.suite);
      ("sharded", Test_sharded.suite);
      ("faults", Test_faults.suite);
      ("watchdog", Test_watchdog.suite);
      ("postmortem", Test_postmortem.suite);
      ("faultloc", Test_faultloc.suite);
      ("attack", Test_attack.suite);
      ("avoidance", Test_avoidance.suite);
      ("adaptive", Test_adaptive.suite);
      ("extra", Test_extra.suite);
      ("properties", Test_props.suite);
      ("experiments", Test_experiments.suite);
    ]
