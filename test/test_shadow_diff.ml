(* Differential tests for the flat paged shadow (Shadow.Make /
   Shadow_pages) against the hashtable reference (Shadow.Make_ref /
   Shadow_ref): identical operation streams must produce bit-identical
   observable state — point lookups, fold contents, and the
   incremental tainted_locations / footprint_words accounting — for
   every taint domain, and a full engine built over either shadow must
   be observationally identical on real kernels. *)

open Dift_isa
open Dift_vm
open Dift_core
open Dift_workloads

let check = Alcotest.check

(* -- a domain-generic operation language --------------------------------

   Taint values are generated as little expression trees over the
   DOMAIN operations themselves, so one generator covers Bool's two
   points, Pc's site records and Input_set's oversized (multi-word)
   sets alike. *)

type vexp =
  | Vbot
  | Vsrc of int * int  (** input_index, step *)
  | Vjoin of vexp * vexp
  | Vwrite of int * int * vexp  (** step, pc, inner *)

type op =
  | Set of int * vexp  (** loc, value *)
  | Clear of int

let rec pp_vexp ppf = function
  | Vbot -> Fmt.string ppf "bot"
  | Vsrc (i, s) -> Fmt.pf ppf "src(%d,%d)" i s
  | Vjoin (a, b) -> Fmt.pf ppf "join(%a,%a)" pp_vexp a pp_vexp b
  | Vwrite (s, pc, v) -> Fmt.pf ppf "wr(%d,%d,%a)" s pc pp_vexp v

let pp_op ppf = function
  | Set (l, v) -> Fmt.pf ppf "set %d %a" l pp_vexp v
  | Clear l -> Fmt.pf ppf "clear %d" l

(* Locations: dense small memory (in-page churn), sparse large memory
   (directory growth in the paged shadow), and register locations in a
   few frames (the other plane).  Built through the Loc constructors,
   so the encoding stays an implementation detail. *)
let loc_gen =
  QCheck2.Gen.(
    oneof
      [
        map Loc.mem (int_bound 200);
        map (fun a -> Loc.mem (a * 4097)) (int_bound 1023);
        (* beyond the first 2^22 words: several directory doublings *)
        map (fun a -> Loc.mem ((1 lsl 22) + (a * 65537))) (int_bound 63);
        map2
          (fun frame r -> Loc.reg ~frame (Reg.make r))
          (int_bound 5)
          (int_bound (Reg.count - 1));
      ])

let vexp_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        let src = map2 (fun i s -> Vsrc (i, s)) (int_bound 30) (int_bound 99) in
        if n <= 0 then oneof [ return Vbot; src ]
        else
          frequency
            [
              (1, return Vbot);
              (3, src);
              (* joins of joins: Input_set values spanning many words *)
              (3, map2 (fun a b -> Vjoin (a, b)) (self (n / 2)) (self (n / 2)));
              ( 2,
                map3
                  (fun s pc v -> Vwrite (s, pc, v))
                  (int_bound 99) (int_bound 30)
                  (self (n - 1)) );
            ]))

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun l v -> Set (l, v)) loc_gen vexp_gen);
        (2, map (fun l -> Clear l) loc_gen);
        (* explicit set-to-bottom, distinct from Clear in the API *)
        (1, map (fun l -> Set (l, Vbot)) loc_gen);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 120) op_gen)

module Diff (D : Taint.DOMAIN) = struct
  module P = Shadow.Make (D)
  module R = Shadow.Make_ref (D)

  let rec value = function
    | Vbot -> D.bottom
    | Vsrc (i, s) -> D.source ~input_index:i ~step:s
    | Vjoin (a, b) -> D.join (value a) (value b)
    | Vwrite (s, pc, v) -> D.at_write ~step:s ~fname:"f" ~pc (value v)

  let sorted_fold fold sh =
    fold (fun l v acc -> (l, v) :: acc) sh []
    |> List.sort (fun (a, _) (b, _) -> Loc.compare a b)

  let assoc_equal a b =
    List.length a = List.length b
    && List.for_all2
         (fun (la, va) (lb, vb) -> Loc.equal la lb && D.equal va vb)
         a b

  (* Apply the stream to both shadows and check every observable. *)
  let agree ops =
    let p = P.create () and r = R.create () in
    let locs = ref [] in
    List.iter
      (fun op ->
        (match op with Set (l, _) | Clear l -> locs := l :: !locs);
        match op with
        | Set (l, ve) ->
            let v = value ve in
            P.set p l v;
            R.set r l v
        | Clear l ->
            P.clear p l;
            R.clear r l)
      ops;
    P.tainted_locations p = R.tainted_locations r
    && P.footprint_words p = R.footprint_words r
    && P.recomputed_footprint_words p = P.footprint_words p
    && R.recomputed_footprint_words r = R.footprint_words r
    && List.for_all (fun l -> D.equal (P.get p l) (R.get r l)) !locs
    && assoc_equal (sorted_fold P.fold p) (sorted_fold R.fold r)

  let property name =
    QCheck2.Test.make ~count:150
      ~name:(Fmt.str "paged shadow ≡ hashtable shadow (%s)" name)
      ~print:Fmt.(str "%a" (list ~sep:(any "; ") pp_op))
      ops_gen agree
end

module Diff_bool = Diff (Taint.Bool)
module Diff_pc = Diff (Taint.Pc)
module Diff_set = Diff (Taint.Input_set)

(* -- hand-picked edge cases --------------------------------------------- *)

module PS = Shadow.Make (Taint.Input_set)

let test_clear_returns_to_empty () =
  let sh = PS.create () in
  let locs =
    [ Loc.mem 0; Loc.mem 4095; Loc.mem 4096; Loc.mem (1 lsl 22);
      Loc.reg ~frame:3 (Reg.make 2) ]
  in
  List.iter
    (fun l ->
      PS.set sh l (Taint.Input_set.source ~input_index:1 ~step:2))
    locs;
  check Alcotest.int "tainted" (List.length locs) (PS.tainted_locations sh);
  List.iter (fun l -> PS.clear sh l) locs;
  check Alcotest.int "tainted after clear" 0 (PS.tainted_locations sh);
  check Alcotest.int "words after clear" 0 (PS.footprint_words sh);
  check Alcotest.int "recomputed after clear" 0
    (PS.recomputed_footprint_words sh);
  check Alcotest.int "fold is empty" 0
    (PS.fold (fun _ _ n -> n + 1) sh 0)

let test_bottom_store_is_noop () =
  let sh = PS.create () in
  (* storing bottom into untouched (even absurdly large) locations
     must not allocate pages or disturb the accounting *)
  PS.set sh (Loc.mem ((1 lsl 30) + 17)) Taint.Input_set.bottom;
  PS.clear sh (Loc.mem 12345);
  check Alcotest.int "still empty" 0 (PS.tainted_locations sh);
  check Alcotest.int "no words" 0 (PS.footprint_words sh);
  check
    Alcotest.(list (pair int int))
    "get still bottom" []
    (PS.fold (fun l _ acc -> (l, 0) :: acc) sh [])

let test_oversized_record_accounting () =
  let sh = PS.create () in
  let big =
    (* a set spanning many words — the oversized-record path of the
       words accounting *)
    List.fold_left
      (fun acc i ->
        Taint.Input_set.join acc
          (Taint.Input_set.source ~input_index:i ~step:i))
      Taint.Input_set.bottom
      (List.init 64 Fun.id)
  in
  let l = Loc.mem 7 in
  PS.set sh l big;
  check Alcotest.bool "multi-word record" true (PS.footprint_words sh > 1);
  check Alcotest.int "recomputed matches incremental"
    (PS.footprint_words sh)
    (PS.recomputed_footprint_words sh);
  (* shrink it back down to a single source: words must follow *)
  PS.set sh l (Taint.Input_set.source ~input_index:0 ~step:0);
  check Alcotest.int "words shrank"
    (PS.recomputed_footprint_words sh)
    (PS.footprint_words sh);
  check Alcotest.int "still one location" 1 (PS.tainted_locations sh)

let test_planes_do_not_alias () =
  let module B = Shadow.Make (Taint.Bool) in
  let sh = B.create () in
  (* Loc.mem 1 and the first register share their upper index bits;
     the planes must keep them apart. *)
  let r = Loc.reg ~frame:0 (Reg.make 0) in
  B.set sh r true;
  check Alcotest.bool "reg set" true (B.get sh r);
  check Alcotest.bool "mem 0 clean" false (B.get sh (Loc.mem 0));
  check Alcotest.bool "mem 1 clean" false (B.get sh (Loc.mem 1));
  check Alcotest.int "one location" 1 (B.tainted_locations sh)

(* -- engine-level differential ------------------------------------------

   The same kernel, input and policy driven through an engine over the
   paged shadow and one over the hashtable reference: every
   statistic, every sink event (kind, step, taint) and the final
   shadow contents must match. *)

module Engine_diff (D : Taint.DOMAIN) = struct
  module EP = Engine.Make (D)
  module ER = Engine.Make_over (Shadow.Make_ref) (D)

  type probe = {
    sinks : (Engine.sink * int * D.t) list;  (** reversed *)
    stats : Engine.stats;
    shadow : (Loc.t * D.t) list;
    footprint : int * int;
  }

  let run_paged ~policy (w : Workload.t) input =
    let m = Machine.create w.Workload.program ~input in
    let eng = EP.create ~policy w.Workload.program in
    let sinks = ref [] in
    EP.on_sink eng (fun s taint e ->
        sinks := (s, e.Event.step, taint) :: !sinks);
    EP.attach eng m;
    ignore (Machine.run m);
    {
      sinks = !sinks;
      stats = EP.stats eng;
      shadow =
        EP.Sh.fold (fun l v acc -> (l, v) :: acc) (EP.shadow eng) []
        |> List.sort (fun (a, _) (b, _) -> Loc.compare a b);
      footprint = EP.shadow_footprint eng;
    }

  let run_ref ~policy (w : Workload.t) input =
    let m = Machine.create w.Workload.program ~input in
    let eng = ER.create ~policy w.Workload.program in
    let sinks = ref [] in
    ER.on_sink eng (fun s taint e ->
        sinks := (s, e.Event.step, taint) :: !sinks);
    ER.attach eng m;
    ignore (Machine.run m);
    {
      sinks = !sinks;
      stats = ER.stats eng;
      shadow =
        ER.Sh.fold (fun l v acc -> (l, v) :: acc) (ER.shadow eng) []
        |> List.sort (fun (a, _) (b, _) -> Loc.compare a b);
      footprint = ER.shadow_footprint eng;
    }

  let check_same name (a : probe) (b : probe) =
    check Alcotest.int (name ^ ": events") a.stats.Engine.events
      b.stats.Engine.events;
    check Alcotest.int (name ^ ": sources") a.stats.Engine.sources
      b.stats.Engine.sources;
    check Alcotest.int (name ^ ": sink hits") a.stats.Engine.sink_hits
      b.stats.Engine.sink_hits;
    check
      Alcotest.(pair int int)
      (name ^ ": footprint") a.footprint b.footprint;
    check Alcotest.int (name ^ ": sink count") (List.length a.sinks)
      (List.length b.sinks);
    List.iter2
      (fun (sa, stepa, ta) (sb, stepb, tb) ->
        check Alcotest.string (name ^ ": sink kind") (Engine.sink_to_string sa)
          (Engine.sink_to_string sb);
        check Alcotest.int (name ^ ": sink step") stepa stepb;
        if not (D.equal ta tb) then
          Alcotest.failf "%s: sink taint differs at step %d: %a vs %a" name
            stepa D.pp ta D.pp tb)
      a.sinks b.sinks;
    check Alcotest.int (name ^ ": shadow size") (List.length a.shadow)
      (List.length b.shadow);
    List.iter2
      (fun (la, va) (lb, vb) ->
        check Alcotest.int (name ^ ": shadow loc") la lb;
        if not (D.equal va vb) then
          Alcotest.failf "%s: taint at %a differs: %a vs %a" name Loc.pp la
            D.pp va D.pp vb)
      a.shadow b.shadow

  let kernel ~policy ~policy_name (w : Workload.t) ~size ~seed =
    let input = w.Workload.input ~size ~seed in
    let name = Fmt.str "%s/%s/%s" D.name w.Workload.name policy_name in
    check_same name (run_paged ~policy w input) (run_ref ~policy w input)
end

module Ediff_bool = Engine_diff (Taint.Bool)
module Ediff_pc = Engine_diff (Taint.Pc)
module Ediff_set = Engine_diff (Taint.Input_set)

let test_engine_differential_bool () =
  List.iter
    (fun k ->
      Ediff_bool.kernel ~policy:Policy.security ~policy_name:"security"
        (Spec_like.by_name k) ~size:20 ~seed:5)
    [ "crc"; "qsort"; "bfs"; "hash" ]

let test_engine_differential_pc () =
  List.iter
    (fun k ->
      Ediff_pc.kernel ~policy:Policy.full ~policy_name:"full"
        (Spec_like.by_name k) ~size:16 ~seed:11)
    [ "crc"; "search"; "rle" ]

let test_engine_differential_input_set () =
  List.iter
    (fun k ->
      Ediff_set.kernel ~policy:Policy.data_only ~policy_name:"data"
        (Spec_like.by_name k) ~size:16 ~seed:7)
    [ "crc"; "matmul"; "sieve" ]

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ Diff_bool.property "bool"; Diff_pc.property "pc";
      Diff_set.property "input-set" ]
  @ [
      Alcotest.test_case "clear returns paged shadow to empty" `Quick
        test_clear_returns_to_empty;
      Alcotest.test_case "bottom store to untouched page is a no-op" `Quick
        test_bottom_store_is_noop;
      Alcotest.test_case "oversized records keep words accounting exact"
        `Quick test_oversized_record_accounting;
      Alcotest.test_case "mem and reg planes do not alias" `Quick
        test_planes_do_not_alias;
      Alcotest.test_case "engine differential: bool/security kernels" `Quick
        test_engine_differential_bool;
      Alcotest.test_case "engine differential: pc/full kernels" `Quick
        test_engine_differential_pc;
      Alcotest.test_case "engine differential: input-set/data kernels" `Quick
        test_engine_differential_input_set;
    ]
