(* Tests for the core DIFT layer: taint domains and engine, dynamic
   control dependence, ONTRAC (with each optimization), the offline
   baseline, the trace buffer window, and slicing. *)

open Dift_isa
open Dift_vm
open Dift_core

let check = Alcotest.check

module Bool_engine = Engine.Make (Taint.Bool)
module Pc_engine = Engine.Make (Taint.Pc)
module Set_engine = Engine.Make (Taint.Input_set)

(* read x; y <- x + 1; write y; write 5; halt *)
let prog_simple_flow () =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          Builder.read b Reg.r0;
          Builder.add b Reg.r1 (Operand.reg Reg.r0) (Operand.imm 1);
          Builder.write b (Operand.reg Reg.r1);
          Builder.write b (Operand.imm 5);
          Builder.halt b);
    ]

let test_bool_taint_output () =
  let p = prog_simple_flow () in
  let m = Machine.create p ~input:[| 10 |] in
  let eng = Bool_engine.create p in
  let hits = ref [] in
  Bool_engine.on_sink eng (fun sink taint e ->
      if sink = Engine.Sink_output then hits := (taint, e.Event.value) :: !hits);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  match List.rev !hits with
  | [ (t1, v1); (t2, v2) ] ->
      check Alcotest.bool "derived output tainted" true t1;
      check Alcotest.int "value" 11 v1;
      check Alcotest.bool "constant output clean" false t2;
      check Alcotest.int "const value" 5 v2
  | l -> Alcotest.failf "expected 2 output events, got %d" (List.length l)

(* Taint must survive a round trip through memory. *)
let test_taint_through_memory () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.store b (Operand.reg Reg.r0) (Operand.imm 100) 0;
            Builder.movi b Reg.r0 0;
            Builder.load b Reg.r1 (Operand.imm 100) 0;
            Builder.write b (Operand.reg Reg.r1);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 3 |] in
  let eng = Bool_engine.create p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "taint via memory" true !tainted

(* Overwriting with a constant clears taint. *)
let test_taint_cleared_by_constant () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.store b (Operand.reg Reg.r0) (Operand.imm 100) 0;
            Builder.store b (Operand.imm 9) (Operand.imm 100) 0;
            Builder.load b Reg.r1 (Operand.imm 100) 0;
            Builder.write b (Operand.reg Reg.r1);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 3 |] in
  let eng = Bool_engine.create p in
  let tainted = ref true in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "constant overwrite untaints" false !tainted

(* Taint flows through call arguments and return values. *)
let test_taint_through_call () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.call b "inc" ~ret:(Some Reg.r1);
            Builder.write b (Operand.reg Reg.r1);
            Builder.halt b);
        Builder.define ~name:"inc" ~arity:1 (fun b ->
            Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.imm 1);
            Builder.ret b (Some (Operand.reg Reg.r0)));
      ]
  in
  let m = Machine.create p ~input:[| 5 |] in
  let eng = Bool_engine.create p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "taint through call" true !tainted

(* PC taint names the most recent writer: the store into the buffer. *)
let test_pc_taint_identifies_writer () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            (* pc 0 *)
            Builder.add b Reg.r1 (Operand.reg Reg.r0) (Operand.imm 0);
            (* pc 1: the "buggy" computation *)
            Builder.store b (Operand.reg Reg.r1) (Operand.imm 200) 0;
            (* pc 2: last writer of the sink value *)
            Builder.load b Reg.r2 (Operand.imm 200) 0;
            Builder.write b (Operand.reg Reg.r2);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 4 |] in
  let eng = Pc_engine.create p in
  let site = ref None in
  Pc_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then site := taint);
  Pc_engine.attach eng m;
  ignore (Machine.run m);
  match !site with
  | Some s ->
      check Alcotest.string "writer function" "main" s.Taint.fname;
      (* Loads copy tags unchanged, so the tag still names the store at
         pc 2 — the last instruction that wrote the *location*. *)
      check Alcotest.int "writer pc" 2 s.Taint.pc
  | None -> Alcotest.fail "output should carry PC taint"

(* Input-set taint unions the contributing inputs. *)
let test_input_set_taint () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.read b Reg.r1;
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (Operand.reg Reg.r0) (Operand.reg Reg.r1);
            Builder.write b (Operand.reg Reg.r3);
            Builder.write b (Operand.reg Reg.r2);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 1; 2; 3 |] in
  let eng = Set_engine.create p in
  let sets = ref [] in
  Set_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then sets := taint :: !sets);
  Set_engine.attach eng m;
  ignore (Machine.run m);
  match List.rev !sets with
  | [ s1; s2 ] ->
      check
        Alcotest.(list int)
        "first output lineage" [ 0; 1 ]
        (Taint.Int_set.elements s1);
      check
        Alcotest.(list int)
        "second output lineage" [ 2 ]
        (Taint.Int_set.elements s2)
  | l -> Alcotest.failf "expected 2 outputs, got %d" (List.length l)

(* Implicit flow: x is only control-dependent on the input.  The
   data-only policy misses it; the full policy catches it. *)
let prog_implicit_flow () =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          Builder.read b Reg.r0;
          Builder.movi b Reg.r1 0;
          Builder.if_nz b (Operand.reg Reg.r0)
            ~then_:(fun () -> Builder.movi b Reg.r1 1)
            ~else_:(fun () -> Builder.movi b Reg.r1 2);
          Builder.write b (Operand.reg Reg.r1);
          Builder.halt b);
    ]

let run_implicit policy =
  let p = prog_implicit_flow () in
  let m = Machine.create p ~input:[| 1 |] in
  let eng = Bool_engine.create ~policy p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  !tainted

let test_implicit_flow_policies () =
  check Alcotest.bool "data-only misses implicit flow" false
    (run_implicit Policy.data_only);
  check Alcotest.bool "control policy catches implicit flow" true
    (run_implicit Policy.full)

(* Pointer-flow policy: tainted index into a clean table. *)
let prog_pointer_flow () =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          Builder.store b (Operand.imm 7) (Operand.imm 300) 0;
          Builder.store b (Operand.imm 8) (Operand.imm 301) 0;
          Builder.read b Reg.r0;
          Builder.add b Reg.r1 (Operand.imm 300) (Operand.reg Reg.r0);
          Builder.load b Reg.r2 (Operand.reg Reg.r1) 0;
          Builder.write b (Operand.reg Reg.r2);
          Builder.halt b);
    ]

let test_pointer_flow_policies () =
  let run policy =
    let p = prog_pointer_flow () in
    let m = Machine.create p ~input:[| 1 |] in
    let eng = Bool_engine.create ~policy p in
    let tainted = ref false in
    Bool_engine.on_sink eng (fun sink taint _ ->
        if sink = Engine.Sink_output then tainted := taint);
    Bool_engine.attach eng m;
    ignore (Machine.run m);
    !tainted
  in
  check Alcotest.bool "data-only misses pointer flow" false
    (run Policy.data_only);
  check Alcotest.bool "security policy catches pointer flow" true
    (run Policy.security)

(* Taint crosses Spawn into the child thread. *)
let test_taint_through_spawn () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.spawn b Reg.r1 "child" (Operand.reg Reg.r0);
            Builder.join b (Operand.reg Reg.r1);
            Builder.halt b);
        Builder.define ~name:"child" ~arity:1 (fun b ->
            Builder.write b (Operand.reg Reg.r0);
            Builder.ret b None);
      ]
  in
  let m = Machine.create p ~input:[| 6 |] in
  let eng = Bool_engine.create p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "taint into spawned thread" true !tainted

(* -- dynamic control dependence ---------------------------------------- *)

(* Loop: body instructions are control-dependent on the loop branch. *)
let test_control_dep_loop () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
              ~below:(Operand.imm 3) (fun () ->
                Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.imm 1));
            Builder.write b (Operand.reg Reg.r0);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[||] in
  let static = Static_info.create p in
  let cd = Control_dep.create static in
  let parents = ref [] in
  Machine.attach m
    (Tool.make
       ~on_exec:(fun e ->
         let parent = Control_dep.process cd e in
         parents := (e, parent) :: !parents)
       "cd-probe");
  ignore (Machine.run m);
  let events = List.rev !parents in
  (* The add in the loop body must have a branch parent; the first movi
     must have none; the final write must have none (it is past the
     loop's postdominator). *)
  let body_adds =
    List.filter
      (fun ((e : Event.exec), _) ->
        match e.Event.instr with
        | Instr.Binop (Instr.Add, d, _, _) -> Reg.index d = 0
        | _ -> false)
      events
  in
  check Alcotest.bool "loop body has parents" true
    (body_adds <> []
    && List.for_all (fun (_, parent) -> parent <> None) body_adds);
  let first_movi, last_write =
    ( List.find
        (fun ((e : Event.exec), _) ->
          match e.Event.instr with Instr.Mov _ -> true | _ -> false)
        events,
      List.find
        (fun ((e : Event.exec), _) ->
          match e.Event.instr with
          | Instr.Sys (Instr.Write _) -> true
          | _ -> false)
        events )
  in
  check Alcotest.bool "first movi has no parent" true (snd first_movi = None);
  check Alcotest.bool "final write has no parent" true (snd last_write = None)

(* Instructions in a callee inherit the call as control parent. *)
let test_control_dep_call () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.call b "f" ~ret:None;
            Builder.halt b);
        Builder.define ~name:"f" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 1;
            Builder.ret b None);
      ]
  in
  let m = Machine.create p ~input:[||] in
  let static = Static_info.create p in
  let cd = Control_dep.create static in
  let callee_parent = ref None in
  let call_step = ref (-1) in
  Machine.attach m
    (Tool.make
       ~on_exec:(fun e ->
         let parent = Control_dep.process cd e in
         (match e.Event.instr with
         | Instr.Call _ -> call_step := e.Event.step
         | Instr.Mov _ -> callee_parent := parent
         | _ -> ()))
       "cd-probe");
  ignore (Machine.run m);
  check Alcotest.(option int) "callee parent is the call" (Some !call_step)
    !callee_parent

(* -- encoding ----------------------------------------------------------- *)

let test_encoding_roundtrip () =
  let deps =
    [
      { Dep.kind = Dep.Data; def_step = 0; use_step = 3 };
      { Dep.kind = Dep.Control; def_step = 2; use_step = 3 };
      { Dep.kind = Dep.Data; def_step = 3; use_step = 1000 };
      { Dep.kind = Dep.Waw; def_step = 999; use_step = 1000 };
      { Dep.kind = Dep.Summary; def_step = 500; use_step = 123456789 };
    ]
  in
  let w = Encoding.writer () in
  List.iter (Encoding.write w) deps;
  let decoded = Encoding.decode (Encoding.contents w) in
  check Alcotest.int "count" (List.length deps) (List.length decoded);
  List.iter2
    (fun a b ->
      check Alcotest.bool
        (Fmt.str "record %a" Dep.pp a)
        true
        (a.Dep.kind = b.Dep.kind
        && a.Dep.def_step = b.Dep.def_step
        && a.Dep.use_step = b.Dep.use_step))
    deps decoded

(* -- trace buffer -------------------------------------------------------- *)

let test_buffer_eviction () =
  let buf = Trace_buffer.create ~capacity:100 in
  for step = 0 to 99 do
    Trace_buffer.add buf ~use_step:step ~bytes:10
  done;
  check Alcotest.bool "stored within capacity" true
    (Trace_buffer.stored_bytes buf <= 100);
  check Alcotest.int "total bytes" 1000 (Trace_buffer.total_bytes buf);
  check Alcotest.int "stored records" 10 (Trace_buffer.stored_records buf);
  check Alcotest.int "window start" 90 (Trace_buffer.window_start buf)

(* Regression: a record larger than the whole buffer used to be
   appended and then immediately evicted by its own [add], leaving the
   buffer empty and the window start pointing past the newest record.
   It must be retained alone until the next add. *)
let test_buffer_oversized_record () =
  let buf = Trace_buffer.create ~capacity:100 in
  Trace_buffer.add buf ~use_step:0 ~bytes:10;
  Trace_buffer.add buf ~use_step:1 ~bytes:500;
  check Alcotest.int "oversized record retained alone" 1
    (Trace_buffer.stored_records buf);
  check Alcotest.int "stored bytes may exceed capacity" 500
    (Trace_buffer.stored_bytes buf);
  check Alcotest.int "window starts at the oversized record" 1
    (Trace_buffer.window_start buf);
  (* the next add evicts it like any other oldest record *)
  Trace_buffer.add buf ~use_step:2 ~bytes:10;
  check Alcotest.int "evicted by the next add" 2
    (Trace_buffer.evicted_records buf);
  check Alcotest.int "back within capacity" 10
    (Trace_buffer.stored_bytes buf);
  check Alcotest.int "window moves to the newest record" 2
    (Trace_buffer.window_start buf)

(* -- shadow footprint ----------------------------------------------------- *)

(* Regression for the incremental footprint count: a workload of
   overwrites (growing and shrinking values), explicit clears and
   bottom-stores must keep [footprint_words] equal to the O(n) fold it
   replaced. *)
let test_shadow_incremental_footprint () =
  let module Sh = Shadow.Make (Taint.Input_set) in
  let sh = Sh.create () in
  let value n =
    (* a set of [n] input indices: [n] words under Input_set accounting *)
    List.fold_left
      (fun acc i ->
        Taint.Input_set.join acc (Taint.Input_set.source ~input_index:i ~step:0))
      Taint.Input_set.bottom
      (List.init n Fun.id)
  in
  let agree label =
    check Alcotest.int label (Sh.recomputed_footprint_words sh)
      (Sh.footprint_words sh)
  in
  agree "empty";
  for i = 0 to 19 do
    Sh.set sh (Loc.mem i) (value ((i mod 5) + 1))
  done;
  agree "after fills";
  (* overwrites: grow some entries, shrink others *)
  for i = 0 to 19 do
    if i mod 2 = 0 then Sh.set sh (Loc.mem i) (value 7)
    else Sh.set sh (Loc.mem i) (value 1)
  done;
  agree "after overwrites";
  (* storing bottom removes; clearing a missing loc is a no-op *)
  for i = 0 to 9 do
    Sh.set sh (Loc.mem i) Taint.Input_set.bottom
  done;
  Sh.clear sh (Loc.mem 3);
  Sh.clear sh (Loc.mem 1000);
  agree "after removals";
  for i = 10 to 19 do
    Sh.clear sh (Loc.mem i)
  done;
  agree "emptied again";
  check Alcotest.int "empty footprint is zero" 0 (Sh.footprint_words sh)

(* -- ONTRAC -------------------------------------------------------------- *)

(* A loop-heavy kernel with memory traffic; inputs drive the data. *)
let prog_kernel ~iters =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          Builder.read b Reg.r0;
          Builder.movi b Reg.r2 0;
          Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
            ~below:(Operand.imm iters) (fun () ->
              Builder.add b Reg.r3 (Operand.reg Reg.r1) (Operand.reg Reg.r0);
              Builder.mul b Reg.r4 (Operand.reg Reg.r3) (Operand.imm 3);
              Builder.store b (Operand.reg Reg.r4) (Operand.imm 400) 0;
              Builder.load b Reg.r5 (Operand.imm 400) 0;
              (* a second load of the same address with no intervening
                 store: dynamically redundant (O3) *)
              Builder.load b Reg.r6 (Operand.imm 400) 0;
              Builder.add b Reg.r2 (Operand.reg Reg.r2) (Operand.reg Reg.r5);
              Builder.add b Reg.r2 (Operand.reg Reg.r2) (Operand.reg Reg.r6));
          Builder.write b (Operand.reg Reg.r2);
          Builder.halt b);
    ]

let run_ontrac ?(opts = Ontrac.default_opts) ?(input = [| 7 |]) p =
  let m = Machine.create p ~input in
  let tracer = Ontrac.create ~opts p in
  Ontrac.attach tracer m;
  let outcome = Machine.run m in
  (m, tracer, outcome)

let test_ontrac_optimizations_reduce_bytes () =
  let p = prog_kernel ~iters:200 in
  let _, opt, _ = run_ontrac p in
  let _, unopt, _ = run_ontrac ~opts:Ontrac.no_opts p in
  let bo = Ontrac.bytes_per_instr opt in
  let bu = Ontrac.bytes_per_instr unopt in
  check Alcotest.bool
    (Fmt.str "optimized %.2f < unoptimized %.2f B/instr" bo bu)
    true (bo < bu /. 2.);
  let s = Ontrac.stats opt in
  check Alcotest.bool "O1 fired" true (s.Ontrac.elided_o1 > 0);
  check Alcotest.bool "O3 fired" true (s.Ontrac.elided_o3 > 0);
  check Alcotest.bool "control elision fired" true
    (s.Ontrac.elided_control > 0)

(* The optimized and unoptimized graphs contain the same dependences —
   optimizations only avoid *storing* the inferable ones. *)
let test_ontrac_graph_equivalence () =
  let p = prog_kernel ~iters:50 in
  let _, opt, _ = run_ontrac p in
  let _, unopt, _ = run_ontrac ~opts:Ontrac.no_opts p in
  let g1, _ = Ontrac.final_graph opt in
  let g2, _ = Ontrac.final_graph unopt in
  check Alcotest.int "same node count" (Ddg.num_nodes g2) (Ddg.num_nodes g1);
  check Alcotest.int "same edge count" (Ddg.num_edges g2) (Ddg.num_edges g1);
  (* And slices from the last output agree. *)
  match Slicing.last_output g1 with
  | None -> Alcotest.fail "no output node"
  | Some out ->
      let s1 = Slicing.backward g1 ~criterion:[ out ] in
      let s2 = Slicing.backward g2 ~criterion:[ out ] in
      check Alcotest.int "same slice size" (Slicing.size s2) (Slicing.size s1)

(* Backward slice from the output must reach the input read. *)
let test_slice_reaches_input () =
  let p = prog_kernel ~iters:20 in
  let _, tracer, _ = run_ontrac p in
  let g, w = Ontrac.final_graph tracer in
  match Slicing.last_output g with
  | None -> Alcotest.fail "no output node"
  | Some out ->
      let s = Slicing.backward ~window_start:w g ~criterion:[ out ] in
      let has_input =
        List.exists
          (fun step ->
            match Ddg.node g step with
            | Some n -> n.Ddg.input_index >= 0
            | None -> false)
          (Slicing.steps s)
      in
      check Alcotest.bool "slice contains the input read" true has_input

(* Small buffer: the window shrinks, old steps are unreachable. *)
let test_ontrac_window () =
  let p = prog_kernel ~iters:500 in
  let opts = { Ontrac.default_opts with capacity = 2000 } in
  let _, tracer, _ = run_ontrac ~opts p in
  let s = Ontrac.stats tracer in
  check Alcotest.bool "buffer evicted" true
    (Trace_buffer.evicted_records (Ontrac.buffer tracer) > 0);
  check Alcotest.bool "window smaller than run" true
    (Ontrac.window_length tracer < s.Ontrac.instructions);
  let g, w = Ontrac.final_graph tracer in
  check Alcotest.bool "window start positive" true (w > 0);
  (* All remaining nodes are inside the window. *)
  let ok = ref true in
  Ddg.iter_nodes (fun n -> if n.Ddg.step < w then ok := false) g;
  check Alcotest.bool "graph pruned to window" true !ok

(* O4a: scope tracing to main only; the helper's computation is bridged
   by summary edges so the slice still reaches main's earlier writes. *)
let test_ontrac_scoped_summary () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            (* traced: the value originates here *)
            Builder.call b "mix" ~ret:(Some Reg.r1);
            Builder.write b (Operand.reg Reg.r1);
            Builder.halt b);
        Builder.define ~name:"mix" ~arity:1 (fun b ->
            Builder.mul b Reg.r2 (Operand.reg Reg.r0) (Operand.imm 2);
            Builder.add b Reg.r2 (Operand.reg Reg.r2) (Operand.imm 1);
            Builder.ret b (Some (Operand.reg Reg.r2)));
      ]
  in
  let opts = { Ontrac.default_opts with scope = Some [ "main" ] } in
  let _, tracer, _ = run_ontrac ~opts p in
  let s = Ontrac.stats tracer in
  check Alcotest.bool "summary deps recorded" true (s.Ontrac.summary_deps > 0);
  let g, w = Ontrac.final_graph tracer in
  match Slicing.last_output g with
  | None -> Alcotest.fail "no output node"
  | Some out ->
      let sl = Slicing.backward ~window_start:w g ~criterion:[ out ] in
      let has_input =
        List.exists
          (fun step ->
            match Ddg.node g step with
            | Some n -> n.Ddg.input_index >= 0
            | None -> false)
          (Slicing.steps sl)
      in
      check Alcotest.bool "summary edges keep the chain to the input" true
        has_input

(* O4b: only input-affected dependences are stored; a computation that
   never touches input records (almost) nothing. *)
let test_ontrac_input_slice_only () =
  let pure =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
              ~below:(Operand.imm 100) (fun () ->
                Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.reg Reg.r1));
            Builder.write b (Operand.reg Reg.r0);
            Builder.halt b);
      ]
  in
  let opts =
    { Ontrac.no_opts with input_slice_only = true }
  in
  let _, gated, _ = run_ontrac ~opts ~input:[||] pure in
  let _, full, _ = run_ontrac ~opts:Ontrac.no_opts ~input:[||] pure in
  let sg = Ontrac.stats gated and sf = Ontrac.stats full in
  check Alcotest.bool "input gating skips most deps" true
    (sg.Ontrac.deps_recorded * 10 < sf.Ontrac.deps_recorded);
  (* But a program whose output depends on input keeps its chain. *)
  let p = prog_kernel ~iters:20 in
  let _, tracer, _ = run_ontrac ~opts p in
  let g, w = Ontrac.final_graph tracer in
  match Slicing.last_output g with
  | None -> Alcotest.fail "no output node"
  | Some out ->
      let sl = Slicing.backward ~window_start:w g ~criterion:[ out ] in
      let has_input =
        List.exists
          (fun step ->
            match Ddg.node g step with
            | Some n -> n.Ddg.input_index >= 0
            | None -> false)
          (Slicing.steps sl)
      in
      check Alcotest.bool "input-gated slice reaches input" true has_input

(* -- offline baseline ---------------------------------------------------- *)

let test_offline_matches_ontrac_slices () =
  let p = prog_kernel ~iters:30 in
  let m1 = Machine.create p ~input:[| 7 |] in
  let off = Offline.create p in
  Offline.attach off m1;
  ignore (Machine.run m1);
  let g_off = Offline.postprocess off in
  let _, tracer, _ = run_ontrac ~opts:Ontrac.no_opts p in
  let g_on, _ = Ontrac.final_graph tracer in
  (match Slicing.last_output g_off, Slicing.last_output g_on with
  | Some a, Some b ->
      let sa = Slicing.backward g_off ~criterion:[ a ] in
      let sb = Slicing.backward g_on ~criterion:[ b ] in
      check Alcotest.int "same number of slice sites" (Slicing.num_sites sb)
        (Slicing.num_sites sa)
  | _ -> Alcotest.fail "missing output nodes");
  (* Offline is much more expensive in modelled cycles. *)
  let s = Offline.stats off in
  check Alcotest.bool "postprocess cycles dominate" true
    (s.Offline.postprocess_cycles > s.Offline.instructions * 10)

(* ONTRAC is much cheaper than offline in total modelled cycles. *)
let test_ontrac_cheaper_than_offline () =
  let p = prog_kernel ~iters:300 in
  (* Baseline uninstrumented cycles. *)
  let m0 = Machine.create p ~input:[| 7 |] in
  ignore (Machine.run m0);
  let base = Machine.cycles m0 in
  let m1, _, _ = run_ontrac p in
  let ontrac_cycles = Machine.cycles m1 in
  let m2 = Machine.create p ~input:[| 7 |] in
  let off = Offline.create p in
  Offline.attach off m2;
  ignore (Machine.run m2);
  ignore (Offline.postprocess off);
  let offline_cycles =
    Machine.cycles m2 + (Offline.stats off).Offline.postprocess_cycles
  in
  let slow_on = float_of_int ontrac_cycles /. float_of_int base in
  let slow_off = float_of_int offline_cycles /. float_of_int base in
  check Alcotest.bool
    (Fmt.str "ontrac %.1fx much cheaper than offline %.1fx" slow_on slow_off)
    true
    (slow_off > 4. *. slow_on)

(* Forward slicing: everything derived from the input read. *)
let test_forward_slice () =
  let p = prog_simple_flow () in
  let _, tracer, _ = run_ontrac ~opts:Ontrac.no_opts p in
  let g, _ = Ontrac.final_graph tracer in
  let input_step = ref None in
  Ddg.iter_nodes
    (fun n -> if n.Ddg.input_index >= 0 then input_step := Some n.Ddg.step)
    g;
  match !input_step with
  | None -> Alcotest.fail "no input node"
  | Some s ->
      let fwd = Slicing.forward g ~criterion:[ s ] in
      (* The derived output (pc 2's write) is in the forward slice, the
         constant write is not. *)
      check Alcotest.bool "derived write reached" true
        (Slicing.mem_site fwd ("main", 2));
      check Alcotest.bool "constant write not reached" false
        (Slicing.mem_site fwd ("main", 3))

(* The central ONTRAC design consequence (§2.1): "the faulty statement
   can be found using dynamic slicing only if the fault is exercised
   within this window".  A corruption followed by a long stretch of
   unrelated work is locatable with a large buffer and unlocatable
   once the buffer has evicted it. *)
let test_window_bounds_fault_location () =
  let corrupt_site = ref 0 in
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            (* the root cause: store a bad value *)
            Builder.read b Reg.r0;
            corrupt_site := Builder.here b;
            Builder.store b (Operand.reg Reg.r0) (Operand.imm 800) 0;
            (* a long stretch of unrelated work *)
            Builder.movi b Reg.r1 0;
            Builder.for_up b ~idx:Reg.r10 ~from_:(Operand.imm 0)
              ~below:(Operand.imm 3000) (fun () ->
                Builder.add b Reg.r1 (Operand.reg Reg.r1)
                  (Operand.reg Reg.r10));
            (* the failure: the corrupted cell trips the check *)
            Builder.load b Reg.r2 (Operand.imm 800) 0;
            Builder.check b (Operand.reg Reg.r2);
            Builder.halt b);
      ]
  in
  let faulty_site = ("main", !corrupt_site) in
  let locate capacity =
    let m = Machine.create p ~input:[| 0 |] in
    let tracer =
      Ontrac.create ~opts:{ Ontrac.default_opts with capacity } p
    in
    Ontrac.attach tracer m;
    let fault = ref None in
    Machine.attach m
      (Tool.make ~dispatch_cost:0
         ~on_fault:(fun f -> fault := Some f)
         "probe");
    ignore (Machine.run m);
    let g, w = Ontrac.final_graph tracer in
    match !fault with
    | None -> Alcotest.fail "expected a fault"
    | Some f ->
        let slice =
          Slicing.backward ~window_start:w g
            ~criterion:[ f.Event.at_step ]
        in
        Slicing.mem_site slice faulty_site
  in
  check Alcotest.bool "large buffer: fault located" true
    (locate (1024 * 1024));
  check Alcotest.bool "tiny buffer: corruption evicted, fault missed" false
    (locate 300)

let suite =
  [
    Alcotest.test_case "bool taint reaches output" `Quick
      test_bool_taint_output;
    Alcotest.test_case "taint through memory" `Quick
      test_taint_through_memory;
    Alcotest.test_case "constant overwrite untaints" `Quick
      test_taint_cleared_by_constant;
    Alcotest.test_case "taint through call" `Quick test_taint_through_call;
    Alcotest.test_case "pc taint identifies writer" `Quick
      test_pc_taint_identifies_writer;
    Alcotest.test_case "input-set taint" `Quick test_input_set_taint;
    Alcotest.test_case "implicit flow policies" `Quick
      test_implicit_flow_policies;
    Alcotest.test_case "pointer flow policies" `Quick
      test_pointer_flow_policies;
    Alcotest.test_case "taint through spawn" `Quick test_taint_through_spawn;
    Alcotest.test_case "control dep in loop" `Quick test_control_dep_loop;
    Alcotest.test_case "control dep through call" `Quick
      test_control_dep_call;
    Alcotest.test_case "encoding roundtrip" `Quick test_encoding_roundtrip;
    Alcotest.test_case "buffer eviction" `Quick test_buffer_eviction;
    Alcotest.test_case "oversized record retained" `Quick
      test_buffer_oversized_record;
    Alcotest.test_case "incremental shadow footprint" `Quick
      test_shadow_incremental_footprint;
    Alcotest.test_case "optimizations reduce bytes" `Quick
      test_ontrac_optimizations_reduce_bytes;
    Alcotest.test_case "optimized graph equals unoptimized" `Quick
      test_ontrac_graph_equivalence;
    Alcotest.test_case "slice reaches input" `Quick test_slice_reaches_input;
    Alcotest.test_case "buffer window limits slicing" `Quick
      test_ontrac_window;
    Alcotest.test_case "window bounds fault location" `Quick
      test_window_bounds_fault_location;
    Alcotest.test_case "scoped tracing with summaries" `Quick
      test_ontrac_scoped_summary;
    Alcotest.test_case "input-slice-only gating" `Quick
      test_ontrac_input_slice_only;
    Alcotest.test_case "offline baseline slices agree" `Quick
      test_offline_matches_ontrac_slices;
    Alcotest.test_case "ontrac cheaper than offline" `Quick
      test_ontrac_cheaper_than_offline;
    Alcotest.test_case "forward slice" `Quick test_forward_slice;
  ]
