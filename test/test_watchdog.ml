(* Watchdog deadlines, timeout-and-cascade shutdown and degraded-mode
   inline completion.

   Three layers of coverage: (1) deterministic unit tests of the
   progress-epoch table, the deadline grammar, the shared sampler and
   the miss/cascade machinery via [check_now]; (2) fault-driven
   end-to-end runs — a stall past its deadline must surface as a
   [`Deadline] error (or, with [~degrade:`Inline], complete anyway
   with a bit-identical result), a stall inside its deadline must be
   invisible; (3) QCheck false-positive freedom: clean supervised runs
   at any size never trip the watchdog, on both runtimes.

   Also the Livefilter generation-reset protocol (clear, standdown,
   per-slot ack, post-reset cleanliness) and the chaos stall clamp. *)

open Dift_isa
open Dift_vm
open Dift_workloads
open Dift_parallel
module Progress = Dift_obs.Progress
module Sampler = Dift_obs.Sampler
module Json = Dift_obs.Json

let check = Alcotest.check

(* -- process watchdog: a wedged scenario must fail loudly -------------- *)

let with_watchdog ?(timeout_s = 60.) f =
  let finished = Atomic.make false in
  let dog =
    Domain.spawn (fun () ->
        let steps = int_of_float (timeout_s /. 0.05) in
        let rec loop i =
          if Atomic.get finished then ()
          else if i >= steps then begin
            prerr_endline "watchdog: deadline scenario deadlocked; aborting";
            Unix._exit 125
          end
          else begin
            Unix.sleepf 0.05;
            loop (i + 1)
          end
        in
        loop 0)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set finished true;
      Domain.join dog)
    f

(* -- helpers ----------------------------------------------------------- *)

let dl s =
  match Watchdog.deadlines_of_string s with
  | Ok d -> d
  | Error e -> Alcotest.failf "bad deadline spec %S: %s" s e

let plan s =
  match Chaos.plan_of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

let chaos s = Chaos.create (plan s)

let kernel name =
  match List.find_opt (fun w -> w.Workload.name = name) Spec_like.all with
  | Some w -> w
  | None -> Alcotest.failf "kernel %s missing" name

let same_result name (a : Parallel.result) (b : Parallel.result) =
  check Alcotest.int (name ^ ": events") a.Parallel.events b.Parallel.events;
  check Alcotest.int (name ^ ": sources") a.Parallel.sources
    b.Parallel.sources;
  check Alcotest.int (name ^ ": sink hits") a.Parallel.sink_hits
    b.Parallel.sink_hits;
  check Alcotest.int
    (name ^ ": sink trace hash")
    a.Parallel.sink_trace_hash b.Parallel.sink_trace_hash;
  check Alcotest.int
    (name ^ ": tainted locations")
    a.Parallel.tainted_locations b.Parallel.tainted_locations;
  check Alcotest.int
    (name ^ ": fingerprint")
    a.Parallel.taint_fingerprint b.Parallel.taint_fingerprint

let is_deadline = function Watchdog.Deadline_exceeded _ -> true | _ -> false

(* supervise one run: create, use, always stop *)
let with_wd spec f =
  let wd = Watchdog.create (dl spec) in
  Fun.protect ~finally:(fun () -> Watchdog.stop wd) (fun () -> f wd)

(* -- progress-epoch parity --------------------------------------------- *)

let test_progress_parity () =
  let p = Progress.create () in
  let a = Progress.leg p "parallel.push" in
  let b = Progress.leg p "work.shard0" in
  check Alcotest.string "name" "parallel.push" (Progress.name a);
  check Alcotest.bool "distinct ids" true (Progress.id a <> Progress.id b);
  check Alcotest.int "fresh epoch" 0 (Progress.epoch a);
  check Alcotest.bool "fresh leg unarmed" false (Progress.armed a);
  Progress.enter a;
  check Alcotest.int "enter flips to odd" 1 (Progress.epoch a);
  check Alcotest.bool "armed inside the region" true (Progress.armed a);
  Progress.tick b;
  Progress.tick b;
  check Alcotest.int "tick adds two" 4 (Progress.epoch b);
  check Alcotest.bool "tick preserves parity" false (Progress.armed b);
  check Alcotest.int "total sums every leg" 5 (Progress.total p);
  Progress.leave a;
  check Alcotest.int "leave flips back to even" 2 (Progress.epoch a);
  check Alcotest.bool "disarmed after leave" false (Progress.armed a);
  check Alcotest.int "two legs registered" 2 (List.length (Progress.legs p))

(* -- deadline grammar --------------------------------------------------- *)

let test_deadline_grammar () =
  let spec = "500;xchg=200;join.helper=2000" in
  let d = dl spec in
  check Alcotest.string "round-trips" spec (Watchdog.deadlines_to_string d);
  check Alcotest.int "prefix override" 200
    (Watchdog.deadline_ms d "xchg.0.1.push");
  check Alcotest.int "exact override" 2000
    (Watchdog.deadline_ms d "join.helper");
  check Alcotest.int "default" 500 (Watchdog.deadline_ms d "parallel.push");
  (* first matching prefix wins *)
  let d = dl "100;join=7;join.helper=9" in
  check Alcotest.int "first match wins" 7
    (Watchdog.deadline_ms d "join.helper");
  List.iter
    (fun bad ->
      match Watchdog.deadlines_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" bad)
    [ ""; "0"; "-5"; "abc"; "100;nodeq"; "100;=5"; "100;x=0"; "100;x=q" ];
  (match Watchdog.deadlines 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "deadline 0 ms must be rejected");
  match Watchdog.deadlines ~overrides:[ ("", 5) ] 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty prefix must be rejected"

(* -- shared sampler ----------------------------------------------------- *)

let test_shared_sampler () =
  with_watchdog @@ fun () ->
  (* a heartbeat-style job and the watchdog check share one sampler
     domain; stopping the watchdog must not stop the shared sampler *)
  let s = Sampler.create () in
  Fun.protect ~finally:(fun () -> Sampler.stop s) @@ fun () ->
  let beats = Atomic.make 0 in
  let job =
    Sampler.add s ~name:"beat" ~interval_ms:5 (fun () -> Atomic.incr beats)
  in
  let wd = Watchdog.create ~sampler:s (dl "20") in
  Unix.sleepf 0.08;
  check Alcotest.bool "shared job ran" true (Atomic.get beats > 0);
  check Alcotest.bool "watchdog checked on the shared domain" true
    (Watchdog.checks wd > 0);
  Watchdog.stop wd;
  let checks_after = Watchdog.checks wd in
  let beats_at_stop = Atomic.get beats in
  Unix.sleepf 0.05;
  check Alcotest.int "no check after stop" checks_after (Watchdog.checks wd);
  check Alcotest.bool "shared sampler survives watchdog stop" true
    (Atomic.get beats > beats_at_stop);
  Sampler.remove s job;
  let frozen = Atomic.get beats in
  Unix.sleepf 0.03;
  check Alcotest.int "remove is synchronous" frozen (Atomic.get beats)

(* -- miss detection and cascade (deterministic, via check_now) ---------- *)

let test_miss_detection_and_cascade () =
  with_watchdog @@ fun () ->
  with_wd "25" @@ fun wd ->
  let order = ref [] in
  Watchdog.on_miss wd ~name:"alpha" (fun () -> order := "alpha" :: !order);
  Watchdog.on_miss wd ~name:"parallel" (fun () ->
      order := "parallel" :: !order);
  let p = Watchdog.progress wd in
  let lg = Progress.leg p "parallel.push" in
  Progress.enter lg;
  Watchdog.check_now wd;
  Unix.sleepf 0.06;
  Watchdog.check_now wd;
  (match Watchdog.fired wd with
  | None -> Alcotest.fail "armed leg frozen past its deadline must fire"
  | Some m ->
      check Alcotest.string "stalled seam" "parallel.push" m.Watchdog.m_seam;
      check Alcotest.bool "frozen epoch is odd (armed)" true
        (m.Watchdog.m_epoch land 1 = 1);
      check Alcotest.bool "blocked at least the deadline" true
        (m.Watchdog.m_blocked_ns >= m.Watchdog.m_deadline_ns);
      check Alcotest.int "deadline as configured" 25_000_000
        m.Watchdog.m_deadline_ns;
      check Alcotest.bool "armed portrait lists the seam" true
        (List.mem_assoc "parallel.push" m.Watchdog.m_armed));
  check
    Alcotest.(list string)
    "hooks prefixing the seam run first" [ "parallel"; "alpha" ]
    (List.rev !order);
  Progress.leave lg;
  Unix.sleepf 0.06;
  Watchdog.check_now wd;
  check Alcotest.int "a fired watchdog never re-cascades" 2
    (List.length !order)

let test_global_quiet_suppresses_misses () =
  with_watchdog @@ fun () ->
  with_wd "25" @@ fun wd ->
  let p = Watchdog.progress wd in
  let parked = Progress.leg p "parallel.pop" in
  let busy = Progress.leg p "work.shard0" in
  let idle = Progress.leg p "join.helper" in
  ignore idle;
  Progress.enter parked;
  (* the parked leg is armed and frozen for far longer than its
     deadline, but some other leg keeps ticking: the global pulse
     moves, so nothing may fire *)
  for _ = 1 to 8 do
    Unix.sleepf 0.012;
    Progress.tick busy;
    Watchdog.check_now wd
  done;
  check Alcotest.bool "no false positive while anything ticks" true
    (Watchdog.fired wd = None);
  (* an unarmed frozen leg never fires either: stop ticking, wait out
     the deadline — only the armed leg may be blamed *)
  Unix.sleepf 0.06;
  Watchdog.check_now wd;
  (match Watchdog.fired wd with
  | None -> Alcotest.fail "a genuine global freeze must fire"
  | Some m ->
      check Alcotest.string "the armed leg is blamed" "parallel.pop"
        m.Watchdog.m_seam);
  Progress.leave parked

(* -- stalls vs deadlines, end to end ------------------------------------ *)

let run_crc ?chaos ?watchdog ?degrade () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  Parallel.run_result ?chaos ?watchdog ?degrade ~queue_capacity:4
    ~batch_size:1 w.Workload.program ~input

let inline_crc () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  (Parallel.run_inline w.Workload.program ~input).Parallel.i_result

let test_stall_past_deadline_two_domain () =
  with_watchdog @@ fun () ->
  (* the helper wedges for 400 ms against a 50 ms deadline: the run
     must terminate with a structured [`Deadline] error, and the
     bundle rendering must carry the stalled-seam portrait *)
  with_wd "50" @@ fun wd ->
  match run_crc ~chaos:(chaos "pop@2=stall:400000000") ~watchdog:wd () with
  | Ok _ -> Alcotest.fail "a wedge past its deadline must surface"
  | Error e ->
      check Alcotest.bool "deadline leg" true (e.Parallel.e_leg = `Deadline);
      check Alcotest.bool "Deadline_exceeded primary" true
        (is_deadline e.Parallel.e_exn);
      check Alcotest.bool "watchdog agrees" true (Watchdog.fired wd <> None);
      check Alcotest.bool "error_json carries the deadline object" true
        (Json.member "deadline" (Postmortem.error_json e) <> None)

let test_stall_past_deadline_sharded () =
  with_watchdog @@ fun () ->
  with_wd "50" @@ fun wd ->
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  match
    Parallel.run_sharded_result
      ~chaos:(chaos "parallel.shard1/pop@1=stall:400000000")
      ~watchdog:wd ~queue_capacity:4 ~batch_size:1 ~shards:3
      w.Workload.program ~input
  with
  | Ok _ -> Alcotest.fail "a wedged shard past its deadline must surface"
  | Error e ->
      check Alcotest.bool "deadline leg" true (e.Parallel.e_leg = `Deadline);
      check Alcotest.bool "Deadline_exceeded primary" true
        (is_deadline e.Parallel.e_exn)

let test_stall_within_deadline_invisible () =
  with_watchdog @@ fun () ->
  (* a 30 ms stall against a 400 ms deadline: timing noise only — the
     run completes bit-identically and the watchdog never fires *)
  let c = chaos "pop@2=stall:30000000" in
  with_wd "400" @@ fun wd ->
  match run_crc ~chaos:c ~watchdog:wd () with
  | Error e ->
      Alcotest.failf "stall inside the deadline failed the run: %a"
        Parallel.pp_error e
  | Ok r ->
      check Alcotest.bool "no miss" true (Watchdog.fired wd = None);
      check Alcotest.bool "not degraded" true (r.Parallel.degraded = None);
      same_result "stall within deadline" (inline_crc ()) r.Parallel.result;
      check Alcotest.bool "stall accounted" true
        (Chaos.stalled_ns c >= 30_000_000)

let test_stall_clamp () =
  with_watchdog ~timeout_s:30. @@ fun () ->
  (* a 10 s injected stall is clamped (2 s max), so even with the
     cascade long done the stalled domain wakes and joins promptly —
     the sweep can never be held hostage by its own fault plan *)
  let c = chaos "pop@2=stall:10000000000" in
  let t0 = Unix.gettimeofday () in
  (with_wd "50" @@ fun wd ->
   match run_crc ~chaos:c ~watchdog:wd () with
   | Ok _ -> Alcotest.fail "the clamped wedge must still miss its deadline"
   | Error e ->
       check Alcotest.bool "deadline leg" true
         (e.Parallel.e_leg = `Deadline));
  let wall = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "join bounded by the clamp" true (wall < 10.);
  check Alcotest.bool "slept the clamp, not the plan" true
    (Chaos.stalled_ns c >= 1_000_000_000 && Chaos.stalled_ns c < 5_000_000_000)

(* -- degraded-mode inline completion ------------------------------------ *)

let test_degrade_helper_crash () =
  with_watchdog @@ fun () ->
  match run_crc ~chaos:(chaos "pop@2=raise") ~degrade:`Inline () with
  | Error e ->
      Alcotest.failf "degraded run must complete: %a" Parallel.pp_error e
  | Ok r -> (
      same_result "degraded helper crash" (inline_crc ()) r.Parallel.result;
      match r.Parallel.degraded with
      | None -> Alcotest.fail "report must be flagged degraded"
      | Some d ->
          check Alcotest.bool "helper leg" true (d.Parallel.d_leg = `Helper);
          check Alcotest.bool "resumed past a real cutoff" true
            (d.Parallel.d_cutoff_step >= 0);
          check Alcotest.bool "replayed only the suffix" true
            (d.Parallel.d_replayed_events > 0
            && d.Parallel.d_replayed_events
               < r.Parallel.result.Parallel.events))

let test_degrade_spawn_failure () =
  with_watchdog @@ fun () ->
  match run_crc ~chaos:(chaos "spawn@1=raise") ~degrade:`Inline () with
  | Error e ->
      Alcotest.failf "degraded run must complete: %a" Parallel.pp_error e
  | Ok r -> (
      same_result "degraded spawn failure" (inline_crc ()) r.Parallel.result;
      match r.Parallel.degraded with
      | None -> Alcotest.fail "report must be flagged degraded"
      | Some d ->
          check Alcotest.bool "spawn leg" true (d.Parallel.d_leg = `Spawn);
          check Alcotest.int "nothing was processed before the failure" (-1)
            d.Parallel.d_cutoff_step;
          check Alcotest.int "the whole run was replayed"
            r.Parallel.result.Parallel.events d.Parallel.d_replayed_events)

let test_degrade_deadline_miss () =
  with_watchdog @@ fun () ->
  (* the wedge is detected, the cascade tears the plane down, and the
     application domain completes inline: Ok, flagged [`Deadline] *)
  with_wd "50" @@ fun wd ->
  match
    run_crc ~chaos:(chaos "pop@2=stall:300000000") ~watchdog:wd
      ~degrade:`Inline ()
  with
  | Error e ->
      Alcotest.failf "degraded run must complete: %a" Parallel.pp_error e
  | Ok r -> (
      same_result "degraded deadline miss" (inline_crc ()) r.Parallel.result;
      match r.Parallel.degraded with
      | None -> Alcotest.fail "report must be flagged degraded"
      | Some d ->
          check Alcotest.bool "deadline leg" true
            (d.Parallel.d_leg = `Deadline);
          check Alcotest.bool "failure was a deadline miss" true
            (is_deadline d.Parallel.d_exn))

let test_degrade_does_not_mask_app_crash () =
  with_watchdog @@ fun () ->
  (* an application-leg failure is the caller's own crash: degraded
     completion must not swallow it *)
  match run_crc ~chaos:(chaos "push@3=raise") ~degrade:`Inline () with
  | Ok _ -> Alcotest.fail "an app crash must not be degraded away"
  | Error e -> check Alcotest.bool "app leg" true (e.Parallel.e_leg = `App)

let test_degrade_sharded route name =
  with_watchdog @@ fun () ->
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  match
    Parallel.run_sharded_result
      ~chaos:(chaos "parallel.shard1/pop@1=raise")
      ~route ~degrade:`Inline ~queue_capacity:4 ~batch_size:1 ~shards:3
      w.Workload.program ~input
  with
  | Error e ->
      Alcotest.failf "%s: degraded sharded run must complete: %a" name
        Parallel.pp_error e
  | Ok r -> (
      same_result
        (name ^ ": degraded shard crash")
        (inline_crc ()) r.Parallel.s_result;
      match r.Parallel.s_degraded with
      | None -> Alcotest.failf "%s: report must be flagged degraded" name
      | Some d ->
          check Alcotest.bool (name ^ ": shard leg") true
            (d.Parallel.d_leg = `Shard 1);
          check Alcotest.int
            (name ^ ": sharded degrade always reruns from scratch")
            (-1) d.Parallel.d_cutoff_step)

let test_degrade_sharded_request_reply () =
  test_degrade_sharded `Request_reply "request-reply"

let test_degrade_sharded_broadcast () =
  test_degrade_sharded `Broadcast "broadcast"

(* -- QCheck: false-positive freedom on clean runs ----------------------- *)

let prop_clean_two_domain_never_trips =
  QCheck2.Test.make ~count:12
    ~name:"watchdog: clean two-domain runs never trip"
    QCheck2.Gen.(pair (int_range 4 16) (int_range 0 1000))
    (fun (size, seed) ->
      let w = kernel "hash" in
      let input = w.Workload.input ~size ~seed in
      let inline = Parallel.run_inline w.Workload.program ~input in
      with_wd "250" @@ fun wd ->
      match
        Parallel.run_result ~watchdog:wd ~queue_capacity:4 ~batch_size:2
          w.Workload.program ~input
      with
      | Error _ -> false
      | Ok r ->
          Watchdog.fired wd = None
          && r.Parallel.degraded = None
          && r.Parallel.result = inline.Parallel.i_result)

let prop_clean_sharded_never_trips =
  QCheck2.Test.make ~count:8 ~name:"watchdog: clean sharded runs never trip"
    QCheck2.Gen.(pair (int_range 4 12) (int_range 2 3))
    (fun (size, shards) ->
      let w = kernel "crc" in
      let input = w.Workload.input ~size ~seed:7 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      with_wd "250" @@ fun wd ->
      match
        Parallel.run_sharded_result ~watchdog:wd ~queue_capacity:4
          ~batch_size:2 ~shards w.Workload.program ~input
      with
      | Error _ -> false
      | Ok r ->
          Watchdog.fired wd = None
          && r.Parallel.s_degraded = None
          && r.Parallel.s_result = inline.Parallel.i_result)

(* -- livefilter generation reset ---------------------------------------- *)

let lf_prog =
  Program.make [ Func.make ~name:"main" ~arity:0 [| Instr.Halt |] ]

let lf_func = Program.find lf_prog "main"

let lf_ev step ?(reads = []) ?(writes = []) ?(input_index = -1) instr =
  {
    Event.step;
    tid = 0;
    func = lf_func;
    pc = 0;
    instr;
    reads;
    writes;
    addr = -1;
    next_pc = 0;
    input_index;
    value = 0;
  }

let source step ~writes = lf_ev step ~writes ~input_index:0
    (Instr.Sys (Instr.Read Reg.r0))

let mov step ?(reads = []) ?(writes = []) () =
  lf_ev step ~reads ~writes (Instr.Mov (Reg.r0, Operand.Reg Reg.r1))

let test_livefilter_reset_cycle () =
  (* one producer, one consumer slot, reset every 4 admits: the taint
     on [mem 0] is published, the page saturates H, the consumer's
     taint then dies — after the quiescent reset and an empty
     repopulation, events touching the page are filtered again *)
  (* mem 0 and mem 4096 hash to distinct stamp words (one word covers
     2048 locations), so the source's stamp cannot alias the page
     under test *)
  let lf = Livefilter.create ~reset_interval:4 ~slots:1 () in
  check Alcotest.bool "source forwarded" true
    (Livefilter.admit lf (source 0 ~writes:[ Loc.mem 4096 ]));
  Livefilter.publish_loc lf (Loc.mem 0);
  Livefilter.advance lf ~slot:0 ~step:0;
  (* H-driven liveness: reads of the published page must go through *)
  for i = 1 to 2 do
    check Alcotest.bool "published page is live" true
      (Livefilter.admit lf (mov i ~reads:[ Loc.mem 0 ] ()));
    Livefilter.advance lf ~slot:0 ~step:i
  done;
  check Alcotest.int "no reset yet" 0 (Livefilter.resets lf);
  (* the 4th admit reaches the reset interval at a quiescent point
     (every epoch covers the last forwarded step): H is cleared, the
     generation bumps, the filter stands down *)
  check Alcotest.bool "standdown admit forwards" true
    (Livefilter.admit lf (mov 3 ~reads:[ Loc.mem 0 ] ()));
  check Alcotest.int "one completed clear" 1 (Livefilter.resets lf);
  check Alcotest.int "generation bumped" 1 (Livefilter.generation lf);
  check Alcotest.bool "standing down" true (Livefilter.reset_pending lf);
  (* the consumer's taint died before the reset: its repopulation dump
     publishes nothing, then acks the generation *)
  Livefilter.advance ~repopulate:(fun () -> ()) lf ~slot:0 ~step:3;
  (* filtering resumes, and the stale page is clean again *)
  check Alcotest.bool "stale page filtered after the reset" false
    (Livefilter.admit lf (mov 4 ~reads:[ Loc.mem 0 ] ()));
  check Alcotest.bool "standdown over" false (Livefilter.reset_pending lf);
  check Alcotest.int "the drop is counted" 1 (Livefilter.filtered lf)

let test_livefilter_reset_awaits_every_ack () =
  (* two consumer slots: the filter stands down until *both* have
     republished and acked the new generation *)
  let lf = Livefilter.create ~reset_interval:2 ~slots:2 () in
  check Alcotest.bool "source forwarded" true
    (Livefilter.admit lf (source 0 ~writes:[ Loc.mem 4096 ]));
  Livefilter.advance lf ~slot:0 ~step:0;
  Livefilter.advance lf ~slot:1 ~step:0;
  check Alcotest.bool "reset admit forwards" true
    (Livefilter.admit lf (mov 1 ~reads:[ Loc.mem 4096 ] ()));
  check Alcotest.bool "standing down" true (Livefilter.reset_pending lf);
  Livefilter.advance ~repopulate:(fun () -> ()) lf ~slot:0 ~step:1;
  check Alcotest.bool "one ack is not enough" true
    (Livefilter.admit lf (mov 2 ~reads:[ Loc.mem 8192 ] ()));
  check Alcotest.bool "still standing down" true
    (Livefilter.reset_pending lf);
  Livefilter.advance ~repopulate:(fun () -> ()) lf ~slot:1 ~step:2;
  Livefilter.advance lf ~slot:0 ~step:2;
  check Alcotest.bool "after both acks filtering resumes" false
    (Livefilter.admit lf (mov 3 ~reads:[ Loc.mem 8192 ] ()));
  check Alcotest.bool "standdown over" false (Livefilter.reset_pending lf)

let test_livefilter_reset_disabled () =
  let lf = Livefilter.create ~reset_interval:0 ~slots:1 () in
  check Alcotest.bool "source forwarded" true
    (Livefilter.admit lf (source 0 ~writes:[ Loc.mem 0 ]));
  Livefilter.publish_loc lf (Loc.mem 0);
  Livefilter.advance lf ~slot:0 ~step:0;
  for i = 1 to 50 do
    ignore (Livefilter.admit lf (mov i ~reads:[ Loc.mem 0 ] ()));
    Livefilter.advance lf ~slot:0 ~step:i
  done;
  check Alcotest.int "interval 0 never resets" 0 (Livefilter.resets lf);
  check Alcotest.int "generation never moves" 0 (Livefilter.generation lf)

let test_livefilter_reset_bit_identical () =
  with_watchdog ~timeout_s:120. @@ fun () ->
  (* end to end: a run long enough to cross the runtime's default
     reset interval (8192 admits) stays bit-identical to the inline
     baseline on both runtimes, with the filter actually earning *)
  let w = Spec_like.search in
  let input = w.Workload.input ~size:2000 ~seed:1 in
  let inline = Parallel.run_inline w.Workload.program ~input in
  check Alcotest.bool "the run crosses the reset interval" true
    (inline.Parallel.i_result.Parallel.events > 8192);
  let r = Parallel.run ~forward_filter:true w.Workload.program ~input in
  same_result "filtered two-domain across resets"
    inline.Parallel.i_result r.Parallel.result;
  check Alcotest.bool "filter earned" true (r.Parallel.filtered_events > 0);
  let s =
    Parallel.run_sharded ~forward_filter:true ~shards:2 w.Workload.program
      ~input
  in
  same_result "filtered sharded across resets" inline.Parallel.i_result
    s.Parallel.s_result

let suite =
  [
    Alcotest.test_case "progress epoch parity" `Quick test_progress_parity;
    Alcotest.test_case "deadline grammar" `Quick test_deadline_grammar;
    Alcotest.test_case "shared sampler" `Quick test_shared_sampler;
    Alcotest.test_case "miss detection and cascade order" `Quick
      test_miss_detection_and_cascade;
    Alcotest.test_case "global quiet suppresses misses" `Quick
      test_global_quiet_suppresses_misses;
    Alcotest.test_case "stall past deadline (two-domain)" `Quick
      test_stall_past_deadline_two_domain;
    Alcotest.test_case "stall past deadline (sharded)" `Quick
      test_stall_past_deadline_sharded;
    Alcotest.test_case "stall within deadline invisible" `Quick
      test_stall_within_deadline_invisible;
    Alcotest.test_case "stall clamp bounds the join" `Quick test_stall_clamp;
    Alcotest.test_case "degrade: helper crash" `Quick
      test_degrade_helper_crash;
    Alcotest.test_case "degrade: spawn failure" `Quick
      test_degrade_spawn_failure;
    Alcotest.test_case "degrade: deadline miss" `Quick
      test_degrade_deadline_miss;
    Alcotest.test_case "degrade: app crash not masked" `Quick
      test_degrade_does_not_mask_app_crash;
    Alcotest.test_case "degrade: sharded (request-reply)" `Quick
      test_degrade_sharded_request_reply;
    Alcotest.test_case "degrade: sharded (broadcast)" `Quick
      test_degrade_sharded_broadcast;
    Alcotest.test_case "livefilter: reset cycle" `Quick
      test_livefilter_reset_cycle;
    Alcotest.test_case "livefilter: reset awaits every ack" `Quick
      test_livefilter_reset_awaits_every_ack;
    Alcotest.test_case "livefilter: resets disabled" `Quick
      test_livefilter_reset_disabled;
    Alcotest.test_case "livefilter: bit-identical across resets" `Quick
      test_livefilter_reset_bit_identical;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_clean_two_domain_never_trips; prop_clean_sharded_never_trips ]
