(* Crash bundles: for every fault-plan leg the supervised runtimes can
   blame — helper crash, application crash, spawn failure, a shard's
   own death — a bundle assembled from the failed run must be written
   atomically, parse back, name the same failing leg as the structured
   error, and carry at least one flight-recorder event from the
   crashing domain (the chaos injection fires on the intercepting
   domain, so the evidence is always on the right ring). *)

open Dift_workloads
open Dift_parallel
module Json = Dift_obs.Json
module Flight = Dift_obs.Flight

let check = Alcotest.check

let kernel name =
  match List.find_opt (fun w -> w.Workload.name = name) Spec_like.all with
  | Some w -> w
  | None -> Alcotest.failf "kernel %s missing" name

let plan s =
  match Chaos.plan_of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

let geometry ~runtime ~shards =
  {
    Postmortem.g_runtime = runtime;
    g_shards = shards;
    g_queue_capacity = 4;
    g_batch_size = 1;
    g_xchg_capacity = None;
    g_wire = `Coded;
    g_forward_filter = false;
    g_deadline = None;
    g_degrade = false;
  }

let leg_name : Parallel.leg -> string = function
  | `App -> "app"
  | `Helper -> "helper"
  | `Shard s -> Fmt.str "shard-%d" s
  | `Spawn -> "spawn"
  | `Deadline -> "deadline"

(* The ring that must carry evidence: chaos fires on the intercepting
   domain, and a spawn fault is intercepted by the spawning
   application domain. *)
let crash_domain : Parallel.leg -> string = function
  | `App | `Spawn | `Deadline -> "app"
  | `Helper -> "helper"
  | `Shard s -> Fmt.str "shard-%d" s

(* Write the bundle, read it back through the parser, and run the
   shared assertions.  Returns the parsed bundle for extra checks. *)
let assert_bundle ~expected_leg ~flight ~chaos (e : Parallel.error) geo =
  let j = Postmortem.bundle ~flight ~chaos ~error:e geo in
  let file = Filename.temp_file "dift-bundle" ".json" in
  Postmortem.write ~file j;
  check Alcotest.bool "no temp file left behind" false
    (Sys.file_exists (file ^ ".tmp"));
  let text = In_channel.with_open_bin file In_channel.input_all in
  Sys.remove file;
  let j =
    match Json.of_string text with
    | Ok j -> j
    | Error err -> Alcotest.failf "bundle does not parse: %s" err
  in
  (match Json.member "schema" j with
  | Some (Json.String s) -> check Alcotest.string "schema tag" Postmortem.schema s
  | _ -> Alcotest.fail "bundle has no schema tag");
  (match Option.bind (Json.member "error" j) (Json.member "leg") with
  | Some (Json.String leg) ->
      check Alcotest.string "bundle blames the expected leg"
        (leg_name expected_leg) leg;
      check Alcotest.string "bundle leg matches the returned error"
        (leg_name e.Parallel.e_leg) leg
  | _ -> Alcotest.fail "bundle names no failing leg");
  (match Json.member "fault_plan" j with
  | Some fp ->
      check Alcotest.bool "at least one fault fired" true
        (match Json.member "fired" fp with
        | Some (Json.Int n) -> n >= 1
        | _ -> false)
  | None -> Alcotest.fail "bundle has no fault plan");
  (let doms =
     match Option.bind (Json.member "flight" j) (Json.member "domains") with
     | Some (Json.List ds) -> ds
     | _ -> Alcotest.fail "bundle has no flight section"
   in
   let wanted = crash_domain expected_leg in
   match
     List.find_opt
       (fun d -> Json.member "name" d = Some (Json.String wanted))
       doms
   with
   | None -> Alcotest.failf "no flight ring named %s" wanted
   | Some d -> (
       match Json.member "events" d with
       | Some (Json.List (_ :: _)) -> ()
       | _ -> Alcotest.failf "flight ring %s recorded no events" wanted));
  j

let run_two_domain plan_s expected_leg () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  let flight = Flight.create () in
  let chaos = Chaos.create ~flight (plan plan_s) in
  match
    Parallel.run_result ~flight ~chaos ~queue_capacity:4 ~batch_size:1
      w.Workload.program ~input
  with
  | Ok _ -> Alcotest.failf "plan %s must fail the run" plan_s
  | Error e ->
      check Alcotest.bool "failing leg as planned" true
        (e.Parallel.e_leg = expected_leg);
      ignore
        (assert_bundle ~expected_leg ~flight ~chaos e
           (geometry ~runtime:"parallel" ~shards:1))

let run_sharded plan_s expected_leg () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  let flight = Flight.create () in
  let chaos = Chaos.create ~flight (plan plan_s) in
  match
    Parallel.run_sharded_result ~flight ~chaos ~queue_capacity:4
      ~batch_size:1 ~shards:3 w.Workload.program ~input
  with
  | Ok _ -> Alcotest.failf "plan %s must fail the run" plan_s
  | Error e ->
      check Alcotest.bool "failing leg as planned" true
        (e.Parallel.e_leg = expected_leg);
      ignore
        (assert_bundle ~expected_leg ~flight ~chaos e
           (geometry ~runtime:"sharded" ~shards:3))

let test_bundle_helper_leg = run_two_domain "pop@2=raise" `Helper
let test_bundle_app_leg = run_two_domain "push@3=raise" `App
let test_bundle_spawn_leg = run_two_domain "spawn@1=raise" `Spawn
let test_bundle_shard_leg = run_sharded "parallel.shard1/pop@1=raise" (`Shard 1)
let test_bundle_sharded_spawn_leg = run_sharded "spawn@2=raise" `Spawn

(* The optional sections appear when their sources are supplied, and
   the embedded metrics are the post-mortem registry state. *)
let test_bundle_optional_sections () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  let flight = Flight.create () in
  let reg = Dift_obs.Registry.create () in
  let chaos = Chaos.create ~flight (plan "pop@2=raise") in
  match
    Parallel.run_result ~obs:reg ~flight ~chaos ~queue_capacity:4
      ~batch_size:1 w.Workload.program ~input
  with
  | Ok _ -> Alcotest.fail "plan must fail the run"
  | Error e ->
      let first = Dift_obs.Registry.(to_json (snapshot reg)) in
      let j =
        Postmortem.bundle ~obs:reg ~flight ~chaos ~first_heartbeat:first
          ~extra:[ ("workload", Json.String "crc") ]
          ~error:e
          (geometry ~runtime:"parallel" ~shards:1)
      in
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " present") true
            (Json.member field j <> None))
        [
          "schema"; "error"; "geometry"; "fault_plan"; "metrics";
          "first_heartbeat"; "flight"; "workload";
        ];
      check Alcotest.bool "metrics carry the forwarder ledger" true
        (match
           Option.bind (Json.member "metrics" j) (Json.member "parallel")
         with
        | Some (Json.Obj _) -> true
        | _ -> false)

let suite =
  [
    Alcotest.test_case "bundle: helper leg" `Quick test_bundle_helper_leg;
    Alcotest.test_case "bundle: app leg" `Quick test_bundle_app_leg;
    Alcotest.test_case "bundle: spawn leg" `Quick test_bundle_spawn_leg;
    Alcotest.test_case "bundle: shard leg" `Quick test_bundle_shard_leg;
    Alcotest.test_case "bundle: sharded spawn leg" `Quick
      test_bundle_sharded_spawn_leg;
    Alcotest.test_case "bundle: optional sections" `Quick
      test_bundle_optional_sections;
  ]
