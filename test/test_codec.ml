(* The de-boxed forwarding plane: the SoA codec must be a lossless
   wire — encode ∘ decode is the identity on machine-shaped events
   (compact and explicit descriptors), on events foreign to the
   interned program (the escape hatch), and through the full channel
   framing.  Whole-run equivalence: the coded wire, the boxed wire and
   the producer-side liveness filter all produce bit-identical reports
   on every kernel, in both runtimes, on both shard routes — and the
   filter strictly reduces forwarded volume on taint-sparse streams.
   Plus the codec free ring's [ring.free.*] chaos seam: recycling
   faults degrade, they never change the answer. *)

open Dift_isa
open Dift_vm
open Dift_core
open Dift_workloads
open Dift_parallel

let check = Alcotest.check

(* -- round-trip: encode ∘ decode ≡ identity --------------------------- *)

let prog = Spec_like.crc.Workload.program
let table = Site.of_program prog

(* Decoding must return the program's own function and instruction
   (interning preserves identity), and every dynamic field verbatim. *)
let exec_eq (a : Event.exec) (b : Event.exec) =
  a.Event.step = b.Event.step
  && a.Event.tid = b.Event.tid
  && a.Event.func == b.Event.func
  && a.Event.pc = b.Event.pc
  && a.Event.instr == b.Event.instr
  && a.Event.reads = b.Event.reads
  && a.Event.writes = b.Event.writes
  && a.Event.addr = b.Event.addr
  && a.Event.value = b.Event.value
  && a.Event.next_pc = b.Event.next_pc
  && a.Event.input_index = b.Event.input_index

let pp_exec ppf (e : Event.exec) =
  Fmt.pf ppf "%s:%d step %d r[%a] w[%a] addr %d"
    e.Event.func.Func.name e.Event.pc e.Event.step
    Fmt.(list ~sep:comma int)
    e.Event.reads
    Fmt.(list ~sep:comma int)
    e.Event.writes e.Event.addr

let dyn_gen =
  QCheck2.Gen.(
    let* step = int_bound 100_000 in
    let* tid = int_bound 3 in
    let* value = int_bound 1_000 in
    let* next_pc = int_bound 50 in
    let* input_index = int_range (-1) 40 in
    return (step, tid, value, next_pc, input_index))

(* A machine-shaped event of a real site: the dynamic read/write sets
   are exactly the row's static offsets in one activation frame (plus
   the memory cell for loads/stores), so the encoder's element-wise
   verification succeeds and the compact descriptor is taken. *)
let compact_event_gen =
  QCheck2.Gen.(
    let* site = int_bound (Site.size table - 1) in
    let* frame = int_bound 5 in
    let* addr0 = int_bound 400 in
    let* step, tid, value, next_pc, input_index = dyn_gen in
    let row = Site.row table site in
    let mem = row.Site.s_mem_read || row.Site.s_mem_write in
    let addr = if mem then addr0 else if addr0 mod 3 = 0 then -1 else addr0 in
    let base = frame * Site.frame_stride in
    let regs offs = Array.to_list (Array.map (fun o -> base + o) offs) in
    return
      {
        Event.step;
        tid;
        func = row.Site.s_func;
        pc = row.Site.s_pc;
        instr = row.Site.s_instr;
        reads =
          (regs row.Site.s_read_offs
          @ if row.Site.s_mem_read then [ addr lsl 1 ] else []);
        writes =
          (regs row.Site.s_write_offs
          @ if row.Site.s_mem_write then [ addr lsl 1 ] else []);
        addr;
        next_pc;
        input_index;
        value;
      })

let loc_gen =
  QCheck2.Gen.(
    oneof
      [
        map Loc.mem (int_bound 300);
        map2
          (fun frame r -> Loc.reg ~frame (Reg.make r))
          (int_bound 5)
          (int_bound (Reg.count - 1));
      ])

(* The same sites with arbitrary dynamic location sets: the shape
   diverges from the row, so the explicit descriptor must carry the
   sets verbatim through the overflow area. *)
let explicit_event_gen =
  QCheck2.Gen.(
    let* site = int_bound (Site.size table - 1) in
    let* reads = list_size (int_bound 4) loc_gen in
    let* writes = list_size (int_bound 3) loc_gen in
    let* step, tid, value, next_pc, input_index = dyn_gen in
    let row = Site.row table site in
    return
      {
        Event.step;
        tid;
        func = row.Site.s_func;
        pc = row.Site.s_pc;
        instr = row.Site.s_instr;
        reads;
        writes;
        addr = -1;
        next_pc;
        input_index;
        value;
      })

(* Events foreign to the interned program (a hand-built function that
   is not physically any of its sites, mostly with out-of-range pcs):
   the escape hatch must carry them exactly. *)
let alien_prog =
  Program.make [ Func.make ~name:"main" ~arity:0 [| Instr.Halt |] ]

let alien_func = Program.find alien_prog "main"

let foreign_event_gen =
  QCheck2.Gen.(
    let* pc = int_bound 22 in
    let* reads = list_size (int_bound 3) loc_gen in
    let* writes = list_size (int_bound 2) loc_gen in
    let* step, tid, value, next_pc, input_index = dyn_gen in
    return
      {
        Event.step;
        tid;
        func = alien_func;
        pc;
        instr = Instr.Sys (Instr.Write (Operand.Reg Reg.r0));
        reads;
        writes;
        addr = -1;
        next_pc;
        input_index;
        value;
      })

let event_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, compact_event_gen); (2, explicit_event_gen);
        (1, foreign_event_gen);
      ])

let events_gen = QCheck2.Gen.(list_size (int_range 1 100) event_gen)

(* One shared scratch view, refilled per decode — exactly the
   consumer-side reuse discipline. *)
let scratch () =
  let r0 = Site.row table 0 in
  Event.view_create ~func:r0.Site.s_func ~instr:r0.Site.s_instr

let roundtrip_batch events =
  let enc = Codec.encoder table in
  let b = Codec.batch_create ~events_per_batch:(List.length events) in
  List.iter (Codec.encode enc b) events;
  let v = scratch () in
  List.for_all
    (fun (i, e) ->
      Codec.decode_into table b i v;
      exec_eq e (Event.view_to_exec v))
    (List.mapi (fun i e -> (i, e)) events)

let roundtrip_prop =
  QCheck2.Test.make ~count:200 ~name:"codec: encode ∘ decode ≡ identity"
    ~print:Fmt.(str "%a" (list ~sep:(any "; ") pp_exec))
    events_gen roundtrip_batch

(* Same property through the channel: feed / flush / close framing
   with partial final batches, then a synchronous drain. *)
let roundtrip_channel events =
  let ch =
    Codec.create ~queue_capacity:64 ~events_per_batch:8 ~table ()
  in
  List.iter (Codec.feed ch) events;
  Codec.close ch;
  let out = ref [] in
  Codec.drain ch ~f:(fun v -> out := Event.view_to_exec v :: !out);
  let out = List.rev !out in
  List.length out = List.length events && List.for_all2 exec_eq events out

let roundtrip_channel_prop =
  QCheck2.Test.make ~count:50
    ~name:"codec: channel feed/drain preserves the stream"
    ~print:Fmt.(str "%a" (list ~sep:(any "; ") pp_exec))
    events_gen roundtrip_channel

(* A recycled batch must not leak state into its next fill. *)
let test_batch_recycling () =
  let enc = Codec.encoder table in
  let b = Codec.batch_create ~events_per_batch:4 in
  let mk = QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) in
  let first = mk QCheck2.Gen.(list_repeat 4 event_gen) in
  List.iter (Codec.encode enc b) first;
  Codec.batch_clear b;
  check Alcotest.int "cleared" 0 (Codec.batch_length b);
  let second = mk QCheck2.Gen.(list_repeat 4 event_gen) in
  List.iter (Codec.encode enc b) second;
  let v = scratch () in
  List.iteri
    (fun i e ->
      Codec.decode_into table b i v;
      check Alcotest.bool
        (Fmt.str "event %d survives recycling" i)
        true
        (exec_eq e (Event.view_to_exec v)))
    second

(* -- whole-run equivalence: wires, filter, runtimes, routes ----------- *)

let same_result name (a : Parallel.result) (b : Parallel.result) =
  check Alcotest.bool
    (Fmt.str "%s: outcome agrees" name)
    true (a.Parallel.outcome = b.Parallel.outcome);
  check Alcotest.int (Fmt.str "%s: events" name) a.Parallel.events
    b.Parallel.events;
  check Alcotest.int (Fmt.str "%s: sources" name) a.Parallel.sources
    b.Parallel.sources;
  check Alcotest.int (Fmt.str "%s: sink hits" name) a.Parallel.sink_hits
    b.Parallel.sink_hits;
  check Alcotest.int
    (Fmt.str "%s: sink trace hash" name)
    a.Parallel.sink_trace_hash b.Parallel.sink_trace_hash;
  check Alcotest.int
    (Fmt.str "%s: tainted locations" name)
    a.Parallel.tainted_locations b.Parallel.tainted_locations;
  check Alcotest.int (Fmt.str "%s: shadow words" name)
    a.Parallel.shadow_words b.Parallel.shadow_words;
  check Alcotest.int
    (Fmt.str "%s: taint fingerprint" name)
    a.Parallel.taint_fingerprint b.Parallel.taint_fingerprint

(* Every kernel: boxed wire ≡ coded wire ≡ inline, two-domain. *)
let test_wires_two_domain () =
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:14 ~seed:5 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      List.iter
        (fun wire ->
          let r =
            Parallel.run ~wire ~queue_capacity:8 ~batch_size:16
              w.Workload.program ~input
          in
          same_result
            (Fmt.str "%s/%a" w.Workload.name Channel.pp_wire wire)
            inline.Parallel.i_result r.Parallel.result;
          check Alcotest.bool
            (Fmt.str "%s: wire reported" w.Workload.name)
            true
            (r.Parallel.wire = wire))
        [ `Boxed; `Coded ])
    Spec_like.all

(* Every kernel: both wires, both shard routes, sharded runtime. *)
let test_wires_sharded () =
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:12 ~seed:9 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      List.iter
        (fun (route, wire) ->
          let rep =
            Parallel.run_sharded ~route ~wire ~shards:3 ~queue_capacity:8
              ~batch_size:8 w.Workload.program ~input
          in
          same_result
            (Fmt.str "%s/%s/%a" w.Workload.name
               (match route with
               | `Request_reply -> "request-reply"
               | `Broadcast -> "broadcast")
               Channel.pp_wire wire)
            inline.Parallel.i_result rep.Parallel.s_result)
        [
          (`Request_reply, `Boxed);
          (`Request_reply, `Coded);
          (`Broadcast, `Boxed);
          (`Broadcast, `Coded);
        ])
    Spec_like.all

(* Every kernel: the producer-side liveness filter is invisible in the
   report — bit-identical to the unfiltered run, both runtimes. *)
let test_filter_bit_identical () =
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:14 ~seed:5 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      let filtered =
        Parallel.run ~forward_filter:true w.Workload.program ~input
      in
      same_result
        (Fmt.str "%s/filtered" w.Workload.name)
        inline.Parallel.i_result filtered.Parallel.result;
      let sharded =
        Parallel.run_sharded ~forward_filter:true ~shards:3
          w.Workload.program ~input
      in
      same_result
        (Fmt.str "%s/filtered sharded" w.Workload.name)
        inline.Parallel.i_result sharded.Parallel.s_result)
    Spec_like.all

(* On a taint-sparse stream the filter must actually drop traffic:
   the forwarded volume strictly shrinks, while the report stays
   whole (the dropped events are counted back in). *)
let test_filter_reduces_forwarding () =
  let w = Spec_like.search in
  let input = w.Workload.input ~size:300 ~seed:1 in
  let r = Parallel.run ~forward_filter:true w.Workload.program ~input in
  check Alcotest.bool "two-domain: events filtered" true
    (r.Parallel.filtered_events > 0);
  let unfiltered = Parallel.run w.Workload.program ~input in
  check Alcotest.bool "two-domain: forwarded volume shrank" true
    (r.Parallel.result.Parallel.events - r.Parallel.filtered_events
    < unfiltered.Parallel.result.Parallel.events);
  let s =
    Parallel.run_sharded ~forward_filter:true ~shards:2 w.Workload.program
      ~input
  in
  check Alcotest.bool "sharded: events filtered" true
    (s.Parallel.s_filtered_events > 0);
  check Alcotest.int "sharded: report stays whole"
    r.Parallel.result.Parallel.events s.Parallel.s_result.Parallel.events

(* Under [propagate_control] every event is entangled with per-thread
   control state, so the filter must silently stand down. *)
let test_filter_stands_down_under_control () =
  let w = Spec_like.search in
  let input = w.Workload.input ~size:10 ~seed:2 in
  let policy = Policy.full in
  let inline = Parallel.run_inline ~policy w.Workload.program ~input in
  let r =
    Parallel.run ~policy ~forward_filter:true w.Workload.program ~input
  in
  same_result "search/full filtered" inline.Parallel.i_result
    r.Parallel.result;
  check Alcotest.int "filter stood down" 0 r.Parallel.filtered_events

(* -- the codec free ring's chaos seam --------------------------------- *)

let plan s =
  match Chaos.plan_of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

(* Recycling faults (drop, abort) only degrade the free ring — the
   producer falls back to fresh lanes and the answer is unchanged. *)
let test_free_ring_faults_benign () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:12 ~seed:4 in
  let inline = Parallel.run_inline w.Workload.program ~input in
  List.iter
    (fun p ->
      let chaos = Chaos.create (plan p) in
      let r =
        Parallel.run ~chaos ~queue_capacity:4 ~batch_size:8
          w.Workload.program ~input
      in
      same_result (Fmt.str "crc under %s" p) inline.Parallel.i_result
        r.Parallel.result;
      check Alcotest.bool (Fmt.str "%s fired" p) true (Chaos.fired chaos > 0))
    [
      "ring.free.parallel/pop@1=drop";
      "ring.free.parallel/push@1=drop";
      "ring.free.parallel/pop@2=abort";
      "ring.free.parallel/push@2=abort";
    ]

(* A raise on the free ring crashes the producer leg like any other
   producer-side fault: supervised shutdown, structured error. *)
let test_free_ring_raise_crashes_producer () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:12 ~seed:4 in
  let chaos = Chaos.create (plan "ring.free.parallel/pop@1=raise") in
  match
    Parallel.run_result ~chaos ~queue_capacity:4 ~batch_size:8
      w.Workload.program ~input
  with
  | Ok _ -> Alcotest.fail "injected raise did not surface"
  | Error e -> (
      check Alcotest.bool "blamed on the application leg" true
        (e.Parallel.e_leg = `App);
      match e.Parallel.e_exn with
      | Chaos.Injected _ -> ()
      | ex -> Alcotest.failf "unexpected exn %s" (Printexc.to_string ex))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ roundtrip_prop; roundtrip_channel_prop ]

let suite =
  [
    Alcotest.test_case "batch recycling is clean" `Quick
      test_batch_recycling;
    Alcotest.test_case "boxed ≡ coded ≡ inline (two-domain, all kernels)"
      `Quick test_wires_two_domain;
    Alcotest.test_case "boxed ≡ coded ≡ inline (sharded, both routes)"
      `Quick test_wires_sharded;
    Alcotest.test_case "forward filter is bit-identical (all kernels)"
      `Quick test_filter_bit_identical;
    Alcotest.test_case "forward filter strictly reduces forwarding" `Quick
      test_filter_reduces_forwarding;
    Alcotest.test_case "forward filter stands down under control taint"
      `Quick test_filter_stands_down_under_control;
    Alcotest.test_case "free-ring faults are benign" `Quick
      test_free_ring_faults_benign;
    Alcotest.test_case "free-ring raise crashes the producer" `Quick
      test_free_ring_raise_crashes_producer;
  ]
  @ qcheck_tests
