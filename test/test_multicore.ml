(* Helper-thread DIFT: hardware-assisted forwarding keeps the
   main-core overhead moderate (the paper's 48%-class result); the
   software queue is several times slower; the helper still computes
   the same taint verdicts as inline DIFT. *)

open Dift_vm
open Dift_core
open Dift_workloads
open Dift_multicore

let check = Alcotest.check

let kernel_report channel (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  Helper.run ~channel w.Workload.program ~input

let test_hw_overhead_moderate () =
  List.iter
    (fun (w : Workload.t) ->
      let r = kernel_report Helper.Hardware w ~size:20 ~seed:3 in
      let ov = Helper.main_overhead r in
      (* the claim is the upper bound (hardware forwarding keeps the
         main core's overhead moderate); the floor only asserts the
         channel is not modelled as free.  Call-dense register kernels
         (feistel) sit well below the loop kernels' 20-45%. *)
      check Alcotest.bool
        (Fmt.str "%s hw overhead %.0f%% in (2%%, 120%%)" w.Workload.name
           (100. *. ov))
        true
        (ov > 0.02 && ov < 1.20))
    Spec_like.all

let test_sw_much_slower_than_hw () =
  List.iter
    (fun (w : Workload.t) ->
      let hw = kernel_report Helper.Hardware w ~size:16 ~seed:5 in
      let sw = kernel_report Helper.Software w ~size:16 ~seed:5 in
      check Alcotest.bool
        (Fmt.str "%s: sw %.2fx > 2 * hw %.2fx" w.Workload.name
           (Helper.total_slowdown sw) (Helper.total_slowdown hw))
        true
        (Helper.total_slowdown sw > 2. *. Helper.total_slowdown hw))
    [ Spec_like.crc; Spec_like.sieve; Spec_like.matmul ]

(* The helper computes the same taint verdicts as an inline engine. *)
let test_helper_taint_agrees_with_inline () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:30 ~seed:9 in
  (* inline *)
  let module E = Engine.Make (Taint.Bool) in
  let m = Machine.create w.Workload.program ~input in
  let eng = E.create w.Workload.program in
  let inline_hits = ref 0 in
  E.on_sink eng (fun _ taint _ -> if taint then incr inline_hits);
  E.attach eng m;
  ignore (Machine.run m);
  (* helper *)
  let r = Helper.run ~channel:Helper.Hardware w.Workload.program ~input in
  check Alcotest.int "same sink hits" !inline_hits r.Helper.sink_hits;
  check Alcotest.bool "hits observed" true (r.Helper.sink_hits > 0)

(* A tiny queue forces stalls; a large one removes them. *)
let test_queue_capacity_matters () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size:12 ~seed:2 in
  let small =
    Helper.run ~channel:Helper.Software ~queue_capacity:4
      w.Workload.program ~input
  in
  let large =
    Helper.run ~channel:Helper.Software ~queue_capacity:65536
      w.Workload.program ~input
  in
  check Alcotest.bool
    (Fmt.str "small queue stalls more: %d >= %d" small.Helper.stall_cycles
       large.Helper.stall_cycles)
    true
    (small.Helper.stall_cycles >= large.Helper.stall_cycles);
  check Alcotest.bool "small queue stalls exist" true
    (small.Helper.stall_cycles > 0)

let suite =
  [
    Alcotest.test_case "hw overhead moderate" `Quick
      test_hw_overhead_moderate;
    Alcotest.test_case "sw much slower than hw" `Quick
      test_sw_much_slower_than_hw;
    Alcotest.test_case "helper taint agrees with inline" `Quick
      test_helper_taint_agrees_with_inline;
    Alcotest.test_case "queue capacity matters" `Quick
      test_queue_capacity_matters;
  ]
