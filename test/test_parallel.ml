(* The real two-domain runtime computes exactly what the sequential
   engine computes: same sink hits, same sink order, same final shadow
   state — on every kernel, across queue/batch shapes.  Plus unit
   coverage of the SPSC channel itself (ordering, blocking, shutdown,
   abort) and helper-side exception propagation. *)

open Dift_vm
open Dift_core
open Dift_workloads
open Dift_parallel

let check = Alcotest.check

(* -- the forwarding channel ------------------------------------------- *)

let test_spsc_order () =
  let q = Spsc.create ~capacity:4 () in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop acc =
          match Spsc.pop q with
          | None -> List.rev acc
          | Some x -> loop (x :: acc)
        in
        loop [])
  in
  for i = 1 to n do
    Spsc.push q i
  done;
  Spsc.close q;
  let received = Domain.join consumer in
  check Alcotest.int "all elements" n (List.length received);
  check Alcotest.bool "FIFO order" true
    (List.for_all2 ( = ) received (List.init n (fun i -> i + 1)))

let test_spsc_backpressure () =
  let q = Spsc.create ~capacity:2 () in
  (* a slow consumer forces the producer to park *)
  let consumer =
    Domain.spawn (fun () ->
        let rec loop n =
          match Spsc.pop q with
          | None -> n
          | Some _ ->
              if n < 4 then Unix.sleepf 0.002;
              loop (n + 1)
        in
        loop 0)
  in
  for i = 1 to 64 do
    Spsc.push q i
  done;
  Spsc.close q;
  let popped = Domain.join consumer in
  check Alcotest.int "consumer saw everything" 64 popped;
  check Alcotest.bool "producer stalled at least once" true
    (Spsc.producer_stalls q > 0)

let test_spsc_close_drains () =
  let q = Spsc.create ~capacity:8 () in
  Spsc.push q 1;
  Spsc.push q 2;
  Spsc.close q;
  check Alcotest.(option int) "first" (Some 1) (Spsc.pop q);
  check Alcotest.(option int) "second" (Some 2) (Spsc.pop q);
  check Alcotest.(option int) "then end of stream" None (Spsc.pop q);
  check Alcotest.bool "push after close rejected" true
    (match Spsc.push q 3 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_spsc_abort_unblocks_producer () =
  let q = Spsc.create ~capacity:1 () in
  Spsc.push q 0;
  (* the ring is now full; a second push would block forever without
     the abort coming from another domain *)
  let aborter =
    Domain.spawn (fun () ->
        Unix.sleepf 0.005;
        Spsc.abort q)
  in
  Spsc.push q 1;
  (* non-blocking now: aborted pushes are dropped *)
  Spsc.push q 2;
  Domain.join aborter;
  check Alcotest.bool "drops counted" true (Spsc.dropped q >= 1);
  check Alcotest.(option int) "aborted channel reads empty" None
    (Spsc.pop q)

(* -- parallel vs sequential equivalence ------------------------------- *)

let same_result name (a : Parallel.result) (b : Parallel.result) =
  check Alcotest.bool
    (Fmt.str "%s: outcome agrees" name)
    true (a.Parallel.outcome = b.Parallel.outcome);
  check Alcotest.int (Fmt.str "%s: events" name) a.Parallel.events
    b.Parallel.events;
  check Alcotest.int (Fmt.str "%s: sources" name) a.Parallel.sources
    b.Parallel.sources;
  check Alcotest.int (Fmt.str "%s: sink hits" name) a.Parallel.sink_hits
    b.Parallel.sink_hits;
  check Alcotest.int
    (Fmt.str "%s: sink trace hash" name)
    a.Parallel.sink_trace_hash b.Parallel.sink_trace_hash;
  check Alcotest.int
    (Fmt.str "%s: tainted locations" name)
    a.Parallel.tainted_locations b.Parallel.tainted_locations;
  check Alcotest.int (Fmt.str "%s: shadow words" name)
    a.Parallel.shadow_words b.Parallel.shadow_words;
  check Alcotest.int
    (Fmt.str "%s: taint fingerprint" name)
    a.Parallel.taint_fingerprint b.Parallel.taint_fingerprint

(* Every kernel: the helper-domain run equals the inline run. *)
let test_equivalence_all_kernels () =
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:20 ~seed:7 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      let par =
        Parallel.run ~queue_capacity:8 ~batch_size:16 w.Workload.program
          ~input
      in
      same_result w.Workload.name inline.Parallel.i_result
        par.Parallel.result;
      check Alcotest.bool
        (Fmt.str "%s: events actually flowed" w.Workload.name)
        true
        (par.Parallel.batches > 0
        && par.Parallel.result.Parallel.events > 0))
    Spec_like.all

(* Deterministic, fixed-seed, small-size equivalence across channel
   shapes — the queue geometry must never change the answer. *)
let test_equivalence_fixed_seed_shapes () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:10 ~seed:42 in
  let config = { Machine.default_config with seed = 42 } in
  let inline = Parallel.run_inline ~config w.Workload.program ~input in
  List.iter
    (fun (queue_capacity, batch_size) ->
      let par =
        Parallel.run ~config ~queue_capacity ~batch_size
          w.Workload.program ~input
      in
      same_result
        (Fmt.str "crc q=%d b=%d" queue_capacity batch_size)
        inline.Parallel.i_result par.Parallel.result)
    [ (1, 1); (2, 8); (64, 64); (1024, 256) ]

(* The security policy (pointer flows) must survive the domain hop
   identically too. *)
let test_equivalence_security_policy () =
  let w = Spec_like.bfs in
  let input = w.Workload.input ~size:16 ~seed:3 in
  let policy = Policy.security in
  let inline = Parallel.run_inline ~policy w.Workload.program ~input in
  let par = Parallel.run ~policy w.Workload.program ~input in
  same_result "bfs/security" inline.Parallel.i_result par.Parallel.result

(* A tiny ring forces backpressure; the result is still identical and
   the stalls are visible in the report. *)
let test_backpressure_accounting () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size:14 ~seed:2 in
  let inline = Parallel.run_inline w.Workload.program ~input in
  let par =
    Parallel.run ~queue_capacity:1 ~batch_size:1 w.Workload.program ~input
  in
  same_result "matmul tiny-queue" inline.Parallel.i_result
    par.Parallel.result;
  check Alcotest.int "one event per batch"
    par.Parallel.result.Parallel.events par.Parallel.batches;
  check Alcotest.bool "some backpressure or waiting happened" true
    (par.Parallel.producer_stalls > 0 || par.Parallel.consumer_waits >= 0)

(* A helper-side exception must not deadlock the application domain
   and must surface in the caller. *)
exception Helper_boom

let test_helper_exception_propagates () =
  let w = Spec_like.sieve in
  let input = w.Workload.input ~size:20 ~seed:1 in
  let raised =
    match
      Parallel.run ~queue_capacity:2 ~batch_size:4
        ~on_sink:(fun _ _ _ -> raise Helper_boom)
        w.Workload.program ~input
    with
    | _ -> false
    | exception Helper_boom -> true
  in
  check Alcotest.bool "helper exception re-raised at join" true raised

let suite =
  [
    Alcotest.test_case "spsc order" `Quick test_spsc_order;
    Alcotest.test_case "spsc backpressure" `Quick test_spsc_backpressure;
    Alcotest.test_case "spsc close drains" `Quick test_spsc_close_drains;
    Alcotest.test_case "spsc abort unblocks producer" `Quick
      test_spsc_abort_unblocks_producer;
    Alcotest.test_case "parallel ≡ inline on all kernels" `Quick
      test_equivalence_all_kernels;
    Alcotest.test_case "parallel ≡ inline, fixed seed, channel shapes"
      `Quick test_equivalence_fixed_seed_shapes;
    Alcotest.test_case "parallel ≡ inline under security policy" `Quick
      test_equivalence_security_policy;
    Alcotest.test_case "backpressure accounted" `Quick
      test_backpressure_accounting;
    Alcotest.test_case "helper exception propagates" `Quick
      test_helper_exception_propagates;
  ]
