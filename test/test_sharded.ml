(* The sharded N-helper runtime computes exactly what the sequential
   engine computes — same sink trace, same stats, same final shadow —
   for every workload kernel at 1, 2 and 4 shards, on both cross-shard
   routes, and (as a QCheck property) for random event streams that
   force cross-shard source/dest splits, in all three taint domains.
   Plus the regression test for channel-geometry validation. *)

open Dift_isa
open Dift_vm
open Dift_core
open Dift_workloads
open Dift_parallel

let check = Alcotest.check

let same_result name (a : Parallel.result) (b : Parallel.result) =
  check Alcotest.bool
    (Fmt.str "%s: outcome agrees" name)
    true (a.Parallel.outcome = b.Parallel.outcome);
  check Alcotest.int (Fmt.str "%s: events" name) a.Parallel.events
    b.Parallel.events;
  check Alcotest.int (Fmt.str "%s: sources" name) a.Parallel.sources
    b.Parallel.sources;
  check Alcotest.int (Fmt.str "%s: sink hits" name) a.Parallel.sink_hits
    b.Parallel.sink_hits;
  check Alcotest.int
    (Fmt.str "%s: sink trace hash" name)
    a.Parallel.sink_trace_hash b.Parallel.sink_trace_hash;
  check Alcotest.int
    (Fmt.str "%s: tainted locations" name)
    a.Parallel.tainted_locations b.Parallel.tainted_locations;
  check Alcotest.int (Fmt.str "%s: shadow words" name)
    a.Parallel.shadow_words b.Parallel.shadow_words;
  check Alcotest.int
    (Fmt.str "%s: taint fingerprint" name)
    a.Parallel.taint_fingerprint b.Parallel.taint_fingerprint

(* -- every kernel, 1/2/4 shards, bit-identical to inline -------------- *)

let test_equivalence_all_kernels () =
  let found_cross = ref false in
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:14 ~seed:11 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      List.iter
        (fun shards ->
          let rep =
            Parallel.run_sharded ~queue_capacity:8 ~batch_size:8 ~shards
              w.Workload.program ~input
          in
          same_result
            (Fmt.str "%s/shards=%d" w.Workload.name shards)
            inline.Parallel.i_result rep.Parallel.s_result;
          if rep.Parallel.s_cross_events > 0 then found_cross := true)
        [ 1; 2; 4 ])
    Spec_like.all;
  (* if no kernel ever crossed shards, the exchange protocol was never
     exercised and the equivalences above prove nothing about it *)
  check Alcotest.bool "cross-shard exchange exercised" true !found_cross

(* The sharded runtime must also agree with the two-domain [run]
   (which asserts the hash chain is the same one [make_engine] mixes). *)
let test_agrees_with_two_domain_run () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:12 ~seed:5 in
  let two = Parallel.run w.Workload.program ~input in
  let sharded =
    Parallel.run_sharded ~shards:2 w.Workload.program ~input
  in
  same_result "crc run vs run_sharded" two.Parallel.result
    sharded.Parallel.s_result

(* Broadcast replication: same answer, every policy allowed. *)
let test_broadcast_route () =
  List.iter
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size:12 ~seed:9 in
      let inline = Parallel.run_inline w.Workload.program ~input in
      let rep =
        Parallel.run_sharded ~route:`Broadcast ~shards:3
          w.Workload.program ~input
      in
      same_result
        (Fmt.str "%s/broadcast" w.Workload.name)
        inline.Parallel.i_result rep.Parallel.s_result)
    [ Spec_like.crc; Spec_like.qsort ]

(* The security policy (pointer flows) must survive sharding. *)
let test_security_policy () =
  let w = Spec_like.bfs in
  let input = w.Workload.input ~size:14 ~seed:3 in
  let policy = Policy.security in
  let inline = Parallel.run_inline ~policy w.Workload.program ~input in
  let rep =
    Parallel.run_sharded ~policy ~shards:4 w.Workload.program ~input
  in
  same_result "bfs/security sharded" inline.Parallel.i_result
    rep.Parallel.s_result

(* Control-flow taint entangles all events through per-thread state:
   the exact route must refuse it, the broadcast route must get it
   right. *)
let test_control_policy () =
  let w = Spec_like.search in
  let input = w.Workload.input ~size:10 ~seed:2 in
  let policy = Policy.full in
  check Alcotest.bool "request-reply rejects propagate_control" true
    (match
       Parallel.run_sharded ~policy ~shards:2 w.Workload.program ~input
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let inline = Parallel.run_inline ~policy w.Workload.program ~input in
  let rep =
    Parallel.run_sharded ~policy ~route:`Broadcast ~shards:2
      w.Workload.program ~input
  in
  same_result "search/full broadcast" inline.Parallel.i_result
    rep.Parallel.s_result

(* -- regression: channel geometry below 1 must raise, not hang ------- *)

let raises_invalid f =
  match f () with _ -> false | exception Invalid_argument _ -> true

let test_invalid_geometry_rejected () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:4 ~seed:1 in
  let p = w.Workload.program in
  List.iter
    (fun (name, f) ->
      check Alcotest.bool name true (raises_invalid f))
    [
      ( "run: queue_capacity 0",
        fun () -> ignore (Parallel.run ~queue_capacity:0 p ~input) );
      ( "run: batch_size 0",
        fun () -> ignore (Parallel.run ~batch_size:0 p ~input) );
      ( "run: batch_size negative",
        fun () -> ignore (Parallel.run ~batch_size:(-3) p ~input) );
      ( "run_sharded: shards 0",
        fun () -> ignore (Parallel.run_sharded ~shards:0 p ~input) );
      ( "run_sharded: shards negative",
        fun () -> ignore (Parallel.run_sharded ~shards:(-1) p ~input) );
      ( "run_sharded: queue_capacity 0",
        fun () ->
          ignore (Parallel.run_sharded ~queue_capacity:0 ~shards:2 p ~input)
      );
      ( "run_sharded: batch_size 0",
        fun () ->
          ignore (Parallel.run_sharded ~batch_size:0 ~shards:2 p ~input) );
    ]

(* Sharded sink callbacks fire at join, in global step order — the
   same observations, in the same order, as the streaming runtimes. *)
let test_deferred_on_sink_order () =
  let w = Spec_like.rle in
  let input = w.Workload.input ~size:12 ~seed:8 in
  let observe acc sink taint (e : Event.exec) =
    acc := (Engine.sink_to_string sink, taint, e.Event.step) :: !acc
  in
  let inline_obs = ref [] in
  let _ =
    Parallel.run_inline ~on_sink:(observe inline_obs) w.Workload.program
      ~input
  in
  let sharded_obs = ref [] in
  let _ =
    Parallel.run_sharded ~shards:3 ~on_sink:(observe sharded_obs)
      w.Workload.program ~input
  in
  check Alcotest.bool "same sink observations, same order" true
    (!inline_obs = !sharded_obs);
  check Alcotest.bool "observations non-empty" true (!inline_obs <> [])

(* An exception from the deferred on_sink surfaces at the caller. *)
exception Sink_boom

let test_on_sink_exception () =
  let w = Spec_like.sieve in
  let input = w.Workload.input ~size:10 ~seed:1 in
  check Alcotest.bool "on_sink exception re-raised" true
    (match
       Parallel.run_sharded ~shards:2
         ~on_sink:(fun _ _ _ -> raise Sink_boom)
         w.Workload.program ~input
     with
    | _ -> false
    | exception Sink_boom -> true)

(* -- QCheck: random streams, sharded(N) ≡ sharded(1) ≡ sequential ---- *)

(* A synthetic one-function program: stream events only need a [func]
   to name their site; no machine ever runs it. *)
let stream_prog =
  Program.make [ Func.make ~name:"main" ~arity:0 [| Instr.Halt |] ]

let stream_func = Program.find stream_prog "main"

(* Locations spanning several 64-location blocks in both planes, so
   independently drawn reads/writes frequently split across shards —
   the property is vacuous without cross-shard events. *)
let loc_gen =
  QCheck2.Gen.(
    oneof
      [
        map Loc.mem (int_bound 300);
        map2
          (fun frame r -> Loc.reg ~frame (Reg.make r))
          (int_bound 5)
          (int_bound (Reg.count - 1));
      ])

(* Abstract stream operations, lowered to Event.exec records with
   sequential step numbers. *)
type sop =
  | SRead of Loc.t
  | SMov of Loc.t * Loc.t
  | SAdd of Loc.t * Loc.t * Loc.t
  | SLoad of Loc.t * Loc.t * Loc.t  (* dst, mem source, address reg *)
  | SStore of Loc.t * Loc.t * Loc.t  (* mem dst, value source, address reg *)
  | SOut of Loc.t
  | SBr of Loc.t
  | SCheck of Loc.t
  | SNop

let pp_sop ppf = function
  | SRead l -> Fmt.pf ppf "read>%d" l
  | SMov (s, d) -> Fmt.pf ppf "mov %d>%d" s d
  | SAdd (a, b, d) -> Fmt.pf ppf "add %d,%d>%d" a b d
  | SLoad (d, m, a) -> Fmt.pf ppf "load %d@%d>%d" m a d
  | SStore (d, v, a) -> Fmt.pf ppf "store %d@%d>%d" v a d
  | SOut l -> Fmt.pf ppf "out<%d" l
  | SBr l -> Fmt.pf ppf "br<%d" l
  | SCheck l -> Fmt.pf ppf "check<%d" l
  | SNop -> Fmt.pf ppf "nop"

let sop_gen =
  QCheck2.Gen.(
    frequency
      [
        (2, map (fun l -> SRead l) loc_gen);
        (3, map2 (fun s d -> SMov (s, d)) loc_gen loc_gen);
        (3, map3 (fun a b d -> SAdd (a, b, d)) loc_gen loc_gen loc_gen);
        (2, map3 (fun d m a -> SLoad (d, m, a)) loc_gen loc_gen loc_gen);
        (2, map3 (fun d v a -> SStore (d, v, a)) loc_gen loc_gen loc_gen);
        (1, map (fun l -> SOut l) loc_gen);
        (1, map (fun l -> SBr l) loc_gen);
        (1, map (fun l -> SCheck l) loc_gen);
        (1, return SNop);
      ])

let stream_gen = QCheck2.Gen.(list_size (int_range 1 150) sop_gen)

let event_of_sop step sop =
  let ev ?(reads = []) ?(writes = []) ?(input_index = -1) instr =
    {
      Event.step;
      tid = 0;
      func = stream_func;
      pc = step mod 23;
      instr;
      reads;
      writes;
      addr = -1;
      next_pc = 0;
      input_index;
      value = 0;
    }
  in
  match sop with
  | SRead l ->
      (* some reads hit input exhaustion (input_index = -1): no source *)
      ev ~writes:[ l ]
        ~input_index:(if step mod 5 = 0 then -1 else step)
        (Instr.Sys (Instr.Read Reg.r0))
  | SMov (s, d) ->
      ev ~reads:[ s ] ~writes:[ d ] (Instr.Mov (Reg.r0, Operand.Reg Reg.r1))
  | SAdd (a, b, d) ->
      ev ~reads:[ a; b ] ~writes:[ d ]
        (Instr.Binop (Instr.Add, Reg.r0, Operand.Reg Reg.r1, Operand.Reg Reg.r2))
  | SLoad (d, m, a) ->
      ev ~reads:[ m; a ] ~writes:[ d ]
        (Instr.Load (Reg.r0, Operand.Reg Reg.r1, 0))
  | SStore (d, v, a) ->
      ev ~reads:[ v; a ] ~writes:[ d ]
        (Instr.Store (Operand.Reg Reg.r0, Operand.Reg Reg.r1, 0))
  | SOut l -> ev ~reads:[ l ] (Instr.Sys (Instr.Write (Operand.Reg Reg.r0)))
  | SBr l -> ev ~reads:[ l ] (Instr.Br (Operand.Reg Reg.r0, 0, 0))
  | SCheck l -> ev ~reads:[ l ] (Instr.Sys (Instr.Check (Operand.Reg Reg.r0)))
  | SNop -> ev Instr.Nop

let events_of_stream ops = List.mapi event_of_sop ops

module Stream_prop (D : Taint.DOMAIN) = struct
  module SE = Shard_engine.Make (D)

  (* Everything observable about a merged run.  Taint values inside
     the sink list and the fingerprint are compared structurally: the
     exchange ships representations verbatim and the home shard
     replays the exact sequential join order, so representations (not
     just abstract values) must coincide. *)
  let key (m : SE.merged) =
    ( m.SE.m_events,
      m.SE.m_sources,
      m.SE.m_sink_hits,
      List.map
        (fun (step, sink, taint, _) ->
          (step, Engine.sink_to_string sink, taint))
        m.SE.m_sinks,
      m.SE.m_tainted_locations,
      m.SE.m_shadow_words,
      m.SE.m_fingerprint )

  let agree ?policy ops =
    let events = events_of_stream ops in
    let reference = key (SE.sequential ?policy stream_prog events) in
    List.for_all
      (fun (shards, queue_capacity, batch_size) ->
        key
          (SE.run_stream ?policy ~shards ~queue_capacity ~batch_size
             ~xchg_capacity:4 stream_prog events)
        = reference)
      [ (1, 8, 8); (2, 4, 4); (4, 2, 3) ]

  let property name =
    QCheck2.Test.make ~count:30
      ~name:(Fmt.str "sharded(4) ≡ sharded(2) ≡ sharded(1) ≡ sequential (%s)" name)
      ~print:Fmt.(str "%a" (list ~sep:(any "; ") pp_sop))
      stream_gen
      (fun ops -> agree ops)

  let property_security name =
    QCheck2.Test.make ~count:15
      ~name:(Fmt.str "sharded ≡ sequential, security policy (%s)" name)
      ~print:Fmt.(str "%a" (list ~sep:(any "; ") pp_sop))
      stream_gen
      (fun ops -> agree ~policy:Policy.security ops)
end

module Bool_prop = Stream_prop (Taint.Bool)
module Pc_prop = Stream_prop (Taint.Pc)
module Input_set_prop = Stream_prop (Taint.Input_set)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      Bool_prop.property "Bool";
      Pc_prop.property "Pc";
      Input_set_prop.property "Input_set";
      Bool_prop.property_security "Bool";
    ]

let suite =
  [
    Alcotest.test_case "sharded ≡ inline on all kernels (1/2/4 shards)"
      `Quick test_equivalence_all_kernels;
    Alcotest.test_case "sharded ≡ two-domain run" `Quick
      test_agrees_with_two_domain_run;
    Alcotest.test_case "broadcast route ≡ inline" `Quick
      test_broadcast_route;
    Alcotest.test_case "security policy survives sharding" `Quick
      test_security_policy;
    Alcotest.test_case "control policy: rejected exact, correct broadcast"
      `Quick test_control_policy;
    Alcotest.test_case "invalid channel geometry raises" `Quick
      test_invalid_geometry_rejected;
    Alcotest.test_case "deferred on_sink: same observations, same order"
      `Quick test_deferred_on_sink_order;
    Alcotest.test_case "on_sink exception surfaces at caller" `Quick
      test_on_sink_exception;
  ]
  @ qcheck_tests
