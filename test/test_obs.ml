(* Tests for the observability layer: the metrics registry (counters,
   gauges, histograms, spans), snapshotting and its JSON rendering,
   and the cross-domain stats-correctness regression — a third domain
   snapshotting Spsc counters while two domains hammer the ring. *)

open Dift_obs

let check = Alcotest.check

(* -- counters / gauges ----------------------------------------------------- *)

let test_counter () =
  let reg = Registry.create () in
  let c = Registry.counter reg "t.hits" ~help:"hits" in
  check Alcotest.int "starts at zero" 0 (Registry.value c);
  Registry.incr c;
  Registry.incr c;
  Registry.add c 40;
  check Alcotest.int "incr and add" 42 (Registry.value c);
  Registry.add c (-7);
  check Alcotest.int "negative add ignored (monotonic)" 42 (Registry.value c);
  (* idempotent registration returns the same cell *)
  let c' = Registry.counter reg "t.hits" in
  Registry.incr c';
  check Alcotest.int "re-registration shares the cell" 43 (Registry.value c)

let test_kind_mismatch () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "t.x");
  Alcotest.check_raises "counter re-registered as gauge"
    (Invalid_argument "Registry: t.x already registered as a counter")
    (fun () -> ignore (Registry.gauge reg "t.x"))

let test_gauge_fn_rebinds () =
  let reg = Registry.create () in
  Registry.gauge_fn reg "t.depth" (fun () -> 1);
  Registry.gauge_fn reg "t.depth" (fun () -> 2);
  match Registry.(find (snapshot reg) "t.depth") with
  | Some (Registry.Gauge_v v) ->
      check Alcotest.int "newest callback wins" 2 v
  | _ -> Alcotest.fail "t.depth missing from snapshot"

(* -- histograms ------------------------------------------------------------ *)

let test_histogram () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "t.sizes" ~buckets:[ 10; 1; 100 ] in
  List.iter (Registry.observe h) [ 0; 1; 2; 10; 11; 100; 1000 ];
  check Alcotest.int "observations" 7 (Registry.observations h);
  match Registry.(find (snapshot reg) "t.sizes") with
  | Some (Registry.Histogram_v { buckets; counts; count; sum }) ->
      check (Alcotest.list Alcotest.int) "bounds sorted" [ 1; 10; 100 ]
        buckets;
      (* <=1: {0,1}; <=10: {2,10}; <=100: {11,100}; overflow: {1000} *)
      check (Alcotest.list Alcotest.int) "bucket counts" [ 2; 2; 2; 1 ]
        counts;
      check Alcotest.int "count" 7 count;
      check Alcotest.int "sum" 1124 sum
  | _ -> Alcotest.fail "t.sizes missing from snapshot"

(* -- histogram bucket-edge regression -------------------------------------- *)

(* Bucket bounds are inclusive: an observation equal to a bound lands
   in that bound's bucket, never the next one.  Negative observations
   used to land in the lowest bucket while pulling [sum] backwards,
   making snapshots non-monotonic; now they are ignored, like negative
   counter increments. *)
let test_histogram_edges () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "t.edges" ~buckets:[ 10; 20 ] in
  List.iter (Registry.observe h) [ 10; 11; 20; 21; -5 ];
  check Alcotest.int "negative observation ignored" 4
    (Registry.observations h);
  match Registry.(find (snapshot reg) "t.edges") with
  | Some (Registry.Histogram_v { buckets; counts; count; sum }) ->
      check (Alcotest.list Alcotest.int) "bounds" [ 10; 20 ] buckets;
      (* <=10: {10}; <=20: {11,20}; overflow: {21} — both exact-bound
         observations stay in their own bucket *)
      check (Alcotest.list Alcotest.int) "edge observations inclusive"
        [ 1; 2; 1 ] counts;
      check Alcotest.int "count excludes negatives" 4 count;
      check Alcotest.int "sum excludes negatives" 62 sum
  | _ -> Alcotest.fail "t.edges missing from snapshot"

(* -- spans ----------------------------------------------------------------- *)

let test_span () =
  let reg = Registry.create () in
  let s = Registry.span reg "t.phase" in
  Registry.record_ns s 500;
  let x = Registry.time s (fun () -> 21 * 2) in
  check Alcotest.int "time returns the thunk's value" 42 x;
  check Alcotest.bool "total accumulates" true
    (Registry.span_total_ns s >= 500);
  check Alcotest.int "span_count" 2 (Registry.span_count s);
  match Registry.(find (snapshot reg) "t.phase") with
  | Some (Registry.Span_v { count; total_ns; mean_ns }) ->
      check Alcotest.int "two recordings" 2 count;
      check Alcotest.bool "snapshot total" true (total_ns >= 500);
      check Alcotest.int "mean is total over count" (total_ns / 2) mean_ns
  | _ -> Alcotest.fail "t.phase missing from snapshot"

let test_span_mean () =
  let reg = Registry.create () in
  let s = Registry.span reg "t.batch" in
  Registry.record_ns s 100;
  Registry.record_ns s 300;
  (match Registry.(find (snapshot reg) "t.batch") with
  | Some (Registry.Span_v { count; total_ns; mean_ns }) ->
      check Alcotest.int "count" 2 count;
      check Alcotest.int "total" 400 total_ns;
      check Alcotest.int "mean" 200 mean_ns
  | _ -> Alcotest.fail "t.batch missing from snapshot");
  (* an empty span reports a zero mean, not a division failure *)
  let e = Registry.span reg "t.empty" in
  check Alcotest.int "empty span count" 0 (Registry.span_count e);
  (match Registry.(find (snapshot reg) "t.empty") with
  | Some (Registry.Span_v { mean_ns; _ }) ->
      check Alcotest.int "empty span mean" 0 mean_ns
  | _ -> Alcotest.fail "t.empty missing from snapshot");
  let s = Json.to_string (Registry.to_json (Registry.snapshot reg)) in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "JSON carries mean_ns" true (contains "\"mean_ns\": 200")

(* -- snapshot + JSON ------------------------------------------------------- *)

let test_snapshot_json_shape () =
  let reg = Registry.create () in
  let c = Registry.counter reg "vm.events" ~help:"events" in
  Registry.add c 7;
  Registry.gauge_fn reg "core.depth" (fun () -> 3);
  let h = Registry.histogram reg "parallel.occ" ~buckets:[ 2; 4 ] in
  Registry.observe h 3;
  ignore (Registry.span reg "misc_timer");
  let json = Registry.to_json (Registry.snapshot reg) in
  (match json with
  | Json.Obj groups ->
      check
        (Alcotest.list Alcotest.string)
        "groups in first-seen order, dotless names under misc"
        [ "vm"; "core"; "parallel"; "misc" ]
        (List.map fst groups)
  | _ -> Alcotest.fail "snapshot must render to an object");
  let s = Json.to_string json in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      check Alcotest.bool
        (Fmt.str "rendering contains %S" needle)
        true (contains needle))
    [
      "\"events\": {"; "\"kind\": \"counter\""; "\"value\": 7";
      "\"kind\": \"gauge\""; "\"kind\": \"histogram\"";
      "\"kind\": \"span\"";
    ]

let test_json_printer () =
  let j =
    Json.obj
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-3));
        ("f", Json.Float 2.5);
        ("fi", Json.Float 4.0);
        ("nan", Json.Float Float.nan);
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("empty", Json.Obj []);
      ]
  in
  let s = Json.to_string j in
  let expected =
    "{\n\
    \  \"s\": \"a\\\"b\\\\c\\nd\",\n\
    \  \"i\": -3,\n\
    \  \"f\": 2.5,\n\
    \  \"fi\": 4.0,\n\
    \  \"nan\": null,\n\
    \  \"l\": [\n\
    \    true,\n\
    \    null\n\
    \  ],\n\
    \  \"empty\": {}\n\
     }\n"
  in
  check Alcotest.string "deterministic rendering" expected s

(* -- prometheus exposition ------------------------------------------------- *)

(* Every line of the exposition is either a [# HELP]/[# TYPE] comment
   or [name value] with a float-parseable value — the shape a scraper
   relies on. *)
let test_prometheus () =
  let reg = Registry.create () in
  let c = Registry.counter reg "vm.events.exec" ~help:"executed" in
  Registry.add c 7;
  Registry.gauge_fn reg "core.depth" (fun () -> 3);
  let h = Registry.histogram reg "parallel.occ" ~buckets:[ 2; 4 ] in
  List.iter (Registry.observe h) [ 1; 3; 3; 4; 5; 9; 100 ];
  let s = Registry.span reg "parallel.helper.batch" ~help:"per batch" in
  Registry.record_ns s 100;
  Registry.record_ns s 300;
  let text = Registry.to_prometheus (Registry.snapshot reg) in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  List.iter
    (fun line ->
      let prefixed p =
        String.length line >= String.length p
        && String.sub line 0 (String.length p) = p
      in
      if not (prefixed "# HELP " || prefixed "# TYPE ") then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "sample line has no value: %S" line
        | Some i -> (
            let value =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            match float_of_string_opt value with
            | Some _ -> ()
            | None ->
                Alcotest.failf "unparseable value %S in line %S" value line)
      end)
    lines;
  let has l = List.mem l lines in
  List.iter
    (fun l -> check Alcotest.bool (Fmt.str "has %S" l) true (has l))
    [
      "# TYPE dift_vm_events_exec counter";
      "dift_vm_events_exec 7";
      "# HELP dift_vm_events_exec executed";
      "# TYPE dift_core_depth gauge";
      "dift_core_depth 3";
      "# TYPE dift_parallel_occ histogram";
      "dift_parallel_occ_bucket{le=\"2\"} 1";
      "dift_parallel_occ_bucket{le=\"4\"} 4";
      "dift_parallel_occ_bucket{le=\"+Inf\"} 7";
      "dift_parallel_occ_sum 125";
      "dift_parallel_occ_count 7";
      "# TYPE dift_parallel_helper_batch_ns summary";
      "dift_parallel_helper_batch_ns_sum 400";
      "dift_parallel_helper_batch_ns_count 2";
    ]

(* -- cross-domain stats (satellite-1 regression) --------------------------- *)

(* The Spsc stall/wait/drop counters used to be plain [mutable]
   fields: reading them from a domain other than the one incrementing
   them was unsynchronized and could observe stale or torn values.
   Now they are [Atomic.t]; a third (monitoring) domain snapshotting
   them concurrently with a two-domain run must never raise and must
   see each counter monotonically non-decreasing. *)
let test_two_domain_stats_snapshot () =
  let ring = Dift_parallel.Spsc.create ~capacity:2 () in
  let reg = Registry.create () in
  Registry.gauge_fn reg "parallel.ring.stalls" (fun () ->
      Dift_parallel.Spsc.producer_stalls ring);
  Registry.gauge_fn reg "parallel.ring.waits" (fun () ->
      Dift_parallel.Spsc.consumer_waits ring);
  Registry.gauge_fn reg "parallel.ring.drops" (fun () ->
      Dift_parallel.Spsc.dropped ring);
  let items = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to items do
          Dift_parallel.Spsc.push ring i
        done;
        Dift_parallel.Spsc.close ring)
  in
  let consumer =
    Domain.spawn (fun () ->
        let n = ref 0 in
        let rec loop () =
          match Dift_parallel.Spsc.pop ring with
          | Some _ ->
              incr n;
              loop ()
          | None -> !n
        in
        loop ())
  in
  (* the monitoring domain: snapshot in a tight loop during the run *)
  let gauge name snap =
    match Registry.find snap name with
    | Some (Registry.Gauge_v v) -> v
    | _ -> Alcotest.failf "%s missing from snapshot" name
  in
  let monotonic = ref true in
  let prev_stalls = ref 0 and prev_waits = ref 0 in
  for _ = 1 to 2_000 do
    let snap = Registry.snapshot reg in
    let stalls = gauge "parallel.ring.stalls" snap in
    let waits = gauge "parallel.ring.waits" snap in
    if stalls < !prev_stalls || waits < !prev_waits then monotonic := false;
    prev_stalls := stalls;
    prev_waits := waits
  done;
  let consumed = Domain.join consumer in
  Domain.join producer;
  check Alcotest.bool "counters monotonic under concurrency" true !monotonic;
  check Alcotest.int "every element consumed" items consumed;
  (* quiescent: a final snapshot agrees with the direct reads *)
  let snap = Registry.snapshot reg in
  check Alcotest.int "final stalls agree"
    (Dift_parallel.Spsc.producer_stalls ring)
    (gauge "parallel.ring.stalls" snap);
  check Alcotest.int "no drops without abort" 0
    (gauge "parallel.ring.drops" snap)

(* -- the monotonic clock ----------------------------------------------- *)

(* Every duration in the tree is measured on [Clock.now_ns]; the whole
   point of switching off [Unix.gettimeofday] is that readings never
   go backwards, within a domain or across domains (one process-wide
   timebase).  A tight sampling loop plus a cross-domain interleaving
   would both fail under a stepped wall clock. *)
let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 100_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done;
  (* cross-domain: a reading taken after joining a domain must not
     precede any reading that domain took *)
  let t0 = Clock.now_ns () in
  let t_in = Domain.join (Domain.spawn (fun () -> Clock.now_ns ())) in
  let t1 = Clock.now_ns () in
  check Alcotest.bool "cross-domain readings ordered" true
    (t0 <= t_in && t_in <= t1);
  (* readings resolve actual elapsed time *)
  let a = Clock.now_ns () in
  Unix.sleepf 0.01;
  let b = Clock.now_ns () in
  check Alcotest.bool "sleep is visible (>= 5ms measured)" true
    (b - a >= 5_000_000)

(* -- JSON parser ----------------------------------------------------------- *)

let test_json_parser_roundtrip () =
  (* everything the printers emit must read back as the same tree *)
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "plain";
      Json.String "esc \" \\ \n \t \x01 é";
      Json.List [];
      Json.List [ Json.Int 1; Json.String "x"; Json.Null ];
      Json.obj [];
      Json.obj
        [
          ("a", Json.Int 1);
          ("nested", Json.obj [ ("l", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let pretty = Json.to_string j and compact = Json.to_compact_string j in
      (match Json.of_string pretty with
      | Ok j' -> check Alcotest.bool "pretty round-trips" true (j = j')
      | Error e -> Alcotest.failf "pretty %S: %s" pretty e);
      match Json.of_string compact with
      | Ok j' -> check Alcotest.bool "compact round-trips" true (j = j')
      | Error e -> Alcotest.failf "compact %S: %s" compact e)
    samples;
  (* standard JSON the printers never emit *)
  (match Json.of_string {| {"u":"é","e":1e2} |} with
  | Ok j ->
      check Alcotest.bool "unicode escape decodes" true
        (Json.member "u" j = Some (Json.String "\xc3\xa9"));
      check Alcotest.bool "exponent parses as float" true
        (Json.member "e" j = Some (Json.Float 100.))
  | Error e -> Alcotest.failf "standard JSON rejected: %s" e);
  (* malformed inputs are errors, not exceptions *)
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{'a':1}" ]

(* -- flight recorder -------------------------------------------------------- *)

let test_flight_ring_overflow () =
  let fl = Flight.create ~capacity:4 () in
  Flight.name_domain fl "solo";
  for i = 1 to 10 do
    Flight.record fl ~cat:"t" "tick" ~a:i
  done;
  check Alcotest.int "all records counted" 10 (Flight.recorded fl);
  check Alcotest.int "overflow counted" 6 (Flight.overwritten fl);
  check Alcotest.int "one recording domain" 1 (Flight.domains fl);
  match Flight.tails fl with
  | [ tl ] ->
      check Alcotest.string "ring label" "solo" tl.Flight.t_domain;
      check Alcotest.int "per-ring total" 10 tl.Flight.t_recorded;
      check (Alcotest.list Alcotest.int) "tail is the most recent, oldest first"
        [ 7; 8; 9; 10 ]
        (List.map (fun e -> e.Flight.a) tl.Flight.t_entries);
      check Alcotest.bool "timestamps monotonic" true
        (let ts = List.map (fun e -> e.Flight.ts_ns) tl.Flight.t_entries in
         List.sort compare ts = ts)
  | tls -> Alcotest.failf "expected one tail, got %d" (List.length tls)

let test_flight_multi_domain () =
  let fl = Flight.create ~capacity:8 () in
  let worker name n () =
    Flight.name_domain fl name;
    for i = 1 to n do
      Flight.record fl ~cat:"w" "work" ~a:i ~detail:name
    done
  in
  Domain.join (Domain.spawn (worker "left" 3));
  Domain.join (Domain.spawn (worker "right" 5));
  check Alcotest.int "both domains recorded" 2 (Flight.domains fl);
  check Alcotest.int "totals add up" 8 (Flight.recorded fl);
  check Alcotest.int "no overflow" 0 (Flight.overwritten fl);
  let tails = Flight.tails fl in
  let by_name n =
    match List.find_opt (fun t -> t.Flight.t_domain = n) tails with
    | Some t -> t
    | None -> Alcotest.failf "no ring named %s" n
  in
  check Alcotest.int "left ring" 3 (by_name "left").Flight.t_recorded;
  check Alcotest.int "right ring" 5 (by_name "right").Flight.t_recorded;
  (* the JSON export carries the same structure, and round-trips
     through the parser *)
  let j = Flight.to_json fl in
  match Json.of_string (Json.to_string j) with
  | Error e -> Alcotest.failf "flight json does not parse: %s" e
  | Ok j' -> (
      check Alcotest.bool "json round-trips" true (j = j');
      match Json.member "domains" j with
      | Some (Json.List doms) ->
          check Alcotest.int "two domain sections" 2 (List.length doms)
      | _ -> Alcotest.fail "flight json has no domains list")

let test_flight_register_obs () =
  let fl = Flight.create ~capacity:4 () in
  let reg = Registry.create () in
  Flight.register_obs fl reg;
  Flight.record fl ~cat:"t" "one";
  let gauge name =
    match Registry.(find (snapshot reg) name) with
    | Some (Registry.Gauge_v v) -> v
    | _ -> Alcotest.failf "gauge %s missing" name
  in
  check Alcotest.int "recorded gauge live" 1 (gauge "flight.recorded");
  check Alcotest.int "capacity gauge" 4 (gauge "flight.capacity_per_domain")

(* -- heartbeat -------------------------------------------------------------- *)

let test_heartbeat () =
  let reg = Registry.create () in
  let c = Registry.counter reg "hb.ticks" in
  let file = Filename.temp_file "dift-hb" ".jsonl" in
  let hb = Heartbeat.start ~interval_ms:20 reg ~file in
  Registry.add c 5;
  Unix.sleepf 0.1;
  let n = Heartbeat.stop hb in
  check Alcotest.bool "several beats" true (n >= 3);
  check Alcotest.int "stop is idempotent" n (Heartbeat.stop hb);
  let lines =
    In_channel.with_open_bin file In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove file;
  check Alcotest.int "one line per beat" n (List.length lines);
  List.iteri
    (fun i line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "beat %d does not parse: %s" i e
      | Ok j -> (
          check Alcotest.bool "seq increments" true
            (Json.member "seq" j = Some (Json.Int i));
          match Json.member "metrics" j with
          | Some (Json.Obj _) -> ()
          | _ -> Alcotest.failf "beat %d has no metrics object" i))
    lines;
  (* beat 0 was written before any post-start mutation: the embedded
     first snapshot shows the counter at its pre-run value *)
  match Json.member "hb" (Heartbeat.first hb) with
  | Some hb_group ->
      check Alcotest.bool "first snapshot predates the bump" true
        (match Json.member "ticks" hb_group with
        | Some m -> Json.member "value" m = Some (Json.Int 0)
        | None -> false)
  | None -> Alcotest.fail "first snapshot has no hb group"

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
    Alcotest.test_case "gauge_fn rebinds" `Quick test_gauge_fn_rebinds;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
    Alcotest.test_case "span timing" `Quick test_span;
    Alcotest.test_case "span mean" `Quick test_span_mean;
    Alcotest.test_case "snapshot JSON shape" `Quick test_snapshot_json_shape;
    Alcotest.test_case "json printer" `Quick test_json_printer;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
    Alcotest.test_case "two-domain stats snapshot" `Quick
      test_two_domain_stats_snapshot;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
    Alcotest.test_case "json parser round-trips" `Quick
      test_json_parser_roundtrip;
    Alcotest.test_case "flight ring overflow" `Quick
      test_flight_ring_overflow;
    Alcotest.test_case "flight multi-domain" `Quick test_flight_multi_domain;
    Alcotest.test_case "flight register_obs" `Quick test_flight_register_obs;
    Alcotest.test_case "heartbeat sampler" `Quick test_heartbeat;
  ]
