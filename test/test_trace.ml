(* Tests for the streaming execution tracer (Obs.Trace): event
   recording and kinds, per-domain tracks, counter-track remapping,
   the bounded-buffer drop policy with its registry accounting, the
   Chrome trace-event JSON rendering, and the acceptance shape of a
   real two-domain run — at least three distinct tracks with duration
   spans on both domain tracks and a sampled ring-occupancy counter
   track. *)

open Dift_obs
open Dift_workloads

let check = Alcotest.check

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
  at 0

(* -- event recording -------------------------------------------------- *)

let test_basic_events () =
  let tr = Trace.create ~capacity:128 () in
  Trace.name_track tr "main";
  let x = Trace.span tr ~cat:"t" "work" (fun () -> 21 * 2) in
  check Alcotest.int "span returns the thunk's value" 42 x;
  Trace.instant tr ~cat:"t" "mark";
  Trace.counter tr ~cat:"t" "depth" 3;
  Trace.complete_ns tr ~cat:"t" "manual" ~start_ns:10 ~dur_ns:5;
  check Alcotest.int "buffered" 4 (Trace.buffered tr);
  check Alcotest.int "nothing dropped" 0 (Trace.dropped tr);
  let tracks = Trace.tracks tr and evs = Trace.events tr in
  check Alcotest.int "four events" 4 (List.length evs);
  let by_name n = List.find (fun e -> e.Trace.name = n) evs in
  (match (by_name "work").Trace.kind with
  | Trace.Span { dur_ns } ->
      check Alcotest.bool "span duration non-negative" true (dur_ns >= 0)
  | _ -> Alcotest.fail "work must be a span");
  (match (by_name "mark").Trace.kind with
  | Trace.Instant -> ()
  | _ -> Alcotest.fail "mark must be an instant");
  (match (by_name "depth").Trace.kind with
  | Trace.Sample { value } -> check Alcotest.int "sample value" 3 value
  | _ -> Alcotest.fail "depth must be a sample");
  let self = (Domain.self () :> int) in
  check Alcotest.int "spans ride the recording domain's track" self
    (by_name "work").Trace.tid;
  check Alcotest.bool "counter remapped off the domain track" true
    ((by_name "depth").Trace.tid <> self);
  check Alcotest.bool "domain track is named" true
    (List.mem (self, "main") tracks);
  check Alcotest.bool "counter track named after the series" true
    (List.exists (fun (_, n) -> n = "depth") tracks)

let test_span_records_on_raise () =
  let tr = Trace.create ~capacity:16 () in
  (try
     Trace.span tr "boom" (fun () -> failwith "x") |> ignore;
     Alcotest.fail "exception must propagate"
   with Failure _ -> ());
  check Alcotest.int "span recorded despite the raise" 1 (Trace.buffered tr)

(* -- JSON rendering ---------------------------------------------------- *)

let test_chrome_json () =
  let tr = Trace.create ~capacity:64 () in
  Trace.name_track tr "main";
  ignore (Trace.span tr ~cat:"t" "work" (fun () -> ()));
  Trace.counter tr ~cat:"t" "depth" 7;
  let s = Json.to_string (Trace.to_json tr) in
  check Alcotest.bool "renders a JSON array" true (s.[0] = '[');
  List.iter
    (fun needle ->
      check Alcotest.bool (Fmt.str "contains %S" needle) true
        (contains s needle))
    [
      "\"thread_name\""; "\"process_name\""; "\"ph\": \"X\"";
      "\"ph\": \"C\""; "\"ph\": \"M\""; "\"pid\": 1"; "\"value\": 7";
    ]

(* -- bounded buffers and drop accounting ------------------------------- *)

(* Below the cap nothing is lost: two domains each record a known
   number of spans and every one appears in the merge.  Over the cap,
   events are dropped and counted — in the tracer and in the
   registry's [trace.dropped] counter — never silently truncated. *)
let test_capacity_and_drops () =
  let cap = 512 in
  let tr = Trace.create ~capacity:cap () in
  let reg = Registry.create () in
  Trace.register_obs tr reg;
  let spans_per_domain = 200 in
  let record () =
    for i = 1 to spans_per_domain do
      Trace.complete_ns tr ~cat:"t" "tick" ~start_ns:i ~dur_ns:1
    done
  in
  let d = Domain.spawn record in
  record ();
  Domain.join d;
  check Alcotest.int "all spans retained below the cap"
    (2 * spans_per_domain) (Trace.buffered tr);
  check Alcotest.int "no drops below the cap" 0 (Trace.dropped tr);
  check Alcotest.int "merge loses nothing" (2 * spans_per_domain)
    (List.length (Trace.events tr));
  (* a fresh domain overflows its own buffer by exactly [cap] *)
  Domain.join
    (Domain.spawn (fun () ->
         for _ = 1 to 2 * cap do
           Trace.instant tr "burst"
         done));
  check Alcotest.int "buffer retains up to the cap"
    ((2 * spans_per_domain) + cap)
    (Trace.buffered tr);
  check Alcotest.int "overflow counted, not silent" cap (Trace.dropped tr);
  match Registry.(find (snapshot reg) "trace.dropped") with
  | Some (Registry.Counter_v v) ->
      check Alcotest.int "registry mirrors the drop count" cap v
  | _ -> Alcotest.fail "trace.dropped missing from snapshot"

(* -- the two-domain runtime on a timeline ------------------------------ *)

(* The acceptance shape: a parallel run yields at least three distinct
   track ids (app domain, helper domain, ring-occupancy counter),
   duration spans on both domain tracks, and zero drops at default
   capacity. *)
let test_two_domain_timeline () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:40 ~seed:1 in
  let reg = Registry.create () in
  let tr = Trace.create () in
  Trace.register_obs tr reg;
  let r =
    Dift_parallel.Parallel.run ~obs:reg ~trace:tr ~queue_capacity:4
      ~batch_size:16 w.Workload.program ~input
  in
  check Alcotest.bool "run did work" true
    (r.Dift_parallel.Parallel.result.Dift_parallel.Parallel.events > 0);
  let tracks = Trace.tracks tr and evs = Trace.events tr in
  let module IS = Set.Make (Int) in
  let tids = IS.of_list (List.map (fun e -> e.Trace.tid) evs) in
  check Alcotest.bool "at least three distinct tracks" true
    (IS.cardinal tids >= 3);
  let span_tids =
    IS.of_list
      (List.filter_map
         (fun e ->
           match e.Trace.kind with
           | Trace.Span _ -> Some e.Trace.tid
           | _ -> None)
         evs)
  in
  check Alcotest.bool "duration spans on both domain tracks" true
    (IS.cardinal span_tids >= 2);
  let name_of tid = List.assoc_opt tid tracks in
  check Alcotest.bool "app track named" true
    (List.exists (fun tid -> name_of tid = Some "app") (IS.elements tids));
  check Alcotest.bool "helper track named" true
    (List.exists (fun tid -> name_of tid = Some "helper") (IS.elements tids));
  let has_event name =
    List.exists (fun e -> e.Trace.name = name) evs
  in
  List.iter
    (fun n -> check Alcotest.bool (Fmt.str "recorded %s" n) true (has_event n))
    [ "app.run"; "helper.drain"; "engine.batch"; "ring.occupancy" ];
  (* ring.occupancy lives on its own synthetic counter track *)
  let occ =
    List.find (fun e -> e.Trace.name = "ring.occupancy") evs
  in
  check Alcotest.bool "occupancy on a counter track" true
    (not (List.exists (fun tid -> tid = occ.Trace.tid)
            (IS.elements span_tids)));
  check Alcotest.int "no drops at default capacity" 0 (Trace.dropped tr);
  (match Registry.(find (snapshot reg) "trace.dropped") with
  | Some (Registry.Counter_v v) -> check Alcotest.int "snapshot agrees" 0 v
  | _ -> Alcotest.fail "trace.dropped missing from snapshot");
  (* satellite: the helper's per-batch span made it into the registry *)
  match Registry.(find (snapshot reg) "parallel.helper.batch") with
  | Some (Registry.Span_v { count; mean_ns; _ }) ->
      check Alcotest.bool "batches timed" true (count > 0);
      check Alcotest.bool "mean computed" true (mean_ns >= 0)
  | _ -> Alcotest.fail "parallel.helper.batch missing from snapshot"

(* Cross-validation under tracing: the timeline must not perturb the
   tracked computation. *)
let test_traced_run_matches_inline () =
  let w = Spec_like.bfs in
  let input = w.Workload.input ~size:16 ~seed:3 in
  let tr = Trace.create () in
  let r =
    Dift_parallel.Parallel.run ~trace:tr ~queue_capacity:2 ~batch_size:8
      w.Workload.program ~input
  in
  let i = Dift_parallel.Parallel.run_inline w.Workload.program ~input in
  check Alcotest.bool "same result as untraced inline" true
    (r.Dift_parallel.Parallel.result
    = i.Dift_parallel.Parallel.i_result)

(* -- register_obs idempotence regression ------------------------------- *)

(* Re-attaching a registry used to re-add the carried-over drop count
   on every call ([add (dropped t)]) and double-count [trace.dropped];
   the carry-over is now the delta against what the counter already
   holds, so any number of attachments mirrors the drop count
   exactly. *)
let test_register_obs_idempotent () =
  let cap = 64 in
  let tr = Trace.create ~capacity:cap () in
  Domain.join
    (Domain.spawn (fun () ->
         for _ = 1 to 2 * cap do
           Trace.instant tr "burst"
         done));
  check Alcotest.int "overflow counted" cap (Trace.dropped tr);
  let reg = Registry.create () in
  Trace.register_obs tr reg;
  Trace.register_obs tr reg;
  (match Registry.(find (snapshot reg) "trace.dropped") with
  | Some (Registry.Counter_v v) ->
      check Alcotest.int "re-attachment does not double-count" cap v
  | _ -> Alcotest.fail "trace.dropped missing from snapshot");
  (* a second, fresh registry still receives the full carry-over *)
  let reg2 = Registry.create () in
  Trace.register_obs tr reg2;
  match Registry.(find (snapshot reg2) "trace.dropped") with
  | Some (Registry.Counter_v v) ->
      check Alcotest.int "fresh registry gets the full count" cap v
  | _ -> Alcotest.fail "trace.dropped missing from second snapshot"

(* -- merge-quiescence precondition -------------------------------------- *)

(* [to_json] requires every traced domain to have quiesced; the
   precondition is asserted best-effort.  Exercise the checked paths:
   after the recording domain is joined the export succeeds, and a
   recorder that is live but idle either yields a well-formed export
   or trips the assertion — never a torn crash. *)
let test_merge_quiescence () =
  let tr = Trace.create () in
  Domain.join
    (Domain.spawn (fun () ->
         for i = 1 to 10 do
           Trace.complete_ns tr ~cat:"t" "tick" ~start_ns:i ~dur_ns:1
         done));
  (* quiesced: export is safe and complete *)
  (match Trace.to_json tr with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "to_json must yield a trace-event array");
  check Alcotest.int "all spans exported" 10
    (List.length (Trace.events tr));
  (* a live recorder between bursts: repeated exports must either
     succeed or fail the stated precondition check, nothing else *)
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Trace.instant tr "live";
          Domain.cpu_relax ()
        done)
  in
  for _ = 1 to 50 do
    match Trace.to_json tr with
    | (_ : Json.t) -> ()
    | exception Invalid_argument _ -> ()
    | exception Assert_failure _ -> ()
  done;
  Atomic.set stop true;
  Domain.join d;
  match Trace.to_json tr with
  | (_ : Json.t) -> ()
  | exception _ -> Alcotest.fail "quiesced export must succeed"

(* The seqlock hardening behind the quiescence check: with several
   domains recording flat out, a concurrent merge must either return a
   consistent snapshot or raise the stated precondition — the
   per-buffer epoch detects a torn read deterministically, where the
   old length-snapshot heuristic could miss one.  After the join, the
   merge must account for every recorded event. *)
let test_merge_seqlock_storm () =
  let tr = Trace.create () in
  let per_domain = 2_000 in
  let stop = Atomic.make false in
  let recorders =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            Trace.name_track tr (Fmt.str "storm-%d" d);
            for i = 1 to per_domain do
              Trace.instant tr ~cat:"storm" (Fmt.str "e%d" i)
            done;
            (* keep mutating until the reader is done, so merges keep
               racing live recording, not just the tail of it *)
            while not (Atomic.get stop) do
              Trace.instant tr ~cat:"storm" "spin";
              Domain.cpu_relax ()
            done))
  in
  for _ = 1 to 200 do
    match Trace.events tr with
    | (_ : Trace.event list) -> ()
    | exception Invalid_argument _ -> ()
  done;
  Atomic.set stop true;
  List.iter Domain.join recorders;
  let events = Trace.events tr in
  check Alcotest.bool "post-join merge covers every burst" true
    (List.length events >= 3 * per_domain);
  check Alcotest.int "all three tracks present (plus the main track's name)"
    3
    (List.length
       (List.filter
          (fun (_, n) -> String.length n >= 5 && String.sub n 0 5 = "storm")
          (Trace.tracks tr)))

let suite =
  [
    Alcotest.test_case "basic events" `Quick test_basic_events;
    Alcotest.test_case "span records on raise" `Quick
      test_span_records_on_raise;
    Alcotest.test_case "chrome json" `Quick test_chrome_json;
    Alcotest.test_case "capacity and drops" `Quick test_capacity_and_drops;
    Alcotest.test_case "two-domain timeline" `Quick test_two_domain_timeline;
    Alcotest.test_case "traced run matches inline" `Quick
      test_traced_run_matches_inline;
    Alcotest.test_case "register_obs is idempotent" `Quick
      test_register_obs_idempotent;
    Alcotest.test_case "merge requires quiescence" `Quick
      test_merge_quiescence;
    Alcotest.test_case "merge seqlock storm" `Quick test_merge_seqlock_storm;
  ]
