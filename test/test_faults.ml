(* Fault-injection hardening of the parallel runtimes: every shutdown
   leg — helper crash mid-drain, application crash mid-run, abort
   racing a parked peer, a stalled or crashed exchange ring, spawn
   failure — must terminate cleanly (no deadlock, no leaked domain),
   keep coherent partial statistics, and surface a structured
   [Parallel.error] instead of a bare re-raise.  A watchdog domain
   turns any wedged scenario into a hard process abort so a deadlock
   is a loud test failure, not a hung CI job.

   Also the accounting regression tests: [Forwarder.batches] counts
   only delivered batches (post-abort pushes land in
   [dropped_batches]/[dropped_events], so the books reconcile), and
   the Spsc shutdown edges (final element racing close, abort against
   a parked peer) under QCheck. *)

open Dift_isa
open Dift_vm
open Dift_workloads
open Dift_parallel

let check = Alcotest.check

(* -- watchdog: a wedged fault scenario must kill the process ---------- *)

let with_watchdog ?(timeout_s = 60.) f =
  let finished = Atomic.make false in
  let dog =
    Domain.spawn (fun () ->
        let steps = int_of_float (timeout_s /. 0.05) in
        let rec loop i =
          if Atomic.get finished then ()
          else if i >= steps then begin
            prerr_endline
              "watchdog: fault-injection scenario deadlocked; aborting";
            Unix._exit 125
          end
          else begin
            Unix.sleepf 0.05;
            loop (i + 1)
          end
        in
        loop 0)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set finished true;
      Domain.join dog)
    f

(* -- helpers ----------------------------------------------------------- *)

let plan s =
  match Chaos.plan_of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad test plan %S: %s" s e

let chaos s = Chaos.create (plan s)

let kernel name =
  match List.find_opt (fun w -> w.Workload.name = name) Spec_like.all with
  | Some w -> w
  | None -> Alcotest.failf "kernel %s missing" name

let injected = function Chaos.Injected _ -> true | _ -> false

let same_result name (a : Parallel.result) (b : Parallel.result) =
  check Alcotest.int (name ^ ": events") a.Parallel.events b.Parallel.events;
  check Alcotest.int (name ^ ": sink hits") a.Parallel.sink_hits
    b.Parallel.sink_hits;
  check Alcotest.int
    (name ^ ": sink trace hash")
    a.Parallel.sink_trace_hash b.Parallel.sink_trace_hash;
  check Alcotest.int
    (name ^ ": fingerprint")
    a.Parallel.taint_fingerprint b.Parallel.taint_fingerprint

(* -- plan grammar ------------------------------------------------------ *)

let test_plan_roundtrip () =
  (* seeded plans round-trip through the string grammar, so any red
     sweep seed is replayable as a --fault-plan flag *)
  for seed = 0 to 99 do
    let p = Chaos.plan_of_seed seed in
    match Chaos.plan_of_string (Chaos.plan_to_string p) with
    | Ok p' ->
        check Alcotest.bool (Fmt.str "seed %d round-trips" seed) true
          (p = p')
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done;
  (* same seed, same plan *)
  check Alcotest.bool "deterministic" true
    (Chaos.plan_of_seed 42 = Chaos.plan_of_seed 42);
  (* explicit grammar corners *)
  (match Chaos.plan_of_string "parallel.shard1/pop@2=raise;push@1=stall:50" with
  | Ok [ r1; r2 ] ->
      check Alcotest.bool "where parsed" true
        (r1.Chaos.where = Some "parallel.shard1");
      check Alcotest.bool "stall parsed" true
        (r2.Chaos.fault = Chaos.Stall 50)
  | _ -> Alcotest.fail "two-rule plan must parse");
  List.iter
    (fun bad ->
      match Chaos.plan_of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" bad)
    [ ""; "push@0=drop"; "push@x=drop"; "push@1=warp"; "frob@1=drop";
      "push@1=stall:-5"; "push@1" ]

(* -- two-domain runtime: every leg ------------------------------------ *)

let run_crc ?obs ?chaos ?(batch_size = 8) () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  Parallel.run_result ?obs ?chaos ~queue_capacity:4 ~batch_size
    w.Workload.program ~input

let test_helper_crash_mid_drain () =
  with_watchdog @@ fun () ->
  match run_crc ~chaos:(chaos "pop@2=raise") () with
  | Ok _ -> Alcotest.fail "injected helper crash must surface"
  | Error e ->
      check Alcotest.bool "helper leg" true (e.Parallel.e_leg = `Helper);
      check Alcotest.bool "injected exn" true (injected e.Parallel.e_exn);
      (* partial accounting stays coherent: everything fed was either
         delivered or counted as dropped *)
      let p = e.Parallel.e_partial in
      check Alcotest.bool "events fed" true (p.Parallel.p_events > 0);
      check Alcotest.bool "batches delivered before the crash" true
        (p.Parallel.p_batches >= 1)

let test_app_crash_mid_run () =
  with_watchdog @@ fun () ->
  (* the injected push failure raises on the application domain, from
     inside the forwarding tool *)
  match run_crc ~chaos:(chaos "push@3=raise") () with
  | Ok _ -> Alcotest.fail "injected app crash must surface"
  | Error e ->
      check Alcotest.bool "app leg" true (e.Parallel.e_leg = `App);
      check Alcotest.bool "injected exn" true (injected e.Parallel.e_exn);
      check Alcotest.bool "crashing batch accounted as dropped" true
        (e.Parallel.e_partial.Parallel.p_dropped_batches >= 1)

let test_abort_at_step_n () =
  with_watchdog @@ fun () ->
  (* consumer-side teardown at batch 2: the run completes, losses are
     counted, and the books reconcile exactly (batch_size=1 makes the
     event arithmetic exact: fed = delivered + dropped) *)
  let reg = Dift_obs.Registry.create () in
  match run_crc ~obs:reg ~chaos:(chaos "push@2=abort") ~batch_size:1 () with
  | Error e -> Alcotest.failf "abort must not fail the run: %a"
                 Parallel.pp_error e
  | Ok r ->
      check Alcotest.bool "drops counted" true (r.Parallel.dropped_batches > 0);
      check Alcotest.bool "engine events <= delivered batches" true
        (r.Parallel.result.Parallel.events <= r.Parallel.batches);
      check Alcotest.int "one event per dropped batch"
        r.Parallel.dropped_batches r.Parallel.dropped_events;
      (* regression (in-flight accounting): batches sitting in the ring
         when the abort landed used to vanish uncounted; the drain now
         sweeps them into the discarded ledger, so the delivered count
         reconciles exactly against consumed + discarded with nothing
         left in flight once the helper has joined *)
      let gauge name =
        match Dift_obs.Registry.(find (snapshot reg) name) with
        | Some (Dift_obs.Registry.Gauge_v v) -> v
        | _ -> Alcotest.failf "gauge %s missing" name
      in
      let consumed = gauge "parallel.forwarder.consumed_batches" in
      let discarded = gauge "parallel.forwarder.discarded_batches" in
      let in_flight = gauge "parallel.ring.in_flight_batches" in
      check Alcotest.int "nothing in flight after the join" 0 in_flight;
      check Alcotest.int "delivered = consumed + discarded"
        r.Parallel.batches (consumed + discarded);
      check Alcotest.int "engine events = consumed batches"
        r.Parallel.result.Parallel.events consumed

let test_consumer_give_up () =
  with_watchdog @@ fun () ->
  (* the helper abandons the stream at its second pop; the producer
     must never wedge against the dead consumer *)
  match run_crc ~chaos:(chaos "pop@2=abort") ~batch_size:1 () with
  | Error e ->
      Alcotest.failf "consumer give-up must not fail the run: %a"
        Parallel.pp_error e
  | Ok r ->
      check Alcotest.bool "subsequent pushes dropped and counted" true
        (r.Parallel.dropped_batches > 0)

let test_pop_drop_discards () =
  with_watchdog @@ fun () ->
  match run_crc ~chaos:(chaos "pop@1=drop") ~batch_size:1 () with
  | Error e ->
      Alcotest.failf "a discarded batch must not fail the run: %a"
        Parallel.pp_error e
  | Ok r ->
      (* the discarded event never reached the engine *)
      check Alcotest.bool "engine saw fewer events than were delivered"
        true
        (r.Parallel.result.Parallel.events < r.Parallel.batches)

let test_stall_delay_bit_identical () =
  with_watchdog @@ fun () ->
  (* stalls and delayed wakeups perturb timing only: the result must
     be bit-identical to an uninjected run *)
  let clean =
    match run_crc () with
    | Ok r -> r
    | Error e -> Alcotest.failf "clean run failed: %a" Parallel.pp_error e
  in
  match
    run_crc ~chaos:(chaos "push@1=stall:2000000;pop@2=delay:1000000") ()
  with
  | Error e -> Alcotest.failf "stall plan failed: %a" Parallel.pp_error e
  | Ok r ->
      same_result "stall/delay" clean.Parallel.result r.Parallel.result;
      check Alcotest.int "no drops" 0 r.Parallel.dropped_batches

let test_spawn_failure_two_domain () =
  with_watchdog @@ fun () ->
  match run_crc ~chaos:(chaos "spawn@1=raise") () with
  | Ok _ -> Alcotest.fail "spawn failure must surface"
  | Error e ->
      check Alcotest.bool "spawn leg" true (e.Parallel.e_leg = `Spawn);
      check Alcotest.bool "injected exn" true (injected e.Parallel.e_exn);
      check Alcotest.int "nothing fed" 0 e.Parallel.e_partial.Parallel.p_events

(* -- sharded runtime: shard crash, spawn failure, both routes --------- *)

let run_sharded_crc ?chaos ?route () =
  let w = kernel "crc" in
  let input = w.Workload.input ~size:12 ~seed:3 in
  Parallel.run_sharded_result ?chaos ?route ~queue_capacity:4 ~batch_size:1
    ~shards:3 w.Workload.program ~input

let test_shard_crash route name =
  with_watchdog @@ fun () ->
  (* shard 1's first pop raises: its failure must be attributed, the
     other shards must terminate (cascade or clean), nothing wedges *)
  match run_sharded_crc ~chaos:(chaos "parallel.shard1/pop@1=raise") ~route ()
  with
  | Ok _ -> Alcotest.failf "%s: injected shard crash must surface" name
  | Error e ->
      check Alcotest.bool (name ^ ": shard 1 blamed") true
        (e.Parallel.e_leg = `Shard 1);
      check Alcotest.bool (name ^ ": injected exn") true
        (injected e.Parallel.e_exn)

let test_shard_crash_request_reply () =
  test_shard_crash `Request_reply "request-reply"

let test_shard_crash_broadcast () = test_shard_crash `Broadcast "broadcast"

let test_spawn_failure_sharded () =
  with_watchdog @@ fun () ->
  (* the second of three spawns fails: the first shard is already
     running and must be joined, not leaked *)
  match run_sharded_crc ~chaos:(chaos "spawn@2=raise") () with
  | Ok _ -> Alcotest.fail "sharded spawn failure must surface"
  | Error e ->
      check Alcotest.bool "spawn leg" true (e.Parallel.e_leg = `Spawn);
      check Alcotest.bool "injected exn" true (injected e.Parallel.e_exn)

(* -- exchange-mesh faults --------------------------------------------- *)

(* A deterministic cross-shard stream over a synthetic program: with
   the default 64-location blocks and 2 shards, [mem 0] lives on shard
   0 and [mem 64] on shard 1, so the mov crosses shards every time. *)
let stream_prog =
  Program.make [ Func.make ~name:"main" ~arity:0 [| Instr.Halt |] ]

let stream_func = Program.find stream_prog "main"

let ev step ?(reads = []) ?(writes = []) ?(input_index = -1) instr =
  {
    Event.step;
    tid = 0;
    func = stream_func;
    pc = 0;
    instr;
    reads;
    writes;
    addr = -1;
    next_pc = 0;
    input_index;
    value = 0;
  }

let cross_events n =
  List.concat
    (List.init n (fun i ->
         let base = 3 * i in
         [
           ev base ~writes:[ Loc.mem 0 ] ~input_index:i
             (Instr.Sys (Instr.Read Reg.r0));
           ev (base + 1) ~reads:[ Loc.mem 0 ] ~writes:[ Loc.mem 64 ]
             (Instr.Mov (Reg.r0, Operand.Reg Reg.r1));
           ev (base + 2) ~reads:[ Loc.mem 64 ]
             (Instr.Sys (Instr.Write (Operand.Reg Reg.r0)));
         ]))

module SE = Shard_engine.Make (Dift_core.Taint.Bool)

let run_cross ?chaos () =
  let events = cross_events 8 in
  let c =
    SE.cluster ?chaos ~route:`Request_reply ~queue_capacity:4 ~batch_size:1
      ~xchg_capacity:4 ~shards:2 stream_prog
  in
  SE.start c;
  (match List.iter (SE.feed c) events with
  | () -> ()
  | exception _ ->
      (* a cascade can reach the feeding side; finish_result still
         joins and reports *)
      ());
  (SE.finish_result c, events)

let test_exchange_stall_bit_identical () =
  with_watchdog @@ fun () ->
  let reference =
    match run_cross () with
    | Ok m, _ -> m
    | Error f, _ ->
        Alcotest.failf "clean cross run failed: %a" Shard_engine.pp_failure f
  in
  check Alcotest.bool "stream really crosses shards" true
    (reference.SE.m_sink_hits > 0);
  (* stall the first exchange push for 2ms: timing noise only *)
  match run_cross ~chaos:(chaos "xchg/push@1=stall:2000000") () with
  | Error f, _ ->
      Alcotest.failf "exchange stall failed the run: %a"
        Shard_engine.pp_failure f
  | Ok m, _ ->
      check Alcotest.int "same events" reference.SE.m_events m.SE.m_events;
      check Alcotest.int "same sink hits" reference.SE.m_sink_hits
        m.SE.m_sink_hits;
      check Alcotest.int "same fingerprint" reference.SE.m_fingerprint
        m.SE.m_fingerprint

let test_exchange_crash_cascades () =
  with_watchdog @@ fun () ->
  (* a crash on an exchange pop: the popping shard dies, the mesh is
     aborted, every peer terminates via the Shard_dead cascade *)
  match run_cross ~chaos:(chaos "xchg/pop@1=raise") () with
  | Ok _, _ -> Alcotest.fail "injected exchange crash must surface"
  | Error f, _ ->
      check Alcotest.bool "primary is the injection" true
        (injected f.Shard_engine.f_primary);
      check Alcotest.bool "at least one shard reported dead" true
        (f.Shard_engine.f_shards <> [])

let test_exchange_ring_abort_terminates () =
  with_watchdog @@ fun () ->
  (* aborting the whole mesh mid-protocol must cascade to Shard_dead
     everywhere, never wedge *)
  match run_cross ~chaos:(chaos "xchg/push@2=abort") () with
  | Ok _, _ -> Alcotest.fail "mesh abort must surface"
  | Error f, _ ->
      check Alcotest.bool "every failure is a cascade or injection" true
        (List.for_all
           (fun (_, e) -> e = Shard_engine.Shard_dead || injected e)
           f.Shard_engine.f_shards)

(* -- forwarder accounting regression ---------------------------------- *)

let test_forwarder_drop_accounting () =
  with_watchdog @@ fun () ->
  (* regression: [batches]/[events] used to count batches pushed after
     an abort even though Spsc dropped them, so the gauges could not
     reconcile.  With batch_size=1: fed = delivered + dropped. *)
  let fwd = Forwarder.create ~queue_capacity:4 ~batch_size:1 () in
  let consumed = Atomic.make 0 in
  let helper =
    Domain.spawn (fun () ->
        Forwarder.drain fwd ~f:(fun _ ->
            (* abandon the stream after the third element *)
            if 3 <= 1 + Atomic.fetch_and_add consumed 1 then
              raise Exit))
  in
  (try
     for i = 1 to 100 do
       Forwarder.add fwd i
     done;
     Forwarder.close fwd
   with _ -> ());
  (match Domain.join helper with
  | () -> Alcotest.fail "helper must die of Exit"
  | exception Exit -> Forwarder.abort fwd
  | exception e -> raise e);
  check Alcotest.int "all events accepted" 100 (Forwarder.events fwd);
  check Alcotest.bool "drops counted" true (Forwarder.dropped_batches fwd > 0);
  check Alcotest.int "fed = delivered + dropped" 100
    (Forwarder.batches fwd + Forwarder.dropped_events fwd);
  check Alcotest.int "dropped gauge = dropped batches"
    (Forwarder.dropped_batches fwd)
    (Forwarder.dropped fwd)

let test_forwarder_crash_ledger () =
  with_watchdog @@ fun () ->
  (* regression (in-flight accounting): after a consumer crash
     mid-drain, every event fed to the channel must be booked exactly
     once — consumed, discarded (the batch in hand plus the post-abort
     sweep of the ring), dropped producer-side, or visibly in flight
     (a push that raced the abort flag itself).  Nothing vanishes. *)
  let fwd = Forwarder.create ~queue_capacity:4 ~batch_size:1 () in
  let consumed = Atomic.make 0 in
  let helper =
    Domain.spawn (fun () ->
        Forwarder.drain fwd ~f:(fun _ ->
            if 3 <= 1 + Atomic.fetch_and_add consumed 1 then raise Exit))
  in
  (try
     for i = 1 to 100 do
       Forwarder.add fwd i
     done;
     Forwarder.close fwd
   with _ -> ());
  (match Domain.join helper with
  | () -> Alcotest.fail "helper must die of Exit"
  | exception Exit -> ()
  | exception e -> raise e);
  check Alcotest.int "every event is booked exactly once"
    (Forwarder.events fwd)
    (Forwarder.consumed_events fwd
    + Forwarder.discarded_events fwd
    + Forwarder.dropped_events fwd
    + Forwarder.in_flight_batches fwd);
  (* f completed twice; its third call raised, so that batch is booked
     as discarded, not consumed *)
  check Alcotest.int "the helper consumed what f completed" 2
    (Forwarder.consumed_events fwd);
  check Alcotest.bool "the crashing batch and the swept ring are discarded"
    true
    (Forwarder.discarded_batches fwd >= 1);
  check Alcotest.int "batch ledger closes too" (Forwarder.batches fwd)
    (Forwarder.consumed_batches fwd
    + Forwarder.discarded_batches fwd
    + Forwarder.in_flight_batches fwd)

(* -- random-seed sweep: every plan terminates cleanly ------------------ *)

let test_seed_sweep () =
  with_watchdog ~timeout_s:120. @@ fun () ->
  let w = kernel "hash" in
  let input = w.Workload.input ~size:10 ~seed:1 in
  for seed = 0 to 7 do
    let c = Chaos.create (Chaos.plan_of_seed seed) in
    match
      Parallel.run_result ~chaos:c ~queue_capacity:4 ~batch_size:4
        w.Workload.program ~input
    with
    | Ok _ -> ()
    | Error e ->
        check Alcotest.bool
          (Fmt.str "seed %d: failure is injected (%s)" seed
             (Printexc.to_string e.Parallel.e_exn))
          true
          (injected e.Parallel.e_exn)
  done;
  for seed = 100 to 103 do
    let c = Chaos.create (Chaos.plan_of_seed seed) in
    match
      Parallel.run_sharded_result ~chaos:c ~queue_capacity:4 ~batch_size:4
        ~shards:2 w.Workload.program ~input
    with
    | Ok _ -> ()
    | Error e ->
        check Alcotest.bool
          (Fmt.str "sharded seed %d: failure is injected or cascade (%s)"
             seed
             (Printexc.to_string e.Parallel.e_exn))
          true
          (injected e.Parallel.e_exn
          || e.Parallel.e_exn = Shard_engine.Shard_dead)
  done

(* -- QCheck: Spsc shutdown edges --------------------------------------- *)

(* The final element racing close: the producer pushes its last
   element and closes immediately; whatever the interleaving with a
   (possibly parked) consumer, every element must arrive. *)
let prop_final_element_at_close =
  QCheck2.Test.make ~count:200 ~name:"spsc: final element races close"
    QCheck2.Gen.(pair (int_range 1 4) (int_range 1 32))
    (fun (capacity, n) ->
      let q = Spsc.create ~capacity () in
      let consumer =
        Domain.spawn (fun () ->
            let rec loop acc =
              match Spsc.pop q with None -> acc | Some _ -> loop (acc + 1)
            in
            loop 0)
      in
      for i = 1 to n do
        Spsc.push q i
      done;
      Spsc.close q;
      Domain.join consumer = n)

(* Abort racing a parked producer: the producer is parked on a full
   ring when the consumer aborts; it must unpark, count its drops, and
   terminate. *)
let prop_abort_unparks_producer =
  QCheck2.Test.make ~count:100 ~name:"spsc: abort unparks a full-parked producer"
    QCheck2.Gen.(int_range 1 3)
    (fun capacity ->
      let q = Spsc.create ~capacity () in
      let producer =
        Domain.spawn (fun () ->
            for i = 1 to capacity + 4 do
              Spsc.push q i
            done)
      in
      (* wait until the producer is genuinely parked on the full ring *)
      let rec wait_full i =
        if i > 20_000 then ()
        else if Spsc.length q < capacity then begin
          Domain.cpu_relax ();
          wait_full (i + 1)
        end
      in
      wait_full 0;
      Spsc.abort q;
      Domain.join producer;
      (* whatever landed before the abort, the rest was counted *)
      Spsc.length q + Spsc.dropped q >= 4)

let test_abort_unparks_consumer () =
  with_watchdog @@ fun () ->
  (* the consumer is parked on an empty ring; an abort from outside
     the producer domain must wake it with end-of-stream *)
  let q : int Spsc.t = Spsc.create ~capacity:2 () in
  let consumer = Domain.spawn (fun () -> Spsc.pop q) in
  Unix.sleepf 0.02;
  Spsc.abort q;
  check Alcotest.bool "parked consumer sees end-of-stream" true
    (Domain.join consumer = None)

(* -- timing sanity ------------------------------------------------------ *)

let test_wall_times_non_negative () =
  with_watchdog @@ fun () ->
  (* regression: gettimeofday-based timing could yield negative spans
     when the wall clock stepped; the monotonic clock cannot *)
  match run_crc () with
  | Error e -> Alcotest.failf "clean run failed: %a" Parallel.pp_error e
  | Ok r ->
      check Alcotest.bool "main wall >= 0" true (r.Parallel.main_wall_ns >= 0);
      check Alcotest.bool "total >= main" true
        (r.Parallel.total_wall_ns >= r.Parallel.main_wall_ns)

let suite =
  [
    Alcotest.test_case "fault plans round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "helper crash mid-drain" `Quick
      test_helper_crash_mid_drain;
    Alcotest.test_case "app crash mid-run" `Quick test_app_crash_mid_run;
    Alcotest.test_case "abort at step N" `Quick test_abort_at_step_n;
    Alcotest.test_case "consumer give-up" `Quick test_consumer_give_up;
    Alcotest.test_case "pop drop discards" `Quick test_pop_drop_discards;
    Alcotest.test_case "stall/delay bit-identical" `Quick
      test_stall_delay_bit_identical;
    Alcotest.test_case "spawn failure (two-domain)" `Quick
      test_spawn_failure_two_domain;
    Alcotest.test_case "shard crash (request-reply)" `Quick
      test_shard_crash_request_reply;
    Alcotest.test_case "shard crash (broadcast)" `Quick
      test_shard_crash_broadcast;
    Alcotest.test_case "spawn failure (sharded)" `Quick
      test_spawn_failure_sharded;
    Alcotest.test_case "exchange stall bit-identical" `Quick
      test_exchange_stall_bit_identical;
    Alcotest.test_case "exchange crash cascades" `Quick
      test_exchange_crash_cascades;
    Alcotest.test_case "exchange ring abort terminates" `Quick
      test_exchange_ring_abort_terminates;
    Alcotest.test_case "forwarder drop accounting reconciles" `Quick
      test_forwarder_drop_accounting;
    Alcotest.test_case "forwarder crash ledger closes" `Quick
      test_forwarder_crash_ledger;
    Alcotest.test_case "random-seed sweep terminates" `Quick test_seed_sweep;
    Alcotest.test_case "abort unparks a parked consumer" `Quick
      test_abort_unparks_consumer;
    Alcotest.test_case "wall times non-negative" `Quick
      test_wall_times_non_negative;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_final_element_at_close; prop_abort_unparks_producer ]
