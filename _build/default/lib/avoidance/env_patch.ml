(** Environment patches (paper §3.2).

    An environment fault is avoided by modifying the execution
    environment, not the program: different scheduling decisions for an
    atomicity violation, padded allocations for a heap buffer overflow,
    or a neutralised input for a malformed user request.  The chosen
    fix is recorded as an environment patch; all future executions
    consult the patch (its application is piggybacked on the logging
    that is running anyway, so the steady-state overhead stays at
    checkpointing/logging level). *)

open Dift_vm

type t =
  | Reschedule of { seed : int; quantum_min : int; quantum_max : int }
      (** alter scheduling decisions (atomicity violations) *)
  | Pad_heap of int  (** pad every allocation by n words *)
  | Neutralize_input of (int * int) list
      (** overwrite input words (malformed request) *)

let to_string = function
  | Reschedule { seed; quantum_min; quantum_max } ->
      Fmt.str "reschedule seed=%d quantum=%d..%d" seed quantum_min
        quantum_max
  | Pad_heap n -> Fmt.str "pad-heap %d" n
  | Neutralize_input ovs ->
      Fmt.str "neutralize-input %a"
        Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
        ovs

(** Serialise a patch to the one-line "environment patch file" format. *)
let serialize = function
  | Reschedule { seed; quantum_min; quantum_max } ->
      Fmt.str "reschedule %d %d %d" seed quantum_min quantum_max
  | Pad_heap n -> Fmt.str "pad-heap %d" n
  | Neutralize_input ovs ->
      "neutralize-input "
      ^ String.concat " "
          (List.map (fun (i, v) -> Fmt.str "%d=%d" i v) ovs)

let parse line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "reschedule"; s; qmin; qmax ] -> (
      try
        Some
          (Reschedule
             {
               seed = int_of_string s;
               quantum_min = int_of_string qmin;
               quantum_max = int_of_string qmax;
             })
      with Failure _ -> None)
  | [ "pad-heap"; n ] -> (
      try Some (Pad_heap (int_of_string n)) with Failure _ -> None)
  | "neutralize-input" :: rest -> (
      try
        Some
          (Neutralize_input
             (List.map
                (fun kv ->
                  match String.split_on_char '=' kv with
                  | [ i; v ] -> (int_of_string i, int_of_string v)
                  | _ -> failwith "bad pair")
                rest))
      with Failure _ -> None)
  | _ -> None

(** Apply a patch to a machine configuration. *)
let apply patch (config : Machine.config) =
  match patch with
  | Reschedule { seed; quantum_min; quantum_max } ->
      { config with seed; quantum_min; quantum_max; schedule = None }
  | Pad_heap n -> { config with heap_padding = config.heap_padding + n }
  | Neutralize_input ovs ->
      { config with input_override = config.input_override @ ovs }
