(** The fault capture / recovery / prevention framework (paper §3.2).

    Under normal operation the program runs with lightweight logging.
    When an execution fails, the framework searches candidate
    environment modifications, replaying the execution under each
    until the failure disappears; the first successful modification
    becomes the environment patch for all future runs.  Candidates are
    ordered by the fault's likely class, and for request-structured
    programs the execution-reduction analysis points at the requests
    worth neutralising. *)

open Dift_isa
open Dift_vm

type attempt = { patch : Env_patch.t; avoided : bool }

type report = {
  original_fault : Event.fault option;
  attempts : attempt list;
  fix : Env_patch.t option;
  rerun_ok : bool;  (** a fresh run with the patch applied passes *)
  patch_file : string option;  (** serialized patch, as persisted *)
}

(** Run the program; on failure (fault or deadlock), search the
    candidate patches (each candidate costs one replayed execution)
    and validate the chosen patch on a fresh run.
    [request_input_index] maps a request id to the input word holding
    its opcode, enabling input-neutralisation candidates. *)
val avoid :
  ?config:Machine.config ->
  ?candidates:Env_patch.t list ->
  ?request_input_index:(int -> int) ->
  Program.t ->
  input:int array ->
  report
