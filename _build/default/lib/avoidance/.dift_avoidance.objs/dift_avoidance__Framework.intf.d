lib/avoidance/framework.mli: Dift_isa Dift_vm Env_patch Event Machine Program
