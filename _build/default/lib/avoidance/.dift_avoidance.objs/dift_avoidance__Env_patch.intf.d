lib/avoidance/env_patch.mli: Dift_vm Machine
