lib/avoidance/env_patch.ml: Dift_vm Fmt List Machine String
