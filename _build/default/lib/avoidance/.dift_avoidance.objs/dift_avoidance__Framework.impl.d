lib/avoidance/framework.ml: Dift_replay Dift_vm Env_patch Event List Machine Option Reduction Request_log
