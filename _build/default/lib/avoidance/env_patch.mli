(** Environment patches (paper §3.2).

    An environment fault is avoided by modifying the execution
    environment, not the program: different scheduling decisions for
    an atomicity violation or deadlock, padded allocations for a heap
    buffer overflow, or a neutralised input for a malformed user
    request.  The chosen fix is recorded as an environment patch; all
    future executions consult the patch. *)

open Dift_vm

type t =
  | Reschedule of { seed : int; quantum_min : int; quantum_max : int }
      (** alter scheduling decisions (atomicity violations,
          deadlocks) *)
  | Pad_heap of int  (** pad every allocation by n words *)
  | Neutralize_input of (int * int) list
      (** overwrite input words (malformed request) *)

val to_string : t -> string

(** Serialise to the one-line "environment patch file" format. *)
val serialize : t -> string

(** Parse a patch file line; [None] on malformed input. *)
val parse : string -> t option

(** Apply a patch to a machine configuration. *)
val apply : t -> Machine.config -> Machine.config
