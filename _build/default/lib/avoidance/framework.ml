(** The fault capture / recovery / prevention framework (paper §3.2).

    Under normal operation the program runs with lightweight logging.
    When an execution faults, the framework searches candidate
    environment modifications, replaying the execution under each until
    the fault disappears; the first successful modification becomes the
    environment patch for all future runs.  Candidates are ordered by
    the fault's likely class: scheduling changes for concurrency
    faults, heap padding for memory faults, and input neutralisation
    for malformed requests (with the execution-reduction analysis
    pointing at the requests worth neutralising). *)

open Dift_vm
open Dift_replay

type attempt = { patch : Env_patch.t; avoided : bool }

type report = {
  original_fault : Event.fault option;
  attempts : attempt list;
  fix : Env_patch.t option;
  rerun_ok : bool;  (** a fresh run with the patch applied passes *)
  patch_file : string option;  (** serialized patch, as persisted *)
}

let passes = function
  | Event.Halted -> true
  | Event.Faulted _ | Event.Deadlocked | Event.Out_of_steps
  | Event.Stopped _ ->
      false

(* Default candidate generators per fault class. *)
let scheduling_candidates (config : Machine.config) =
  [
    (* serialise aggressively: long quanta make interleavings coarse *)
    Env_patch.Reschedule
      {
        seed = config.seed;
        quantum_min = 10_000;
        quantum_max = 20_000;
      };
    Env_patch.Reschedule
      {
        seed = config.seed + 1;
        quantum_min = config.quantum_min;
        quantum_max = config.quantum_max;
      };
    Env_patch.Reschedule
      {
        seed = config.seed + 2;
        quantum_min = config.quantum_min;
        quantum_max = config.quantum_max;
      };
  ]

let heap_candidates = [ Env_patch.Pad_heap 4; Env_patch.Pad_heap 16 ]

(* For request-structured programs: neutralise the requests the
   reduction analysis finds relevant to the failure, oldest first —
   the corruption's origin is upstream, and neutralising the victim
   request would only mask the failure.  [request_input_index] maps a
   request id to the input word holding its opcode. *)
let input_candidates log ~request_input_index =
  match Reduction.analyse log with
  | None -> []
  | Some plan ->
      List.map
        (fun (r : Request_log.request) ->
          Env_patch.Neutralize_input
            [ (request_input_index r.Request_log.req_id, 0) ])
        plan.Reduction.relevant

let default_candidates ?log ?request_input_index config fault =
  let from_inputs =
    match log, request_input_index with
    | Some log, Some f -> input_candidates log ~request_input_index:f
    | _ -> []
  in
  match (fault : Event.fault option) with
  | Some { kind = Event.Out_of_bounds _; _ }
  | Some { kind = Event.Invalid_free _; _ } ->
      heap_candidates @ from_inputs @ scheduling_candidates config
  | Some { kind = Event.Check_failed; _ } ->
      (* could be concurrency or input-driven: try both *)
      scheduling_candidates config @ from_inputs @ heap_candidates
  | Some { kind = Event.Div_by_zero; _ }
  | Some { kind = Event.Invalid_icall _; _ } ->
      from_inputs @ heap_candidates @ scheduling_candidates config
  | None -> scheduling_candidates config @ heap_candidates @ from_inputs

(** Run the program; on failure, search the candidate patches (each
    candidate costs one replayed execution) and validate the chosen
    patch on a fresh run. *)
let avoid ?(config = Machine.default_config) ?candidates ?request_input_index
    program ~input =
  (* the logged production run *)
  let m = Machine.create ~config program ~input in
  let log = Request_log.create () in
  Request_log.attach log m;
  let outcome = Machine.run m in
  let deadlocked = outcome = Event.Deadlocked in
  if passes outcome then
    {
      original_fault = None;
      attempts = [];
      fix = None;
      rerun_ok = true;
      patch_file = None;
    }
  else begin
    let fault = Request_log.fault log in
    let cands =
      match candidates with
      | Some cs -> cs
      | None ->
          if deadlocked then
            (* a deadlock is a scheduling phenomenon: rescheduling
               candidates only *)
            scheduling_candidates config
          else default_candidates ~log ?request_input_index config fault
    in
    let attempts = ref [] in
    let fix = ref None in
    List.iter
      (fun patch ->
        if !fix = None then begin
          let config' = Env_patch.apply patch config in
          let m' = Machine.create ~config:config' program ~input in
          let ok = passes (Machine.run m') in
          attempts := { patch; avoided = ok } :: !attempts;
          if ok then fix := Some patch
        end)
      cands;
    let rerun_ok =
      match !fix with
      | None -> false
      | Some patch ->
          (* the "future execution": fresh run consulting the patch *)
          let config' = Env_patch.apply patch config in
          let m' = Machine.create ~config:config' program ~input in
          passes (Machine.run m')
    in
    {
      original_fault = fault;
      attempts = List.rev !attempts;
      fix = !fix;
      rerun_ok;
      patch_file = Option.map Env_patch.serialize !fix;
    }
  end
