(** Compact byte encoding of dependence records.

    ONTRAC's space figures (paper §2.1: 0.8 bytes per executed
    instruction with optimizations, vs. 16 without) are byte counts of
    stored trace; this module defines the actual encoding so the
    counts are real rather than assumed.  A stream is delta-encoded:
    kind byte + varint use-step delta + varint def distance.  Use
    steps must be appended in non-decreasing order. *)

val varint_len : int -> int
val put_varint : Buffer.t -> int -> unit
val get_varint : string -> int -> int * int

(** Size in bytes of one record appended after a record whose use step
    was [prev_use]. *)
val record_size : prev_use:int -> Dep.t -> int

type writer = { buf : Buffer.t; mutable prev_use : int }

val writer : unit -> writer
val write : writer -> Dep.t -> unit
val bytes_written : writer -> int
val contents : writer -> string

(** Decode a full stream back into records (round-trip checks and the
    offline postprocessing path). *)
val decode : string -> Dep.t list
