(** Per-function static analyses, computed lazily and cached: CFG,
    postdominators, and intra-block reaching-definition queries used by
    ONTRAC's static dependence elimination. *)

open Dift_isa

type func_info = {
  cfg : Cfg.t;
  pd : Postdom.t;
  func : Func.t;
}

type t = {
  program : Program.t;
  cache : (string, func_info) Hashtbl.t;
}

let create program = { program; cache = Hashtbl.create 16 }

let info t fname =
  match Hashtbl.find_opt t.cache fname with
  | Some i -> i
  | None ->
      let func = Program.find t.program fname in
      let cfg = Cfg.build func in
      let pd = Postdom.compute cfg in
      let i = { cfg; pd; func } in
      Hashtbl.replace t.cache fname i;
      i

let cfg t fname = (info t fname).cfg
let pd t fname = (info t fname).pd
let program t = t.program

(** Immediate postdominator of instruction [pc] in [fname]. *)
let ipdom t fname pc = Postdom.ipdom (pd t fname) pc

let defines_reg instr r =
  match Instr.def instr with
  | Some d -> Reg.equal d r
  | None -> false

(** The statically known reaching definition of register [r] at use
    site [pc], searching only within [pc]'s own basic block.  Returns
    [Some def_pc] when an earlier instruction of the same block defines
    [r] (in straight-line code that definition always reaches), [None]
    when the definition comes from outside the block. *)
let reaching_def_in_block t fname ~pc ~reg =
  let i = info t fname in
  let block = Cfg.block_of i.cfg pc in
  let first, _ = Cfg.block_range i.cfg block in
  let rec search p =
    if p < first then None
    else if defines_reg (Func.instr i.func p) reg then Some p
    else search (p - 1)
  in
  search (pc - 1)

(** The last definition of register [r] in block [block] of [fname], if
    any — used by the trace-level (multi-block) elimination to check
    whether a cross-block register dependence is inferable along a hot
    edge. *)
let block_last_def t fname ~block ~reg =
  let i = info t fname in
  let first, last = Cfg.block_range i.cfg block in
  let rec search p =
    if p < first then None
    else if defines_reg (Func.instr i.func p) reg then Some p
    else search (p - 1)
  in
  search (last - 1)

let block_of t fname pc = Cfg.block_of (cfg t fname) pc
