(** Shadow state: a taint value for every storage location.

    Bottom values are not stored, so the table's size is the number of
    currently tainted locations — which is also what the memory
    overhead measurements count. *)

open Dift_vm

module Make (D : Taint.DOMAIN) = struct
  type t = { tbl : D.t Loc.Tbl.t }

  let create () = { tbl = Loc.Tbl.create 1024 }

  let get t loc =
    match Loc.Tbl.find_opt t.tbl loc with Some v -> v | None -> D.bottom

  let set t loc v =
    if D.is_bottom v then Loc.Tbl.remove t.tbl loc
    else Loc.Tbl.replace t.tbl loc v

  let clear t loc = Loc.Tbl.remove t.tbl loc

  (** Number of tainted locations. *)
  let tainted_locations t = Loc.Tbl.length t.tbl

  (** Total shadow footprint in words, per the domain's accounting. *)
  let footprint_words t =
    Loc.Tbl.fold (fun _ v acc -> acc + D.words v) t.tbl 0

  let fold f t acc = Loc.Tbl.fold f t.tbl acc
end
