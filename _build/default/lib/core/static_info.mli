(** Per-function static analyses, computed lazily and cached: CFG,
    postdominators, and intra-block reaching-definition queries used
    by ONTRAC's static dependence elimination. *)

open Dift_isa

type t

val create : Program.t -> t
val cfg : t -> string -> Cfg.t
val pd : t -> string -> Postdom.t
val program : t -> Program.t

(** Immediate postdominator of instruction [pc] in the named
    function. *)
val ipdom : t -> string -> int -> int

(** The statically known reaching definition of a register at a use
    site, searching only within the use's own basic block: [Some
    def_pc] when an earlier instruction of the same block defines it
    (in straight-line code that definition always reaches), [None]
    when the definition comes from outside the block. *)
val reaching_def_in_block : t -> string -> pc:int -> reg:Reg.t -> int option

(** The last definition of a register in a given block, if any — used
    by the trace-level (multi-block) elimination. *)
val block_last_def : t -> string -> block:int -> reg:Reg.t -> int option

(** Basic-block id of an instruction. *)
val block_of : t -> string -> int -> int
