(** Online detection of dynamic control dependence (after Xin & Zhang,
    ISSTA'07).

    Each thread carries a stack of call frames; each frame carries a
    stack of open control regions.  Executing a branch at step [s]
    opens a region that closes when control reaches the branch's
    immediate postdominator.  The dynamic control parent of an executed
    instruction is the branch of the innermost open region, or — when
    no region is open — the call (or spawn) event that created the
    frame, which threads control dependence across function and thread
    boundaries. *)

open Dift_isa
open Dift_vm

type region = { branch_step : int; branch_pc : int; close_at : int }

type frame = {
  mutable regions : region list;  (** innermost first *)
  inherited : int option;  (** call/spawn step that created the frame *)
}

type thread_state = { mutable frames : frame list (* innermost first *) }

type t = {
  static : Static_info.t;
  threads : (int, thread_state) Hashtbl.t;
  pending_spawn : (int, int) Hashtbl.t;  (** tid -> spawning step *)
}

let create static =
  { static; threads = Hashtbl.create 8; pending_spawn = Hashtbl.create 8 }

let thread_state t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
      let inherited = Hashtbl.find_opt t.pending_spawn tid in
      Hashtbl.remove t.pending_spawn tid;
      let ts = { frames = [ { regions = []; inherited } ] } in
      Hashtbl.replace t.threads tid ts;
      ts

let current_frame ts =
  match ts.frames with
  | f :: _ -> f
  | [] ->
      (* A thread that returned from its bottom frame but is observed
         again cannot happen; keep total anyway. *)
      let f = { regions = []; inherited = None } in
      ts.frames <- [ f ];
      f

(** Pop every region whose close point is the pc now being executed. *)
let close_regions frame pc =
  let rec go = function
    | r :: rest when r.close_at = pc -> go rest
    | rs -> rs
  in
  frame.regions <- go frame.regions

(** Process one event (must be called for every event, in order) and
    return the step number of the event's dynamic control parent, if
    any. *)
let process t (e : Event.exec) =
  let ts = thread_state t e.Event.tid in
  let frame = current_frame ts in
  close_regions frame e.Event.pc;
  let parent =
    match frame.regions with
    | r :: _ -> Some r.branch_step
    | [] -> frame.inherited
  in
  (match e.Event.instr with
  | Instr.Br (_, _, _) ->
      (* A new execution of the same static branch ends the region of
         the previous one (loop back edge): pop through it.  This also
         flushes regions left open by irregular jumps out of their
         body. *)
      let rec drop = function
        | r :: rest when r.branch_pc = e.Event.pc -> rest
        | _ :: rest when List.exists (fun r -> r.branch_pc = e.Event.pc) rest
          ->
            drop rest
        | rs -> rs
      in
      frame.regions <- drop frame.regions;
      let fname = e.Event.func.Func.name in
      let close_at = Static_info.ipdom t.static fname e.Event.pc in
      frame.regions <-
        { branch_step = e.Event.step; branch_pc = e.Event.pc; close_at }
        :: frame.regions
  | Instr.Call _ | Instr.Icall _ ->
      ts.frames <-
        { regions = []; inherited = Some e.Event.step } :: ts.frames
  | Instr.Ret _ -> (
      match ts.frames with
      | _ :: (_ :: _ as rest) -> ts.frames <- rest
      | [ _ ] | [] -> () (* bottom frame: thread is ending *))
  | Instr.Sys (Instr.Spawn _) ->
      (* e.value carries the new thread id. *)
      Hashtbl.replace t.pending_spawn e.Event.value e.Event.step
  | _ -> ());
  parent

(** Depth of open control regions for a thread (diagnostics/tests). *)
let open_regions t tid =
  match Hashtbl.find_opt t.threads tid with
  | None -> 0
  | Some ts -> List.fold_left (fun a f -> a + List.length f.regions) 0 ts.frames
