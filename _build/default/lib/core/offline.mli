(** The two-phase baseline (paper §2.1, prior work [18, 19]).

    Phase 1 runs the instrumented program and writes a raw address +
    control-flow trace at a fixed {!bytes_per_instr}.  Phase 2
    ({!postprocess}) turns the collected trace into the compacted
    dynamic dependence graph.  Both phases are charged to the cycle
    model, producing the ~540x total slowdown the paper contrasts with
    ONTRAC's ~19x. *)

open Dift_isa
open Dift_vm

(** Raw trace bytes charged per executed instruction. *)
val bytes_per_instr : int

type stats = {
  mutable instructions : int;
  mutable trace_bytes : int;
  mutable deps : int;
  mutable postprocess_cycles : int;
}

type t

val create : Program.t -> t
val stats : t -> stats
val attach : t -> Machine.t -> unit

(** Phase 2: build the compacted dependence graph from the raw trace;
    records the modelled postprocessing cost in the stats. *)
val postprocess : t -> Ddg.t

val graph : t -> Ddg.t
