(** The two-phase baseline (paper §2.1, prior work [18, 19]).

    Phase 1 runs the instrumented program and writes a raw address +
    control-flow trace: a fixed 16 bytes per executed instruction (the
    paper's measured rate for the unoptimized trace).  Phase 2
    postprocesses the collected trace offline into the compacted
    dynamic dependence graph.  Both phases are charged to the cycle
    model, which is what produces the ~540x total slowdown the paper
    contrasts with ONTRAC's ~19x. *)

open Dift_isa
open Dift_vm

(** Raw trace bytes charged per executed instruction (address word +
    instruction/control word). *)
let bytes_per_instr = 16

type stats = {
  mutable instructions : int;
  mutable trace_bytes : int;
  mutable deps : int;
  mutable postprocess_cycles : int;
}

type t = {
  cd : Control_dep.t;
  ddg : Ddg.t;
  stats : stats;
  last_writer : int Loc.Tbl.t;
  (* The raw dependence stream is serialised through the byte encoding
     during the run, exactly like a trace written to storage, and
     decoded again by [postprocess] — the two phases really do
     communicate only through bytes. *)
  writer : Encoding.writer;
  mutable machine : Machine.t option;
}

let create program =
  let static = Static_info.create program in
  {
    cd = Control_dep.create static;
    ddg = Ddg.create ();
    stats =
      { instructions = 0; trace_bytes = 0; deps = 0; postprocess_cycles = 0 };
    last_writer = Loc.Tbl.create 4096;
    writer = Encoding.writer ();
    machine = None;
  }

let stats t = t.stats

let charge t n =
  match t.machine with Some m -> Machine.charge m n | None -> ()

let process t (e : Event.exec) =
  t.stats.instructions <- t.stats.instructions + 1;
  t.stats.trace_bytes <- t.stats.trace_bytes + bytes_per_instr;
  charge t (bytes_per_instr * Cost.trace_byte);
  let parent = Control_dep.process t.cd e in
  Ddg.add_node t.ddg ~step:e.Event.step ~tid:e.Event.tid
    ~fname:e.Event.func.Func.name ~pc:e.Event.pc
    ~input_index:e.Event.input_index
    ~is_output:
      (match e.Event.instr with
      | Instr.Sys (Instr.Write _) -> true
      | _ -> false);
  List.iter
    (fun loc ->
      match Loc.Tbl.find_opt t.last_writer loc with
      | None -> ()
      | Some def_step ->
          t.stats.deps <- t.stats.deps + 1;
          Encoding.write t.writer
            { Dep.kind = Dep.Data; def_step; use_step = e.Event.step })
    e.Event.reads;
  (match parent with
  | Some p ->
      t.stats.deps <- t.stats.deps + 1;
      Encoding.write t.writer
        { Dep.kind = Dep.Control; def_step = p; use_step = e.Event.step }
  | None -> ());
  List.iter
    (fun loc -> Loc.Tbl.replace t.last_writer loc e.Event.step)
    e.Event.writes

let attach t machine =
  t.machine <- Some machine;
  Machine.attach machine (Tool.make ~on_exec:(process t) "offline-trace")

(** Phase 2: build the compacted dependence graph from the raw trace.
    Returns the graph; the modelled postprocessing cost (also recorded
    in the stats) is the dominant term of the two-phase slowdown. *)
let postprocess t =
  let cost = ref 0 in
  (* Every raw trace record is touched once to reconstruct dependences
     and once more to compact them. *)
  cost := t.stats.instructions * Cost.offline_postprocess_record;
  List.iter (fun d -> Ddg.add_dep t.ddg d)
    (Encoding.decode (Encoding.contents t.writer));
  cost := !cost + (t.stats.deps * Cost.offline_postprocess_record);
  t.stats.postprocess_cycles <- !cost;
  t.ddg

let graph t = t.ddg
