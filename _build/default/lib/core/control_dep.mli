(** Online detection of dynamic control dependence (after Xin & Zhang,
    ISSTA'07).

    Each thread carries a stack of call frames; each frame carries a
    stack of open control regions.  Executing a branch opens a region
    that closes when control reaches the branch's immediate
    postdominator (or when the same static branch executes again — a
    loop back edge).  The dynamic control parent of an executed
    instruction is the branch of the innermost open region, or the
    call/spawn event that created the frame. *)

type t

val create : Static_info.t -> t

(** Process one event (must be called for every event, in order) and
    return the step number of the event's dynamic control parent, if
    any. *)
val process : t -> Dift_vm.Event.exec -> int option

(** Depth of open control regions for a thread (diagnostics/tests). *)
val open_regions : t -> int -> int
