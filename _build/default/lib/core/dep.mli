(** Dependence kinds tracked by the framework.

    [Data] and [Control] are the classic dynamic-slicing dependences.
    [War]/[Waw] extend slicing to multithreaded programs so that data
    races become visible to it (paper §3.1).  [Summary] edges replace
    chains through code excluded by selective tracing, preserving
    transitive flows (paper §2.1). *)

type kind =
  | Data  (** read-after-write: use depends on the defining write *)
  | Control  (** instruction depends on the controlling branch *)
  | War  (** write-after-read (anti) *)
  | Waw  (** write-after-write (output) *)
  | Summary
      (** transitive dependence through untraced (out-of-scope) code *)

val kind_to_int : kind -> int

(** @raise Invalid_argument outside [0..4]. *)
val kind_of_int : int -> kind

val kind_to_string : kind -> string
val pp_kind : kind Fmt.t

(** A dynamic dependence: instruction instance [use_step] depends on
    instance [def_step]. *)
type t = { kind : kind; def_step : int; use_step : int }

val pp : t Fmt.t
