(** Dependence kinds tracked by the framework.

    [Data] and [Control] are the classic dynamic-slicing dependences.
    [War]/[Waw] extend slicing to multithreaded programs so that data
    races become visible to it (paper §3.1).  [Summary] edges replace
    chains through code excluded by selective tracing, preserving
    transitive flows (paper §2.1, targeted optimization 1). *)

type kind =
  | Data  (** read-after-write: use depends on the defining write *)
  | Control  (** instruction depends on the controlling branch *)
  | War  (** write-after-read (anti) *)
  | Waw  (** write-after-write (output) *)
  | Summary
      (** transitive dependence through untraced (out-of-scope) code *)

let kind_to_int = function
  | Data -> 0
  | Control -> 1
  | War -> 2
  | Waw -> 3
  | Summary -> 4

let kind_of_int = function
  | 0 -> Data
  | 1 -> Control
  | 2 -> War
  | 3 -> Waw
  | 4 -> Summary
  | n -> invalid_arg (Fmt.str "Dep.kind_of_int: %d" n)

let kind_to_string = function
  | Data -> "data"
  | Control -> "control"
  | War -> "war"
  | Waw -> "waw"
  | Summary -> "summary"

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

(** A dynamic dependence: instruction instance [use_step] depends on
    instance [def_step]. *)
type t = { kind : kind; def_step : int; use_step : int }

let pp ppf d =
  Fmt.pf ppf "%d -[%s]-> %d" d.use_step (kind_to_string d.kind) d.def_step
