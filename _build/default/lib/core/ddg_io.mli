(** Compact serialisation of dynamic dependence graphs.

    The offline pipeline's product (and ONTRAC's buffer contents) is a
    whole-execution-trace-style artefact (refs [18, 19]): the graph
    compacted into a byte stream that can be stored, shipped, and
    sliced elsewhere. *)

val serialize : Ddg.t -> string

exception Corrupt of string

(** @raise Corrupt on malformed input. *)
val deserialize : string -> Ddg.t

(** Serialised size in bytes. *)
val size : Ddg.t -> int
