(** Propagation policy: which information flows the DIFT engine
    tracks.

    Different applications want different flows — attack detection
    tracks data flow plus pointer (address) flow, lineage usually
    tracks pure data flow, and implicit-flow studies enable control
    propagation. *)

type t = {
  propagate_load_address : bool;
      (** the taint of a pointer flows into the value loaded through
          it *)
  propagate_store_address : bool;
      (** the taint of a pointer flows into the value stored through
          it *)
  propagate_control : bool;
      (** values defined inside a control region pick up the taint of
          the region's branch condition (implicit flow) *)
  taint_spawn_arg : bool;
      (** the argument passed to [Spawn] carries its taint into the
          new thread (default true) *)
}

(** Pure explicit data flow. *)
val data_only : t

(** Data flow plus pointer flow — the standard security policy. *)
val security : t

(** Everything, including implicit (control) flows. *)
val full : t

(** [data_only]. *)
val default : t
