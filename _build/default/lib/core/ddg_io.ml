(** Compact serialisation of dynamic dependence graphs.

    The offline pipeline's product (and ONTRAC's buffer contents) is a
    whole-execution-trace-style artefact (refs [18, 19]): the graph
    compacted into a byte stream that can be stored, shipped to
    another machine, and sliced there.  Nodes are delta-encoded with
    an interned function-name table; edges reuse the dependence-record
    encoding. *)

let magic = "DDG1"

(* -- encoding helpers ---------------------------------------------------- *)

let put_string buf s =
  Encoding.put_varint buf (String.length s);
  Buffer.add_string buf s

let get_string s pos =
  let len, pos = Encoding.get_varint s pos in
  (String.sub s pos len, pos + len)

(** Serialise a graph to bytes. *)
let serialize (g : Ddg.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  (* function-name table *)
  let fnames = Hashtbl.create 16 in
  let rev_names = ref [] in
  Ddg.iter_nodes
    (fun n ->
      if not (Hashtbl.mem fnames n.Ddg.fname) then begin
        Hashtbl.replace fnames n.Ddg.fname (Hashtbl.length fnames);
        rev_names := n.Ddg.fname :: !rev_names
      end)
    g;
  let names = List.rev !rev_names in
  Encoding.put_varint buf (List.length names);
  List.iter (put_string buf) names;
  (* nodes, in step order, delta-encoded *)
  let nodes = ref [] in
  Ddg.iter_nodes (fun n -> nodes := n :: !nodes) g;
  let nodes =
    List.sort (fun (a : Ddg.node) b -> compare a.Ddg.step b.Ddg.step) !nodes
  in
  Encoding.put_varint buf (List.length nodes);
  (* Straight-line execution produces long chains of nodes whose step
     and pc both advance by one within the same thread and function;
     they are emitted as runs — the repetition WET-style compaction
     exploits.  Format: tag 0 = explicit node, tag 1 = run of k
     continuations of the previous node. *)
  let prev : Ddg.node option ref = ref None in
  let run = ref 0 in
  let prev_step = ref 0 in
  let flush_run () =
    if !run > 0 then begin
      Encoding.put_varint buf 1;
      Encoding.put_varint buf !run;
      run := 0
    end
  in
  let continues (p : Ddg.node) (n : Ddg.node) =
    n.Ddg.step = p.Ddg.step + 1
    && n.Ddg.pc = p.Ddg.pc + 1
    && n.Ddg.tid = p.Ddg.tid
    && String.equal n.Ddg.fname p.Ddg.fname
    && n.Ddg.input_index = -1
    && not n.Ddg.is_output
  in
  List.iter
    (fun (n : Ddg.node) ->
      (match !prev with
      | Some p when continues p n -> incr run
      | _ ->
          flush_run ();
          Encoding.put_varint buf 0;
          Encoding.put_varint buf (n.Ddg.step - !prev_step);
          Encoding.put_varint buf n.Ddg.tid;
          Encoding.put_varint buf (Hashtbl.find fnames n.Ddg.fname);
          Encoding.put_varint buf n.Ddg.pc;
          Encoding.put_varint buf (n.Ddg.input_index + 1);
          Encoding.put_varint buf (if n.Ddg.is_output then 1 else 0));
      (* the decoder's reference step is always the last node decoded *)
      prev_step := n.Ddg.step;
      prev := Some n)
    nodes;
  flush_run ();
  (* edges, in use-step order, via the dependence-record encoding *)
  let w = Encoding.writer () in
  List.iter
    (fun (n : Ddg.node) ->
      List.iter
        (fun (kind, def_step) ->
          Encoding.write w { Dep.kind; def_step; use_step = n.Ddg.step })
        (List.rev n.Ddg.preds))
    nodes;
  let edges = Encoding.contents w in
  Encoding.put_varint buf (String.length edges);
  Buffer.add_string buf edges;
  Buffer.contents buf

exception Corrupt of string

(** Rebuild a graph from bytes.
    @raise Corrupt on malformed input. *)
let deserialize s =
  if String.length s < 4 || String.sub s 0 4 <> magic then
    raise (Corrupt "bad magic");
  let pos = 4 in
  let n_names, pos = Encoding.get_varint s pos in
  let names = Array.make (max 1 n_names) "" in
  let pos = ref pos in
  for i = 0 to n_names - 1 do
    let name, p = get_string s !pos in
    names.(i) <- name;
    pos := p
  done;
  let g = Ddg.create () in
  let n_nodes, p = Encoding.get_varint s !pos in
  pos := p;
  let prev_step = ref 0 in
  let last = ref None in
  let decoded = ref 0 in
  while !decoded < n_nodes do
    let tag, p = Encoding.get_varint s !pos in
    match tag with
    | 0 ->
        let dstep, p = Encoding.get_varint s p in
        let step = !prev_step + dstep in
        prev_step := step;
        let tid, p = Encoding.get_varint s p in
        let fidx, p = Encoding.get_varint s p in
        let pc, p = Encoding.get_varint s p in
        let input1, p = Encoding.get_varint s p in
        let out, p = Encoding.get_varint s p in
        pos := p;
        if fidx >= n_names then raise (Corrupt "bad function index");
        Ddg.add_node g ~step ~tid ~fname:names.(fidx) ~pc
          ~input_index:(input1 - 1) ~is_output:(out = 1);
        last := Some (step, tid, names.(fidx), pc);
        incr decoded
    | 1 ->
        let k, p = Encoding.get_varint s p in
        pos := p;
        (match !last with
        | None -> raise (Corrupt "run without a preceding node")
        | Some (step, tid, fname, pc) ->
            for i = 1 to k do
              Ddg.add_node g ~step:(step + i) ~tid ~fname ~pc:(pc + i)
                ~input_index:(-1) ~is_output:false
            done;
            last := Some (step + k, tid, fname, pc + k);
            prev_step := step + k);
        decoded := !decoded + k
    | _ -> raise (Corrupt "bad node tag")
  done;
  let edge_len, p = Encoding.get_varint s !pos in
  if p + edge_len > String.length s then raise (Corrupt "truncated edges");
  let edges = Encoding.decode (String.sub s p edge_len) in
  List.iter (Ddg.add_dep g) edges;
  g

(** Serialised size in bytes. *)
let size g = String.length (serialize g)
