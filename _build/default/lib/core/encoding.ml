(** Compact byte encoding of dependence records.

    ONTRAC's space figures (paper §2.1: 0.8 bytes per executed
    instruction with optimizations, vs. 16 without) are byte counts of
    stored trace; this module defines the actual encoding so the counts
    are real rather than assumed.

    A stream of records is delta-encoded: each record stores the
    dependence kind (one byte), the use-step delta from the previous
    record's use step (varint), and the def-step distance from the use
    step (varint).  Steps are monotone per stream, so deltas are small
    for dense traces. *)

(* LEB128-style varint length for a non-negative integer. *)
let varint_len n =
  if n < 0 then invalid_arg "Encoding.varint_len: negative";
  let rec go n acc = if n < 128 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let put_varint buf n =
  if n < 0 then invalid_arg "Encoding.put_varint: negative";
  let rec go n =
    if n < 128 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (128 lor (n land 127)));
      go (n lsr 7)
    end
  in
  go n

let get_varint s pos =
  let rec go pos shift acc =
    let byte = Char.code s.[pos] in
    let acc = acc lor ((byte land 127) lsl shift) in
    if byte < 128 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

(** Size in bytes of one record appended after a record whose use step
    was [prev_use]. *)
let record_size ~prev_use (d : Dep.t) =
  1 (* kind *)
  + varint_len (d.Dep.use_step - prev_use)
  + varint_len (max 0 (d.Dep.use_step - d.Dep.def_step))

(** A writer that appends records to a byte buffer. *)
type writer = { buf : Buffer.t; mutable prev_use : int }

let writer () = { buf = Buffer.create 4096; prev_use = 0 }

let write w (d : Dep.t) =
  Buffer.add_char w.buf (Char.chr (Dep.kind_to_int d.Dep.kind));
  put_varint w.buf (d.Dep.use_step - w.prev_use);
  put_varint w.buf (max 0 (d.Dep.use_step - d.Dep.def_step));
  w.prev_use <- d.Dep.use_step

let bytes_written w = Buffer.length w.buf

let contents w = Buffer.contents w.buf

(** Decode a full stream back into records (for round-trip checks and
    the offline postprocessing path). *)
let decode s =
  let n = String.length s in
  let rec go pos prev_use acc =
    if pos >= n then List.rev acc
    else begin
      let kind = Dep.kind_of_int (Char.code s.[pos]) in
      let use_delta, pos = get_varint s (pos + 1) in
      let def_dist, pos = get_varint s pos in
      let use_step = prev_use + use_delta in
      let d = { Dep.kind; use_step; def_step = use_step - def_dist } in
      go pos use_step (d :: acc)
    end
  in
  go 0 0 []
