(** Adaptive-optimization profiling (paper §4, work in progress: "we
    also plan to explore its use in performing adaptive
    optimizations").

    Aggregates block/edge heat, branch bias, invariant loads and
    indirect-call monomorphism from the event stream, and produces a
    list of optimization suggestions — the artefact an adaptive
    runtime would act on. *)

open Dift_vm

type suggestion =
  | Form_trace of { fname : string; blocks : int list; heat : int }
      (** lay out / specialise this hot block chain as a unit *)
  | If_convert of { fname : string; pc : int; bias : float;
                    executions : int }
      (** branch is ≥ [bias]-biased; predicate or reorder it *)
  | Cache_load of { fname : string; pc : int; value : int;
                    executions : int }
      (** load site always yielded [value]; specialise with a guard *)
  | Devirtualize of { fname : string; pc : int; target : string;
                      executions : int }
      (** indirect call always reached [target] *)

type t

val create : Dift_isa.Program.t -> t
val attach : t -> Machine.t -> unit

(** Ranked suggestions; thresholds filter noise from cold code. *)
val suggestions :
  ?hot_threshold:int ->
  ?bias_threshold:float ->
  ?min_executions:int ->
  t ->
  suggestion list

val events : t -> int
val pp_suggestion : suggestion Fmt.t
