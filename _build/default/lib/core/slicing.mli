(** Dynamic slicing over a dependence graph.

    A backward slice from a criterion (one or more dynamic instruction
    instances) is the transitive closure over dependence edges; a
    forward slice follows the edges in the other direction.  Slices
    are reported both as dynamic steps and as static statements
    (function, pc) — fault-location metrics are statement-level. *)

type t

val empty : t
val size : t -> int
val num_sites : t -> int
val mem_step : t -> int -> bool
val mem_site : t -> string * int -> bool
val steps : t -> int list
val sites : t -> (string * int) list

(** The kinds a default traversal follows: data, control, summary. *)
val default_kinds : Dep.kind list

(** All kinds, including WAR/WAW — the multithreaded extension (paper
    §3.1) that makes data races visible to slicing. *)
val multithreaded_kinds : Dep.kind list

(** Backward dynamic slice.  Steps below [window_start] (evicted from
    the trace buffer) are unreachable — the slice silently stops
    there, modelling ONTRAC's bounded execution history. *)
val backward :
  ?kinds:Dep.kind list -> ?window_start:int -> Ddg.t -> criterion:int list ->
  t

(** Forward dynamic slice: everything that transitively depends on the
    criterion steps. *)
val forward :
  ?kinds:Dep.kind list -> ?window_start:int -> Ddg.t -> criterion:int list ->
  t

(** Intersection of two slices. *)
val inter : t -> t -> t

(** A failure-inducing chop (Gupta et al., ASE'05): the intersection
    of the forward slice of [source] and the backward slice of
    [sink]. *)
val chop :
  ?kinds:Dep.kind list ->
  ?window_start:int ->
  Ddg.t ->
  source:int list ->
  sink:int list ->
  t

(** The last output event in the graph, a common slicing criterion
    ("why is this output wrong?"). *)
val last_output : Ddg.t -> int option

val pp : t Fmt.t
