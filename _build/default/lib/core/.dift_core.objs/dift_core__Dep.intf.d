lib/core/dep.mli: Fmt
