lib/core/adaptive.ml: Cfg Dift_isa Dift_vm Event Fmt Func Hashtbl Instr List Machine Program Static_info Tool
