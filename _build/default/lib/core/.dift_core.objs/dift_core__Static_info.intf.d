lib/core/static_info.mli: Cfg Dift_isa Postdom Program Reg
