lib/core/ontrac.ml: Control_dep Cost Ddg Dep Dift_isa Dift_vm Encoding Event Fmt Func Hashtbl Instr List Loc Machine Option Reg Static_info Tool Trace_buffer
