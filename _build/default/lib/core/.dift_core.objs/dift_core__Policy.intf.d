lib/core/policy.mli:
