lib/core/ontrac.mli: Ddg Dift_isa Dift_vm Event Fmt Machine Program Trace_buffer
