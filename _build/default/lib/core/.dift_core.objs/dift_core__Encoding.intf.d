lib/core/encoding.mli: Buffer Dep
