lib/core/control_dep.ml: Dift_isa Dift_vm Event Func Hashtbl Instr List Static_info
