lib/core/engine.mli: Dift_isa Dift_vm Event Fmt Loc Machine Policy Program Shadow Taint
