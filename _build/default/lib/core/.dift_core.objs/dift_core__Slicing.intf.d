lib/core/slicing.mli: Ddg Dep Fmt
