lib/core/dep.ml: Fmt
