lib/core/trace_buffer.ml: Fmt Queue
