lib/core/ddg.mli: Dep Fmt Hashtbl
