lib/core/shadow.mli: Dift_vm Loc Taint
