lib/core/adaptive.mli: Dift_isa Dift_vm Fmt Machine
