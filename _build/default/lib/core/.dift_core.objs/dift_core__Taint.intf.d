lib/core/taint.mli: Fmt Set
