lib/core/ddg.ml: Dep Fmt Hashtbl List
