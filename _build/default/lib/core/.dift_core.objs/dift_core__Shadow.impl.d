lib/core/shadow.ml: Dift_vm Loc Taint
