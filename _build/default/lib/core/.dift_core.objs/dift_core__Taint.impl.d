lib/core/taint.ml: Bool Fmt Int Set
