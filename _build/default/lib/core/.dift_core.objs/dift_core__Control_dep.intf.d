lib/core/control_dep.mli: Dift_vm Static_info
