lib/core/trace_buffer.mli: Fmt
