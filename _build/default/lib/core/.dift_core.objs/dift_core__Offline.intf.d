lib/core/offline.mli: Ddg Dift_isa Dift_vm Machine Program
