lib/core/ddg_io.mli: Ddg
