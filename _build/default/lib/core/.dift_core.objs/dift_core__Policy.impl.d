lib/core/policy.ml:
