lib/core/static_info.ml: Cfg Dift_isa Func Hashtbl Instr Postdom Program Reg
