lib/core/ddg_io.ml: Array Buffer Ddg Dep Encoding Hashtbl List String
