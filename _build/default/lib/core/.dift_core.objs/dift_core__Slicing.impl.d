lib/core/slicing.ml: Ddg Dep Fmt Hashtbl Int List Option Set Stack
