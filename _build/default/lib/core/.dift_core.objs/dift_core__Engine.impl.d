lib/core/engine.ml: Cost Dift_isa Dift_vm Event Fmt Func Hashtbl Instr List Loc Machine Operand Policy Shadow Static_info Taint Tool
