lib/core/encoding.ml: Buffer Char Dep List String
