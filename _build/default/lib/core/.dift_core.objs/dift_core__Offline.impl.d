lib/core/offline.ml: Control_dep Cost Ddg Dep Dift_isa Dift_vm Encoding Event Func Instr List Loc Machine Static_info Tool
