(** Adaptive-optimization profiling (paper §4, work in progress: "we
    also plan to explore its use in performing adaptive
    optimizations").

    The same event stream that feeds dependence tracking is enough to
    drive an adaptive optimizer.  This tool aggregates, online:

    - block and edge heat, from which it forms {e trace candidates}
      (superblocks: greedy hottest-successor chains from hot heads,
      the layout/inlining unit of a trace-based JIT);
    - {e branch bias} (strongly one-sided branches are if-conversion
      and trace-layout candidates);
    - {e invariant loads} (a load site that always produced the same
      value from the same address can be specialised to a constant
      guarded by a cheap check);
    - {e monomorphic indirect calls} (a single observed target allows
      devirtualisation with a guard).

    The result is a ranked list of optimization suggestions — the
    artefact an adaptive runtime would act on. *)

open Dift_isa
open Dift_vm

type suggestion =
  | Form_trace of { fname : string; blocks : int list; heat : int }
      (** lay out / specialise this hot block chain as a unit *)
  | If_convert of { fname : string; pc : int; bias : float; executions : int }
      (** branch is ≥ [bias]-biased; predicate or reorder it *)
  | Cache_load of { fname : string; pc : int; value : int; executions : int }
      (** load site always yielded [value]; specialise with a guard *)
  | Devirtualize of { fname : string; pc : int; target : string;
                      executions : int }
      (** indirect call always reached [target] *)

type t = {
  static : Static_info.t;
  block_heat : (string * int, int) Hashtbl.t;
  edge_heat : (string * int * int, int) Hashtbl.t;
  prev_block : (int, string * int) Hashtbl.t;  (** per tid *)
  branch_taken : (string * int, int * int) Hashtbl.t;
      (** site -> (taken, not taken) *)
  load_values : (string * int, [ `One of int * int | `Many of int ])
      Hashtbl.t
      (** site -> unique value so far (with count), or poly with count *)
  ;
  icall_targets : (string * int, [ `One of string * int | `Many of int ])
      Hashtbl.t;
  mutable events : int;
}

let create program =
  {
    static = Static_info.create program;
    block_heat = Hashtbl.create 256;
    edge_heat = Hashtbl.create 256;
    prev_block = Hashtbl.create 8;
    branch_taken = Hashtbl.create 64;
    load_values = Hashtbl.create 256;
    icall_targets = Hashtbl.create 16;
    events = 0;
  }

let bump tbl key =
  Hashtbl.replace tbl key
    (1 + match Hashtbl.find_opt tbl key with Some c -> c | None -> 0)

let on_exec t (e : Event.exec) =
  t.events <- t.events + 1;
  let fname = e.Event.func.Func.name in
  let block = Static_info.block_of t.static fname e.Event.pc in
  let first, _ = Static_info.cfg t.static fname |> fun cfg ->
    Cfg.block_range cfg block
  in
  if e.Event.pc = first then begin
    bump t.block_heat (fname, block);
    (match Hashtbl.find_opt t.prev_block e.Event.tid with
    | Some (pf, pb) when pf = fname && pb <> block ->
        bump t.edge_heat (fname, pb, block)
    | Some _ | None -> ());
    Hashtbl.replace t.prev_block e.Event.tid (fname, block)
  end;
  match e.Event.instr with
  | Instr.Br (_, taken_target, _) ->
      let site = (fname, e.Event.pc) in
      let tk, nt =
        match Hashtbl.find_opt t.branch_taken site with
        | Some c -> c
        | None -> (0, 0)
      in
      let went_taken = e.Event.next_pc = taken_target in
      Hashtbl.replace t.branch_taken site
        (if went_taken then (tk + 1, nt) else (tk, nt + 1))
  | Instr.Load _ ->
      let site = (fname, e.Event.pc) in
      Hashtbl.replace t.load_values site
        (match Hashtbl.find_opt t.load_values site with
        | None -> `One (e.Event.value, 1)
        | Some (`One (v, c)) when v = e.Event.value -> `One (v, c + 1)
        | Some (`One (_, c)) -> `Many (c + 1)
        | Some (`Many c) -> `Many (c + 1))
  | Instr.Icall (_, _) ->
      let site = (fname, e.Event.pc) in
      let target =
        match
          Program.func_of_id (Static_info.program t.static) e.Event.value
        with
        | Some f -> f.Func.name
        | None -> "<invalid>"
      in
      Hashtbl.replace t.icall_targets site
        (match Hashtbl.find_opt t.icall_targets site with
        | None -> `One (target, 1)
        | Some (`One (tg, c)) when tg = target -> `One (tg, c + 1)
        | Some (`One (_, c)) -> `Many (c + 1)
        | Some (`Many c) -> `Many (c + 1))
  | _ -> ()

let attach t machine =
  (* a profiler is cheap sampling infrastructure, not full DBI *)
  Machine.attach machine
    (Tool.make ~dispatch_cost:1 ~on_exec:(on_exec t) "adaptive-profile")

(* Greedy superblock formation: starting from each hot head, follow the
   hottest outgoing edge while it stays hot and unvisited. *)
let trace_candidates t ~hot_threshold =
  let used = Hashtbl.create 64 in
  let heads =
    Hashtbl.fold
      (fun (fname, block) heat acc ->
        if heat >= hot_threshold then ((fname, block), heat) :: acc else acc)
      t.block_heat []
    |> List.sort (fun (_, h1) (_, h2) -> compare h2 h1)
  in
  List.filter_map
    (fun ((fname, head), heat) ->
      if Hashtbl.mem used (fname, head) then None
      else begin
        let rec grow acc block =
          Hashtbl.replace used (fname, block) ();
          let best =
            Hashtbl.fold
              (fun (f, from_b, to_b) h acc ->
                if f = fname && from_b = block
                   && (not (Hashtbl.mem used (fname, to_b)))
                   && h >= hot_threshold
                then
                  match acc with
                  | Some (_, bh) when bh >= h -> acc
                  | _ -> Some (to_b, h)
                else acc)
              t.edge_heat None
          in
          match best with
          | Some (next, _) -> grow (next :: acc) next
          | None -> List.rev acc
        in
        let blocks = grow [ head ] head in
        if List.length blocks >= 2 then
          Some (Form_trace { fname; blocks; heat })
        else None
      end)
    heads

let suggestions ?(hot_threshold = 64) ?(bias_threshold = 0.95)
    ?(min_executions = 32) t =
  let traces = trace_candidates t ~hot_threshold in
  let branches =
    Hashtbl.fold
      (fun (fname, pc) (tk, nt) acc ->
        let total = tk + nt in
        let bias = float_of_int (max tk nt) /. float_of_int (max 1 total) in
        if total >= min_executions && bias >= bias_threshold then
          If_convert { fname; pc; bias; executions = total } :: acc
        else acc)
      t.branch_taken []
  in
  let loads =
    Hashtbl.fold
      (fun (fname, pc) v acc ->
        match v with
        | `One (value, c) when c >= min_executions ->
            Cache_load { fname; pc; value; executions = c } :: acc
        | `One _ | `Many _ -> acc)
      t.load_values []
  in
  let icalls =
    Hashtbl.fold
      (fun (fname, pc) v acc ->
        match v with
        | `One (target, c) when c >= min_executions ->
            Devirtualize { fname; pc; target; executions = c } :: acc
        | `One _ | `Many _ -> acc)
      t.icall_targets []
  in
  traces @ branches @ loads @ icalls

let events t = t.events

let pp_suggestion ppf = function
  | Form_trace { fname; blocks; heat } ->
      Fmt.pf ppf "form trace in %s over blocks %a (heat %d)" fname
        Fmt.(list ~sep:(any "->") int)
        blocks heat
  | If_convert { fname; pc; bias; executions } ->
      Fmt.pf ppf "if-convert %s:%d (%.0f%% biased over %d runs)" fname pc
        (100. *. bias) executions
  | Cache_load { fname; pc; value; executions } ->
      Fmt.pf ppf "cache load %s:%d (always %d over %d runs)" fname pc value
        executions
  | Devirtualize { fname; pc; target; executions } ->
      Fmt.pf ppf "devirtualize %s:%d -> %s (%d runs)" fname pc target
        executions
