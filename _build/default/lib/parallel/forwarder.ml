(** Batched event forwarding over the {!Spsc} ring (paper §2.1); see
    the interface for the protocol. *)

open Dift_vm

type t = {
  ring : Event.exec array Spsc.t;
  batch_size : int;
  mutable buf : Event.exec array;  (** [[||]] when no batch is open *)
  mutable fill : int;
  mutable events : int;
  mutable batches : int;
}

let create ~queue_capacity ~batch_size =
  if batch_size < 1 then invalid_arg "Forwarder.create: batch_size < 1";
  {
    ring = Spsc.create ~capacity:queue_capacity;
    batch_size;
    buf = [||];
    fill = 0;
    events = 0;
    batches = 0;
  }

let events t = t.events
let batches t = t.batches
let producer_stalls t = Spsc.producer_stalls t.ring
let consumer_waits t = Spsc.consumer_waits t.ring
let dropped t = Spsc.dropped t.ring

let flush t =
  if t.fill > 0 then begin
    let batch =
      if t.fill = t.batch_size then t.buf else Array.sub t.buf 0 t.fill
    in
    (* the consumer takes ownership of the array; open a fresh one *)
    t.buf <- [||];
    t.fill <- 0;
    t.batches <- t.batches + 1;
    Spsc.push t.ring batch
  end

let add t e =
  if t.buf == [||] then t.buf <- Array.make t.batch_size e;
  t.buf.(t.fill) <- e;
  t.fill <- t.fill + 1;
  t.events <- t.events + 1;
  if t.fill = t.batch_size then flush t

let close t =
  flush t;
  Spsc.close t.ring

let abort t = Spsc.abort t.ring

let drain t ~f =
  let rec loop () =
    match Spsc.pop t.ring with
    | None -> ()
    | Some batch ->
        Array.iter f batch;
        loop ()
  in
  loop ()
