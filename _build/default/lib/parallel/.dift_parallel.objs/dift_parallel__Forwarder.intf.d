lib/parallel/forwarder.mli: Dift_vm Event
