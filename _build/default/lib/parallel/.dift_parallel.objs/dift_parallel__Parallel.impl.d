lib/parallel/parallel.ml: Dift_core Dift_vm Domain Engine Event Fmt Forwarder Hashtbl List Machine Taint Tool Unix
