lib/parallel/spsc.ml: Array Atomic Condition Domain Mutex
