lib/parallel/spsc.mli:
