lib/parallel/parallel.mli: Dift_core Dift_isa Dift_vm Engine Event Fmt Machine Policy Program Taint
