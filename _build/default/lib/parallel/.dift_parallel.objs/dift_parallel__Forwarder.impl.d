lib/parallel/forwarder.ml: Array Dift_vm Event Spsc
