(** Fault localization using value replacement (paper §3.1, after
    Jeffrey et al. [2]).

    A statement instance is an *interesting value-mapping pair* when
    replacing the value it produced with some alternate value (drawn
    from the same run's value profile) turns the failing run into a
    passing one.  Unlike slicing this needs no dependence tracking and
    uniformly handles all error classes; statements are ranked by
    whether such a replacement exists (and how early the instance is).

    Each candidate costs one deterministic re-execution. *)

open Dift_isa
open Dift_vm

type ranked = {
  site : string * int;
  step : int;  (** instance whose replacement made the run pass *)
  replacement : int;
}

type report = {
  ranking : ranked list;  (** interesting sites, by discovery order *)
  faulty_rank : int option;
      (** 1-based position of the known faulty site in the ranking *)
  attempts : int;
  sites_profiled : int;
}

(* Value-producing instructions worth perturbing. *)
let producer (e : Event.exec) =
  match e.Event.instr with
  | Instr.Mov _ | Instr.Binop _ | Instr.Cmp _ | Instr.Load _ -> true
  | _ -> false

let passes = function
  | Event.Halted -> true
  | Event.Faulted _ | Event.Deadlocked | Event.Out_of_steps
  | Event.Stopped _ ->
      false

let run ?(config = Machine.default_config) ?(max_attempts = 400)
    ?(alternates_per_site = 3) program ~input ~faulty_site =
  (* profile the failing run: per site, the values produced and one
     representative instance (the last, nearest the failure) *)
  let profile : (string * int, int list) Hashtbl.t = Hashtbl.create 256 in
  let instance : (string * int, int * int) Hashtbl.t = Hashtbl.create 256 in
  let m = Machine.create ~config program ~input in
  Machine.attach m
    (Tool.make ~dispatch_cost:0
       ~on_exec:(fun e ->
         if producer e then begin
           let site = (e.Event.func.Func.name, e.Event.pc) in
           let vs =
             match Hashtbl.find_opt profile site with
             | Some vs -> vs
             | None -> []
           in
           if not (List.mem e.Event.value vs) then
             Hashtbl.replace profile site (e.Event.value :: vs);
           Hashtbl.replace instance site (e.Event.step, e.Event.value)
         end)
       "value-profile");
  let original = Machine.run m in
  if passes original then
    { ranking = []; faulty_rank = None; attempts = 0; sites_profiled = 0 }
  else begin
    (* candidate alternates per site: other observed values at the same
       site, plus simple mutations of the produced value *)
    let attempts = ref 0 in
    let ranking = ref [] in
    let sites =
      Hashtbl.fold (fun site inst acc -> (site, inst) :: acc) instance []
      (* nearest-to-failure instances first *)
      |> List.sort (fun (_, (s1, _)) (_, (s2, _)) -> compare s2 s1)
    in
    List.iter
      (fun (site, (step, value)) ->
        if !attempts < max_attempts then begin
          let observed =
            match Hashtbl.find_opt profile site with
            | Some vs -> List.filter (fun v -> v <> value) vs
            | None -> []
          in
          let alternates =
            let mutations = [ value + 1; value - 1; 1 - value ] in
            let rec take n = function
              | [] -> []
              | x :: xs -> if n = 0 then [] else x :: take (n - 1) xs
            in
            take alternates_per_site
              (observed @ List.filter (fun v -> v <> value) mutations)
          in
          List.iter
            (fun alt ->
              if
                !attempts < max_attempts
                && not (List.exists (fun r -> r.site = site) !ranking)
              then begin
                incr attempts;
                let m2 =
                  Machine.create
                    ~config:
                      { config with value_replacements = [ (step, alt) ] }
                    program ~input
                in
                if passes (Machine.run m2) then
                  ranking := { site; step; replacement = alt } :: !ranking
              end)
            alternates
        end)
      sites;
    let ranking = List.rev !ranking in
    let faulty_rank =
      let rec find i = function
        | [] -> None
        | r :: rest -> if r.site = faulty_site then Some i else find (i + 1) rest
      in
      find 1 ranking
    in
    {
      ranking;
      faulty_rank;
      attempts = !attempts;
      sites_profiled = Hashtbl.length instance;
    }
  end
