(** Fault localization using value replacement (paper §3.1, after
    Jeffrey et al. [2]).

    A statement instance is an {e interesting value-mapping pair} when
    replacing the value it produced with some alternate value (drawn
    from the same run's value profile) turns the failing run into a
    passing one.  Unlike slicing this needs no dependence tracking and
    uniformly handles all error classes.  Each candidate costs one
    deterministic re-execution. *)

open Dift_isa
open Dift_vm

type ranked = {
  site : string * int;
  step : int;  (** instance whose replacement made the run pass *)
  replacement : int;
}

type report = {
  ranking : ranked list;  (** interesting sites, by discovery order *)
  faulty_rank : int option;
      (** 1-based position of the known faulty site in the ranking *)
  attempts : int;
  sites_profiled : int;
}

val run :
  ?config:Machine.config ->
  ?max_attempts:int ->
  ?alternates_per_site:int ->
  Program.t ->
  input:int array ->
  faulty_site:(string * int) ->
  report
