(** Automated predicate switching (paper §3.1, after Zhang et al.,
    ICSE'06).

    A predicate instance is {e critical} when forcibly inverting its
    outcome makes the failing run pass.  Critical predicates either
    are the faulty statement or sit next to it — and, unlike slices,
    they also catch execution-omission errors.  The search re-executes
    the deterministic failing run once per candidate, nearest to the
    failure first. *)

open Dift_isa
open Dift_vm

type critical = {
  step : int;  (** the flipped dynamic branch instance *)
  site : string * int;
  attempts : int;  (** re-executions needed to find it *)
}

type report = {
  critical : critical option;
  branches_seen : int;
  attempts_made : int;
}

val search :
  ?config:Machine.config ->
  ?max_attempts:int ->
  Program.t ->
  input:int array ->
  report
