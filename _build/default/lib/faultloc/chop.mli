(** Failure-inducing chops (paper §3.1, after Gupta et al. [1]):
    intersect the forward slice of the failure-inducing input with the
    backward slice of the failure.  The chop keeps only statements
    that both consumed the bad input and influenced the failure —
    typically a much smaller candidate set than the backward slice. *)

open Dift_isa
open Dift_vm
open Dift_core

type report = {
  backward_sites : int;
  chop_sites : int;
  faulty_site_in_chop : bool;
  reduction : float;  (** chop sites / backward-slice sites *)
}

val run :
  ?opts:Ontrac.opts ->
  ?config:Machine.config ->
  Program.t ->
  input:int array ->
  faulty_site:(string * int) ->
  report
