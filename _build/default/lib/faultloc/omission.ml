(** Locating execution-omission errors with implicit dependences
    (paper §3.1, after Zhang et al., PLDI'07).

    Execution-omission errors fail *because correct code did not run*:
    the failure has no data or control dependence on the faulty
    predicate, so the ordinary backward slice misses it.  The implicit
    dependence between the failure and a predicate is exposed by
    switching the predicate: if forcing the untaken outcome makes the
    failure disappear, the failure implicitly depends on that
    predicate.

    The search is demand-driven: only predicates *outside* the plain
    slice are candidates (those inside are already implicated), tried
    nearest to the failure first, and each verification is one
    deterministic re-execution.  On success the slice is augmented
    with the verified predicate and everything it depends on. *)

open Dift_isa
open Dift_vm
open Dift_core

type report = {
  plain_slice_sites : int;
  plain_slice_has_fault : bool;
  verified_predicate : (int * (string * int)) option;
      (** (dynamic step, site) of the implicit dependence *)
  verifications : int;  (** re-executions spent *)
  augmented_slice_sites : int;
  augmented_slice_has_fault : bool;
}

let run ?(config = Machine.default_config) ?(max_verifications = 100)
    program ~input ~faulty_site =
  (* failing run under ONTRAC, collecting branch instances as we go *)
  let m = Machine.create ~config program ~input in
  let tracer = Ontrac.create program in
  Ontrac.attach tracer m;
  let branches = ref [] in
  let fault = ref None in
  Machine.attach m
    (Tool.make ~dispatch_cost:0
       ~on_exec:(fun e ->
         match e.Event.instr with
         | Instr.Br _ ->
             branches :=
               (e.Event.step, (e.Event.func.Func.name, e.Event.pc))
               :: !branches
         | _ -> ())
       ~on_fault:(fun f -> fault := Some f)
       "probe");
  ignore (Machine.run m);
  let g, w = Ontrac.final_graph tracer in
  let criterion =
    match !fault with
    | Some f -> Some f.Event.at_step
    | None -> Slicing.last_output g
  in
  let plain =
    match criterion with
    | Some c -> Slicing.backward ~window_start:w g ~criterion:[ c ]
    | None -> Slicing.empty
  in
  (* demand-driven verification over predicates outside the slice *)
  let candidates =
    List.filter (fun (step, _) -> not (Slicing.mem_step plain step)) !branches
  in
  let verifications = ref 0 in
  let verified = ref None in
  let rec verify = function
    | [] -> ()
    | (step, site) :: rest ->
        if !verifications >= max_verifications || !verified <> None then ()
        else begin
          incr verifications;
          let m2 =
            Machine.create
              ~config:{ config with flip_steps = [ step ] }
              program ~input
          in
          (match Machine.run m2 with
          | Event.Halted -> verified := Some (step, site)
          | Event.Faulted _ | Event.Deadlocked | Event.Out_of_steps
          | Event.Stopped _ ->
              ());
          if !verified = None then verify rest
        end
  in
  verify candidates;
  let augmented =
    match !verified with
    | None -> plain
    | Some (step, _) ->
        let extra =
          Slicing.backward ~window_start:w g ~criterion:[ step ]
        in
        (* union of the two slices *)
        let steps =
          Slicing.steps plain @ Slicing.steps extra
        in
        Slicing.backward ~window_start:w g ~criterion:steps
  in
  {
    plain_slice_sites = Slicing.num_sites plain;
    plain_slice_has_fault = Slicing.mem_site plain faulty_site;
    verified_predicate = !verified;
    verifications = !verifications;
    augmented_slice_sites = Slicing.num_sites augmented;
    augmented_slice_has_fault =
      Slicing.mem_site augmented faulty_site
      || (match !verified with
         | Some (_, site) -> site = faulty_site
         | None -> false);
  }
