(** Locating faulty code by multiple-points slicing (paper §3.1, after
    Zhang et al., SP&E'07 [13]).

    A single backward slice can be large; combining slices from
    several points sharpens it:

    - when several outputs are wrong, the fault is (likely) in the
      {e intersection} of their backward slices;
    - when some outputs are wrong and others correct, statements in a
      correct output's slice are less suspicious: subtracting them
      yields a {e dice}.

    Correctness of outputs is established against an oracle (the
    expected output list), as in the original work. *)

open Dift_vm
open Dift_core

type report = {
  wrong_outputs : int;
  correct_outputs : int;
  single_slice_sites : int;  (** backward slice of one wrong output *)
  intersection_sites : int;  (** ∩ of all wrong outputs' slices *)
  dice_sites : int;  (** intersection minus correct outputs' slices *)
  faulty_in_intersection : bool;
  faulty_in_dice : bool;
}

(* Collect output events with their dynamic steps. *)
let output_steps g =
  let acc = ref [] in
  Ddg.iter_nodes (fun n -> if n.Ddg.is_output then acc := n :: !acc) g;
  List.sort (fun (a : Ddg.node) b -> compare a.Ddg.step b.Ddg.step) !acc

let run ?(opts = Ontrac.default_opts) ?config program ~input
    ~expected_output ~faulty_site =
  let m = Machine.create ?config program ~input in
  let tracer = Ontrac.create ~opts program in
  Ontrac.attach tracer m;
  ignore (Machine.run m);
  let actual = Machine.output_values m in
  let g, w = Ontrac.final_graph tracer in
  let outputs = output_steps g in
  (* outputs are in emission order, as is the actual output list; pair
     them and the oracle position-wise *)
  let rec zip3 outs acts exps =
    match outs, acts, exps with
    | o :: os, a :: aa, e :: es -> (o, a, Some e) :: zip3 os aa es
    | o :: os, a :: aa, [] -> (o, a, None) :: zip3 os aa []
    | _, _, _ -> []
  in
  let paired = zip3 outputs actual expected_output in
  let wrong, correct =
    List.partition
      (fun (_, actual_v, expected) -> expected <> Some actual_v)
      paired
  in
  let wrong = List.map (fun (n, _, _) -> n) wrong in
  let correct = List.map (fun (n, _, _) -> n) correct in
  let slice_of (n : Ddg.node) =
    Slicing.backward ~window_start:w g ~criterion:[ n.Ddg.step ]
  in
  match wrong with
  | [] ->
      {
        wrong_outputs = 0;
        correct_outputs = List.length correct;
        single_slice_sites = 0;
        intersection_sites = 0;
        dice_sites = 0;
        faulty_in_intersection = false;
        faulty_in_dice = false;
      }
  | first :: rest ->
      let s0 = slice_of first in
      let intersection =
        List.fold_left
          (fun acc n -> Slicing.inter acc (slice_of n))
          s0 rest
      in
      (* dice: drop sites that also appear in correct outputs' slices *)
      let correct_sites =
        List.fold_left
          (fun acc n ->
            List.fold_left
              (fun acc site -> site :: acc)
              acc
              (Slicing.sites (slice_of n)))
          [] correct
      in
      let dice_sites_list =
        List.filter
          (fun site -> not (List.mem site correct_sites))
          (Slicing.sites intersection)
      in
      {
        wrong_outputs = List.length wrong;
        correct_outputs = List.length correct;
        single_slice_sites = Slicing.num_sites s0;
        intersection_sites = Slicing.num_sites intersection;
        dice_sites = List.length dice_sites_list;
        faulty_in_intersection = Slicing.mem_site intersection faulty_site;
        faulty_in_dice = List.mem faulty_site dice_sites_list;
      }
