(** Locating execution-omission errors with implicit dependences
    (paper §3.1, after Zhang et al., PLDI'07).

    Execution-omission errors fail because correct code did {e not}
    run: the failure has no data or control dependence on the faulty
    predicate, so the ordinary backward slice misses it.  The implicit
    dependence is exposed by predicate switching: if forcing the
    untaken outcome makes the failure disappear, the failure
    implicitly depends on that predicate, and the slice is augmented
    through it.  The search is demand-driven: only predicates outside
    the plain slice are candidates, nearest the failure first. *)

open Dift_isa
open Dift_vm

type report = {
  plain_slice_sites : int;
  plain_slice_has_fault : bool;
  verified_predicate : (int * (string * int)) option;
      (** (dynamic step, site) of the implicit dependence *)
  verifications : int;  (** re-executions spent *)
  augmented_slice_sites : int;
  augmented_slice_has_fault : bool;
}

val run :
  ?config:Machine.config ->
  ?max_verifications:int ->
  Program.t ->
  input:int array ->
  faulty_site:(string * int) ->
  report
