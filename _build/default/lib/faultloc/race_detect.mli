(** Dynamic data-race detection with synchronisation recognition
    (paper §3.1, after Tian et al. [10]).

    A vector-clock happens-before detector over the VM's event stream.
    Ordering edges come from thread creation/join, locks and barriers
    — and, in [Sync_aware] mode, from recognised user-level
    synchronisation: repeated spin-wait reads classify their address
    as a sync variable; a store to a sync variable releases the
    writer's clock and a subsequent load acquires it.  Sync-aware mode
    also drops the reports on the sync variables themselves — the
    benign "synchronisation races" plain detectors drown users in. *)

open Dift_vm

type mode = Basic | Sync_aware

type access = { a_tid : int; a_clock : int; a_site : string * int }

type race = {
  addr : int;
  prior : access;
  current : access;
  current_is_write : bool;
}

type t

val create : ?spin_threshold:int -> mode -> t
val attach : t -> Machine.t -> unit

(** Races found, oldest first, deduplicated by site pair.  In
    sync-aware mode, races on addresses later recognised as sync
    variables are filtered out. *)
val races : t -> race list

(** Number of sync variables recognised. *)
val sync_vars : t -> int

val pp_race : race Fmt.t
