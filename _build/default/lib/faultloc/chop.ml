(** Failure-inducing chops (paper §3.1, after Gupta et al. [1]):
    intersect the forward slice of the failure-inducing input with the
    backward slice of the failure.  The chop keeps only statements
    that both consumed the bad input and influenced the failure —
    typically a much smaller candidate set than the backward slice. *)

open Dift_vm
open Dift_core

type report = {
  backward_sites : int;
  chop_sites : int;
  faulty_site_in_chop : bool;
  reduction : float;  (** chop sites / backward-slice sites *)
}

let run ?(opts = Ontrac.default_opts) ?config program ~input ~faulty_site =
  let m = Machine.create ?config program ~input in
  let tracer = Ontrac.create ~opts program in
  Ontrac.attach tracer m;
  let fault = ref None in
  Machine.attach m
    (Tool.make ~dispatch_cost:0 ~on_fault:(fun f -> fault := Some f) "probe");
  ignore (Machine.run m);
  let g, w = Ontrac.final_graph tracer in
  let criterion =
    match !fault with
    | Some f -> Some f.Event.at_step
    | None -> Slicing.last_output g
  in
  match criterion with
  | None ->
      { backward_sites = 0; chop_sites = 0; faulty_site_in_chop = false;
        reduction = 0. }
  | Some sink ->
      (* sources: every input-read instance *)
      let sources = ref [] in
      Ddg.iter_nodes
        (fun n -> if n.Ddg.input_index >= 0 then sources := n.Ddg.step :: !sources)
        g;
      let bwd = Slicing.backward ~window_start:w g ~criterion:[ sink ] in
      let chop =
        Slicing.chop ~window_start:w g ~source:!sources ~sink:[ sink ]
      in
      {
        backward_sites = Slicing.num_sites bwd;
        chop_sites = Slicing.num_sites chop;
        faulty_site_in_chop = Slicing.mem_site chop faulty_site;
        reduction =
          float_of_int (Slicing.num_sites chop)
          /. float_of_int (max 1 (Slicing.num_sites bwd));
      }
