lib/faultloc/race_detect.mli: Dift_vm Fmt Machine
