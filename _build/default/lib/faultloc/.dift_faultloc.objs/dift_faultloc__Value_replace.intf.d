lib/faultloc/value_replace.mli: Dift_isa Dift_vm Machine Program
