lib/faultloc/chop.ml: Ddg Dift_core Dift_vm Event Machine Ontrac Slicing Tool
