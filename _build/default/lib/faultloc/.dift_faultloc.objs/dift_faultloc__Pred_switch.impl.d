lib/faultloc/pred_switch.ml: Dift_isa Dift_vm Event Func Instr List Machine Tool
