lib/faultloc/pred_switch.mli: Dift_isa Dift_vm Machine Program
