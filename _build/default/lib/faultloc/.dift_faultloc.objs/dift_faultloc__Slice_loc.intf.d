lib/faultloc/slice_loc.mli: Dift_core Dift_isa Dift_vm Event Machine Ontrac Program
