lib/faultloc/multi_point.ml: Ddg Dift_core Dift_vm List Machine Ontrac Slicing
