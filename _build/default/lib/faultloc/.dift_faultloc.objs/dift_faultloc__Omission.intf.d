lib/faultloc/omission.mli: Dift_isa Dift_vm Machine Program
