lib/faultloc/value_replace.ml: Dift_isa Dift_vm Event Func Hashtbl Instr List Machine Tool
