lib/faultloc/slice_loc.ml: Ddg Dift_core Dift_vm Event Hashtbl Machine Ontrac Slicing Tool
