lib/faultloc/chop.mli: Dift_core Dift_isa Dift_vm Machine Ontrac Program
