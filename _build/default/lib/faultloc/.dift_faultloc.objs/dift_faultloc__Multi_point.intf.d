lib/faultloc/multi_point.mli: Dift_core Dift_isa Dift_vm Machine Ontrac Program
