lib/faultloc/omission.ml: Dift_core Dift_isa Dift_vm Event Func Instr List Machine Ontrac Slicing Tool
