lib/faultloc/race_detect.ml: Array Dift_isa Dift_vm Event Fmt Func Hashtbl Instr List Machine Tool
