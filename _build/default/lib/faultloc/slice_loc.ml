(** Dynamic-slicing fault location (paper §3.1).

    Run the failing input under ONTRAC, slice backwards from the
    failure point (the faulting instruction, or the last output when
    the failure is wrong output), and report how much of the program a
    developer must examine: the static sites in the slice, and whether
    the known faulty site is among them. *)

open Dift_vm
open Dift_core

type report = {
  fault : Event.fault option;
  criterion_step : int option;
  slice_steps : int;
  slice_sites : int;
  total_sites : int;  (** static instructions executed at least once *)
  faulty_site_in_slice : bool;
  examined_fraction : float;
      (** slice sites / executed sites — the effort metric *)
}

let run ?(opts = Ontrac.default_opts) ?config program ~input ~faulty_site =
  let m = Machine.create ?config program ~input in
  let tracer = Ontrac.create ~opts program in
  Ontrac.attach tracer m;
  let fault = ref None in
  Machine.attach m
    (Tool.make ~dispatch_cost:0 ~on_fault:(fun f -> fault := Some f) "probe");
  ignore (Machine.run m);
  let g, w = Ontrac.final_graph tracer in
  let criterion =
    match !fault with
    | Some f -> Some f.Event.at_step
    | None -> Slicing.last_output g
  in
  let slice =
    match criterion with
    | Some c -> Slicing.backward ~window_start:w g ~criterion:[ c ]
    | None -> Slicing.empty
  in
  (* executed static sites = distinct (fname, pc) among graph nodes *)
  let sites = Hashtbl.create 256 in
  Ddg.iter_nodes
    (fun n -> Hashtbl.replace sites (n.Ddg.fname, n.Ddg.pc) ())
    g;
  let total_sites = Hashtbl.length sites in
  {
    fault = !fault;
    criterion_step = criterion;
    slice_steps = Slicing.size slice;
    slice_sites = Slicing.num_sites slice;
    total_sites;
    faulty_site_in_slice = Slicing.mem_site slice faulty_site;
    examined_fraction =
      float_of_int (Slicing.num_sites slice)
      /. float_of_int (max 1 total_sites);
  }
