(** Dynamic-slicing fault location (paper §3.1).

    Run the failing input under ONTRAC, slice backwards from the
    failure point (the faulting instruction, or the last output when
    the failure is wrong output), and report how much of the program a
    developer must examine. *)

open Dift_isa
open Dift_vm
open Dift_core

type report = {
  fault : Event.fault option;
  criterion_step : int option;
  slice_steps : int;
  slice_sites : int;
  total_sites : int;  (** static instructions executed at least once *)
  faulty_site_in_slice : bool;
  examined_fraction : float;
      (** slice sites / executed sites — the effort metric *)
}

val run :
  ?opts:Ontrac.opts ->
  ?config:Machine.config ->
  Program.t ->
  input:int array ->
  faulty_site:(string * int) ->
  report
