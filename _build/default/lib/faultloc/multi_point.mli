(** Locating faulty code by multiple-points slicing (paper §3.1, after
    Zhang et al., SP&E'07 [13]).

    When several outputs are wrong, the fault is (likely) in the
    {e intersection} of their backward slices; when some outputs are
    correct, subtracting their slices yields a {e dice}.  Output
    correctness is established against an oracle (the expected output
    list), position-wise. *)

open Dift_isa
open Dift_vm
open Dift_core

type report = {
  wrong_outputs : int;
  correct_outputs : int;
  single_slice_sites : int;  (** backward slice of one wrong output *)
  intersection_sites : int;  (** ∩ of all wrong outputs' slices *)
  dice_sites : int;
      (** intersection minus the correct outputs' slices *)
  faulty_in_intersection : bool;
  faulty_in_dice : bool;
}

val run :
  ?opts:Ontrac.opts ->
  ?config:Machine.config ->
  Program.t ->
  input:int array ->
  expected_output:int list ->
  faulty_site:(string * int) ->
  report
