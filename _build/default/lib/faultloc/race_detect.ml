(** Dynamic data-race detection with synchronisation recognition
    (paper §3.1, after Tian et al. [10]).

    A vector-clock happens-before detector over the VM's event stream.
    Ordering edges come from thread creation/join, locks and barriers —
    and, in [Sync_aware] mode, from *recognised user-level
    synchronisation*: repeated spin-wait reads classify their address
    as a sync variable; a store to a sync variable releases the
    writer's clock and a subsequent load acquires it.  Sync-aware mode
    also drops the reports on the sync variables themselves — the
    benign "synchronisation races" plain detectors drown users in. *)

open Dift_isa
open Dift_vm

type mode = Basic | Sync_aware

let max_threads = 32

type access = { a_tid : int; a_clock : int; a_site : string * int }

type loc_state = {
  mutable last_write : access option;
  mutable last_reads : (int * access) list;  (** newest per tid *)
}

type race = {
  addr : int;
  prior : access;
  current : access;
  current_is_write : bool;
}

type t = {
  mode : mode;
  clocks : (int, int array) Hashtbl.t;
  locs : (int, loc_state) Hashtbl.t;
  lock_vcs : (int, int array) Hashtbl.t;
  barrier_acc : (int, int array) Hashtbl.t;
  pending_barrier : (int, int) Hashtbl.t;  (** tid -> barrier id *)
  sync_addrs : (int, unit) Hashtbl.t;
  sync_release : (int, int array) Hashtbl.t;
  spin_state : (int, int * int) Hashtbl.t;  (** tid -> (addr, run length) *)
  spin_threshold : int;
  mutable rev_races : race list;
  reported : ((string * int) * (string * int), unit) Hashtbl.t;
}

let create ?(spin_threshold = 6) mode =
  {
    mode;
    clocks = Hashtbl.create 8;
    locs = Hashtbl.create 1024;
    lock_vcs = Hashtbl.create 16;
    barrier_acc = Hashtbl.create 8;
    pending_barrier = Hashtbl.create 8;
    sync_addrs = Hashtbl.create 16;
    sync_release = Hashtbl.create 16;
    spin_state = Hashtbl.create 8;
    spin_threshold;
    rev_races = [];
    reported = Hashtbl.create 64;
  }

let vc_of t tid =
  if tid >= max_threads then
    invalid_arg
      (Fmt.str "Race_detect: thread id %d exceeds the %d-thread limit" tid
         max_threads);
  match Hashtbl.find_opt t.clocks tid with
  | Some v -> v
  | None ->
      let v = Array.make max_threads 0 in
      v.(tid) <- 1;
      Hashtbl.replace t.clocks tid v;
      v

let join_into dst src =
  for i = 0 to max_threads - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let tick t tid = (vc_of t tid).(tid) <- (vc_of t tid).(tid) + 1

(* [prior] happened before the current access by [tid] iff the prior
   access's clock is covered by the current thread's knowledge of the
   prior thread. *)
let ordered t prior ~tid =
  prior.a_tid = tid || prior.a_clock <= (vc_of t tid).(prior.a_tid)

let loc_of t addr =
  match Hashtbl.find_opt t.locs addr with
  | Some l -> l
  | None ->
      let l = { last_write = None; last_reads = [] } in
      Hashtbl.replace t.locs addr l;
      l

let report t addr prior current ~current_is_write =
  let key = (prior.a_site, current.a_site) in
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    t.rev_races <- { addr; prior; current; current_is_write } :: t.rev_races
  end

let access t (e : Event.exec) ~is_write =
  let addr = e.Event.addr in
  let tid = e.Event.tid in
  let l = loc_of t addr in
  let me =
    { a_tid = tid; a_clock = (vc_of t tid).(tid);
      a_site = (e.Event.func.Func.name, e.Event.pc) }
  in
  (match l.last_write with
  | Some w when w.a_tid <> tid && not (ordered t w ~tid) ->
      report t addr w me ~current_is_write:is_write
  | Some _ | None -> ());
  if is_write then begin
    List.iter
      (fun (rtid, r) ->
        if rtid <> tid && not (ordered t r ~tid) then
          report t addr r me ~current_is_write:true)
      l.last_reads;
    l.last_write <- Some me;
    l.last_reads <- []
  end
  else l.last_reads <- (tid, me) :: List.remove_assoc tid l.last_reads

(* Spin recognition: consecutive loads of one address by one thread. *)
let note_spin t tid addr =
  let run =
    match Hashtbl.find_opt t.spin_state tid with
    | Some (a, c) when a = addr -> c + 1
    | Some _ | None -> 1
  in
  Hashtbl.replace t.spin_state tid (addr, run);
  if run >= t.spin_threshold && not (Hashtbl.mem t.sync_addrs addr) then
    Hashtbl.replace t.sync_addrs addr ()

let on_exec t (e : Event.exec) =
  let tid = e.Event.tid in
  (* lazy barrier acquire *)
  (match Hashtbl.find_opt t.pending_barrier tid with
  | Some id ->
      Hashtbl.remove t.pending_barrier tid;
      (match Hashtbl.find_opt t.barrier_acc id with
      | Some acc -> join_into (vc_of t tid) acc
      | None -> ())
  | None -> ());
  match e.Event.instr with
  | Instr.Sys (Instr.Spawn _) ->
      let child = e.Event.value in
      join_into (vc_of t child) (vc_of t tid);
      (vc_of t child).(child) <- (vc_of t child).(child) + 1;
      tick t tid
  | Instr.Sys (Instr.Join _) ->
      let target = e.Event.value in
      join_into (vc_of t tid) (vc_of t target)
  | Instr.Sys (Instr.Lock _) ->
      (match Hashtbl.find_opt t.lock_vcs e.Event.value with
      | Some lv -> join_into (vc_of t tid) lv
      | None -> ())
  | Instr.Sys (Instr.Unlock _) ->
      Hashtbl.replace t.lock_vcs e.Event.value
        (Array.copy (vc_of t tid));
      tick t tid
  | Instr.Sys (Instr.Barrier _) ->
      let id = e.Event.value in
      let acc =
        match Hashtbl.find_opt t.barrier_acc id with
        | Some acc -> acc
        | None ->
            let acc = Array.make max_threads 0 in
            Hashtbl.replace t.barrier_acc id acc;
            acc
      in
      join_into acc (vc_of t tid);
      tick t tid;
      Hashtbl.replace t.pending_barrier tid id
  | Instr.Load _ when e.Event.addr >= 0 ->
      if t.mode = Sync_aware then begin
        note_spin t tid e.Event.addr;
        match Hashtbl.find_opt t.sync_release e.Event.addr with
        | Some rv when Hashtbl.mem t.sync_addrs e.Event.addr ->
            join_into (vc_of t tid) rv
        | Some _ | None -> ()
      end;
      access t e ~is_write:false
  | Instr.Store _ when e.Event.addr >= 0 ->
      if t.mode = Sync_aware then begin
        Hashtbl.remove t.spin_state tid;
        if Hashtbl.mem t.sync_addrs e.Event.addr then begin
          Hashtbl.replace t.sync_release e.Event.addr
            (Array.copy (vc_of t tid));
          tick t tid
        end
      end;
      access t e ~is_write:true
  | _ -> ()

(** Races found, oldest first.  In sync-aware mode, races on addresses
    later recognised as sync variables are filtered out (they are the
    synchronisation itself). *)
let races t =
  let all = List.rev t.rev_races in
  match t.mode with
  | Basic -> all
  | Sync_aware ->
      List.filter (fun r -> not (Hashtbl.mem t.sync_addrs r.addr)) all

let sync_vars t = Hashtbl.length t.sync_addrs

let attach t machine =
  Machine.attach machine
    (Tool.make ~dispatch_cost:0 ~on_exec:(on_exec t) "race-detect")

let pp_race ppf r =
  let f, p = r.prior.a_site and f2, p2 = r.current.a_site in
  Fmt.pf ppf "mem[%d]: %s:%d (t%d) vs %s:%d (t%d)%s" r.addr f p
    r.prior.a_tid f2 p2 r.current.a_tid
    (if r.current_is_write then " [write]" else "")
