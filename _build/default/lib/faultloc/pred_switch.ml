(** Automated predicate switching (paper §3.1, after Zhang et al.,
    ICSE'06).

    A predicate instance is *critical* when forcibly inverting its
    outcome makes the failing run pass.  Critical predicates either are
    the faulty statement or sit next to it, so they are strong fault
    candidates — and, unlike slices, they also catch execution-omission
    errors, where the faulty predicate kept correct code from running.

    The search re-executes the (deterministic) failing run once per
    candidate, flipping one dynamic branch instance at a time, nearest
    to the failure first. *)

open Dift_isa
open Dift_vm

type critical = {
  step : int;  (** the flipped dynamic branch instance *)
  site : string * int;
  attempts : int;  (** re-executions needed to find it *)
}

type report = {
  critical : critical option;
  branches_seen : int;
  attempts_made : int;
}

(* Collect the dynamic branch instances of a failing run, with sites. *)
let branch_instances ?config program ~input =
  let m = Machine.create ?config program ~input in
  let branches = ref [] in
  Machine.attach m
    (Tool.make ~dispatch_cost:0
       ~on_exec:(fun e ->
         match e.Event.instr with
         | Instr.Br _ ->
             branches :=
               (e.Event.step, (e.Event.func.Func.name, e.Event.pc))
               :: !branches
         | _ -> ())
       "branch-probe");
  let outcome = Machine.run m in
  (!branches (* newest first = nearest the failure first *), outcome)

(* A flipped run "passes" when it neither faults nor deadlocks. *)
let passes outcome =
  match outcome with
  | Event.Halted -> true
  | Event.Faulted _ | Event.Deadlocked | Event.Out_of_steps
  | Event.Stopped _ ->
      false

let search ?(config = Machine.default_config) ?(max_attempts = 200) program
    ~input =
  let branches, original_outcome = branch_instances ~config program ~input in
  if passes original_outcome then
    { critical = None; branches_seen = List.length branches;
      attempts_made = 0 }
  else begin
    let attempts = ref 0 in
    let found = ref None in
    let rec try_candidates = function
      | [] -> ()
      | (step, site) :: rest ->
          if !attempts >= max_attempts || !found <> None then ()
          else begin
            incr attempts;
            let flipped =
              { config with flip_steps = [ step ] }
            in
            let m = Machine.create ~config:flipped program ~input in
            let o = Machine.run m in
            if passes o then found := Some { step; site; attempts = !attempts }
            else try_candidates rest
          end
    in
    try_candidates branches;
    {
      critical = !found;
      branches_seen = List.length branches;
      attempts_made = !attempts;
    }
  end
