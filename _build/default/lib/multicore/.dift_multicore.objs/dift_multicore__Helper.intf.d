lib/multicore/helper.mli: Dift_core Dift_isa Fmt Policy Program
