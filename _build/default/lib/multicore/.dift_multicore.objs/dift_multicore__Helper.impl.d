lib/multicore/helper.ml: Array Cost Dift_core Dift_isa Dift_vm Engine Event Fmt Instr Machine Taint Tool
