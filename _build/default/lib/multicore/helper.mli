(** Helper-thread DIFT on multicores (paper §2.1, "Exploiting
    multicores", after Nagarajan et al., INTERACT'08).

    The application runs on the main core; a helper thread on a second
    core performs the information-flow tracking.  The main core only
    forwards what the helper cannot reconstruct from the static code:
    memory addresses/values, input values and control-flow outcomes.
    The producer/consumer timing between the cores is simulated with a
    bounded queue; the main-core slowdown is the number the paper
    reports (48% for SPEC integer programs with hardware support). *)

open Dift_isa
open Dift_core

type channel =
  | Software  (** shared-memory queue; main core needs DBI *)
  | Hardware  (** dedicated interconnect; forwarding is transparent *)

val channel_to_string : channel -> string

type report = {
  channel : channel;
  base_cycles : int;  (** uninstrumented run *)
  main_cycles : int;  (** main core, incl. forwarding and stalls *)
  helper_busy_cycles : int;  (** work done on the helper core *)
  finish_cycles : int;  (** when both cores are done *)
  stall_cycles : int;  (** main-core cycles lost to a full queue *)
  messages : int;
  instructions : int;
  sink_hits : int;  (** taint reaching sinks, observed by the helper *)
}

(** Main-core overhead over native execution (0.48 = 48%). *)
val main_overhead : report -> float

val total_slowdown : report -> float

val run :
  ?channel:channel ->
  ?queue_capacity:int ->
  ?policy:Policy.t ->
  Program.t ->
  input:int array ->
  report

val pp_report : report Fmt.t
