(** Helper-thread DIFT on multicores (paper §2.1, "Exploiting
    multicores", after Nagarajan et al., INTERACT'08).

    The application runs on the main core; a helper thread on a second
    core performs all information-flow tracking.  The main core only
    *forwards* what the helper cannot reconstruct from the static code:
    memory addresses/values, input values and control-flow outcomes.
    Two communication substrates are modelled:

    - {b Hardware}: a dedicated core-to-core interconnect.  Forwarding
      is transparent (no binary instrumentation on the main core) and
      costs {!Dift_vm.Cost.hw_channel_msg} per message; the helper is a
      dedicated engine processing one event per cycle.
    - {b Software}: a shared-memory queue.  The main core needs DBI to
      intercept instructions (full dispatch cost) and pays
      {!Dift_vm.Cost.sw_channel_msg} per enqueue; the helper runs the
      software propagation loop.

    The producer/consumer timing between the cores is simulated with a
    bounded queue: the main core stalls when the queue is full, and the
    run ends when the helper drains.  The main-core slowdown is the
    number the paper reports (48% for SPEC integer programs with
    hardware support). *)

open Dift_isa
open Dift_vm
open Dift_core

type channel = Software | Hardware

let channel_to_string = function
  | Software -> "sw-queue"
  | Hardware -> "hw-interconnect"

type report = {
  channel : channel;
  base_cycles : int;  (** uninstrumented run *)
  main_cycles : int;  (** main core, incl. forwarding and stalls *)
  helper_busy_cycles : int;  (** work done on the helper core *)
  finish_cycles : int;  (** when both cores are done *)
  stall_cycles : int;  (** main-core cycles lost to a full queue *)
  messages : int;
  instructions : int;
  sink_hits : int;  (** taint reaching sinks, observed by the helper *)
}

(** Main-core overhead over native execution (0.48 = 48%). *)
let main_overhead r =
  (float_of_int r.main_cycles /. float_of_int (max 1 r.base_cycles)) -. 1.

let total_slowdown r =
  float_of_int r.finish_cycles /. float_of_int (max 1 r.base_cycles)

(* Does this event need forwarding?  Pure register arithmetic is
   reconstructible by the helper from the static code and the control
   trace; memory accesses, inputs/outputs, indirect targets and branch
   outcomes are not. *)
let needs_message (e : Event.exec) =
  e.Event.addr >= 0
  ||
  match e.Event.instr with
  | Instr.Br _ | Instr.Icall _ | Instr.Call _ | Instr.Ret _ | Instr.Sys _ ->
      true
  | Instr.Nop | Instr.Mov _ | Instr.Binop _ | Instr.Cmp _ | Instr.Load _
  | Instr.Store _ | Instr.Jmp _ | Instr.Halt ->
      false

module Bool_engine = Engine.Make (Taint.Bool)

let run ?(channel = Hardware) ?(queue_capacity = 1024) ?policy program
    ~input =
  (* native baseline *)
  let m0 = Machine.create program ~input in
  ignore (Machine.run m0);
  let base_cycles = Machine.cycles m0 in
  (* instrumented run *)
  let m = Machine.create program ~input in
  let eng = Bool_engine.create ?policy program in
  let sink_hits = ref 0 in
  Bool_engine.on_sink eng (fun _ taint _ ->
      if taint then incr sink_hits);
  (* helper-core clock and bounded-queue completion window *)
  let helper_free = ref 0 in
  let helper_busy = ref 0 in
  let stalls = ref 0 in
  let messages = ref 0 in
  let instructions = ref 0 in
  let completion = Array.make queue_capacity 0 in
  let send_cost, dispatch_cost, helper_per_event =
    match channel with
    | Hardware -> (Cost.hw_channel_msg, 0, Cost.helper_process_msg)
    | Software ->
        (Cost.sw_channel_msg, Cost.dbi_dispatch, Cost.inline_taint_propagate)
  in
  let on_exec e =
    incr instructions;
    (* the helper propagates for every instruction; forwarded messages
       exist only for events it cannot reconstruct *)
    let msg = needs_message e in
    if msg then begin
      incr messages;
      Machine.charge m send_cost;
      (* stall until the queue has room *)
      let now = Machine.cycles m in
      let slot = !messages mod queue_capacity in
      let oldest = completion.(slot) in
      if !messages > queue_capacity && oldest > now then begin
        stalls := !stalls + (oldest - now);
        Machine.charge m (oldest - now)
      end
    end;
    (* helper-side processing: can start once the event is visible *)
    let visible_at = Machine.cycles m in
    let start = max !helper_free visible_at in
    let finish = start + helper_per_event in
    helper_free := finish;
    helper_busy := !helper_busy + helper_per_event;
    if msg then completion.(!messages mod queue_capacity) <- finish;
    (* the actual propagation (functional effect; timing is the
       two-core model above) *)
    Bool_engine.process eng e
  in
  Bool_engine.set_charge eng (fun _ -> ());
  Machine.attach m
    (Tool.make ~dispatch_cost ~on_exec "helper-dift");
  ignore (Machine.run m);
  {
    channel;
    base_cycles;
    main_cycles = Machine.cycles m;
    helper_busy_cycles = !helper_busy;
    finish_cycles = max (Machine.cycles m) !helper_free;
    stall_cycles = !stalls;
    messages = !messages;
    instructions = !instructions;
    sink_hits = !sink_hits;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "%s: main %.1f%% overhead, total %.2fx, %d msgs / %d instrs, %d stall \
     cycles"
    (channel_to_string r.channel)
    (100. *. main_overhead r)
    (total_slowdown r) r.messages r.instructions r.stall_cycles
