(** E3 — DIFT with a helper thread on a second core (paper §2.1:
    "We conducted detailed simulations to evaluate the overhead for
    performing DIFT and found that to be 48% for SPEC integer
    programs"), contrasting software and hardware communication. *)

open Dift_vm
open Dift_core
open Dift_workloads
open Dift_multicore

type row = {
  kernel : string;
  inline_slowdown : float;  (** single-core software DIFT *)
  sw_helper_slowdown : float;
  hw_helper_overhead : float;  (** fraction; paper: 0.48 *)
  hw_stalls : int;
}

type result = { rows : row list; mean_hw_overhead : float }

module Bool_engine = Engine.Make (Taint.Bool)

let inline_slowdown (w : Workload.t) ~input =
  let m0 = Machine.create w.Workload.program ~input in
  ignore (Machine.run m0);
  let base = Machine.cycles m0 in
  let m = Machine.create w.Workload.program ~input in
  let eng = Bool_engine.create w.Workload.program in
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  float_of_int (Machine.cycles m) /. float_of_int base

let measure_kernel (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let sw = Helper.run ~channel:Helper.Software w.Workload.program ~input in
  let hw = Helper.run ~channel:Helper.Hardware w.Workload.program ~input in
  {
    kernel = w.Workload.name;
    inline_slowdown = inline_slowdown w ~input;
    sw_helper_slowdown = Helper.total_slowdown sw;
    hw_helper_overhead = Helper.main_overhead hw;
    hw_stalls = hw.Helper.stall_cycles;
  }

let run ?(size = 30) ?(seed = 3) () =
  let rows =
    List.map (fun w -> measure_kernel w ~size ~seed) Spec_like.all
  in
  {
    rows;
    mean_hw_overhead =
      Table.geomean (List.map (fun r -> 1. +. r.hw_helper_overhead) rows)
      -. 1.;
  }

let table r =
  Table.make ~title:"E3: helper-thread DIFT on a second core"
    ~paper_claim:"48% overhead with hardware support (SPEC int)"
    ~header:
      [ "kernel"; "inline x"; "sw-queue x"; "hw overhead"; "hw stalls" ]
    ~notes:
      [ Fmt.str "geomean hw overhead: %.0f%%" (100. *. r.mean_hw_overhead) ]
    (List.map
       (fun row ->
         [
           row.kernel;
           Table.f1 row.inline_slowdown;
           Table.f1 row.sw_helper_slowdown;
           Table.pct row.hw_helper_overhead;
           Table.i row.hw_stalls;
         ])
       r.rows)

(* -- queue-capacity sweep ----------------------------------------------------- *)

type queue_row = {
  q_capacity : int;
  q_overhead : float;
  q_stalls : int;
}

(* The software queue's size determines how far the helper may lag
   before the main core stalls — the communication design choice the
   paper explores. *)
let queue_sweep ?(size = 16) ?(seed = 3) () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size ~seed in
  List.map
    (fun q_capacity ->
      let r =
        Helper.run ~channel:Helper.Software ~queue_capacity:q_capacity
          w.Workload.program ~input
      in
      {
        q_capacity;
        (* main-core slowdown: stalls show up here; the helper's own
           clock bounds the total either way *)
        q_overhead =
          float_of_int r.Helper.main_cycles
          /. float_of_int (max 1 r.Helper.base_cycles);
        q_stalls = r.Helper.stall_cycles;
      })
    [ 2; 8; 64; 1024; 65536 ]

let queue_table rows =
  Table.make ~title:"E3b (ablation): software queue capacity"
    ~paper_claim:"a deeper queue absorbs helper lag and removes stalls"
    ~header:[ "queue slots"; "main-core slowdown"; "stall cycles" ]
    (List.map
       (fun r ->
         [ Table.i r.q_capacity; Table.f1 r.q_overhead; Table.i r.q_stalls ])
       rows)
