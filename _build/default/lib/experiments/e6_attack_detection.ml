(** E6 — attack detection and root-cause identification with PC taint
    (paper §3.3: attacks via input-validation errors are detected when
    tainted data reaches a control transfer, and "in most cases [the
    PC taint] directly points to the statement that is the root cause
    of the bug"). *)

open Dift_workloads
open Dift_attack

type result = { rows : Detector.eval_row list }

let run () = { rows = List.map Detector.evaluate Vulnerable.all }

let yn b = if b then "yes" else "NO"

let table r =
  let total = List.length r.rows in
  let count f = List.length (List.filter f r.rows) in
  Table.make ~title:"E6: PC-taint attack detection and bug location"
    ~paper_claim:
      "input-validation attacks detected at tainted control transfers; \
       taint tag names the root-cause statement"
    ~header:
      [ "attack"; "benign clean"; "detected"; "hijack prevented";
        "root cause" ]
    ~notes:
      [
        Fmt.str "detected %d/%d, prevented %d/%d, root cause %d/%d"
          (count (fun x -> x.Detector.attack_detected))
          total
          (count (fun x -> x.Detector.hijack_prevented))
          total
          (count (fun x -> x.Detector.root_cause_correct))
          total;
      ]
    (List.map
       (fun (row : Detector.eval_row) ->
         [
           row.Detector.name;
           yn row.Detector.benign_clean;
           yn row.Detector.attack_detected;
           yn row.Detector.hijack_prevented;
           yn row.Detector.root_cause_correct;
         ])
       r.rows)
