(** E5 — synchronisation-aware conflict resolution for TM-based
    runtime monitoring (paper §2.2: synchronisation inside
    transactions causes livelocks; the sync-aware strategy "can
    efficiently avoid livelocks and reduce monitoring overhead for the
    SPLASH benchmarks"). *)

open Dift_isa
open Dift_workloads
open Dift_tm

type row = {
  workload : string;
  policy : Stm_exec.policy;
  outcome : Stm_exec.outcome;
  commits : int;
  aborts : int;
  overhead : float;
  sync_vars : int;
}

type result = { rows : row list }

let config_for policy =
  {
    Stm_exec.default_config with
    policy;
    max_ticks = 600_000;
    livelock_window = 150_000;
    starvation_threshold = 250;
  }

let tm_workloads ~size =
  [
    ("flag-pipeline", Splash_like.flag_pipeline (), [| size |]);
    ("spin-barrier",
     Splash_like.spin_barrier ~threads:2 ~phases:(max 2 (size / 4)) (),
     [||]);
    ("bank-racy", Splash_like.bank_racy ~threads:2 (), [| size * 2 |]);
    ("bank-locked", Splash_like.bank ~threads:2 (), [| size * 2 |]);
  ]

let measure name program input policy =
  let t = Stm_exec.create ~config:(config_for policy) program ~input in
  let s = Stm_exec.run t in
  {
    workload = name;
    policy;
    outcome = s.Stm_exec.outcome;
    commits = s.Stm_exec.commits;
    aborts = s.Stm_exec.aborts;
    overhead = Stm_exec.overhead s;
    sync_vars = s.Stm_exec.sync_vars;
  }

let run ?(size = 8) () =
  let rows =
    List.concat_map
      (fun (name, (program : Program.t), input) ->
        List.map
          (measure name program input)
          [ Stm_exec.Abort_requester; Stm_exec.Abort_owner;
            Stm_exec.Sync_aware ])
      (tm_workloads ~size)
  in
  { rows }

let outcome_str = function
  | Stm_exec.Completed -> "completed"
  | Stm_exec.Livelocked -> "LIVELOCK"
  | Stm_exec.Tick_budget_exhausted -> "LIVELOCK(budget)"
  | Stm_exec.Fault m -> "fault: " ^ m

let table r =
  Table.make ~title:"E5: TM-based monitoring under sync-heavy workloads"
    ~paper_claim:
      "naive conflict resolution livelocks on barrier/flag sync; \
       sync-aware resolution avoids livelock and cuts overhead"
    ~header:
      [ "workload"; "policy"; "outcome"; "commits"; "aborts"; "overhead";
        "sync vars" ]
    (List.map
       (fun row ->
         [
           row.workload;
           Stm_exec.policy_to_string row.policy;
           outcome_str row.outcome;
           Table.i row.commits;
           Table.i row.aborts;
           Table.f1 row.overhead;
           Table.i row.sync_vars;
         ])
       r.rows)
