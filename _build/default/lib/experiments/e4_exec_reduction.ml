(** E4 — execution reduction for long-running multithreaded programs
    (paper §2.2, the MySQL 3.23.56 case study: original 14.8s, with
    logging 16.8s, with tracing 3736s, reduced replay 0.67s; the trace
    shrinks from 976M to 3175 dependences).

    Our server workload is scaled down; the reproduction target is the
    *shape*: logging ≈ original ≪ reduced replay ≪ full tracing, and
    a dependence count collapsing by orders of magnitude. *)

open Dift_vm
open Dift_workloads
open Dift_replay

type result = {
  requests : int;
  report : Rerun.report;
}

let run ?(requests = 300) ?(seed = 11) () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests ~seed ~faulty:true () in
  let config = { Machine.default_config with seed } in
  (* roughly ten checkpoints over the run (a request is ~150 steps) *)
  let checkpoint_every = max 2_000 (requests * 15) in
  let report =
    Rerun.run ~config ~checkpoint_every p ~input:batch.Server_sim.input
  in
  { requests; report }

let table r =
  let rep = r.report in
  let ratio c = float_of_int c /. float_of_int (max 1 rep.Rerun.original_cycles)
  in
  Table.make ~title:"E4: execution reduction on the failing server"
    ~paper_claim:
      "MySQL: 14.8s orig / 16.8s logged / 3736s traced / 0.67s reduced; \
       deps 976M -> 3175"
    ~header:[ "phase"; "cycles"; "vs original" ]
    ~notes:
      [
        Fmt.str "requests: %d relevant of %d" rep.Rerun.relevant_requests
          rep.Rerun.total_requests;
        Fmt.str "dependences: %d (full tracing) -> %d (reduced replay)"
          rep.Rerun.full_deps rep.Rerun.reduced_deps;
        Fmt.str "steps replayed: %d of %d" rep.Rerun.replayed_steps
          rep.Rerun.total_steps;
        Fmt.str "checkpoints: %d; log size: %d words"
          rep.Rerun.checkpoints_taken rep.Rerun.logged_words;
        Fmt.str "fault reproduced in replay: %b" rep.Rerun.fault_reproduced;
        Fmt.str "backward slice from fault: %d sites"
          rep.Rerun.fault_slice_sites;
      ]
    [
      [ "original"; Table.i rep.Rerun.original_cycles; "1.00x" ];
      [
        "checkpoint+log";
        Table.i rep.Rerun.logging_cycles;
        Fmt.str "%.2fx" (ratio rep.Rerun.logging_cycles);
      ];
      [
        "full tracing";
        Table.i rep.Rerun.tracing_cycles;
        Fmt.str "%.1fx" (ratio rep.Rerun.tracing_cycles);
      ];
      [
        "reduced replay";
        Table.i rep.Rerun.replay_cycles;
        Fmt.str "%.3fx" (ratio rep.Rerun.replay_cycles);
      ];
    ]

(* -- worker-count sweep -------------------------------------------------------- *)

type worker_row = {
  w_workers : int;
  w_logging_ratio : float;
  w_relevant : int;
  w_total : int;
  w_dep_reduction : float;  (** full deps / reduced deps *)
  w_reproduced : bool;
}

(* Execution reduction across degrees of server parallelism — the
   "long running, multithreaded programs" the technique exists for. *)
let worker_sweep ?(requests = 120) ?(seed = 11) () =
  List.map
    (fun workers ->
      let p = Server_sim.program ~workers () in
      let batch = Server_sim.generate ~requests ~seed ~faulty:true () in
      let config = { Machine.default_config with seed } in
      let rep =
        Rerun.run ~config
          ~checkpoint_every:(max 2_000 (requests * 15))
          p ~input:batch.Server_sim.input
      in
      {
        w_workers = workers;
        w_logging_ratio =
          float_of_int rep.Rerun.logging_cycles
          /. float_of_int (max 1 rep.Rerun.original_cycles);
        w_relevant = rep.Rerun.relevant_requests;
        w_total = rep.Rerun.total_requests;
        w_dep_reduction =
          float_of_int rep.Rerun.full_deps
          /. float_of_int (max 1 rep.Rerun.reduced_deps);
        w_reproduced = rep.Rerun.fault_reproduced;
      })
    [ 1; 2; 4 ]

let worker_table rows =
  Table.make ~title:"E4b: execution reduction vs server parallelism"
    ~paper_claim:
      "the technique targets long-running multithreaded programs; replay        must stay faithful across thread counts"
    ~header:
      [ "workers"; "logging"; "relevant/total"; "dep reduction";
        "fault reproduced" ]
    (List.map
       (fun r ->
         [
           Table.i r.w_workers;
           Fmt.str "%.2fx" r.w_logging_ratio;
           Fmt.str "%d/%d" r.w_relevant r.w_total;
           Fmt.str "%.0fx" r.w_dep_reduction;
           (if r.w_reproduced then "yes" else "NO");
         ])
       rows)
