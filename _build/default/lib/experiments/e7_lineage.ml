(** E7 — data lineage tracing with roBDDs (paper §3.4: "the typical
    slow down factor is less than 40 when the valgrind infrastructure
    overhead is discounted.  The memory overhead is 300% on average.
    ... lineage sets could be as large as thousands of elements"). *)

open Dift_workloads
open Dift_lineage

type row = {
  pipeline : string;
  representation : Tracer.representation;
  slowdown : float;
  discounted_slowdown : float;
      (** with the DBI dispatch share discounted, as the paper does
          for the valgrind infrastructure *)
  shadow_words : int;  (** peak lineage memory *)
  app_words : int;  (** peak application memory *)
  max_lineage : int;
  mismatches : int;  (** vs analytic ground truth *)
}

type result = { rows : row list }

(* The dispatch share of the traced run: dispatch adds a constant
   per-instruction cost on a base of 1, exactly like the DBI
   infrastructure the paper discounts. *)
let discount slowdown =
  max 1. (slowdown -. float_of_int Dift_vm.Cost.dbi_dispatch)

let measure (pl : Scientific.pipeline) representation ~size ~seed =
  let r =
    match representation with
    | Tracer.Naive_sets -> Tracer.run_naive pl ~size ~seed
    | Tracer.Robdd -> Tracer.run_robdd pl ~size ~seed
  in
  let slowdown = Tracer.slowdown r in
  {
    pipeline = pl.Scientific.name;
    representation;
    slowdown;
    discounted_slowdown = discount slowdown;
    shadow_words = r.Tracer.shadow_words_peak;
    app_words = r.Tracer.app_words_peak;
    max_lineage = r.Tracer.max_lineage;
    mismatches = Tracer.validate pl r ~size ~seed;
  }

let run ?(size = 400) ?(seed = 5) () =
  let rows =
    List.concat_map
      (fun pl ->
        [
          measure pl Tracer.Naive_sets ~size ~seed;
          measure pl Tracer.Robdd ~size ~seed;
        ])
      Scientific.all
  in
  { rows }

let repr_str = function
  | Tracer.Naive_sets -> "naive-sets"
  | Tracer.Robdd -> "roBDD"

let table r =
  let rows_of rep = List.filter (fun x -> x.representation = rep) r.rows in
  let bdd_rows = rows_of Tracer.Robdd in
  let naive_rows = rows_of Tracer.Naive_sets in
  let sum f rows = List.fold_left (fun a x -> a + f x) 0 rows in
  let aggregate rows =
    float_of_int (sum (fun x -> x.shadow_words) rows)
    /. float_of_int (max 1 (sum (fun x -> x.app_words) rows))
  in
  let shadow_of name rows =
    List.fold_left
      (fun acc x ->
        if x.pipeline = name then float_of_int x.shadow_words else acc)
      1. rows
  in
  Table.make ~title:"E7: lineage tracing, naive sets vs roBDD"
    ~paper_claim:
      "slowdown < 40x (infrastructure discounted), memory overhead ~300%, \
       lineage sets up to thousands of elements"
    ~header:
      [ "pipeline"; "repr"; "slowdown"; "discounted"; "shadow words";
        "app words"; "max set"; "wrong" ]
    ~notes:
      [
        Fmt.str "geomean roBDD discounted slowdown: %.1fx"
          (Table.geomean
             (List.map (fun x -> x.discounted_slowdown) bdd_rows));
        Fmt.str
          "aggregate memory overhead (shadow/app): naive %.0f%%, roBDD %.0f%%"
          (100. *. aggregate naive_rows)
          (100. *. aggregate bdd_rows);
        Fmt.str
          "roBDD/naive shadow size on clustered lineage (prefix-sum): %.2f"
          (shadow_of "prefix-sum" bdd_rows
          /. shadow_of "prefix-sum" naive_rows);
      ]
    (List.map
       (fun row ->
         [
           row.pipeline;
           repr_str row.representation;
           Table.f1 row.slowdown;
           Table.f1 row.discounted_slowdown;
           Table.i row.shadow_words;
           Table.i row.app_words;
           Table.i row.max_lineage;
           Table.i row.mismatches;
         ])
       r.rows)
