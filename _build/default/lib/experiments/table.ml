(** Plain-text table rendering for the experiment reports. *)

type t = {
  title : string;
  paper_claim : string;  (** the quantitative claim being reproduced *)
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~paper_claim ~header ?(notes = []) rows =
  { title; paper_claim; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun i ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row i with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all)

let pad n s = s ^ String.make (max 0 (n - String.length s)) ' '

let pp ppf t =
  let ws = widths t in
  let line row =
    String.concat "  " (List.mapi (fun i c -> pad (List.nth ws i) c) row)
  in
  Fmt.pf ppf "@[<v>== %s@,paper: %s@,@," t.title t.paper_claim;
  Fmt.pf ppf "%s@," (line t.header);
  Fmt.pf ppf "%s@,"
    (String.concat "  " (List.map (fun w -> String.make w '-') ws));
  List.iter (fun r -> Fmt.pf ppf "%s@," (line r)) t.rows;
  List.iter (fun n -> Fmt.pf ppf "note: %s@," n) t.notes;
  Fmt.pf ppf "@]"

let f1 x = Fmt.str "%.1f" x
let f2 x = Fmt.str "%.2f" x
let pct x = Fmt.str "%.0f%%" (100. *. x)
let i = string_of_int

(** Geometric mean of a non-empty float list. *)
let geomean xs =
  match xs with
  | [] -> 0.
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log (max 1e-9 x)) 0. xs
        /. float_of_int (List.length xs))
