(** E9 — environment-fault avoidance (paper §3.2: atomicity
    violations, heap buffer overflows and malformed user requests are
    avoided by modifying the execution environment; the steady-state
    overhead is only that of checkpointing/logging). *)

open Dift_vm
open Dift_workloads
open Dift_avoidance

type row = {
  scenario : string;
  fault : string;
  attempts : int;
  patch : string option;
  rerun_ok : bool;
}

type result = { rows : row list }

let fault_str = function
  | Some f -> Fmt.str "%a" Event.pp_fault_kind f.Event.kind
  | None -> "-"

let row_of scenario (r : Framework.report) =
  {
    scenario;
    fault = fault_str r.Framework.original_fault;
    attempts = List.length r.Framework.attempts;
    patch = Option.map Env_patch.to_string r.Framework.fix;
    rerun_ok = r.Framework.rerun_ok;
  }

let atomicity () =
  let p = Splash_like.bank_racy_checked ~threads:2 () in
  let input = Splash_like.bank_input ~size:80 ~seed:0 in
  let rec hunt seed =
    if seed > 60 then None
    else begin
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 4 }
      in
      let m = Machine.create ~config p ~input in
      match Machine.run m with
      | Event.Faulted _ -> Some config
      | _ -> hunt (seed + 1)
    end
  in
  match hunt 1 with
  | None -> None
  | Some config -> Some (row_of "atomicity-violation"
                           (Framework.avoid ~config p ~input))

let heap_overflow () =
  let c = Vulnerable.heap_overflow in
  let config = { Machine.default_config with check_bounds = true } in
  Some
    (row_of "heap-buffer-overflow"
       (Framework.avoid ~config c.Vulnerable.program
          ~input:c.Vulnerable.attack_input))

let deadlock () =
  let p = Splash_like.lock_order_deadlock () in
  let rec hunt seed =
    if seed > 60 then None
    else begin
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 3 }
      in
      let m = Machine.create ~config p ~input:[||] in
      match Machine.run m with
      | Event.Deadlocked -> Some config
      | _ -> hunt (seed + 1)
    end
  in
  match hunt 1 with
  | None -> None
  | Some config ->
      let r = Framework.avoid ~config p ~input:[||] in
      Some
        {
          scenario = "lock-order-deadlock";
          fault = "deadlock";
          attempts = List.length r.Framework.attempts;
          patch = Option.map Env_patch.to_string r.Framework.fix;
          rerun_ok = r.Framework.rerun_ok;
        }

let malformed_request ?(requests = 60) () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests ~seed:11 ~faulty:true () in
  Some
    (row_of "malformed-request"
       (Framework.avoid p ~input:batch.Server_sim.input
          ~request_input_index:(fun r -> 1 + (3 * r))))

let run ?(requests = 60) () =
  let rows =
    List.filter_map
      (fun f -> f ())
      [
        atomicity;
        heap_overflow;
        (fun () -> malformed_request ~requests ());
        deadlock;
      ]
  in
  { rows }

let table r =
  Table.make ~title:"E9: environment-fault avoidance"
    ~paper_claim:
      "atomicity violations, heap overflows and malformed requests avoided \
       via environment patches; overhead stays at logging level"
    ~header:[ "scenario"; "fault"; "attempts"; "patch"; "future runs ok" ]
    (List.map
       (fun row ->
         [
           row.scenario;
           row.fault;
           Table.i row.attempts;
           (match row.patch with Some p -> p | None -> "NONE");
           (if row.rerun_ok then "yes" else "NO");
         ])
       r.rows)
