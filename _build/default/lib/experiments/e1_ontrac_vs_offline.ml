(** E1 — ONTRAC online tracing vs the two-phase offline baseline
    (paper §2.1: "computing the dependence trace online causes the
    program to slowdown by a factor of 19 on an average, as opposed to
    540 times slowdown caused by extensive post-processing"). *)

open Dift_vm
open Dift_core
open Dift_workloads

type row = {
  kernel : string;
  native_cycles : int;
  ontrac_slowdown : float;
  offline_run_slowdown : float;  (** phase 1 only *)
  offline_total_slowdown : float;  (** phases 1 + 2 *)
  compact_graph_bpi : float;
      (** bytes/instr of the postprocessed compacted graph (the
          product that makes slicing "hundreds of millions of
          instructions in seconds" feasible, ref [18]) *)
}

type result = { rows : row list; mean_ontrac : float; mean_offline : float }

let measure_kernel (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let m0 = Machine.create w.Workload.program ~input in
  ignore (Machine.run m0);
  let native = Machine.cycles m0 in
  (* online *)
  let m1 = Machine.create w.Workload.program ~input in
  let tracer = Ontrac.create w.Workload.program in
  Ontrac.attach tracer m1;
  ignore (Machine.run m1);
  let online = Machine.cycles m1 in
  (* offline two-phase *)
  let m2 = Machine.create w.Workload.program ~input in
  let off = Offline.create w.Workload.program in
  Offline.attach off m2;
  ignore (Machine.run m2);
  let compacted = Offline.postprocess off in
  let phase1 = Machine.cycles m2 in
  let total = phase1 + (Offline.stats off).Offline.postprocess_cycles in
  {
    kernel = w.Workload.name;
    native_cycles = native;
    ontrac_slowdown = float_of_int online /. float_of_int native;
    offline_run_slowdown = float_of_int phase1 /. float_of_int native;
    offline_total_slowdown = float_of_int total /. float_of_int native;
    compact_graph_bpi =
      float_of_int (Ddg_io.size compacted)
      /. float_of_int (max 1 (Offline.stats off).Offline.instructions);
  }

let run ?(size = 40) ?(seed = 1) () =
  let rows =
    List.map (fun w -> measure_kernel w ~size ~seed) Spec_like.all
  in
  {
    rows;
    mean_ontrac =
      Table.geomean (List.map (fun r -> r.ontrac_slowdown) rows);
    mean_offline =
      Table.geomean (List.map (fun r -> r.offline_total_slowdown) rows);
  }

let table r =
  Table.make ~title:"E1: online (ONTRAC) vs offline two-phase tracing"
    ~paper_claim:"online ~19x slowdown vs ~540x for trace + postprocess"
    ~header:
      [ "kernel"; "native cycles"; "ontrac x"; "offline run x";
        "offline total x"; "compact graph B/instr" ]
    ~notes:
      [
        Fmt.str "geomean: ontrac %.1fx, offline total %.1fx (ratio %.0fx)"
          r.mean_ontrac r.mean_offline
          (r.mean_offline /. r.mean_ontrac);
      ]
    (List.map
       (fun row ->
         [
           row.kernel;
           Table.i row.native_cycles;
           Table.f1 row.ontrac_slowdown;
           Table.f1 row.offline_run_slowdown;
           Table.f1 row.offline_total_slowdown;
           Table.f2 row.compact_graph_bpi;
         ])
       r.rows)

(* -- tracing parallel applications --------------------------------------------- *)

type parallel_row = {
  p_name : string;
  p_threads : int;
  p_slowdown : float;
  p_deps : int;
  p_cross_thread_deps : int;
      (** dependences whose definition and use are on different
          threads — what makes multithreaded tracing hard and what
          replay-based approaches must preserve *)
}

let parallel_workloads ~size =
  [
    ("stencil", 3, Splash_like.stencil ~threads:2 (),
     Splash_like.stencil_input ~size ~seed:1);
    ("bank", 3, Splash_like.bank ~threads:2 (),
     Splash_like.bank_input ~size ~seed:0);
    ("server", 3, Server_sim.program (),
     (Server_sim.generate ~requests:(size * 2) ~seed:7 ()).Server_sim.input);
  ]

let measure_parallel (name, threads, program, input) =
  let m0 = Machine.create program ~input in
  ignore (Machine.run m0);
  let base = Machine.cycles m0 in
  let m = Machine.create program ~input in
  let tracer = Ontrac.create program in
  Ontrac.attach tracer m;
  ignore (Machine.run m);
  let g, _ = Ontrac.final_graph tracer in
  let cross = ref 0 and total = ref 0 in
  Ddg.iter_nodes
    (fun n ->
      List.iter
        (fun (_, def) ->
          incr total;
          match Ddg.node g def with
          | Some d when d.Ddg.tid <> n.Ddg.tid -> incr cross
          | Some _ | None -> ())
        n.Ddg.preds)
    g;
  {
    p_name = name;
    p_threads = threads;
    p_slowdown = float_of_int (Machine.cycles m) /. float_of_int base;
    p_deps = !total;
    p_cross_thread_deps = !cross;
  }

let parallel ?(size = 20) () =
  List.map measure_parallel (parallel_workloads ~size)

let parallel_table rows =
  Table.make ~title:"E1b: ONTRAC on multithreaded programs"
    ~paper_claim:
      "online tracing extends to parallel applications; cross-thread        dependences are captured (paper sections 2.2 and 4)"
    ~header:
      [ "workload"; "threads"; "ontrac x"; "deps"; "cross-thread deps" ]
    (List.map
       (fun r ->
         [
           r.p_name;
           Table.i r.p_threads;
           Table.f1 r.p_slowdown;
           Table.i r.p_deps;
           Table.i r.p_cross_thread_deps;
         ])
       rows)
