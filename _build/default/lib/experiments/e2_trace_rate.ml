(** E2 — trace storage rate and buffer window (paper §2.1: "store
    tracing information at the average rate of 0.8 bytes per executed
    instruction as opposed to 16 bytes per instruction without
    [optimizations].  This enables us to store the dependence trace
    history for a window of 20 million executed instructions in a 16MB
    buffer").  Includes the per-optimization ablation. *)

open Dift_vm
open Dift_core
open Dift_workloads

type row = {
  kernel : string;
  instructions : int;
  raw_bpi : float;  (** the offline baseline's fixed 16 B/instr *)
  unopt_bpi : float;  (** online, no optimizations *)
  o1_bpi : float;
  o12_bpi : float;
  o123_bpi : float;
  window_in_16mb : int;  (** instructions a 16MB buffer can hold *)
}

type result = {
  rows : row list;
  mean_opt_bpi : float;
  mean_window : float;
}

let bpi_with opts (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let m = Machine.create w.Workload.program ~input in
  let tracer = Ontrac.create ~opts w.Workload.program in
  Ontrac.attach tracer m;
  ignore (Machine.run m);
  (Ontrac.bytes_per_instr tracer, (Ontrac.stats tracer).Ontrac.instructions)

let measure_kernel (w : Workload.t) ~size ~seed =
  let base = Ontrac.no_opts in
  let unopt_bpi, instructions = bpi_with base w ~size ~seed in
  let o1_bpi, _ = bpi_with { base with o1_intra_block = true } w ~size ~seed in
  let o12_bpi, _ =
    bpi_with { base with o1_intra_block = true; o2_traces = true } w ~size
      ~seed
  in
  let o123_bpi, _ = bpi_with Ontrac.default_opts w ~size ~seed in
  {
    kernel = w.Workload.name;
    instructions;
    raw_bpi = float_of_int Offline.bytes_per_instr;
    unopt_bpi;
    o1_bpi;
    o12_bpi;
    o123_bpi;
    window_in_16mb =
      int_of_float (16. *. 1024. *. 1024. /. max 0.001 o123_bpi);
  }

let run ?(size = 40) ?(seed = 2) () =
  let rows =
    List.map (fun w -> measure_kernel w ~size ~seed) Spec_like.all
  in
  {
    rows;
    mean_opt_bpi = Table.geomean (List.map (fun r -> r.o123_bpi) rows);
    mean_window =
      Table.geomean
        (List.map (fun r -> float_of_int r.window_in_16mb) rows);
  }

let table r =
  Table.make ~title:"E2: stored trace bytes per instruction (ablation)"
    ~paper_claim:
      "0.8 B/instr optimized vs 16 B/instr raw; 20M-instr window in 16MB"
    ~header:
      [ "kernel"; "instrs"; "raw"; "online"; "+O1"; "+O1O2"; "+O1O2O3";
        "16MB window" ]
    ~notes:
      [
        Fmt.str "geomean optimized rate: %.2f B/instr" r.mean_opt_bpi;
        Fmt.str "geomean 16MB window: %.1fM instructions"
          (r.mean_window /. 1e6);
      ]
    (List.map
       (fun row ->
         [
           row.kernel;
           Table.i row.instructions;
           Table.f1 row.raw_bpi;
           Table.f2 row.unopt_bpi;
           Table.f2 row.o1_bpi;
           Table.f2 row.o12_bpi;
           Table.f2 row.o123_bpi;
           Fmt.str "%.1fM" (float_of_int row.window_in_16mb /. 1e6);
         ])
       r.rows)

(* -- selective tracing (O4a / O4b) ---------------------------------------- *)

type selective_row = {
  s_kernel : string;
  full_recorded : int;
  input_gated_recorded : int;
}

let selective ?(size = 40) ?(seed = 2) () =
  List.filter_map
    (fun (w : Workload.t) ->
      let input = w.Workload.input ~size ~seed in
      let run opts =
        let m = Machine.create w.Workload.program ~input in
        let tracer = Ontrac.create ~opts w.Workload.program in
        Ontrac.attach tracer m;
        ignore (Machine.run m);
        (Ontrac.stats tracer).Ontrac.deps_recorded
      in
      let full = run Ontrac.default_opts in
      let gated =
        run { Ontrac.default_opts with input_slice_only = true }
      in
      Some { s_kernel = w.Workload.name; full_recorded = full;
             input_gated_recorded = gated })
    [ Spec_like.sieve; Spec_like.crc; Spec_like.matmul; Spec_like.qsort ]

let selective_table rows =
  Table.make ~title:"E2b: input-forward-slice gating (O4b)"
    ~paper_claim:
      "tracing only dependences affected by the input shrinks the trace"
    ~header:[ "kernel"; "deps recorded"; "input-gated"; "kept" ]
    (List.map
       (fun r ->
         [
           r.s_kernel;
           Table.i r.full_recorded;
           Table.i r.input_gated_recorded;
           Table.pct
             (float_of_int r.input_gated_recorded
             /. float_of_int (max 1 r.full_recorded));
         ])
       rows)

(* -- buffer-capacity sweep: execution-history window vs buffer size -------- *)

type sweep_row = {
  capacity : int;  (** bytes *)
  window_instr : int;  (** retained execution window *)
  evicted : int;
}

(* Run one long kernel under each capacity and report the retained
   window — the series behind "a 16MB buffer holds a 20M-instruction
   window". *)
let capacity_sweep ?(size = 40) ?(seed = 2) () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size ~seed in
  List.map
    (fun capacity ->
      let m = Machine.create w.Workload.program ~input in
      let tracer =
        Ontrac.create ~opts:{ Ontrac.default_opts with capacity }
          w.Workload.program
      in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      {
        capacity;
        window_instr = Ontrac.window_length tracer;
        evicted = Trace_buffer.evicted_records (Ontrac.buffer tracer);
      })
    [ 4 * 1024; 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ]

let sweep_table rows =
  Table.make ~title:"E2c: execution-history window vs buffer capacity"
    ~paper_claim:
      "the buffer bounds the window of history available to slicing;        window grows linearly with capacity"
    ~header:[ "capacity"; "window (instrs)"; "evicted records" ]
    (List.map
       (fun r ->
         [
           (if r.capacity >= 1024 * 1024 then
              Fmt.str "%dMB" (r.capacity / (1024 * 1024))
            else Fmt.str "%dKB" (r.capacity / 1024));
           Table.i r.window_instr;
           Table.i r.evicted;
         ])
       rows)

(* -- ablation: O2 hot-path threshold ---------------------------------------- *)

type threshold_row = {
  threshold : int;
  t_bpi : float;
  t_elided_o2 : int;
}

(* Sweep the execution count after which a block transition counts as
   "hot": too high and the trace-level elimination never fires; too
   low and it fires before the path is established (no correctness
   impact — elision is verified against the dynamic writer — but the
   paper's design point is that traces should be formed from genuinely
   hot paths). *)
let o2_threshold_sweep ?(size = 30) ?(seed = 2) () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size ~seed in
  List.map
    (fun threshold ->
      let m = Machine.create w.Workload.program ~input in
      let tracer =
        Ontrac.create
          ~opts:{ Ontrac.default_opts with o2_hot_threshold = threshold }
          w.Workload.program
      in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      {
        threshold;
        t_bpi = Ontrac.bytes_per_instr tracer;
        t_elided_o2 = (Ontrac.stats tracer).Ontrac.elided_o2;
      })
    [ 2; 8; 32; 128; 1024; max_int ]

let o2_threshold_table rows =
  Table.make ~title:"E2d (ablation): O2 hot-path threshold"
    ~paper_claim:
      "trace-level elimination trades learning delay against stored bytes"
    ~header:[ "threshold"; "B/instr"; "O2 elisions" ]
    (List.map
       (fun r ->
         [
           (if r.threshold = max_int then "off" else Table.i r.threshold);
           Table.f2 r.t_bpi;
           Table.i r.t_elided_o2;
         ])
       rows)
