lib/experiments/e8_fault_location.ml: Buggy Chop Dift_faultloc Dift_workloads Fmt List Omission Pred_switch Slice_loc Table Value_replace
