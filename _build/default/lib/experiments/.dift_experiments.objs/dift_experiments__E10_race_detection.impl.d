lib/experiments/e10_race_detection.ml: Dift_faultloc Dift_vm Dift_workloads List Machine Race_detect Splash_like Table
