lib/experiments/e1_ontrac_vs_offline.ml: Ddg Ddg_io Dift_core Dift_vm Dift_workloads Fmt List Machine Offline Ontrac Server_sim Spec_like Splash_like Table Workload
