lib/experiments/e11_parallel.ml: Dift_parallel Dift_workloads Fmt List Parallel Spec_like Table Workload
