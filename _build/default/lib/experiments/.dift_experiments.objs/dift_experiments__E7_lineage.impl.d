lib/experiments/e7_lineage.ml: Dift_lineage Dift_vm Dift_workloads Fmt List Scientific Table Tracer
