lib/experiments/e2_trace_rate.ml: Dift_core Dift_vm Dift_workloads Fmt List Machine Offline Ontrac Spec_like Table Trace_buffer Workload
