lib/experiments/all.mli: Format Table
