lib/experiments/e6_attack_detection.ml: Detector Dift_attack Dift_workloads Fmt List Table Vulnerable
