lib/experiments/e4_exec_reduction.ml: Dift_replay Dift_vm Dift_workloads Fmt List Machine Rerun Server_sim Table
