lib/experiments/e5_tm_monitoring.ml: Dift_isa Dift_tm Dift_workloads List Program Splash_like Stm_exec Table
