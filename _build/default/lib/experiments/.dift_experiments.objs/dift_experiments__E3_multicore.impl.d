lib/experiments/e3_multicore.ml: Dift_core Dift_multicore Dift_vm Dift_workloads Engine Fmt Helper List Machine Spec_like Table Taint Workload
