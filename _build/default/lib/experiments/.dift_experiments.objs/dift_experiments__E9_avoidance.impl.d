lib/experiments/e9_avoidance.ml: Dift_avoidance Dift_vm Dift_workloads Env_patch Event Fmt Framework List Machine Option Server_sim Splash_like Table Vulnerable
