(** Registry of every experiment, with a uniform run-and-print entry
    point.  [scale] trades fidelity for time: [`Quick] for tests and
    micro-benchmarks, [`Full] for the EXPERIMENTS.md numbers. *)

type scale = Quick | Full

type experiment = {
  id : string;
  description : string;
  run : scale -> Table.t list;
}

let experiments =
  [
    {
      id = "e1";
      description = "ONTRAC online tracing vs offline two-phase baseline";
      run =
        (fun scale ->
          let size = match scale with Quick -> 16 | Full -> 48 in
          [
            E1_ontrac_vs_offline.table (E1_ontrac_vs_offline.run ~size ());
            E1_ontrac_vs_offline.parallel_table
              (E1_ontrac_vs_offline.parallel ~size ());
          ]);
    };
    {
      id = "e2";
      description = "trace bytes/instruction, optimization ablation, window";
      run =
        (fun scale ->
          let size = match scale with Quick -> 16 | Full -> 48 in
          [
            E2_trace_rate.table (E2_trace_rate.run ~size ());
            E2_trace_rate.selective_table (E2_trace_rate.selective ~size ());
            E2_trace_rate.sweep_table
              (E2_trace_rate.capacity_sweep ~size ());
            E2_trace_rate.o2_threshold_table
              (E2_trace_rate.o2_threshold_sweep
                 ~size:(max 8 (size / 2)) ());
          ]);
    };
    {
      id = "e3";
      description = "helper-thread DIFT on multicores (sw vs hw channel)";
      run =
        (fun scale ->
          let size = match scale with Quick -> 12 | Full -> 40 in
          [
            E3_multicore.table (E3_multicore.run ~size ());
            E3_multicore.queue_table (E3_multicore.queue_sweep ~size ());
          ]);
    };
    {
      id = "e4";
      description = "execution reduction on the failing server (MySQL-like)";
      run =
        (fun scale ->
          let requests = match scale with Quick -> 80 | Full -> 600 in
          [
            E4_exec_reduction.table (E4_exec_reduction.run ~requests ());
            E4_exec_reduction.worker_table
              (E4_exec_reduction.worker_sweep
                 ~requests:(max 40 (requests / 4)) ());
          ]);
    };
    {
      id = "e5";
      description = "sync-aware conflict resolution for TM monitoring";
      run =
        (fun scale ->
          let size = match scale with Quick -> 6 | Full -> 12 in
          [ E5_tm_monitoring.table (E5_tm_monitoring.run ~size ()) ]);
    };
    {
      id = "e6";
      description = "PC-taint attack detection and root-cause location";
      run = (fun _ -> [ E6_attack_detection.table (E6_attack_detection.run ()) ]);
    };
    {
      id = "e7";
      description = "lineage tracing: naive sets vs roBDD";
      run =
        (fun scale ->
          let size = match scale with Quick -> 150 | Full -> 700 in
          [ E7_lineage.table (E7_lineage.run ~size ()) ]);
    };
    {
      id = "e8";
      description = "fault-location technique suite on the bug corpus";
      run = (fun _ -> [ E8_fault_location.table (E8_fault_location.run ()) ]);
    };
    {
      id = "e9";
      description = "environment-fault avoidance";
      run =
        (fun scale ->
          let requests = match scale with Quick -> 40 | Full -> 120 in
          [ E9_avoidance.table (E9_avoidance.run ~requests ()) ]);
    };
    {
      id = "e10";
      description = "sync-aware data race detection";
      run =
        (fun scale ->
          let size = match scale with Quick -> 24 | Full -> 60 in
          [ E10_race_detection.table (E10_race_detection.run ~size ()) ]);
    };
    {
      id = "e11";
      description =
        "real two-domain DIFT runtime (OCaml 5 Domains, wall clock)";
      run =
        (fun scale ->
          let size, reps =
            match scale with Quick -> (10, 1) | Full -> (60, 3)
          in
          [ E11_parallel.table (E11_parallel.run ~size ~reps ()) ]);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) experiments

let run_and_print ?(scale = Full) ppf id =
  match find id with
  | None -> invalid_arg (Fmt.str "unknown experiment %s" id)
  | Some e ->
      List.iter (fun t -> Fmt.pf ppf "%a@." Table.pp t) (e.run scale)

let run_all ?(scale = Full) ppf =
  List.iter (fun e -> run_and_print ~scale ppf e.id) experiments
