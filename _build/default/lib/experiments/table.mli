(** Plain-text table rendering for the experiment reports. *)

type t = {
  title : string;
  paper_claim : string;  (** the quantitative claim being reproduced *)
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string ->
  paper_claim:string ->
  header:string list ->
  ?notes:string list ->
  string list list ->
  t

val pp : t Fmt.t

(** Cell formatting helpers. *)

val f1 : float -> string
val f2 : float -> string
val pct : float -> string
val i : int -> string

(** Geometric mean ([0.] on an empty list). *)
val geomean : float list -> float
