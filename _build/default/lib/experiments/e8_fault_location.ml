(** E8 — fault location across the technique suite (paper §3.1):
    dynamic slices capture most faults; execution-omission errors
    escape them and need predicate switching / implicit dependences;
    value replacement ranks faulty statements uniformly. *)

open Dift_workloads
open Dift_faultloc

type row = {
  case : string;
  omission : bool;
  in_plain_slice : bool;
  slice_sites : int;
  pred_switch_found : bool;
  pred_switch_attempts : int;
  implicit_captured : bool;
  value_replace_rank : int option;
  chop_sites : int;
  chop_keeps_fault : bool;
}

type result = { rows : row list }

let near (f1, p1) (f2, p2) = f1 = f2 && abs (p1 - p2) <= 3

let measure (c : Buggy.case) =
  let slice =
    Slice_loc.run c.Buggy.program ~input:c.Buggy.failing_input
      ~faulty_site:c.Buggy.faulty_site
  in
  let ps = Pred_switch.search c.Buggy.program ~input:c.Buggy.failing_input in
  let om =
    Omission.run c.Buggy.program ~input:c.Buggy.failing_input
      ~faulty_site:c.Buggy.faulty_site
  in
  let vr =
    Value_replace.run c.Buggy.program ~input:c.Buggy.failing_input
      ~faulty_site:c.Buggy.faulty_site
  in
  let ch =
    Chop.run c.Buggy.program ~input:c.Buggy.failing_input
      ~faulty_site:c.Buggy.faulty_site
  in
  let vr_rank =
    (* rank of the first interesting site at or adjacent to the fault *)
    let rec find i = function
      | [] -> None
      | (r : Value_replace.ranked) :: rest ->
          if near r.Value_replace.site c.Buggy.faulty_site then Some i
          else find (i + 1) rest
    in
    find 1 vr.Value_replace.ranking
  in
  {
    case = c.Buggy.name;
    omission = c.Buggy.omission;
    in_plain_slice = slice.Slice_loc.faulty_site_in_slice;
    slice_sites = slice.Slice_loc.slice_sites;
    pred_switch_found =
      (match ps.Pred_switch.critical with
      | Some crit -> near crit.Pred_switch.site c.Buggy.faulty_site
      | None -> false);
    pred_switch_attempts = ps.Pred_switch.attempts_made;
    implicit_captured = om.Omission.augmented_slice_has_fault;
    value_replace_rank = vr_rank;
    chop_sites = ch.Chop.chop_sites;
    chop_keeps_fault = ch.Chop.faulty_site_in_chop;
  }

let run () = { rows = List.map measure Buggy.all }

let yn b = if b then "yes" else "no"

let table r =
  Table.make ~title:"E8: fault location technique suite on the bug corpus"
    ~paper_claim:
      "slices capture non-omission faults; predicate switching + implicit \
       dependences capture omission faults; value replacement ranks \
       faulty statements"
    ~header:
      [ "case"; "omission"; "in slice"; "slice sites"; "chop";
        "pred-switch"; "attempts"; "implicit"; "value-repl rank" ]
    (List.map
       (fun row ->
         [
           row.case;
           yn row.omission;
           yn row.in_plain_slice;
           Table.i row.slice_sites;
           Fmt.str "%d%s" row.chop_sites
             (if row.chop_keeps_fault || row.omission then "" else "!");
           yn row.pred_switch_found;
           Table.i row.pred_switch_attempts;
           yn row.implicit_captured;
           (match row.value_replace_rank with
           | Some k -> Table.i k
           | None -> "-");
         ])
       r.rows)
