(** Registry of every experiment, with a uniform run-and-print entry
    point. *)

type scale =
  | Quick  (** reduced sizes, for tests and micro-benchmarks *)
  | Full  (** the EXPERIMENTS.md numbers *)

type experiment = {
  id : string;  (** "e1" .. "e10" *)
  description : string;
  run : scale -> Table.t list;
}

val experiments : experiment list
val find : string -> experiment option

(** @raise Invalid_argument on unknown ids. *)
val run_and_print : ?scale:scale -> Format.formatter -> string -> unit

val run_all : ?scale:scale -> Format.formatter -> unit
