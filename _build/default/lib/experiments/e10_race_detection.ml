(** E10 — synchronisation-aware data race detection (paper §3.1: the
    detector "greatly reduces the number of data races reported to the
    user as many benign synchronization races and infeasible races ...
    are filtered out"). *)

open Dift_vm
open Dift_workloads
open Dift_faultloc

type row = {
  workload : string;
  has_true_race : bool;
  basic_reports : int;
  sync_aware_reports : int;
  sync_vars : int;
}

type result = { rows : row list }

let detect mode program input ~seed =
  let config =
    { Machine.default_config with seed; quantum_min = 2; quantum_max = 9 }
  in
  let m = Machine.create ~config program ~input in
  let det = Race_detect.create mode in
  Race_detect.attach det m;
  ignore (Machine.run m);
  det

let measure (workload, program, input, has_true_race) ~seed =
  let basic = detect Race_detect.Basic program input ~seed in
  let aware = detect Race_detect.Sync_aware program input ~seed in
  {
    workload;
    has_true_race;
    basic_reports = List.length (Race_detect.races basic);
    sync_aware_reports = List.length (Race_detect.races aware);
    sync_vars = Race_detect.sync_vars aware;
  }

let run ?(size = 40) ?(seed = 6) () =
  let cases =
    [
      ("bank-locked", Splash_like.bank ~threads:2 (),
       Splash_like.bank_input ~size ~seed:0, false);
      ("bank-racy", Splash_like.bank_racy ~threads:2 (),
       Splash_like.bank_input ~size ~seed:0, true);
      ("flag-pipeline", Splash_like.flag_pipeline (), [| size / 4 |], false);
      ("stencil-barrier", Splash_like.stencil ~threads:2 (),
       Splash_like.stencil_input ~size:(size / 2) ~seed:1, false);
      ("stencil-racy", Splash_like.stencil_racy ~threads:2 (),
       Splash_like.stencil_input ~size:(size / 2) ~seed:1, true);
    ]
  in
  { rows = List.map (measure ~seed) cases }

let table r =
  Table.make ~title:"E10: race detection with synchronisation recognition"
    ~paper_claim:
      "benign synchronization races are filtered; true races remain"
    ~header:
      [ "workload"; "true race?"; "basic reports"; "sync-aware";
        "sync vars" ]
    (List.map
       (fun row ->
         [
           row.workload;
           (if row.has_true_race then "yes" else "no");
           Table.i row.basic_reports;
           Table.i row.sync_aware_reports;
           Table.i row.sync_vars;
         ])
       r.rows)
