lib/lineage/domains.mli: Dift_bdd Dift_core Set Taint
