lib/lineage/tracer.mli: Dift_workloads Scientific
