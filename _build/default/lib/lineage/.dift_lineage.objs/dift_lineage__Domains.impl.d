lib/lineage/domains.ml: Dift_bdd Dift_core Fmt Int Set Taint
