lib/lineage/tracer.ml: Array Cost Dift_bdd Dift_core Dift_vm Dift_workloads Domains Engine Event List Machine Memory Scientific Tool
