(** Lineage taint domains with operation-cost counters.

    Lineage tracing is DIFT where the metadata is the set of input
    indices behind each value (paper §3.4).  Two representations are
    raced against each other: explicit sorted sets (the naive
    baseline, cost ∝ elements touched per operation) and roBDDs (cost
    ∝ unique BDD nodes visited).  Both expose the work they did so the
    cycle model can charge for it. *)

open Dift_core

module Int_set : Set.S with type elt = int

(** Explicit-set lineage with element-touch accounting (generative:
    each instantiation has its own counter). *)
module Naive () : sig
  include Taint.DOMAIN with type t = Int_set.t

  val elements_touched : unit -> int
end

(** roBDD lineage sharing one manager per instantiation. *)
module Robdd () : sig
  include Taint.DOMAIN with type t = Dift_bdd.Bdd.t

  val manager : Dift_bdd.Bdd.manager
  val nodes_visited : unit -> int
end
