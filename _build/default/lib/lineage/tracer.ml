(** The lineage tracer: runs a scientific pipeline under a lineage
    domain and reports, per output, the set of contributing inputs —
    plus the cost figures the paper's §3.4 evaluation quotes (slowdown
    versus native, and lineage memory overhead relative to the
    application's own memory). *)

open Dift_vm
open Dift_core
open Dift_workloads

type representation = Naive_sets | Robdd

type result = {
  representation : representation;
  outputs : (int * int list) list;
      (** (output value, sorted lineage input indices) *)
  base_cycles : int;  (** uninstrumented run *)
  traced_cycles : int;  (** instrumented run incl. set-operation work *)
  shadow_words_peak : int;  (** peak lineage memory, in words *)
  app_words_peak : int;  (** peak application memory, in words *)
  max_lineage : int;  (** largest lineage set observed at an output *)
}

let slowdown r =
  float_of_int r.traced_cycles /. float_of_int (max 1 r.base_cycles)

(** Lineage memory overhead as a fraction of application memory
    (1.0 = 100%). *)
let memory_overhead r =
  float_of_int r.shadow_words_peak /. float_of_int (max 1 r.app_words_peak)

let base_cycles_of (pl : Scientific.pipeline) ~size ~seed =
  let input = pl.Scientific.input ~size ~seed in
  let m = Machine.create pl.Scientific.program ~input in
  ignore (Machine.run m);
  Machine.cycles m

(* Sample application memory roughly (words in the VM memory plus a
   register file's worth per live thread). *)
let app_words m = Memory.footprint (Machine.memory m)

let run representation (pl : Scientific.pipeline) ~size ~seed =
  let input = pl.Scientific.input ~size ~seed in
  let base_cycles = base_cycles_of pl ~size ~seed in
  let m = Machine.create pl.Scientific.program ~input in
  let outputs = ref [] in
  let shadow_peak = ref 0 in
  let app_peak = ref 0 in
  let max_lineage = ref 0 in
  let finish_cost = ref 0 in
  (match representation with
  | Naive_sets ->
      let module D = Domains.Naive () in
      let module E = Engine.Make (D) in
      let eng = E.create pl.Scientific.program in
      E.on_sink eng (fun sink taint e ->
          if sink = Engine.Sink_output then begin
            let els = Domains.Int_set.elements taint in
            max_lineage := max !max_lineage (List.length els);
            outputs := (e.Event.value, els) :: !outputs
          end);
      E.attach eng m;
      (* periodic peak sampling *)
      let count = ref 0 in
      Machine.attach m
        (Tool.make
           ~on_exec:(fun _ ->
             incr count;
             if !count land 4095 = 0 then begin
               let _, words = E.shadow_footprint eng in
               if words > !shadow_peak then shadow_peak := words;
               let aw = app_words m in
               if aw > !app_peak then app_peak := aw
             end)
           "lineage-probe");
      ignore (Machine.run m);
      let _, words = E.shadow_footprint eng in
      if words > !shadow_peak then shadow_peak := words;
      finish_cost := D.elements_touched () * Cost.lineage_set_element
  | Robdd ->
      let module D = Domains.Robdd () in
      let module E = Engine.Make (D) in
      let eng = E.create pl.Scientific.program in
      E.on_sink eng (fun sink taint e ->
          if sink = Engine.Sink_output then begin
            let els = Dift_bdd.Bdd.elements taint in
            max_lineage := max !max_lineage (List.length els);
            outputs := (e.Event.value, els) :: !outputs
          end);
      E.attach eng m;
      let count = ref 0 in
      let sample () =
        (* live shadow footprint: unique nodes reachable from any
           currently stored lineage value *)
        let sets =
          E.Sh.fold (fun _ v acc -> v :: acc) (E.shadow eng) []
        in
        let words = 4 * Dift_bdd.Bdd.family_node_count sets in
        if words > !shadow_peak then shadow_peak := words;
        let aw = app_words m in
        if aw > !app_peak then app_peak := aw
      in
      Machine.attach m
        (Tool.make
           ~on_exec:(fun _ ->
             incr count;
             if !count land 4095 = 0 then sample ())
           "lineage-probe");
      ignore (Machine.run m);
      sample ();
      finish_cost := D.nodes_visited () * Cost.lineage_bdd_node);
  let aw = app_words m in
  if aw > !app_peak then app_peak := aw;
  {
    representation;
    outputs = List.rev !outputs;
    base_cycles;
    traced_cycles = Machine.cycles m + !finish_cost;
    shadow_words_peak = !shadow_peak;
    app_words_peak = max 1 !app_peak;
    max_lineage = !max_lineage;
  }

let run_naive = run Naive_sets
let run_robdd = run Robdd

(** Check traced lineage against the pipeline's analytic ground truth;
    returns the number of outputs whose lineage disagrees. *)
let validate (pl : Scientific.pipeline) (r : result) ~size ~seed =
  let input = pl.Scientific.input ~size ~seed in
  let n = input.(0) in
  let expected = pl.Scientific.expected_lineage ~n ~input in
  let got = List.map snd r.outputs in
  if List.length expected <> List.length got then max_int
  else
    List.fold_left2
      (fun acc e g -> if e = g then acc else acc + 1)
      0 expected got
