(** The lineage tracer: runs a scientific pipeline under a lineage
    domain and reports, per output, the set of contributing inputs —
    plus the cost figures the paper's §3.4 evaluation quotes. *)

open Dift_workloads

type representation = Naive_sets | Robdd

type result = {
  representation : representation;
  outputs : (int * int list) list;
      (** (output value, sorted lineage input indices) *)
  base_cycles : int;  (** uninstrumented run *)
  traced_cycles : int;
      (** instrumented run incl. set-operation work *)
  shadow_words_peak : int;  (** peak lineage memory, in words *)
  app_words_peak : int;  (** peak application memory, in words *)
  max_lineage : int;  (** largest lineage set observed at an output *)
}

val slowdown : result -> float

(** Lineage memory overhead as a fraction of application memory
    (1.0 = 100%). *)
val memory_overhead : result -> float

val run_naive : Scientific.pipeline -> size:int -> seed:int -> result
val run_robdd : Scientific.pipeline -> size:int -> seed:int -> result

(** Check traced lineage against the pipeline's analytic ground truth;
    returns the number of outputs whose lineage disagrees. *)
val validate : Scientific.pipeline -> result -> size:int -> seed:int -> int
