lib/replay/reduction.ml: List Request_log
