lib/replay/rerun.mli: Dift_isa Dift_vm Fmt Machine Program
