lib/replay/request_log.mli: Dift_vm Event Machine Set
