lib/replay/reduction.mli: Dift_vm Request_log
