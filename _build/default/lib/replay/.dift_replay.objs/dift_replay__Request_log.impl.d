lib/replay/request_log.ml: Cost Dift_isa Dift_vm Event Hashtbl Instr Int List Machine Set Tool
