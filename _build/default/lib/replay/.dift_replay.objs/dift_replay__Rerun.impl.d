lib/replay/rerun.ml: Cost Dift_core Dift_isa Dift_vm Event Fmt Hashtbl Instr List Machine Ontrac Reduction Request_log Slicing
