(** The complete execution-reduction pipeline (paper §2.2): log a
    failing run cheaply, analyse the log to find the failure-relevant
    requests, restore the last checkpoint before them, and replay just
    that suffix with fine-grained tracing gated to the relevant
    requests.  The report mirrors the paper's MySQL case study
    numbers: original / logging / full-tracing / reduced-replay
    costs, and full vs. reduced dependence counts. *)

open Dift_isa
open Dift_vm
open Dift_core

type report = {
  original_cycles : int;
  logging_cycles : int;
  tracing_cycles : int;  (** fine-grained tracing over the whole run *)
  replay_cycles : int;  (** reduced replay with gated tracing *)
  total_steps : int;
  replayed_steps : int;
  total_requests : int;
  relevant_requests : int;
  full_deps : int;  (** dependences recorded by whole-run tracing *)
  reduced_deps : int;  (** dependences recorded by the reduced replay *)
  checkpoints_taken : int;
  logged_words : int;
  fault_reproduced : bool;
  fault_slice_sites : int;
      (** statement count of the backward slice from the reproduced
          fault, in the reduced graph *)
}

(* A keep-predicate gating tracing to relevant requests, driven by the
   request marks. *)
let relevance_filter plan =
  let open_req : (int, int) Hashtbl.t = Hashtbl.create 8 in
  fun (e : Event.exec) ->
    (match e.Event.instr with
    | Instr.Sys (Instr.Mark (c, _)) when c = Request_log.mark_req_start ->
        Hashtbl.replace open_req e.Event.tid e.Event.value
    | Instr.Sys (Instr.Mark (c, _)) when c = Request_log.mark_req_end ->
        Hashtbl.remove open_req e.Event.tid
    | _ -> ());
    match Hashtbl.find_opt open_req e.Event.tid with
    | Some req_id -> Reduction.is_relevant plan req_id
    | None -> false

(* The fine-grained tracer of the paper's §2.2 pipeline is the
   *unoptimized* dependence tracer (execution reduction is what makes
   it affordable; ONTRAC's optimizations are the orthogonal §2.1
   work).  Both the whole-run contrast and the reduced replay use it,
   so the dependence counts compare like for like. *)
let ontrac_opts = { Ontrac.no_opts with capacity = 256 * 1024 * 1024 }

let run ?(config = Machine.default_config) ?(checkpoint_every = 20_000)
    program ~input =
  (* 1. the original (production) run, uninstrumented *)
  let m0 = Machine.create ~config program ~input in
  ignore (Machine.run m0);
  let original_cycles = Machine.cycles m0 in
  let total_steps = Machine.steps m0 in
  (* 2. the same run under checkpointing & logging *)
  let m1 = Machine.create ~config program ~input in
  let log = Request_log.create ~checkpoint_every () in
  Request_log.attach log m1;
  ignore (Machine.run m1);
  let logging_cycles = Machine.cycles m1 in
  let schedule = Machine.schedule_log m1 in
  (* 3. hypothetical whole-run fine-grained tracing, for the contrast *)
  let m2 = Machine.create ~config program ~input in
  let full_tracer = Ontrac.create ~opts:ontrac_opts program in
  Ontrac.attach full_tracer m2;
  ignore (Machine.run m2);
  let tracing_cycles = Machine.cycles m2 in
  let full_deps = (Ontrac.stats full_tracer).Ontrac.deps_recorded in
  let base =
    {
      original_cycles;
      logging_cycles;
      tracing_cycles;
      replay_cycles = 0;
      total_steps;
      replayed_steps = 0;
      total_requests = List.length (Request_log.requests log);
      relevant_requests = 0;
      full_deps;
      reduced_deps = 0;
      checkpoints_taken = List.length (Request_log.checkpoints log);
      logged_words = Request_log.logged_words log;
      fault_reproduced = false;
      fault_slice_sites = 0;
    }
  in
  (* 4. reduction + replay of the relevant suffix with gated tracing *)
  match Reduction.analyse log with
  | None -> base
  | Some plan ->
      let fault0 = Request_log.fault log in
      let m3, cp_step, cp_words =
        match Reduction.restart_point log plan ~schedule with
        | None ->
            ( Machine.create
                ~config:{ config with schedule = Some schedule }
                program ~input,
              0, 0 )
        | Some (cp_step, cp, suffix) ->
            ( Machine.of_checkpoint
                ~config:{ config with schedule = Some suffix }
                program ~input cp,
              cp_step,
              Machine.checkpoint_words cp )
      in
      let tracer = Ontrac.create ~opts:ontrac_opts program in
      Ontrac.attach_filtered tracer m3 ~keep:(relevance_filter plan);
      (* Irrelevant requests are applied from the event log rather than
         natively re-executed (the replayer of [6] skips them); their
         instructions cost nothing in the model.  A second relevance
         filter drives the cost gate — mark handling is idempotent, so
         feeding marks to both filters is safe. *)
      let cost_filter = relevance_filter plan in
      Machine.set_step_cost m3 (fun e ->
          if cost_filter e then Cost.base_instr else 0);
      (* restoring the checkpoint costs one pass over its words *)
      Machine.charge m3 (cp_words * Cost.checkpoint_word);
      let outcome3 = Machine.run m3 in
      let g, w = Ontrac.final_graph tracer in
      let fault_slice_sites =
        match fault0 with
        | Some f ->
            Slicing.num_sites
              (Slicing.backward ~window_start:w g
                 ~criterion:[ f.Event.at_step ])
        | None -> 0
      in
      {
        base with
        replay_cycles = Machine.cycles m3;
        replayed_steps = Machine.steps m3 - cp_step;
        relevant_requests = List.length plan.Reduction.relevant;
        reduced_deps = (Ontrac.stats tracer).Ontrac.deps_recorded;
        fault_reproduced =
          (match outcome3, fault0 with
          | Event.Faulted f3, Some f0 ->
              f3.Event.kind = f0.Event.kind
              && f3.Event.at_step = f0.Event.at_step
          | (Event.Halted | Event.Faulted _ | Event.Deadlocked
            | Event.Out_of_steps | Event.Stopped _), _ ->
              false);
        fault_slice_sites;
      }

let pp_report ppf r =
  let ratio a = float_of_int a /. float_of_int (max 1 r.original_cycles) in
  Fmt.pf ppf
    "@[<v>original:       %d cycles@,\
     logging:        %d cycles (%.2fx)@,\
     full tracing:   %d cycles (%.1fx)@,\
     reduced replay: %d cycles (%.3fx)@,\
     requests:       %d relevant of %d@,\
     deps:           %d full -> %d reduced@,\
     fault reproduced: %b@]"
    r.original_cycles r.logging_cycles (ratio r.logging_cycles)
    r.tracing_cycles (ratio r.tracing_cycles) r.replay_cycles
    (ratio r.replay_cycles) r.relevant_requests r.total_requests r.full_deps
    r.reduced_deps r.fault_reproduced
