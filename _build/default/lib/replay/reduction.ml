(** Execution reduction (paper §2.2, "Execution Reduction Phase").

    Given the replay log of a failed run, identify the part of the
    execution that the failure actually depends on: starting from the
    faulting request, walk backwards over the request history and keep
    every request that wrote a memory page the relevant set has read
    or written.  Everything else is irrelevant to the failure and need
    not be traced during replay.  This is the analysis that turned the
    paper's 976-million-dependence trace into 3175 dependences. *)

module Int_set = Request_log.Int_set

type plan = {
  relevant : Request_log.request list;  (** oldest first *)
  relevant_ids : Int_set.t;
  earliest_step : int;
      (** first step that must be replayed with tracing on *)
  total_requests : int;
}

(** Compute the relevant-request closure for the logged fault. *)
let analyse log =
  match Request_log.faulting_request log with
  | None -> None
  | Some fr ->
      let requests = Request_log.requests log in
      (* Backward closure over page conflicts. *)
      let relevant = ref [ fr ] in
      let frontier =
        ref
          (Int_set.union fr.Request_log.pages_read
             fr.Request_log.pages_written)
      in
      let earlier =
        List.filter
          (fun (r : Request_log.request) ->
            r.Request_log.start_step < fr.Request_log.start_step
            && r.Request_log.req_id <> fr.Request_log.req_id)
          requests
        |> List.sort (fun a b ->
               compare b.Request_log.start_step a.Request_log.start_step)
        (* newest first *)
      in
      List.iter
        (fun (r : Request_log.request) ->
          if
            not
              (Int_set.is_empty
                 (Int_set.inter r.Request_log.pages_written !frontier))
          then begin
            relevant := r :: !relevant;
            frontier :=
              Int_set.union !frontier
                (Int_set.union r.Request_log.pages_read
                   r.Request_log.pages_written)
          end)
        earlier;
      let relevant =
        List.sort
          (fun a b ->
            compare a.Request_log.start_step b.Request_log.start_step)
          !relevant
      in
      let ids =
        List.fold_left
          (fun acc r -> Int_set.add r.Request_log.req_id acc)
          Int_set.empty relevant
      in
      Some
        {
          relevant;
          relevant_ids = ids;
          earliest_step =
            (match relevant with
            | r :: _ -> r.Request_log.start_step
            | [] -> 0);
          total_requests = List.length requests;
        }

let is_relevant plan req_id = Int_set.mem req_id plan.relevant_ids

(** Fraction of requests kept. *)
let kept_fraction plan =
  float_of_int (List.length plan.relevant)
  /. float_of_int (max 1 plan.total_requests)

(** The newest checkpoint at or before [plan.earliest_step], with the
    scheduler state needed to resume: the suffix of the recorded
    schedule, seeded with the thread that was current at the
    checkpoint. *)
let restart_point log plan ~schedule =
  let cps = Request_log.checkpoints log in
  let best =
    List.fold_left
      (fun acc (step, cp) ->
        if step <= plan.earliest_step then Some (step, cp) else acc)
      None cps
  in
  match best with
  | None -> None
  | Some (cp_step, cp) ->
      (* current thread when step [cp_step] executes: the last switch
         at or before it; switches recorded exactly at [cp_step] stay
         in the suffix and re-apply on top, harmlessly *)
      let tid_at =
        List.fold_left
          (fun acc (s, tid) -> if s <= cp_step then tid else acc)
          0 schedule
      in
      let suffix = List.filter (fun (s, _) -> s >= cp_step) schedule in
      Some (cp_step, cp, (cp_step, tid_at) :: suffix)
