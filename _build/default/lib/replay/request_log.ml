(** Checkpointing & logging (paper §2.2, "Logging Phase").

    Under normal operation the program runs with only this lightweight
    logger attached: it records the scheduling decisions and input
    values needed for deterministic replay, segments the execution
    into requests using the program's [Mark] annotations, tracks the
    *memory pages* each request touches (the syscall/page-granularity
    information a real logging system gets almost for free), and takes
    periodic whole-state checkpoints.  Its modelled overhead is the
    "slowdown by a factor of two [or less]" class of cost the paper
    attributes to checkpointing & logging — orders of magnitude below
    fine-grained tracing. *)

open Dift_isa
open Dift_vm

module Int_set = Set.Make (Int)

let page_of addr = addr / 1024

(* Mark channels (shared convention with the server workload). *)
let mark_req_start = 1
let mark_req_end = 2

type request = {
  req_id : int;
  tid : int;
  start_step : int;
  mutable end_step : int;  (** [-1] while open *)
  mutable pages_read : Int_set.t;
  mutable pages_written : Int_set.t;
}

type t = {
  mutable requests : request list;  (** completed + open, reverse order *)
  open_by_tid : (int, request) Hashtbl.t;
  mutable checkpoints : (int * Machine.checkpoint) list;
      (** (step, checkpoint), newest first *)
  checkpoint_every : int;
  mutable last_checkpoint_step : int;
  mutable fault : Event.fault option;
  mutable machine : Machine.t option;
  mutable logged_words : int;
}

let create ?(checkpoint_every = 50_000) () =
  {
    requests = [];
    open_by_tid = Hashtbl.create 8;
    checkpoints = [];
    checkpoint_every;
    last_checkpoint_step = 0;
    fault = None;
    machine = None;
    logged_words = 0;
  }

let charge t n =
  t.logged_words <- t.logged_words + n;
  match t.machine with
  | Some m -> Machine.charge m (n * Cost.log_event_word)
  | None -> ()

let on_exec t (e : Event.exec) =
  let m = match t.machine with Some m -> m | None -> assert false in
  (* periodic checkpoint (only from the first thread's context to keep
     the cadence deterministic enough) *)
  if e.Event.step - t.last_checkpoint_step >= t.checkpoint_every then begin
    t.last_checkpoint_step <- e.Event.step;
    (* the snapshot is of the state *after* this instruction; record it
       under the machine's own step counter so replay scheduling
       aligns exactly *)
    let cp = Machine.checkpoint m in
    t.checkpoints <- (Machine.checkpoint_step cp, cp) :: t.checkpoints
  end;
  (match e.Event.instr with
  | Instr.Sys (Instr.Mark (c, _)) when c = mark_req_start ->
      let r =
        {
          req_id = e.Event.value;
          tid = e.Event.tid;
          start_step = e.Event.step;
          end_step = -1;
          pages_read = Int_set.empty;
          pages_written = Int_set.empty;
        }
      in
      Hashtbl.replace t.open_by_tid e.Event.tid r;
      t.requests <- r :: t.requests;
      charge t 2
  | Instr.Sys (Instr.Mark (c, _)) when c = mark_req_end ->
      (match Hashtbl.find_opt t.open_by_tid e.Event.tid with
      | Some r ->
          r.end_step <- e.Event.step;
          Hashtbl.remove t.open_by_tid e.Event.tid
      | None -> ());
      charge t 1
  | Instr.Sys (Instr.Read _) when e.Event.input_index >= 0 ->
      (* input word logged for replay *)
      charge t 2
  | _ -> ());
  (* page tracking for the enclosing request *)
  match Hashtbl.find_opt t.open_by_tid e.Event.tid with
  | None -> ()
  | Some r ->
      if e.Event.addr >= 0 then begin
        let page = page_of e.Event.addr in
        match e.Event.instr with
        | Instr.Store _ ->
            if not (Int_set.mem page r.pages_written) then begin
              r.pages_written <- Int_set.add page r.pages_written;
              charge t 1
            end
        | Instr.Load _ ->
            if not (Int_set.mem page r.pages_read) then begin
              r.pages_read <- Int_set.add page r.pages_read;
              charge t 1
            end
        | _ -> ()
      end

let attach t machine =
  t.machine <- Some machine;
  (* OS-level logging: no binary-instrumentation dispatch cost; the
     logger charges its own per-event costs. *)
  Machine.attach machine
    (Tool.make ~dispatch_cost:0 ~on_exec:(on_exec t)
       ~on_fault:(fun f -> t.fault <- Some f)
       "request-log")

(** Completed log: requests oldest-first. *)
let requests t = List.rev t.requests

let checkpoints t = List.rev t.checkpoints
let fault t = t.fault
let logged_words t = t.logged_words

(** The request that was executing when the fault fired, if any. *)
let faulting_request t =
  match t.fault with
  | None -> None
  | Some f ->
      List.find_opt
        (fun r ->
          r.tid = f.Event.at_tid
          && r.start_step <= f.Event.at_step
          && (r.end_step = -1 || r.end_step >= f.Event.at_step))
        (requests t)
