(** The complete execution-reduction pipeline (paper §2.2): log a
    failing run cheaply, analyse the log to find the failure-relevant
    requests, restore the last checkpoint before them, and replay just
    that suffix with fine-grained tracing gated to the relevant
    requests.  The report mirrors the paper's MySQL case-study
    numbers. *)

open Dift_isa
open Dift_vm

type report = {
  original_cycles : int;
  logging_cycles : int;
  tracing_cycles : int;  (** fine-grained tracing over the whole run *)
  replay_cycles : int;  (** reduced replay with gated tracing *)
  total_steps : int;
  replayed_steps : int;
  total_requests : int;
  relevant_requests : int;
  full_deps : int;  (** dependences recorded by whole-run tracing *)
  reduced_deps : int;  (** dependences recorded by the reduced replay *)
  checkpoints_taken : int;
  logged_words : int;
  fault_reproduced : bool;
  fault_slice_sites : int;
      (** statement count of the backward slice from the reproduced
          fault, in the reduced graph *)
}

val run :
  ?config:Machine.config ->
  ?checkpoint_every:int ->
  Program.t ->
  input:int array ->
  report

val pp_report : report Fmt.t
