(** Checkpointing & logging (paper §2.2, "Logging Phase").

    Under normal operation the program runs with only this lightweight
    logger attached: it records what deterministic replay needs,
    segments the execution into requests using the program's [Mark]
    annotations, tracks the memory *pages* each request touches (the
    information an OS-level logger gets almost for free), and takes
    periodic whole-state checkpoints.  Its modelled overhead is the
    checkpointing/logging class of cost — orders of magnitude below
    fine-grained tracing. *)

open Dift_vm

module Int_set : Set.S with type elt = int

val page_of : int -> int

(** Mark channels (shared convention with the server workload). *)
val mark_req_start : int

val mark_req_end : int

type request = {
  req_id : int;
  tid : int;
  start_step : int;
  mutable end_step : int;  (** [-1] while open *)
  mutable pages_read : Int_set.t;
  mutable pages_written : Int_set.t;
}

type t

val create : ?checkpoint_every:int -> unit -> t
val attach : t -> Machine.t -> unit

(** Completed log: requests oldest-first. *)
val requests : t -> request list

(** [(step, checkpoint)] pairs, oldest first. *)
val checkpoints : t -> (int * Machine.checkpoint) list

val fault : t -> Event.fault option

(** Total words logged (the log-size measure). *)
val logged_words : t -> int

(** The request that was executing when the fault fired, if any. *)
val faulting_request : t -> request option
