(** Execution reduction (paper §2.2, "Execution Reduction Phase").

    Given the replay log of a failed run, identify the part of the
    execution the failure actually depends on: starting from the
    faulting request, walk backwards over the request history and keep
    every request that wrote a memory page the relevant set has
    touched.  Everything else is irrelevant to the failure and need
    not be traced during replay. *)

module Int_set = Request_log.Int_set

type plan = {
  relevant : Request_log.request list;  (** oldest first *)
  relevant_ids : Int_set.t;
  earliest_step : int;
      (** first step that must be replayed with tracing on *)
  total_requests : int;
}

(** Compute the relevant-request closure for the logged fault; [None]
    when the run did not fault inside a request. *)
val analyse : Request_log.t -> plan option

val is_relevant : plan -> int -> bool

(** Fraction of requests kept. *)
val kept_fraction : plan -> float

(** The newest checkpoint at or before the plan's earliest step,
    together with the replay-schedule suffix to resume from it:
    [(checkpoint_step, checkpoint, schedule_suffix)]. *)
val restart_point :
  Request_log.t ->
  plan ->
  schedule:(int * int) list ->
  (int * Dift_vm.Machine.checkpoint * (int * int) list) option
