(** Software-attack detection with PC taint (paper §3.3).

    The detector runs the program under the PC-taint DIFT engine.
    When input-derived data reaches an indirect-call target, the
    attack is detected, the machine is stopped before the hijacked
    control flow can act, and the taint tag itself names the most
    recent instruction that wrote the corrupted location — the
    candidate root cause of the vulnerability. *)

open Dift_isa
open Dift_vm
open Dift_core

type detection = {
  at_step : int;
  at_site : string * int;  (** where the attack was caught *)
  root_cause : Taint.site option;
      (** from the PC taint: the unchecked write enabling the
          exploit *)
}

type result = {
  outcome : Event.outcome;
  detection : detection option;
  output : int list;
  hijack_succeeded : bool;
      (** did control ever reach attacker code? *)
}

(** The output word [evil] emits, marking a successful hijack. *)
val evil_marker : int

(** Run under protection.  The default policy is value (data-only)
    taint at control-transfer sinks: it flags code pointers whose
    value came from the input and stays silent on benign table
    dispatch; pass {!Policy.security} to also catch index-driven
    hijacks (at a false-positive cost). *)
val protect :
  ?policy:Policy.t ->
  ?config:Machine.config ->
  Program.t ->
  input:int array ->
  result

(** Evaluation row for one vulnerable case: benign input must pass
    silently; the attack must be detected before the hijack, with the
    root cause named correctly. *)
type eval_row = {
  name : string;
  benign_clean : bool;
  attack_detected : bool;
  hijack_prevented : bool;
  root_cause_correct : bool;
}

val evaluate : Dift_workloads.Vulnerable.case -> eval_row
val pp_eval : eval_row Fmt.t
