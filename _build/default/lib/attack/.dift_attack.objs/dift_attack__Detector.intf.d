lib/attack/detector.mli: Dift_core Dift_isa Dift_vm Dift_workloads Event Fmt Machine Policy Program Taint
