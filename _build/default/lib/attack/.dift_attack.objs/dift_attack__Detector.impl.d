lib/attack/detector.ml: Dift_core Dift_isa Dift_vm Dift_workloads Engine Event Fmt List Machine Policy Taint
