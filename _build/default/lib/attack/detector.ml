(** Software-attack detection with PC taint (paper §3.3).

    The detector runs the program under the PC-taint DIFT engine with
    the security policy (data + pointer flow).  When input-derived data
    reaches a control-transfer target — an indirect call through a
    tainted function pointer — the attack is detected, the machine is
    stopped before the hijacked control flow can act, and the taint tag
    itself names the most recent instruction that wrote the corrupted
    location: the candidate root cause of the vulnerability. *)

open Dift_vm
open Dift_core
module Pc_engine = Engine.Make (Taint.Pc)

type detection = {
  at_step : int;
  at_site : string * int;  (** where the attack was caught *)
  root_cause : Taint.site option;
      (** from the PC taint: the unchecked write enabling the exploit *)
}

type result = {
  outcome : Event.outcome;
  detection : detection option;
  output : int list;
  hijack_succeeded : bool;
      (** did control ever reach attacker code? ([evil]'s marker
          output) *)
}

let evil_marker = 666

(* Value taint (data-only propagation) is the right default for
   control-transfer sinks: it flags code pointers whose *value* came
   from the input and stays silent on benign table dispatch, where
   only the index is user data.  Pointer-flow policies catch the
   latter too, at the price of false positives (see the tests). *)
let protect ?(policy = Policy.data_only) ?config program ~input =
  let m = Machine.create ?config program ~input in
  let eng = Pc_engine.create ~policy program in
  let detection = ref None in
  Pc_engine.on_sink eng (fun sink taint e ->
      if sink = Engine.Sink_icall && !detection = None then
        match taint with
        | Some site ->
            detection :=
              Some
                {
                  at_step = e.Event.step;
                  at_site = (e.Event.func.Dift_isa.Func.name, e.Event.pc);
                  root_cause = Some site;
                };
            Machine.request_stop m "attack detected: tainted icall target"
        | None -> ());
  Pc_engine.attach eng m;
  let outcome = Machine.run m in
  let output = Machine.output_values m in
  {
    outcome;
    detection = !detection;
    output;
    hijack_succeeded = List.mem evil_marker output;
  }

(** Evaluation row for one vulnerable case: benign input must pass
    silently; the attack must be detected before the hijack, with the
    root cause named correctly. *)
type eval_row = {
  name : string;
  benign_clean : bool;  (** no false positive on the benign input *)
  attack_detected : bool;
  hijack_prevented : bool;
  root_cause_correct : bool;
      (** the reported site equals the injected bug's site *)
}

let evaluate (case : Dift_workloads.Vulnerable.case) =
  let open Dift_workloads.Vulnerable in
  let benign = protect case.program ~input:case.benign_input in
  let attacked = protect case.program ~input:case.attack_input in
  {
    name = case.name;
    benign_clean =
      benign.detection = None && benign.outcome = Event.Halted;
    attack_detected = attacked.detection <> None;
    hijack_prevented = not attacked.hijack_succeeded;
    root_cause_correct =
      (match attacked.detection with
      | Some { root_cause = Some site; _ } ->
          (site.Taint.fname, site.Taint.pc) = case.root_cause
      | Some { root_cause = None; _ } | None -> false);
  }

let pp_eval ppf r =
  Fmt.pf ppf "%-14s benign-clean:%b detected:%b prevented:%b root-cause:%b"
    r.name r.benign_clean r.attack_detected r.hijack_prevented
    r.root_cause_correct
