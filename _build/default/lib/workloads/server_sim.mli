(** A long-running multithreaded key-value "server" with a latent heap
    overflow — the stand-in for the paper's MySQL 3.23.56 memory-bug
    case study (§2.2).

    Worker threads pull [PUT]/[GET]/[ADMIN] requests from a shared
    queue.  [ADMIN] copies an unvalidated number of words into a
    4-word scratch buffer; an over-long request silently corrupts
    bucket 0's parity, and a much later [GET] on that bucket fails its
    check.  Request boundaries are announced with [Mark] so the
    logging layer can segment the execution; each bucket lives on its
    own 1024-word page so page-granularity logging separates them. *)

open Dift_isa

val page : int
val buckets : int
val bucket_base : int -> int
val scratch_base : int
val queue_base : int
val mark_req_start : int
val mark_req_end : int
val op_put : int
val op_get : int
val op_admin : int

(** The server program ([workers] worker threads, default 2). *)
val program : ?workers:int -> unit -> Program.t

(** Ground truth about a generated request batch. *)
type batch = {
  input : int array;
  requests : int;
  admin_index : int option;
      (** index of the corrupting ADMIN request *)
  first_failing_get : int option;
      (** index of the first bucket-0 GET after the corruption *)
}

(** Generate a request batch.  With [faulty], one over-long ADMIN
    request is placed [admin_at] of the way through (default 0.8), and
    a bucket-0 GET after it is guaranteed to fail its parity check. *)
val generate :
  requests:int ->
  seed:int ->
  ?faulty:bool ->
  ?admin_at:float ->
  unit ->
  batch
