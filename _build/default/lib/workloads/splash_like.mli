(** Parallel kernels with the synchronisation idioms of SPLASH-2:
    barriers, fine-grained locks, and flag (spin-wait)
    synchronisation.

    These drive the transactional-memory monitoring experiments (paper
    §2.2) and the race-detection experiments (§3.1).  Each kernel also
    has a deliberately racy variant. *)

open Dift_isa

(** Shared-memory layout constants (exposed so tests can assert about
    specific cells). *)

val param_n : int
val accounts_base : int
val flag_cell : int
val data_cell : int
val num_accounts : int

(** {1 Barrier-synchronised stencil} *)

val stencil : ?threads:int -> unit -> Program.t

(** Same computation with the barriers removed (races by design). *)
val stencil_racy : ?threads:int -> unit -> Program.t

val stencil_input : size:int -> seed:int -> int array

(** {1 Lock-based bank transfers} *)

val bank : ?threads:int -> unit -> Program.t

(** Transfers without the locks: a real atomicity bug. *)
val bank_racy : ?threads:int -> unit -> Program.t

(** The racy bank with an end-of-run conservation check: the atomicity
    violation becomes an observable fault the avoidance framework can
    capture. *)
val bank_racy_checked : ?threads:int -> unit -> Program.t

val bank_input : size:int -> seed:int -> int array

(** {1 Flag (spin-wait) pipeline} *)

(** Producer publishes items through a one-slot mailbox guarded by a
    spin flag; the loads/stores on the flag race by design — the
    benign synchronisation races a sync-aware detector must
    recognise. *)
val flag_pipeline : unit -> Program.t

val flag_input : size:int -> seed:int -> int array

(** {1 Spin-wait (centralized counter) barrier} *)

(** Workers synchronise on a sense-reversing barrier built from plain
    loads and stores — the construct that livelocks
    transaction-wrapped monitoring unless conflict resolution is
    synchronisation-aware (paper §2.2). *)
val spin_barrier : ?threads:int -> ?phases:int -> unit -> Program.t

(** Expected output of {!spin_barrier}. *)
val spin_barrier_expected : threads:int -> phases:int -> int

(** {1 Lock-order deadlock} *)

(** Two threads acquire the same two locks in opposite orders — a
    deadlock manifesting only under unlucky preemption; an
    environment-fault scenario for the avoidance framework. *)
val lock_order_deadlock : unit -> Program.t
