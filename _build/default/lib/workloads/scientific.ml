(** Scientific data-processing pipelines for the lineage experiments
    (paper §3.4).

    Each program turns an input dataset into output records whose
    lineage (the set of contributing input indices) has a different
    shape: clustered windows (moving average), scattered subsets
    (histogram), the full input (reduction), and small joins.  The
    paper's observation — lineage sets overlap heavily and cluster —
    is exactly what these produce, which is what makes the roBDD
    representation effective. *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

let base_in = 60_000
let base_aux = 70_000

type pipeline = {
  name : string;
  description : string;
  program : Program.t;
  input : size:int -> seed:int -> int array;
  (* Reference lineage: for input length n, the expected set of input
     indices behind each output, in output order.  Data-flow lineage
     only (matches the engine's data-only policy). *)
  expected_lineage : n:int -> input:int array -> int list list;
}

(* -- moving average: out[i] = avg(in[i..i+3]) ----------------------------- *)

let window = 4

let moving_avg =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (imm base_in) (reg Reg.r10);
            Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
        Builder.sub b Reg.r1 (reg Reg.r0) (imm (window - 1));
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
          (fun () ->
            Builder.movi b Reg.r4 0;
            Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(imm window)
              (fun () ->
                Builder.add b Reg.r5 (reg Reg.r10) (reg Reg.r11);
                Builder.add b Reg.r5 (reg Reg.r5) (imm base_in);
                Builder.load b Reg.r6 (reg Reg.r5) 0;
                Builder.add b Reg.r4 (reg Reg.r4) (reg Reg.r6));
            Builder.div b Reg.r4 (reg Reg.r4) (imm window);
            Builder.write b (reg Reg.r4));
        Builder.halt b)
  in
  {
    name = "moving-avg";
    description = "windowed average; each output depends on 4 adjacent inputs";
    program = Program.make [ main ];
    input =
      (fun ~size ~seed ->
        let n = max window size in
        Array.append [| n |] (Workload.random_input ~bound:100 n seed));
    expected_lineage =
      (fun ~n ~input:_ ->
        List.init (n - window + 1) (fun i ->
            List.init window (fun j -> 1 + i + j)));
  }

(* -- histogram: 8 bins over the value range -------------------------------- *)

let bins = 8

let histogram =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* clear bins *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm bins)
          (fun () ->
            Builder.add b Reg.r2 (imm base_aux) (reg Reg.r10);
            Builder.store b (imm 0) (reg Reg.r2) 0);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.rem b Reg.r3 (reg Reg.r2) (imm bins);
            Builder.add b Reg.r4 (imm base_aux) (reg Reg.r3);
            Builder.load b Reg.r5 (reg Reg.r4) 0;
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r2);
            Builder.store b (reg Reg.r5) (reg Reg.r4) 0);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm bins)
          (fun () ->
            Builder.add b Reg.r2 (imm base_aux) (reg Reg.r10);
            Builder.load b Reg.r3 (reg Reg.r2) 0;
            Builder.write b (reg Reg.r3));
        Builder.halt b)
  in
  {
    name = "histogram";
    description = "value-weighted histogram; bins collect scattered inputs";
    program = Program.make [ main ];
    input =
      (fun ~size ~seed ->
        let n = max 4 size in
        Array.append [| n |] (Workload.random_input ~bound:64 n seed));
    expected_lineage =
      (fun ~n ~input ->
        (* bin b's lineage: the data inputs whose value lands in b *)
        List.init bins (fun bin ->
            List.concat
              (List.init n (fun i ->
                   if input.(1 + i) mod bins = bin then [ 1 + i ] else []))));
  }

(* -- full reduction --------------------------------------------------------- *)

let reduction =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.movi b Reg.r5 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r2));
        Builder.write b (reg Reg.r5);
        Builder.halt b)
  in
  {
    name = "reduction";
    description = "sum of all inputs; the output's lineage is everything";
    program = Program.make [ main ];
    input =
      (fun ~size ~seed ->
        let n = max 2 size in
        Array.append [| n |] (Workload.random_input ~bound:100 n seed));
    expected_lineage =
      (fun ~n ~input:_ -> [ List.init n (fun i -> 1 + i) ]);
  }

(* -- key join ---------------------------------------------------------------- *)

(* Table A: nA (key, value) pairs; table B: nB (key, value) pairs.  For
   every A row, output value_A + value_B of the first matching B row
   (if any). *)
let join =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* nA *)
        Builder.mul b Reg.r1 (reg Reg.r0) (imm 2);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (imm base_in) (reg Reg.r10);
            Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
        Builder.read b Reg.r4;
        (* nB *)
        Builder.mul b Reg.r5 (reg Reg.r4) (imm 2);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r5)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (imm base_aux) (reg Reg.r10);
            Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
        (* nested-loop join *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.mul b Reg.r6 (reg Reg.r10) (imm 2);
            Builder.add b Reg.r6 (reg Reg.r6) (imm base_in);
            Builder.load b Reg.r7 (reg Reg.r6) 0;
            (* key *)
            Builder.load b Reg.r8 (reg Reg.r6) 1;
            (* value *)
            Builder.movi b Reg.r9 0;
            (* found flag *)
            Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(reg Reg.r4)
              (fun () ->
                Builder.if_nz1 b (reg Reg.r9) (fun () -> Builder.nop b);
                Builder.mul b Reg.r12 (reg Reg.r11) (imm 2);
                Builder.add b Reg.r12 (reg Reg.r12) (imm base_aux);
                Builder.load b Reg.r13 (reg Reg.r12) 0;
                Builder.eq b Reg.r14 (reg Reg.r13) (reg Reg.r7);
                Builder.eq b Reg.r15 (reg Reg.r9) (imm 0);
                Builder.and_ b Reg.r14 (reg Reg.r14) (reg Reg.r15);
                Builder.if_nz1 b (reg Reg.r14) (fun () ->
                    Builder.load b Reg.r16 (reg Reg.r12) 1;
                    Builder.add b Reg.r17 (reg Reg.r8) (reg Reg.r16);
                    Builder.write b (reg Reg.r17);
                    Builder.movi b Reg.r9 1)));
        Builder.halt b)
  in
  {
    name = "join";
    description = "nested-loop key join; outputs depend on one row per table";
    program = Program.make [ main ];
    input =
      (fun ~size ~seed ->
        let n = max 2 size in
        let rng = Random.State.make [| seed |] in
        let mk_table n =
          Array.concat
            (List.init n (fun _ ->
                 [| Random.State.int rng 8; Random.State.int rng 100 |]))
        in
        Array.concat [ [| n |]; mk_table n; [| n |]; mk_table n ]);
    expected_lineage =
      (fun ~n ~input ->
        (* For each A row with a matching B row (first match), the
           lineage of the output is {A.value, B.value} plus the keys
           compared on the successful probe (key equality feeds the
           flag, not the sum — data lineage is just the two values). *)
        let offa = 1 and offb = 2 + (2 * n) in
        List.concat
          (List.init n (fun i ->
               let ka = input.(offa + (2 * i)) in
               let rec find j =
                 if j >= n then None
                 else if input.(offb + (2 * j)) = ka then Some j
                 else find (j + 1)
               in
               match find 0 with
               | None -> []
               | Some j ->
                   [ [ offa + (2 * i) + 1; offb + (2 * j) + 1 ] ])));
  }

(* -- prefix sums (cumulative integral) ---------------------------------------- *)

(* out[i] = in[0] + ... + in[i], all kept resident in memory: n live
   lineage sets {0..i} that overlap maximally and cluster perfectly —
   the paper's observation about lineage structure, and the regime
   where the roBDD representation's sharing wins outright. *)
let prefix_sum =
  let out_base = 80_000 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.movi b Reg.r5 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r2);
            Builder.add b Reg.r3 (imm out_base) (reg Reg.r10);
            Builder.store b (reg Reg.r5) (reg Reg.r3) 0);
        (* publish a few samples *)
        Builder.sub b Reg.r6 (reg Reg.r0) (imm 1);
        Builder.add b Reg.r7 (imm out_base) (reg Reg.r6);
        Builder.load b Reg.r8 (reg Reg.r7) 0;
        Builder.write b (reg Reg.r8);
        Builder.halt b)
  in
  {
    name = "prefix-sum";
    description =
      "cumulative sums kept resident: n maximally overlapping lineages";
    program = Program.make [ main ];
    input =
      (fun ~size ~seed ->
        let n = max 2 size in
        Array.append [| n |] (Workload.random_input ~bound:100 n seed));
    expected_lineage =
      (fun ~n ~input:_ -> [ List.init n (fun i -> 1 + i) ]);
  }

let all = [ moving_avg; histogram; reduction; join; prefix_sum ]

let by_name name =
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "Scientific.by_name: %s" name)
