lib/workloads/workload.mli: Dift_isa Fmt Program
