lib/workloads/scientific.mli: Dift_isa Program
