lib/workloads/server_sim.ml: Array Builder Dift_isa List Operand Program Random Reg
