lib/workloads/buggy.mli: Dift_isa Program
