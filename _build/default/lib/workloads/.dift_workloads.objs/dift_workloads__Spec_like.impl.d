lib/workloads/spec_like.ml: Array Builder Dift_isa Fmt List Operand Program Random Reg Workload
