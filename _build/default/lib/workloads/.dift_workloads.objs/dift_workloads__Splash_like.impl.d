lib/workloads/splash_like.ml: Array Builder Dift_isa Fmt Operand Program Reg Workload
