lib/workloads/workload.ml: Array Dift_isa Fmt Program Random
