lib/workloads/buggy.ml: Builder Dift_isa Fmt List Operand Program Reg
