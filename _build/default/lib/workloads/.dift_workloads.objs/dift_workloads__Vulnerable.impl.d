lib/workloads/vulnerable.ml: Builder Dift_isa Fmt List Operand Program Reg
