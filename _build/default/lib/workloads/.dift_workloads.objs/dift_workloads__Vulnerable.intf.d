lib/workloads/vulnerable.mli: Dift_isa Program
