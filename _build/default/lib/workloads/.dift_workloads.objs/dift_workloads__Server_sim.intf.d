lib/workloads/server_sim.mli: Dift_isa Program
