lib/workloads/splash_like.mli: Dift_isa Program
