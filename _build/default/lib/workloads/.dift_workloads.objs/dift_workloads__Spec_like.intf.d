lib/workloads/spec_like.mli: Workload
