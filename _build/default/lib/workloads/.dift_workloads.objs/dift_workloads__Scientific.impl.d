lib/workloads/scientific.ml: Array Builder Dift_isa Fmt List Operand Program Random Reg Workload
