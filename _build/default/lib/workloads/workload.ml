(** A named benchmark program plus its input generator.

    The [input] function receives a size parameter and a seed and
    produces the input stream; sizes scale the dynamic instruction
    count so experiments can sweep them. *)

open Dift_isa

type t = {
  name : string;
  description : string;
  program : Program.t;
  input : size:int -> seed:int -> int array;
}

let make ~name ~description ~program ~input =
  { name; description; program; input }

(** A deterministic pseudo-random input stream of [n] words in
    [0, bound). *)
let random_input ?(bound = 1000) n seed =
  let rng = Random.State.make [| seed; n |] in
  Array.init n (fun _ -> Random.State.int rng bound)

let pp ppf w = Fmt.pf ppf "%s: %s" w.name w.description
