(** Vulnerable programs and attacks against them (paper §3.3).

    Each case is an input-validation error — the class the paper notes
    covered 72% of 2006's vulnerabilities.  Every program has a benign
    input, an attack input that hijacks control to the [evil]
    function, and a ground-truth root-cause site (the unchecked
    copy/store) that PC taint should name when the attack is
    detected. *)

open Dift_isa

type case = {
  name : string;
  description : string;
  program : Program.t;
  benign_input : int array;
  attack_input : int array;
  root_cause : string * int;
      (** the statement whose missing validation enables the exploit *)
  evil_name : string;  (** function the attack redirects control to *)
  heap_based : bool;
      (** true when allocation padding (an environment patch) defeats
          the attack *)
}

val stack_smash : case
val heap_overflow : case
val format_write : case
val boundary : case
val all : case list

(** @raise Invalid_argument for unknown names. *)
val by_name : string -> case
