(** Programs with injected faults, for the fault-location experiments
    (paper §3.1).

    Each case knows its own ground truth: the static site of the
    injected fault, a passing input and a failing input.  The failure
    is observable (a wrong output or a failed [Sys Check]), which is
    what dynamic slicing starts from.  The corpus covers the error
    classes the paper discusses: value errors caught by data slices,
    predicate errors, execution-omission errors (the hard case §3.1
    addresses with implicit dependences / predicate switching), and
    latent state corruption. *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

type case = {
  name : string;
  description : string;
  program : Program.t;
  faulty_site : string * int;  (** ground truth: (function, pc) *)
  failing_input : int array;
  passing_input : int array;
  omission : bool;
      (** true when the bug makes correct code *not* execute — the
          execution-omission class *)
}

(* 1. Wrong operator in a computation: sum must double each element,
   but the faulty site adds instead of multiplying when the value
   exceeds a threshold. *)
let wrong_operator =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.movi b Reg.r5 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r1;
            Builder.gt b Reg.r2 (reg Reg.r1) (imm 50);
            Builder.if_nz b (reg Reg.r2)
              ~then_:(fun () ->
                site := Builder.here b;
                (* BUG: should be [mul r3 r1 2] *)
                Builder.add b Reg.r3 (reg Reg.r1) (imm 2))
              ~else_:(fun () ->
                Builder.mul b Reg.r3 (reg Reg.r1) (imm 2));
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r3));
        (* The spec: the sum of doubled elements is even. *)
        Builder.rem b Reg.r6 (reg Reg.r5) (imm 2);
        Builder.eq b Reg.r7 (reg Reg.r6) (imm 0);
        Builder.write b (reg Reg.r5);
        Builder.check b (reg Reg.r7);
        Builder.halt b)
  in
  {
    name = "wrong-operator";
    description = "add instead of mul on the >50 path makes the sum odd";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 3; 60; 10; 20 |];
    (* one odd contribution: 62 + 20 + 40 = 122? 62 is even... use 61 *)
    passing_input = [| 3; 10; 20; 30 |];
    omission = false;
  }

(* Fix the failing input after the fact: 60 -> 60+2 = 62 (even), so use
   an odd seed value: 61 -> 63 (odd) breaks the parity check. *)
let wrong_operator =
  { wrong_operator with failing_input = [| 3; 61; 10; 20 |] }

(* 2. Off-by-one loop bound: the last element is never accumulated. *)
let off_by_one =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.movi b Reg.r5 0;
        site := Builder.here b;
        (* BUG: bound should be r0, not r0-1 *)
        Builder.sub b Reg.r4 (reg Reg.r0) (imm 1);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r4)
          (fun () ->
            Builder.read b Reg.r1;
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r1));
        (* The spec: echo the total; the harness checks it against the
           true sum via the final check word (true sum supplied as the
           last input word by the generator). *)
        Builder.read b Reg.r2;
        (* unread element, consumed here so the stream aligns *)
        Builder.read b Reg.r3;
        (* expected sum *)
        Builder.eq b Reg.r6 (reg Reg.r5) (reg Reg.r3);
        Builder.write b (reg Reg.r5);
        Builder.check b (reg Reg.r6);
        Builder.halt b)
  in
  {
    name = "off-by-one";
    description = "loop bound n-1 drops the last element of the sum";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 3; 5; 6; 7; 18 |];
    (* passing when the dropped element is 0 *)
    passing_input = [| 3; 5; 6; 0; 11 |];
    omission = false;
  }

(* 3. Execution omission: a guard predicate is wrong (> instead of >=),
   so the update statement is *not executed* for the boundary value and
   the failure has no data dependence on the faulty predicate's
   then-branch.  Locating this requires implicit dependences /
   predicate switching. *)
let omission_guard =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* x *)
        Builder.movi b Reg.r5 0;
        (* flag stays 0 unless the guard fires *)
        site := Builder.here b;
        (* BUG: should be [ge r2 r0 10] *)
        Builder.gt b Reg.r2 (reg Reg.r0) (imm 10);
        Builder.if_nz1 b (reg Reg.r2) (fun () -> Builder.movi b Reg.r5 1);
        (* The spec: for x >= 10 the flag must be set. *)
        Builder.ge b Reg.r3 (reg Reg.r0) (imm 10);
        Builder.eq b Reg.r4 (reg Reg.r5) (reg Reg.r3);
        Builder.write b (reg Reg.r5);
        Builder.check b (reg Reg.r4);
        Builder.halt b)
  in
  {
    name = "omission-guard";
    description =
      "guard uses > instead of >=, omitting the update at the boundary";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 10 |];
    passing_input = [| 11 |];
    omission = true;
  }

(* 4. Missing initialisation: a cell is read before being written when
   a rare path is taken, yielding a stale value from a previous
   phase. *)
let stale_read =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* Phase 1 leaves a value in the scratch cell. *)
        Builder.read b Reg.r0;
        Builder.store b (reg Reg.r0) (imm 900) 0;
        (* Phase 2: should re-initialise the cell, but only does so on
           the common path. *)
        Builder.read b Reg.r1;
        site := Builder.here b;
        (* BUG: initialisation guarded by r1 != 0; for r1 = 0 the cell
           keeps phase 1's value *)
        Builder.if_nz1 b (reg Reg.r1) (fun () ->
            Builder.store b (imm 1) (imm 900) 0);
        Builder.load b Reg.r2 (imm 900) 0;
        (* The spec: phase 2's result is always 1 when r1<>0, and the
           program claims it is always <= 1. *)
        Builder.le b Reg.r3 (reg Reg.r2) (imm 1);
        Builder.write b (reg Reg.r2);
        Builder.check b (reg Reg.r3);
        Builder.halt b)
  in
  {
    name = "stale-read";
    description = "conditional initialisation leaves a stale value behind";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 7; 0 |];
    passing_input = [| 7; 1 |];
    omission = true;
  }

(* 5. Rare division by zero: a denominator derived from input is not
   validated. *)
let div_crash =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.read b Reg.r1;
        Builder.sub b Reg.r2 (reg Reg.r1) (imm 5);
        site := Builder.here b;
        (* BUG: divides by r1-5 without checking for 5 *)
        Builder.div b Reg.r3 (reg Reg.r0) (reg Reg.r2);
        Builder.write b (reg Reg.r3);
        Builder.halt b)
  in
  {
    name = "div-crash";
    description = "unvalidated denominator crashes when the input is 5";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 100; 5 |];
    passing_input = [| 100; 7 |];
    omission = false;
  }

(* 6. Corruption at a distance: an early bounds error corrupts a
   neighbouring cell; the failure fires many instructions later when
   the corrupted cell is finally used. *)
let latent_corruption =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* table of 4 valid cells at 910..913, sentinel at 914 *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm 4)
          (fun () ->
            Builder.add b Reg.r2 (imm 910) (reg Reg.r10);
            Builder.store b (imm 1) (reg Reg.r2) 0);
        Builder.store b (imm 1) (imm 914) 0;
        (* write input-selected index without validating *)
        Builder.read b Reg.r0;
        site := Builder.here b;
        (* BUG: index may be 4, clobbering the sentinel *)
        Builder.add b Reg.r3 (imm 910) (reg Reg.r0);
        Builder.store b (imm 0) (reg Reg.r3) 0;
        (* ... lots of unrelated work ... *)
        Builder.movi b Reg.r5 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm 200)
          (fun () ->
            Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r10));
        Builder.write b (reg Reg.r5);
        (* the sentinel must still be intact *)
        Builder.load b Reg.r6 (imm 914) 0;
        Builder.check b (reg Reg.r6);
        Builder.halt b)
  in
  {
    name = "latent-corruption";
    description =
      "unvalidated index clobbers a sentinel; failure manifests much later";
    program = Program.make [ main ];
    faulty_site = ("main", !site);
    failing_input = [| 4 |];
    passing_input = [| 2 |];
    omission = false;
  }

let all =
  [
    wrong_operator;
    off_by_one;
    omission_guard;
    stale_read;
    div_crash;
    latent_corruption;
  ]

let by_name name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Buggy.by_name: %s" name)
