(** Programs with injected faults, for the fault-location experiments
    (paper §3.1).

    Each case knows its own ground truth: the static site of the
    injected fault, a passing input and a failing input.  The failure
    is observable (a wrong output or a failed [Sys Check]).  The
    corpus covers the error classes the paper discusses, including
    execution-omission errors — the hard case §3.1 addresses. *)

open Dift_isa

type case = {
  name : string;
  description : string;
  program : Program.t;
  faulty_site : string * int;  (** ground truth: (function, pc) *)
  failing_input : int array;
  passing_input : int array;
  omission : bool;
      (** true when the bug makes correct code *not* execute *)
}

val wrong_operator : case
val off_by_one : case
val omission_guard : case
val stale_read : case
val div_crash : case
val latent_corruption : case
val all : case list

(** @raise Invalid_argument for unknown names. *)
val by_name : string -> case
