(** A long-running multithreaded key-value "server" with a latent heap
    overflow — the stand-in for the paper's MySQL 3.23.56 memory-bug
    case study (§2.2).

    [main] loads a batch of requests into an in-memory queue, then
    worker threads pull requests under a lock and process them:

    - [PUT key value] stores the value and its parity in the key's
      bucket (each bucket lives on its own 1024-word "page" so
      page-granularity logging separates them);
    - [GET key] loads the value and asserts parity — the observable
      failure when a bucket was corrupted;
    - [ADMIN len seed] copies [len] words into a 4-word scratch buffer
      *without a bounds check*; a malicious length overflows into
      bucket 0's page and breaks its parity.

    The corruption is silent; the failure fires much later, at the
    next [GET] on bucket 0 — exactly the "long-running execution,
    fault exercised long after its cause" scenario execution reduction
    targets.  Request boundaries are announced with [Mark] so the
    logging layer can segment the execution. *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

(* Memory layout. *)
let page = 1024
let buckets = 16
let bucket_base b = 20_480 + (b * page)
let scratch_base = 20_476 (* 4 words, ends where bucket 0's page starts *)
(* The queue lives far above the bucket pages (the last bucket page
   ends at 20_480 + 16*1024 = 36_864) so big batches cannot collide
   with table data. *)
let queue_count = 99_998
let queue_cursor = 99_999
let queue_base = 100_000

(* Mark channels. *)
let mark_req_start = 1
let mark_req_end = 2

let op_put = 1
let op_get = 2
let op_admin = 3

(* Per-request think-time compute, so a request costs a realistic
   number of instructions. *)
let think b ~seed_reg ~iters =
  Builder.movi b Reg.r20 0;
  Builder.for_up b ~idx:Reg.r21 ~from_:(imm 0) ~below:(imm iters) (fun () ->
      Builder.mul b Reg.r20 (reg Reg.r20) (imm 31);
      Builder.add b Reg.r20 (reg Reg.r20) (reg seed_reg);
      Builder.and_ b Reg.r20 (reg Reg.r20) (imm 0xFFFF))

let worker =
  Builder.define ~name:"worker" ~arity:1 (fun b ->
      let again = Builder.fresh_label b "again" in
      let done_ = Builder.fresh_label b "done" in
      Builder.label b again;
      (* claim the next request index under the queue lock *)
      Builder.lock b (imm 1);
      Builder.load b Reg.r1 (imm queue_cursor) 0;
      Builder.load b Reg.r2 (imm queue_count) 0;
      Builder.lt b Reg.r3 (reg Reg.r1) (reg Reg.r2);
      Builder.if_nz1 b (reg Reg.r3) (fun () ->
          Builder.add b Reg.r4 (reg Reg.r1) (imm 1);
          Builder.store b (reg Reg.r4) (imm queue_cursor) 0);
      Builder.unlock b (imm 1);
      Builder.br_z b (reg Reg.r3) done_;
      (* fetch the request *)
      Builder.mark b mark_req_start (reg Reg.r1);
      Builder.mul b Reg.r5 (reg Reg.r1) (imm 3);
      Builder.add b Reg.r5 (reg Reg.r5) (imm queue_base);
      Builder.load b Reg.r6 (reg Reg.r5) 0;
      (* op *)
      Builder.load b Reg.r7 (reg Reg.r5) 1;
      (* key / len *)
      Builder.load b Reg.r8 (reg Reg.r5) 2;
      (* value / seed *)
      think b ~seed_reg:Reg.r8 ~iters:12;
      (* dispatch *)
      Builder.eq b Reg.r9 (reg Reg.r6) (imm op_put);
      Builder.if_nz1 b (reg Reg.r9) (fun () ->
          (* PUT: bucket = key mod buckets *)
          Builder.rem b Reg.r10 (reg Reg.r7) (imm buckets);
          Builder.mul b Reg.r11 (reg Reg.r10) (imm page);
          Builder.add b Reg.r11 (reg Reg.r11) (imm (bucket_base 0));
          Builder.add b Reg.r12 (reg Reg.r10) (imm 10);
          (* per-bucket lock id *)
          Builder.lock b (reg Reg.r12);
          Builder.store b (reg Reg.r8) (reg Reg.r11) 0;
          Builder.rem b Reg.r13 (reg Reg.r8) (imm 2);
          Builder.store b (reg Reg.r13) (reg Reg.r11) 1;
          Builder.unlock b (reg Reg.r12));
      Builder.eq b Reg.r9 (reg Reg.r6) (imm op_get);
      Builder.if_nz1 b (reg Reg.r9) (fun () ->
          (* GET: parity must hold *)
          Builder.rem b Reg.r10 (reg Reg.r7) (imm buckets);
          Builder.mul b Reg.r11 (reg Reg.r10) (imm page);
          Builder.add b Reg.r11 (reg Reg.r11) (imm (bucket_base 0));
          Builder.add b Reg.r12 (reg Reg.r10) (imm 10);
          Builder.lock b (reg Reg.r12);
          Builder.load b Reg.r13 (reg Reg.r11) 0;
          Builder.load b Reg.r14 (reg Reg.r11) 1;
          Builder.unlock b (reg Reg.r12);
          Builder.rem b Reg.r15 (reg Reg.r13) (imm 2);
          Builder.eq b Reg.r16 (reg Reg.r14) (reg Reg.r15);
          Builder.check b (reg Reg.r16);
          Builder.write b (reg Reg.r13));
      Builder.eq b Reg.r9 (reg Reg.r6) (imm op_admin);
      Builder.if_nz1 b (reg Reg.r9) (fun () ->
          (* ADMIN: copy r7 words derived from the seed into the
             4-word scratch buffer.  BUG: r7 is not validated. *)
          Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r7)
            (fun () ->
              Builder.add b Reg.r11 (reg Reg.r8) (reg Reg.r10);
              Builder.add b Reg.r12 (imm scratch_base) (reg Reg.r10);
              Builder.store b (reg Reg.r11) (reg Reg.r12) 0));
      Builder.mark b mark_req_end (reg Reg.r1);
      Builder.jmp b again;
      Builder.label b done_;
      Builder.ret b None)

let main ~workers =
  Builder.define ~name:"main" ~arity:0 (fun b ->
      (* initialise buckets (value 0, parity 0 is consistent) *)
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm buckets)
        (fun () ->
          Builder.mul b Reg.r2 (reg Reg.r10) (imm page);
          Builder.add b Reg.r2 (reg Reg.r2) (imm (bucket_base 0));
          Builder.store b (imm 0) (reg Reg.r2) 0;
          Builder.store b (imm 0) (reg Reg.r2) 1);
      (* load the request batch *)
      Builder.read b Reg.r0;
      Builder.store b (reg Reg.r0) (imm queue_count) 0;
      Builder.store b (imm 0) (imm queue_cursor) 0;
      Builder.mul b Reg.r1 (reg Reg.r0) (imm 3);
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
        (fun () ->
          Builder.read b Reg.r2;
          Builder.add b Reg.r3 (imm queue_base) (reg Reg.r10);
          Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
      (* run the workers *)
      for w = 0 to workers - 1 do
        Builder.spawn b (Reg.make (30 + w)) "worker" (imm w)
      done;
      for w = 0 to workers - 1 do
        Builder.join b (reg (Reg.make (30 + w)))
      done;
      Builder.write b (imm 0);
      Builder.halt b)

let program ?(workers = 2) () = Program.make [ main ~workers; worker ]

(** Ground truth about a generated request batch. *)
type batch = {
  input : int array;
  requests : int;
  admin_index : int option;  (** index of the corrupting ADMIN request *)
  first_failing_get : int option;
      (** index of the first bucket-0 GET after the corruption *)
}

(** Generate a request batch.  With [faulty], one over-long ADMIN
    request is placed [admin_at] of the way through (default 0.8), and
    bucket-0 GETs after it will fail their parity check. *)
let generate ~requests ~seed ?(faulty = false) ?(admin_at = 0.8) () =
  let rng = Random.State.make [| seed; requests |] in
  let admin_index =
    if faulty then Some (int_of_float (float_of_int requests *. admin_at))
    else None
  in
  let reqs = ref [] in
  let first_failing_get = ref None in
  for i = 0 to requests - 1 do
    if admin_index = Some i then
      (* len 6 overflows the 4-word scratch into bucket 0; seed 2 makes
         the overwritten parity wrong for any value *)
      reqs := [ op_admin; 6; 2 ] :: !reqs
    else begin
      let key = Random.State.int rng 64 in
      let is_put = Random.State.bool rng in
      if is_put then
        (* keep keys off bucket 0 for PUTs after corruption, so the
           corruption is not silently healed *)
        let key =
          match admin_index with
          | Some a when i > a && key mod buckets = 0 -> key + 1
          | _ -> key
        in
        reqs := [ op_put; key; Random.State.int rng 1000 ] :: !reqs
      else begin
        (match admin_index with
        | Some a
          when i > a && key mod buckets = 0 && !first_failing_get = None ->
            first_failing_get := Some i
        | _ -> ());
        reqs := [ op_get; key; 0 ] :: !reqs
      end
    end
  done;
  (* Guarantee the failure manifests: if no bucket-0 GET landed after
     the corruption, make the final request one. *)
  (match admin_index, !reqs with
  | Some _, _ :: rest when !first_failing_get = None ->
      reqs := [ op_get; 0; 0 ] :: rest;
      first_failing_get := Some (requests - 1)
  | _ -> ());
  let body = List.concat (List.rev !reqs) in
  {
    input = Array.of_list (requests :: body);
    requests;
    admin_index;
    first_failing_get = !first_failing_get;
  }
