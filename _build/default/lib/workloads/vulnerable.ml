(** Vulnerable programs and attacks against them (paper §3.3).

    Each case is an input-validation error — the class the paper notes
    covered 72% of 2006's vulnerabilities: a stack-style smash of a
    code pointer, a heap overflow into an adjacent object, an
    arbitrary-write ("format-string") primitive, and an unvalidated
    table index.  Every program has a benign input, an attack input
    that hijacks control to the [evil] function, and a ground-truth
    root-cause site (the unchecked copy/store) that PC-taint should
    name when the attack is detected. *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

type case = {
  name : string;
  description : string;
  program : Program.t;
  benign_input : int array;
  attack_input : int array;
  root_cause : string * int;
      (** the statement whose missing validation enables the exploit *)
  evil_name : string;  (** function the attack redirects control to *)
  heap_based : bool;
      (** true when allocation padding (an environment patch) defeats
          the attack *)
}

(* The attacker's target: observable side effect if it ever runs. *)
let evil =
  Builder.define ~name:"evil" ~arity:0 (fun b ->
      Builder.write b (imm 666);
      Builder.ret b None)

(* A benign handler. *)
let handler =
  Builder.define ~name:"handler" ~arity:0 (fun b ->
      Builder.write b (imm 1);
      Builder.ret b None)

(* -- 1. smash of an adjacent code pointer -------------------------------- *)

(* Layout: message buffer at 921..928 (8 words), handler pointer slot
   at 929.  The copy loop trusts the length field from the input. *)
let code_ptr_slot = 929
let buffer_base = 921

let stack_smash =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* install the legitimate handler *)
        Builder.movi b Reg.r0 1;
        (* func id of "handler" (program order below) *)
        Builder.store b (reg Reg.r0) (imm code_ptr_slot) 0;
        (* read length, copy message into the buffer *)
        Builder.read b Reg.r1;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
          (fun () ->
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (imm buffer_base) (reg Reg.r10);
            site := Builder.here b;
            (* BUG: no check that r10 < 8 *)
            Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
        (* dispatch through the (possibly clobbered) pointer *)
        Builder.load b Reg.r4 (imm code_ptr_slot) 0;
        Builder.icall b (reg Reg.r4) ~ret:None;
        Builder.halt b)
  in
  let program = Program.make [ main; handler; evil ] in
  let evil_id = Program.func_id program "evil" in
  {
    name = "stack-smash";
    description = "length-trusting copy clobbers an adjacent code pointer";
    program;
    benign_input = [| 3; 11; 12; 13 |];
    attack_input = [| 9; 1; 2; 3; 4; 5; 6; 7; 8; evil_id |];
    root_cause = ("main", !site);
    evil_name = "evil";
    heap_based = false;
  }

(* -- 2. heap overflow into an adjacent object's code pointer ------------- *)

let heap_overflow =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* victim object allocated right after the buffer *)
        Builder.alloc b Reg.r0 (imm 4);
        (* message buffer *)
        Builder.alloc b Reg.r1 (imm 2);
        (* dispatch object *)
        Builder.movi b Reg.r2 1;
        Builder.store b (reg Reg.r2) (reg Reg.r1) 0;
        (* handler id *)
        (* copy the message with a trusted length *)
        Builder.read b Reg.r3;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r3)
          (fun () ->
            Builder.read b Reg.r4;
            Builder.add b Reg.r5 (reg Reg.r0) (reg Reg.r10);
            site := Builder.here b;
            (* BUG: no check that r10 < 4 *)
            Builder.store b (reg Reg.r4) (reg Reg.r5) 0);
        Builder.load b Reg.r6 (reg Reg.r1) 0;
        Builder.icall b (reg Reg.r6) ~ret:None;
        Builder.halt b)
  in
  let program = Program.make [ main; handler; evil ] in
  let evil_id = Program.func_id program "evil" in
  {
    name = "heap-overflow";
    description = "heap buffer overflow rewrites the next object's code ptr";
    program;
    benign_input = [| 2; 41; 42 |];
    (* the allocator places the second block at base+size+1, so the
       6th copied word (offset 5) lands on its first cell *)
    attack_input = [| 6; 1; 2; 3; 4; 5; evil_id |];
    root_cause = ("main", !site);
    evil_name = "evil";
    heap_based = true;
  }

(* -- 3. arbitrary-write primitive (format-string analogue) --------------- *)

let fmt_table = 950

let format_write =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* table[0] holds the continuation id *)
        Builder.movi b Reg.r0 1;
        Builder.store b (reg Reg.r0) (imm fmt_table) 0;
        (* process (slot, value) directives from the input *)
        Builder.read b Reg.r1;
        (* directive count *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
          (fun () ->
            Builder.read b Reg.r2;
            (* slot *)
            Builder.read b Reg.r3;
            (* value *)
            Builder.add b Reg.r4 (imm fmt_table) (reg Reg.r2);
            site := Builder.here b;
            (* BUG: slot 0 (the continuation) is writable *)
            Builder.store b (reg Reg.r3) (reg Reg.r4) 0);
        Builder.load b Reg.r5 (imm fmt_table) 0;
        Builder.icall b (reg Reg.r5) ~ret:None;
        Builder.halt b)
  in
  let program = Program.make [ main; handler; evil ] in
  let evil_id = Program.func_id program "evil" in
  {
    name = "format-write";
    description = "attacker-controlled (slot, value) writes reach slot 0";
    program;
    benign_input = [| 2; 3; 77; 4; 88 |];
    attack_input = [| 1; 0; evil_id |];
    root_cause = ("main", !site);
    evil_name = "evil";
    heap_based = false;
  }

(* -- 4. unvalidated jump-table index -------------------------------------- *)

let jt_base = 970
let user_cell = 975

let boundary =
  let site = ref 0 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* 3-entry jump table, all benign *)
        Builder.store b (imm 1) (imm jt_base) 0;
        Builder.store b (imm 1) (imm jt_base) 1;
        Builder.store b (imm 1) (imm jt_base) 2;
        (* user "profile" word saved nearby: the write whose reach the
           missing bounds check exposes — PC taint will name it *)
        Builder.read b Reg.r0;
        site := Builder.here b;
        Builder.store b (reg Reg.r0) (imm user_cell) 0;
        (* opcode dispatch; BUG: opcode not checked against the table
           size, so it can index into the profile cell *)
        Builder.read b Reg.r1;
        Builder.add b Reg.r2 (imm jt_base) (reg Reg.r1);
        Builder.load b Reg.r3 (reg Reg.r2) 0;
        Builder.icall b (reg Reg.r3) ~ret:None;
        Builder.halt b)
  in
  let program = Program.make [ main; handler; evil ] in
  let evil_id = Program.func_id program "evil" in
  {
    name = "boundary";
    description = "out-of-range opcode indexes attacker data as a code ptr";
    program;
    benign_input = [| 99; 1 |];
    (* profile word = evil id; opcode 5 lands on the profile cell *)
    attack_input = [| evil_id; 5 |];
    root_cause = ("main", !site);
    evil_name = "evil";
    heap_based = false;
  }

let all = [ stack_smash; heap_overflow; format_write; boundary ]

let by_name name =
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> invalid_arg (Fmt.str "Vulnerable.by_name: %s" name)
