(** A named benchmark program plus its input generator. *)

open Dift_isa

type t = {
  name : string;
  description : string;
  program : Program.t;
  input : size:int -> seed:int -> int array;
      (** [size] scales the dynamic instruction count; [seed] selects
          the pseudo-random data *)
}

val make :
  name:string ->
  description:string ->
  program:Program.t ->
  input:(size:int -> seed:int -> int array) ->
  t

(** A deterministic pseudo-random input stream of [n] words in
    [0, bound). *)
val random_input : ?bound:int -> int -> int -> int array

val pp : t Fmt.t
