(** Parallel kernels with the synchronisation idioms of SPLASH-2:
    barriers, fine-grained locks, and flag (spin-wait) synchronisation.

    These drive the transactional-memory monitoring experiments
    (paper §2.2 — barrier/flag sync inside transactions causes
    livelock unless conflict resolution is synchronisation-aware) and
    the race-detection experiments (§3.1 — spin-wait flags produce
    benign "synchronisation races" that a sync-aware detector must
    filter).  Each kernel also has a deliberately racy variant. *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

(* Shared-memory layout. *)
let param_n = 39_000 (* array length *)
let param_k = 39_001 (* phases *)
let param_t = 39_002 (* thread count *)
let array_a = 40_000
let array_b = 45_000
let accounts_base = 41_000
let flag_cell = 42_000
let data_cell = 42_001
let done_cell = 42_002

(* -- barrier-synchronised stencil ---------------------------------------- *)

(* worker(w): for each phase, smooth own slice of A into B, barrier,
   copy back, barrier. *)
let stencil_worker ~use_barrier =
  let name = if use_barrier then "worker" else "worker" in
  Builder.define ~name ~arity:1 (fun b ->
      (* r0 = worker index *)
      Builder.mov b Reg.r30 (reg Reg.r0);
      Builder.load b Reg.r1 (imm param_n) 0;
      Builder.load b Reg.r2 (imm param_k) 0;
      Builder.load b Reg.r3 (imm param_t) 0;
      (* slice bounds: [w*n/t, (w+1)*n/t) clipped to [1, n-1) *)
      Builder.mul b Reg.r4 (reg Reg.r30) (reg Reg.r1);
      Builder.div b Reg.r4 (reg Reg.r4) (reg Reg.r3);
      Builder.add b Reg.r5 (reg Reg.r30) (imm 1);
      Builder.mul b Reg.r5 (reg Reg.r5) (reg Reg.r1);
      Builder.div b Reg.r5 (reg Reg.r5) (reg Reg.r3);
      Builder.lt b Reg.r6 (reg Reg.r4) (imm 1);
      Builder.if_nz1 b (reg Reg.r6) (fun () -> Builder.movi b Reg.r4 1);
      Builder.sub b Reg.r7 (reg Reg.r1) (imm 1);
      Builder.gt b Reg.r6 (reg Reg.r5) (reg Reg.r7);
      Builder.if_nz1 b (reg Reg.r6) (fun () ->
          Builder.mov b Reg.r5 (reg Reg.r7));
      Builder.for_up b ~idx:Reg.r31 ~from_:(imm 0) ~below:(reg Reg.r2)
        (fun () ->
          (* smooth *)
          Builder.for_up b ~idx:Reg.r10 ~from_:(reg Reg.r4)
            ~below:(reg Reg.r5) (fun () ->
              Builder.add b Reg.r11 (imm array_a) (reg Reg.r10);
              Builder.load b Reg.r12 (reg Reg.r11) (-1);
              Builder.load b Reg.r13 (reg Reg.r11) 0;
              Builder.load b Reg.r14 (reg Reg.r11) 1;
              Builder.add b Reg.r15 (reg Reg.r12) (reg Reg.r13);
              Builder.add b Reg.r15 (reg Reg.r15) (reg Reg.r14);
              Builder.div b Reg.r15 (reg Reg.r15) (imm 3);
              Builder.add b Reg.r16 (imm array_b) (reg Reg.r10);
              Builder.store b (reg Reg.r15) (reg Reg.r16) 0);
          if use_barrier then Builder.barrier b (imm 7);
          (* copy back own slice *)
          Builder.for_up b ~idx:Reg.r10 ~from_:(reg Reg.r4)
            ~below:(reg Reg.r5) (fun () ->
              Builder.add b Reg.r16 (imm array_b) (reg Reg.r10);
              Builder.load b Reg.r15 (reg Reg.r16) 0;
              Builder.add b Reg.r11 (imm array_a) (reg Reg.r10);
              Builder.store b (reg Reg.r15) (reg Reg.r11) 0);
          if use_barrier then Builder.barrier b (imm 7));
      Builder.ret b None)

let stencil_main ~threads =
  Builder.define ~name:"main" ~arity:0 (fun b ->
      Builder.read b Reg.r0;
      (* n *)
      Builder.read b Reg.r1;
      (* phases *)
      Builder.store b (reg Reg.r0) (imm param_n) 0;
      Builder.store b (reg Reg.r1) (imm param_k) 0;
      Builder.store b (imm threads) (imm param_t) 0;
      (* fill A from input *)
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
        (fun () ->
          Builder.read b Reg.r2;
          Builder.add b Reg.r3 (imm array_a) (reg Reg.r10);
          Builder.store b (reg Reg.r2) (reg Reg.r3) 0);
      Builder.barrier_init b (imm 7) (imm threads);
      for w = 0 to threads - 1 do
        Builder.spawn b (Reg.make (32 + w)) "worker" (imm w)
      done;
      for w = 0 to threads - 1 do
        Builder.join b (reg (Reg.make (32 + w)))
      done;
      (* checksum *)
      Builder.movi b Reg.r14 0;
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
        (fun () ->
          Builder.add b Reg.r3 (imm array_a) (reg Reg.r10);
          Builder.load b Reg.r2 (reg Reg.r3) 0;
          Builder.xor b Reg.r14 (reg Reg.r14) (reg Reg.r2));
      Builder.write b (reg Reg.r14);
      Builder.halt b)

let stencil ?(threads = 4) () =
  Program.make [ stencil_main ~threads; stencil_worker ~use_barrier:true ]

let stencil_racy ?(threads = 4) () =
  Program.make [ stencil_main ~threads; stencil_worker ~use_barrier:false ]

let stencil_input ~size ~seed =
  let n = max 8 size in
  Array.concat
    [ [| n; 4 |]; Workload.random_input ~bound:100 n seed ]

(* -- lock-based bank transfers -------------------------------------------- *)

let num_accounts = 8

let bank_worker ~use_locks =
  Builder.define ~name:"worker" ~arity:1 (fun b ->
      (* r0 = seed; LCG-driven transfers *)
      Builder.mov b Reg.r20 (reg Reg.r0);
      Builder.load b Reg.r1 (imm param_n) 0;
      (* transfers per thread *)
      Builder.for_up b ~idx:Reg.r21 ~from_:(imm 0) ~below:(reg Reg.r1)
        (fun () ->
          (* src, dst from the LCG *)
          Builder.mul b Reg.r20 (reg Reg.r20) (imm 1103515245);
          Builder.add b Reg.r20 (reg Reg.r20) (imm 12345);
          Builder.and_ b Reg.r20 (reg Reg.r20) (imm 0x3FFFFFFF);
          Builder.rem b Reg.r2 (reg Reg.r20) (imm num_accounts);
          Builder.shr b Reg.r3 (reg Reg.r20) (imm 8);
          Builder.rem b Reg.r3 (reg Reg.r3) (imm num_accounts);
          Builder.ne b Reg.r4 (reg Reg.r2) (reg Reg.r3);
          Builder.if_nz1 b (reg Reg.r4) (fun () ->
              (* lock in id order to avoid deadlock *)
              (if use_locks then begin
                 Builder.lt b Reg.r5 (reg Reg.r2) (reg Reg.r3);
                 Builder.if_nz b (reg Reg.r5)
                   ~then_:(fun () ->
                     Builder.add b Reg.r6 (reg Reg.r2) (imm 20);
                     Builder.lock b (reg Reg.r6);
                     Builder.add b Reg.r7 (reg Reg.r3) (imm 20);
                     Builder.lock b (reg Reg.r7))
                   ~else_:(fun () ->
                     Builder.add b Reg.r7 (reg Reg.r3) (imm 20);
                     Builder.lock b (reg Reg.r7);
                     Builder.add b Reg.r6 (reg Reg.r2) (imm 20);
                     Builder.lock b (reg Reg.r6))
               end);
              (* move one unit *)
              Builder.add b Reg.r8 (imm accounts_base) (reg Reg.r2);
              Builder.load b Reg.r9 (reg Reg.r8) 0;
              Builder.sub b Reg.r9 (reg Reg.r9) (imm 1);
              Builder.store b (reg Reg.r9) (reg Reg.r8) 0;
              Builder.add b Reg.r10 (imm accounts_base) (reg Reg.r3);
              Builder.load b Reg.r11 (reg Reg.r10) 0;
              Builder.add b Reg.r11 (reg Reg.r11) (imm 1);
              Builder.store b (reg Reg.r11) (reg Reg.r10) 0;
              if use_locks then begin
                Builder.add b Reg.r6 (reg Reg.r2) (imm 20);
                Builder.unlock b (reg Reg.r6);
                Builder.add b Reg.r7 (reg Reg.r3) (imm 20);
                Builder.unlock b (reg Reg.r7)
              end));
      Builder.ret b None)

let bank_main ?(check_total = false) ~threads () =
  Builder.define ~name:"main" ~arity:0 (fun b ->
      Builder.read b Reg.r0;
      (* transfers per thread *)
      Builder.store b (reg Reg.r0) (imm param_n) 0;
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm num_accounts)
        (fun () ->
          Builder.add b Reg.r2 (imm accounts_base) (reg Reg.r10);
          Builder.store b (imm 100) (reg Reg.r2) 0);
      for w = 0 to threads - 1 do
        Builder.spawn b (Reg.make (32 + w)) "worker" (imm (w + 1))
      done;
      for w = 0 to threads - 1 do
        Builder.join b (reg (Reg.make (32 + w)))
      done;
      (* total must be conserved *)
      Builder.movi b Reg.r14 0;
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm num_accounts)
        (fun () ->
          Builder.add b Reg.r2 (imm accounts_base) (reg Reg.r10);
          Builder.load b Reg.r3 (reg Reg.r2) 0;
          Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r3));
      Builder.write b (reg Reg.r14);
      if check_total then begin
        Builder.eq b Reg.r15 (reg Reg.r14) (imm (100 * num_accounts));
        Builder.check b (reg Reg.r15)
      end;
      Builder.halt b)

let bank ?(threads = 4) () =
  Program.make [ bank_main ~threads (); bank_worker ~use_locks:true ]

let bank_racy ?(threads = 4) () =
  Program.make [ bank_main ~threads (); bank_worker ~use_locks:false ]

(** The racy bank with an end-of-run conservation check: the atomicity
    violation becomes an observable fault the avoidance framework can
    capture and dodge by changing scheduling. *)
let bank_racy_checked ?(threads = 4) () =
  Program.make
    [ bank_main ~check_total:true ~threads (); bank_worker ~use_locks:false ]

let bank_input ~size ~seed:_ = [| max 4 size |]

(* -- flag (spin-wait) pipeline --------------------------------------------- *)

(* Producer publishes n items through a one-slot mailbox guarded by a
   spin flag; the consumer spins until the flag is set, consumes, and
   clears the flag.  The loads/stores on [flag_cell] race by design —
   these are the benign synchronisation races a sync-aware race
   detector must recognise. *)
let flag_producer =
  Builder.define ~name:"producer" ~arity:1 (fun b ->
      Builder.load b Reg.r1 (imm param_n) 0;
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
        (fun () ->
          (* wait for the mailbox to be empty *)
          let spin = Builder.fresh_label b "spin_empty" in
          Builder.label b spin;
          Builder.load b Reg.r2 (imm flag_cell) 0;
          Builder.br_nz b (reg Reg.r2) spin;
          (* publish *)
          Builder.mul b Reg.r3 (reg Reg.r10) (imm 7);
          Builder.add b Reg.r3 (reg Reg.r3) (imm 1);
          Builder.store b (reg Reg.r3) (imm data_cell) 0;
          Builder.store b (imm 1) (imm flag_cell) 0);
      Builder.store b (imm 1) (imm done_cell) 0;
      Builder.ret b None)

let flag_consumer =
  Builder.define ~name:"consumer" ~arity:1 (fun b ->
      Builder.load b Reg.r1 (imm param_n) 0;
      Builder.movi b Reg.r14 0;
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
        (fun () ->
          let spin = Builder.fresh_label b "spin_full" in
          Builder.label b spin;
          Builder.load b Reg.r2 (imm flag_cell) 0;
          Builder.br_z b (reg Reg.r2) spin;
          Builder.load b Reg.r3 (imm data_cell) 0;
          Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r3);
          Builder.store b (imm 0) (imm flag_cell) 0);
      Builder.write b (reg Reg.r14);
      Builder.ret b None)

let flag_pipeline () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.store b (reg Reg.r0) (imm param_n) 0;
        Builder.store b (imm 0) (imm flag_cell) 0;
        Builder.store b (imm 0) (imm done_cell) 0;
        Builder.spawn b Reg.r1 "producer" (imm 0);
        Builder.spawn b Reg.r2 "consumer" (imm 0);
        Builder.join b (reg Reg.r1);
        Builder.join b (reg Reg.r2);
        Builder.halt b)
  in
  Program.make [ main; flag_producer; flag_consumer ]

let flag_input ~size ~seed:_ = [| max 2 size |]

(* -- spin-wait (centralized counter) barrier -------------------------------- *)

let spin_counter = 43_000
let spin_sense = 43_001
let partial_base = 43_100

(* Workers compute a partial sum, then synchronise on a sense-reversing
   barrier built from plain loads and stores — the construct that
   livelocks transaction-wrapped monitoring unless conflict resolution
   is synchronisation-aware (paper §2.2). *)
let spin_barrier_worker ~threads ~phases =
  Builder.define ~name:"worker" ~arity:1 (fun b ->
      Builder.mov b Reg.r30 (reg Reg.r0);
      (* my index *)
      Builder.movi b Reg.r31 0;
      (* local sense *)
      Builder.for_up b ~idx:Reg.r21 ~from_:(imm 0) ~below:(imm phases)
        (fun () ->
          (* some per-phase work: accumulate into my partial cell *)
          Builder.add b Reg.r1 (imm partial_base) (reg Reg.r30);
          Builder.load b Reg.r2 (reg Reg.r1) 0;
          Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r21);
          Builder.add b Reg.r2 (reg Reg.r2) (imm 1);
          Builder.store b (reg Reg.r2) (reg Reg.r1) 0;
          (* barrier: flip my sense, increment the counter *)
          Builder.xor b Reg.r31 (reg Reg.r31) (imm 1);
          Builder.load b Reg.r3 (imm spin_counter) 0;
          Builder.add b Reg.r3 (reg Reg.r3) (imm 1);
          Builder.store b (reg Reg.r3) (imm spin_counter) 0;
          Builder.eq b Reg.r4 (reg Reg.r3) (imm threads);
          Builder.if_nz b (reg Reg.r4)
            ~then_:(fun () ->
              (* last arriver resets and releases *)
              Builder.store b (imm 0) (imm spin_counter) 0;
              Builder.store b (reg Reg.r31) (imm spin_sense) 0)
            ~else_:(fun () ->
              (* spin until the sense flips *)
              let spin = Builder.fresh_label b "spin_sense" in
              Builder.label b spin;
              Builder.load b Reg.r5 (imm spin_sense) 0;
              Builder.ne b Reg.r6 (reg Reg.r5) (reg Reg.r31);
              Builder.br_nz b (reg Reg.r6) spin));
      Builder.ret b None)

let spin_barrier ?(threads = 2) ?(phases = 3) () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.store b (imm 0) (imm spin_counter) 0;
        Builder.store b (imm 0) (imm spin_sense) 0;
        for w = 0 to threads - 1 do
          Builder.spawn b (Reg.make (32 + w)) "worker" (imm w)
        done;
        for w = 0 to threads - 1 do
          Builder.join b (reg (Reg.make (32 + w)))
        done;
        (* sum the partials *)
        Builder.movi b Reg.r14 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm threads)
          (fun () ->
            Builder.add b Reg.r2 (imm partial_base) (reg Reg.r10);
            Builder.load b Reg.r3 (reg Reg.r2) 0;
            Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r3));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Program.make [ main; spin_barrier_worker ~threads ~phases ]

(** Expected output of {!spin_barrier}: each worker adds (phase + 1)
    per phase. *)
let spin_barrier_expected ~threads ~phases =
  threads * (phases + (phases * (phases - 1) / 2))

(* -- lock-order deadlock ------------------------------------------------------ *)

(* Two threads acquire the same two locks in opposite orders — the
   classic deadlock, manifesting only under unlucky preemption.  An
   environment-fault scenario for the avoidance framework: coarser
   scheduling makes the window unhittable. *)
let deadlock_worker ~first ~second =
  Builder.define
    ~name:(Fmt.str "worker%d" first)
    ~arity:1
    (fun b ->
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm 40)
        (fun () ->
          Builder.lock b (imm first);
          Builder.lock b (imm second);
          Builder.load b Reg.r2 (imm accounts_base) 0;
          Builder.add b Reg.r2 (reg Reg.r2) (imm 1);
          Builder.store b (reg Reg.r2) (imm accounts_base) 0;
          Builder.unlock b (imm second);
          Builder.unlock b (imm first));
      Builder.ret b None)

let lock_order_deadlock () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.spawn b Reg.r0 "worker1" (imm 0);
        Builder.spawn b Reg.r1 "worker2" (imm 1);
        Builder.join b (reg Reg.r0);
        Builder.join b (reg Reg.r1);
        Builder.load b Reg.r2 (imm accounts_base) 0;
        Builder.write b (reg Reg.r2);
        Builder.halt b)
  in
  Program.make
    [
      main;
      deadlock_worker ~first:1 ~second:2;
      deadlock_worker ~first:2 ~second:1;
    ]
