(** Scientific data-processing pipelines for the lineage experiments
    (paper §3.4).

    Each program turns an input dataset into output records whose
    lineage (the set of contributing input indices) has a different
    shape: clustered windows, scattered subsets, the full input, small
    joins, and maximally overlapping prefixes — the structures the
    roBDD representation exists to exploit. *)

open Dift_isa

type pipeline = {
  name : string;
  description : string;
  program : Program.t;
  input : size:int -> seed:int -> int array;
  expected_lineage : n:int -> input:int array -> int list list;
      (** analytic ground truth: per output, the expected input
          indices (data-flow lineage, matching the engine's data-only
          policy) *)
}

val moving_avg : pipeline
val histogram : pipeline
val reduction : pipeline
val join : pipeline
val prefix_sum : pipeline
val all : pipeline list

(** @raise Invalid_argument for unknown names. *)
val by_name : string -> pipeline
