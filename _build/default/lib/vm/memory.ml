(** Sparse word-addressed memory with a bump heap allocator.

    Addresses below {!heap_base} form the static/global region, freely
    usable by programs.  [Sys Alloc] hands out blocks from the heap
    region and remembers their extents, which lets applications reason
    about heap overflows and lets the avoidance framework pad
    allocations (an "environment patch" in the paper's sense). *)

type block = { base : int; size : int; mutable live : bool }

type t = {
  cells : (int, int) Hashtbl.t;
  blocks : (int, block) Hashtbl.t;  (** keyed by base address *)
  mutable next : int;  (** bump pointer *)
  padding : int;  (** extra slack appended to every allocation *)
}

(** First heap address; everything below is the global region. *)
let heap_base = 1_000_000

let create ?(padding = 0) () =
  { cells = Hashtbl.create 4096; blocks = Hashtbl.create 64;
    next = heap_base; padding }

let read m addr = match Hashtbl.find_opt m.cells addr with
  | Some v -> v
  | None -> 0

let write m addr v =
  if v = 0 then Hashtbl.remove m.cells addr else Hashtbl.replace m.cells addr v

let alloc m size =
  let size = max size 1 in
  let base = m.next in
  (* Padding is slack owned by the block: small overflows land in it
     harmlessly instead of in the neighbour — the avoidance
     framework's heap patch. *)
  let padded = size + m.padding in
  m.next <- m.next + padded + 1;
  Hashtbl.replace m.blocks base { base; size = padded; live = true };
  base

(** [free m base] releases a block; [Error] when [base] is not the
    base address of a live block. *)
let free m base =
  match Hashtbl.find_opt m.blocks base with
  | Some b when b.live ->
      b.live <- false;
      Ok ()
  | Some _ | None -> Error `Invalid_free

(** The live block containing [addr], if any. *)
let block_of m addr =
  (* Linear scan is fine: workloads allocate at most a few thousand
     blocks, and this is only used off the hot path (bounds checking,
     overflow diagnosis). *)
  Hashtbl.fold
    (fun _ b acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if b.live && addr >= b.base && addr < b.base + b.size then Some b
          else None)
    m.blocks None

let in_heap m addr = addr >= heap_base && addr < m.next

(** Number of addresses currently holding a non-zero value. *)
let footprint m = Hashtbl.length m.cells

(** Deep copy, for checkpointing. *)
let snapshot m =
  {
    cells = Hashtbl.copy m.cells;
    blocks =
      (let t = Hashtbl.create (Hashtbl.length m.blocks) in
       Hashtbl.iter (fun k b -> Hashtbl.replace t k { b with base = b.base })
         m.blocks;
       t);
    next = m.next;
    padding = m.padding;
  }
