lib/vm/memory.ml: Hashtbl
