lib/vm/machine.mli: Dift_isa Event Memory Tool
