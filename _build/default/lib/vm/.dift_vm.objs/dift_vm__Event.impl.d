lib/vm/event.ml: Dift_isa Fmt Func Instr Loc
