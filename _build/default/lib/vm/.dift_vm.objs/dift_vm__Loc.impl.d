lib/vm/loc.ml: Dift_isa Fmt Hashtbl Int Map Reg Set Stdlib
