lib/vm/event.mli: Dift_isa Fmt Func Instr Loc
