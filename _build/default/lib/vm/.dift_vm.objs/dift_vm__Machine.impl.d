lib/vm/machine.ml: Array Cost Dift_isa Event Fmt Func Hashtbl Instr List Loc Memory Operand Option Program Random Reg Tool
