lib/vm/loc.mli: Dift_isa Fmt Hashtbl Map Set
