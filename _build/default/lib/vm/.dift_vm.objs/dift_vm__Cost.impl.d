lib/vm/cost.ml:
