lib/vm/tool.ml: Cost Event
