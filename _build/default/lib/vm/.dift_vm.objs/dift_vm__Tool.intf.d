lib/vm/tool.mli: Event
