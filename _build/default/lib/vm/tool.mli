(** The instrumentation-tool interface.

    A tool is what a Pin/Valgrind plugin is to a real binary: a set of
    callbacks invoked by the machine as execution proceeds.  Every
    observer in the reproduction is a tool: the DIFT engines (paper
    §2.1, §3.3, §3.4), the ONTRAC tracer (§2.1), the request logger
    (§2.2) and the race detector (§3.1).

    [dispatch_cost] is the per-instruction overhead the machine
    charges while this tool is attached.  Binary-instrumentation tools
    pay {!Cost.dbi_dispatch}; OS-level observers (checkpoint/logging,
    or a tracer that instruments selectively and charges itself) pass
    [0]. *)

type t = {
  name : string;
  dispatch_cost : int;
  on_exec : Event.exec -> unit;
      (** called after each instruction's effects are applied *)
  on_fault : Event.fault -> unit;  (** called when the machine faults *)
  on_finish : Event.outcome -> unit;
      (** called once, when the run ends *)
}

val make :
  ?dispatch_cost:int ->
  ?on_exec:(Event.exec -> unit) ->
  ?on_fault:(Event.fault -> unit) ->
  ?on_finish:(Event.outcome -> unit) ->
  string ->
  t
