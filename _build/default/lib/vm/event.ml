(** Events observed by instrumentation tools.

    One {!exec} record is produced for every executed instruction; it
    carries everything a DBI tool sees: the dynamic instance identity
    (global step number), the static site (function, pc), the locations
    read and written, the effective memory address for loads/stores,
    and the resolved control-flow target. *)

open Dift_isa

type fault_kind =
  | Div_by_zero
  | Invalid_icall of int  (** bad function id used as call target *)
  | Check_failed  (** a [Sys Check] assertion evaluated to zero *)
  | Invalid_free of int
  | Out_of_bounds of int
      (** heap access outside any live block (only with bounds
          checking enabled) *)

type fault = {
  kind : fault_kind;
  at_step : int;
  at_tid : int;
  at_func : string;
  at_pc : int;
}

(** Why a run ended. *)
type outcome =
  | Halted  (** a thread executed [Halt], or all threads finished *)
  | Faulted of fault
  | Deadlocked  (** live threads remain but none is runnable *)
  | Out_of_steps  (** the [max_steps] budget was exhausted *)
  | Stopped of string  (** a tool requested the stop (e.g. attack detected) *)

type exec = {
  step : int;  (** global dynamic instruction count; unique id *)
  tid : int;
  func : Func.t;
  pc : int;
  instr : Instr.t;
  reads : Loc.t list;
  writes : Loc.t list;
  addr : int;  (** effective address of a load/store, or [-1] *)
  next_pc : int;
      (** pc the thread continues at inside the same function, or [-1]
          when control leaves the function (call/ret/halt/exit) *)
  input_index : int;  (** index of the input word consumed, or [-1] *)
  value : int;  (** primary value produced/written, or [0] *)
}

let is_branch e = match e.instr with Instr.Br _ -> true | _ -> false

let pp_fault_kind ppf = function
  | Div_by_zero -> Fmt.string ppf "division by zero"
  | Invalid_icall id -> Fmt.pf ppf "invalid indirect call (id %d)" id
  | Check_failed -> Fmt.string ppf "check failed"
  | Invalid_free a -> Fmt.pf ppf "invalid free (addr %d)" a
  | Out_of_bounds a -> Fmt.pf ppf "out-of-bounds access (addr %d)" a

let pp_fault ppf f =
  Fmt.pf ppf "%a at step %d (tid %d, %s:%d)" pp_fault_kind f.kind f.at_step
    f.at_tid f.at_func f.at_pc

let pp_outcome ppf = function
  | Halted -> Fmt.string ppf "halted"
  | Faulted f -> Fmt.pf ppf "faulted: %a" pp_fault f
  | Deadlocked -> Fmt.string ppf "deadlocked"
  | Out_of_steps -> Fmt.string ppf "out of steps"
  | Stopped r -> Fmt.pf ppf "stopped: %s" r

let pp_exec ppf e =
  Fmt.pf ppf "#%d t%d %s:%d %a" e.step e.tid e.func.Func.name e.pc Instr.pp
    e.instr
