(** Events observed by instrumentation tools.

    One {!exec} record is produced for every executed instruction; it
    carries everything a DBI tool sees: the dynamic instance identity
    (global step number), the static site (function, pc), the
    locations read and written, the effective memory address for
    loads/stores, and the resolved control-flow target.

    This is also the paper's §2.1 forwarding set — the memory
    addresses/values, input words and control-flow outcomes a main
    core must send to a DIFT helper core because the helper cannot
    reconstruct them from the static code; the multicore runtimes
    ([Dift_multicore.Helper] simulated, [Dift_parallel] real)
    forward exactly these records. *)

open Dift_isa

type fault_kind =
  | Div_by_zero
  | Invalid_icall of int  (** bad function id used as call target *)
  | Check_failed  (** a [Sys Check] assertion evaluated to zero *)
  | Invalid_free of int
  | Out_of_bounds of int
      (** heap access outside any live block (only with bounds
          checking enabled) *)

type fault = {
  kind : fault_kind;
  at_step : int;  (** the faulting dynamic instruction instance *)
  at_tid : int;
  at_func : string;
  at_pc : int;
}

(** Why a run ended. *)
type outcome =
  | Halted  (** a thread executed [Halt], or all threads finished *)
  | Faulted of fault
  | Deadlocked  (** live threads remain but none is runnable *)
  | Out_of_steps  (** the [max_steps] budget was exhausted *)
  | Stopped of string
      (** a tool requested the stop (e.g. attack detected) *)

type exec = {
  step : int;  (** global dynamic instruction count; unique id *)
  tid : int;
  func : Func.t;
  pc : int;
  instr : Instr.t;
  reads : Loc.t list;
  writes : Loc.t list;
  addr : int;  (** effective address of a load/store, or [-1] *)
  next_pc : int;
      (** pc the thread continues at inside the same function, or
          [-1] when control leaves the function *)
  input_index : int;  (** index of the input word consumed, or [-1] *)
  value : int;  (** primary value produced/written, or [0] *)
}

val is_branch : exec -> bool
val pp_fault_kind : fault_kind Fmt.t
val pp_fault : fault Fmt.t
val pp_outcome : outcome Fmt.t
val pp_exec : exec Fmt.t
