(** Storage locations, encoded as integers for fast hashing.

    A location is either a memory word or a register in a specific
    activation frame.  Register files are per-activation (the VM gives
    every call a fresh frame), so a frame serial number plus a register
    index identifies a register globally and no save/restore aliasing
    can pollute dependence tracking.

    Encoding: memory address [a] is [a lsl 1]; register [r] of frame
    serial [s] is [((s * Reg.count + r) lsl 1) lor 1]. *)

open Dift_isa

type t = int

let mem addr =
  if addr < 0 then invalid_arg "Loc.mem: negative address";
  addr lsl 1

let reg ~frame r = (((frame * Reg.count) + Reg.index r) lsl 1) lor 1

let is_mem l = l land 1 = 0
let is_reg l = l land 1 = 1

(** Memory address of a memory location. *)
let addr l =
  if not (is_mem l) then invalid_arg "Loc.addr: not a memory location";
  l lsr 1

(** [(frame_serial, register_index)] of a register location. *)
let frame_reg l =
  if not (is_reg l) then invalid_arg "Loc.frame_reg: not a register";
  let v = l lsr 1 in
  (v / Reg.count, v mod Reg.count)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (l : t) = Hashtbl.hash l

let pp ppf l =
  if is_mem l then Fmt.pf ppf "mem[%d]" (addr l)
  else
    let f, r = frame_reg l in
    Fmt.pf ppf "f%d:r%d" f r

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
