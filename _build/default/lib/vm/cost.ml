(** The cycle cost model.

    All slowdown figures reported by the benchmark harness are ratios
    of modelled cycles.  The constants below were fixed once, from the
    relative costs the underlying papers report for these operations,
    and are never tuned per-experiment (see DESIGN.md §4). *)

(** Cycles charged for interpreting one instruction, uninstrumented. *)
let base_instr = 1

(** Extra dispatch cycles per instruction while any tool is attached —
    the cost of dynamic binary instrumentation itself (code-cache
    lookup, context spill), as in Pin/Valgrind. *)
let dbi_dispatch = 4

(** Recording one dependence record into the ONTRAC in-memory buffer. *)
let ontrac_record = 14

(** Emitting one byte of raw full trace to storage (offline baseline,
    phase 1). *)
let trace_byte = 2

(** Offline postprocessing of one raw trace record into the compacted
    dependence graph (offline baseline, phase 2).  Building the
    whole-execution-trace representation touches each record many
    times (parse, dependence resolution, graph construction, and the
    compaction passes of Zhang & Gupta [18]) — the step that made the
    two-phase pipeline ~540x. *)
let offline_postprocess_record = 150

(** Enqueueing one message to the helper core over a dedicated
    hardware interconnect. *)
let hw_channel_msg = 1

(** Enqueueing one message to the helper core through a shared-memory
    software queue. *)
let sw_channel_msg = 6

(** Helper-core cycles to process one event under the paper's
    hardware-assisted design: the dedicated core runs a compiled
    taint-propagation loop at roughly one event per cycle, so it keeps
    pace with the main core.  The software helper instead pays
    {!inline_taint_propagate} per event. *)
let helper_process_msg = 1

(** Transactional read or write under STM monitoring (ownership-record
    lookup and version check). *)
let stm_access = 8

(** Aborting and retrying a transaction. *)
let stm_abort = 60

(** Logging one event word during checkpointing & logging. *)
let log_event_word = 1

(** Taking one checkpoint, per live memory word copied. *)
let checkpoint_word = 1

(** Propagating taint for one instruction in a single-core inline DIFT
    tool (shadow lookup + combine + store). *)
let inline_taint_propagate = 10

(** Performing one lineage set operation on naive sets, per element
    touched. *)
let lineage_set_element = 1

(** Performing one lineage BDD operation, per unique BDD node visited. *)
let lineage_bdd_node = 2
