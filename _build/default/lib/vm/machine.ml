(** The virtual machine: a multithreaded interpreter for {!Dift_isa}
    programs with an instrumentation-tool interface, deterministic
    seeded scheduling, a replayable schedule/input log, cycle-cost
    accounting and whole-state checkpointing.

    This is the substitute for the dynamic binary instrumentation
    substrate (Pin/Valgrind) used by the paper: tools attached to the
    machine observe exactly the event stream a DBI plugin would. *)

open Dift_isa

type config = {
  seed : int;  (** scheduler PRNG seed *)
  quantum_min : int;  (** min instructions between preemption points *)
  quantum_max : int;
  max_steps : int;  (** step budget before [Out_of_steps] *)
  heap_padding : int;  (** slack added to every allocation *)
  check_bounds : bool;  (** fault on heap accesses outside live blocks *)
  schedule : (int * int) list option;
      (** replay mode: the switch list recorded by a previous run *)
  input_override : (int * int) list;
      (** replay-with-edits: pairs [(index, value)] replacing specific
          input words (the avoidance framework's "malformed request"
          patch) *)
  flip_steps : int list;
      (** dynamic branch instances (by step) whose outcome is inverted —
          the predicate-switching mechanism of §3.1 *)
  value_replacements : (int * int) list;
      (** [(step, v)]: the value produced at dynamic step [step] is
          replaced by [v] — the value-replacement mechanism of §3.1 *)
}

let default_config =
  {
    seed = 42;
    quantum_min = 20;
    quantum_max = 120;
    max_steps = 200_000_000;
    heap_padding = 0;
    check_bounds = false;
    schedule = None;
    input_override = [];
    flip_steps = [];
    value_replacements = [];
  }

type block_resume = Retry | Advance

type status =
  | Runnable
  | Blocked of block_resume
  | Finished

type activation = {
  serial : int;
  func : Func.t;
  mutable pc : int;
  regs : int array;
  ret_dst : Reg.t option;
  caller : activation option;
}

type thread = {
  tid : int;
  mutable act : activation;
  mutable status : status;
}

type mutex = { mutable owner : int option; mutable waiters : int list }

type barrier = {
  mutable parties : int;
  mutable arrived : int;
  mutable waiting : int list;
}

type t = {
  program : Program.t;
  config : config;
  mem : Memory.t;
  mutable threads : thread list;  (** in spawn order *)
  mutable next_tid : int;
  mutable next_serial : int;
  mutexes : (int, mutex) Hashtbl.t;
  barriers : (int, barrier) Hashtbl.t;
  input : int array;
  mutable input_pos : int;
  mutable rev_output : (int * int) list;  (** (step, value) *)
  mutable step_count : int;
  mutable cycles : int;
  mutable tools : Tool.t list;
  rng : Random.State.t;
  mutable current : int;  (** tid currently scheduled *)
  mutable quantum_left : int;
  mutable rev_switches : (int * int) list;  (** (step, tid) choices *)
  mutable replay_sched : (int * int) list;  (** remaining switches *)
  mutable rev_inputs : (int * int * int) list;  (** (step, index, value) *)
  mutable stop_request : string option;
  mutable outcome : Event.outcome option;
  mutable dispatch_cycles : int;
      (** summed per-instruction dispatch cost of the attached tools *)
  mutable step_cost : Event.exec -> int;
      (** base cost of executing one instruction; replay harnesses
          override it to fast-forward log-applied (irrelevant)
          regions *)
}

exception Replay_divergence of string

let fresh_activation m func ~ret_dst ~caller =
  let serial = m.next_serial in
  m.next_serial <- serial + 1;
  { serial; func; pc = 0; regs = Array.make Reg.count 0; ret_dst; caller }

let create ?(config = default_config) program ~input =
  let input =
    if config.input_override = [] then input
    else begin
      let a = Array.copy input in
      List.iter
        (fun (i, v) -> if i >= 0 && i < Array.length a then a.(i) <- v)
        config.input_override;
      a
    end
  in
  let m =
    {
      program;
      config;
      mem = Memory.create ~padding:config.heap_padding ();
      threads = [];
      next_tid = 0;
      next_serial = 0;
      mutexes = Hashtbl.create 16;
      barriers = Hashtbl.create 16;
      input;
      input_pos = 0;
      rev_output = [];
      step_count = 0;
      cycles = 0;
      tools = [];
      rng = Random.State.make [| config.seed |];
      current = 0;
      quantum_left = 0;
      rev_switches = [];
      replay_sched = (match config.schedule with Some s -> s | None -> []);
      rev_inputs = [];
      stop_request = None;
      outcome = None;
      dispatch_cycles = 0;
      step_cost = (fun _ -> Cost.base_instr);
    }
  in
  let main = Program.find program (Program.entry program) in
  let act = fresh_activation m main ~ret_dst:None ~caller:None in
  m.threads <- [ { tid = 0; act; status = Runnable } ];
  m.next_tid <- 1;
  m

let attach m tool =
  m.tools <- m.tools @ [ tool ];
  m.dispatch_cycles <- m.dispatch_cycles + tool.Tool.dispatch_cost

(** Override the per-instruction base cost (replay fast-forwarding). *)
let set_step_cost m f = m.step_cost <- f

(** Charge extra modelled cycles (used by tools for their overhead). *)
let charge m n = m.cycles <- m.cycles + n

let program m = m.program
let memory m = m.mem
let cycles m = m.cycles
let steps m = m.step_count

(** Program output, oldest first, as [(step, value)] pairs. *)
let output m = List.rev m.rev_output

let output_values m = List.map snd (output m)

(** The recorded scheduling choices, oldest first. *)
let schedule_log m = List.rev m.rev_switches

(** The recorded input reads, oldest first: [(step, index, value)]. *)
let input_log m = List.rev m.rev_inputs

(** Ask the machine to stop after the current instruction; the run's
    outcome becomes [Stopped reason].  For tools such as the attack
    detector. *)
let request_stop m reason =
  if m.stop_request = None then m.stop_request <- Some reason

let thread m tid = List.find_opt (fun t -> t.tid = tid) m.threads

let is_replay m = m.config.schedule <> None

(* -- state fingerprinting (for replay determinism tests) -------------- *)

(** A hash of the externally observable machine state: memory contents
    and program output.  Two runs with equal fingerprints behaved
    identically as far as the program semantics is concerned. *)
let fingerprint m =
  let cells = ref [] in
  Hashtbl.iter
    (fun a v -> cells := (a, v) :: !cells)
    m.mem.Memory.cells;
  let cells = List.sort compare !cells in
  Hashtbl.hash (cells, List.rev m.rev_output, m.input_pos)

(* -- operand evaluation ------------------------------------------------ *)

let eval_operand act = function
  | Operand.Imm n -> (n, [])
  | Operand.Reg r -> (act.regs.(Reg.index r), [ Loc.reg ~frame:act.serial r ])

let reg_loc act r = Loc.reg ~frame:act.serial r

(* Value replacement (§3.1): substitute the value produced at a chosen
   dynamic step. *)
let substitute m v =
  if m.config.value_replacements = [] then v
  else
    match List.assoc_opt m.step_count m.config.value_replacements with
    | Some v' -> v'
    | None -> v

(* -- event emission ---------------------------------------------------- *)

let emit m (e : Event.exec) =
  List.iter (fun (t : Tool.t) -> t.Tool.on_exec e) m.tools

let make_event m th ~instr ~reads ~writes ~addr ~next_pc ~input_index ~value
    =
  {
    Event.step = m.step_count;
    tid = th.tid;
    func = th.act.func;
    pc = th.act.pc;
    instr;
    reads;
    writes;
    addr;
    next_pc;
    input_index;
    value;
  }

(* -- faults ------------------------------------------------------------ *)

(* Every call site runs right after the faulting instruction's event
   was emitted (and the step counter advanced), so the faulting
   instance is [step_count - 1]. *)
let fault m th kind =
  let f =
    {
      Event.kind;
      at_step = m.step_count - 1;
      at_tid = th.tid;
      at_func = th.act.func.Func.name;
      at_pc = th.act.pc;
    }
  in
  List.iter (fun (t : Tool.t) -> t.Tool.on_fault f) m.tools;
  m.outcome <- Some (Event.Faulted f)

(* -- thread completion ------------------------------------------------- *)

let finish_thread m th =
  th.status <- Finished;
  (* Joiners blocked on this thread retry their Join and now succeed.
     Only threads blocked *at a Join instruction* are woken; lock and
     barrier waiters keep waiting for their own wake conditions. *)
  List.iter
    (fun t ->
      match t.status with
      | Blocked Retry -> (
          match Func.instr t.act.func t.act.pc with
          | Instr.Sys (Instr.Join _) -> t.status <- Runnable
          | _ -> ())
      | Blocked Advance | Runnable | Finished -> ())
    m.threads

(* -- instruction execution --------------------------------------------- *)

type step_result =
  | Executed
  | Did_block  (** thread could not proceed; nothing was emitted *)

(* Wakes every thread blocked in Retry mode; used after unlocks.  The
   woken threads re-attempt their blocking instruction when next
   scheduled and re-block if the condition still does not hold.  This
   models contended acquisition and keeps wake bookkeeping simple. *)
let wake_retriers m tids =
  List.iter
    (fun t ->
      if List.mem t.tid tids then
        match t.status with
        | Blocked Retry -> t.status <- Runnable
        | Blocked Advance | Runnable | Finished -> ())
    m.threads

let get_mutex m id =
  match Hashtbl.find_opt m.mutexes id with
  | Some mu -> mu
  | None ->
      let mu = { owner = None; waiters = [] } in
      Hashtbl.replace m.mutexes id mu;
      mu

let get_barrier m id =
  match Hashtbl.find_opt m.barriers id with
  | Some b -> b
  | None ->
      let b = { parties = 0; arrived = 0; waiting = [] } in
      Hashtbl.replace m.barriers id b;
      b

(* Executes one instruction of [th].  Returns [Did_block] if the thread
   must wait (no event emitted, pc unchanged), otherwise emits the exec
   event and advances state.  Sets [m.outcome] on halting/faulting. *)
let rec exec_instr m th =
  let act = th.act in
  let ins = Func.instr act.func act.pc in
  let simple ?(reads = []) ?(writes = []) ?(addr = -1) ?(input_index = -1)
      ?(value = 0) ~next_pc () =
    let e =
      make_event m th ~instr:ins ~reads ~writes ~addr ~next_pc ~input_index
        ~value
    in
    m.step_count <- m.step_count + 1;
    m.cycles <- m.cycles + m.step_cost e + m.dispatch_cycles;
    act.pc <- (if next_pc >= 0 then next_pc else act.pc);
    emit m e;
    Executed
  in
  match ins with
  | Instr.Nop -> simple ~next_pc:(act.pc + 1) ()
  | Instr.Mov (d, s) ->
      let v, rl = eval_operand act s in
      let v = substitute m v in
      act.regs.(Reg.index d) <- v;
      simple ~reads:rl ~writes:[ reg_loc act d ] ~value:v
        ~next_pc:(act.pc + 1) ()
  | Instr.Binop (op, d, a, b) -> (
      let va, ra = eval_operand act a in
      let vb, rb = eval_operand act b in
      match Instr.eval_alu op va vb with
      | None ->
          (* Emit the faulting event first so slicing can start from it. *)
          let r = simple ~reads:(ra @ rb) ~next_pc:act.pc () in
          fault m th Event.Div_by_zero;
          r
      | Some v ->
          let v = substitute m v in
          act.regs.(Reg.index d) <- v;
          simple ~reads:(ra @ rb) ~writes:[ reg_loc act d ] ~value:v
            ~next_pc:(act.pc + 1) ())
  | Instr.Cmp (op, d, a, b) ->
      let va, ra = eval_operand act a in
      let vb, rb = eval_operand act b in
      let v = substitute m (Instr.eval_cmp op va vb) in
      act.regs.(Reg.index d) <- v;
      simple ~reads:(ra @ rb) ~writes:[ reg_loc act d ] ~value:v
        ~next_pc:(act.pc + 1) ()
  | Instr.Load (d, base, off) -> (
      let vb, rb = eval_operand act base in
      let addr = vb + off in
      if addr < 0 then begin
        let r = simple ~reads:rb ~next_pc:act.pc () in
        fault m th (Event.Out_of_bounds addr);
        r
      end
      else
        match
          if m.config.check_bounds && Memory.in_heap m.mem addr then
            Memory.block_of m.mem addr
          else Some { Memory.base = 0; size = 0; live = true }
        with
        | None ->
            let r = simple ~reads:rb ~next_pc:act.pc () in
            fault m th (Event.Out_of_bounds addr);
            r
        | Some _ ->
            let v = substitute m (Memory.read m.mem addr) in
            act.regs.(Reg.index d) <- v;
            simple
              ~reads:(rb @ [ Loc.mem addr ])
              ~writes:[ reg_loc act d ] ~addr ~value:v ~next_pc:(act.pc + 1)
              ())
  | Instr.Store (src, base, off) -> (
      let vs, rs = eval_operand act src in
      let vb, rb = eval_operand act base in
      let addr = vb + off in
      if addr < 0 then begin
        let r = simple ~reads:(rs @ rb) ~next_pc:act.pc () in
        fault m th (Event.Out_of_bounds addr);
        r
      end
      else
        match
          if m.config.check_bounds && Memory.in_heap m.mem addr then
            Memory.block_of m.mem addr
          else Some { Memory.base = 0; size = 0; live = true }
        with
        | None ->
            let r = simple ~reads:(rs @ rb) ~next_pc:act.pc () in
            fault m th (Event.Out_of_bounds addr);
            r
        | Some _ ->
            let vs = substitute m vs in
            Memory.write m.mem addr vs;
            simple ~reads:(rs @ rb)
              ~writes:[ Loc.mem addr ]
              ~addr ~value:vs ~next_pc:(act.pc + 1) ())
  | Instr.Jmp t -> simple ~next_pc:t ()
  | Instr.Br (c, t, f) ->
      let v, rl = eval_operand act c in
      let taken = if v <> 0 then t else f in
      let taken =
        if
          m.config.flip_steps <> []
          && List.mem m.step_count m.config.flip_steps
        then if taken = t then f else t
        else taken
      in
      simple ~reads:rl ~value:v ~next_pc:taken ()
  | Instr.Call (fname, ret_dst) ->
      let callee = Program.find m.program fname in
      act.pc <- act.pc + 1;
      (* the event must still report the call site *)
      let site_pc = act.pc - 1 in
      let callee_act = fresh_activation m callee ~ret_dst ~caller:(Some act) in
      let reads = ref [] and writes = ref [] in
      for i = callee.Func.arity - 1 downto 0 do
        callee_act.regs.(i) <- act.regs.(i);
        reads := Loc.reg ~frame:act.serial (Reg.make i) :: !reads;
        writes := Loc.reg ~frame:callee_act.serial (Reg.make i) :: !writes
      done;
      let e =
        {
          Event.step = m.step_count;
          tid = th.tid;
          func = act.func;
          pc = site_pc;
          instr = ins;
          reads = !reads;
          writes = !writes;
          addr = -1;
          next_pc = -1;
          input_index = -1;
          value = 0;
        }
      in
      m.step_count <- m.step_count + 1;
      m.cycles <- m.cycles + m.step_cost e + m.dispatch_cycles;
      th.act <- callee_act;
      emit m e;
      Executed
  | Instr.Icall (fop, ret_dst) -> (
      let fid, rl = eval_operand act fop in
      match Program.func_of_id m.program fid with
      | None ->
          let r = simple ~reads:rl ~value:fid ~next_pc:act.pc () in
          fault m th (Event.Invalid_icall fid);
          r
      | Some callee ->
          act.pc <- act.pc + 1;
          let site_pc = act.pc - 1 in
          let callee_act =
            fresh_activation m callee ~ret_dst ~caller:(Some act)
          in
          (* reads: the arguments in order, then the target operand's
             registers; writes: the callee's argument registers in the
             same order — tools rely on this pairwise alignment. *)
          let reads = ref rl and writes = ref [] in
          for i = callee.Func.arity - 1 downto 0 do
            callee_act.regs.(i) <- act.regs.(i);
            reads := Loc.reg ~frame:act.serial (Reg.make i) :: !reads;
            writes := Loc.reg ~frame:callee_act.serial (Reg.make i) :: !writes
          done;
          let e =
            {
              Event.step = m.step_count;
              tid = th.tid;
              func = act.func;
              pc = site_pc;
              instr = ins;
              reads = !reads;
              writes = !writes;
              addr = -1;
              next_pc = -1;
              input_index = -1;
              value = fid;
            }
          in
          m.step_count <- m.step_count + 1;
          m.cycles <- m.cycles + m.step_cost e + m.dispatch_cycles;
          th.act <- callee_act;
          emit m e;
          Executed)
  | Instr.Ret src -> (
      let v, rl =
        match src with
        | Some o -> eval_operand act o
        | None -> (0, [])
      in
      match act.caller with
      | None ->
          let r = simple ~reads:rl ~value:v ~next_pc:act.pc () in
          finish_thread m th;
          r
      | Some caller ->
          let writes =
            match act.ret_dst with
            | Some d ->
                caller.regs.(Reg.index d) <- v;
                [ Loc.reg ~frame:caller.serial d ]
            | None -> []
          in
          let r = simple ~reads:rl ~writes ~value:v ~next_pc:act.pc () in
          th.act <- caller;
          r)
  | Instr.Halt ->
      let r = simple ~next_pc:act.pc () in
      m.outcome <- Some Event.Halted;
      r
  | Instr.Sys s -> exec_syscall m th act ins s

and exec_syscall m th act ins s =
  let simple ?(reads = []) ?(writes = []) ?(input_index = -1) ?(value = 0)
      ?(next_pc = act.pc + 1) () =
    let e =
      make_event m th ~instr:ins ~reads ~writes ~addr:(-1) ~next_pc
        ~input_index ~value
    in
    m.step_count <- m.step_count + 1;
    m.cycles <- m.cycles + m.step_cost e + m.dispatch_cycles;
    act.pc <- next_pc;
    emit m e;
    Executed
  in
  match s with
  | Instr.Read d ->
      let idx = m.input_pos in
      let v, input_index =
        if idx < Array.length m.input then begin
          m.input_pos <- idx + 1;
          (m.input.(idx), idx)
        end
        else (-1, -1)
      in
      act.regs.(Reg.index d) <- v;
      if input_index >= 0 then
        m.rev_inputs <- (m.step_count, input_index, v) :: m.rev_inputs;
      simple ~writes:[ reg_loc act d ] ~input_index ~value:v ()
  | Instr.Write o ->
      let v, rl = eval_operand act o in
      m.rev_output <- (m.step_count, v) :: m.rev_output;
      simple ~reads:rl ~value:v ()
  | Instr.Spawn (d, fname, argo) ->
      let v, rl = eval_operand act argo in
      let callee = Program.find m.program fname in
      let new_act = fresh_activation m callee ~ret_dst:None ~caller:None in
      new_act.regs.(0) <- v;
      let tid = m.next_tid in
      m.next_tid <- tid + 1;
      m.threads <- m.threads @ [ { tid; act = new_act; status = Runnable } ];
      act.regs.(Reg.index d) <- tid;
      simple ~reads:rl
        ~writes:
          [ reg_loc act d; Loc.reg ~frame:new_act.serial (Reg.make 0) ]
        ~value:tid ()
  | Instr.Join o -> (
      let v, rl = eval_operand act o in
      match thread m v with
      | Some t when t.status <> Finished ->
          th.status <- Blocked Retry;
          Did_block
      | Some _ | None -> simple ~reads:rl ~value:v ())
  | Instr.Lock o ->
      let v, rl = eval_operand act o in
      let mu = get_mutex m v in
      (match mu.owner with
      | None ->
          mu.owner <- Some th.tid;
          ignore (simple ~reads:rl ~value:v ())
      | Some owner when owner = th.tid -> ignore (simple ~reads:rl ~value:v ())
      | Some _ ->
          mu.waiters <- mu.waiters @ [ th.tid ];
          th.status <- Blocked Retry);
      if th.status = Runnable || th.status = Finished then Executed
      else Did_block
  | Instr.Unlock o ->
      let v, rl = eval_operand act o in
      let mu = get_mutex m v in
      if mu.owner = Some th.tid then begin
        mu.owner <- None;
        let ws = mu.waiters in
        mu.waiters <- [];
        wake_retriers m ws
      end;
      simple ~reads:rl ~value:v ()
  | Instr.Barrier_init (ido, po) ->
      let id, r1 = eval_operand act ido in
      let parties, r2 = eval_operand act po in
      let b = get_barrier m id in
      b.parties <- parties;
      b.arrived <- 0;
      simple ~reads:(r1 @ r2) ~value:id ()
  | Instr.Barrier ido ->
      let id, rl = eval_operand act ido in
      let b = get_barrier m id in
      b.arrived <- b.arrived + 1;
      if b.arrived >= b.parties then begin
        b.arrived <- 0;
        let ws = b.waiting in
        b.waiting <- [];
        (* Barrier waiters have already counted: wake them *past* the
           barrier instruction. *)
        List.iter
          (fun wtid ->
            match thread m wtid with
            | Some t -> (
                match t.status with
                | Blocked Advance ->
                    t.act.pc <- t.act.pc + 1;
                    t.status <- Runnable
                | Blocked Retry | Runnable | Finished -> ())
            | None -> ())
          ws;
        simple ~reads:rl ~value:id ()
      end
      else begin
        b.waiting <- b.waiting @ [ th.tid ];
        th.status <- Blocked Advance;
        (* The arrival itself is observable: emit the event, but leave
           the thread blocked at this pc (it is advanced on release). *)
        let e =
          make_event m th ~instr:ins ~reads:rl ~writes:[] ~addr:(-1)
            ~next_pc:act.pc ~input_index:(-1) ~value:id
        in
        m.step_count <- m.step_count + 1;
        m.cycles <- m.cycles + m.step_cost e + m.dispatch_cycles;
        emit m e;
        Executed
      end
  | Instr.Alloc (d, so) ->
      let size, rl = eval_operand act so in
      let base = Memory.alloc m.mem size in
      act.regs.(Reg.index d) <- base;
      simple ~reads:rl ~writes:[ reg_loc act d ] ~value:base ()
  | Instr.Free o -> (
      let v, rl = eval_operand act o in
      match Memory.free m.mem v with
      | Ok () -> simple ~reads:rl ~value:v ()
      | Error `Invalid_free ->
          let r = simple ~reads:rl ~value:v ~next_pc:act.pc () in
          fault m th (Event.Invalid_free v);
          r)
  | Instr.Tid d ->
      act.regs.(Reg.index d) <- th.tid;
      simple ~writes:[ reg_loc act d ] ~value:th.tid ()
  | Instr.Check o ->
      let v, rl = eval_operand act o in
      if v = 0 then begin
        let r = simple ~reads:rl ~value:v ~next_pc:act.pc () in
        fault m th Event.Check_failed;
        r
      end
      else simple ~reads:rl ~value:v ()
  | Instr.Mark (_, o) ->
      let v, rl = eval_operand act o in
      simple ~reads:rl ~value:v ()
  | Instr.Exit ->
      let r = simple ~next_pc:act.pc () in
      finish_thread m th;
      r

(* -- scheduling -------------------------------------------------------- *)

let runnable_threads m =
  List.filter (fun t -> t.status = Runnable) m.threads

let record_switch m tid =
  m.rev_switches <- (m.step_count, tid) :: m.rev_switches;
  m.current <- tid;
  m.quantum_left <-
    m.config.quantum_min
    + Random.State.int m.rng
        (max 1 (m.config.quantum_max - m.config.quantum_min))

(* Choose the thread to run next.  In recording mode: seeded random
   choice among runnables, recorded for replay.  In replay mode: follow
   the recorded switch list. *)
let schedule m =
  if is_replay m then begin
    (* Apply all switches recorded at this step. *)
    let rec apply () =
      match m.replay_sched with
      | (s, tid) :: rest when s = m.step_count ->
          m.current <- tid;
          m.replay_sched <- rest;
          apply ()
      | _ -> ()
    in
    apply ();
    match thread m m.current with
    | Some t when t.status = Runnable -> Some t
    | Some _ | None -> (
        (* The recorded thread cannot run here: in a faithful replay
           this only happens transiently when the recording switched
           away at the same step; fall back to any runnable thread
           only if the log has a future switch, otherwise diverge. *)
        match runnable_threads m with
        | [] -> None
        | t :: _ -> (
            match m.replay_sched with
            | _ :: _ -> Some t
            | [] ->
                raise
                  (Replay_divergence
                     (Fmt.str "no runnable thread matches log at step %d"
                        m.step_count))))
  end
  else begin
    let need_new =
      m.quantum_left <= 0
      ||
      match thread m m.current with
      | Some t -> t.status <> Runnable
      | None -> true
    in
    if need_new then begin
      match runnable_threads m with
      | [] -> ()
      | rs ->
          let pick = List.nth rs (Random.State.int m.rng (List.length rs)) in
          record_switch m pick.tid
    end;
    match thread m m.current with
    | Some t when t.status = Runnable -> Some t
    | Some _ | None -> None
  end

(* -- main loop --------------------------------------------------------- *)

let finish m outcome =
  m.outcome <- Some outcome;
  List.iter (fun (t : Tool.t) -> t.Tool.on_finish outcome) m.tools;
  outcome

let run m =
  if m.outcome <> None then invalid_arg "Machine.run: already ran";
  (* Initial scheduling choice. *)
  if not (is_replay m) then record_switch m 0;
  let rec loop () =
    match m.outcome with
    | Some o -> o
    | None ->
        if m.step_count >= m.config.max_steps then Event.Out_of_steps
        else begin
          match m.stop_request with
          | Some r -> Event.Stopped r
          | None -> (
              match schedule m with
              | None ->
                  if List.for_all (fun t -> t.status = Finished) m.threads
                  then Event.Halted
                  else Event.Deadlocked
              | Some th -> (
                  match exec_instr m th with
                  | Executed ->
                      m.quantum_left <- m.quantum_left - 1;
                      loop ()
                  | Did_block -> loop ()))
        end
  in
  let outcome = loop () in
  finish m outcome

(* -- checkpointing ------------------------------------------------------ *)

type checkpoint = {
  cp_mem : Memory.t;
  cp_threads : thread list;
  cp_next_tid : int;
  cp_next_serial : int;
  cp_mutexes : (int, mutex) Hashtbl.t;
  cp_barriers : (int, barrier) Hashtbl.t;
  cp_input_pos : int;
  cp_rev_output : (int * int) list;
  cp_step : int;
  cp_words : int;  (** memory words captured, for cost accounting *)
}

let rec copy_activation cache act =
  match Hashtbl.find_opt cache act.serial with
  | Some a -> a
  | None ->
      let caller = Option.map (copy_activation cache) act.caller in
      let a = { act with regs = Array.copy act.regs; caller } in
      Hashtbl.replace cache act.serial a;
      a

let copy_threads threads =
  let cache = Hashtbl.create 64 in
  List.map
    (fun t -> { t with act = copy_activation cache t.act })
    threads

(** Capture the entire mutable state of the machine.  The modelled cost
    ({!Cost.checkpoint_word} per live memory word) is charged to the
    machine's cycle counter. *)
let checkpoint m =
  let words = Memory.footprint m.mem in
  charge m (words * Cost.checkpoint_word);
  {
    cp_mem = Memory.snapshot m.mem;
    cp_threads = copy_threads m.threads;
    cp_next_tid = m.next_tid;
    cp_next_serial = m.next_serial;
    cp_mutexes =
      (let h = Hashtbl.create 16 in
       Hashtbl.iter
         (fun k mu -> Hashtbl.replace h k { mu with owner = mu.owner })
         m.mutexes;
       h);
    cp_barriers =
      (let h = Hashtbl.create 16 in
       Hashtbl.iter
         (fun k b -> Hashtbl.replace h k { b with parties = b.parties })
         m.barriers;
       h);
    cp_input_pos = m.input_pos;
    cp_rev_output = m.rev_output;
    cp_step = m.step_count;
    cp_words = words;
  }

(** Build a fresh machine whose state is the checkpoint's.  The new
    machine shares nothing mutable with the checkpoint (it can be
    restored from repeatedly) and may use a different [config] — e.g.
    replay mode with a recorded schedule suffix. *)
let of_checkpoint ?(config = default_config) program ~input cp =
  let m = create ~config program ~input in
  let fresh = Memory.snapshot cp.cp_mem in
  Hashtbl.reset m.mem.Memory.cells;
  Hashtbl.iter (Hashtbl.replace m.mem.Memory.cells) fresh.Memory.cells;
  Hashtbl.reset m.mem.Memory.blocks;
  Hashtbl.iter (Hashtbl.replace m.mem.Memory.blocks) fresh.Memory.blocks;
  m.mem.Memory.next <- fresh.Memory.next;
  m.threads <- copy_threads cp.cp_threads;
  m.next_tid <- cp.cp_next_tid;
  m.next_serial <- cp.cp_next_serial;
  Hashtbl.reset m.mutexes;
  Hashtbl.iter
    (fun k mu -> Hashtbl.replace m.mutexes k { mu with owner = mu.owner })
    cp.cp_mutexes;
  Hashtbl.reset m.barriers;
  Hashtbl.iter
    (fun k b -> Hashtbl.replace m.barriers k { b with parties = b.parties })
    cp.cp_barriers;
  m.input_pos <- cp.cp_input_pos;
  m.rev_output <- cp.cp_rev_output;
  m.step_count <- cp.cp_step;
  m

let checkpoint_words cp = cp.cp_words
let checkpoint_step cp = cp.cp_step
