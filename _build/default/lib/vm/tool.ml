(** The instrumentation-tool interface.

    A tool is what a Pin/Valgrind plugin is to a real binary: a set of
    callbacks invoked by the machine as execution proceeds.

    [dispatch_cost] is the per-instruction overhead the machine charges
    while this tool is attached.  Binary-instrumentation tools pay
    {!Cost.dbi_dispatch}; OS-level observers (checkpoint/logging, or a
    tracer that instruments selectively and charges itself) pass [0]. *)

type t = {
  name : string;
  dispatch_cost : int;
  on_exec : Event.exec -> unit;
      (** called after each instruction's effects are applied *)
  on_fault : Event.fault -> unit;  (** called when the machine faults *)
  on_finish : Event.outcome -> unit;  (** called once, when the run ends *)
}

let make ?(dispatch_cost = Cost.dbi_dispatch) ?(on_exec = fun _ -> ())
    ?(on_fault = fun _ -> ()) ?(on_finish = fun _ -> ()) name =
  { name; dispatch_cost; on_exec; on_fault; on_finish }
