lib/bdd/bdd.ml: Fmt Hashtbl List
