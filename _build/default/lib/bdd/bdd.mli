(** Reduced ordered binary decision diagrams with hash-consing.

    Used to represent lineage sets compactly (paper §3.4, after Zhang
    et al., VLDB'07): a set of input indices is the characteristic
    function of the binary encoding of the indices.  Because lineage
    sets overlap heavily and cluster on neighbouring indices, the
    shared sub-DAGs make the roBDD representation dramatically smaller
    than explicit sets.

    Nodes are hash-consed per {!manager}, so structural equality is
    pointer equality and the memory cost of a family of sets is the
    number of unique nodes. *)

type t

type manager

val manager : unit -> manager

val zero : t
val one : t

(** Number of unique nodes ever created in the manager's table
    (including dead intermediates; see {!family_node_count} for live
    accounting). *)
val unique_nodes : manager -> int

(** Cumulative unique nodes visited by set operations — the cost
    measure the cycle model charges for. *)
val op_nodes_visited : manager -> int

val reset_op_counter : manager -> unit

(** Number of bits in the element encoding (elements range over
    [0, 2^bits)). *)
val bits : int

(** The set containing exactly one element.
    @raise Invalid_argument out of range. *)
val singleton : manager -> int -> t

val union : manager -> t -> t -> t
val inter : manager -> t -> t -> t
val diff : manager -> t -> t -> t

(** Structural equality is physical equality thanks to hash-consing. *)
val equal : t -> t -> bool

val is_empty : t -> bool
val mem : int -> t -> bool
val cardinal : t -> int

(** Elements in ascending order. *)
val elements : t -> int list

(** Unique nodes reachable from this set. *)
val node_count : t -> int

(** Unique nodes reachable from any set in the family — the live
    memory footprint of a collection of lineage sets, counting shared
    structure once. *)
val family_node_count : t list -> int

val of_list : manager -> int list -> t
val pp : t Fmt.t
