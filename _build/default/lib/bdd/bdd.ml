(** Reduced ordered binary decision diagrams with hash-consing.

    Used to represent lineage sets compactly (paper §3.4, after Zhang
    et al., VLDB'07): a set of input indices is the characteristic
    function of the binary encoding of the indices.  Because lineage
    sets overlap heavily and cluster on neighbouring indices, the
    shared sub-DAGs make the roBDD representation dramatically smaller
    than explicit sets.

    Nodes are hash-consed in a global table, so structural equality is
    pointer equality and the memory cost of a family of sets is the
    number of *unique* nodes, which is exactly what the lineage memory
    accounting measures. *)

type t =
  | Zero
  | One
  | Node of { id : int; var : int; lo : t; hi : t }

let id = function Zero -> 0 | One -> 1 | Node { id; _ } -> id

(* Hash-consing table: (var, lo_id, hi_id) -> node. *)
module Key = struct
  type t = int * int * int

  let equal (a, b, c) (x, y, z) = a = x && b = y && c = z
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type manager = {
  unique : t Tbl.t;
  mutable next_id : int;
  (* memoisation caches for the binary operations *)
  and_cache : (int * int, t) Hashtbl.t;
  or_cache : (int * int, t) Hashtbl.t;
  diff_cache : (int * int, t) Hashtbl.t;
  mutable op_nodes_visited : int;
      (** cumulative unique nodes visited by operations — the cost
          measure the cycle model charges for *)
}

let manager () =
  {
    unique = Tbl.create 4096;
    next_id = 2;
    and_cache = Hashtbl.create 4096;
    or_cache = Hashtbl.create 4096;
    diff_cache = Hashtbl.create 4096;
    op_nodes_visited = 0;
  }

(** Unique (hash-consed) node constructor with the reduction rule. *)
let mk man v lo hi =
  if lo == hi then lo
  else begin
    let key = (v, id lo, id hi) in
    match Tbl.find_opt man.unique key with
    | Some n -> n
    | None ->
        let n = Node { id = man.next_id; var = v; lo; hi } in
        man.next_id <- man.next_id + 1;
        Tbl.replace man.unique key n;
        n
  end

let zero = Zero
let one = One

(** Number of live unique nodes ever created (size of the unique
    table). *)
let unique_nodes man = Tbl.length man.unique

let op_nodes_visited man = man.op_nodes_visited
let reset_op_counter man = man.op_nodes_visited <- 0

(* -- set encoding --------------------------------------------------------- *)

(** Number of bits used to encode element indices (8K distinct
    elements).  Shallow encodings matter: every set pays the full path
    depth, so excess bits linearly inflate the node count and wash out
    the sharing the representation exists for. *)
let bits = 13

(** The BDD containing exactly the element [x] (variables test bits
    from most significant, so neighbouring indices share long
    prefixes — the clustering the paper exploits). *)
let singleton man x =
  if x < 0 || x >= 1 lsl bits then invalid_arg "Bdd.singleton: out of range";
  let rec build v =
    if v = bits then One
    else
      let bit = (x lsr (bits - 1 - v)) land 1 in
      let sub = build (v + 1) in
      if bit = 1 then mk man v Zero sub else mk man v sub Zero
  in
  build 0

let rec union man a b =
  man.op_nodes_visited <- man.op_nodes_visited + 1;
  match a, b with
  | One, _ | _, One -> One
  | Zero, x | x, Zero -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key = (min na.id nb.id, max na.id nb.id) in
        match Hashtbl.find_opt man.or_cache key with
        | Some r -> r
        | None ->
            let v = min na.var nb.var in
            let alo, ahi = if na.var = v then na.lo, na.hi else a, a in
            let blo, bhi = if nb.var = v then nb.lo, nb.hi else b, b in
            let r = mk man v (union man alo blo) (union man ahi bhi) in
            Hashtbl.replace man.or_cache key r;
            r
      end

let rec inter man a b =
  man.op_nodes_visited <- man.op_nodes_visited + 1;
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, x | x, One -> x
  | Node na, Node nb ->
      if a == b then a
      else begin
        let key = (min na.id nb.id, max na.id nb.id) in
        match Hashtbl.find_opt man.and_cache key with
        | Some r -> r
        | None ->
            let v = min na.var nb.var in
            let alo, ahi = if na.var = v then na.lo, na.hi else a, a in
            let blo, bhi = if nb.var = v then nb.lo, nb.hi else b, b in
            let r = mk man v (inter man alo blo) (inter man ahi bhi) in
            Hashtbl.replace man.and_cache key r;
            r
      end

let rec diff man a b =
  man.op_nodes_visited <- man.op_nodes_visited + 1;
  match a, b with
  | Zero, _ -> Zero
  | x, Zero -> x
  | _, One -> Zero
  | One, Node nb ->
      (* complements of partial cubes appear only transiently; expand
         One as a full node over b's variable *)
      mk man nb.var (diff man One nb.lo) (diff man One nb.hi)
  | Node na, Node nb ->
      if a == b then Zero
      else begin
        let key = (na.id, nb.id) in
        match Hashtbl.find_opt man.diff_cache key with
        | Some r -> r
        | None ->
            let v = min na.var nb.var in
            let alo, ahi = if na.var = v then na.lo, na.hi else a, a in
            let blo, bhi = if nb.var = v then nb.lo, nb.hi else b, b in
            let r = mk man v (diff man alo blo) (diff man ahi bhi) in
            Hashtbl.replace man.diff_cache key r;
            r
      end

(** Structural equality is physical equality thanks to hash-consing. *)
let equal (a : t) (b : t) = a == b

let is_empty t = t == Zero

(** Membership test: walk the path of [x]'s bits. *)
let mem x t =
  let rec go v t =
    match t with
    | Zero -> false
    | One -> true
    | Node n ->
        if n.var > v then go (v + 1) t
        else
          let bit = (x lsr (bits - 1 - v)) land 1 in
          go (v + 1) (if bit = 1 then n.hi else n.lo)
  in
  if x < 0 || x >= 1 lsl bits then false else go 0 t

(** Cardinality of the encoded set. *)
let cardinal t =
  let memo = Hashtbl.create 64 in
  let rec count v t =
    match t with
    | Zero -> 0
    | One -> 1 lsl (bits - v)
    | Node n -> (
        let key = (v, n.id) in
        match Hashtbl.find_opt memo key with
        | Some c -> c
        | None ->
            let c =
              if n.var > v then 2 * count (v + 1) t
              else count (v + 1) n.lo + count (v + 1) n.hi
            in
            Hashtbl.replace memo key c;
            c)
  in
  count 0 t

(** Enumerate the elements (ascending). *)
let elements t =
  let acc = ref [] in
  let rec go v prefix t =
    match t with
    | Zero -> ()
    | One ->
        if v = bits then acc := prefix :: !acc
        else begin
          (* all completions — should not occur for set encodings
             built from singletons, but handle it totally *)
          go (v + 1) (prefix lsl 1) t;
          go (v + 1) ((prefix lsl 1) lor 1) t
        end
    | Node n ->
        if n.var > v then begin
          go (v + 1) (prefix * 2) t;
          go (v + 1) ((prefix * 2) + 1) t
        end
        else begin
          go (v + 1) (prefix * 2) n.lo;
          go (v + 1) ((prefix * 2) + 1) n.hi
        end
  in
  (* prefix accumulates bits most-significant first; at One with v =
     bits the prefix is the element *)
  go 0 0 t;
  List.sort compare !acc

(** Number of unique nodes reachable from [t] — the memory footprint
    of this particular set (shared nodes counted once here; across a
    family use {!unique_nodes} on the manager). *)
let node_count t =
  let seen = Hashtbl.create 64 in
  let rec go t =
    match t with
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.replace seen n.id ();
          go n.lo;
          go n.hi
        end
  in
  go t;
  Hashtbl.length seen

(** Unique nodes reachable from any set in the family — the live
    memory footprint of a collection of lineage sets, counting shared
    structure once.  (The manager's unique table also retains dead
    intermediates, so {!unique_nodes} overstates live memory.) *)
let family_node_count ts =
  let seen = Hashtbl.create 256 in
  let rec go t =
    match t with
    | Zero | One -> ()
    | Node n ->
        if not (Hashtbl.mem seen n.id) then begin
          Hashtbl.replace seen n.id ();
          go n.lo;
          go n.hi
        end
  in
  List.iter go ts;
  Hashtbl.length seen

let of_list man xs =
  List.fold_left (fun acc x -> union man acc (singleton man x)) Zero xs

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (elements t)
