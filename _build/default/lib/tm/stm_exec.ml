(** Transactional execution for runtime monitoring (paper §2.2).

    To monitor a parallel application, every application memory access
    and its shadow-metadata update must be applied atomically; the
    paper's approach wraps chunks of execution in transactions.  This
    module is a chunked software-TM executor for ISA programs: each
    thread executes transactions of up to [chunk] instructions with
    eager word-level conflict detection (reader sets + single writer),
    in-place writes with an undo log, and full register/frame rollback
    on abort.  Every application access is accompanied by a shadow
    access inside the same transaction — the monitoring work the TM
    exists to protect.

    Synchronisation built from plain loads and stores (spin flags,
    counter barriers) interacts catastrophically with naive conflict
    resolution: a spinning reader perpetually owns the flag it waits
    on, or two arrivers perpetually abort each other — the livelocks
    of the paper.  The [Sync_aware] policy dynamically recognises
    sync variables (an address a single transaction reads over and
    over) and resolves conflicts on them in favour of progress. *)

open Dift_isa
open Dift_vm

type policy =
  | Abort_requester
      (** the thread that detects the conflict aborts itself *)
  | Abort_owner  (** the current owner(s) are aborted *)
  | Sync_aware
      (** like [Abort_requester], except on a recognised sync variable
          where the writer wins (spinning readers are aborted and
          re-read the new value) *)

let policy_to_string = function
  | Abort_requester -> "abort-requester"
  | Abort_owner -> "abort-owner"
  | Sync_aware -> "sync-aware"

type config = {
  policy : policy;
  max_txn : int;
      (** safety bound on transaction length; real commit points are
          irrevocable operations (I/O, thread management), matching
          monitors that delimit transactions at events they know
          about — a spin-wait contains none, which is the root of the
          livelock *)
  spin_threshold : int;
      (** reads of one address within one transaction before it is
          classified as a sync variable *)
  max_ticks : int;
  livelock_window : int;
      (** ticks without any commit before declaring livelock *)
  starvation_threshold : int;
      (** consecutive aborts of one thread without a commit before
          declaring livelock *)
  monitor : bool;  (** perform shadow-metadata accesses *)
}

let default_config =
  {
    policy = Sync_aware;
    max_txn = 10_000;
    spin_threshold = 8;
    max_ticks = 2_000_000;
    livelock_window = 200_000;
    starvation_threshold = 300;
    monitor = true;
  }

type outcome =
  | Completed
  | Livelocked
  | Fault of string
  | Tick_budget_exhausted

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable ticks : int;
  mutable cycles : int;
  mutable committed_instrs : int;
  mutable wasted_instrs : int;  (** instructions rolled back *)
  mutable sync_vars : int;
  mutable outcome : outcome;
}

(** Monitoring overhead: modelled cycles per usefully executed
    instruction. *)
let overhead s =
  float_of_int s.cycles /. float_of_int (max 1 s.committed_instrs)

(* -- executor state ------------------------------------------------------- *)

type frame = {
  func : Func.t;
  mutable pc : int;
  mutable regs : int array;
  ret_dst : Reg.t option;
}

type txn = {
  mutable t_active : bool;
  mutable t_len : int;
  mutable t_undo : (int * int) list;  (** (addr, old value) *)
  mutable t_accessed : int list;  (** addresses with ownership taken *)
  mutable t_read_counts : (int, int) Hashtbl.t;
  mutable t_saved : frame list;  (** deep frame snapshot at txn start *)
  mutable t_split_pending : bool;
      (** sync-aware: commit right after the current instruction *)
}

type status = Running | Waiting_join of int | Waiting_lock of int | Done

type thread = {
  tid : int;
  mutable frames : frame list;
  mutable status : status;
  txn : txn;
  mutable consecutive_aborts : int;
}

type owner = { mutable readers : int list; mutable writer : int option }

type t = {
  program : Program.t;
  config : config;
  mem : (int, int) Hashtbl.t;
  owners : (int, owner) Hashtbl.t;
  sync_addrs : (int, unit) Hashtbl.t;
  mutable threads : thread list;
  mutable next_tid : int;
  lock_owners : (int, int) Hashtbl.t;  (** lock id -> owner tid *)
  input : int array;
  mutable input_pos : int;
  mutable rev_output : int list;
  stats : stats;
  mutable last_commit_tick : int;
  mutable halted : bool;
  mutable fault : string option;
}

exception Abort_self

let shadow_offset = 10_000_000

let create ?(config = default_config) program ~input =
  let t =
    {
      program;
      config;
      mem = Hashtbl.create 4096;
      owners = Hashtbl.create 1024;
      sync_addrs = Hashtbl.create 16;
      threads = [];
      next_tid = 0;
      lock_owners = Hashtbl.create 8;
      input;
      input_pos = 0;
      rev_output = [];
      stats =
        {
          commits = 0;
          aborts = 0;
          ticks = 0;
          cycles = 0;
          committed_instrs = 0;
          wasted_instrs = 0;
          sync_vars = 0;
          outcome = Completed;
        };
      last_commit_tick = 0;
      halted = false;
      fault = None;
    }
  in
  let main = Program.find program (Program.entry program) in
  let frame =
    { func = main; pc = 0; regs = Array.make Reg.count 0; ret_dst = None }
  in
  t.threads <-
    [
      {
        tid = 0;
        frames = [ frame ];
        status = Running;
        txn =
          {
            t_active = false;
            t_len = 0;
            t_undo = [];
            t_accessed = [];
            t_read_counts = Hashtbl.create 16;
            t_saved = [];
            t_split_pending = false;
          };
        consecutive_aborts = 0;
      };
    ];
  t.next_tid <- 1;
  t

let copy_frames frames =
  List.map (fun f -> { f with regs = Array.copy f.regs }) frames

let owner_of t addr =
  match Hashtbl.find_opt t.owners addr with
  | Some o -> o
  | None ->
      let o = { readers = []; writer = None } in
      Hashtbl.replace t.owners addr o;
      o

(* -- transaction lifecycle -------------------------------------------------- *)

let begin_txn _t th =
  let txn = th.txn in
  txn.t_active <- true;
  txn.t_len <- 0;
  txn.t_undo <- [];
  txn.t_accessed <- [];
  Hashtbl.reset txn.t_read_counts;
  txn.t_saved <- copy_frames th.frames;
  txn.t_split_pending <- false

let release_ownerships t th =
  List.iter
    (fun addr ->
      match Hashtbl.find_opt t.owners addr with
      | None -> ()
      | Some o ->
          o.readers <- List.filter (fun r -> r <> th.tid) o.readers;
          if o.writer = Some th.tid then o.writer <- None)
    th.txn.t_accessed

let commit_txn t th =
  if th.txn.t_active then begin
    release_ownerships t th;
    t.stats.commits <- t.stats.commits + 1;
    t.stats.committed_instrs <- t.stats.committed_instrs + th.txn.t_len;
    t.last_commit_tick <- t.stats.ticks;
    th.consecutive_aborts <- 0;
    th.txn.t_active <- false;
    th.txn.t_split_pending <- false
  end

let abort_txn t th =
  if th.txn.t_active then begin
    (* undo memory writes in reverse order *)
    List.iter (fun (addr, old) -> Hashtbl.replace t.mem addr old)
      th.txn.t_undo;
    release_ownerships t th;
    th.frames <- copy_frames th.txn.t_saved;
    t.stats.aborts <- t.stats.aborts + 1;
    t.stats.wasted_instrs <- t.stats.wasted_instrs + th.txn.t_len;
    t.stats.cycles <- t.stats.cycles + Cost.stm_abort;
    th.consecutive_aborts <- th.consecutive_aborts + 1;
    th.txn.t_active <- false;
    th.txn.t_split_pending <- false
  end

(* -- transactional memory access --------------------------------------------- *)

let note_read t th addr =
  let txn = th.txn in
  let c =
    match Hashtbl.find_opt txn.t_read_counts addr with
    | Some c -> c
    | None -> 0
  in
  Hashtbl.replace txn.t_read_counts addr (c + 1);
  if c + 1 >= t.config.spin_threshold && not (Hashtbl.mem t.sync_addrs addr)
  then begin
    Hashtbl.replace t.sync_addrs addr ();
    t.stats.sync_vars <- t.stats.sync_vars + 1
  end;
  (* Sync-aware: an access to a recognised sync variable is a
     transaction boundary — the spinner must not keep the variable
     owned across iterations, and a release must become visible. *)
  if t.config.policy = Sync_aware && Hashtbl.mem t.sync_addrs addr then
    txn.t_split_pending <- true

(* Resolve a conflict per policy: raises [Abort_self] or returns the
   owners to abort. *)
let resolve t addr ~owners ~is_write =
  match t.config.policy with
  | Abort_requester -> raise Abort_self
  | Abort_owner -> owners
  | Sync_aware ->
      if Hashtbl.mem t.sync_addrs addr then
        if is_write then owners (* writer wins: release the spinners *)
        else raise Abort_self (* spinning reader retries *)
      else raise Abort_self

let find_thread t tid = List.find (fun th -> th.tid = tid) t.threads

let tread t th addr =
  t.stats.cycles <- t.stats.cycles + Cost.stm_access;
  let o = owner_of t addr in
  (match o.writer with
  | Some w when w <> th.tid ->
      let doomed = resolve t addr ~owners:[ w ] ~is_write:false in
      List.iter (fun tid -> abort_txn t (find_thread t tid)) doomed
  | Some _ | None -> ());
  if not (List.mem th.tid o.readers) then begin
    o.readers <- th.tid :: o.readers;
    th.txn.t_accessed <- addr :: th.txn.t_accessed
  end;
  note_read t th addr;
  match Hashtbl.find_opt t.mem addr with Some v -> v | None -> 0

let twrite t th addr v =
  t.stats.cycles <- t.stats.cycles + Cost.stm_access;
  let o = owner_of t addr in
  let others =
    (match o.writer with Some w when w <> th.tid -> [ w ] | _ -> [])
    @ List.filter (fun r -> r <> th.tid) o.readers
  in
  if others <> [] then begin
    let doomed = resolve t addr ~owners:others ~is_write:true in
    List.iter (fun tid -> abort_txn t (find_thread t tid)) doomed
  end;
  if o.writer <> Some th.tid then begin
    o.writer <- Some th.tid;
    if not (List.mem addr th.txn.t_accessed) then
      th.txn.t_accessed <- addr :: th.txn.t_accessed
  end;
  let old = match Hashtbl.find_opt t.mem addr with Some v -> v | None -> 0 in
  th.txn.t_undo <- (addr, old) :: th.txn.t_undo;
  Hashtbl.replace t.mem addr v;
  if t.config.policy = Sync_aware && Hashtbl.mem t.sync_addrs addr then
    th.txn.t_split_pending <- true

(* Application access + shadow-metadata access, atomically in the same
   transaction (the monitoring the TM protects). *)
let app_read t th addr =
  let v = tread t th addr in
  if t.config.monitor then ignore (tread t th (addr + shadow_offset));
  v

let app_write t th addr v =
  twrite t th addr v;
  if t.config.monitor then twrite t th (addr + shadow_offset) th.tid

(* -- instruction execution ---------------------------------------------------- *)

let eval th (f : frame) = function
  | Operand.Imm n -> n
  | Operand.Reg r ->
      ignore th;
      f.regs.(Reg.index r)

exception Machine_fault of string

(* Commit the current transaction and run [k] outside any transaction
   (irrevocable operations: I/O, thread management). *)
let irrevocably t th k =
  (* the irrevocable instruction itself is accounted separately, not as
     part of the committed transaction *)
  th.txn.t_len <- max 0 (th.txn.t_len - 1);
  commit_txn t th;
  k ();
  t.stats.committed_instrs <- t.stats.committed_instrs + 1

let exec_one t th =
  let txn = th.txn in
  if not txn.t_active then begin_txn t th;
  let f = List.hd th.frames in
  let ins = Func.instr f.func f.pc in
  t.stats.cycles <- t.stats.cycles + Cost.base_instr;
  txn.t_len <- txn.t_len + 1;
  (try
     match ins with
     | Instr.Nop -> f.pc <- f.pc + 1
     | Instr.Mov (d, s) ->
         f.regs.(Reg.index d) <- eval th f s;
         f.pc <- f.pc + 1
     | Instr.Binop (op, d, a, b) -> (
         match Instr.eval_alu op (eval th f a) (eval th f b) with
         | Some v ->
             f.regs.(Reg.index d) <- v;
             f.pc <- f.pc + 1
         | None -> raise (Machine_fault "division by zero"))
     | Instr.Cmp (op, d, a, b) ->
         f.regs.(Reg.index d) <- Instr.eval_cmp op (eval th f a) (eval th f b);
         f.pc <- f.pc + 1
     | Instr.Load (d, base, off) ->
         let addr = eval th f base + off in
         f.regs.(Reg.index d) <- app_read t th addr;
         f.pc <- f.pc + 1
     | Instr.Store (src, base, off) ->
         let addr = eval th f base + off in
         app_write t th addr (eval th f src);
         f.pc <- f.pc + 1
     | Instr.Jmp target -> f.pc <- target
     | Instr.Br (c, taken, fall) ->
         f.pc <- (if eval th f c <> 0 then taken else fall)
     | Instr.Call (fname, ret_dst) ->
         let callee = Program.find t.program fname in
         f.pc <- f.pc + 1;
         let nf =
           {
             func = callee;
             pc = 0;
             regs = Array.make Reg.count 0;
             ret_dst;
           }
         in
         for i = 0 to callee.Func.arity - 1 do
           nf.regs.(i) <- f.regs.(i)
         done;
         th.frames <- nf :: th.frames
     | Instr.Icall (fop, ret_dst) -> (
         match Program.func_of_id t.program (eval th f fop) with
         | None -> raise (Machine_fault "invalid icall")
         | Some callee ->
             f.pc <- f.pc + 1;
             let nf =
               { func = callee; pc = 0; regs = Array.make Reg.count 0;
                 ret_dst }
             in
             for i = 0 to callee.Func.arity - 1 do
               nf.regs.(i) <- f.regs.(i)
             done;
             th.frames <- nf :: th.frames)
     | Instr.Ret src -> (
         let v = match src with Some o -> eval th f o | None -> 0 in
         match th.frames with
         | [ _ ] ->
             commit_txn t th;
             th.status <- Done
         | callee :: (caller :: _ as rest) ->
             (match callee.ret_dst with
             | Some d -> caller.regs.(Reg.index d) <- v
             | None -> ());
             th.frames <- rest
         | [] -> raise (Machine_fault "ret with no frame"))
     | Instr.Halt ->
         commit_txn t th;
         t.halted <- true
     | Instr.Sys s -> (
         match s with
         | Instr.Read d ->
             irrevocably t th (fun () ->
                 let v =
                   if t.input_pos < Array.length t.input then begin
                     let v = t.input.(t.input_pos) in
                     t.input_pos <- t.input_pos + 1;
                     v
                   end
                   else -1
                 in
                 f.regs.(Reg.index d) <- v;
                 f.pc <- f.pc + 1)
         | Instr.Write o ->
             let v = eval th f o in
             irrevocably t th (fun () ->
                 t.rev_output <- v :: t.rev_output;
                 f.pc <- f.pc + 1)
         | Instr.Spawn (d, fname, argo) ->
             let arg = eval th f argo in
             irrevocably t th (fun () ->
                 let callee = Program.find t.program fname in
                 let nf =
                   { func = callee; pc = 0;
                     regs = Array.make Reg.count 0; ret_dst = None }
                 in
                 nf.regs.(0) <- arg;
                 let tid = t.next_tid in
                 t.next_tid <- tid + 1;
                 t.threads <-
                   t.threads
                   @ [
                       {
                         tid;
                         frames = [ nf ];
                         status = Running;
                         txn =
                           {
                             t_active = false;
                             t_len = 0;
                             t_undo = [];
                             t_accessed = [];
                             t_read_counts = Hashtbl.create 16;
                             t_saved = [];
                             t_split_pending = false;
                           };
                         consecutive_aborts = 0;
                       };
                     ];
                 f.regs.(Reg.index d) <- tid;
                 f.pc <- f.pc + 1)
         | Instr.Join o ->
             let target = eval th f o in
             irrevocably t th (fun () ->
                 match
                   List.find_opt (fun x -> x.tid = target) t.threads
                 with
                 | Some x when x.status <> Done ->
                     th.status <- Waiting_join target
                 | Some _ | None -> f.pc <- f.pc + 1)
         | Instr.Tid d ->
             f.regs.(Reg.index d) <- th.tid;
             f.pc <- f.pc + 1
         | Instr.Check o ->
             if eval th f o = 0 then raise (Machine_fault "check failed")
             else f.pc <- f.pc + 1
         | Instr.Mark (_, _) -> f.pc <- f.pc + 1
         | Instr.Exit ->
             commit_txn t th;
             th.status <- Done
         | Instr.Lock o ->
             (* OS-level locks are irrevocable: commit, then acquire
                or wait.  Monitored code may freely mix them with
                transactions — it is *user-level* spin sync that the
                TM cannot see. *)
             let id = eval th f o in
             irrevocably t th (fun () ->
                 match Hashtbl.find_opt t.lock_owners id with
                 | None ->
                     Hashtbl.replace t.lock_owners id th.tid;
                     f.pc <- f.pc + 1
                 | Some owner when owner = th.tid -> f.pc <- f.pc + 1
                 | Some _ -> th.status <- Waiting_lock id)
         | Instr.Unlock o ->
             let id = eval th f o in
             irrevocably t th (fun () ->
                 if Hashtbl.find_opt t.lock_owners id = Some th.tid then begin
                   Hashtbl.remove t.lock_owners id;
                   List.iter
                     (fun other ->
                       match other.status with
                       | Waiting_lock wid when wid = id ->
                           other.status <- Running
                       | _ -> ())
                     t.threads
                 end;
                 f.pc <- f.pc + 1)
         | Instr.Barrier_init _ | Instr.Barrier _ | Instr.Alloc _
         | Instr.Free _ ->
             raise
               (Machine_fault
                  "TM executor: OS barriers/heap not supported \
                   (workloads use spin synchronisation and static \
                   memory)"))
   with
  | Abort_self -> abort_txn t th
  | Machine_fault msg ->
      t.fault <- Some msg;
      t.halted <- true);
  if txn.t_active && (txn.t_len >= t.config.max_txn || txn.t_split_pending)
  then commit_txn t th

(* -- main loop ----------------------------------------------------------------- *)

let wake_joiners t =
  List.iter
    (fun th ->
      match th.status with
      | Waiting_join target -> (
          match List.find_opt (fun x -> x.tid = target) t.threads with
          | Some x when x.status = Done ->
              let f = List.hd th.frames in
              f.pc <- f.pc + 1;
              th.status <- Running
          | Some _ | None -> ())
      | Running | Waiting_lock _ | Done -> ())
    t.threads

let run t =
  let s = t.stats in
  let rec loop () =
    if t.halted then ()
    else if s.ticks >= t.config.max_ticks then
      s.outcome <- Tick_budget_exhausted
    else if s.ticks - t.last_commit_tick > t.config.livelock_window then
      s.outcome <- Livelocked
    else if
      List.exists
        (fun th -> th.consecutive_aborts > t.config.starvation_threshold)
        t.threads
    then s.outcome <- Livelocked
    else begin
      wake_joiners t;
      let runnable =
        List.filter (fun th -> th.status = Running) t.threads
      in
      if runnable = [] then begin
        if List.for_all (fun th -> th.status = Done) t.threads then ()
        else s.outcome <- Livelocked
      end
      else begin
        List.iter
          (fun th ->
            if (not t.halted) && th.status = Running then begin
              s.ticks <- s.ticks + 1;
              exec_one t th
            end)
          runnable;
        loop ()
      end
    end
  in
  loop ();
  (match t.fault with
  | Some msg -> s.outcome <- Fault msg
  | None -> ());
  s

let output t = List.rev t.rev_output
let stats t = t.stats
