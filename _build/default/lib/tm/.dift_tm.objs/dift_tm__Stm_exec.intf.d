lib/tm/stm_exec.mli: Dift_isa Program
