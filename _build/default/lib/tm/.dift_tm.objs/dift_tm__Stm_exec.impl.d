lib/tm/stm_exec.ml: Array Cost Dift_isa Dift_vm Func Hashtbl Instr List Operand Program Reg
