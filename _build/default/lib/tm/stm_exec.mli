(** Transactional execution for runtime monitoring (paper §2.2).

    A chunked software-TM executor for ISA programs: each thread
    executes transactions with eager word-level conflict detection
    (reader sets + single writer), in-place writes with an undo log,
    and full register/frame rollback on abort.  Every application
    access is accompanied by a shadow-metadata access inside the same
    transaction — the monitoring work the TM exists to protect.

    Transactions end at irrevocable operations (I/O, thread
    management) and a large safety bound, matching monitors that
    delimit transactions at events they know about.  A spin-wait
    contains no such event — the root of the livelocks the paper
    describes; the [Sync_aware] policy dynamically recognises sync
    variables, splits transactions at them, and lets writers win. *)

open Dift_isa

type policy =
  | Abort_requester
      (** the thread that detects the conflict aborts itself *)
  | Abort_owner  (** the current owner(s) are aborted *)
  | Sync_aware
      (** like [Abort_requester], except at a recognised sync variable
          where the writer wins and transactions split *)

val policy_to_string : policy -> string

type config = {
  policy : policy;
  max_txn : int;  (** safety bound on transaction length *)
  spin_threshold : int;
      (** reads of one address within one transaction before it is
          classified as a sync variable *)
  max_ticks : int;
  livelock_window : int;
      (** ticks without any commit before declaring livelock *)
  starvation_threshold : int;
      (** consecutive aborts of one thread without a commit before
          declaring livelock *)
  monitor : bool;  (** perform shadow-metadata accesses *)
}

val default_config : config

type outcome =
  | Completed
  | Livelocked
  | Fault of string
  | Tick_budget_exhausted

type stats = {
  mutable commits : int;
  mutable aborts : int;
  mutable ticks : int;
  mutable cycles : int;
  mutable committed_instrs : int;
  mutable wasted_instrs : int;  (** instructions rolled back *)
  mutable sync_vars : int;
  mutable outcome : outcome;
}

(** Monitoring overhead: modelled cycles per usefully executed
    instruction. *)
val overhead : stats -> float

type t

val create : ?config:config -> Program.t -> input:int array -> t

(** Run to completion, livelock detection, fault, or tick budget. *)
val run : t -> stats

(** Program output, oldest first. *)
val output : t -> int list

val stats : t -> stats
