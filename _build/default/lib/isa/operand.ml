(** Instruction operands: a register or an immediate word. *)

type t =
  | Reg of Reg.t
  | Imm of int

let reg r = Reg r
let imm n = Imm n

let equal a b =
  match a, b with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm n1, Imm n2 -> n1 = n2
  | Reg _, Imm _ | Imm _, Reg _ -> false

(** Registers read by this operand (empty for immediates). *)
let regs = function
  | Reg r -> [ r ]
  | Imm _ -> []

let pp ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm n -> Fmt.pf ppf "#%d" n
