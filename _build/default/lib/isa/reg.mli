(** Machine registers.

    The ISA exposes a flat file of general-purpose registers per
    thread.  By convention [r0 .. r7] carry call arguments and [r0]
    carries the return value.  The virtual machine gives every call a
    fresh register frame, so programs never spill registers for
    control reasons. *)

type t = private int

(** Number of general-purpose registers in a thread context. *)
val count : int

(** Registers [r0 ..] used to pass call arguments. *)
val arg_count : int

(** [make i] is register [i].
    @raise Invalid_argument when [i] is outside [0, count). *)
val make : int -> t

(** Index of a register within the file. *)
val index : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
val to_string : t -> string

(** Common names used by the builder and the workloads. *)

val r0 : t
val r1 : t
val r2 : t
val r3 : t
val r4 : t
val r5 : t
val r6 : t
val r7 : t
val r8 : t
val r9 : t
val r10 : t
val r11 : t
val r12 : t
val r13 : t
val r14 : t
val r15 : t
val r16 : t
val r17 : t
val r18 : t
val r19 : t
val r20 : t
val r21 : t
val r30 : t
val r31 : t
