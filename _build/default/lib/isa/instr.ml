(** The instruction set.

    A small RISC-like ISA sufficient to express the paper's workloads:
    ALU operations, loads/stores, conditional branches with explicit
    taken/fallthrough targets (which makes CFG construction trivial),
    direct and indirect calls, and a family of "syscalls" covering
    input/output, threading, synchronisation and heap management — the
    same event surface a dynamic binary instrumentation tool observes
    on a real binary. *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** traps on division by zero *)
  | Rem  (** traps on division by zero *)
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp_op =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** System calls. These are the boundary between the program and its
    environment; DIFT sources and several sinks live here. *)
type syscall =
  | Read of Reg.t
      (** [dst <- next input word]; yields [-1] when input is exhausted.
          This is the canonical taint source. *)
  | Write of Operand.t  (** append a word to the program output *)
  | Spawn of Reg.t * string * Operand.t
      (** [tid_dst <- spawn f(arg)]: start a new thread running the
          named function with one argument in [r0]. *)
  | Join of Operand.t  (** block until the given thread terminates *)
  | Lock of Operand.t  (** acquire mutex (blocking) *)
  | Unlock of Operand.t  (** release mutex *)
  | Barrier_init of Operand.t * Operand.t
      (** [Barrier_init (id, parties)]: arm barrier [id] for [parties]
          participants. *)
  | Barrier of Operand.t  (** wait on barrier *)
  | Alloc of Reg.t * Operand.t
      (** [dst <- address of a fresh heap block of the given size] *)
  | Free of Operand.t  (** release a heap block by base address *)
  | Tid of Reg.t  (** [dst <- current thread id] *)
  | Check of Operand.t
      (** program-level assertion: raises a fault when the operand
          evaluates to zero.  Used to model observable failures. *)
  | Mark of int * Operand.t
      (** [Mark (channel, value)]: semantically a no-op, but visible to
          tools and to the event logger.  Workloads use it to announce
          request boundaries and coarse resource accesses — the
          syscall-level information a checkpointing/logging system
          records cheaply. *)
  | Exit  (** terminate the current thread *)

type t =
  | Nop
  | Mov of Reg.t * Operand.t
  | Binop of alu_op * Reg.t * Operand.t * Operand.t
  | Cmp of cmp_op * Reg.t * Operand.t * Operand.t
      (** [dst <- 1] if the comparison holds, else [0] *)
  | Load of Reg.t * Operand.t * int
      (** [Load (dst, base, off)]: [dst <- mem\[base + off\]] *)
  | Store of Operand.t * Operand.t * int
      (** [Store (src, base, off)]: [mem\[base + off\] <- src] *)
  | Jmp of int  (** unconditional jump to instruction index *)
  | Br of Operand.t * int * int
      (** [Br (cond, taken, fallthrough)]: go to [taken] when [cond]
          is non-zero, else to [fallthrough]. *)
  | Call of string * Reg.t option
      (** direct call; arguments are in [r0..]; the optional register
          receives the callee's return value. *)
  | Icall of Operand.t * Reg.t option
      (** indirect call through a function id (see {!Program.func_id});
          the canonical control-flow hijack sink. *)
  | Ret of Operand.t option
  | Sys of syscall
  | Halt  (** stop the whole machine *)

let alu_op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmp_op_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

(** Evaluate an ALU operation on two words.  Division and remainder by
    zero are reported to the caller as [None] (machine fault). *)
let eval_alu op a b =
  match op with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Rem -> if b = 0 then None else Some (a mod b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)
  | Shl ->
      let s = b land 63 in
      Some (if s >= 63 then 0 else a lsl s)
  | Shr ->
      let s = b land 63 in
      Some (if s >= 63 then (if a < 0 then -1 else 0) else a asr s)

let eval_cmp op a b =
  let holds =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if holds then 1 else 0

(** Registers read by an instruction (before execution). *)
let uses = function
  | Nop | Halt | Jmp _ -> []
  | Mov (_, src) -> Operand.regs src
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> Operand.regs a @ Operand.regs b
  | Load (_, base, _) -> Operand.regs base
  | Store (src, base, _) -> Operand.regs src @ Operand.regs base
  | Br (c, _, _) -> Operand.regs c
  | Call (_, _) -> []
  | Icall (f, _) -> Operand.regs f
  | Ret src -> ( match src with Some o -> Operand.regs o | None -> [])
  | Sys s -> (
      match s with
      | Read _ | Tid _ | Exit -> []
      | Write o | Join o | Lock o | Unlock o | Barrier o | Free o | Check o
      | Mark (_, o) ->
          Operand.regs o
      | Spawn (_, _, arg) -> Operand.regs arg
      | Barrier_init (a, b) -> Operand.regs a @ Operand.regs b
      | Alloc (_, size) -> Operand.regs size)

(** Register defined (written) by an instruction, if any. *)
let def = function
  | Mov (d, _) | Binop (_, d, _, _) | Cmp (_, d, _, _) | Load (d, _, _) ->
      Some d
  | Call (_, d) | Icall (_, d) -> d
  | Sys (Read d) | Sys (Spawn (d, _, _)) | Sys (Alloc (d, _)) | Sys (Tid d)
    ->
      Some d
  | Nop | Store _ | Jmp _ | Br _ | Ret _ | Halt
  | Sys
      ( Write _ | Join _ | Lock _ | Unlock _ | Barrier_init _ | Barrier _
      | Free _ | Check _ | Mark _ | Exit ) ->
      None

(** True for instructions that terminate a basic block. *)
let is_terminator = function
  | Jmp _ | Br _ | Ret _ | Halt | Sys Exit -> true
  | Nop | Mov _ | Binop _ | Cmp _ | Load _ | Store _ | Call _ | Icall _
  | Sys _ ->
      false

let pp_syscall ppf = function
  | Read d -> Fmt.pf ppf "read %a" Reg.pp d
  | Write o -> Fmt.pf ppf "write %a" Operand.pp o
  | Spawn (d, f, a) -> Fmt.pf ppf "%a <- spawn %s(%a)" Reg.pp d f Operand.pp a
  | Join o -> Fmt.pf ppf "join %a" Operand.pp o
  | Lock o -> Fmt.pf ppf "lock %a" Operand.pp o
  | Unlock o -> Fmt.pf ppf "unlock %a" Operand.pp o
  | Barrier_init (i, n) ->
      Fmt.pf ppf "barrier_init %a %a" Operand.pp i Operand.pp n
  | Barrier o -> Fmt.pf ppf "barrier %a" Operand.pp o
  | Alloc (d, s) -> Fmt.pf ppf "%a <- alloc %a" Reg.pp d Operand.pp s
  | Free o -> Fmt.pf ppf "free %a" Operand.pp o
  | Tid d -> Fmt.pf ppf "%a <- tid" Reg.pp d
  | Check o -> Fmt.pf ppf "check %a" Operand.pp o
  | Mark (c, v) -> Fmt.pf ppf "mark %d %a" c Operand.pp v
  | Exit -> Fmt.pf ppf "exit"

let pp ppf = function
  | Nop -> Fmt.pf ppf "nop"
  | Mov (d, s) -> Fmt.pf ppf "%a <- %a" Reg.pp d Operand.pp s
  | Binop (op, d, a, b) ->
      Fmt.pf ppf "%a <- %s %a %a" Reg.pp d (alu_op_to_string op) Operand.pp a
        Operand.pp b
  | Cmp (op, d, a, b) ->
      Fmt.pf ppf "%a <- %s %a %a" Reg.pp d (cmp_op_to_string op) Operand.pp a
        Operand.pp b
  | Load (d, b, off) -> Fmt.pf ppf "%a <- mem[%a + %d]" Reg.pp d Operand.pp b off
  | Store (s, b, off) ->
      Fmt.pf ppf "mem[%a + %d] <- %a" Operand.pp b off Operand.pp s
  | Jmp t -> Fmt.pf ppf "jmp @%d" t
  | Br (c, t, f) -> Fmt.pf ppf "br %a ? @%d : @%d" Operand.pp c t f
  | Call (f, Some d) -> Fmt.pf ppf "%a <- call %s" Reg.pp d f
  | Call (f, None) -> Fmt.pf ppf "call %s" f
  | Icall (f, Some d) -> Fmt.pf ppf "%a <- icall %a" Reg.pp d Operand.pp f
  | Icall (f, None) -> Fmt.pf ppf "icall %a" Operand.pp f
  | Ret (Some o) -> Fmt.pf ppf "ret %a" Operand.pp o
  | Ret None -> Fmt.pf ppf "ret"
  | Sys s -> pp_syscall ppf s
  | Halt -> Fmt.pf ppf "halt"

let to_string i = Fmt.str "%a" pp i
