(** A function: a name, an argument count and a flat array of
    instructions with resolved (index-based) control-flow targets. *)

type t = {
  name : string;
  arity : int;  (** number of arguments expected in [r0 ..] *)
  body : Instr.t array;
}

(** [make ~name ~arity body] validates every control-flow target.
    @raise Invalid_argument on an empty body or an out-of-range
    target. *)
val make : name:string -> arity:int -> Instr.t array -> t

(** Number of instructions. *)
val length : t -> int

(** [instr f pc] is the instruction at index [pc]. *)
val instr : t -> int -> Instr.t

val pp : t Fmt.t
