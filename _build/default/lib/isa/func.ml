(** A function: a name, an argument count and a flat array of
    instructions with resolved (index-based) control-flow targets. *)

type t = {
  name : string;
  arity : int;  (** number of arguments expected in [r0 ..] *)
  body : Instr.t array;
}

let make ~name ~arity body =
  if Array.length body = 0 then invalid_arg "Func.make: empty body";
  (* Validate that every control-flow target is in range, so the VM can
     dispense with bounds checks in its hot loop. *)
  let n = Array.length body in
  let check_target t =
    if t < 0 || t >= n then
      invalid_arg
        (Fmt.str "Func.make: %s: branch target %d out of range [0,%d)" name t
           n)
  in
  Array.iter
    (fun i ->
      match i with
      | Instr.Jmp t -> check_target t
      | Instr.Br (_, t, f) ->
          check_target t;
          check_target f
      | _ -> ())
    body;
  { name; arity; body }

let length f = Array.length f.body

let instr f pc = f.body.(pc)

let pp ppf f =
  Fmt.pf ppf "@[<v>func %s/%d:@," f.name f.arity;
  Array.iteri (fun i ins -> Fmt.pf ppf "  %3d: %a@," i Instr.pp ins) f.body;
  Fmt.pf ppf "@]"
