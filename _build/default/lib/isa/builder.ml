(** Embedded assembler.

    Workloads are written against this builder rather than raw
    {!Instr.t} arrays: it provides symbolic labels (resolved to
    instruction indices at {!build} time), automatic fallthrough
    targets for conditional branches, and a handful of structured
    helpers.  One builder produces one function. *)

type target =
  | To_label of string
  | To_next  (** resolves to the next instruction index *)

type pending =
  | P_instr of Instr.t
  | P_jmp of target
  | P_br of Operand.t * target * target

type t = {
  name : string;
  arity : int;
  mutable rev_code : pending list;
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable next_fresh : int;
}

let create ~name ~arity =
  { name; arity; rev_code = []; len = 0; labels = Hashtbl.create 16;
    next_fresh = 0 }

let emit b p =
  b.rev_code <- p :: b.rev_code;
  b.len <- b.len + 1

(** Attach a label to the next emitted instruction. *)
let label b l =
  if Hashtbl.mem b.labels l then
    invalid_arg (Fmt.str "Builder.label: duplicate label %s in %s" l b.name);
  Hashtbl.replace b.labels l b.len

(** Index of the next instruction to be emitted.  Workloads use this to
    record the site of a deliberately injected fault. *)
let here b = b.len

(** A fresh label name with the given stem, unique within the builder. *)
let fresh_label b stem =
  let l = Fmt.str "%s__%d" stem b.next_fresh in
  b.next_fresh <- b.next_fresh + 1;
  l

(* -- plain instructions ------------------------------------------------ *)

let instr b i = emit b (P_instr i)
let nop b = instr b Instr.Nop
let mov b d s = instr b (Instr.Mov (d, s))
let movi b d n = instr b (Instr.Mov (d, Operand.Imm n))

let binop b op d x y = instr b (Instr.Binop (op, d, x, y))
let add b d x y = binop b Instr.Add d x y
let sub b d x y = binop b Instr.Sub d x y
let mul b d x y = binop b Instr.Mul d x y
let div b d x y = binop b Instr.Div d x y
let rem b d x y = binop b Instr.Rem d x y
let and_ b d x y = binop b Instr.And d x y
let or_ b d x y = binop b Instr.Or d x y
let xor b d x y = binop b Instr.Xor d x y
let shl b d x y = binop b Instr.Shl d x y
let shr b d x y = binop b Instr.Shr d x y

let cmp b op d x y = instr b (Instr.Cmp (op, d, x, y))
let eq b d x y = cmp b Instr.Eq d x y
let ne b d x y = cmp b Instr.Ne d x y
let lt b d x y = cmp b Instr.Lt d x y
let le b d x y = cmp b Instr.Le d x y
let gt b d x y = cmp b Instr.Gt d x y
let ge b d x y = cmp b Instr.Ge d x y

let load b d base off = instr b (Instr.Load (d, base, off))
let store b src base off = instr b (Instr.Store (src, base, off))

let call b f ~ret = instr b (Instr.Call (f, ret))
let icall b f ~ret = instr b (Instr.Icall (f, ret))
let ret b o = instr b (Instr.Ret o)
let halt b = instr b Instr.Halt

let sys b s = instr b (Instr.Sys s)
let read b d = sys b (Instr.Read d)
let write b o = sys b (Instr.Write o)
let spawn b d f arg = sys b (Instr.Spawn (d, f, arg))
let join b o = sys b (Instr.Join o)
let lock b o = sys b (Instr.Lock o)
let unlock b o = sys b (Instr.Unlock o)
let barrier_init b id parties = sys b (Instr.Barrier_init (id, parties))
let barrier b id = sys b (Instr.Barrier id)
let alloc b d size = sys b (Instr.Alloc (d, size))
let free b o = sys b (Instr.Free o)
let tid b d = sys b (Instr.Tid d)
let check b o = sys b (Instr.Check o)
let mark b c v = sys b (Instr.Mark (c, v))
let exit_ b = sys b Instr.Exit

(* -- control flow ------------------------------------------------------ *)

let jmp b l = emit b (P_jmp (To_label l))

(** Branch to [l] when the operand is non-zero, else fall through. *)
let br_nz b c l = emit b (P_br (c, To_label l, To_next))

(** Branch to [l] when the operand is zero, else fall through. *)
let br_z b c l = emit b (P_br (c, To_next, To_label l))

(** Branch to [taken] / [fallthrough] labels explicitly. *)
let br b c ~taken ~fallthrough =
  emit b (P_br (c, To_label taken, To_label fallthrough))

(* -- structured helpers ------------------------------------------------ *)

(** [while_ b ~cond body]: emits a loop.  [cond] must emit code leaving
    its truth value as an operand it returns; the loop runs while that
    operand is non-zero. *)
let while_ b ~cond body =
  let head = fresh_label b "while_head" in
  let exit = fresh_label b "while_exit" in
  label b head;
  let c = cond () in
  br_z b c exit;
  body ();
  jmp b head;
  label b exit

(** [for_up b ~idx ~from_ ~below body]: counted loop with [idx] ranging
    over [from_ .. below-1].  [body] receives nothing; it may read
    [idx] but must not write it. *)
let for_up b ~idx ~from_ ~below body =
  mov b idx from_;
  let head = fresh_label b "for_head" in
  let exit = fresh_label b "for_exit" in
  let t = Reg.make (Reg.count - 1) in
  label b head;
  lt b t (Operand.reg idx) below;
  br_z b (Operand.reg t) exit;
  body ();
  add b idx (Operand.reg idx) (Operand.imm 1);
  jmp b head;
  label b exit

(** [if_nz b c ~then_ ~else_]: two-armed conditional on [c <> 0]. *)
let if_nz b c ~then_ ~else_ =
  let l_else = fresh_label b "if_else" in
  let l_end = fresh_label b "if_end" in
  br_z b c l_else;
  then_ ();
  jmp b l_end;
  label b l_else;
  else_ ();
  label b l_end

(** [if_nz1 b c then_]: one-armed conditional. *)
let if_nz1 b c then_ =
  let l_end = fresh_label b "if_end" in
  br_z b c l_end;
  then_ ();
  label b l_end

(* -- finalisation ------------------------------------------------------ *)

let resolve b here = function
  | To_next -> here + 1
  | To_label l -> (
      match Hashtbl.find_opt b.labels l with
      | Some i -> i
      | None ->
          invalid_arg
            (Fmt.str "Builder.build: unknown label %s in %s" l b.name))

(** Finalise the builder into a {!Func.t}; resolves all labels.  A
    label attached past the last instruction (e.g. the join label of a
    conditional whose branches both return) gets an implicit
    [Ret None]. *)
let build b =
  let needs_tail =
    Hashtbl.fold (fun _ i acc -> acc || i >= b.len) b.labels false
  in
  if needs_tail then emit b (P_instr (Instr.Ret None));
  let pend = Array.of_list (List.rev b.rev_code) in
  let code =
    Array.mapi
      (fun i p ->
        match p with
        | P_instr ins -> ins
        | P_jmp t -> Instr.Jmp (resolve b i t)
        | P_br (c, t, f) -> Instr.Br (c, resolve b i t, resolve b i f))
      pend
  in
  Func.make ~name:b.name ~arity:b.arity code

(** Convenience: build a whole function in one scoped call. *)
let define ~name ~arity f =
  let b = create ~name ~arity in
  f b;
  build b
