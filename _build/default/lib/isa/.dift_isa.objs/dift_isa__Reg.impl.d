lib/isa/reg.ml: Fmt Stdlib
