lib/isa/instr.mli: Fmt Operand Reg
