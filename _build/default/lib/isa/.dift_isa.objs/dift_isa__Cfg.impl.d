lib/isa/cfg.ml: Array Fmt Func Instr List
