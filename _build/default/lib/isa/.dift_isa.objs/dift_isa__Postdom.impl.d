lib/isa/postdom.ml: Array Cfg Fmt List Stack
