lib/isa/postdom.mli: Cfg Fmt
