lib/isa/func.mli: Fmt Instr
