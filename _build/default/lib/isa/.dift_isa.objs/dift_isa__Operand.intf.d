lib/isa/operand.mli: Fmt Reg
