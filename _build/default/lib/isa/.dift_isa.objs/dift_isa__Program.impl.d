lib/isa/program.ml: Array Fmt Func Hashtbl List
