lib/isa/func.ml: Array Fmt Instr
