lib/isa/program.mli: Fmt Func
