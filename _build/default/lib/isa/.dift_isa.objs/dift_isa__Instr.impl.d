lib/isa/instr.ml: Fmt Operand Reg
