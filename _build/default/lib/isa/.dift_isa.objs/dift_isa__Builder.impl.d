lib/isa/builder.ml: Array Fmt Func Hashtbl Instr List Operand Reg
