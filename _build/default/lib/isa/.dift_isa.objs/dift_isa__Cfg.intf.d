lib/isa/cfg.mli: Fmt Func
