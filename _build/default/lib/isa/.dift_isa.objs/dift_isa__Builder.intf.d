lib/isa/builder.mli: Func Instr Operand Reg
