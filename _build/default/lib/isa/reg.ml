(** Machine registers.

    The ISA exposes a flat file of general-purpose registers per thread.
    By convention [r0 .. r7] carry call arguments and [r0] carries the
    return value; the remaining registers are caller-owned temporaries.
    The virtual machine saves and restores the full file across calls,
    so programs never need to spill registers to memory for control
    reasons (they still use memory for data, which is what dependence
    tracking cares about). *)

type t = int

(** Number of general-purpose registers in a thread context. *)
let count = 64

(** Registers [r0 .. r7] used to pass call arguments. *)
let arg_count = 8

let make i =
  if i < 0 || i >= count then invalid_arg "Reg.make: register out of range";
  i

let index r = r

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf r = Fmt.pf ppf "r%d" r

let to_string r = Fmt.str "%a" pp r

(* A few common names used pervasively by the builder and workloads. *)
let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15
let r16 = 16
let r17 = 17
let r18 = 18
let r19 = 19
let r20 = 20
let r21 = 21
let r30 = 30
let r31 = 31
