(** Instruction operands: a register or an immediate word. *)

type t =
  | Reg of Reg.t
  | Imm of int

val reg : Reg.t -> t
val imm : int -> t
val equal : t -> t -> bool

(** Registers read by this operand (empty for immediates). *)
val regs : t -> Reg.t list

val pp : t Fmt.t
