(** A whole program: a set of named functions plus an entry point.

    Functions also receive dense integer ids so that programs can
    store "function pointers" in memory and call through them with
    {!Instr.Icall} — the substrate for control-flow hijack attacks. *)

type t

(** [make ?entry funcs] builds a program.
    @raise Invalid_argument on duplicate function names or a missing
    entry function (default entry: ["main"]). *)
val make : ?entry:string -> Func.t list -> t

(** Name of the entry function. *)
val entry : t -> string

(** [find p name] is the named function.
    @raise Invalid_argument when it does not exist. *)
val find : t -> string -> Func.t

val find_opt : t -> string -> Func.t option

(** Dense id of a function, usable as an in-memory "function pointer".
    @raise Invalid_argument for unknown names. *)
val func_id : t -> string -> int

(** Function designated by an id; [None] when the id is invalid — an
    invalid indirect call is a machine fault. *)
val func_of_id : t -> int -> Func.t option

(** All functions, in id order. *)
val functions : t -> Func.t list

(** Total static instruction count, across all functions. *)
val static_size : t -> int

val pp : t Fmt.t
