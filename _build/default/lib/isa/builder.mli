(** Embedded assembler.

    Workloads are written against this builder rather than raw
    {!Instr.t} arrays: it provides symbolic labels (resolved to
    instruction indices at {!build} time), automatic fallthrough
    targets for conditional branches, and a handful of structured
    helpers.  One builder produces one function.

    Register [r63] (the last register) is reserved as assembler
    scratch by {!for_up}. *)

type t

val create : name:string -> arity:int -> t

(** Index of the next instruction to be emitted.  Workloads use this
    to record the site of a deliberately injected fault. *)
val here : t -> int

(** Attach a label to the next emitted instruction.
    @raise Invalid_argument on duplicates. *)
val label : t -> string -> unit

(** A fresh label name with the given stem, unique within the builder. *)
val fresh_label : t -> string -> string

(** {1 Plain instructions} *)

val instr : t -> Instr.t -> unit
val nop : t -> unit
val mov : t -> Reg.t -> Operand.t -> unit
val movi : t -> Reg.t -> int -> unit
val binop : t -> Instr.alu_op -> Reg.t -> Operand.t -> Operand.t -> unit
val add : t -> Reg.t -> Operand.t -> Operand.t -> unit
val sub : t -> Reg.t -> Operand.t -> Operand.t -> unit
val mul : t -> Reg.t -> Operand.t -> Operand.t -> unit
val div : t -> Reg.t -> Operand.t -> Operand.t -> unit
val rem : t -> Reg.t -> Operand.t -> Operand.t -> unit
val and_ : t -> Reg.t -> Operand.t -> Operand.t -> unit
val or_ : t -> Reg.t -> Operand.t -> Operand.t -> unit
val xor : t -> Reg.t -> Operand.t -> Operand.t -> unit
val shl : t -> Reg.t -> Operand.t -> Operand.t -> unit
val shr : t -> Reg.t -> Operand.t -> Operand.t -> unit
val cmp : t -> Instr.cmp_op -> Reg.t -> Operand.t -> Operand.t -> unit
val eq : t -> Reg.t -> Operand.t -> Operand.t -> unit
val ne : t -> Reg.t -> Operand.t -> Operand.t -> unit
val lt : t -> Reg.t -> Operand.t -> Operand.t -> unit
val le : t -> Reg.t -> Operand.t -> Operand.t -> unit
val gt : t -> Reg.t -> Operand.t -> Operand.t -> unit
val ge : t -> Reg.t -> Operand.t -> Operand.t -> unit
val load : t -> Reg.t -> Operand.t -> int -> unit
val store : t -> Operand.t -> Operand.t -> int -> unit
val call : t -> string -> ret:Reg.t option -> unit
val icall : t -> Operand.t -> ret:Reg.t option -> unit
val ret : t -> Operand.t option -> unit
val halt : t -> unit

(** {1 Syscalls} *)

val sys : t -> Instr.syscall -> unit
val read : t -> Reg.t -> unit
val write : t -> Operand.t -> unit
val spawn : t -> Reg.t -> string -> Operand.t -> unit
val join : t -> Operand.t -> unit
val lock : t -> Operand.t -> unit
val unlock : t -> Operand.t -> unit
val barrier_init : t -> Operand.t -> Operand.t -> unit
val barrier : t -> Operand.t -> unit
val alloc : t -> Reg.t -> Operand.t -> unit
val free : t -> Operand.t -> unit
val tid : t -> Reg.t -> unit
val check : t -> Operand.t -> unit
val mark : t -> int -> Operand.t -> unit
val exit_ : t -> unit

(** {1 Control flow} *)

val jmp : t -> string -> unit

(** Branch to the label when the operand is non-zero, else fall
    through. *)
val br_nz : t -> Operand.t -> string -> unit

(** Branch to the label when the operand is zero, else fall through. *)
val br_z : t -> Operand.t -> string -> unit

(** Branch to [taken] / [fallthrough] labels explicitly. *)
val br : t -> Operand.t -> taken:string -> fallthrough:string -> unit

(** {1 Structured helpers} *)

(** [while_ b ~cond body]: loop while [cond ()] leaves a non-zero
    operand. *)
val while_ : t -> cond:(unit -> Operand.t) -> (unit -> unit) -> unit

(** [for_up b ~idx ~from_ ~below body]: counted loop with [idx]
    ranging over [from_ .. below-1].  The body may read [idx] but must
    not write it.  Uses the last register as scratch. *)
val for_up :
  t -> idx:Reg.t -> from_:Operand.t -> below:Operand.t -> (unit -> unit) ->
  unit

(** Two-armed conditional on the operand being non-zero. *)
val if_nz :
  t -> Operand.t -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit

(** One-armed conditional. *)
val if_nz1 : t -> Operand.t -> (unit -> unit) -> unit

(** {1 Finalisation} *)

(** Finalise into a {!Func.t}; resolves all labels.  A label attached
    past the last instruction (e.g. the join label of a conditional
    whose branches both return) gets an implicit [Ret None].
    @raise Invalid_argument on unresolved labels. *)
val build : t -> Func.t

(** Convenience: build a whole function in one scoped call. *)
val define : name:string -> arity:int -> (t -> unit) -> Func.t
