(** Immediate postdominators.

    Computed with the Cooper–Harvey–Kennedy iterative algorithm run on
    the reverse CFG, rooted at the virtual exit node.  Instructions
    that cannot reach the exit (code stuck in an infinite loop) are
    conservatively given the exit node as postdominator, which makes
    dynamic control-dependence regions for them never close — the safe
    direction for slicing. *)

type t = {
  ipdom : int array;  (** length [n+1]; [ipdom.(exit) = exit] *)
  exit : int;
}

let ipdom t i = t.ipdom.(i)
let exit_node t = t.exit

(** Reverse postorder of the *reverse* CFG starting from the exit. *)
let reverse_postorder (cfg : Cfg.t) =
  let n = Cfg.exit_node cfg in
  let visited = Array.make (n + 1) false in
  let order = ref [] in
  (* Iterative DFS to avoid stack depth issues on long straight-line
     functions. *)
  let stack = Stack.create () in
  Stack.push (`Enter n) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          Stack.push (`Leave v) stack;
          List.iter
            (fun p -> if not visited.(p) then Stack.push (`Enter p) stack)
            (Cfg.pred cfg v)
        end
    | `Leave v -> order := v :: !order
  done;
  (!order, visited)

let compute (cfg : Cfg.t) =
  let exit = Cfg.exit_node cfg in
  let n = exit in
  let rpo, reachable = reverse_postorder cfg in
  let rpo_index = Array.make (n + 1) (-1) in
  List.iteri (fun i v -> rpo_index.(v) <- i) rpo;
  let ipdom = Array.make (n + 1) (-1) in
  ipdom.(exit) <- exit;
  let intersect a b =
    (* Walk up the (partially computed) postdominator tree.  Smaller
       rpo index = closer to the exit. *)
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := ipdom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := ipdom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> exit then begin
          (* Successors in the original CFG are predecessors in the
             reverse graph. *)
          let processed =
            List.filter
              (fun s -> reachable.(s) && ipdom.(s) >= 0)
              (Cfg.succ cfg v)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if ipdom.(v) <> new_idom then begin
                ipdom.(v) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  (* Nodes never reached from the exit: conservative ipdom = exit. *)
  for v = 0 to n do
    if ipdom.(v) < 0 then ipdom.(v) <- exit
  done;
  { ipdom; exit }

(** [postdominates t ~node ~of_] — does [node] postdominate [of_]?
    (Reflexive: every node postdominates itself.) *)
let postdominates t ~node ~of_ =
  let rec walk v =
    if v = node then true
    else if v = t.exit then node = t.exit
    else walk t.ipdom.(v)
  in
  walk of_

let pp ppf t =
  Fmt.pf ppf "@[<v>ipdom:@,";
  Array.iteri (fun i d -> Fmt.pf ppf "  %3d -> %d@," i d) t.ipdom;
  Fmt.pf ppf "@]"
