(** Intra-procedural control-flow graph, at instruction granularity.

    Nodes are instruction indices [0 .. n-1] plus a virtual exit node
    [n] that every [Ret], [Halt] and [Sys Exit] flows into.  The graph
    also exposes the basic-block partition, which ONTRAC's
    intra-basic-block optimization needs. *)

type t

val build : Func.t -> t

(** Index of the virtual exit node (= the function's length). *)
val exit_node : t -> int

(** Successor / predecessor instruction indices of a node. *)
val succ : t -> int -> int list

val pred : t -> int -> int list

(** Basic-block id of an instruction. *)
val block_of : t -> int -> int

(** All blocks as [(first, last_exclusive)] instruction ranges. *)
val blocks : t -> (int * int) array

val num_blocks : t -> int

(** Instruction index range [(first, last_exclusive)] of a block. *)
val block_range : t -> int -> int * int

val func : t -> Func.t
val pp : t Fmt.t
