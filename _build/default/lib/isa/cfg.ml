(** Intra-procedural control-flow graph, at instruction granularity.

    Nodes are instruction indices [0 .. n-1] plus a virtual exit node
    [n] that every [Ret], [Halt] and [Sys Exit] flows into.  The graph
    also exposes the basic-block partition, which ONTRAC's
    intra-basic-block optimization needs. *)

type t = {
  func : Func.t;
  n : int;  (** number of real instructions; node [n] is the exit *)
  succ : int list array;  (** length [n+1]; successors of each node *)
  pred : int list array;  (** length [n+1] *)
  block_of : int array;  (** block id of each instruction *)
  blocks : (int * int) array;
      (** block id -> [(first, last_exclusive)] instruction range *)
}

let exit_node t = t.n

let successors_of_instr n i = function
  | Instr.Jmp t -> [ t ]
  | Instr.Br (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Instr.Ret _ | Instr.Halt | Instr.Sys Instr.Exit -> [ n ]
  | Instr.Nop | Instr.Mov _ | Instr.Binop _ | Instr.Cmp _ | Instr.Load _
  | Instr.Store _ | Instr.Call _ | Instr.Icall _ | Instr.Sys _ ->
      if i + 1 < n then [ i + 1 ] else [ n ]

let build (f : Func.t) =
  let n = Func.length f in
  let succ = Array.make (n + 1) [] in
  let pred = Array.make (n + 1) [] in
  for i = 0 to n - 1 do
    let ss = successors_of_instr n i (Func.instr f i) in
    succ.(i) <- ss;
    List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss
  done;
  (* Basic blocks: leaders are 0, branch targets, and instructions
     following a terminator. *)
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  for i = 0 to n - 1 do
    (match Func.instr f i with
    | Instr.Jmp t -> leader.(t) <- true
    | Instr.Br (_, t, fl) ->
        leader.(t) <- true;
        leader.(fl) <- true
    | _ -> ());
    if Instr.is_terminator (Func.instr f i) && i + 1 < n then
      leader.(i + 1) <- true
  done;
  let block_of = Array.make n 0 in
  let rev_blocks = ref [] in
  let bid = ref (-1) in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then begin
      if !bid >= 0 then rev_blocks := (!start, i) :: !rev_blocks;
      incr bid;
      start := i
    end;
    block_of.(i) <- !bid
  done;
  if n > 0 then rev_blocks := (!start, n) :: !rev_blocks;
  let blocks = Array.of_list (List.rev !rev_blocks) in
  { func = f; n; succ; pred; block_of; blocks }

let succ t i = t.succ.(i)
let pred t i = t.pred.(i)
let block_of t i = t.block_of.(i)
let blocks t = t.blocks
let num_blocks t = Array.length t.blocks

(** Instruction index range [(first, last_exclusive)] of a block. *)
let block_range t b = t.blocks.(b)

let func t = t.func

let pp ppf t =
  Fmt.pf ppf "@[<v>cfg %s (%d instrs, %d blocks):@," t.func.Func.name t.n
    (num_blocks t);
  for i = 0 to t.n - 1 do
    Fmt.pf ppf "  %3d [b%d] -> %a@," i t.block_of.(i)
      Fmt.(list ~sep:comma int)
      t.succ.(i)
  done;
  Fmt.pf ppf "@]"
