(** The instruction set.

    A small RISC-like ISA sufficient to express the paper's workloads:
    ALU operations, loads/stores, conditional branches with explicit
    taken/fallthrough targets (which makes CFG construction trivial),
    direct and indirect calls, and a family of "syscalls" covering
    input/output, threading, synchronisation and heap management — the
    same event surface a dynamic binary instrumentation tool observes
    on a real binary. *)

type alu_op =
  | Add
  | Sub
  | Mul
  | Div  (** traps on division by zero *)
  | Rem  (** traps on division by zero *)
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmp_op =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

(** System calls.  These are the boundary between the program and its
    environment; DIFT sources and several sinks live here. *)
type syscall =
  | Read of Reg.t
      (** [dst <- next input word]; yields [-1] when input is
          exhausted.  The canonical taint source. *)
  | Write of Operand.t  (** append a word to the program output *)
  | Spawn of Reg.t * string * Operand.t
      (** [tid_dst <- spawn f(arg)]: start a new thread running the
          named function with one argument in [r0]. *)
  | Join of Operand.t  (** block until the given thread terminates *)
  | Lock of Operand.t  (** acquire mutex (blocking) *)
  | Unlock of Operand.t  (** release mutex *)
  | Barrier_init of Operand.t * Operand.t
      (** [Barrier_init (id, parties)]: arm barrier [id] for [parties]
          participants. *)
  | Barrier of Operand.t  (** wait on barrier *)
  | Alloc of Reg.t * Operand.t
      (** [dst <- address of a fresh heap block of the given size] *)
  | Free of Operand.t  (** release a heap block by base address *)
  | Tid of Reg.t  (** [dst <- current thread id] *)
  | Check of Operand.t
      (** program-level assertion: raises a fault when the operand
          evaluates to zero.  Used to model observable failures. *)
  | Mark of int * Operand.t
      (** [Mark (channel, value)]: semantically a no-op, but visible
          to tools and to the event logger.  Workloads use it to
          announce request boundaries — the syscall-level information
          a checkpointing/logging system records cheaply. *)
  | Exit  (** terminate the current thread *)

type t =
  | Nop
  | Mov of Reg.t * Operand.t
  | Binop of alu_op * Reg.t * Operand.t * Operand.t
  | Cmp of cmp_op * Reg.t * Operand.t * Operand.t
      (** [dst <- 1] if the comparison holds, else [0] *)
  | Load of Reg.t * Operand.t * int
      (** [Load (dst, base, off)]: [dst <- mem\[base + off\]] *)
  | Store of Operand.t * Operand.t * int
      (** [Store (src, base, off)]: [mem\[base + off\] <- src] *)
  | Jmp of int  (** unconditional jump to instruction index *)
  | Br of Operand.t * int * int
      (** [Br (cond, taken, fallthrough)]: go to [taken] when [cond]
          is non-zero, else to [fallthrough]. *)
  | Call of string * Reg.t option
      (** direct call; arguments are in [r0..]; the optional register
          receives the callee's return value. *)
  | Icall of Operand.t * Reg.t option
      (** indirect call through a function id (see
          {!Program.func_id}); the canonical control-flow hijack
          sink. *)
  | Ret of Operand.t option
  | Sys of syscall
  | Halt  (** stop the whole machine *)

val alu_op_to_string : alu_op -> string
val cmp_op_to_string : cmp_op -> string

(** Evaluate an ALU operation on two words; [None] on division or
    remainder by zero (a machine fault). *)
val eval_alu : alu_op -> int -> int -> int option

(** Evaluate a comparison: [1] when it holds, [0] otherwise. *)
val eval_cmp : cmp_op -> int -> int -> int

(** Registers read by an instruction (before execution). *)
val uses : t -> Reg.t list

(** Register defined (written) by an instruction, if any. *)
val def : t -> Reg.t option

(** True for instructions that terminate a basic block. *)
val is_terminator : t -> bool

val pp_syscall : syscall Fmt.t
val pp : t Fmt.t
val to_string : t -> string
