(** Immediate postdominators.

    Computed with the Cooper–Harvey–Kennedy iterative algorithm run on
    the reverse CFG, rooted at the virtual exit node.  Instructions
    that cannot reach the exit are conservatively given the exit node
    as postdominator, which makes dynamic control-dependence regions
    for them never close — the safe direction for slicing. *)

type t

val compute : Cfg.t -> t

(** Immediate postdominator of a node ([ipdom exit = exit]). *)
val ipdom : t -> int -> int

val exit_node : t -> int

(** [postdominates t ~node ~of_] — does [node] postdominate [of_]?
    (Reflexive: every node postdominates itself.) *)
val postdominates : t -> node:int -> of_:int -> bool

val pp : t Fmt.t
