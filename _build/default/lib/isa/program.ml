(** A whole program: a set of named functions plus an entry point.

    Functions also receive dense integer ids so that programs can store
    "function pointers" in memory and call through them with
    {!Instr.Icall} — the substrate for control-flow hijack attacks. *)

type t = {
  funcs : (string, Func.t) Hashtbl.t;
  by_id : Func.t array;  (** indexed by function id *)
  ids : (string, int) Hashtbl.t;
  entry : string;
}

let make ?(entry = "main") funcs =
  let tbl = Hashtbl.create 16 in
  let ids = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Func.t) ->
      if Hashtbl.mem tbl f.Func.name then
        invalid_arg (Fmt.str "Program.make: duplicate function %s" f.Func.name);
      Hashtbl.replace tbl f.Func.name f;
      Hashtbl.replace ids f.Func.name i)
    funcs;
  if not (Hashtbl.mem tbl entry) then
    invalid_arg (Fmt.str "Program.make: no entry function %s" entry);
  { funcs = tbl; by_id = Array.of_list funcs; ids; entry }

let entry p = p.entry

let find p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg (Fmt.str "Program.find: unknown function %s" name)

let find_opt p name = Hashtbl.find_opt p.funcs name

(** Dense id of a function, usable as an in-memory "function pointer". *)
let func_id p name =
  match Hashtbl.find_opt p.ids name with
  | Some i -> i
  | None -> invalid_arg (Fmt.str "Program.func_id: unknown function %s" name)

(** Function designated by an id; [None] when the id is invalid — an
    invalid indirect call is a machine fault. *)
let func_of_id p id =
  if id < 0 || id >= Array.length p.by_id then None else Some p.by_id.(id)

let functions p = Array.to_list p.by_id

(** Total static instruction count, across all functions. *)
let static_size p =
  Array.fold_left (fun acc f -> acc + Func.length f) 0 p.by_id

let pp ppf p =
  Fmt.pf ppf "@[<v>";
  Array.iter (fun f -> Fmt.pf ppf "%a@," Func.pp f) p.by_id;
  Fmt.pf ppf "@]"
