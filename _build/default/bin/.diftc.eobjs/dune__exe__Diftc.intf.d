bin/diftc.mli:
