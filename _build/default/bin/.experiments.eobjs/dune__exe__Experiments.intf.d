bin/experiments.mli:
