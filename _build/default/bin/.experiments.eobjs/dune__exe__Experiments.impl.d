bin/experiments.ml: Arg Cmd Cmdliner Dift_experiments Fmt List Term
