(* Regenerate the paper's experiment tables.

   `experiments` runs everything at full scale; `experiments e4 e7`
   runs a subset; `--quick` uses the reduced sizes the test suite
   uses. *)

open Cmdliner

let ids_arg =
  let doc =
    "Experiments to run (e1..e11).  Runs all of them when omitted."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (faster, noisier)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let list_arg =
  let doc = "List the available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let run ids quick list_only =
  let scale =
    if quick then Dift_experiments.All.Quick else Dift_experiments.All.Full
  in
  if list_only then begin
    List.iter
      (fun (e : Dift_experiments.All.experiment) ->
        Fmt.pr "%-4s %s@." e.Dift_experiments.All.id
          e.Dift_experiments.All.description)
      Dift_experiments.All.experiments;
    0
  end
  else begin
    let ids =
      match ids with
      | [] ->
          List.map
            (fun (e : Dift_experiments.All.experiment) ->
              e.Dift_experiments.All.id)
            Dift_experiments.All.experiments
      | ids -> ids
    in
    try
      List.iter
        (fun id ->
          Dift_experiments.All.run_and_print ~scale Fmt.stdout id)
        ids;
      0
    with Invalid_argument msg ->
      Fmt.epr "error: %s@." msg;
      1
  end

let cmd =
  let doc = "regenerate the DIFT paper's experiment tables" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run $ ids_arg $ quick_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
