(* Data-validation by lineage tracing: run a scientific pipeline and
   report, for each output record, exactly which input records it was
   computed from — then flag outputs whose lineage contains a
   known-bad input (the paper's wet-bench false-positive scenario).

     dune exec examples/lineage_audit.exe *)

open Dift_workloads
open Dift_lineage

let () =
  let pl = Scientific.moving_avg in
  let size = 12 and seed = 7 in
  Fmt.pr "pipeline: %s — %s@.@." pl.Scientific.name
    pl.Scientific.description;
  let r = Tracer.run_robdd pl ~size ~seed in
  let input = pl.Scientific.input ~size ~seed in

  (* Suppose post-hoc QA finds that the instrument glitched while
     producing input record 5: every output derived from it is
     suspect. *)
  let bad_input = 5 in
  Fmt.pr "input: %a@." Fmt.(list ~sep:sp int) (Array.to_list input);
  Fmt.pr "known-bad input record: #%d (value %d)@.@." bad_input
    input.(bad_input);
  List.iteri
    (fun i (value, lineage) ->
      let suspect = List.mem bad_input lineage in
      Fmt.pr "output[%d] = %-4d lineage {%a}%s@." i value
        Fmt.(list ~sep:comma int)
        lineage
        (if suspect then "  <- SUSPECT: derived from the bad record"
         else ""))
    r.Tracer.outputs;
  Fmt.pr "@.tracing cost: %.1fx slowdown, %d words of lineage metadata@."
    (Tracer.slowdown r) r.Tracer.shadow_words_peak;

  (* Cross-check the two representations agree. *)
  let naive = Tracer.run_naive pl ~size ~seed in
  Fmt.pr "naive sets agree with roBDD: %b@."
    (naive.Tracer.outputs = r.Tracer.outputs)
