(* Execution reduction on the long-running server: log a failing run
   cheaply, find the requests the failure depends on, and replay just
   that slice of history with tracing on — the paper's MySQL workflow
   end to end.

     dune exec examples/server_reduction.exe *)

open Dift_workloads
open Dift_replay

let () =
  let requests = 200 in
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests ~seed:11 ~faulty:true () in
  Fmt.pr "server batch: %d requests; corrupting ADMIN request at #%a@."
    requests
    Fmt.(option ~none:(any "?") int)
    batch.Server_sim.admin_index;
  Fmt.pr "first failing GET at #%a@.@."
    Fmt.(option ~none:(any "?") int)
    batch.Server_sim.first_failing_get;
  let report =
    Rerun.run ~checkpoint_every:3_000 p ~input:batch.Server_sim.input
  in
  Fmt.pr "%a@." Rerun.pp_report report;
  Fmt.pr
    "@.The reduced replay captured %d dependences instead of %d — enough \
     to slice from the failure (%d sites) while tracing only %d of %d \
     requests.@."
    report.Rerun.reduced_deps report.Rerun.full_deps
    report.Rerun.fault_slice_sites report.Rerun.relevant_requests
    report.Rerun.total_requests
