examples/lineage_audit.ml: Array Dift_lineage Dift_workloads Fmt List Scientific Tracer
