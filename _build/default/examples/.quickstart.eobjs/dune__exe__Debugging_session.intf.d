examples/debugging_session.mli:
