examples/server_reduction.ml: Dift_replay Dift_workloads Fmt Rerun Server_sim
