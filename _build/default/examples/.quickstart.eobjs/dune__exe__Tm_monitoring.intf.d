examples/tm_monitoring.mli:
