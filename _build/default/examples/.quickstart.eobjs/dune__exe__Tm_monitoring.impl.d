examples/tm_monitoring.ml: Dift_tm Dift_workloads Fmt List Splash_like Stm_exec
