examples/race_hunt.ml: Dift_faultloc Dift_vm Dift_workloads Fmt List Machine Race_detect Splash_like
