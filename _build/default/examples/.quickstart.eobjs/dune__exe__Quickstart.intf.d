examples/quickstart.mli:
