examples/quickstart.ml: Builder Dift_core Dift_isa Dift_vm Engine Event Fmt List Machine Ontrac Operand Program Reg Slicing Taint
