examples/attack_detection.ml: Detector Dift_attack Dift_core Dift_vm Dift_workloads Event Fmt List Machine Vulnerable
