examples/debugging_session.ml: Buggy Dift_faultloc Dift_workloads Fmt List Omission Pred_switch Slice_loc Value_replace
