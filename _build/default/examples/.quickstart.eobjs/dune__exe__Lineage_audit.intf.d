examples/lineage_audit.mli:
