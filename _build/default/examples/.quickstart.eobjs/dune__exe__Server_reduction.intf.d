examples/server_reduction.mli:
