(* A debugging session with the fault-location suite: take a program
   with an execution-omission bug, watch the plain slice miss it, and
   let predicate switching + implicit dependences find it.

     dune exec examples/debugging_session.exe *)

open Dift_workloads
open Dift_faultloc

let () =
  let case = Buggy.omission_guard in
  Fmt.pr "bug:    %s — %s@." case.Buggy.name case.Buggy.description;
  let fname, fpc = case.Buggy.faulty_site in
  Fmt.pr "truth:  the injected fault is at %s:%d@.@." fname fpc;

  (* 1. Plain dynamic slicing from the failure. *)
  let slice =
    Slice_loc.run case.Buggy.program ~input:case.Buggy.failing_input
      ~faulty_site:case.Buggy.faulty_site
  in
  Fmt.pr "slicing: %d sites in the backward slice; faulty site included: %b@."
    slice.Slice_loc.slice_sites slice.Slice_loc.faulty_site_in_slice;
  if not slice.Slice_loc.faulty_site_in_slice then
    Fmt.pr
      "         (an omission error: the failure never *used* a value the \
       faulty statement produced)@.";

  (* 2. Predicate switching: find a branch instance whose inversion
     makes the failing run pass. *)
  let ps =
    Pred_switch.search case.Buggy.program ~input:case.Buggy.failing_input
  in
  (match ps.Pred_switch.critical with
  | Some crit ->
      let cf, cpc = crit.Pred_switch.site in
      Fmt.pr
        "@.predicate switching: flipping step %d (%s:%d) makes the run \
         pass, found after %d re-executions@."
        crit.Pred_switch.step cf cpc crit.Pred_switch.attempts
  | None -> Fmt.pr "@.predicate switching: no critical predicate found@.");

  (* 3. Implicit dependences: verify the omission and augment the
     slice so it captures the fault. *)
  let om =
    Omission.run case.Buggy.program ~input:case.Buggy.failing_input
      ~faulty_site:case.Buggy.faulty_site
  in
  (match om.Omission.verified_predicate with
  | Some (step, (vf, vpc)) ->
      Fmt.pr
        "@.implicit dependence verified through the predicate at %s:%d \
         (dynamic step %d), %d verification run(s)@."
        vf vpc step om.Omission.verifications
  | None -> Fmt.pr "@.no implicit dependence verified@.");
  Fmt.pr
    "augmented slice: %d sites; faulty site captured: %b (plain slice had \
     it: %b)@."
    om.Omission.augmented_slice_sites om.Omission.augmented_slice_has_fault
    om.Omission.plain_slice_has_fault;

  (* 4. Value replacement, for a dependence-free second opinion. *)
  let vr =
    Value_replace.run case.Buggy.program ~input:case.Buggy.failing_input
      ~faulty_site:case.Buggy.faulty_site
  in
  Fmt.pr "@.value replacement: %d interesting site(s) in %d attempts@."
    (List.length vr.Value_replace.ranking)
    vr.Value_replace.attempts;
  List.iteri
    (fun i (r : Value_replace.ranked) ->
      let f, pc = r.Value_replace.site in
      Fmt.pr "  #%d %s:%d (value -> %d makes the run pass)@." (i + 1) f pc
        r.Value_replace.replacement)
    vr.Value_replace.ranking
