(* Monitoring a parallel program with transactions: watch the naive
   conflict-resolution policies livelock on spin-synchronised code,
   and the sync-aware policy sail through.

     dune exec examples/tm_monitoring.exe *)

open Dift_workloads
open Dift_tm

let describe name program input =
  Fmt.pr "== %s@." name;
  List.iter
    (fun policy ->
      let config =
        {
          Stm_exec.default_config with
          policy;
          max_ticks = 400_000;
          livelock_window = 120_000;
          starvation_threshold = 200;
        }
      in
      let t = Stm_exec.create ~config program ~input in
      let s = Stm_exec.run t in
      let outcome =
        match s.Stm_exec.outcome with
        | Stm_exec.Completed ->
            Fmt.str "completed, output %a"
              Fmt.(list ~sep:sp int)
              (Stm_exec.output t)
        | Stm_exec.Livelocked -> "LIVELOCKED"
        | Stm_exec.Tick_budget_exhausted -> "LIVELOCKED (budget)"
        | Stm_exec.Fault m -> "fault: " ^ m
      in
      Fmt.pr
        "   %-16s %-28s commits %-5d aborts %-5d sync vars %d  overhead \
         %.1fx@."
        (Stm_exec.policy_to_string policy)
        outcome s.Stm_exec.commits s.Stm_exec.aborts s.Stm_exec.sync_vars
        (Stm_exec.overhead s))
    [ Stm_exec.Abort_requester; Stm_exec.Abort_owner; Stm_exec.Sync_aware ];
  Fmt.pr "@."

let () =
  describe "producer/consumer with a spin flag"
    (Splash_like.flag_pipeline ())
    [| 6 |];
  describe "spin (sense-reversing) barrier"
    (Splash_like.spin_barrier ~threads:2 ~phases:3 ())
    [||];
  Fmt.pr
    "The spinning thread's transaction has no commit point, so it owns \
     the flag forever under naive resolution; the sync-aware policy \
     recognises the spin, splits the transaction at the flag, and lets \
     the writer win (paper section 2.2).@."
