(* Hunting data races in parallel code: the basic happens-before
   detector drowns the report in benign spin-flag races; the
   synchronisation-aware detector recognises the flags and reports
   only the real bug.

     dune exec examples/race_hunt.exe *)

open Dift_vm
open Dift_workloads
open Dift_faultloc

let detect mode program input =
  let config =
    { Machine.default_config with seed = 6; quantum_min = 2; quantum_max = 9 }
  in
  let m = Machine.create ~config program ~input in
  let det = Race_detect.create mode in
  Race_detect.attach det m;
  ignore (Machine.run m);
  det

let show name program input =
  Fmt.pr "== %s@." name;
  let basic = detect Race_detect.Basic program input in
  let aware = detect Race_detect.Sync_aware program input in
  Fmt.pr "   basic detector: %d race report(s)@."
    (List.length (Race_detect.races basic));
  List.iter
    (fun r -> Fmt.pr "     %a@." Race_detect.pp_race r)
    (Race_detect.races basic);
  Fmt.pr "   sync-aware:     %d race report(s), %d sync var(s) recognised@."
    (List.length (Race_detect.races aware))
    (Race_detect.sync_vars aware);
  List.iter
    (fun r -> Fmt.pr "     %a@." Race_detect.pp_race r)
    (Race_detect.races aware);
  Fmt.pr "@."

let () =
  (* spin-flag pipeline: all races are the synchronisation itself *)
  show "flag pipeline (benign sync races only)"
    (Splash_like.flag_pipeline ())
    [| 10 |];
  (* racy bank: a real atomicity bug *)
  show "racy bank (true races)"
    (Splash_like.bank_racy ~threads:2 ())
    (Splash_like.bank_input ~size:40 ~seed:0);
  (* properly locked bank: clean *)
  show "locked bank (race free)"
    (Splash_like.bank ~threads:2 ())
    (Splash_like.bank_input ~size:40 ~seed:0)
