(* Quickstart: write a tiny program in the embedded assembler, run it
   on the VM under boolean taint DIFT, and backward-slice the output.

     dune exec examples/quickstart.exe *)

open Dift_isa
open Dift_vm
open Dift_core

let imm = Operand.imm
let reg = Operand.reg

(* A program that reads two numbers, computes 3*x + 7 from the first,
   and prints both the derived value and an input-independent
   constant. *)
let program =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          Builder.read b Reg.r0;
          (* x, tainted source *)
          Builder.read b Reg.r1;
          (* y, read but unused *)
          Builder.mul b Reg.r2 (reg Reg.r0) (imm 3);
          Builder.add b Reg.r2 (reg Reg.r2) (imm 7);
          Builder.write b (imm 42);
          (* constant: clean *)
          Builder.write b (reg Reg.r2);
          (* 3x + 7: depends on the input *)
          Builder.halt b);
    ]

module Taint_engine = Engine.Make (Taint.Bool)

let () =
  let input = [| 5; 99 |] in

  (* 1. Plain run. *)
  let m = Machine.create program ~input in

  (* 2. Attach a DIFT engine and watch the output sink. *)
  let engine = Taint_engine.create program in
  Taint_engine.on_sink engine (fun sink taint e ->
      if sink = Engine.Sink_output then
        Fmt.pr "output %d is %s@." e.Event.value
          (if taint then "TAINTED (derived from input)" else "clean"));
  Taint_engine.attach engine m;

  (* 3. Attach ONTRAC so we can slice afterwards. *)
  let tracer = Ontrac.create program in
  Ontrac.attach tracer m;

  let outcome = Machine.run m in
  Fmt.pr "run: %a, output = %a@." Event.pp_outcome outcome
    Fmt.(list ~sep:sp int)
    (Machine.output_values m);

  (* 4. Backward dynamic slice from the last output. *)
  let graph, window = Ontrac.final_graph tracer in
  match Slicing.last_output graph with
  | None -> Fmt.pr "nothing to slice@."
  | Some criterion ->
      let slice =
        Slicing.backward ~window_start:window graph ~criterion:[ criterion ]
      in
      Fmt.pr "backward slice of the last output: %a@." Slicing.pp slice;
      List.iter
        (fun (f, pc) -> Fmt.pr "  %s:%d@." f pc)
        (Slicing.sites slice)
