(* Attack detection with PC taint: run every vulnerable program in the
   corpus against its exploit, and show the detector stopping the
   hijack and naming the root-cause statement.

     dune exec examples/attack_detection.exe *)

open Dift_vm
open Dift_workloads
open Dift_attack

let () =
  List.iter
    (fun (case : Vulnerable.case) ->
      Fmt.pr "== %s: %s@." case.Vulnerable.name case.Vulnerable.description;
      (* undefended: the hijack succeeds *)
      let m =
        Machine.create case.Vulnerable.program
          ~input:case.Vulnerable.attack_input
      in
      ignore (Machine.run m);
      Fmt.pr "   undefended output: %a%s@."
        Fmt.(list ~sep:sp int)
        (Machine.output_values m)
        (if List.mem Detector.evil_marker (Machine.output_values m) then
           "   <- attacker code ran!"
         else "");
      (* defended *)
      let r =
        Detector.protect case.Vulnerable.program
          ~input:case.Vulnerable.attack_input
      in
      (match r.Detector.detection with
      | Some d ->
          let df, dpc = d.Detector.at_site in
          Fmt.pr "   detected at %s:%d (step %d): %a@." df dpc
            d.Detector.at_step Event.pp_outcome r.Detector.outcome;
          (match d.Detector.root_cause with
          | Some site ->
              let tf, tpc = case.Vulnerable.root_cause in
              Fmt.pr "   PC taint names %s:%d as the root cause %s@."
                site.Dift_core.Taint.fname site.Dift_core.Taint.pc
                (if (site.Dift_core.Taint.fname, site.Dift_core.Taint.pc)
                    = (tf, tpc)
                 then "(correct!)"
                 else Fmt.str "(injected bug is at %s:%d)" tf tpc)
          | None -> ())
      | None -> Fmt.pr "   NOT DETECTED@.");
      Fmt.pr "   hijack prevented: %b@.@."
        (not r.Detector.hijack_succeeded))
    Vulnerable.all
