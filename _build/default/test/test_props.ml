(* Property-based tests over randomly generated programs.

   The generator produces terminating programs (straight-line code,
   bounded loops, guarded blocks) over a small register file and a
   small memory window, with input reads and output writes sprinkled
   in.  Properties cross-validate independent implementations against
   each other: the taint engine against the dependence graph + slicer,
   the recording machine against its replay, and checkpoint/resume
   against uninterrupted execution. *)

open Dift_isa
open Dift_vm
open Dift_core

let imm = Operand.imm
let reg = Operand.reg

(* -- random program generator --------------------------------------------- *)

type op =
  | G_movi of int * int  (* rd, const *)
  | G_arith of int * int * int * int  (* kind, rd, ra, rb *)
  | G_read of int
  | G_write of int
  | G_store of int * int  (* ra, cell *)
  | G_load of int * int  (* rd, cell *)
  | G_guarded of int * op list  (* guard reg, body *)
  | G_loop of int * int * op list
      (* index reg (distinct per nesting depth), iterations (1..4), body *)

let rec op_gen depth =
  QCheck2.Gen.(
    let leaf =
      oneof
        [
          map2 (fun rd k -> G_movi (rd, k)) (0 -- 5) (0 -- 100);
          map2
            (fun (k, rd) (ra, rb) -> G_arith (k, rd, ra, rb))
            (pair (0 -- 2) (0 -- 5))
            (pair (0 -- 5) (0 -- 5));
          map (fun rd -> G_read rd) (0 -- 5);
          map (fun ra -> G_write ra) (0 -- 5);
          map2 (fun ra cell -> G_store (ra, cell)) (0 -- 5) (0 -- 7);
          map2 (fun rd cell -> G_load (rd, cell)) (0 -- 5) (0 -- 7);
        ]
    in
    if depth = 0 then leaf
    else
      frequency
        [
          (6, leaf);
          ( 1,
            map2
              (fun g body -> G_guarded (g, body))
              (0 -- 5)
              (list_size (1 -- 4) (op_gen (depth - 1))) );
          ( 1,
            map2
              (fun n body -> G_loop (6 + depth, 1 + (n mod 4), body))
              (0 -- 3)
              (list_size (1 -- 4) (op_gen (depth - 1))) );
        ])

let prog_gen = QCheck2.Gen.(list_size (3 -- 25) (op_gen 2))

let rec emit b op =
  match op with
  | G_movi (rd, k) -> Builder.movi b (Reg.make rd) k
  | G_arith (k, rd, ra, rb) ->
      let o = match k with 0 -> Instr.Add | 1 -> Instr.Sub | _ -> Instr.Mul in
      Builder.binop b o (Reg.make rd) (reg (Reg.make ra)) (reg (Reg.make rb))
  | G_read rd -> Builder.read b (Reg.make rd)
  | G_write ra -> Builder.write b (reg (Reg.make ra))
  | G_store (ra, cell) ->
      Builder.store b (reg (Reg.make ra)) (imm (100 + cell)) 0
  | G_load (rd, cell) -> Builder.load b (Reg.make rd) (imm (100 + cell)) 0
  | G_guarded (g, body) ->
      Builder.if_nz1 b (reg (Reg.make g)) (fun () -> List.iter (emit b) body)
  | G_loop (idx, n, body) ->
      Builder.for_up b ~idx:(Reg.make idx) ~from_:(imm 0) ~below:(imm n)
        (fun () -> List.iter (emit b) body)

let build_program ops =
  Program.make
    [
      Builder.define ~name:"main" ~arity:0 (fun b ->
          List.iter (emit b) ops;
          (* always end with an observable output *)
          Builder.write b (reg (Reg.make 0));
          Builder.halt b);
    ]

let inputs_for _ops = Array.init 64 (fun i -> (i * 37) + 3)

(* -- property 1: engine taint vs dependence slicing ------------------------ *)

module Set_engine = Engine.Make (Taint.Input_set)
module Int_set = Taint.Int_set

(* For every output event: the engine's input-set taint must be a
   subset of the inputs found by backward-slicing the dependence graph
   from that output (the slice additionally follows address
   dependences, so it can only be larger). *)
let prop_taint_subset_of_slice =
  QCheck2.Test.make ~count:120 ~name:"taint set ⊆ slice inputs" prog_gen
    (fun ops ->
      let p = build_program ops in
      let input = inputs_for ops in
      let m = Machine.create p ~input in
      let eng = Set_engine.create p in
      let outputs = ref [] in
      Set_engine.on_sink eng (fun sink taint e ->
          if sink = Engine.Sink_output then
            outputs := (e.Event.step, taint) :: !outputs);
      Set_engine.attach eng m;
      let tracer = Ontrac.create ~opts:Ontrac.no_opts p in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      let g, w = Ontrac.final_graph tracer in
      List.for_all
        (fun (step, taint) ->
          let slice = Slicing.backward ~window_start:w g ~criterion:[ step ] in
          let slice_inputs =
            List.fold_left
              (fun acc s ->
                match Ddg.node g s with
                | Some n when n.Ddg.input_index >= 0 ->
                    Int_set.add n.Ddg.input_index acc
                | _ -> acc)
              Int_set.empty (Slicing.steps slice)
          in
          Int_set.subset taint slice_inputs)
        !outputs)

(* -- property 2: optimized and unoptimized graphs agree -------------------- *)

let prop_optimized_graph_equal =
  QCheck2.Test.make ~count:80 ~name:"optimized DDG ≡ unoptimized DDG"
    prog_gen (fun ops ->
      let p = build_program ops in
      let input = inputs_for ops in
      let run opts =
        let m = Machine.create p ~input in
        let tracer = Ontrac.create ~opts p in
        Ontrac.attach tracer m;
        ignore (Machine.run m);
        let g, _ = Ontrac.final_graph tracer in
        g
      in
      let g1 = run Ontrac.default_opts in
      let g2 = run Ontrac.no_opts in
      Ddg.num_nodes g1 = Ddg.num_nodes g2 && Ddg.num_edges g1 = Ddg.num_edges g2)

(* -- property 3: record/replay determinism --------------------------------- *)

let prop_replay_fingerprint =
  QCheck2.Test.make ~count:100 ~name:"replay reproduces the fingerprint"
    QCheck2.Gen.(pair prog_gen (1 -- 1000))
    (fun (ops, seed) ->
      let p = build_program ops in
      let input = inputs_for ops in
      let config = { Machine.default_config with seed } in
      let m1 = Machine.create ~config p ~input in
      ignore (Machine.run m1);
      let config2 =
        { Machine.default_config with
          schedule = Some (Machine.schedule_log m1) }
      in
      let m2 = Machine.create ~config:config2 p ~input in
      ignore (Machine.run m2);
      Machine.fingerprint m1 = Machine.fingerprint m2
      && Machine.output_values m1 = Machine.output_values m2)

(* -- property 4: checkpoint/resume ≡ uninterrupted run ---------------------- *)

let prop_checkpoint_resume =
  QCheck2.Test.make ~count:80 ~name:"checkpoint/resume ≡ straight run"
    QCheck2.Gen.(pair prog_gen (5 -- 60))
    (fun (ops, cut) ->
      let p = build_program ops in
      let input = inputs_for ops in
      let m_ref = Machine.create p ~input in
      ignore (Machine.run m_ref);
      let expected = Machine.output_values m_ref in
      let config = { Machine.default_config with max_steps = cut } in
      let m1 = Machine.create ~config p ~input in
      match Machine.run m1 with
      | Event.Halted -> Machine.output_values m1 = expected
      | Event.Out_of_steps ->
          let cp = Machine.checkpoint m1 in
          let m2 = Machine.of_checkpoint p ~input cp in
          ignore (Machine.run m2);
          Machine.output_values m2 = expected
      | Event.Faulted _ | Event.Deadlocked | Event.Stopped _ -> false)

(* -- property 5: trace buffer invariants ------------------------------------ *)

let prop_buffer_invariants =
  QCheck2.Test.make ~count:200 ~name:"trace buffer invariants"
    QCheck2.Gen.(
      pair (10 -- 500) (list_size (1 -- 200) (pair (0 -- 50) (1 -- 30))))
    (fun (capacity, adds) ->
      let buf = Trace_buffer.create ~capacity in
      let step = ref 0 in
      let total = ref 0 in
      List.for_all
        (fun (dstep, bytes) ->
          step := !step + dstep;
          total := !total + bytes;
          Trace_buffer.add buf ~use_step:!step ~bytes;
          Trace_buffer.stored_bytes buf <= max capacity bytes
          && Trace_buffer.total_bytes buf = !total
          && Trace_buffer.window_start buf >= 0)
        adds)

(* -- property 6: encoding round-trip ----------------------------------------- *)

let prop_encoding_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"dependence encoding round-trips"
    QCheck2.Gen.(list_size (0 -- 100) (pair (0 -- 4) (pair (0 -- 50) (0 -- 40))))
    (fun raw ->
      (* build records with monotone use steps *)
      let _, deps =
        List.fold_left
          (fun (use, acc) (kind, (duse, ddef)) ->
            let use = use + duse in
            ( use,
              { Dep.kind = Dep.kind_of_int kind; use_step = use;
                def_step = max 0 (use - ddef) }
              :: acc ))
          (0, []) raw
      in
      let deps = List.rev deps in
      let w = Encoding.writer () in
      List.iter (Encoding.write w) deps;
      let decoded = Encoding.decode (Encoding.contents w) in
      List.length decoded = List.length deps
      && List.for_all2
           (fun (a : Dep.t) (b : Dep.t) ->
             a.Dep.kind = b.Dep.kind
             && a.Dep.use_step = b.Dep.use_step
             && a.Dep.def_step = b.Dep.def_step)
           deps decoded)

(* -- property 7: forward/backward slicing duality ---------------------------- *)

let prop_slice_duality =
  QCheck2.Test.make ~count:80
    ~name:"t in backward(s) iff s in forward(t)" prog_gen (fun ops ->
      let p = build_program ops in
      let input = inputs_for ops in
      let m = Machine.create p ~input in
      let tracer = Ontrac.create ~opts:Ontrac.no_opts p in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      let g, w = Ontrac.final_graph tracer in
      match Slicing.last_output g with
      | None -> true
      | Some out ->
          let bwd = Slicing.backward ~window_start:w g ~criterion:[ out ] in
          (* every input read: in the backward slice iff the output is
             in its forward slice *)
          let ok = ref true in
          Ddg.iter_nodes
            (fun n ->
              if n.Ddg.input_index >= 0 then begin
                let fwd =
                  Slicing.forward ~window_start:w g
                    ~criterion:[ n.Ddg.step ]
                in
                let in_bwd = Slicing.mem_step bwd n.Ddg.step in
                let reaches = Slicing.mem_step fwd out in
                if in_bwd <> reaches then ok := false
              end)
            g;
          !ok)

(* -- property 8: chops are intersections -------------------------------------- *)

let prop_chop_subset =
  QCheck2.Test.make ~count:80 ~name:"chop ⊆ backward slice" prog_gen
    (fun ops ->
      let p = build_program ops in
      let input = inputs_for ops in
      let m = Machine.create p ~input in
      let tracer = Ontrac.create ~opts:Ontrac.no_opts p in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      let g, w = Ontrac.final_graph tracer in
      match Slicing.last_output g with
      | None -> true
      | Some out ->
          let sources = ref [] in
          Ddg.iter_nodes
            (fun n ->
              if n.Ddg.input_index >= 0 then sources := n.Ddg.step :: !sources)
            g;
          let bwd = Slicing.backward ~window_start:w g ~criterion:[ out ] in
          let chop =
            Slicing.chop ~window_start:w g ~source:!sources ~sink:[ out ]
          in
          List.for_all (fun s -> Slicing.mem_step bwd s) (Slicing.steps chop))

(* -- property: DDG serialisation round-trips ---------------------------------- *)

let prop_ddg_roundtrip =
  QCheck2.Test.make ~count:80 ~name:"ddg serialisation round-trips"
    prog_gen (fun ops ->
      let p = build_program ops in
      let input = inputs_for ops in
      let m = Machine.create p ~input in
      let tracer = Ontrac.create ~opts:Ontrac.no_opts p in
      Ontrac.attach tracer m;
      ignore (Machine.run m);
      let g, w = Ontrac.final_graph tracer in
      let g' = Ddg_io.deserialize (Ddg_io.serialize g) in
      Ddg.num_nodes g = Ddg.num_nodes g'
      && Ddg.num_edges g = Ddg.num_edges g'
      &&
      match Slicing.last_output g with
      | None -> true
      | Some out ->
          let s1 = Slicing.backward ~window_start:w g ~criterion:[ out ] in
          let s2 = Slicing.backward ~window_start:w g' ~criterion:[ out ] in
          Slicing.steps s1 = Slicing.steps s2
          && Slicing.sites s1 = Slicing.sites s2)

(* -- property 9: same seed, same run ----------------------------------------- *)

let prop_determinism =
  QCheck2.Test.make ~count:80 ~name:"same seed reproduces the run"
    QCheck2.Gen.(pair prog_gen (1 -- 1000))
    (fun (ops, seed) ->
      let p = build_program ops in
      let input = inputs_for ops in
      let config = { Machine.default_config with seed } in
      let m1 = Machine.create ~config p ~input in
      ignore (Machine.run m1);
      let m2 = Machine.create ~config p ~input in
      ignore (Machine.run m2);
      Machine.fingerprint m1 = Machine.fingerprint m2
      && Machine.cycles m1 = Machine.cycles m2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_taint_subset_of_slice;
      prop_optimized_graph_equal;
      prop_replay_fingerprint;
      prop_checkpoint_resume;
      prop_buffer_invariants;
      prop_encoding_roundtrip;
      prop_slice_duality;
      prop_chop_subset;
      prop_ddg_roundtrip;
      prop_determinism;
    ]
