(* The experiment harness itself: every experiment must run at reduced
   scale and produce non-degenerate tables.  This is the regression
   net for the reproduction — if a substrate change breaks a paper
   claim's shape, one of these trips. *)

open Dift_experiments

let check = Alcotest.check

let test_all_experiments_produce_tables () =
  List.iter
    (fun (e : All.experiment) ->
      let tables = e.All.run All.Quick in
      check Alcotest.bool
        (Fmt.str "%s produces tables" e.All.id)
        true (tables <> []);
      List.iter
        (fun (t : Table.t) ->
          check Alcotest.bool
            (Fmt.str "%s: '%s' has rows" e.All.id t.Table.title)
            true (t.Table.rows <> []);
          (* every row has the header's width *)
          let cols = List.length t.Table.header in
          List.iter
            (fun row ->
              check Alcotest.int
                (Fmt.str "%s: '%s' row width" e.All.id t.Table.title)
                cols (List.length row))
            t.Table.rows)
        tables)
    All.experiments

let test_key_shapes_hold () =
  (* E1: online ≪ offline *)
  let e1 = E1_ontrac_vs_offline.run ~size:12 () in
  check Alcotest.bool
    (Fmt.str "e1 shape: ontrac %.1f << offline %.1f"
       e1.E1_ontrac_vs_offline.mean_ontrac
       e1.E1_ontrac_vs_offline.mean_offline)
    true
    (e1.E1_ontrac_vs_offline.mean_offline
    > 5. *. e1.E1_ontrac_vs_offline.mean_ontrac);
  (* E2: optimized rate well below the raw 16 B/instr *)
  let e2 = E2_trace_rate.run ~size:12 () in
  check Alcotest.bool
    (Fmt.str "e2 shape: %.2f B/instr < 4" e2.E2_trace_rate.mean_opt_bpi)
    true
    (e2.E2_trace_rate.mean_opt_bpi < 4.);
  (* E3: hardware helper overhead under 150% *)
  let e3 = E3_multicore.run ~size:10 () in
  check Alcotest.bool
    (Fmt.str "e3 shape: hw overhead %.0f%%"
       (100. *. e3.E3_multicore.mean_hw_overhead))
    true
    (e3.E3_multicore.mean_hw_overhead < 1.5);
  (* E6: everything detected *)
  let e6 = E6_attack_detection.run () in
  check Alcotest.bool "e6 shape: all detected" true
    (List.for_all
       (fun (r : Dift_attack.Detector.eval_row) ->
         r.Dift_attack.Detector.attack_detected)
       e6.E6_attack_detection.rows)

let test_registry_lookup () =
  check Alcotest.bool "finds e4" true (All.find "e4" <> None);
  check Alcotest.bool "rejects nonsense" true (All.find "e99" = None)

let suite =
  [
    Alcotest.test_case "all experiments produce tables" `Slow
      test_all_experiments_produce_tables;
    Alcotest.test_case "key shapes hold" `Slow test_key_shapes_hold;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
  ]
