(* Workload validation: every synthetic program is checked against an
   OCaml reference implementation or its own ground truth before the
   experiment layers are allowed to rely on it. *)

open Dift_isa
open Dift_vm
open Dift_workloads

let check = Alcotest.check

let run ?config program input =
  let m = Machine.create ?config program ~input in
  let o = Machine.run m in
  (m, o)

let expect_halted name o =
  match o with
  | Event.Halted -> ()
  | o -> Alcotest.failf "%s: expected halted, got %a" name Event.pp_outcome o

let run_workload ?config (w : Workload.t) ~size ~seed =
  let input = w.Workload.input ~size ~seed in
  let m, o = run ?config w.Workload.program input in
  (input, m, o)

(* -- spec-like kernels ---------------------------------------------------- *)

let test_all_kernels_halt () =
  List.iter
    (fun (w : Workload.t) ->
      let _, _, o = run_workload w ~size:10 ~seed:1 in
      expect_halted w.Workload.name o)
    Spec_like.all

let test_matmul_reference () =
  let w = Spec_like.matmul in
  let input = w.Workload.input ~size:4 ~seed:3 in
  let n = input.(0) in
  let a i j = input.(1 + (i * n) + j) in
  let bm i j = input.(1 + (n * n) + (i * n) + j) in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref 0 in
      for k = 0 to n - 1 do
        s := !s + (a i k * bm k j)
      done;
      expected := !expected lxor !s
    done
  done;
  let m, o = run w.Workload.program input in
  expect_halted "matmul" o;
  check Alcotest.(list int) "checksum" [ !expected ] (Machine.output_values m)

let test_qsort_reference () =
  let w = Spec_like.qsort in
  let input = w.Workload.input ~size:40 ~seed:9 in
  let n = input.(0) in
  let data = Array.sub input 1 n in
  Array.sort compare data;
  (* all but the last element are accumulated by the kernel's verify
     loop *)
  let expected = Array.fold_left ( + ) 0 data - data.(n - 1) in
  let m, o = run w.Workload.program input in
  expect_halted "qsort" o;
  check Alcotest.(list int) "sum of sorted prefix" [ expected ]
    (Machine.output_values m)

let test_sieve_reference () =
  let input = [| 30 |] in
  let m, o = run Spec_like.sieve.Workload.program input in
  expect_halted "sieve" o;
  (* primes below 30: 2 3 5 7 11 13 17 19 23 29 *)
  check Alcotest.(list int) "primes below 30" [ 10 ]
    (Machine.output_values m)

let test_crc_reference () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:50 ~seed:5 in
  let n = input.(0) in
  let crc = ref 65521 in
  for i = 0 to n - 1 do
    let word = input.(1 + i) in
    crc := ((!crc lsl 1) lxor (!crc lsr 15) lxor word) land 0xFFFF
  done;
  let m, o = run w.Workload.program input in
  expect_halted "crc" o;
  check Alcotest.(list int) "crc" [ !crc ] (Machine.output_values m)

let test_search_reference () =
  let w = Spec_like.search in
  let input = w.Workload.input ~size:60 ~seed:2 in
  let m_len = input.(0) in
  let pat = Array.sub input 1 m_len in
  let n = input.(1 + m_len) in
  let text = Array.sub input (2 + m_len) n in
  let count = ref 0 in
  for i = 0 to n - m_len do
    let ok = ref true in
    for j = 0 to m_len - 1 do
      if text.(i + j) <> pat.(j) then ok := false
    done;
    if !ok then incr count
  done;
  let m, o = run w.Workload.program input in
  expect_halted "search" o;
  check Alcotest.(list int) "matches" [ !count ] (Machine.output_values m)

let test_hash_deterministic () =
  let w = Spec_like.hash in
  let input = w.Workload.input ~size:50 ~seed:4 in
  let m1, o1 = run w.Workload.program input in
  let m2, o2 = run w.Workload.program input in
  expect_halted "hash" o1;
  expect_halted "hash" o2;
  check Alcotest.(list int) "deterministic" (Machine.output_values m1)
    (Machine.output_values m2)

let test_poly_reference () =
  let w = Spec_like.poly in
  let input = w.Workload.input ~size:5 ~seed:8 in
  let deg = input.(0) in
  let coeffs = Array.sub input 1 deg in
  let mpts = input.(1 + deg) in
  let xs = Array.sub input (2 + deg) mpts in
  let acc = ref 0 in
  Array.iter
    (fun x ->
      let v = ref 0 in
      Array.iter (fun c -> v := (((!v * x) + c) mod 1_000_003)) coeffs;
      acc := !acc lxor !v)
    xs;
  let m, o = run w.Workload.program input in
  expect_halted "poly" o;
  check Alcotest.(list int) "poly" [ !acc ] (Machine.output_values m)

let test_butterfly_reference () =
  let w = Spec_like.butterfly in
  let input = w.Workload.input ~size:4 ~seed:6 in
  let log2n = input.(0) in
  let n = 1 lsl log2n in
  let a = Array.sub input 1 n in
  for p = 0 to log2n - 1 do
    let stride = 1 lsl p in
    for i = 0 to n - 1 do
      let partner = i lxor stride in
      if i < partner then begin
        let x = a.(i) and y = a.(partner) in
        a.(i) <- x + y;
        a.(partner) <- x - y
      end
    done
  done;
  let expected = Array.fold_left ( lxor ) 0 a in
  let m, o = run w.Workload.program input in
  expect_halted "butterfly" o;
  check Alcotest.(list int) "butterfly checksum" [ expected ]
    (Machine.output_values m)

let test_bfs_reference () =
  let w = Spec_like.bfs in
  let input = w.Workload.input ~size:20 ~seed:4 in
  let n = input.(0) in
  let degrees = Array.sub input 1 n in
  let total_edges = Array.fold_left ( + ) 0 degrees in
  let edges = Array.sub input (1 + n) total_edges in
  (* reference BFS *)
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offsets.(i + 1) <- offsets.(i) + degrees.(i)
  done;
  let level = Array.make n (-1) in
  level.(0) <- 0;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    for e = offsets.(u) to offsets.(u + 1) - 1 do
      let v = edges.(e) in
      if level.(v) < 0 then begin
        level.(v) <- level.(u) + 1;
        Queue.add v q
      end
    done
  done;
  let reachable = Array.fold_left (fun a l -> if l >= 0 then a + 1 else a) 0 level in
  let level_sum = Array.fold_left (fun a l -> if l >= 0 then a + l else a) 0 level in
  let m, o = run w.Workload.program input in
  expect_halted "bfs" o;
  check Alcotest.(list int) "bfs results" [ reachable; level_sum ]
    (Machine.output_values m)

(* -- buggy corpus ---------------------------------------------------------- *)

let test_buggy_cases () =
  List.iter
    (fun (c : Buggy.case) ->
      let _, o_pass = run c.Buggy.program c.Buggy.passing_input in
      (match o_pass with
      | Event.Halted -> ()
      | o ->
          Alcotest.failf "%s: passing input should halt, got %a" c.Buggy.name
            Event.pp_outcome o);
      let _, o_fail = run c.Buggy.program c.Buggy.failing_input in
      match o_fail with
      | Event.Faulted _ -> ()
      | o ->
          Alcotest.failf "%s: failing input should fault, got %a"
            c.Buggy.name Event.pp_outcome o)
    Buggy.all

let test_buggy_sites_recorded () =
  List.iter
    (fun (c : Buggy.case) ->
      let fname, pc = c.Buggy.faulty_site in
      let f = Program.find c.Buggy.program fname in
      Alcotest.(check bool)
        (Fmt.str "%s: site pc in range" c.Buggy.name)
        true
        (pc >= 0 && pc < Func.length f))
    Buggy.all

(* -- vulnerable corpus ------------------------------------------------------ *)

let test_vulnerable_benign () =
  List.iter
    (fun (c : Vulnerable.case) ->
      let m, o = run c.Vulnerable.program c.Vulnerable.benign_input in
      (match o with
      | Event.Halted -> ()
      | o ->
          Alcotest.failf "%s benign: %a" c.Vulnerable.name Event.pp_outcome o);
      (* benign run calls the legitimate handler, never evil *)
      Alcotest.(check bool)
        (Fmt.str "%s benign output" c.Vulnerable.name)
        false
        (List.mem 666 (Machine.output_values m)))
    Vulnerable.all

(* Undefended, every attack hijacks control to [evil]. *)
let test_vulnerable_attacks_succeed () =
  List.iter
    (fun (c : Vulnerable.case) ->
      let m, _ = run c.Vulnerable.program c.Vulnerable.attack_input in
      Alcotest.(check bool)
        (Fmt.str "%s attack reaches evil" c.Vulnerable.name)
        true
        (List.mem 666 (Machine.output_values m)))
    Vulnerable.all

(* Heap padding (the environment patch) defeats the heap-based attack. *)
let test_heap_padding_defeats_overflow () =
  let c = Vulnerable.heap_overflow in
  let config = { Machine.default_config with heap_padding = 4 } in
  let m, o = run ~config c.Vulnerable.program c.Vulnerable.attack_input in
  (match o with
  | Event.Halted -> ()
  | o -> Alcotest.failf "padded attack run: %a" Event.pp_outcome o);
  Alcotest.(check bool)
    "evil not reached under padding" false
    (List.mem 666 (Machine.output_values m))

(* -- server simulation ------------------------------------------------------- *)

let test_server_clean_run () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:40 ~seed:11 () in
  let m, o = run p batch.Server_sim.input in
  (match o with
  | Event.Halted -> ()
  | o -> Alcotest.failf "clean server run: %a" Event.pp_outcome o);
  ignore m

let test_server_faulty_run () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:40 ~seed:11 ~faulty:true () in
  Alcotest.(check bool)
    "admin request present" true
    (batch.Server_sim.admin_index <> None);
  Alcotest.(check bool)
    "failing get present" true
    (batch.Server_sim.first_failing_get <> None);
  let _, o = run p batch.Server_sim.input in
  match o with
  | Event.Faulted { kind = Event.Check_failed; _ } -> ()
  | o -> Alcotest.failf "faulty server run: %a" Event.pp_outcome o

let test_server_faulty_run_any_seed () =
  let p = Server_sim.program () in
  List.iter
    (fun seed ->
      let batch = Server_sim.generate ~requests:30 ~seed ~faulty:true () in
      let config = { Machine.default_config with seed } in
      let m = Machine.create ~config p ~input:batch.Server_sim.input in
      match Machine.run m with
      | Event.Faulted { kind = Event.Check_failed; _ } -> ()
      | o ->
          Alcotest.failf "faulty server seed %d: %a" seed Event.pp_outcome o)
    [ 1; 2; 3 ]

(* -- splash-like kernels ------------------------------------------------------ *)

let test_stencil_deterministic_with_barrier () =
  let p = Splash_like.stencil () in
  let input = Splash_like.stencil_input ~size:24 ~seed:3 in
  let outputs =
    List.map
      (fun seed ->
        let config =
          { Machine.default_config with seed; quantum_min = 3;
            quantum_max = 17 }
        in
        let m = Machine.create ~config p ~input in
        (match Machine.run m with
        | Event.Halted -> ()
        | o -> Alcotest.failf "stencil seed %d: %a" seed Event.pp_outcome o);
        Machine.output_values m)
      [ 1; 2; 3; 4 ]
  in
  match outputs with
  | first :: rest ->
      List.iter
        (fun o -> check Alcotest.(list int) "same checksum" first o)
        rest
  | [] -> Alcotest.fail "no runs"

let test_bank_conserves_total () =
  let p = Splash_like.bank () in
  let input = Splash_like.bank_input ~size:50 ~seed:0 in
  List.iter
    (fun seed ->
      let config =
        { Machine.default_config with seed; quantum_min = 2; quantum_max = 9 }
      in
      let m = Machine.create ~config p ~input in
      (match Machine.run m with
      | Event.Halted -> ()
      | o -> Alcotest.failf "bank seed %d: %a" seed Event.pp_outcome o);
      check Alcotest.(list int) (Fmt.str "total seed %d" seed) [ 800 ]
        (Machine.output_values m))
    [ 5; 6; 7 ]

let test_bank_racy_loses_updates () =
  let p = Splash_like.bank_racy () in
  let input = Splash_like.bank_input ~size:80 ~seed:0 in
  let lost =
    List.exists
      (fun seed ->
        let config =
          { Machine.default_config with seed; quantum_min = 1;
            quantum_max = 4 }
        in
        let m = Machine.create ~config p ~input in
        ignore (Machine.run m);
        Machine.output_values m <> [ 800 ])
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Alcotest.(check bool) "some seed violates conservation" true lost

let test_flag_pipeline () =
  let p = Splash_like.flag_pipeline () in
  let n = 12 in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    expected := !expected + ((i * 7) + 1)
  done;
  List.iter
    (fun seed ->
      let config =
        { Machine.default_config with seed; quantum_min = 5;
          quantum_max = 30 }
      in
      let m = Machine.create ~config p ~input:[| n |] in
      (match Machine.run m with
      | Event.Halted -> ()
      | o -> Alcotest.failf "pipeline seed %d: %a" seed Event.pp_outcome o);
      check Alcotest.(list int) (Fmt.str "sum seed %d" seed) [ !expected ]
        (Machine.output_values m))
    [ 2; 3; 4 ]

(* -- scientific pipelines ------------------------------------------------------ *)

let test_moving_avg_reference () =
  let pl = Scientific.moving_avg in
  let input = pl.Scientific.input ~size:12 ~seed:6 in
  let n = input.(0) in
  let expected =
    List.init (n - 3) (fun i ->
        (input.(1 + i) + input.(2 + i) + input.(3 + i) + input.(4 + i)) / 4)
  in
  let m, o = run pl.Scientific.program input in
  expect_halted "moving-avg" o;
  check Alcotest.(list int) "averages" expected (Machine.output_values m)

let test_histogram_reference () =
  let pl = Scientific.histogram in
  let input = pl.Scientific.input ~size:20 ~seed:7 in
  let n = input.(0) in
  let bins = Array.make 8 0 in
  for i = 0 to n - 1 do
    let v = input.(1 + i) in
    bins.(v mod 8) <- bins.(v mod 8) + v
  done;
  let m, o = run pl.Scientific.program input in
  expect_halted "histogram" o;
  check Alcotest.(list int) "bins" (Array.to_list bins)
    (Machine.output_values m)

let test_reduction_reference () =
  let pl = Scientific.reduction in
  let input = pl.Scientific.input ~size:30 ~seed:8 in
  let n = input.(0) in
  let sum = ref 0 in
  for i = 0 to n - 1 do
    sum := !sum + input.(1 + i)
  done;
  let m, o = run pl.Scientific.program input in
  expect_halted "reduction" o;
  check Alcotest.(list int) "sum" [ !sum ] (Machine.output_values m)

let test_join_reference () =
  let pl = Scientific.join in
  let input = pl.Scientific.input ~size:6 ~seed:9 in
  let n = input.(0) in
  let offa = 1 and offb = 2 + (2 * n) in
  let expected =
    List.concat
      (List.init n (fun i ->
           let ka = input.(offa + (2 * i)) in
           let va = input.(offa + (2 * i) + 1) in
           let rec find j =
             if j >= n then []
             else if input.(offb + (2 * j)) = ka then
               [ va + input.(offb + (2 * j) + 1) ]
             else find (j + 1)
           in
           find 0))
  in
  let m, o = run pl.Scientific.program input in
  expect_halted "join" o;
  check Alcotest.(list int) "joined sums" expected (Machine.output_values m)

let suite =
  [
    Alcotest.test_case "all kernels halt" `Quick test_all_kernels_halt;
    Alcotest.test_case "matmul vs reference" `Quick test_matmul_reference;
    Alcotest.test_case "qsort vs reference" `Quick test_qsort_reference;
    Alcotest.test_case "sieve vs reference" `Quick test_sieve_reference;
    Alcotest.test_case "crc vs reference" `Quick test_crc_reference;
    Alcotest.test_case "search vs reference" `Quick test_search_reference;
    Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
    Alcotest.test_case "poly vs reference" `Quick test_poly_reference;
    Alcotest.test_case "butterfly vs reference" `Quick
      test_butterfly_reference;
    Alcotest.test_case "bfs vs reference" `Quick test_bfs_reference;
    Alcotest.test_case "buggy corpus pass/fail" `Quick test_buggy_cases;
    Alcotest.test_case "buggy sites recorded" `Quick
      test_buggy_sites_recorded;
    Alcotest.test_case "vulnerable benign runs" `Quick
      test_vulnerable_benign;
    Alcotest.test_case "attacks succeed undefended" `Quick
      test_vulnerable_attacks_succeed;
    Alcotest.test_case "heap padding defeats overflow" `Quick
      test_heap_padding_defeats_overflow;
    Alcotest.test_case "server clean run" `Quick test_server_clean_run;
    Alcotest.test_case "server faulty run" `Quick test_server_faulty_run;
    Alcotest.test_case "server faulty across seeds" `Quick
      test_server_faulty_run_any_seed;
    Alcotest.test_case "stencil deterministic with barrier" `Quick
      test_stencil_deterministic_with_barrier;
    Alcotest.test_case "bank conserves total" `Quick
      test_bank_conserves_total;
    Alcotest.test_case "racy bank loses updates" `Quick
      test_bank_racy_loses_updates;
    Alcotest.test_case "flag pipeline" `Quick test_flag_pipeline;
    Alcotest.test_case "moving-avg vs reference" `Quick
      test_moving_avg_reference;
    Alcotest.test_case "histogram vs reference" `Quick
      test_histogram_reference;
    Alcotest.test_case "reduction vs reference" `Quick
      test_reduction_reference;
    Alcotest.test_case "join vs reference" `Quick test_join_reference;
  ]
