(* BDD correctness: hand cases plus QCheck properties cross-checking
   every operation against OCaml's reference Set implementation. *)

open Dift_bdd

module Int_set = Set.Make (Int)

let check = Alcotest.check

let test_singleton_mem () =
  let man = Bdd.manager () in
  let s = Bdd.singleton man 42 in
  check Alcotest.bool "mem 42" true (Bdd.mem 42 s);
  check Alcotest.bool "not mem 41" false (Bdd.mem 41 s);
  check Alcotest.int "cardinal" 1 (Bdd.cardinal s);
  check Alcotest.(list int) "elements" [ 42 ] (Bdd.elements s)

let test_union_basic () =
  let man = Bdd.manager () in
  let s = Bdd.of_list man [ 3; 1; 2; 3 ] in
  check Alcotest.(list int) "elements" [ 1; 2; 3 ] (Bdd.elements s);
  check Alcotest.int "cardinal" 3 (Bdd.cardinal s)

let test_hash_consing_shares () =
  let man = Bdd.manager () in
  let a = Bdd.of_list man [ 1; 2; 3 ] in
  let b = Bdd.of_list man [ 3; 2; 1 ] in
  check Alcotest.bool "same physical node" true (Bdd.equal a b)

let test_clustered_sets_share_nodes () =
  let man = Bdd.manager () in
  (* 100 windows of 64 adjacent elements: heavy overlap, large sets —
     the regime the paper's lineage sets live in *)
  let sets =
    List.init 100 (fun i -> Bdd.of_list man (List.init 64 (fun j -> i + j)))
  in
  ignore (Bdd.unique_nodes man);
  let live_unique = Bdd.family_node_count sets in
  let sum_individual =
    List.fold_left (fun acc s -> acc + Bdd.node_count s) 0 sets
  in
  check Alcotest.bool
    (Fmt.str "sharing: %d live unique < %d summed" live_unique
       sum_individual)
    true
    (live_unique * 4 < sum_individual * 3);
  (* Per-set compression on a big clustered set — the regime where
     roBDDs beat explicit sets outright. *)
  let big = Bdd.of_list man (List.init 4000 (fun i -> 100 + i)) in
  check Alcotest.int "big cardinal" 4000 (Bdd.cardinal big);
  check Alcotest.bool
    (Fmt.str "big set compresses: %d nodes for 4000 elements"
       (Bdd.node_count big))
    true
    (Bdd.node_count big * 8 < 4000)

let test_empty_and_diff () =
  let man = Bdd.manager () in
  let a = Bdd.of_list man [ 1; 2; 3 ] in
  let b = Bdd.of_list man [ 2 ] in
  let d = Bdd.diff man a b in
  check Alcotest.(list int) "diff" [ 1; 3 ] (Bdd.elements d);
  check Alcotest.bool "a diff a empty" true
    (Bdd.is_empty (Bdd.diff man a a));
  check Alcotest.bool "zero empty" true (Bdd.is_empty Bdd.zero)

(* -- QCheck: random set-algebra terms ------------------------------------- *)

type term =
  | Lit of int list
  | Union of term * term
  | Inter of term * term
  | Diff of term * term

let rec eval_ref = function
  | Lit xs -> Int_set.of_list xs
  | Union (a, b) -> Int_set.union (eval_ref a) (eval_ref b)
  | Inter (a, b) -> Int_set.inter (eval_ref a) (eval_ref b)
  | Diff (a, b) -> Int_set.diff (eval_ref a) (eval_ref b)

let rec eval_bdd man = function
  | Lit xs -> Bdd.of_list man xs
  | Union (a, b) -> Bdd.union man (eval_bdd man a) (eval_bdd man b)
  | Inter (a, b) -> Bdd.inter man (eval_bdd man a) (eval_bdd man b)
  | Diff (a, b) -> Bdd.diff man (eval_bdd man a) (eval_bdd man b)

let term_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then
             map (fun xs -> Lit xs) (list_size (0 -- 8) (0 -- 200))
           else
             oneof
               [
                 map (fun xs -> Lit xs) (list_size (0 -- 8) (0 -- 200));
                 map2
                   (fun a b -> Union (a, b))
                   (self (n / 2)) (self (n / 2));
                 map2
                   (fun a b -> Inter (a, b))
                   (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Diff (a, b)) (self (n / 2)) (self (n / 2));
               ]))

let prop_term_agrees =
  QCheck2.Test.make ~count:300 ~name:"bdd set algebra agrees with Set"
    term_gen (fun t ->
      let man = Bdd.manager () in
      let reference = Int_set.elements (eval_ref t) in
      let via_bdd = Bdd.elements (eval_bdd man t) in
      reference = via_bdd)

let prop_cardinal =
  QCheck2.Test.make ~count:200 ~name:"bdd cardinal agrees with Set"
    term_gen (fun t ->
      let man = Bdd.manager () in
      Int_set.cardinal (eval_ref t) = Bdd.cardinal (eval_bdd man t))

let prop_mem =
  QCheck2.Test.make ~count:200 ~name:"bdd mem agrees with Set"
    QCheck2.Gen.(pair term_gen (0 -- 220))
    (fun (t, x) ->
      let man = Bdd.manager () in
      Int_set.mem x (eval_ref t) = Bdd.mem x (eval_bdd man t))

let prop_union_idempotent =
  QCheck2.Test.make ~count:100 ~name:"union is idempotent (hash-consed)"
    term_gen (fun t ->
      let man = Bdd.manager () in
      let s = eval_bdd man t in
      Bdd.equal s (Bdd.union man s s))

let suite =
  [
    Alcotest.test_case "singleton/mem" `Quick test_singleton_mem;
    Alcotest.test_case "union basics" `Quick test_union_basic;
    Alcotest.test_case "hash consing shares" `Quick test_hash_consing_shares;
    Alcotest.test_case "clustered sets share nodes" `Quick
      test_clustered_sets_share_nodes;
    Alcotest.test_case "diff and empty" `Quick test_empty_and_diff;
    QCheck_alcotest.to_alcotest prop_term_agrees;
    QCheck_alcotest.to_alcotest prop_cardinal;
    QCheck_alcotest.to_alcotest prop_mem;
    QCheck_alcotest.to_alcotest prop_union_idempotent;
  ]
