(* Environment-fault avoidance (paper §3.2): the framework captures a
   failure, finds an environment patch that dodges it, and the patched
   environment keeps future runs safe — for all three fault classes
   the paper studies. *)

open Dift_vm
open Dift_workloads
open Dift_avoidance

let check = Alcotest.check

(* Find a scheduler seed under which the racy bank actually violates
   conservation (the atomicity violation manifests). *)
let failing_bank_config () =
  let p = Splash_like.bank_racy_checked ~threads:2 () in
  let input = Splash_like.bank_input ~size:80 ~seed:0 in
  let rec hunt seed =
    if seed > 40 then None
    else begin
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 4 }
      in
      let m = Machine.create ~config p ~input in
      match Machine.run m with
      | Event.Faulted _ -> Some (p, input, config)
      | _ -> hunt (seed + 1)
    end
  in
  hunt 1

let test_atomicity_violation_avoided () =
  match failing_bank_config () with
  | None -> Alcotest.fail "no failing schedule found"
  | Some (p, input, config) ->
      let r = Framework.avoid ~config p ~input in
      check Alcotest.bool "fault captured" true
        (r.Framework.original_fault <> None);
      (match r.Framework.fix with
      | Some (Env_patch.Reschedule _) -> ()
      | Some other ->
          Alcotest.failf "expected a scheduling patch, got %s"
            (Env_patch.to_string other)
      | None -> Alcotest.fail "no patch found");
      check Alcotest.bool "future runs pass" true r.Framework.rerun_ok

let test_heap_overflow_avoided () =
  let c = Vulnerable.heap_overflow in
  (* bounds checking turns the overflow into an observable fault *)
  let config = { Machine.default_config with check_bounds = true } in
  let r =
    Framework.avoid ~config c.Vulnerable.program
      ~input:c.Vulnerable.attack_input
  in
  (match r.Framework.original_fault with
  | Some { kind = Event.Out_of_bounds _; _ } -> ()
  | Some f -> Alcotest.failf "unexpected fault %a" Event.pp_fault f
  | None -> Alcotest.fail "no fault captured");
  (match r.Framework.fix with
  | Some (Env_patch.Pad_heap _) -> ()
  | Some other ->
      Alcotest.failf "expected a padding patch, got %s"
        (Env_patch.to_string other)
  | None -> Alcotest.fail "no patch found");
  check Alcotest.bool "future runs pass" true r.Framework.rerun_ok;
  (* and the padded run must not reach the attacker's code either *)
  (match r.Framework.fix with
  | Some patch ->
      let config' = Env_patch.apply patch config in
      let m =
        Machine.create ~config:config' c.Vulnerable.program
          ~input:c.Vulnerable.attack_input
      in
      ignore (Machine.run m);
      check Alcotest.bool "hijack also gone" false
        (List.mem 666 (Machine.output_values m))
  | None -> ())

let test_malformed_request_avoided () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:40 ~seed:11 ~faulty:true () in
  (* request r's opcode is input word 1 + 3r *)
  let request_input_index r = 1 + (3 * r) in
  let r =
    Framework.avoid p ~input:batch.Server_sim.input ~request_input_index
  in
  check Alcotest.bool "fault captured" true
    (r.Framework.original_fault <> None);
  (match r.Framework.fix with
  | Some (Env_patch.Neutralize_input ovs) ->
      (* the neutralised request must be the corrupting ADMIN one *)
      let admin =
        match batch.Server_sim.admin_index with
        | Some a -> a
        | None -> Alcotest.fail "no admin request"
      in
      check Alcotest.bool "admin request neutralised" true
        (List.mem_assoc (request_input_index admin) ovs)
  | Some other ->
      Alcotest.failf "expected input neutralisation, got %s"
        (Env_patch.to_string other)
  | None -> Alcotest.fail "no patch found");
  check Alcotest.bool "future runs pass" true r.Framework.rerun_ok

let test_deadlock_avoided () =
  let p = Splash_like.lock_order_deadlock () in
  let rec hunt seed =
    if seed > 60 then None
    else begin
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 3 }
      in
      let m = Machine.create ~config p ~input:[||] in
      match Machine.run m with
      | Event.Deadlocked -> Some config
      | _ -> hunt (seed + 1)
    end
  in
  match hunt 1 with
  | None -> Alcotest.fail "no deadlocking schedule found"
  | Some config ->
      let r = Framework.avoid ~config p ~input:[||] in
      (match r.Framework.fix with
      | Some (Env_patch.Reschedule _) -> ()
      | Some other ->
          Alcotest.failf "expected a scheduling patch, got %s"
            (Env_patch.to_string other)
      | None -> Alcotest.fail "no patch found");
      check Alcotest.bool "future runs pass" true r.Framework.rerun_ok

let test_patch_serialisation_roundtrip () =
  let patches =
    [
      Env_patch.Reschedule { seed = 7; quantum_min = 100; quantum_max = 200 };
      Env_patch.Pad_heap 16;
      Env_patch.Neutralize_input [ (4, 0); (11, 9) ];
    ]
  in
  List.iter
    (fun patch ->
      match Env_patch.parse (Env_patch.serialize patch) with
      | Some p ->
          check Alcotest.string "roundtrip" (Env_patch.to_string patch)
            (Env_patch.to_string p)
      | None ->
          Alcotest.failf "unparseable: %s" (Env_patch.serialize patch))
    patches;
  check Alcotest.bool "garbage rejected" true
    (Env_patch.parse "frobnicate 3" = None)

let test_no_patch_on_passing_run () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:20 ~seed:3 () in
  let r = Framework.avoid p ~input:batch.Server_sim.input in
  check Alcotest.bool "no fault" true (r.Framework.original_fault = None);
  check Alcotest.bool "no patch" true (r.Framework.fix = None);
  check Alcotest.bool "run ok" true r.Framework.rerun_ok

let suite =
  [
    Alcotest.test_case "atomicity violation avoided" `Quick
      test_atomicity_violation_avoided;
    Alcotest.test_case "heap overflow avoided" `Quick
      test_heap_overflow_avoided;
    Alcotest.test_case "malformed request avoided" `Quick
      test_malformed_request_avoided;
    Alcotest.test_case "deadlock avoided" `Quick test_deadlock_avoided;
    Alcotest.test_case "patch serialisation" `Quick
      test_patch_serialisation_roundtrip;
    Alcotest.test_case "no patch on passing run" `Quick
      test_no_patch_on_passing_run;
  ]
