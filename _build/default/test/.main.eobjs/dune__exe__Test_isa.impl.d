test/test_isa.ml: Alcotest Builder Cfg Dift_isa Fmt Func Instr List Operand Option Postdom Program Random Reg
