test/test_replay.ml: Alcotest Dift_replay Dift_vm Dift_workloads Event Fmt List Machine Reduction Request_log Rerun Server_sim
