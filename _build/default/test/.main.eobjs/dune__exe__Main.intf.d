test/main.mli:
