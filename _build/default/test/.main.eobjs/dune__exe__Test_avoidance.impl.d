test/test_avoidance.ml: Alcotest Dift_avoidance Dift_vm Dift_workloads Env_patch Event Framework List Machine Server_sim Splash_like Vulnerable
