test/test_tm.ml: Alcotest Dift_tm Dift_vm Dift_workloads Fmt Machine Spec_like Splash_like Stm_exec Workload
