test/test_attack.ml: Alcotest Builder Detector Dift_attack Dift_core Dift_isa Dift_vm Dift_workloads Fmt List Machine Operand Program Reg Vulnerable
