test/test_tm_extra.ml: Alcotest Builder Dift_isa Dift_tm Dift_vm Dift_workloads Fmt Lazy List Machine Operand Program Reg Spec_like Splash_like Stm_exec Workload
