test/test_parallel.ml: Alcotest Dift_core Dift_parallel Dift_vm Dift_workloads Domain Fmt List Machine Parallel Policy Spec_like Spsc Unix Workload
