test/test_props.ml: Array Builder Ddg Ddg_io Dep Dift_core Dift_isa Dift_vm Encoding Engine Event Instr List Machine Ontrac Operand Program QCheck2 QCheck_alcotest Reg Slicing Taint Trace_buffer
