test/test_workloads.ml: Alcotest Array Buggy Dift_isa Dift_vm Dift_workloads Event Fmt Func List Machine Program Queue Scientific Server_sim Spec_like Splash_like Vulnerable Workload
