test/test_lineage.ml: Alcotest Dift_lineage Dift_workloads Fmt List Scientific Tracer
