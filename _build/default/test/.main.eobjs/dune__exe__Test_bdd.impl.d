test/test_bdd.ml: Alcotest Bdd Dift_bdd Fmt Int List QCheck2 QCheck_alcotest Set
