test/test_adaptive.ml: Adaptive Alcotest Builder Dift_core Dift_isa Dift_vm List Machine Operand Program Reg
