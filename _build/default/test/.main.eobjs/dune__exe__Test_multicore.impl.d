test/test_multicore.ml: Alcotest Dift_core Dift_multicore Dift_vm Dift_workloads Engine Fmt Helper List Machine Spec_like Taint Workload
