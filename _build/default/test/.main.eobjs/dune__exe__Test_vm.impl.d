test/test_vm.ml: Alcotest Builder Dift_isa Dift_vm Event Fmt Instr List Machine Operand Program Reg
