(* Tests for the ISA library: builder label resolution, CFG
   construction, and postdominator computation. *)

open Dift_isa

let check = Alcotest.check
let int_list = Alcotest.(list int)

(* A diamond: 0:br -> (1,2); 1: jmp 3; 2: ...; 3: ret *)
let diamond () =
  Builder.define ~name:"diamond" ~arity:0 (fun b ->
      Builder.br b (Operand.reg Reg.r0) ~taken:"left" ~fallthrough:"right";
      Builder.label b "left";
      Builder.movi b Reg.r1 1;
      Builder.jmp b "join";
      Builder.label b "right";
      Builder.movi b Reg.r1 2;
      Builder.label b "join";
      Builder.ret b (Some (Operand.reg Reg.r1)))

let test_builder_labels () =
  let f = diamond () in
  check Alcotest.int "length" 5 (Func.length f);
  (match Func.instr f 0 with
  | Instr.Br (_, t, fl) ->
      check Alcotest.int "taken" 1 t;
      check Alcotest.int "fallthrough" 3 fl
  | i -> Alcotest.failf "expected Br, got %a" Instr.pp i);
  match Func.instr f 2 with
  | Instr.Jmp t -> check Alcotest.int "jmp target" 4 t
  | i -> Alcotest.failf "expected Jmp, got %a" Instr.pp i

let test_builder_unknown_label () =
  Alcotest.check_raises "unknown label"
    (Invalid_argument "Builder.build: unknown label nowhere in bad")
    (fun () ->
      ignore
        (Builder.define ~name:"bad" ~arity:0 (fun b ->
             Builder.jmp b "nowhere";
             Builder.halt b)))

let test_builder_duplicate_label () =
  let b = Builder.create ~name:"dup" ~arity:0 in
  Builder.label b "x";
  Builder.nop b;
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Builder.label: duplicate label x in dup") (fun () ->
      Builder.label b "x")

let test_cfg_diamond () =
  let f = diamond () in
  let cfg = Cfg.build f in
  check int_list "succ of br" [ 1; 3 ] (List.sort compare (Cfg.succ cfg 0));
  check int_list "succ of jmp" [ 4 ] (Cfg.succ cfg 2);
  check int_list "succ of ret" [ 5 ] (Cfg.succ cfg 4);
  check Alcotest.int "blocks" 4 (Cfg.num_blocks cfg);
  check Alcotest.int "block of 1 = block of 2" (Cfg.block_of cfg 1)
    (Cfg.block_of cfg 2);
  Alcotest.(check bool)
    "br and left in different blocks" true
    (Cfg.block_of cfg 0 <> Cfg.block_of cfg 1)

let test_postdom_diamond () =
  let f = diamond () in
  let cfg = Cfg.build f in
  let pd = Postdom.compute cfg in
  (* The join (index 4) postdominates the branch (index 0). *)
  check Alcotest.int "ipdom of branch" 4 (Postdom.ipdom pd 0);
  Alcotest.(check bool)
    "join postdominates branch" true
    (Postdom.postdominates pd ~node:4 ~of_:0);
  Alcotest.(check bool)
    "left arm does not postdominate branch" false
    (Postdom.postdominates pd ~node:1 ~of_:0)

(* Straight-line code: each instruction's ipdom is its successor. *)
let test_postdom_straightline () =
  let f =
    Builder.define ~name:"line" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 1;
        Builder.movi b Reg.r1 2;
        Builder.add b Reg.r2 (Operand.reg Reg.r0) (Operand.reg Reg.r1);
        Builder.ret b (Some (Operand.reg Reg.r2)))
  in
  let pd = Postdom.compute (Cfg.build f) in
  check Alcotest.int "ipdom 0" 1 (Postdom.ipdom pd 0);
  check Alcotest.int "ipdom 1" 2 (Postdom.ipdom pd 1);
  check Alcotest.int "ipdom 2" 3 (Postdom.ipdom pd 2)

(* A loop whose body is conditionally skipped: the loop head's ipdom is
   the exit-side instruction. *)
let test_postdom_loop () =
  let f =
    Builder.define ~name:"loop" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 0;
        Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
          ~below:(Operand.imm 10) (fun () ->
            Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.reg Reg.r1));
        Builder.ret b (Some (Operand.reg Reg.r0)))
  in
  let cfg = Cfg.build f in
  let pd = Postdom.compute cfg in
  (* The backward-branch test (Br) is at some index; its ipdom must be
     reachable and eventually lead to the ret. *)
  let n = Func.length f in
  for i = 0 to n - 1 do
    let d = Postdom.ipdom pd i in
    Alcotest.(check bool)
      (Fmt.str "ipdom %d in range" i)
      true
      (d >= 0 && d <= n)
  done;
  (* Every instruction is postdominated by the return. *)
  let ret_idx = n - 1 in
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Fmt.str "ret postdominates %d" i)
      true
      (Postdom.postdominates pd ~node:ret_idx ~of_:i)
  done

(* Brute-force postdominator check on random CFGs: node [d]
   postdominates [v] iff every path from [v] to exit passes through
   [d].  We enumerate paths by DFS with visited sets (graphs are tiny). *)
let brute_postdominates cfg ~node ~of_ =
  let exit = Cfg.exit_node cfg in
  (* Does there exist a path from [of_] to exit avoiding [node]? *)
  let rec search visited v =
    if v = node then false
    else if v = exit then true
    else if List.mem v visited then false
    else List.exists (search (v :: visited)) (Cfg.succ cfg v)
  in
  if of_ = node then true else not (search [] of_)

let random_func rng =
  (* Random structured function: sequence of arithmetic, conditionals
     and early returns. *)
  let n_instr = 4 + Random.State.int rng 12 in
  Builder.define ~name:"rand" ~arity:0 (fun b ->
      for i = 0 to n_instr - 1 do
        match Random.State.int rng 4 with
        | 0 -> Builder.movi b Reg.r0 i
        | 1 -> Builder.add b Reg.r1 (Operand.reg Reg.r0) (Operand.imm 1)
        | 2 ->
            Builder.if_nz1 b (Operand.reg Reg.r0) (fun () ->
                Builder.movi b Reg.r2 i)
        | _ ->
            Builder.if_nz b (Operand.reg Reg.r1)
              ~then_:(fun () -> Builder.movi b Reg.r3 i)
              ~else_:(fun () -> Builder.movi b Reg.r4 i)
      done;
      Builder.ret b None)

let test_postdom_vs_brute () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 25 do
    let f = random_func rng in
    let cfg = Cfg.build f in
    let pd = Postdom.compute cfg in
    let n = Func.length f in
    for v = 0 to n - 1 do
      for d = 0 to n - 1 do
        let fast = Postdom.postdominates pd ~node:d ~of_:v in
        let slow = brute_postdominates cfg ~node:d ~of_:v in
        if fast <> slow then
          Alcotest.failf "postdom mismatch in %a: node=%d of=%d fast=%b"
            Func.pp f d v fast
      done
    done
  done

let test_program_func_ids () =
  let f1 = Builder.define ~name:"a" ~arity:0 (fun b -> Builder.halt b) in
  let f2 = Builder.define ~name:"b" ~arity:0 (fun b -> Builder.halt b) in
  let p = Program.make ~entry:"a" [ f1; f2 ] in
  check Alcotest.int "id of a" 0 (Program.func_id p "a");
  check Alcotest.int "id of b" 1 (Program.func_id p "b");
  (match Program.func_of_id p 1 with
  | Some f -> check Alcotest.string "name" "b" f.Func.name
  | None -> Alcotest.fail "func_of_id 1");
  check Alcotest.bool "invalid id" true (Program.func_of_id p 99 = None)

let test_uses_def () =
  let i = Instr.Binop (Instr.Add, Reg.r2, Operand.reg Reg.r0, Operand.reg Reg.r1) in
  check int_list "uses" [ 0; 1 ] (List.map Reg.index (Instr.uses i));
  check Alcotest.(option int) "def" (Some 2)
    (Option.map Reg.index (Instr.def i))

let suite =
  [
    Alcotest.test_case "builder resolves labels" `Quick test_builder_labels;
    Alcotest.test_case "builder rejects unknown label" `Quick
      test_builder_unknown_label;
    Alcotest.test_case "builder rejects duplicate label" `Quick
      test_builder_duplicate_label;
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "postdom diamond" `Quick test_postdom_diamond;
    Alcotest.test_case "postdom straight line" `Quick
      test_postdom_straightline;
    Alcotest.test_case "postdom loop" `Quick test_postdom_loop;
    Alcotest.test_case "postdom vs brute force" `Quick test_postdom_vs_brute;
    Alcotest.test_case "program function ids" `Quick test_program_func_ids;
    Alcotest.test_case "instr uses/def" `Quick test_uses_def;
  ]
