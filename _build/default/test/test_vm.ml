(* Tests for the virtual machine: instruction semantics, threading,
   synchronisation, faults, replay and checkpointing. *)

open Dift_isa
open Dift_vm

let check = Alcotest.check

let run_program ?config ?(input = [||]) funcs =
  let p = Program.make funcs in
  let m = Machine.create ?config p ~input in
  let outcome = Machine.run m in
  (m, outcome)

let expect_halted outcome =
  match outcome with
  | Event.Halted -> ()
  | o -> Alcotest.failf "expected halted, got %a" Event.pp_outcome o

(* r0 <- 2 + 3; write r0; halt *)
let test_arith () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.add b Reg.r0 (Operand.imm 2) (Operand.imm 3);
        Builder.write b (Operand.reg Reg.r0);
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "output" [ 5 ] (Machine.output_values m)

let test_alu_ops () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        let w op x y =
          Builder.binop b op Reg.r0 (Operand.imm x) (Operand.imm y);
          Builder.write b (Operand.reg Reg.r0)
        in
        w Instr.Add 7 3;
        w Instr.Sub 7 3;
        w Instr.Mul 7 3;
        w Instr.Div 7 3;
        w Instr.Rem 7 3;
        w Instr.And 6 3;
        w Instr.Or 6 3;
        w Instr.Xor 6 3;
        w Instr.Shl 3 2;
        w Instr.Shr 12 2;
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check
    Alcotest.(list int)
    "alu results"
    [ 10; 4; 21; 2; 1; 2; 7; 5; 12; 3 ]
    (Machine.output_values m)

let test_cmp_ops () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        let w op x y =
          Builder.cmp b op Reg.r0 (Operand.imm x) (Operand.imm y);
          Builder.write b (Operand.reg Reg.r0)
        in
        w Instr.Eq 4 4;
        w Instr.Ne 4 4;
        w Instr.Lt 3 4;
        w Instr.Le 4 4;
        w Instr.Gt 3 4;
        w Instr.Ge 4 4;
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "cmp results" [ 1; 0; 1; 1; 0; 1 ]
    (Machine.output_values m)

(* Sum 0..9 via a loop; tests branches and the for_up helper. *)
let test_loop_sum () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 0;
        Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
          ~below:(Operand.imm 10) (fun () ->
            Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.reg Reg.r1));
        Builder.write b (Operand.reg Reg.r0);
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "sum" [ 45 ] (Machine.output_values m)

let test_memory_ops () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 100;
        Builder.store b (Operand.imm 7) (Operand.reg Reg.r0) 5;
        Builder.load b Reg.r1 (Operand.reg Reg.r0) 5;
        Builder.write b (Operand.reg Reg.r1);
        (* unwritten memory reads as zero *)
        Builder.load b Reg.r2 (Operand.imm 555) 0;
        Builder.write b (Operand.reg Reg.r2);
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "mem" [ 7; 0 ] (Machine.output_values m)

(* Calls: args flow in, return value flows out, caller registers are
   untouched by callee clobbering. *)
let test_call_ret () =
  let double =
    Builder.define ~name:"double" ~arity:1 (fun b ->
        Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.reg Reg.r0);
        (* clobber a high register to prove isolation *)
        Builder.movi b Reg.r9 999;
        Builder.ret b (Some (Operand.reg Reg.r0)))
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r9 7;
        Builder.movi b Reg.r0 21;
        Builder.call b "double" ~ret:(Some Reg.r1);
        Builder.write b (Operand.reg Reg.r1);
        Builder.write b (Operand.reg Reg.r9);
        Builder.halt b)
  in
  let m, o = run_program [ main; double ] in
  expect_halted o;
  check Alcotest.(list int) "call" [ 42; 7 ] (Machine.output_values m)

let test_recursion () =
  (* fib via naive recursion *)
  let fib =
    Builder.define ~name:"fib" ~arity:1 (fun b ->
        Builder.lt b Reg.r1 (Operand.reg Reg.r0) (Operand.imm 2);
        Builder.if_nz b (Operand.reg Reg.r1)
          ~then_:(fun () -> Builder.ret b (Some (Operand.reg Reg.r0)))
          ~else_:(fun () ->
            Builder.mov b Reg.r5 (Operand.reg Reg.r0);
            Builder.sub b Reg.r0 (Operand.reg Reg.r5) (Operand.imm 1);
            Builder.call b "fib" ~ret:(Some Reg.r6);
            Builder.sub b Reg.r0 (Operand.reg Reg.r5) (Operand.imm 2);
            Builder.call b "fib" ~ret:(Some Reg.r7);
            Builder.add b Reg.r0 (Operand.reg Reg.r6) (Operand.reg Reg.r7);
            Builder.ret b (Some (Operand.reg Reg.r0))))
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 10;
        Builder.call b "fib" ~ret:(Some Reg.r1);
        Builder.write b (Operand.reg Reg.r1);
        Builder.halt b)
  in
  let m, o = run_program [ main; fib ] in
  expect_halted o;
  check Alcotest.(list int) "fib 10" [ 55 ] (Machine.output_values m)

let test_icall () =
  let f1 =
    Builder.define ~name:"inc" ~arity:1 (fun b ->
        Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.imm 1);
        Builder.ret b (Some (Operand.reg Reg.r0)))
  in
  let f2 =
    Builder.define ~name:"dec" ~arity:1 (fun b ->
        Builder.sub b Reg.r0 (Operand.reg Reg.r0) (Operand.imm 1);
        Builder.ret b (Some (Operand.reg Reg.r0)))
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 10;
        Builder.movi b Reg.r2 2;
        (* function id of "dec" is 2 given ordering [main; inc; dec] *)
        Builder.icall b (Operand.reg Reg.r2) ~ret:(Some Reg.r1);
        Builder.write b (Operand.reg Reg.r1);
        Builder.halt b)
  in
  let m, o = run_program [ main; f1; f2 ] in
  expect_halted o;
  check Alcotest.(list int) "icall dec" [ 9 ] (Machine.output_values m)

let test_icall_invalid () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 77;
        Builder.icall b (Operand.reg Reg.r0) ~ret:None;
        Builder.halt b)
  in
  let _, o = run_program [ main ] in
  match o with
  | Event.Faulted { kind = Event.Invalid_icall 77; _ } -> ()
  | o -> Alcotest.failf "expected invalid icall, got %a" Event.pp_outcome o

let test_div_by_zero () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r1 0;
        Builder.div b Reg.r0 (Operand.imm 5) (Operand.reg Reg.r1);
        Builder.halt b)
  in
  let _, o = run_program [ main ] in
  match o with
  | Event.Faulted { kind = Event.Div_by_zero; _ } -> ()
  | o -> Alcotest.failf "expected div fault, got %a" Event.pp_outcome o

let test_check_fault () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.check b (Operand.reg Reg.r0);
        Builder.write b (Operand.imm 1);
        Builder.halt b)
  in
  let _, o = run_program ~input:[| 0 |] [ main ] in
  (match o with
  | Event.Faulted { kind = Event.Check_failed; _ } -> ()
  | o -> Alcotest.failf "expected check fault, got %a" Event.pp_outcome o);
  let m2, o2 = run_program ~input:[| 1 |] [ main ] in
  expect_halted o2;
  check Alcotest.(list int) "passes" [ 1 ] (Machine.output_values m2)

let test_input_eof () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.read b Reg.r1;
        Builder.write b (Operand.reg Reg.r0);
        Builder.write b (Operand.reg Reg.r1);
        Builder.halt b)
  in
  let m, o = run_program ~input:[| 9 |] [ main ] in
  expect_halted o;
  check Alcotest.(list int) "eof" [ 9; -1 ] (Machine.output_values m)

let test_alloc_free () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.alloc b Reg.r0 (Operand.imm 4);
        Builder.store b (Operand.imm 11) (Operand.reg Reg.r0) 0;
        Builder.store b (Operand.imm 22) (Operand.reg Reg.r0) 3;
        Builder.load b Reg.r1 (Operand.reg Reg.r0) 3;
        Builder.write b (Operand.reg Reg.r1);
        Builder.free b (Operand.reg Reg.r0);
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "heap" [ 22 ] (Machine.output_values m)

let test_invalid_free () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.free b (Operand.imm 12345);
        Builder.halt b)
  in
  let _, o = run_program [ main ] in
  match o with
  | Event.Faulted { kind = Event.Invalid_free _; _ } -> ()
  | o -> Alcotest.failf "expected invalid free, got %a" Event.pp_outcome o

let test_bounds_checking () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.alloc b Reg.r0 (Operand.imm 4);
        Builder.store b (Operand.imm 1) (Operand.reg Reg.r0) 4;
        (* one past the end *)
        Builder.halt b)
  in
  let config = { Machine.default_config with check_bounds = true } in
  let _, o = run_program ~config [ main ] in
  match o with
  | Event.Faulted { kind = Event.Out_of_bounds _; _ } -> ()
  | o -> Alcotest.failf "expected bounds fault, got %a" Event.pp_outcome o

(* Two threads each add 1000 to a shared counter under a lock; the
   result must be exactly 2000. *)
let worker_body b =
  Builder.movi b Reg.r1 0;
  Builder.for_up b ~idx:Reg.r2 ~from_:(Operand.imm 0) ~below:(Operand.imm 1000)
    (fun () ->
      Builder.lock b (Operand.imm 1);
      Builder.load b Reg.r3 (Operand.imm 50) 0;
      Builder.add b Reg.r3 (Operand.reg Reg.r3) (Operand.imm 1);
      Builder.store b (Operand.reg Reg.r3) (Operand.imm 50) 0;
      Builder.unlock b (Operand.imm 1));
  Builder.ret b None

let test_threads_lock () =
  let worker = Builder.define ~name:"worker" ~arity:1 worker_body in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.spawn b Reg.r0 "worker" (Operand.imm 0);
        Builder.spawn b Reg.r1 "worker" (Operand.imm 1);
        Builder.join b (Operand.reg Reg.r0);
        Builder.join b (Operand.reg Reg.r1);
        Builder.load b Reg.r2 (Operand.imm 50) 0;
        Builder.write b (Operand.reg Reg.r2);
        Builder.halt b)
  in
  let m, o = run_program [ main; worker ] in
  expect_halted o;
  check Alcotest.(list int) "locked counter" [ 2000 ]
    (Machine.output_values m)

(* Without the lock and with aggressive preemption, increments are lost
   on some seed — demonstrating that the scheduler interleaves. *)
let racy_worker_body b =
  Builder.for_up b ~idx:Reg.r2 ~from_:(Operand.imm 0) ~below:(Operand.imm 200)
    (fun () ->
      Builder.load b Reg.r3 (Operand.imm 50) 0;
      Builder.add b Reg.r3 (Operand.reg Reg.r3) (Operand.imm 1);
      Builder.store b (Operand.reg Reg.r3) (Operand.imm 50) 0);
  Builder.ret b None

let test_threads_race_visible () =
  let worker = Builder.define ~name:"worker" ~arity:1 racy_worker_body in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.spawn b Reg.r0 "worker" (Operand.imm 0);
        Builder.spawn b Reg.r1 "worker" (Operand.imm 1);
        Builder.join b (Operand.reg Reg.r0);
        Builder.join b (Operand.reg Reg.r1);
        Builder.load b Reg.r2 (Operand.imm 50) 0;
        Builder.write b (Operand.reg Reg.r2);
        Builder.halt b)
  in
  let p = Program.make [ main; worker ] in
  let lost_somewhere =
    List.exists
      (fun seed ->
        let config =
          { Machine.default_config with seed; quantum_min = 1; quantum_max = 5 }
        in
        let m = Machine.create ~config p ~input:[||] in
        ignore (Machine.run m);
        Machine.output_values m <> [ 400 ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Alcotest.(check bool) "some seed loses updates" true lost_somewhere

let test_barrier () =
  (* Each of 3 workers writes its phase-0 value, waits at the barrier,
     then reads the slot of the next worker; without the barrier the
     read could see zero. *)
  let worker =
    Builder.define ~name:"worker" ~arity:1 (fun b ->
        (* r0 = my index (0..2) *)
        Builder.add b Reg.r1 (Operand.imm 60) (Operand.reg Reg.r0);
        Builder.store b (Operand.imm 1) (Operand.reg Reg.r1) 0;
        Builder.barrier b (Operand.imm 9);
        Builder.add b Reg.r2 (Operand.reg Reg.r0) (Operand.imm 1);
        Builder.rem b Reg.r2 (Operand.reg Reg.r2) (Operand.imm 3);
        Builder.add b Reg.r2 (Operand.imm 60) (Operand.reg Reg.r2);
        Builder.load b Reg.r3 (Operand.reg Reg.r2) 0;
        Builder.check b (Operand.reg Reg.r3);
        Builder.ret b None)
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.barrier_init b (Operand.imm 9) (Operand.imm 3);
        Builder.spawn b Reg.r0 "worker" (Operand.imm 0);
        Builder.spawn b Reg.r1 "worker" (Operand.imm 1);
        Builder.spawn b Reg.r2 "worker" (Operand.imm 2);
        Builder.join b (Operand.reg Reg.r0);
        Builder.join b (Operand.reg Reg.r1);
        Builder.join b (Operand.reg Reg.r2);
        Builder.write b (Operand.imm 1);
        Builder.halt b)
  in
  List.iter
    (fun seed ->
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 7 }
      in
      let m, o =
        run_program ~config [ main; worker ]
      in
      expect_halted o;
      check Alcotest.(list int) (Fmt.str "barrier ok seed %d" seed) [ 1 ]
        (Machine.output_values m))
    [ 1; 2; 3; 4; 5 ]

let test_deadlock_detection () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.lock b (Operand.imm 1);
        Builder.lock b (Operand.imm 2);
        Builder.join b (Operand.imm 99);
        (* join a nonexistent... *)
        Builder.halt b)
  in
  (* Joining an unknown tid succeeds (treated as finished), so build a
     real deadlock: one thread waits on a barrier nobody else reaches. *)
  let main2 =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.barrier_init b (Operand.imm 1) (Operand.imm 2);
        Builder.barrier b (Operand.imm 1);
        Builder.halt b)
  in
  ignore main;
  let _, o = run_program [ main2 ] in
  match o with
  | Event.Deadlocked -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Event.pp_outcome o

(* Replay: a racy multithreaded run, replayed from its schedule log,
   must reproduce the exact same fingerprint and output. *)
let test_replay_determinism () =
  let worker = Builder.define ~name:"worker" ~arity:1 racy_worker_body in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r4;
        Builder.store b (Operand.reg Reg.r4) (Operand.imm 50) 0;
        Builder.spawn b Reg.r0 "worker" (Operand.imm 0);
        Builder.spawn b Reg.r1 "worker" (Operand.imm 1);
        Builder.join b (Operand.reg Reg.r0);
        Builder.join b (Operand.reg Reg.r1);
        Builder.load b Reg.r2 (Operand.imm 50) 0;
        Builder.write b (Operand.reg Reg.r2);
        Builder.halt b)
  in
  let p = Program.make [ main; worker ] in
  List.iter
    (fun seed ->
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 9 }
      in
      let m1 = Machine.create ~config p ~input:[| 5 |] in
      ignore (Machine.run m1);
      let sched = Machine.schedule_log m1 in
      let config2 =
        { Machine.default_config with schedule = Some sched }
      in
      let m2 = Machine.create ~config:config2 p ~input:[| 5 |] in
      ignore (Machine.run m2);
      check Alcotest.int
        (Fmt.str "fingerprint seed %d" seed)
        (Machine.fingerprint m1) (Machine.fingerprint m2);
      check
        Alcotest.(list int)
        (Fmt.str "output seed %d" seed)
        (Machine.output_values m1) (Machine.output_values m2))
    [ 11; 12; 13; 14 ]

let test_checkpoint_restore () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.movi b Reg.r0 0;
        Builder.for_up b ~idx:Reg.r1 ~from_:(Operand.imm 0)
          ~below:(Operand.imm 100) (fun () ->
            Builder.add b Reg.r0 (Operand.reg Reg.r0) (Operand.reg Reg.r1);
            Builder.store b (Operand.reg Reg.r0) (Operand.imm 70) 0);
        Builder.load b Reg.r2 (Operand.imm 70) 0;
        Builder.write b (Operand.reg Reg.r2);
        Builder.halt b)
  in
  let p = Program.make [ main ] in
  (* Run to completion once for the reference output. *)
  let ref_m = Machine.create p ~input:[||] in
  ignore (Machine.run ref_m);
  let expected = Machine.output_values ref_m in
  (* Run a fresh machine a while, checkpoint mid-loop, continue from the
     checkpoint on a new machine; same final output. *)
  let config = { Machine.default_config with max_steps = 150 } in
  let m1 = Machine.create ~config p ~input:[||] in
  (match Machine.run m1 with
  | Event.Out_of_steps -> ()
  | o -> Alcotest.failf "expected out of steps, got %a" Event.pp_outcome o);
  let cp = Machine.checkpoint m1 in
  let m2 = Machine.of_checkpoint p ~input:[||] cp in
  let o2 = Machine.run m2 in
  expect_halted o2;
  check Alcotest.(list int) "resumed output" expected
    (Machine.output_values m2)

let test_mark_and_tid () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.tid b Reg.r0;
        Builder.write b (Operand.reg Reg.r0);
        Builder.mark b 3 (Operand.imm 123);
        Builder.halt b)
  in
  let m, o = run_program [ main ] in
  expect_halted o;
  check Alcotest.(list int) "tid" [ 0 ] (Machine.output_values m)

let test_input_override () =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        Builder.read b Reg.r1;
        Builder.write b (Operand.reg Reg.r0);
        Builder.write b (Operand.reg Reg.r1);
        Builder.halt b)
  in
  let config =
    { Machine.default_config with input_override = [ (1, 99) ] }
  in
  let m, o = run_program ~config ~input:[| 1; 2 |] [ main ] in
  expect_halted o;
  check Alcotest.(list int) "override" [ 1; 99 ] (Machine.output_values m)

let suite =
  [
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "all alu ops" `Quick test_alu_ops;
    Alcotest.test_case "all cmp ops" `Quick test_cmp_ops;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "memory load/store" `Quick test_memory_ops;
    Alcotest.test_case "call/ret isolation" `Quick test_call_ret;
    Alcotest.test_case "recursion (fib)" `Quick test_recursion;
    Alcotest.test_case "indirect call" `Quick test_icall;
    Alcotest.test_case "invalid indirect call faults" `Quick
      test_icall_invalid;
    Alcotest.test_case "division by zero faults" `Quick test_div_by_zero;
    Alcotest.test_case "check faults on zero" `Quick test_check_fault;
    Alcotest.test_case "input EOF yields -1" `Quick test_input_eof;
    Alcotest.test_case "alloc/free" `Quick test_alloc_free;
    Alcotest.test_case "invalid free faults" `Quick test_invalid_free;
    Alcotest.test_case "bounds checking" `Quick test_bounds_checking;
    Alcotest.test_case "threads with lock" `Quick test_threads_lock;
    Alcotest.test_case "race visible without lock" `Quick
      test_threads_race_visible;
    Alcotest.test_case "barrier" `Quick test_barrier;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "checkpoint/restore" `Quick test_checkpoint_restore;
    Alcotest.test_case "mark and tid" `Quick test_mark_and_tid;
    Alcotest.test_case "input override" `Quick test_input_override;
  ]
