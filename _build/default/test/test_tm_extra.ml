(* TM executor edge cases: rollback across call frames, recursion
   under transactions, irrevocable-operation boundaries, and undo-log
   correctness when aborts interleave. *)

open Dift_isa
open Dift_vm
open Dift_workloads
open Dift_tm

let check = Alcotest.check
let imm = Operand.imm
let reg = Operand.reg

let run_tm ?config program input =
  let t = Stm_exec.create ?config program ~input in
  let s = Stm_exec.run t in
  (s, Stm_exec.output t)

(* Recursion (deep frame chains) executes correctly under the TM
   executor, matching the plain machine. *)
let test_recursion_under_tm () =
  let w = Spec_like.qsort in
  let input = w.Workload.input ~size:30 ~seed:3 in
  let m = Machine.create w.Workload.program ~input in
  ignore (Machine.run m);
  let s, out = run_tm w.Workload.program input in
  check Alcotest.(list int) "same output" (Machine.output_values m) out;
  check Alcotest.bool "completed" true
    (s.Stm_exec.outcome = Stm_exec.Completed)

(* A multi-writer contention point: two threads increment a counter
   2000 times in total; the TM's chunked atomicity must not lose a
   single increment (unlike the racy plain-VM run). *)
let counter_worker =
  Builder.define ~name:"worker" ~arity:1 (fun b ->
      Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm 100)
        (fun () ->
          Builder.load b Reg.r1 (imm 900) 0;
          Builder.add b Reg.r1 (reg Reg.r1) (imm 1);
          Builder.store b (reg Reg.r1) (imm 900) 0);
      Builder.ret b None)

let counter_program =
  lazy
    (Program.make
       [
         Builder.define ~name:"main" ~arity:0 (fun b ->
             Builder.spawn b Reg.r0 "worker" (imm 0);
             Builder.spawn b Reg.r1 "worker" (imm 1);
             Builder.join b (reg Reg.r0);
             Builder.join b (reg Reg.r1);
             Builder.load b Reg.r2 (imm 900) 0;
             Builder.write b (reg Reg.r2);
             Builder.halt b);
         counter_worker;
       ])

let test_tm_makes_increments_atomic () =
  (* each load..store triple lands inside one transaction, and
     conflicting transactions are serialised by ownership *)
  let s, out = run_tm (Lazy.force counter_program) [||] in
  check Alcotest.bool
    (Fmt.str "completed with %d aborts" s.Stm_exec.aborts)
    true
    (s.Stm_exec.outcome = Stm_exec.Completed);
  check Alcotest.(list int) "no lost updates" [ 200 ] out

(* Aborted work rolls back memory: after a run, the committed state
   must be exactly the sequential result even though aborts occurred. *)
let test_abort_rolls_back_memory () =
  let s, out = run_tm (Lazy.force counter_program) [||] in
  if s.Stm_exec.aborts > 0 then
    check Alcotest.(list int) "state correct despite aborts" [ 200 ] out
  else
    (* force contention with a different policy if no aborts occurred *)
    let config =
      { Stm_exec.default_config with policy = Stm_exec.Abort_owner }
    in
    let _, out2 = run_tm ~config (Lazy.force counter_program) [||] in
    check Alcotest.(list int) "state correct (abort-owner)" [ 200 ] out2

(* Check faults inside transactions surface as faults. *)
let test_check_fault_in_txn () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.check b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let s, _ = run_tm p [||] in
  match s.Stm_exec.outcome with
  | Stm_exec.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault outcome"

(* Input/output are irrevocable: every input word is consumed exactly
   once even when surrounding transactions abort and retry. *)
let test_io_is_irrevocable () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.spawn b Reg.r0 "worker" (imm 0);
            Builder.read b Reg.r1;
            Builder.read b Reg.r2;
            Builder.add b Reg.r3 (reg Reg.r1) (reg Reg.r2);
            Builder.join b (reg Reg.r0);
            (* mix with the worker's contended counter *)
            Builder.load b Reg.r4 (imm 900) 0;
            Builder.add b Reg.r3 (reg Reg.r3) (reg Reg.r4);
            Builder.write b (reg Reg.r3);
            Builder.halt b);
        counter_worker;
      ]
  in
  let _, out = run_tm p [| 10; 20 |] in
  check Alcotest.(list int) "inputs consumed once" [ 130 ] out

(* OS-level locks inside monitored code: the locked bank completes
   under every policy and conserves the total — the TM problem is
   specifically *user-level* spin synchronisation. *)
let test_locked_bank_under_tm () =
  let p = Splash_like.bank ~threads:2 () in
  let input = Splash_like.bank_input ~size:20 ~seed:0 in
  List.iter
    (fun policy ->
      let config = { Stm_exec.default_config with policy } in
      let s, out = run_tm ~config p input in
      check Alcotest.bool
        (Fmt.str "%s completes" (Stm_exec.policy_to_string policy))
        true
        (s.Stm_exec.outcome = Stm_exec.Completed);
      check Alcotest.(list int)
        (Fmt.str "%s conserves" (Stm_exec.policy_to_string policy))
        [ 800 ] out)
    [ Stm_exec.Abort_requester; Stm_exec.Abort_owner; Stm_exec.Sync_aware ]

let suite =
  [
    Alcotest.test_case "recursion under tm" `Quick test_recursion_under_tm;
    Alcotest.test_case "tm makes increments atomic" `Quick
      test_tm_makes_increments_atomic;
    Alcotest.test_case "abort rolls back memory" `Quick
      test_abort_rolls_back_memory;
    Alcotest.test_case "check fault in txn" `Quick test_check_fault_in_txn;
    Alcotest.test_case "io is irrevocable" `Quick test_io_is_irrevocable;
    Alcotest.test_case "locked bank under tm" `Quick
      test_locked_bank_under_tm;
  ]
