(* Lineage tracing: both representations must agree with each other
   and with each pipeline's analytic ground truth; the roBDD
   representation must pay off on large clustered lineage. *)

open Dift_workloads
open Dift_lineage

let check = Alcotest.check

let test_lineage_matches_ground_truth () =
  List.iter
    (fun (pl : Scientific.pipeline) ->
      let size = 16 and seed = 5 in
      let r = Tracer.run_naive pl ~size ~seed in
      check Alcotest.int
        (Fmt.str "%s naive mismatches" pl.Scientific.name)
        0
        (Tracer.validate pl r ~size ~seed);
      let r2 = Tracer.run_robdd pl ~size ~seed in
      check Alcotest.int
        (Fmt.str "%s robdd mismatches" pl.Scientific.name)
        0
        (Tracer.validate pl r2 ~size ~seed))
    Scientific.all

let test_representations_agree () =
  List.iter
    (fun (pl : Scientific.pipeline) ->
      let size = 24 and seed = 9 in
      let a = Tracer.run_naive pl ~size ~seed in
      let b = Tracer.run_robdd pl ~size ~seed in
      check
        Alcotest.(list (pair int (list int)))
        (Fmt.str "%s outputs" pl.Scientific.name)
        a.Tracer.outputs b.Tracer.outputs)
    Scientific.all

let test_large_lineage_sets_exist () =
  let r = Tracer.run_naive Scientific.reduction ~size:500 ~seed:3 in
  check Alcotest.bool
    (Fmt.str "reduction lineage is large (%d)" r.Tracer.max_lineage)
    true (r.Tracer.max_lineage >= 500)

let test_robdd_memory_beats_naive_on_reduction () =
  let size = 800 and seed = 4 in
  let naive = Tracer.run_naive Scientific.reduction ~size ~seed in
  let robdd = Tracer.run_robdd Scientific.reduction ~size ~seed in
  check Alcotest.bool
    (Fmt.str "robdd peak %d words < naive peak %d words"
       robdd.Tracer.shadow_words_peak naive.Tracer.shadow_words_peak)
    true
    (robdd.Tracer.shadow_words_peak < naive.Tracer.shadow_words_peak)

let test_slowdowns_are_finite_and_ordered () =
  let size = 200 and seed = 6 in
  let pl = Scientific.moving_avg in
  let naive = Tracer.run_naive pl ~size ~seed in
  let robdd = Tracer.run_robdd pl ~size ~seed in
  let sn = Tracer.slowdown naive and sr = Tracer.slowdown robdd in
  check Alcotest.bool (Fmt.str "naive slowdown %.1f > 1" sn) true (sn > 1.);
  check Alcotest.bool (Fmt.str "robdd slowdown %.1f > 1" sr) true (sr > 1.);
  check Alcotest.bool "slowdowns bounded" true (sn < 500. && sr < 500.)

let suite =
  [
    Alcotest.test_case "lineage matches ground truth" `Quick
      test_lineage_matches_ground_truth;
    Alcotest.test_case "naive and robdd agree" `Quick
      test_representations_agree;
    Alcotest.test_case "large lineage sets exist" `Quick
      test_large_lineage_sets_exist;
    Alcotest.test_case "robdd memory beats naive" `Quick
      test_robdd_memory_beats_naive_on_reduction;
    Alcotest.test_case "slowdowns sane" `Quick
      test_slowdowns_are_finite_and_ordered;
  ]
