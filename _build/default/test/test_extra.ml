(* Deeper edge-case coverage: PC-taint join semantics, control taint
   across calls and spawns, control-dependence region bookkeeping,
   the predicate-switch and value-replacement VM hooks in isolation,
   and WAR/WAW recording. *)

open Dift_isa
open Dift_vm
open Dift_core

let check = Alcotest.check
let imm = Operand.imm
let reg = Operand.reg

module Pc_engine = Engine.Make (Taint.Pc)
module Bool_engine = Engine.Make (Taint.Bool)

(* PC taint join keeps the most recent writer. *)
let test_pc_join_most_recent () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            (* step 0 *)
            Builder.read b Reg.r1;
            (* step 1 *)
            Builder.add b Reg.r2 (reg Reg.r0) (imm 0);
            (* r2 written at pc 2 *)
            Builder.add b Reg.r3 (reg Reg.r1) (imm 0);
            (* r3 written at pc 3 *)
            Builder.add b Reg.r4 (reg Reg.r2) (reg Reg.r3);
            (* join: pc 4 is the most recent writer *)
            Builder.write b (reg Reg.r4);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 1; 2 |] in
  let eng = Pc_engine.create p in
  let site = ref None in
  Pc_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then site := taint);
  Pc_engine.attach eng m;
  ignore (Machine.run m);
  match !site with
  | Some s -> check Alcotest.int "most recent writer pc" 4 s.Taint.pc
  | None -> Alcotest.fail "expected PC taint at the output"

(* Control taint flows into a callee's writes (policy [full]). *)
let test_control_taint_through_call () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.if_nz1 b (reg Reg.r0) (fun () ->
                Builder.call b "setter" ~ret:None);
            Builder.load b Reg.r1 (imm 600) 0;
            Builder.write b (reg Reg.r1);
            Builder.halt b);
        Builder.define ~name:"setter" ~arity:0 (fun b ->
            Builder.store b (imm 1) (imm 600) 0;
            Builder.ret b None);
      ]
  in
  let m = Machine.create p ~input:[| 1 |] in
  let eng = Bool_engine.create ~policy:Policy.full p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "callee write carries control taint" true !tainted

(* Control taint ends when the region closes: a write after the join
   point stays clean. *)
let test_control_taint_region_closes () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.if_nz1 b (reg Reg.r0) (fun () -> Builder.nop b);
            (* past the join point: no longer controlled by the input *)
            Builder.movi b Reg.r1 5;
            Builder.write b (reg Reg.r1);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 1 |] in
  let eng = Bool_engine.create ~policy:Policy.full p in
  let tainted = ref true in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "write after region close is clean" false !tainted

(* Control taint crosses Spawn into the child thread. *)
let test_control_taint_through_spawn () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.if_nz1 b (reg Reg.r0) (fun () ->
                Builder.spawn b Reg.r1 "child" (imm 0);
                Builder.join b (reg Reg.r1));
            Builder.halt b);
        Builder.define ~name:"child" ~arity:1 (fun b ->
            Builder.movi b Reg.r2 9;
            Builder.write b (reg Reg.r2);
            Builder.ret b None);
      ]
  in
  let m = Machine.create p ~input:[| 1 |] in
  let eng = Bool_engine.create ~policy:Policy.full p in
  let tainted = ref false in
  Bool_engine.on_sink eng (fun sink taint _ ->
      if sink = Engine.Sink_output then tainted := taint);
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  check Alcotest.bool "spawned thread inherits control taint" true !tainted

(* Engine statistics: one source per consumed input word. *)
let test_engine_stats () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            Builder.read b Reg.r1;
            Builder.read b Reg.r2;
            (* EOF read: not a source *)
            Builder.read b Reg.r3;
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[| 1; 2; 3 |] in
  let eng = Bool_engine.create p in
  Bool_engine.attach eng m;
  ignore (Machine.run m);
  let s = Bool_engine.stats eng in
  check Alcotest.int "sources" 3 s.Engine.sources;
  check Alcotest.bool "events counted" true (s.Engine.events >= 6);
  check Alcotest.int "tainted sink hits" 1 s.Engine.sink_hits;
  let locs, words = Bool_engine.shadow_footprint eng in
  check Alcotest.bool "shadow tracks tainted locs" true (locs >= 3);
  check Alcotest.int "bool domain words = locs" locs words

(* Control-dependence regions are bounded in nested loops (the
   back-edge pop keeps the stack from growing per iteration). *)
let test_control_dep_regions_bounded () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(imm 10)
              (fun () ->
                Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(imm 10)
                  (fun () ->
                    Builder.add b Reg.r0 (reg Reg.r0) (imm 1)));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[||] in
  let static = Static_info.create p in
  let cd = Control_dep.create static in
  let max_depth = ref 0 in
  Machine.attach m
    (Tool.make
       ~on_exec:(fun e ->
         ignore (Control_dep.process cd e);
         max_depth := max !max_depth (Control_dep.open_regions cd 0))
       "probe");
  ignore (Machine.run m);
  check Alcotest.bool
    (Fmt.str "region stack bounded (max %d)" !max_depth)
    true (!max_depth <= 3)

(* The predicate-switch hook: flipping the loop guard's first instance
   skips the loop entirely. *)
let test_flip_steps_hook () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 5)
              (fun () -> Builder.add b Reg.r0 (reg Reg.r0) (imm 1));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  (* find the first branch instance *)
  let m0 = Machine.create p ~input:[||] in
  let first_branch = ref (-1) in
  Machine.attach m0
    (Tool.make
       ~on_exec:(fun e ->
         if Event.is_branch e && !first_branch < 0 then
           first_branch := e.Event.step)
       "probe");
  ignore (Machine.run m0);
  check Alcotest.(list int) "normal run sums" [ 5 ]
    (Machine.output_values m0);
  let config =
    { Machine.default_config with flip_steps = [ !first_branch ] }
  in
  let m1 = Machine.create ~config p ~input:[||] in
  ignore (Machine.run m1);
  check Alcotest.(list int) "flipped guard skips the loop" [ 0 ]
    (Machine.output_values m1)

(* The value-replacement hook substitutes one dynamic value. *)
let test_value_replacement_hook () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 3;
            Builder.mul b Reg.r1 (reg Reg.r0) (imm 7);
            Builder.write b (reg Reg.r1);
            Builder.halt b);
      ]
  in
  (* the mul executes at step 1 *)
  let config =
    { Machine.default_config with value_replacements = [ (1, 100) ] }
  in
  let m = Machine.create ~config p ~input:[||] in
  ignore (Machine.run m);
  check Alcotest.(list int) "replaced value" [ 100 ]
    (Machine.output_values m)

(* WAR and WAW dependences are recorded when asked for. *)
let test_war_waw_recording () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.store b (imm 1) (imm 500) 0;
            Builder.load b Reg.r0 (imm 500) 0;
            (* read, then overwrite: WAR + WAW *)
            Builder.store b (imm 2) (imm 500) 0;
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let m = Machine.create p ~input:[||] in
  let tracer =
    Ontrac.create ~opts:{ Ontrac.no_opts with record_war_waw = true } p
  in
  Ontrac.attach tracer m;
  ignore (Machine.run m);
  let g, _ = Ontrac.final_graph tracer in
  let kinds = ref [] in
  Ddg.iter_nodes
    (fun n ->
      List.iter (fun (k, _) -> kinds := k :: !kinds) n.Ddg.preds)
    g;
  check Alcotest.bool "WAR edge present" true (List.mem Dep.War !kinds);
  check Alcotest.bool "WAW edge present" true (List.mem Dep.Waw !kinds)

(* Encoding writer exposes its byte count consistently. *)
let test_encoding_bytes_written () =
  let w = Encoding.writer () in
  List.iter (Encoding.write w)
    [
      { Dep.kind = Dep.Data; def_step = 0; use_step = 5 };
      { Dep.kind = Dep.Control; def_step = 3; use_step = 6 };
    ];
  check Alcotest.int "bytes_written = contents length"
    (String.length (Encoding.contents w))
    (Encoding.bytes_written w)

(* Replay with an impossible schedule raises divergence. *)
let test_replay_divergence () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 1;
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let config =
    { Machine.default_config with schedule = Some [ (0, 7) ] }
  in
  let m = Machine.create ~config p ~input:[||] in
  Alcotest.check_raises "divergence"
    (Machine.Replay_divergence
       "no runnable thread matches log at step 0") (fun () ->
      ignore (Machine.run m))

(* Heap bookkeeping: block_of and in_heap. *)
let test_memory_blocks () =
  let mem = Memory.create () in
  let b1 = Memory.alloc mem 4 in
  let b2 = Memory.alloc mem 2 in
  check Alcotest.bool "b1 in heap" true (Memory.in_heap mem b1);
  check Alcotest.bool "global not in heap" false (Memory.in_heap mem 100);
  (match Memory.block_of mem (b1 + 3) with
  | Some blk -> check Alcotest.int "block base" b1 blk.Memory.base
  | None -> Alcotest.fail "expected a block");
  check Alcotest.bool "gap between blocks" true
    (Memory.block_of mem (b2 - 1) = None);
  (match Memory.free mem b1 with
  | Ok () -> ()
  | Error `Invalid_free -> Alcotest.fail "valid free rejected");
  check Alcotest.bool "freed block gone" true
    (Memory.block_of mem b1 = None);
  check Alcotest.bool "double free rejected" true
    (Memory.free mem b1 = Error `Invalid_free)

(* Loc encoding round-trips. *)
let test_loc_roundtrip () =
  let l1 = Loc.mem 12345 in
  check Alcotest.bool "mem loc" true (Loc.is_mem l1);
  check Alcotest.int "addr" 12345 (Loc.addr l1);
  let l2 = Loc.reg ~frame:77 Reg.r5 in
  check Alcotest.bool "reg loc" true (Loc.is_reg l2);
  let f, r = Loc.frame_reg l2 in
  check Alcotest.int "frame" 77 f;
  check Alcotest.int "reg index" 5 r;
  check Alcotest.bool "distinct" false (Loc.equal l1 l2)

(* Corrupt serialised graphs are rejected, not misread. *)
let test_ddg_io_rejects_corrupt () =
  Alcotest.check_raises "bad magic" (Ddg_io.Corrupt "bad magic") (fun () ->
      ignore (Ddg_io.deserialize "NOPE"));
  (* valid header, truncated body *)
  let g = Ddg.create () in
  Ddg.add_node g ~step:0 ~tid:0 ~fname:"f" ~pc:0 ~input_index:(-1)
    ~is_output:false;
  let bytes = Ddg_io.serialize g in
  let truncated = String.sub bytes 0 (String.length bytes - 1) in
  Alcotest.(check bool) "truncation detected" true
    (try
       ignore (Ddg_io.deserialize truncated);
       false
     with Ddg_io.Corrupt _ | Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "pc taint joins to most recent" `Quick
      test_pc_join_most_recent;
    Alcotest.test_case "control taint through call" `Quick
      test_control_taint_through_call;
    Alcotest.test_case "control taint region closes" `Quick
      test_control_taint_region_closes;
    Alcotest.test_case "control taint through spawn" `Quick
      test_control_taint_through_spawn;
    Alcotest.test_case "engine stats" `Quick test_engine_stats;
    Alcotest.test_case "control-dep regions bounded" `Quick
      test_control_dep_regions_bounded;
    Alcotest.test_case "flip_steps hook" `Quick test_flip_steps_hook;
    Alcotest.test_case "value replacement hook" `Quick
      test_value_replacement_hook;
    Alcotest.test_case "war/waw recording" `Quick test_war_waw_recording;
    Alcotest.test_case "encoding bytes_written" `Quick
      test_encoding_bytes_written;
    Alcotest.test_case "replay divergence" `Quick test_replay_divergence;
    Alcotest.test_case "memory blocks" `Quick test_memory_blocks;
    Alcotest.test_case "loc roundtrip" `Quick test_loc_roundtrip;
    Alcotest.test_case "ddg io rejects corrupt input" `Quick
      test_ddg_io_rejects_corrupt;
  ]
