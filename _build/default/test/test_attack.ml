(* Attack detection with PC taint: every attack in the corpus is
   detected before the hijack executes, benign inputs raise no alarm,
   and the taint tag names the root-cause statement (paper §3.3). *)

open Dift_workloads
open Dift_attack

let check = Alcotest.check

let test_all_attacks_detected () =
  List.iter
    (fun (c : Vulnerable.case) ->
      let row = Detector.evaluate c in
      check Alcotest.bool
        (Fmt.str "%s: benign clean" c.Vulnerable.name)
        true row.Detector.benign_clean;
      check Alcotest.bool
        (Fmt.str "%s: attack detected" c.Vulnerable.name)
        true row.Detector.attack_detected;
      check Alcotest.bool
        (Fmt.str "%s: hijack prevented" c.Vulnerable.name)
        true row.Detector.hijack_prevented)
    Vulnerable.all

let test_root_cause_identified () =
  let correct =
    List.length
      (List.filter
         (fun c -> (Detector.evaluate c).Detector.root_cause_correct)
         Vulnerable.all)
  in
  (* "in most cases this directly points to the statement that is the
     root cause of the bug" — all four here *)
  check Alcotest.int "root cause identified on all cases"
    (List.length Vulnerable.all) correct

let test_undefended_attacks_succeed () =
  List.iter
    (fun (c : Vulnerable.case) ->
      let open Dift_vm in
      let m = Machine.create c.Vulnerable.program ~input:c.Vulnerable.attack_input in
      ignore (Machine.run m);
      check Alcotest.bool
        (Fmt.str "%s hijacks without the detector" c.Vulnerable.name)
        true
        (List.mem Detector.evil_marker (Machine.output_values m)))
    Vulnerable.all

(* Pointer-flow matters: when the jump-table *entries* are clean
   constants and only the index is attacker-controlled, pure data-flow
   taint misses the hijack; the security policy's address propagation
   catches it. *)
let test_policy_matters () =
  let open Dift_isa in
  let imm = Operand.imm and reg = Operand.reg in
  let evil =
    Builder.define ~name:"evil" ~arity:0 (fun b ->
        Builder.write b (imm Detector.evil_marker);
        Builder.ret b None)
  in
  let handler =
    Builder.define ~name:"handler" ~arity:0 (fun b ->
        Builder.write b (imm 1);
        Builder.ret b None)
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        (* table of clean constants; entry 1 happens to be evil *)
        Builder.store b (imm 1) (imm 980) 0;
        Builder.store b (imm 2) (imm 980) 1;
        Builder.read b Reg.r0;
        (* unvalidated index *)
        Builder.add b Reg.r1 (imm 980) (reg Reg.r0);
        Builder.load b Reg.r2 (reg Reg.r1) 0;
        Builder.icall b (reg Reg.r2) ~ret:None;
        Builder.halt b)
  in
  let p = Program.make [ main; handler; evil ] in
  let attack = [| 1 |] in
  let r =
    Detector.protect ~policy:Dift_core.Policy.data_only p ~input:attack
  in
  check Alcotest.bool "data-only policy misses index-driven hijack" true
    (r.Detector.detection = None);
  check Alcotest.bool "and the hijack succeeds" true
    r.Detector.hijack_succeeded;
  let r2 =
    Detector.protect ~policy:Dift_core.Policy.security p ~input:attack
  in
  check Alcotest.bool "security policy catches it" true
    (r2.Detector.detection <> None);
  check Alcotest.bool "and prevents it" true
    (not r2.Detector.hijack_succeeded)

let suite =
  [
    Alcotest.test_case "all attacks detected" `Quick
      test_all_attacks_detected;
    Alcotest.test_case "root cause identified" `Quick
      test_root_cause_identified;
    Alcotest.test_case "undefended attacks succeed" `Quick
      test_undefended_attacks_succeed;
    Alcotest.test_case "policy matters" `Quick test_policy_matters;
  ]
