(* Execution reduction end-to-end on the server workload: logging is
   cheap, the reduction finds the corrupting ADMIN request, and the
   reduced replay reproduces the fault with a tiny fraction of the
   dependences of whole-run tracing. *)

open Dift_vm
open Dift_workloads
open Dift_replay

let check = Alcotest.check

let server_report ?(requests = 60) ?(seed = 11) () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests ~seed ~faulty:true () in
  let config = { Machine.default_config with seed } in
  (Rerun.run ~config ~checkpoint_every:5_000 p ~input:batch.Server_sim.input,
   batch)

let test_logging_is_cheap () =
  let r, _ = server_report () in
  let ratio =
    float_of_int r.Rerun.logging_cycles
    /. float_of_int r.Rerun.original_cycles
  in
  check Alcotest.bool
    (Fmt.str "logging ratio %.2f in (1, 2]" ratio)
    true
    (ratio > 1.0 && ratio <= 2.0)

let test_tracing_is_expensive () =
  let r, _ = server_report () in
  let ratio =
    float_of_int r.Rerun.tracing_cycles
    /. float_of_int r.Rerun.original_cycles
  in
  check Alcotest.bool (Fmt.str "tracing ratio %.1f > 5" ratio) true
    (ratio > 5.)

let test_reduction_finds_admin_request () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:60 ~seed:11 ~faulty:true () in
  let config = { Machine.default_config with seed = 11 } in
  let m = Machine.create ~config p ~input:batch.Server_sim.input in
  let log = Request_log.create ~checkpoint_every:5_000 () in
  Request_log.attach log m;
  ignore (Machine.run m);
  (match Request_log.fault log with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a logged fault");
  match Reduction.analyse log with
  | None -> Alcotest.fail "expected a reduction plan"
  | Some plan ->
      let admin =
        match batch.Server_sim.admin_index with
        | Some a -> a
        | None -> Alcotest.fail "batch has no admin request"
      in
      check Alcotest.bool "admin request is relevant" true
        (Reduction.is_relevant plan admin);
      check Alcotest.bool
        (Fmt.str "only a fraction kept (%.2f)" (Reduction.kept_fraction plan))
        true
        (Reduction.kept_fraction plan < 0.6)

let test_reduced_replay_reproduces_fault () =
  let r, _ = server_report () in
  check Alcotest.bool "fault reproduced" true r.Rerun.fault_reproduced;
  check Alcotest.bool "slice from fault nonempty" true
    (r.Rerun.fault_slice_sites > 0)

let test_reduction_shrinks_deps_and_time () =
  let r, _ = server_report ~requests:120 () in
  check Alcotest.bool
    (Fmt.str "deps shrink: %d -> %d" r.Rerun.full_deps r.Rerun.reduced_deps)
    true
    (r.Rerun.reduced_deps * 4 < r.Rerun.full_deps);
  check Alcotest.bool
    (Fmt.str "replay cheaper than tracing: %d < %d" r.Rerun.replay_cycles
       r.Rerun.tracing_cycles)
    true
    (r.Rerun.replay_cycles * 2 < r.Rerun.tracing_cycles);
  check Alcotest.bool
    (Fmt.str "replayed %d of %d steps" r.Rerun.replayed_steps
       r.Rerun.total_steps)
    true
    (r.Rerun.replayed_steps <= r.Rerun.total_steps);
  (* the reduced replay costs on the order of the original run (the
     traced fraction is small), nowhere near full tracing *)
  check Alcotest.bool
    (Fmt.str "replay %d within 2x of original %d" r.Rerun.replay_cycles
       r.Rerun.original_cycles)
    true
    (r.Rerun.replay_cycles < 2 * r.Rerun.original_cycles)

let test_clean_run_has_no_plan () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:30 ~seed:3 () in
  let m = Machine.create p ~input:batch.Server_sim.input in
  let log = Request_log.create () in
  Request_log.attach log m;
  (match Machine.run m with
  | Event.Halted -> ()
  | o -> Alcotest.failf "clean run: %a" Event.pp_outcome o);
  check Alcotest.bool "no fault logged" true (Request_log.fault log = None);
  check Alcotest.bool "no plan" true (Reduction.analyse log = None)

let test_request_log_segments () =
  let p = Server_sim.program () in
  let batch = Server_sim.generate ~requests:25 ~seed:5 () in
  let m = Machine.create p ~input:batch.Server_sim.input in
  let log = Request_log.create () in
  Request_log.attach log m;
  ignore (Machine.run m);
  let reqs = Request_log.requests log in
  check Alcotest.int "all requests logged" 25 (List.length reqs);
  List.iter
    (fun (r : Request_log.request) ->
      Alcotest.(check bool)
        (Fmt.str "request %d closed" r.Request_log.req_id)
        true
        (r.Request_log.end_step > r.Request_log.start_step))
    reqs

let suite =
  [
    Alcotest.test_case "logging is cheap" `Quick test_logging_is_cheap;
    Alcotest.test_case "tracing is expensive" `Quick
      test_tracing_is_expensive;
    Alcotest.test_case "reduction finds the admin request" `Quick
      test_reduction_finds_admin_request;
    Alcotest.test_case "reduced replay reproduces fault" `Quick
      test_reduced_replay_reproduces_fault;
    Alcotest.test_case "reduction shrinks deps and time" `Quick
      test_reduction_shrinks_deps_and_time;
    Alcotest.test_case "clean run has no plan" `Quick
      test_clean_run_has_no_plan;
    Alcotest.test_case "request log segments execution" `Quick
      test_request_log_segments;
  ]
