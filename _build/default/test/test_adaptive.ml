(* Adaptive-optimization profiling (paper §4): hot traces, biased
   branches, invariant loads and monomorphic indirect calls are all
   recognised from the event stream. *)

open Dift_isa
open Dift_vm
open Dift_core

let check = Alcotest.check
let imm = Operand.imm
let reg = Operand.reg

let profile ?(input = [||]) program =
  let m = Machine.create program ~input in
  let prof = Adaptive.create program in
  Adaptive.attach prof m;
  ignore (Machine.run m);
  prof

let test_hot_trace_found () =
  (* a hot loop spanning several blocks: trace candidate *)
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 500)
              (fun () ->
                Builder.rem b Reg.r2 (reg Reg.r1) (imm 2);
                Builder.if_nz b (reg Reg.r2)
                  ~then_:(fun () ->
                    Builder.add b Reg.r0 (reg Reg.r0) (imm 1))
                  ~else_:(fun () ->
                    Builder.add b Reg.r0 (reg Reg.r0) (imm 2)));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let prof = profile p in
  let traces =
    List.filter
      (function Adaptive.Form_trace _ -> true | _ -> false)
      (Adaptive.suggestions prof)
  in
  check Alcotest.bool "found a trace candidate" true (traces <> []);
  match traces with
  | Adaptive.Form_trace { blocks; _ } :: _ ->
      check Alcotest.bool "multi-block" true (List.length blocks >= 2)
  | _ -> ()

let test_biased_branch_found () =
  (* a loop guard taken 999 times out of 1000: heavily biased *)
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 1000)
              (fun () ->
                (* rarely-taken guard: only when r1 = 500 *)
                Builder.eq b Reg.r2 (reg Reg.r1) (imm 500);
                Builder.if_nz1 b (reg Reg.r2) (fun () ->
                    Builder.add b Reg.r0 (reg Reg.r0) (imm 100)));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let prof = profile p in
  let biased =
    List.filter
      (function
        | Adaptive.If_convert { bias; _ } -> bias >= 0.95
        | _ -> false)
      (Adaptive.suggestions prof)
  in
  check Alcotest.bool "found biased branches" true (biased <> [])

let test_invariant_load_found () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.store b (imm 7) (imm 500) 0;
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 200)
              (fun () ->
                (* the same constant configuration value every time *)
                Builder.load b Reg.r2 (imm 500) 0;
                Builder.add b Reg.r0 (reg Reg.r0) (reg Reg.r2));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let prof = profile p in
  let cached =
    List.filter_map
      (function
        | Adaptive.Cache_load { value; _ } -> Some value
        | _ -> None)
      (Adaptive.suggestions prof)
  in
  check Alcotest.bool "found invariant load of 7" true (List.mem 7 cached)

let test_monomorphic_icall_found () =
  let handler =
    Builder.define ~name:"handler" ~arity:1 (fun b ->
        Builder.add b Reg.r0 (reg Reg.r0) (imm 1);
        Builder.ret b (Some (reg Reg.r0)))
  in
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 100)
              (fun () ->
                Builder.movi b Reg.r2 1;
                (* always the same target *)
                Builder.icall b (reg Reg.r2) ~ret:(Some Reg.r0));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
        handler;
      ]
  in
  let prof = profile p in
  let devirt =
    List.filter_map
      (function
        | Adaptive.Devirtualize { target; _ } -> Some target
        | _ -> None)
      (Adaptive.suggestions prof)
  in
  check Alcotest.(list string) "devirtualise to handler" [ "handler" ] devirt

let test_varying_load_not_cached () =
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.movi b Reg.r0 0;
            Builder.for_up b ~idx:Reg.r1 ~from_:(imm 0) ~below:(imm 200)
              (fun () ->
                Builder.store b (reg Reg.r1) (imm 500) 0;
                Builder.load b Reg.r2 (imm 500) 0;
                Builder.add b Reg.r0 (reg Reg.r0) (reg Reg.r2));
            Builder.write b (reg Reg.r0);
            Builder.halt b);
      ]
  in
  let prof = profile p in
  let cached =
    List.filter
      (function Adaptive.Cache_load _ -> true | _ -> false)
      (Adaptive.suggestions prof)
  in
  check Alcotest.bool "varying load not suggested" true (cached = [])

let suite =
  [
    Alcotest.test_case "hot trace found" `Quick test_hot_trace_found;
    Alcotest.test_case "biased branch found" `Quick test_biased_branch_found;
    Alcotest.test_case "invariant load found" `Quick
      test_invariant_load_found;
    Alcotest.test_case "monomorphic icall found" `Quick
      test_monomorphic_icall_found;
    Alcotest.test_case "varying load not cached" `Quick
      test_varying_load_not_cached;
  ]
