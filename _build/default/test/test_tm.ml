(* TM-based monitoring: single-threaded sanity against the plain VM,
   livelock under naive conflict resolution on spin-synchronised
   kernels, and completion with sync-aware resolution (paper §2.2). *)

open Dift_vm
open Dift_workloads
open Dift_tm

let check = Alcotest.check

let tm_config policy =
  {
    Stm_exec.default_config with
    policy;
    max_ticks = 400_000;
    livelock_window = 120_000;
    starvation_threshold = 200;
  }

let run_tm ?config program input =
  let t = Stm_exec.create ?config program ~input in
  let stats = Stm_exec.run t in
  (stats, Stm_exec.output t)

(* Single-threaded program: the TM executor must agree with the plain
   machine, with zero aborts. *)
let test_single_thread_agrees_with_vm () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size:40 ~seed:7 in
  let m = Machine.create w.Workload.program ~input in
  ignore (Machine.run m);
  let stats, out = run_tm w.Workload.program input in
  check Alcotest.(list int) "same output" (Machine.output_values m) out;
  check Alcotest.int "no aborts" 0 stats.Stm_exec.aborts;
  check Alcotest.bool "completed" true
    (stats.Stm_exec.outcome = Stm_exec.Completed);
  check Alcotest.bool "commits happened" true (stats.Stm_exec.commits > 0)

let test_sieve_under_tm () =
  let stats, out = run_tm Spec_like.sieve.Workload.program [| 50 |] in
  check Alcotest.(list int) "primes below 50" [ 15 ] out;
  check Alcotest.bool "completed" true
    (stats.Stm_exec.outcome = Stm_exec.Completed)

(* The flag pipeline: a spinning consumer must livelock the naive
   abort-requester policy (the producer can never publish) but complete
   under sync-aware resolution. *)
let test_flag_pipeline_policies () =
  let p = Splash_like.flag_pipeline () in
  let input = [| 6 |] in
  let stats_naive, _ =
    run_tm ~config:(tm_config Stm_exec.Abort_requester) p input
  in
  check Alcotest.bool "abort-requester fails to complete" true
    (stats_naive.Stm_exec.outcome <> Stm_exec.Completed);
  let stats_sync, out =
    run_tm ~config:(tm_config Stm_exec.Sync_aware) p input
  in
  check Alcotest.bool
    (Fmt.str "sync-aware completes (outcome ok, %d aborts)"
       stats_sync.Stm_exec.aborts)
    true
    (stats_sync.Stm_exec.outcome = Stm_exec.Completed);
  let expected = ref 0 in
  for i = 0 to 5 do
    expected := !expected + ((i * 7) + 1)
  done;
  check Alcotest.(list int) "pipeline sum" [ !expected ] out;
  check Alcotest.bool "sync vars detected" true
    (stats_sync.Stm_exec.sync_vars > 0)

(* The spin barrier: mutual aborts livelock both naive policies;
   sync-aware completes with the right result. *)
let test_spin_barrier_policies () =
  let threads = 2 and phases = 3 in
  let p = Splash_like.spin_barrier ~threads ~phases () in
  let naive, _ =
    run_tm ~config:(tm_config Stm_exec.Abort_requester) p [||]
  in
  check Alcotest.bool "abort-requester fails" true
    (naive.Stm_exec.outcome <> Stm_exec.Completed);
  let sync, out = run_tm ~config:(tm_config Stm_exec.Sync_aware) p [||] in
  check Alcotest.bool
    (Fmt.str "sync-aware completes with %d aborts" sync.Stm_exec.aborts)
    true
    (sync.Stm_exec.outcome = Stm_exec.Completed);
  check Alcotest.(list int) "barrier sum"
    [ Splash_like.spin_barrier_expected ~threads ~phases ]
    out

(* Aborted work is accounted and bounded under sync-aware resolution. *)
let test_abort_accounting () =
  let p = Splash_like.flag_pipeline () in
  let sync, _ = run_tm ~config:(tm_config Stm_exec.Sync_aware) p [| 8 |] in
  check Alcotest.bool "useful work dominates" true
    (sync.Stm_exec.committed_instrs > sync.Stm_exec.wasted_instrs);
  check Alcotest.bool
    (Fmt.str "overhead %.1f sane" (Stm_exec.overhead sync))
    true
    (Stm_exec.overhead sync >= 1. && Stm_exec.overhead sync < 100.)

(* Monitoring off: no shadow accesses, cheaper, still correct. *)
let test_monitor_off_cheaper () =
  let p = Splash_like.spin_barrier ~threads:2 ~phases:2 () in
  let on, _ = run_tm ~config:(tm_config Stm_exec.Sync_aware) p [||] in
  let off, out =
    run_tm
      ~config:{ (tm_config Stm_exec.Sync_aware) with monitor = false }
      p [||]
  in
  check Alcotest.(list int) "still correct"
    [ Splash_like.spin_barrier_expected ~threads:2 ~phases:2 ]
    out;
  check Alcotest.bool "monitoring costs cycles" true
    (Stm_exec.overhead on > Stm_exec.overhead off)

let suite =
  [
    Alcotest.test_case "single thread agrees with vm" `Quick
      test_single_thread_agrees_with_vm;
    Alcotest.test_case "sieve under tm" `Quick test_sieve_under_tm;
    Alcotest.test_case "flag pipeline policies" `Quick
      test_flag_pipeline_policies;
    Alcotest.test_case "spin barrier policies" `Quick
      test_spin_barrier_policies;
    Alcotest.test_case "abort accounting" `Quick test_abort_accounting;
    Alcotest.test_case "monitoring cost" `Quick test_monitor_off_cheaper;
  ]
