(* Fault location: slicing captures value faults, predicate switching
   and implicit dependences capture omission faults, value replacement
   ranks faulty statements, and the race detector filters benign sync
   races (paper §3.1). *)

open Dift_isa
open Dift_vm
open Dift_workloads
open Dift_faultloc

let check = Alcotest.check

(* Slicing captures the faulty site for non-omission bugs and keeps
   the examined fraction well below the whole program. *)
let test_slicing_captures_value_faults () =
  List.iter
    (fun (c : Buggy.case) ->
      if not c.Buggy.omission then begin
        let r =
          Slice_loc.run c.Buggy.program ~input:c.Buggy.failing_input
            ~faulty_site:c.Buggy.faulty_site
        in
        check Alcotest.bool
          (Fmt.str "%s: fault in slice" c.Buggy.name)
          true r.Slice_loc.faulty_site_in_slice;
        (* tiny programs may be fully in the slice; only demand real
           pruning where there is unrelated code to exclude *)
        if r.Slice_loc.total_sites > 15 then
          check Alcotest.bool
            (Fmt.str "%s: slice is a subset (%.0f%%)" c.Buggy.name
               (100. *. r.Slice_loc.examined_fraction))
            true
            (r.Slice_loc.examined_fraction < 0.9)
      end)
    Buggy.all

(* Omission faults escape the plain slice. *)
let test_slicing_misses_omission_faults () =
  List.iter
    (fun (c : Buggy.case) ->
      if c.Buggy.omission then begin
        let r =
          Slice_loc.run c.Buggy.program ~input:c.Buggy.failing_input
            ~faulty_site:c.Buggy.faulty_site
        in
        check Alcotest.bool
          (Fmt.str "%s: fault NOT in plain slice" c.Buggy.name)
          false r.Slice_loc.faulty_site_in_slice
      end)
    Buggy.all

(* Predicate switching finds a critical predicate for the omission
   bugs — the faulty guard itself or its controlling branch. *)
let test_pred_switch_on_omission () =
  List.iter
    (fun (c : Buggy.case) ->
      if c.Buggy.omission then begin
        let r = Pred_switch.search c.Buggy.program ~input:c.Buggy.failing_input in
        match r.Pred_switch.critical with
        | None -> Alcotest.failf "%s: no critical predicate" c.Buggy.name
        | Some crit ->
            (* the critical predicate must be in the faulty site's
               function and near the injected fault *)
            let ffn, fpc = c.Buggy.faulty_site in
            let cfn, cpc = crit.Pred_switch.site in
            check Alcotest.string
              (Fmt.str "%s: critical predicate function" c.Buggy.name)
              ffn cfn;
            check Alcotest.bool
              (Fmt.str "%s: critical predicate near fault (pc %d vs %d)"
                 c.Buggy.name cpc fpc)
              true
              (abs (cpc - fpc) <= 3)
      end)
    Buggy.all

(* No critical predicate on a passing run. *)
let test_pred_switch_passing_run () =
  let c = Buggy.omission_guard in
  let r = Pred_switch.search c.Buggy.program ~input:c.Buggy.passing_input in
  check Alcotest.bool "no critical predicate" true
    (r.Pred_switch.critical = None)

(* The implicit-dependence method: the plain slice misses the fault;
   the verified predicate + augmented slice capture it, with few
   verifications. *)
let test_implicit_deps_capture_omission () =
  List.iter
    (fun (c : Buggy.case) ->
      if c.Buggy.omission then begin
        let r =
          Omission.run c.Buggy.program ~input:c.Buggy.failing_input
            ~faulty_site:c.Buggy.faulty_site
        in
        check Alcotest.bool
          (Fmt.str "%s: plain slice misses fault" c.Buggy.name)
          false r.Omission.plain_slice_has_fault;
        check Alcotest.bool
          (Fmt.str "%s: augmented slice captures fault" c.Buggy.name)
          true r.Omission.augmented_slice_has_fault;
        check Alcotest.bool
          (Fmt.str "%s: few verifications (%d)" c.Buggy.name
             r.Omission.verifications)
          true
          (r.Omission.verifications <= 25)
      end)
    Buggy.all

(* Value replacement ranks the faulty site (or a statement adjacent to
   it) among its interesting sites. *)
let test_value_replacement_ranks_faults () =
  let localised = ref 0 in
  let applicable = ref 0 in
  List.iter
    (fun (c : Buggy.case) ->
      match c.Buggy.name with
      | "div-crash" | "latent-corruption" | "wrong-operator" | "off-by-one"
        ->
          incr applicable;
          let r =
            Value_replace.run c.Buggy.program ~input:c.Buggy.failing_input
              ~faulty_site:c.Buggy.faulty_site
          in
          let ffn, fpc = c.Buggy.faulty_site in
          let near =
            List.exists
              (fun (rk : Value_replace.ranked) ->
                let fn, pc = rk.Value_replace.site in
                fn = ffn && abs (pc - fpc) <= 3)
              r.Value_replace.ranking
          in
          if near then incr localised
      | _ -> ())
    Buggy.all;
  check Alcotest.bool
    (Fmt.str "value replacement localises %d of %d" !localised !applicable)
    true
    (!localised >= 3)

(* Race detection: the racy bank has true races both modes report; the
   flag pipeline has only benign sync races, which sync-aware filtering
   removes. *)
let run_with_detector mode program input ~seed =
  let config =
    { Machine.default_config with seed; quantum_min = 2; quantum_max = 9 }
  in
  let m = Machine.create ~config program ~input in
  let det = Race_detect.create mode in
  Race_detect.attach det m;
  ignore (Machine.run m);
  det

let test_race_detector_finds_true_races () =
  let p = Splash_like.bank_racy ~threads:2 () in
  let input = Splash_like.bank_input ~size:60 ~seed:0 in
  let det = run_with_detector Race_detect.Basic p input ~seed:4 in
  check Alcotest.bool "basic finds races" true
    (Race_detect.races det <> []);
  let det2 = run_with_detector Race_detect.Sync_aware p input ~seed:4 in
  check Alcotest.bool "sync-aware still finds account races" true
    (Race_detect.races det2 <> [])

let test_locked_bank_race_free () =
  let p = Splash_like.bank ~threads:2 () in
  let input = Splash_like.bank_input ~size:40 ~seed:0 in
  let det = run_with_detector Race_detect.Basic p input ~seed:5 in
  check Alcotest.(list string) "no races under locks" []
    (List.map (Fmt.str "%a" Race_detect.pp_race) (Race_detect.races det))

let test_sync_aware_filters_benign_races () =
  let p = Splash_like.flag_pipeline () in
  let input = [| 10 |] in
  let basic = run_with_detector Race_detect.Basic p input ~seed:6 in
  let aware = run_with_detector Race_detect.Sync_aware p input ~seed:6 in
  let nb = List.length (Race_detect.races basic) in
  let na = List.length (Race_detect.races aware) in
  check Alcotest.bool
    (Fmt.str "basic reports sync races (%d)" nb)
    true (nb > 0);
  check Alcotest.bool
    (Fmt.str "sync-aware filters them (%d < %d)" na nb)
    true (na < nb);
  check Alcotest.bool "sync vars recognised" true
    (Race_detect.sync_vars aware > 0)

let test_barrier_orders_accesses () =
  let p = Splash_like.stencil ~threads:2 () in
  let input = Splash_like.stencil_input ~size:16 ~seed:1 in
  let det = run_with_detector Race_detect.Basic p input ~seed:7 in
  (* the barrier-synchronised stencil is race free apart from boundary
     element sharing, which the barrier orders *)
  check Alcotest.(list string) "stencil race free" []
    (List.map (Fmt.str "%a" Race_detect.pp_race) (Race_detect.races det))

(* Failure-inducing chops: for input-driven faults, the chop keeps
   the faulty site while shrinking the candidate set. *)
let test_chop_narrows_candidates () =
  List.iter
    (fun (c : Buggy.case) ->
      if not c.Buggy.omission then begin
        let r =
          Chop.run c.Buggy.program ~input:c.Buggy.failing_input
            ~faulty_site:c.Buggy.faulty_site
        in
        check Alcotest.bool
          (Fmt.str "%s: chop keeps the faulty site" c.Buggy.name)
          true r.Chop.faulty_site_in_chop;
        check Alcotest.bool
          (Fmt.str "%s: chop no larger than backward slice (%d <= %d)"
             c.Buggy.name r.Chop.chop_sites r.Chop.backward_sites)
          true
          (r.Chop.chop_sites <= r.Chop.backward_sites)
      end)
    Buggy.all

(* Multithreaded slicing with WAR/WAW dependences (§3.1): slicing from
   the racy bank's bad total reaches both threads' transfer code; with
   plain data/control dependences only, the second thread's overwriting
   store would be invisible. *)
let test_multithreaded_slice_sees_races () =
  let p = Splash_like.bank_racy ~threads:2 () in
  let input = Splash_like.bank_input ~size:60 ~seed:0 in
  let rec hunt seed =
    if seed > 30 then None
    else begin
      let config =
        { Machine.default_config with seed; quantum_min = 1; quantum_max = 4 }
      in
      let m = Machine.create ~config p ~input in
      let opts =
        { Dift_core.Ontrac.default_opts with record_war_waw = true }
      in
      let tracer = Dift_core.Ontrac.create ~opts p in
      Dift_core.Ontrac.attach tracer m;
      ignore (Machine.run m);
      if Machine.output_values m <> [ 800 ] then Some tracer else hunt (seed + 1)
    end
  in
  match hunt 1 with
  | None -> Alcotest.fail "no lossy schedule found"
  | Some tracer ->
      let g, w = Dift_core.Ontrac.final_graph tracer in
      let out =
        match Dift_core.Slicing.last_output g with
        | Some s -> s
        | None -> Alcotest.fail "no output"
      in
      let plain =
        Dift_core.Slicing.backward ~window_start:w g ~criterion:[ out ]
      in
      let extended =
        Dift_core.Slicing.backward
          ~kinds:Dift_core.Slicing.multithreaded_kinds ~window_start:w g
          ~criterion:[ out ]
      in
      check Alcotest.bool
        (Fmt.str "WAR/WAW extend the slice (%d > %d)"
           (Dift_core.Slicing.size extended)
           (Dift_core.Slicing.size plain))
        true
        (Dift_core.Slicing.size extended > Dift_core.Slicing.size plain)

(* Multiple-points slicing [13]: wrong outputs' slice intersection
   keeps the fault; dicing away the correct outputs' slices sharpens
   it further. *)
let test_multi_point_slicing () =
  let imm = Operand.imm and reg = Operand.reg in
  let site = ref 0 in
  let p =
    Program.make
      [
        Builder.define ~name:"main" ~arity:0 (fun b ->
            Builder.read b Reg.r0;
            (* n *)
            Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
              (fun () ->
                Builder.read b Reg.r1;
                Builder.gt b Reg.r2 (reg Reg.r1) (imm 50);
                Builder.if_nz b (reg Reg.r2)
                  ~then_:(fun () ->
                    site := Builder.here b;
                    (* BUG: adds 1 instead of doubling *)
                    Builder.add b Reg.r3 (reg Reg.r1) (imm 1))
                  ~else_:(fun () ->
                    Builder.mul b Reg.r3 (reg Reg.r1) (imm 2));
                Builder.write b (reg Reg.r3));
            Builder.halt b);
      ]
  in
  let faulty_site = ("main", !site) in
  let data = [ 10; 60; 20; 70; 30 ] in
  let input = Array.of_list (List.length data :: data) in
  let expected_output = List.map (fun x -> 2 * x) data in
  let r =
    Multi_point.run p ~input ~expected_output ~faulty_site
  in
  check Alcotest.int "wrong outputs" 2 r.Multi_point.wrong_outputs;
  check Alcotest.int "correct outputs" 3 r.Multi_point.correct_outputs;
  check Alcotest.bool "fault in intersection" true
    r.Multi_point.faulty_in_intersection;
  check Alcotest.bool "fault in dice" true r.Multi_point.faulty_in_dice;
  check Alcotest.bool
    (Fmt.str "dice (%d) smaller than single slice (%d)"
       r.Multi_point.dice_sites r.Multi_point.single_slice_sites)
    true
    (r.Multi_point.dice_sites < r.Multi_point.single_slice_sites);
  check Alcotest.bool
    (Fmt.str "intersection (%d) no larger than single slice (%d)"
       r.Multi_point.intersection_sites r.Multi_point.single_slice_sites)
    true
    (r.Multi_point.intersection_sites <= r.Multi_point.single_slice_sites)

let suite =
  [
    Alcotest.test_case "chop narrows candidates" `Quick
      test_chop_narrows_candidates;
    Alcotest.test_case "multiple-points slicing" `Quick
      test_multi_point_slicing;
    Alcotest.test_case "multithreaded slice sees races" `Quick
      test_multithreaded_slice_sees_races;
    Alcotest.test_case "slicing captures value faults" `Quick
      test_slicing_captures_value_faults;
    Alcotest.test_case "slicing misses omission faults" `Quick
      test_slicing_misses_omission_faults;
    Alcotest.test_case "predicate switching on omission" `Quick
      test_pred_switch_on_omission;
    Alcotest.test_case "predicate switching on passing run" `Quick
      test_pred_switch_passing_run;
    Alcotest.test_case "implicit deps capture omission" `Quick
      test_implicit_deps_capture_omission;
    Alcotest.test_case "value replacement ranks faults" `Quick
      test_value_replacement_ranks_faults;
    Alcotest.test_case "detector finds true races" `Quick
      test_race_detector_finds_true_races;
    Alcotest.test_case "locked bank race free" `Quick
      test_locked_bank_race_free;
    Alcotest.test_case "sync-aware filters benign races" `Quick
      test_sync_aware_filters_benign_races;
    Alcotest.test_case "barrier orders accesses" `Quick
      test_barrier_orders_accesses;
  ]
