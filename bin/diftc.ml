(* diftc — run the bundled workloads under the DIFT tools.

   Examples:
     diftc list
     diftc run crc --size 50
     diftc trace matmul --size 8 --capacity 65536
     diftc taint qsort --size 20
     diftc slice sieve --size 100
     diftc attack stack-smash
     diftc lineage moving-avg --size 24 --robdd *)

open Cmdliner

open Dift_vm
open Dift_core
open Dift_workloads

let find_workload name =
  match List.find_opt (fun w -> w.Workload.name = name) Spec_like.all with
  | Some w -> Ok w
  | None ->
      Error
        (Fmt.str "unknown workload %s (available: %s)" name
           (String.concat ", "
              (List.map (fun w -> w.Workload.name) Spec_like.all)))

let size_arg =
  Arg.(value & opt int 20 & info [ "size" ] ~doc:"Workload size parameter.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Input/scheduler seed.")

let name_arg kind =
  Arg.(required & pos 0 (some string) None & info [] ~docv:kind)

(* [--stats] / [--stats=FILE]: attach the observability registry to
   the run and dump a JSON snapshot afterwards ("-" = stdout). *)
let stats_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "stats" ] ~docv:"FILE"
        ~doc:
          "Instrument the run through the metrics registry and write a \
           JSON snapshot to $(docv) (\"-\", the default, means stdout).")

let emit_stats dest reg =
  match dest with
  | None -> ()
  | Some file -> Dift_obs.Registry.(write_json file (snapshot reg))

(* [--chrome-trace] / [--chrome-trace=FILE]: record the run on an
   execution timeline and export it in Chrome trace-event JSON
   (loadable in Perfetto / chrome://tracing). *)
let chrome_trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "trace.json") (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Record an execution timeline and write it as Chrome \
           trace-event JSON to $(docv) (default \"trace.json\"; \"-\" \
           means stdout).  Open the file in Perfetto or \
           chrome://tracing.")

let trace_capacity_arg =
  Arg.(
    value & opt int 65_536
    & info [ "trace-capacity" ] ~docv:"EVENTS"
        ~doc:
          "Per-domain timeline buffer capacity, in events (with \
           --chrome-trace).  Events beyond the cap are dropped and \
           counted, never silently truncated.")

(* A tracer when [--chrome-trace] was given; its drop/buffer accounting
   joins the [--stats] registry when both are on. *)
let make_tracer chrome capacity obs =
  Option.map
    (fun _ ->
      let tr = Dift_obs.Trace.create ~capacity () in
      Option.iter (Dift_obs.Trace.register_obs tr) obs;
      tr)
    chrome

let emit_trace chrome tr =
  match chrome with
  | None -> ()
  | Some file ->
      Dift_obs.Trace.write tr file;
      if file <> "-" then
        Fmt.epr "chrome trace: %d events -> %s (%d dropped)@."
          (Dift_obs.Trace.buffered tr)
          file
          (Dift_obs.Trace.dropped tr)

(* -- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Fmt.pr "kernels:@.";
    List.iter (fun w -> Fmt.pr "  %a@." Workload.pp w) Spec_like.all;
    Fmt.pr "attack cases:@.";
    List.iter
      (fun (c : Vulnerable.case) ->
        Fmt.pr "  %s: %s@." c.Vulnerable.name c.Vulnerable.description)
      Vulnerable.all;
    Fmt.pr "lineage pipelines:@.";
    List.iter
      (fun (p : Scientific.pipeline) ->
        Fmt.pr "  %s: %s@." p.Scientific.name p.Scientific.description)
      Scientific.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List bundled workloads.")
    Term.(const run $ const ())

(* -- run ------------------------------------------------------------------- *)

let run_cmd =
  let run name size seed stats chrome trace_capacity =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        let config = { Machine.default_config with seed } in
        let m = Machine.create ~config w.Workload.program ~input in
        let obs = Option.map (fun _ -> Dift_obs.Registry.create ()) stats in
        Option.iter (fun reg -> Obs_tool.attach reg m) obs;
        let tracer = make_tracer chrome trace_capacity obs in
        Option.iter (fun tr -> Obs_tool.attach_trace tr m) tracer;
        let outcome =
          match tracer with
          | Some tr ->
              Dift_obs.Trace.span tr ~cat:"vm" "run" (fun () ->
                  Machine.run m)
          | None -> Machine.run m
        in
        Fmt.pr "outcome: %a@." Event.pp_outcome outcome;
        Fmt.pr "output:  %a@."
          Fmt.(list ~sep:sp int)
          (Machine.output_values m);
        Fmt.pr "steps:   %d, cycles: %d@." (Machine.steps m)
          (Machine.cycles m);
        Option.iter (fun reg -> emit_stats stats reg) obs;
        Option.iter (fun tr -> emit_trace chrome tr) tracer;
        0
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a kernel natively.")
    Term.(
      const run $ name_arg "KERNEL" $ size_arg $ seed_arg $ stats_arg
      $ chrome_trace_arg $ trace_capacity_arg)

(* -- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let capacity_arg =
    Arg.(
      value
      & opt int (16 * 1024 * 1024)
      & info [ "capacity" ] ~doc:"Trace buffer capacity in bytes.")
  in
  let run name size seed capacity stats chrome trace_capacity =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        let m = Machine.create w.Workload.program ~input in
        let opts = { Ontrac.default_opts with capacity } in
        let tracer = Ontrac.create ~opts w.Workload.program in
        Ontrac.attach tracer m;
        let obs = Option.map (fun _ -> Dift_obs.Registry.create ()) stats in
        Option.iter (fun reg -> Obs_tool.attach reg m) obs;
        let timeline = make_tracer chrome trace_capacity obs in
        Option.iter
          (fun tr ->
            Ontrac.set_trace tracer tr;
            Obs_tool.attach_trace tr m)
          timeline;
        (match timeline with
        | Some tr ->
            Dift_obs.Trace.span tr ~cat:"vm" "ontrac.run" (fun () ->
                ignore (Machine.run m))
        | None -> ignore (Machine.run m));
        Fmt.pr "%a@." Ontrac.pp_stats (Ontrac.stats tracer);
        Fmt.pr "%a@." Trace_buffer.pp (Ontrac.buffer tracer);
        Fmt.pr "bytes/instr: %.3f@." (Ontrac.bytes_per_instr tracer);
        Fmt.pr "window: %d instructions@." (Ontrac.window_length tracer);
        Option.iter
          (fun reg ->
            Ontrac.register_obs tracer reg;
            emit_stats stats reg)
          obs;
        Option.iter (fun tr -> emit_trace chrome tr) timeline;
        0
  in
  Cmd.v (Cmd.info "trace" ~doc:"Run a kernel under ONTRAC.")
    Term.(
      const run $ name_arg "KERNEL" $ size_arg $ seed_arg $ capacity_arg
      $ stats_arg $ chrome_trace_arg $ trace_capacity_arg)

(* -- taint ------------------------------------------------------------------- *)

module Bool_engine = Engine.Make (Taint.Bool)

let taint_cmd =
  let parallel_arg =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:
            "Track on a helper OCaml domain connected by the bounded \
             forwarding channel (the real two-domain runtime) instead \
             of inline in the interpreter's domain.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ]
          ~doc:"Forwarding-ring capacity, in batches (with --parallel).")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch-size" ]
          ~doc:"Events per forwarded batch (with --parallel).")
  in
  let xchg_arg =
    Arg.(
      value & opt (some int) None
      & info [ "xchg-capacity" ] ~docv:"N"
          ~doc:
            "Cross-shard exchange-ring capacity, in batches (with \
             --helpers > 1; default 256).  Sizes the request and reply \
             rings of the two-phase exchange independently of the \
             inbound forwarding rings.")
  in
  let wire_arg =
    let wire = Arg.enum [ ("coded", `Coded); ("boxed", `Boxed) ] in
    Arg.(
      value
      & opt wire `Coded
      & info [ "wire" ] ~docv:"WIRE"
          ~doc:
            "Forwarding wire format (with --parallel): $(b,coded) \
             (flat struct-of-arrays batches over interned sites, the \
             default) or $(b,boxed) (one allocated event record per \
             event, the legacy plane).")
  in
  let forward_filter_arg =
    Arg.(
      value & flag
      & info [ "forward-filter" ]
          ~doc:
            "Enable the producer-side taint-liveness filter (with \
             --parallel): events whose locations cannot intersect live \
             taint and introduce none are dropped before encoding.  \
             Results are bit-identical; only forwarding traffic \
             shrinks.")
  in
  let helpers_arg =
    Arg.(
      value & opt int 1
      & info [ "helpers" ] ~docv:"N"
          ~doc:
            "Number of helper domains (with --parallel).  With N > 1, \
             shadow memory is sharded across the helpers and \
             cross-shard events are resolved by the two-phase \
             exchange (see --route).")
  in
  let route_arg =
    let route =
      Arg.enum
        [ ("request-reply", `Request_reply); ("broadcast", `Broadcast) ]
    in
    Arg.(
      value
      & opt route `Request_reply
      & info [ "route" ] ~docv:"ROUTE"
          ~doc:
            "Cross-shard strategy with --helpers > 1: $(b,request-reply) \
             (exact two-phase exchange over disjoint shards) or \
             $(b,broadcast) (replicate every event to every shard).")
  in
  (* The kernel can be named either positionally or with [--workload]
     (convenient in scripted invocations where the options come
     first). *)
  let pos_name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL")
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"KERNEL"
          ~doc:"Kernel to run (alternative to the positional argument).")
  in
  let fault_plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Inject a deterministic fault plan into the parallel runtime \
             (with --parallel).  Grammar: [WHERE/]OP@N=FAULT, \
             ';'-separated — e.g. \
             $(b,push\\@3=abort;xchg/pop\\@2=raise).  The run exits 0 \
             when it terminates cleanly with only injected failures.")
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Derive a reproducible pseudo-random fault plan from SEED \
             (with --parallel; the plan is printed to stderr, so any \
             failing seed is a one-flag repro).  Mutually exclusive \
             with --fault-plan.")
  in
  let flight_record_arg =
    Arg.(
      value
      & opt ~vopt:(Some 512) (some int) None
      & info [ "flight-record" ] ~docv:"CAP"
          ~doc:
            "Turn on the always-on flight recorder: each domain keeps \
             its last $(docv) structured events (default 512) in a \
             bounded ring — channel ops, exchange legs, chaos \
             injections, engine milestones.  Recording never blocks; \
             overflow overwrites the oldest events and is counted.  \
             Implied by --crash-dump.")
  in
  let crash_dump_arg =
    Arg.(
      value
      & opt ~vopt:(Some "crash-bundle.json") (some string) None
      & info [ "crash-dump" ] ~docv:"FILE"
          ~doc:
            "When the run fails, write a post-mortem crash bundle to \
             $(docv) (default \"crash-bundle.json\"): the structured \
             error, runtime geometry, fault plan, final metrics, \
             per-domain flight-recorder tails and trace accounting, in \
             one atomically-written JSON document ($(b,diftc inspect) \
             renders it).  Requires --parallel; implies \
             --flight-record.")
  in
  let heartbeat_arg =
    Arg.(
      value
      & opt ~vopt:(Some "heartbeat.jsonl") (some string) None
      & info [ "heartbeat" ] ~docv:"FILE"
          ~doc:
            "Sample the metrics registry periodically into $(docv) \
             (default \"heartbeat.jsonl\"), one compact JSON object per \
             line — a liveness record that survives a crash.")
  in
  let heartbeat_interval_arg =
    Arg.(
      value & opt int 200
      & info [ "heartbeat-interval-ms" ] ~docv:"MS"
          ~doc:"Milliseconds between heartbeat samples (with --heartbeat).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "deadline-ms" ] ~docv:"SPEC"
          ~doc:
            "Supervise the parallel run with watchdog deadlines (with \
             --parallel).  Grammar: DEFAULT_MS[;SEAM_PREFIX=MS...], e.g. \
             $(b,500) or $(b,500;xchg=200;join.helper=2000).  A seam that \
             stays blocked past its deadline while the whole run is \
             frozen triggers the timeout-and-cascade shutdown and a \
             structured deadline error (rendered by $(b,diftc inspect)).")
  in
  let degrade_arg =
    Arg.(
      value
      & opt (some (enum [ ("inline", `Inline) ])) None
      & info [ "degrade" ] ~docv:"MODE"
          ~doc:
            "Degraded-mode completion (with --parallel): when a helper \
             or shard dies or misses its deadline, finish the tracking \
             with the $(b,inline) sequential engine on the application \
             domain and report a complete (flagged) result instead of \
             an error.")
  in
  let on_sink sink taint (e : Event.exec) =
    if taint && sink = Engine.Sink_output then
      Fmt.pr "tainted output %d at step %d@." e.Event.value e.Event.step
  in
  let run pos_name workload size seed parallel helpers route queue_capacity
      batch_size xchg_capacity wire forward_filter fault_plan fault_seed
      flight_record crash_dump heartbeat heartbeat_interval deadline degrade
      stats chrome trace_capacity =
    let named =
      match (pos_name, workload) with
      | Some p, Some w when p <> w ->
          Error (Fmt.str "both KERNEL %s and --workload %s given" p w)
      | Some n, _ | None, Some n -> Ok n
      | None, None -> Error "no kernel named (positional or --workload)"
    in
    match Result.bind named find_workload with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok _ when parallel && (queue_capacity < 1 || batch_size < 1) ->
        Fmt.epr "--queue-capacity and --batch-size must be at least 1@.";
        1
    | Ok _ when parallel && helpers < 1 ->
        Fmt.epr "--helpers must be at least 1@.";
        1
    | Ok _ when (match xchg_capacity with Some c -> c < 1 | None -> false) ->
        Fmt.epr "--xchg-capacity must be at least 1@.";
        1
    | Ok _ when xchg_capacity <> None && not (parallel && helpers > 1) ->
        Fmt.epr "--xchg-capacity requires --parallel --helpers > 1@.";
        1
    | Ok _ when forward_filter && not parallel ->
        Fmt.epr "--forward-filter requires --parallel@.";
        1
    | Ok _ when (fault_plan <> None || fault_seed <> None) && not parallel ->
        Fmt.epr "--fault-plan/--fault-seed require --parallel@.";
        1
    | Ok _ when crash_dump <> None && not parallel ->
        Fmt.epr "--crash-dump requires --parallel@.";
        1
    | Ok _ when (match flight_record with Some c -> c < 1 | None -> false) ->
        Fmt.epr "--flight-record capacity must be at least 1@.";
        1
    | Ok _ when heartbeat <> None && heartbeat_interval < 1 ->
        Fmt.epr "--heartbeat-interval-ms must be at least 1@.";
        1
    | Ok _ when fault_plan <> None && fault_seed <> None ->
        Fmt.epr "--fault-plan and --fault-seed are mutually exclusive@.";
        1
    | Ok _ when (deadline <> None || degrade <> None) && not parallel ->
        Fmt.epr "--deadline-ms/--degrade require --parallel@.";
        1
    | Ok _
      when match deadline with
           | Some d ->
               Result.is_error
                 (Dift_parallel.Watchdog.deadlines_of_string d)
           | None -> false -> (
        match
          Option.map Dift_parallel.Watchdog.deadlines_of_string deadline
        with
        | Some (Error e) ->
            Fmt.epr "bad --deadline-ms: %s@." e;
            1
        | _ -> assert false)
    | Ok _
      when match fault_plan with
           | Some p ->
               Result.is_error (Dift_parallel.Chaos.plan_of_string p)
           | None -> false -> (
        match Option.map Dift_parallel.Chaos.plan_of_string fault_plan with
        | Some (Error e) ->
            Fmt.epr "bad --fault-plan: %s@." e;
            1
        | _ -> assert false)
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        (* The registry backs [--stats] directly, and is also what the
           heartbeat samples and the crash bundle snapshots — any of
           the three turns it on. *)
        let obs =
          if stats <> None || heartbeat <> None || crash_dump <> None then
            Some (Dift_obs.Registry.create ())
          else None
        in
        let tracer = make_tracer chrome trace_capacity obs in
        (* --crash-dump implies the flight recorder: a bundle without
           per-domain tails would be an error report, not a flight. *)
        let flight =
          match (flight_record, crash_dump) with
          | Some cap, _ -> Some (Dift_obs.Flight.create ~capacity:cap ())
          | None, Some _ -> Some (Dift_obs.Flight.create ())
          | None, None -> None
        in
        (match (flight, obs) with
        | Some fl, Some reg -> Dift_obs.Flight.register_obs fl reg
        | _ -> ());
        (* One sampler domain serves every periodic job of the run:
           heartbeat beats and watchdog deadline checks share it. *)
        let sampler =
          if heartbeat <> None || deadline <> None then
            Some (Dift_obs.Sampler.create ())
          else None
        in
        let hb =
          Option.map
            (fun file ->
              Dift_obs.Heartbeat.start ~interval_ms:heartbeat_interval
                ?sampler (Option.get obs) ~file)
            heartbeat
        in
        let wd =
          Option.map
            (fun spec ->
              let deadlines =
                match Dift_parallel.Watchdog.deadlines_of_string spec with
                | Ok d -> d
                | Error _ -> assert false (* rejected above *)
              in
              Dift_parallel.Watchdog.create ?obs ?flight ?sampler deadlines)
            deadline
        in
        let plan =
          match (fault_plan, fault_seed) with
          | Some p, _ -> (
              match Dift_parallel.Chaos.plan_of_string p with
              | Ok pl -> Some pl
              | Error _ -> assert false (* rejected above *))
          | None, Some s -> Some (Dift_parallel.Chaos.plan_of_seed s)
          | None, None -> None
        in
        (match plan with
        | Some pl ->
            Fmt.epr "fault plan: %a@." Dift_parallel.Chaos.pp_plan pl
        | None -> ());
        let chaos =
          Option.map (fun pl -> Dift_parallel.Chaos.create ?flight pl) plan
        in
        (* A fault-injected run is green when it terminated cleanly and
           the primary failure is the injected one (or the Shard_dead
           cascade it caused); anything else is a real failure. *)
        let expected_failure ex =
          match ex with
          | Dift_parallel.Chaos.Injected _
          | Dift_parallel.Shard_engine.Shard_dead ->
              chaos <> None
          (* a deadline miss under active supervision is the watchdog
             doing its job, not a runtime defect *)
          | Dift_parallel.Watchdog.Deadline_exceeded _ -> wd <> None
          | _ -> false
        in
        let rc = ref 0 in
        let failed : Dift_parallel.Parallel.error option ref = ref None in
        if parallel && helpers > 1 then begin
          let open Dift_parallel.Parallel in
          match
            run_sharded_result ?obs ?trace:tracer ?flight ?chaos
              ?watchdog:wd ?degrade ?xchg_capacity ~wire ~forward_filter
              ~route ~queue_capacity ~batch_size ~on_sink ~shards:helpers
              w.Workload.program ~input
          with
          | Error e ->
              Fmt.epr "sharded run failed: %a@." pp_error e;
              failed := Some e;
              rc := (if expected_failure e.e_exn then 0 else 1)
          | Ok r ->
              (match r.s_degraded with
              | Some d -> Fmt.pr "%a@." pp_degraded d
              | None -> ());
              Fmt.pr "events: %d, sources: %d, tainted sinks: %d@."
                r.s_result.events r.s_result.sources r.s_result.sink_hits;
              Fmt.pr "shadow: %d locations, %d words@."
                r.s_result.tainted_locations r.s_result.shadow_words;
              Fmt.pr "sharding: %a@." pp_sharded_report r;
              Array.iter
                (fun (s : Dift_parallel.Shard_engine.shard_stat) ->
                  Fmt.pr
                    "  shard %d: %d events in %d batches, %d sent / %d \
                     received, busy %.2f ms (%d stalls, %d waits)@."
                    s.Dift_parallel.Shard_engine.shard
                    s.Dift_parallel.Shard_engine.handled
                    s.Dift_parallel.Shard_engine.batches
                    s.Dift_parallel.Shard_engine.exchange_sent
                    s.Dift_parallel.Shard_engine.exchange_received
                    (float_of_int s.Dift_parallel.Shard_engine.busy_ns
                    /. 1e6)
                    s.Dift_parallel.Shard_engine.producer_stalls
                    s.Dift_parallel.Shard_engine.consumer_waits)
                r.s_per_shard
        end
        else if parallel then begin
          let open Dift_parallel.Parallel in
          match
            run_result ?obs ?trace:tracer ?flight ?chaos ?watchdog:wd
              ?degrade ~wire ~forward_filter ~queue_capacity ~batch_size
              ~on_sink w.Workload.program ~input
          with
          | Error e ->
              Fmt.epr "parallel run failed: %a@." pp_error e;
              failed := Some e;
              rc := (if expected_failure e.e_exn then 0 else 1)
          | Ok r ->
              (match r.degraded with
              | Some d -> Fmt.pr "%a@." pp_degraded d
              | None -> ());
              Fmt.pr "events: %d, sources: %d, tainted sinks: %d@."
                r.result.events r.result.sources r.result.sink_hits;
              Fmt.pr "shadow: %d locations, %d words@."
                r.result.tainted_locations r.result.shadow_words;
              Fmt.pr
                "channel: %d batches (ring %d x %d), %d producer stalls, \
                 %d helper waits@."
                r.batches r.queue_capacity r.batch_size r.producer_stalls
                r.consumer_waits;
              if r.dropped_batches > 0 then
                Fmt.pr "dropped: %d batches / %d events@." r.dropped_batches
                  r.dropped_events;
              Fmt.pr "wall: main %.2f ms, total %.2f ms@."
                (float_of_int r.main_wall_ns /. 1e6)
                (float_of_int r.total_wall_ns /. 1e6)
        end
        else begin
          let m = Machine.create w.Workload.program ~input in
          let eng = Bool_engine.create w.Workload.program in
          Bool_engine.on_sink eng on_sink;
          Bool_engine.attach eng m;
          Option.iter
            (fun reg ->
              Bool_engine.register_obs eng reg;
              Obs_tool.attach reg m)
            obs;
          Option.iter
            (fun tr ->
              Dift_obs.Trace.name_track tr "app";
              Bool_engine.set_trace eng tr;
              Obs_tool.attach_trace tr m)
            tracer;
          Option.iter
            (fun fl ->
              Dift_obs.Flight.name_domain fl "app";
              Bool_engine.set_flight eng fl)
            flight;
          (match tracer with
          | Some tr ->
              Dift_obs.Trace.span tr ~cat:"vm" "app.run" (fun () ->
                  ignore (Machine.run m))
          | None -> ignore (Machine.run m));
          let locs, words = Bool_engine.shadow_footprint eng in
          let s = Bool_engine.stats eng in
          Fmt.pr "events: %d, sources: %d, tainted sinks: %d@."
            s.Engine.events s.Engine.sources s.Engine.sink_hits;
          Fmt.pr "shadow: %d locations, %d words@." locs words
        end;
        (match chaos with
        | Some c ->
            Fmt.epr "faults fired: %d@." (Dift_parallel.Chaos.fired c)
        | None -> ());
        (* Stop the periodic jobs before bundling — the heartbeat file
           is closed with its final beat reflecting the post-mortem
           state, and no watchdog check is in flight — then park the
           shared sampler domain. *)
        (match (hb, heartbeat) with
        | Some h, Some file ->
            let n = Dift_obs.Heartbeat.stop h in
            Fmt.epr "heartbeat: %d beats -> %s@." n file
        | _ -> ());
        Option.iter Dift_parallel.Watchdog.stop wd;
        Option.iter Dift_obs.Sampler.stop sampler;
        (match (!failed, crash_dump) with
        | Some e, Some file ->
            let geometry =
              {
                Dift_parallel.Postmortem.g_runtime =
                  (if helpers > 1 then "sharded" else "parallel");
                g_shards = helpers;
                g_queue_capacity = queue_capacity;
                g_batch_size = batch_size;
                g_xchg_capacity =
                  (if helpers > 1 then
                     Some (Option.value xchg_capacity ~default:256)
                   else None);
                g_wire = wire;
                g_forward_filter = forward_filter;
                g_deadline =
                  Option.map
                    (fun w ->
                      Dift_parallel.Watchdog.(
                        deadlines_to_string (deadline_spec w)))
                    wd;
                g_degrade = degrade <> None;
              }
            in
            let extra =
              [
                ("workload", Dift_obs.Json.String w.Workload.name);
                ("size", Dift_obs.Json.Int size);
                ("seed", Dift_obs.Json.Int seed);
              ]
            in
            let bundle =
              Dift_parallel.Postmortem.bundle ?obs ?flight ?chaos
                ?trace:tracer
                ?first_heartbeat:(Option.map Dift_obs.Heartbeat.first hb)
                ~extra ~error:e geometry
            in
            Dift_parallel.Postmortem.write ~file bundle;
            Fmt.epr "crash bundle: %s@." file
        | _ -> ());
        Option.iter (fun reg -> emit_stats stats reg) obs;
        Option.iter (fun tr -> emit_trace chrome tr) tracer;
        !rc
  in
  Cmd.v
    (Cmd.info "taint"
       ~doc:
         "Run a kernel under boolean taint DIFT, inline or on a helper \
          domain (--parallel), optionally under an injected fault plan \
          (--fault-plan/--fault-seed).")
    Term.(
      const run $ pos_name_arg $ workload_arg $ size_arg $ seed_arg
      $ parallel_arg $ helpers_arg $ route_arg $ queue_arg $ batch_arg
      $ xchg_arg $ wire_arg $ forward_filter_arg $ fault_plan_arg
      $ fault_seed_arg $ flight_record_arg $ crash_dump_arg $ heartbeat_arg
      $ heartbeat_interval_arg $ deadline_arg $ degrade_arg $ stats_arg
      $ chrome_trace_arg $ trace_capacity_arg)

(* -- inspect ------------------------------------------------------------------ *)

(* Pretty-print (and thereby validate) a crash bundle written by
   [taint --crash-dump].  Exits 1 on anything malformed — CI uses it
   as the bundle checker after the fault sweep. *)
let inspect_cmd =
  let module J = Dift_obs.Json in
  let bundle_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BUNDLE" ~doc:"Crash-bundle JSON file to render.")
  in
  let last_arg =
    Arg.(
      value & opt int 8
      & info [ "last" ] ~docv:"N"
          ~doc:"Flight events shown per domain (the most recent N).")
  in
  let str j name =
    match J.member name j with Some (J.String s) -> Some s | _ -> None
  in
  let int_f j name =
    match J.member name j with Some (J.Int n) -> Some n | _ -> None
  in
  let num name j = Option.value ~default:0 (int_f j name) in
  let print_error err =
    Fmt.pr "error:    leg %s@."
      (Option.value ~default:"?" (str err "leg"));
    Fmt.pr "          %s@." (Option.value ~default:"?" (str err "exn"));
    (match J.member "secondary" err with
    | Some (J.List (_ :: _ as xs)) ->
        Fmt.pr "          then, shutting down:@.";
        List.iter
          (function
            | J.String s -> Fmt.pr "            %s@." s | _ -> ())
          xs
    | _ -> ());
    (match J.member "deadline" err with
    | Some d ->
        Fmt.pr
          "deadline: seam %s blocked %.1f ms (deadline %.1f ms, epoch \
           %d)@."
          (Option.value ~default:"?" (str d "seam"))
          (float_of_int (num "blocked_ns" d) /. 1e6)
          (float_of_int (num "deadline_ns" d) /. 1e6)
          (num "epoch" d);
        (match J.member "armed" d with
        | Some (J.List (_ :: _ as xs)) ->
            Fmt.pr "          armed at detection:@.";
            List.iter
              (fun a ->
                Fmt.pr "            %s (epoch %d)@."
                  (Option.value ~default:"?" (str a "seam"))
                  (num "epoch" a))
              xs
        | _ -> ())
    | None -> ());
    match J.member "partial" err with
    | Some p ->
        Fmt.pr
          "partial:  %d events fed, %d batches delivered, %d batches / \
           %d events dropped, wall %.2f ms@."
          (num "events" p) (num "batches" p)
          (num "dropped_batches" p)
          (num "dropped_events" p)
          (float_of_int (num "wall_ns" p) /. 1e6)
    | None -> ()
  in
  let print_geometry g =
    Fmt.pr "geometry: %s runtime, %d shard(s), ring %d x %d%s%s%s%s%s@."
      (Option.value ~default:"?" (str g "runtime"))
      (num "shards" g) (num "queue_capacity" g) (num "batch_size" g)
      (match str g "wire" with
      | Some w -> Fmt.str ", %s wire" w
      | None -> "")
      (match J.member "xchg_capacity" g with
      | Some (J.Int c) -> Fmt.str ", xchg %d" c
      | _ -> "")
      (match J.member "forward_filter" g with
      | Some (J.Bool true) -> ", forward filter"
      | _ -> "")
      (match str g "deadline_ms" with
      | Some d -> Fmt.str ", deadline %s ms" d
      | None -> "")
      (match J.member "degrade" g with
      | Some (J.Bool true) -> ", degrade inline"
      | _ -> "")
  in
  let print_fault_plan fp =
    Fmt.pr "faults:   plan %s (%d fired)@."
      (Option.value ~default:"?" (str fp "plan"))
      (num "fired" fp)
  in
  let print_flight last fl =
    Fmt.pr "flight:   %d events recorded, %d overwritten (ring of %d \
            per domain)@."
      (num "recorded" fl) (num "overwritten" fl) (num "capacity" fl);
    match J.member "domains" fl with
    | Some (J.List doms) ->
        List.iter
          (fun d ->
            let evs =
              match J.member "events" d with
              | Some (J.List evs) -> evs
              | _ -> []
            in
            let n = List.length evs in
            Fmt.pr "  [%s] domain %d: %d recorded, last %d:@."
              (Option.value ~default:"?" (str d "name"))
              (num "tid" d) (num "recorded" d) (min last n);
            let rec drop k = function
              | l when k <= 0 -> l
              | [] -> []
              | _ :: tl -> drop (k - 1) tl
            in
            List.iter
              (fun e ->
                Fmt.pr "    +%.3fms %s/%s a=%d b=%d%s@."
                  (float_of_int (num "ts_ns" e) /. 1e6)
                  (Option.value ~default:"?" (str e "cat"))
                  (Option.value ~default:"?" (str e "name"))
                  (num "a" e) (num "b" e)
                  (match str e "detail" with
                  | Some d -> " " ^ d
                  | None -> ""))
              (drop (n - last) evs))
          doms
    | _ -> ()
  in
  (* Counter/gauge movement between the run's first heartbeat and the
     final post-mortem snapshot: how far the run got after beat 0. *)
  let print_deltas ~first ~final =
    let metric_value m =
      match str m "kind" with
      | Some ("counter" | "gauge") -> int_f m "value"
      | _ -> None
    in
    let deltas =
      match final with
      | J.Obj groups ->
          List.concat_map
            (fun (g, members) ->
              match members with
              | J.Obj ms ->
                  List.filter_map
                    (fun (name, m) ->
                      match metric_value m with
                      | None -> None
                      | Some v ->
                          let v0 =
                            match
                              Option.bind (J.member g first)
                                (J.member name)
                            with
                            | Some m0 -> Option.value ~default:0 (metric_value m0)
                            | None -> 0
                          in
                          if v <> v0 then Some (g ^ "." ^ name, v0, v)
                          else None)
                    ms
              | _ -> [])
            groups
      | _ -> []
    in
    if deltas <> [] then begin
      Fmt.pr "metric movement since first heartbeat:@.";
      List.iter
        (fun (name, v0, v) ->
          Fmt.pr "  %-40s %d -> %d (%+d)@." name v0 v (v - v0))
        deltas
    end
  in
  let run file last =
    match
      try Ok (In_channel.with_open_bin file In_channel.input_all)
      with Sys_error e -> Error e
    with
    | Error e ->
        Fmt.epr "cannot read %s: %s@." file e;
        1
    | Ok text -> (
        match J.of_string text with
        | Error e ->
            Fmt.epr "%s: not valid JSON: %s@." file e;
            1
        | Ok j -> (
            match
              (str j "schema", J.member "error" j, J.member "geometry" j)
            with
            | Some s, _, _ when s <> Dift_parallel.Postmortem.schema ->
                Fmt.epr "%s: unknown schema %s (expected %s)@." file s
                  Dift_parallel.Postmortem.schema;
                1
            | None, _, _ ->
                Fmt.epr "%s: missing schema tag — not a crash bundle@." file;
                1
            | _, None, _ | _, _, None ->
                Fmt.epr "%s: missing error/geometry — not a crash bundle@."
                  file;
                1
            | Some _, Some err, Some geo when str err "leg" = None ->
                ignore geo;
                Fmt.epr "%s: error object has no failing leg@." file;
                1
            | Some schema, Some err, Some geo ->
                Fmt.pr "bundle:   %s (%s)@." file schema;
                (match (str j "workload", int_f j "size", int_f j "seed") with
                | Some w, Some sz, Some sd ->
                    Fmt.pr "run:      %s --size %d --seed %d@." w sz sd
                | _ -> ());
                print_error err;
                print_geometry geo;
                Option.iter print_fault_plan (J.member "fault_plan" j);
                Option.iter (print_flight last) (J.member "flight" j);
                (match (J.member "first_heartbeat" j, J.member "metrics" j)
                 with
                | Some first, Some final -> print_deltas ~first ~final
                | _ -> ());
                (match J.member "trace" j with
                | Some tr ->
                    Fmt.pr
                      "trace:    %d events buffered, %d dropped (capacity \
                       %d)@."
                      (num "buffered" tr) (num "dropped" tr)
                      (num "capacity" tr)
                | None -> ());
                0))
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Pretty-print a crash bundle written by $(b,taint --crash-dump): \
          the error chain, runtime geometry, fault plan, each domain's \
          last flight-recorder events and the metric movement since the \
          run's first heartbeat.  Exits 1 if the bundle is malformed.")
    Term.(const run $ bundle_arg $ last_arg)

(* -- stats ------------------------------------------------------------------- *)

let stats_cmd =
  let workload_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "workload" ] ~docv:"KERNEL"
          ~doc:"Kernel to run fully instrumented.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~doc:"Forwarding-ring capacity, in batches.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch-size" ] ~doc:"Events per forwarded batch.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the snapshot (\"-\" means stdout).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("json", `Json); ("prometheus", `Prometheus) ]) `Json
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Snapshot encoding: $(b,json) (the structured snapshot) or \
             $(b,prometheus) (text exposition format, one metric per \
             line, ready for a scrape endpoint).")
  in
  let run name size seed queue_capacity batch_size out format =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok _ when queue_capacity < 1 || batch_size < 1 ->
        Fmt.epr "--queue-capacity and --batch-size must be at least 1@.";
        1
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        let config = { Machine.default_config with seed } in
        let reg = Dift_obs.Registry.create () in
        (* Phase 1: the two-domain runtime fills [vm.*],
           [core.engine.*], [core.shadow.*] and [parallel.*]. *)
        ignore
          (Dift_parallel.Parallel.run ~config ~obs:reg ~queue_capacity
             ~batch_size w.Workload.program ~input);
        (* Phase 2: an ONTRAC pass over the same deterministic
           execution fills [core.ontrac.*] and [core.trace_buffer.*]
           (no [Obs_tool] here, so the vm counters are not doubled). *)
        let m = Machine.create ~config w.Workload.program ~input in
        let tracer = Ontrac.create w.Workload.program in
        Ontrac.attach tracer m;
        ignore (Machine.run m);
        Ontrac.register_obs tracer reg;
        (match format with
        | `Json -> Dift_obs.Registry.(write_json out (snapshot reg))
        | `Prometheus ->
            Dift_obs.Registry.(write_prometheus out (snapshot reg)));
        0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a kernel under the full observability stack (two-domain \
          taint run plus an ONTRAC pass) and print the metrics snapshot \
          as JSON or Prometheus text.")
    Term.(
      const run $ workload_arg $ size_arg $ seed_arg $ queue_arg $ batch_arg
      $ out_arg $ format_arg)

(* -- slice ------------------------------------------------------------------- *)

let slice_cmd =
  let run name size seed =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        let m = Machine.create w.Workload.program ~input in
        let tracer = Ontrac.create w.Workload.program in
        Ontrac.attach tracer m;
        ignore (Machine.run m);
        let g, ws = Ontrac.final_graph tracer in
        (match Slicing.last_output g with
        | None ->
            Fmt.pr "no output to slice from@.";
            1
        | Some out ->
            let s = Slicing.backward ~window_start:ws g ~criterion:[ out ] in
            Fmt.pr "%a@." Slicing.pp s;
            Fmt.pr "sites:@.";
            List.iter
              (fun (f, pc) -> Fmt.pr "  %s:%d@." f pc)
              (Slicing.sites s);
            0)
  in
  Cmd.v
    (Cmd.info "slice" ~doc:"Backward dynamic slice from the last output.")
    Term.(const run $ name_arg "KERNEL" $ size_arg $ seed_arg)

(* -- attack ------------------------------------------------------------------- *)

let attack_cmd =
  let run name =
    match
      List.find_opt
        (fun (c : Vulnerable.case) -> c.Vulnerable.name = name)
        Vulnerable.all
    with
    | None ->
        Fmt.epr "unknown attack case %s@." name;
        1
    | Some c ->
        let row = Dift_attack.Detector.evaluate c in
        Fmt.pr "%a@." Dift_attack.Detector.pp_eval row;
        0
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Evaluate the detector on a vulnerable case.")
    Term.(const run $ name_arg "CASE")

(* -- lineage ----------------------------------------------------------------- *)

let lineage_cmd =
  let robdd_arg =
    Arg.(value & flag & info [ "robdd" ] ~doc:"Use the roBDD representation.")
  in
  let run name size seed robdd =
    match
      List.find_opt
        (fun (p : Scientific.pipeline) -> p.Scientific.name = name)
        Scientific.all
    with
    | None ->
        Fmt.epr "unknown pipeline %s@." name;
        1
    | Some pl ->
        let r =
          if robdd then Dift_lineage.Tracer.run_robdd pl ~size ~seed
          else Dift_lineage.Tracer.run_naive pl ~size ~seed
        in
        List.iter
          (fun (v, lineage) ->
            Fmt.pr "output %d <- inputs {%a}@." v
              Fmt.(list ~sep:comma int)
              lineage)
          r.Dift_lineage.Tracer.outputs;
        Fmt.pr "slowdown: %.1fx, memory overhead: %.0f%%@."
          (Dift_lineage.Tracer.slowdown r)
          (100. *. Dift_lineage.Tracer.memory_overhead r);
        0
  in
  Cmd.v (Cmd.info "lineage" ~doc:"Trace lineage through a pipeline.")
    Term.(const run $ name_arg "PIPELINE" $ size_arg $ seed_arg $ robdd_arg)

(* -- profile ------------------------------------------------------------------ *)

let profile_cmd =
  let run name size seed =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok w ->
        let input = w.Workload.input ~size ~seed in
        let m = Machine.create w.Workload.program ~input in
        let prof = Adaptive.create w.Workload.program in
        Adaptive.attach prof m;
        ignore (Machine.run m);
        let suggestions = Adaptive.suggestions prof in
        Fmt.pr "%d events profiled, %d suggestion(s):@."
          (Adaptive.events prof)
          (List.length suggestions);
        List.iter
          (fun sg -> Fmt.pr "  %a@." Adaptive.pp_suggestion sg)
          suggestions;
        0
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile a kernel for adaptive-optimization opportunities.")
    Term.(const run $ name_arg "KERNEL" $ size_arg $ seed_arg)

(* -- reduce ------------------------------------------------------------------- *)

let reduce_cmd =
  let requests_arg =
    Arg.(value & opt int 120 & info [ "requests" ] ~doc:"Request count.")
  in
  let run requests seed =
    let p = Dift_workloads.Server_sim.program () in
    let batch =
      Dift_workloads.Server_sim.generate ~requests ~seed ~faulty:true ()
    in
    let config = { Machine.default_config with seed } in
    let report =
      Dift_replay.Rerun.run ~config
        ~checkpoint_every:(max 2_000 (requests * 15))
        p ~input:batch.Dift_workloads.Server_sim.input
    in
    Fmt.pr "%a@." Dift_replay.Rerun.pp_report report;
    0
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Run the execution-reduction pipeline on the failing server.")
    Term.(const run $ requests_arg $ seed_arg)

(* -- avoid -------------------------------------------------------------------- *)

let avoid_cmd =
  let run name =
    let open Dift_avoidance in
    let report =
      match name with
      | "heap-overflow" ->
          let c = Dift_workloads.Vulnerable.heap_overflow in
          let config = { Machine.default_config with check_bounds = true } in
          Some
            (Framework.avoid ~config c.Dift_workloads.Vulnerable.program
               ~input:c.Dift_workloads.Vulnerable.attack_input)
      | "malformed-request" ->
          let p = Dift_workloads.Server_sim.program () in
          let batch =
            Dift_workloads.Server_sim.generate ~requests:60 ~seed:11
              ~faulty:true ()
          in
          Some
            (Framework.avoid p
               ~input:batch.Dift_workloads.Server_sim.input
               ~request_input_index:(fun r -> 1 + (3 * r)))
      | _ -> None
    in
    match report with
    | None ->
        Fmt.epr
          "unknown scenario %s (try heap-overflow, malformed-request)@."
          name;
        1
    | Some r ->
        (match r.Framework.original_fault with
        | Some f -> Fmt.pr "fault: %a@." Event.pp_fault f
        | None -> Fmt.pr "no fault@.");
        List.iter
          (fun (a : Framework.attempt) ->
            Fmt.pr "tried: %s -> %s@."
              (Env_patch.to_string a.Framework.patch)
              (if a.Framework.avoided then "avoided" else "still fails"))
          r.Framework.attempts;
        (match r.Framework.patch_file with
        | Some line -> Fmt.pr "patch file: %s@." line
        | None -> ());
        Fmt.pr "future runs pass: %b@." r.Framework.rerun_ok;
        0
  in
  Cmd.v
    (Cmd.info "avoid"
       ~doc:"Capture an environment fault and search for a patch.")
    Term.(const run $ name_arg "SCENARIO")

(* -- dump --------------------------------------------------------------------- *)

let dump_cmd =
  let run name =
    match find_workload name with
    | Error e ->
        Fmt.epr "%s@." e;
        1
    | Ok w ->
        Fmt.pr "%a@." Dift_isa.Program.pp w.Workload.program;
        List.iter
          (fun f ->
            let cfg = Dift_isa.Cfg.build f in
            Fmt.pr "%a@." Dift_isa.Cfg.pp cfg)
          (Dift_isa.Program.functions w.Workload.program);
        0
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Disassemble a kernel and print its CFGs.")
    Term.(const run $ name_arg "KERNEL")

let main =
  let doc = "dynamic information flow tracking playground" in
  Cmd.group (Cmd.info "diftc" ~doc)
    [ list_cmd; run_cmd; trace_cmd; taint_cmd; inspect_cmd; stats_cmd;
      slice_cmd; attack_cmd; lineage_cmd; profile_cmd; reduce_cmd;
      avoid_cmd; dump_cmd ]

let () = exit (Cmd.eval' main)
