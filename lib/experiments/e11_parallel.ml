(** E11 — the real two-domain DIFT runtime (paper §2.1, "Exploiting
    multicores"), measured in wall clock.

    E3 reproduces the paper's claim inside the cycle model; this
    experiment runs the same decoupled architecture for real: the
    application on the calling OCaml domain, taint propagation on a
    helper domain, connected by the bounded batched forwarding channel
    of {!Dift_parallel.Forwarder}.  The sweep varies the two channel
    parameters — ring capacity (in batches) and batch size (events per
    batch) — and reports, per shape, the application-domain time, the
    total time until the helper joins, and the backpressure stalls.

    The shape to look for: batching amortises channel synchronisation
    (batch 1 is the degenerate, chatty channel), and once the ring is
    deep enough to absorb the helper's lag, stalls vanish and the
    application domain runs well below the inline-DIFT time — the
    wall-clock edition of the paper's "main-core overhead" story. *)

open Dift_workloads
open Dift_parallel

type row = {
  queue_capacity : int;
  batch_size : int;
  main_ms : float;  (** application-domain wall time *)
  total_ms : float;  (** until the helper joined *)
  stalls : int;  (** producer blocks on a full ring *)
  speedup : float;  (** inline time / total time *)
  main_ratio : float;  (** main time / inline time *)
}

type result = {
  kernel : string;
  native_ms : float;  (** uninstrumented run *)
  inline_ms : float;  (** sequential engine, same domain *)
  rows : row list;
}

let ms ns = float_of_int ns /. 1e6

(* Wall-clock numbers are noisy; keep the best of [reps] runs, which
   is the standard way to estimate the cost floor. *)
let best f reps =
  List.fold_left min max_float (List.init (max 1 reps) (fun _ -> f ()))

let shapes =
  [ (4, 64); (64, 64); (1024, 64); (64, 1); (64, 256) ]

let run ?(size = 40) ?(seed = 3) ?(reps = 3) () =
  let w = Spec_like.crc in
  let input = w.Workload.input ~size ~seed in
  let program = w.Workload.program in
  let native_ms =
    best (fun () -> ms (Parallel.native_wall_ns program ~input)) reps
  in
  let inline =
    best
      (fun () -> ms (Parallel.run_inline program ~input).Parallel.i_wall_ns)
      reps
  in
  let rows =
    List.map
      (fun (queue_capacity, batch_size) ->
        let reports =
          List.init (max 1 reps) (fun _ ->
              Parallel.run ~queue_capacity ~batch_size program ~input)
        in
        let pick f =
          List.fold_left (fun acc r -> min acc (f r)) max_float reports
        in
        let main_ms = pick (fun r -> ms r.Parallel.main_wall_ns) in
        let total_ms = pick (fun r -> ms r.Parallel.total_wall_ns) in
        let stalls =
          List.fold_left
            (fun acc r -> min acc r.Parallel.producer_stalls)
            max_int reports
        in
        {
          queue_capacity;
          batch_size;
          main_ms;
          total_ms;
          stalls;
          speedup = inline /. total_ms;
          main_ratio = main_ms /. inline;
        })
      shapes
  in
  { kernel = w.Workload.name; native_ms; inline_ms = inline; rows }

let table r =
  Table.make
    ~title:"E11: real two-domain DIFT (wall clock, OCaml 5 Domains)"
    ~paper_claim:
      "offloading tracking to a helper core frees the application core \
       (§2.1)"
    ~header:
      [
        "queue (batches)"; "batch (events)"; "main ms"; "total ms";
        "stalls"; "speedup vs inline"; "main / inline";
      ]
    ~notes:
      [
        Fmt.str "kernel %s: native %.2f ms, inline DIFT %.2f ms" r.kernel
          r.native_ms r.inline_ms;
        "speedup = inline / total; main / inline < 1 means the \
         application domain finished faster than inline DIFT";
      ]
    (List.map
       (fun row ->
         [
           Table.i row.queue_capacity;
           Table.i row.batch_size;
           Table.f2 row.main_ms;
           Table.f2 row.total_ms;
           Table.i row.stalls;
           Table.f2 row.speedup;
           Table.f2 row.main_ratio;
         ])
       r.rows)
