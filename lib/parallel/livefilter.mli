(** Producer-side taint-liveness filter (opt-in, [--forward-filter]):
    the application core drops events whose locations provably cannot
    intersect live taint and cannot introduce any, shrinking forwarded
    traffic on taint-sparse workloads without changing any analysis
    result.

    {b Protocol.}  Three shared arrays, all fixed-size, touched with
    plain loads/stores on the single-writer side and seq_cst atomics
    across domains:

    - [H] — a monotone {e ever-tainted} page-hash bitmap.  After
      processing an event, the consumer publishes a bit for every
      write location whose shadow is tainted (check-then-CAS-OR; bits
      are never cleared).
    - [stamps] — producer-private, per hash word: the step of the last
      forwarded event that may {e produce} taint hashing there (a
      source, or any event with live reads).
    - [epochs] — one slot per consumer: the step of the last event it
      has fully processed {e and published}, advanced after each
      decoded batch ({!Codec.drain}'s [after_batch] hook).

    A location is {e possibly-live} iff its [H] bit is set, or its
    stamp exceeds the producer's cached minimum epoch.  An event is
    forwarded unless it is filterable (neither source nor sink, see
    {!Dift_vm.Site.filterable_instr}), has no possibly-live read, {e
    and} has no possibly-live write (an untainted write over a
    possibly-tainted location clears taint and must reach the
    helper).

    {b Soundness.}  Consumers publish [H] before advancing their
    epoch, and all cross-domain accesses are seq_cst, so when the
    producer sees [epoch >= s] every taint produced by events up to
    step [s] is visible in [H].  If a read's [H] bit is clear and its
    word's stamp is [<= min epoch], then every event that could have
    tainted it has been processed and produced no taint there — the
    read is definitely clean.  The cached minimum epoch is only ever
    {e behind} the true minimum (epochs are monotone), so staleness
    over-forwards, never over-filters.  Hash collisions likewise only
    over-forward.  Sources are always forwarded (and stamp their
    writes); sink-class events are always forwarded because the sink
    handler observes every one of them, tainted or not.  Control-plane
    taint escapes the read set, so the runtimes refuse to combine the
    filter with [propagate_control].

    {b Generation reset.}  [H] being monotone, a taint-dense phase
    saturates it for good: long after the taint is overwritten, every
    event still looks live and the filter earns nothing.  The producer
    therefore periodically {e resets} [H] at a quiescent point — every
    consumer's published epoch covers the last forwarded event, so no
    publish can be in flight and nothing fed is unprocessed.  It
    clears the bitmap, bumps a generation counter, and {e stands
    down}: until every consumer has republished the live taint of its
    shadow (the [?repopulate] callback of {!advance}, run at the next
    batch boundary) and acked the generation, {!admit} forwards
    everything and stamps every write.  Standdown only over-forwards
    and over-stamps, so soundness is untouched; after resume, pages
    whose taint has been overwritten are clean again.  A consumer that
    is never given [?repopulate] simply never acks and the filter
    stands down forever — sound, merely useless, so the runtimes
    always pass it when filtering is on.

    Filtered-vs-unfiltered runs are bit-identical in every analysis
    output; only the forwarded event count differs (reports add
    {!filtered} back so ledgers still reconcile). *)

open Dift_vm

type t

(** [create ~slots ()] — [slots] consumer epoch slots (1 for the
    two-domain runtime, one per shard for the sharded one).  [words]
    (power of two, default 1024) sizes the hash map; [page_bits]
    (default 6) sets the locations-per-page granularity.
    [reset_interval] (default 8192) is the number of {!admit} calls
    between generation-reset attempts; [0] disables resets (the
    pre-reset monotone behaviour).
    @raise Invalid_argument if [slots < 1], [reset_interval < 0], or
    [words] is not a positive power of two. *)
val create :
  ?page_bits:int -> ?words:int -> ?reset_interval:int -> slots:int -> unit -> t

(** {1 Producer side} *)

(** [admit t e] decides whether to forward [e], updating stamps and
    the filtered count (site class from {!Dift_vm.Site.filterable_instr}). *)
val admit : t -> Event.exec -> bool

(** Events dropped so far (producer-side counter). *)
val filtered : t -> int

(** Completed bitmap clears so far (producer-side counter). *)
val resets : t -> int

(** Whether the filter is currently standing down (bitmap cleared,
    waiting for every slot's repopulation ack).  Producer side. *)
val reset_pending : t -> bool

(** The current generation (atomic; readable from any domain).  Starts
    at [0]; bumped once per reset. *)
val generation : t -> int

(** {1 Consumer side} *)

(** Publish the ever-tainted bit of each of [v]'s write locations
    whose shadow is tainted ([tainted] is the consumer engine's shadow
    lookup).  Call after processing [v]. *)
val publish : t -> tainted:(Loc.t -> bool) -> Event.view -> unit

(** Publish one location's ever-tainted bit directly — the building
    block for a generation-reset repopulation dump (fold the shadow,
    publish every tainted location). *)
val publish_loc : t -> Loc.t -> unit

(** Advance consumer [slot]'s epoch to [step] (monotone; call after
    {!publish} for every event of the batch ending at [step]).

    [?repopulate], when given, serves the generation-reset protocol:
    if a reset has happened since this slot last acked, the callback
    must publish ({!publish} or equivalent) {e every} location
    currently tainted in this consumer's shadow; the slot then acks
    the generation.  It runs at most once per reset and only at this
    batch boundary, so the dump sees a consistent shadow. *)
val advance : ?repopulate:(unit -> unit) -> t -> slot:int -> step:int -> unit
