module Json = Dift_obs.Json

let schema = "dift-crash-bundle/1"

type geometry = {
  g_runtime : string;
  g_shards : int;
  g_queue_capacity : int;
  g_batch_size : int;
  g_xchg_capacity : int option;
  g_wire : Channel.wire;
  g_forward_filter : bool;
  g_deadline : string option;
  g_degrade : bool;
}

let geometry_json g =
  Json.obj
    ([
       ("runtime", Json.String g.g_runtime);
       ("shards", Json.Int g.g_shards);
       ("queue_capacity", Json.Int g.g_queue_capacity);
       ("batch_size", Json.Int g.g_batch_size);
       ("wire", Json.String (Fmt.str "%a" Channel.pp_wire g.g_wire));
       ("forward_filter", Json.Bool g.g_forward_filter);
       ("degrade", Json.Bool g.g_degrade);
     ]
    @ (match g.g_deadline with
      | None -> []
      | Some d -> [ ("deadline_ms", Json.String d) ])
    @
    match g.g_xchg_capacity with
    | None -> []
    | Some c -> [ ("xchg_capacity", Json.Int c) ])

let leg_to_string : Parallel.leg -> string = function
  | `App -> "app"
  | `Helper -> "helper"
  | `Shard s -> Printf.sprintf "shard-%d" s
  | `Spawn -> "spawn"
  | `Deadline -> "deadline"

let error_json (e : Parallel.error) =
  let p = e.e_partial in
  Json.obj
    ([
       ("leg", Json.String (leg_to_string e.e_leg));
       ("exn", Json.String (Printexc.to_string e.e_exn));
       ( "secondary",
         Json.List
           (List.map
              (fun x -> Json.String (Printexc.to_string x))
              e.e_secondary) );
       ( "partial",
         Json.obj
           [
             ("events", Json.Int p.p_events);
             ("batches", Json.Int p.p_batches);
             ("dropped_batches", Json.Int p.p_dropped_batches);
             ("dropped_events", Json.Int p.p_dropped_events);
             ("wall_ns", Json.Int p.p_wall_ns);
           ] );
     ]
    @
    (* a deadline miss carries the stalled-seam portrait: surface it
       structurally so [inspect] can render it without re-parsing the
       exception string *)
    match e.e_exn with
    | Watchdog.Deadline_exceeded m ->
        [
          ( "deadline",
            Json.obj
              [
                ("seam", Json.String m.Watchdog.m_seam);
                ("epoch", Json.Int m.Watchdog.m_epoch);
                ("blocked_ns", Json.Int m.Watchdog.m_blocked_ns);
                ("deadline_ns", Json.Int m.Watchdog.m_deadline_ns);
                ( "armed",
                  Json.List
                    (List.map
                       (fun (seam, ep) ->
                         Json.obj
                           [
                             ("seam", Json.String seam);
                             ("epoch", Json.Int ep);
                           ])
                       m.Watchdog.m_armed) );
              ] );
        ]
    | _ -> [])

let bundle ?obs ?flight ?chaos ?trace ?first_heartbeat ?(extra = []) ~error
    geometry =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.obj
    ([ ("schema", Json.String schema) ]
    @ [ ("error", error_json error); ("geometry", geometry_json geometry) ]
    @ opt "fault_plan"
        (fun c ->
          Json.obj
            [
              ("plan", Json.String (Chaos.plan_to_string (Chaos.plan c)));
              ("fired", Json.Int (Chaos.fired c));
            ])
        chaos
    @ opt "metrics"
        (fun reg -> Dift_obs.Registry.(to_json (snapshot reg)))
        obs
    @ opt "first_heartbeat" Fun.id first_heartbeat
    @ opt "trace"
        (fun tr ->
          Json.obj
            [
              ("buffered", Json.Int (Dift_obs.Trace.buffered tr));
              ("dropped", Json.Int (Dift_obs.Trace.dropped tr));
              ("capacity", Json.Int (Dift_obs.Trace.capacity tr));
            ])
        trace
    @ opt "flight" Dift_obs.Flight.to_json flight
    @ extra)

let write ~file j =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string j);
      flush oc);
  Sys.rename tmp file
