(** The real two-domain DIFT runtime (paper §2.1); see the interface
    for the architecture and [docs/forwarding-protocol.md] for the
    channel protocol. *)

open Dift_vm
open Dift_core

module Bool_engine = Engine.Make (Taint.Bool)

type result = {
  outcome : Event.outcome;
  events : int;
  sources : int;
  sink_hits : int;
  sink_trace_hash : int;
  tainted_locations : int;
  shadow_words : int;
  taint_fingerprint : int;
}

(* -- supervised outcomes ----------------------------------------------- *)

type leg = [ `App | `Helper | `Shard of int | `Spawn | `Deadline ]

type partial = {
  p_events : int;
  p_batches : int;
  p_dropped_batches : int;
  p_dropped_events : int;
  p_wall_ns : int;
}

type error = {
  e_leg : leg;
  e_exn : exn;
  e_secondary : exn list;
  e_partial : partial;
}

type degraded = {
  d_leg : leg;
  d_exn : exn;
  d_cutoff_step : int;
  d_replayed_events : int;
}

type report = {
  result : result;
  queue_capacity : int;
  batch_size : int;
  wire : Channel.wire;
  filtered_events : int;
      (** events the producer-side liveness filter dropped (0 with the
          filter off); [result.events] already adds them back *)
  batches : int;
  dropped_batches : int;
  dropped_events : int;
  producer_stalls : int;
  consumer_waits : int;
  main_wall_ns : int;
  total_wall_ns : int;
  degraded : degraded option;
}

type inline_report = {
  i_result : result;
  i_wall_ns : int;
}

let pp_leg ppf = function
  | `App -> Fmt.string ppf "application"
  | `Helper -> Fmt.string ppf "helper"
  | `Shard s -> Fmt.pf ppf "shard %d" s
  | `Spawn -> Fmt.string ppf "spawn"
  | `Deadline -> Fmt.string ppf "deadline"

let pp_error ppf e =
  Fmt.pf ppf
    "%a leg failed: %s%s; partial: %d events fed, %d batches delivered, \
     %d batches / %d events dropped, %.2f ms"
    pp_leg e.e_leg
    (Printexc.to_string e.e_exn)
    (match e.e_secondary with
    | [] -> ""
    | l -> Fmt.str " (+%d secondary)" (List.length l))
    e.e_partial.p_events e.e_partial.p_batches e.e_partial.p_dropped_batches
    e.e_partial.p_dropped_events
    (float_of_int e.e_partial.p_wall_ns /. 1e6)

(* Monotonic (see {!Dift_obs.Clock}): wall intervals must never go
   negative even if the system clock steps mid-run. *)
let now_ns = Dift_obs.Clock.now_ns

(* Order-sensitive accumulation: h' = hash (h, observation). *)
let mix h obs = Hashtbl.hash (h, obs)

let taint_fingerprint eng =
  let sh = Bool_engine.shadow eng in
  Bool_engine.Sh.fold (fun loc d acc -> (loc, d) :: acc) sh []
  |> List.sort compare |> Hashtbl.hash

(* Shared between the inline and the parallel paths: an engine whose
   sink observations feed the trace hash (and the client callback),
   with modelled-cycle charging disabled — this runtime measures wall
   clock, not the cycle model. *)
let make_engine ?policy ?on_sink program =
  let eng = Bool_engine.create ?policy program in
  Bool_engine.set_charge eng ignore;
  let trace = ref 0 in
  Bool_engine.on_sink eng (fun sink taint e ->
      trace := mix !trace (Engine.sink_to_string sink, taint, e.Event.step);
      match on_sink with Some f -> f sink taint e | None -> ());
  (eng, trace)

let result_of eng trace outcome =
  let s = Bool_engine.stats eng in
  let tainted_locations, shadow_words = Bool_engine.shadow_footprint eng in
  {
    outcome;
    events = s.Engine.events;
    sources = s.Engine.sources;
    sink_hits = s.Engine.sink_hits;
    sink_trace_hash = !trace;
    tainted_locations;
    shadow_words;
    taint_fingerprint = taint_fingerprint eng;
  }

(* Channel geometry below 1 would loop in batch fill / ring indexing
   arithmetic; reject it up front with a caller-level message. *)
let validate_geometry fn ~queue_capacity ~batch_size =
  if queue_capacity < 1 then
    invalid_arg
      (Fmt.str "Parallel.%s: queue_capacity = %d < 1" fn queue_capacity);
  if batch_size < 1 then
    invalid_arg (Fmt.str "Parallel.%s: batch_size = %d < 1" fn batch_size)

(* One bounded flight event (category [run]) on the calling domain's
   ring; a no-op when the recorder is off. *)
let flight_ev flight ?a ?b ?detail name =
  match flight with
  | None -> ()
  | Some fl -> Dift_obs.Flight.record fl ?a ?b ?detail ~cat:"run" name

let flight_name flight name =
  match flight with
  | None -> ()
  | Some fl -> Dift_obs.Flight.name_domain fl name

let leg_to_string = function
  | `App -> "app"
  | `Helper -> "helper"
  | `Shard s -> Fmt.str "shard-%d" s
  | `Spawn -> "spawn"
  | `Deadline -> "deadline"

let pp_degraded ppf d =
  Fmt.pf ppf
    "degraded: %a leg failed (%s); inline completion replayed %d events \
     after step %d"
    pp_leg d.d_leg
    (Printexc.to_string d.d_exn)
    d.d_replayed_events d.d_cutoff_step

(* Chaos [Spawn] interception, shared by both runtimes' supervisors:
   any non-Proceed action models [Domain.spawn] itself failing. *)
let chaos_spawn chaos body =
  (match chaos with
  | None -> ()
  | Some c -> (
      match Chaos.on_spawn c with
      | Chaos.Proceed -> ()
      | Chaos.Raise_now e -> raise e
      | Chaos.Fail | Chaos.Abort_now ->
          raise (Chaos.Injected "injected spawn failure, helper")));
  Domain.spawn body

(* Watchdog progress-leg helpers: [arm_leg]/[disarm_leg] publish the
   spawn window (armed from just before [Domain.spawn] until the body's
   first instruction), [with_leg] brackets a join. *)
let arm_leg = function
  | Some l -> Dift_obs.Progress.enter l
  | None -> ()

let disarm_leg = function
  | Some l -> Dift_obs.Progress.leave l
  | None -> ()

let with_leg leg f =
  match leg with
  | None -> f ()
  | Some l ->
      Dift_obs.Progress.enter l;
      Fun.protect ~finally:(fun () -> Dift_obs.Progress.leave l) f

let run_result ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade
    ?(queue_capacity = 64) ?(batch_size = 64) ?(wire = `Coded)
    ?(forward_filter = false) ?policy ?on_sink program ~input =
  validate_geometry "run" ~queue_capacity ~batch_size;
  let progress = Option.map Watchdog.progress watchdog in
  let fwd =
    Channel.create ?obs ?trace ?flight ?chaos ?progress ~wire ~queue_capacity
      ~batch_size
      ~table:(lazy (Site.of_program program))
      ()
  in
  (* one idempotent cascade hook: a deadline miss aborts the channel,
     unparking both domains (the same abort every crash path runs) *)
  (match watchdog with
  | Some w -> Watchdog.on_miss w ~name:"parallel" (fun () -> Channel.abort fwd)
  | None -> ());
  let spawn_leg =
    Option.map (fun p -> Dift_obs.Progress.leg p "spawn.helper") progress
  in
  let join_leg =
    Option.map (fun p -> Dift_obs.Progress.leg p "join.helper") progress
  in
  (* degraded-mode cutoff: step of the last event of the last batch the
     helper fully processed.  Written by the helper, read by the
     application domain strictly after the join (the happens-before
     edge), so a plain ref suffices. *)
  let cutoff = ref (-1) in
  (* the filter is sound only when taint flows through the event's
     read set; control-plane taint escapes it, so the filter silently
     stands down under propagate_control *)
  let lf =
    let p = Option.value policy ~default:Policy.default in
    if forward_filter && not p.Policy.propagate_control then
      Some (Livefilter.create ~slots:1 ())
    else None
  in
  let eng, sink_trace = make_engine ?policy ?on_sink program in
  (* Timeline: the engine samples its shadow footprint from whichever
     domain processes events — the helper track, here. *)
  (match trace with Some tr -> Bool_engine.set_trace eng tr | None -> ());
  (* Flight recorder: engine milestones land on the helper's ring. *)
  (match flight with
  | Some fl -> Bool_engine.set_flight eng fl
  | None -> ());
  (* Observability: engine gauges plus helper-domain utilization —
     busy time is measured around whole batches (one clock read per
     batch, not per event) and compared to the helper's wall time at
     snapshot.  The same per-batch measurement feeds the
     [parallel.helper.batch] span, whose snapshot carries the batch
     count and mean latency. *)
  let around_batch =
    match obs with
    | None -> fun k -> k ()
    | Some reg ->
        let open Dift_obs in
        Bool_engine.register_obs eng reg;
        let busy =
          Registry.counter reg "parallel.helper.busy_ns"
            ~help:"helper time spent processing batches"
        in
        let wall =
          Registry.counter reg "parallel.helper.wall_ns"
            ~help:"helper wall time, spawn to drain end"
        in
        let batch_span =
          Registry.span reg "parallel.helper.batch"
            ~help:"per-batch propagation latency"
        in
        Registry.gauge_fn reg "parallel.helper.utilization_pct"
          ~help:"busy / wall, percent" (fun () ->
            Registry.value busy * 100 / max 1 (Registry.value wall));
        fun k ->
          let t0 = now_ns () in
          k ();
          let dt = now_ns () - t0 in
          Registry.add busy dt;
          Registry.record_ns batch_span dt
  in
  (* Timeline: each batch the helper propagates is an [engine.batch]
     span on the helper track — §2.1's "tracking proceeds elsewhere"
     as visible duration blocks interleaving with the app track. *)
  let around_batch =
    match trace with
    | None -> around_batch
    | Some tr ->
        fun k ->
          Dift_obs.Trace.span tr ~cat:"core" "engine.batch" (fun () ->
              around_batch k)
  in
  let helper_wall =
    Option.map
      (fun reg -> Dift_obs.Registry.counter reg "parallel.helper.wall_ns")
      obs
  in
  let helper_body () =
    (* the spawn-to-first-progress window is over *)
    disarm_leg spawn_leg;
    (match trace with
    | Some tr -> Dift_obs.Trace.name_track tr "helper"
    | None -> ());
    flight_name flight "helper";
    flight_ev flight "helper.start";
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        match helper_wall with
        | Some wall -> Dift_obs.Registry.add wall (now_ns () - t0)
        | None -> ())
    @@ fun () ->
    let f, after_batch =
      match lf with
      | None -> ((fun v -> Bool_engine.process_view eng v), None)
      | Some l ->
          (* publish taint per event (after processing), advance the
             epoch per batch: the exact order the filter's soundness
             argument relies on *)
          let sh = Bool_engine.shadow eng in
          let tainted loc =
            not (Taint.Bool.is_bottom (Bool_engine.Sh.get sh loc))
          in
          (* generation reset: republish all live taint from the
             helper's shadow before acking the new generation *)
          let repopulate () =
            Bool_engine.Sh.fold
              (fun loc d () ->
                if not (Taint.Bool.is_bottom d) then
                  Livefilter.publish_loc l loc)
              sh ()
          in
          ( (fun v ->
              Bool_engine.process_view eng v;
              Livefilter.publish l ~tainted v),
            Some
              (fun ~last_step ->
                Livefilter.advance ~repopulate l ~slot:0 ~step:last_step) )
    in
    (* degraded mode resumes strictly after the last fully-processed
       batch, so the cutoff only ever advances at batch boundaries *)
    let after_batch =
      match degrade with
      | None -> after_batch
      | Some `Inline ->
          Some
            (fun ~last_step ->
              cutoff := last_step;
              match after_batch with
              | Some g -> g ~last_step
              | None -> ())
    in
    let drain () = Channel.drain ~around_batch ?after_batch fwd ~f in
    try
      match trace with
      | Some tr ->
          Dift_obs.Trace.span tr ~cat:"parallel" "helper.drain" drain
      | None -> drain ()
    with ex ->
      (* never leave the application domain blocked on a full ring *)
      Channel.abort fwd;
      raise ex
  in
  let t_start = now_ns () in
  let partial () =
    {
      p_events = Channel.events fwd;
      p_batches = Channel.batches fwd;
      p_dropped_batches = Channel.dropped_batches fwd;
      p_dropped_events = Channel.dropped_events fwd;
      p_wall_ns = now_ns () - t_start;
    }
  in
  (* Close the channel for good even when the trailing flush takes an
     injected failure: the raising flush already detached its batch,
     so the retry is a quiet no-op flush + ring close.  The helper can
     therefore always terminate. *)
  let close_fwd () =
    match Channel.close fwd with
    | () -> None
    | exception ex ->
        (try Channel.close fwd with _ -> Channel.abort fwd);
        Some ex
  in
  flight_name flight "app";
  flight_ev flight "run.start" ~a:queue_capacity ~b:batch_size
    ~detail:"two-domain";
  let errored e =
    flight_ev flight "run.error" ~detail:(leg_to_string e.e_leg);
    Error e
  in
  let wd_fired () =
    match watchdog with Some w -> Watchdog.fired w | None -> None
  in
  (* A post-cascade run can die of a downstream abort exception — or
     even complete looking ordinary.  The deadline miss is the root
     cause, so it takes over as the primary error; whatever the legs
     died of becomes secondary. *)
  let wd_override e =
    match wd_fired () with
    | None -> e
    | Some m ->
        {
          e_leg = `Deadline;
          e_exn = Watchdog.Deadline_exceeded m;
          e_secondary = e.e_exn :: e.e_secondary;
          e_partial = e.e_partial;
        }
  in
  let mk_report ~filtered ~degraded result ~main_wall_ns ~total_wall_ns =
    {
      result;
      queue_capacity;
      batch_size;
      wire;
      filtered_events = filtered;
      batches = Channel.batches fwd;
      dropped_batches = Channel.dropped_batches fwd;
      dropped_events = Channel.dropped_events fwd;
      producer_stalls = Channel.producer_stalls fwd;
      consumer_waits = Channel.consumer_waits fwd;
      main_wall_ns;
      total_wall_ns;
      degraded;
    }
  in
  (* Degraded-mode inline completion: when a non-application leg fails
     (helper crash, spawn failure, deadline miss), re-execute the
     deterministic machine, counting every event but processing only
     those strictly past the cutoff through the retained engine — the
     events at or below it were fully processed by the helper exactly
     once, so the merged result is bit-identical to a pure inline run.
     Application-leg failures are excluded: the app's own crash would
     simply recur in the replay (as does a client [on_sink] exception,
     which aborts the replay and restores the original error). *)
  let conclude_err e =
    match degrade with
    | Some `Inline when e.e_leg <> `App -> (
        let cut = !cutoff in
        flight_ev flight "run.degrade" ~a:cut ~detail:(leg_to_string e.e_leg);
        let total = ref 0 and replayed = ref 0 in
        let replay () =
          let m = Machine.create ?config program ~input in
          Machine.attach m
            (Tool.make ~dispatch_cost:0
               ~on_exec:(fun ev ->
                 incr total;
                 if ev.Event.step > cut then begin
                   incr replayed;
                   Bool_engine.process eng ev
                 end)
               "degraded-inline-dift");
          Machine.run m
        in
        match replay () with
        | exception rx -> errored { e with e_secondary = e.e_secondary @ [ rx ] }
        | outcome ->
            (* the engine processed the admitted events up to the
               cutoff (helper-side) plus everything past it (replay);
               the report counts whole-program events, as inline does *)
            let result =
              let r = result_of eng sink_trace outcome in
              { r with events = !total }
            in
            flight_ev flight "run.done" ~a:!total ~b:!replayed;
            let wall = now_ns () - t_start in
            Ok
              (mk_report
                 ~filtered:
                   (match lf with Some l -> Livefilter.filtered l | None -> 0)
                 ~degraded:
                   (Some
                      {
                        d_leg = e.e_leg;
                        d_exn = e.e_exn;
                        d_cutoff_step = cut;
                        d_replayed_events = !replayed;
                      })
                 result ~main_wall_ns:wall ~total_wall_ns:wall))
    | _ -> errored e
  in
  let finish_err e = conclude_err (wd_override e) in
  arm_leg spawn_leg;
  match chaos_spawn chaos helper_body with
  | exception ex ->
      (* the body never ran, so it cannot disarm the leg *)
      disarm_leg spawn_leg;
      finish_err
        { e_leg = `Spawn; e_exn = ex; e_secondary = []; e_partial = partial () }
  | helper -> (
      let m = Machine.create ?config program ~input in
      (match obs with Some reg -> Obs_tool.attach reg m | None -> ());
      (match trace with
      | Some tr -> Dift_obs.Trace.name_track tr "app"
      | None -> ());
      let on_exec =
        match lf with
        | None -> fun e -> Channel.add fwd e
        | Some l -> fun e -> if Livefilter.admit l e then Channel.add fwd e
      in
      Machine.attach m
        (Tool.make ~dispatch_cost:0 ~on_exec "parallel-dift-forwarder");
      let t0 = now_ns () in
      let run_machine () =
        match trace with
        | Some tr ->
            Dift_obs.Trace.span tr ~cat:"vm" "app.run" (fun () ->
                Machine.run m)
        | None -> Machine.run m
      in
      let join_helper () = with_leg join_leg (fun () -> Domain.join helper) in
      let join_quiet () =
        match join_helper () with () -> [] | exception hx -> [ hx ]
      in
      match run_machine () with
      | exception ex ->
          (* shut the channel down before reporting so the helper
             exits; its own failure, if any, is secondary *)
          let close_exn = close_fwd () in
          let secondary = Option.to_list close_exn @ join_quiet () in
          finish_err
            { e_leg = `App; e_exn = ex; e_secondary = secondary;
              e_partial = partial () }
      | outcome -> (
          match close_fwd () with
          | Some ex ->
              finish_err
                { e_leg = `App; e_exn = ex; e_secondary = join_quiet ();
                  e_partial = partial () }
          | None -> (
              let main_wall_ns = now_ns () - t0 in
              match join_helper () with
              | exception hx ->
                  finish_err
                    { e_leg = `Helper; e_exn = hx; e_secondary = [];
                      e_partial = partial () }
              | () -> (
                  let total_wall_ns = now_ns () - t0 in
                  (* a cascade can leave every leg terminating cleanly:
                     the watchdog verdict outranks the ordinary one *)
                  match wd_fired () with
                  | Some m ->
                      conclude_err
                        {
                          e_leg = `Deadline;
                          e_exn = Watchdog.Deadline_exceeded m;
                          e_secondary = [];
                          e_partial = partial ();
                        }
                  | None ->
                      flight_ev flight "run.done" ~a:(Channel.events fwd)
                        ~b:(Channel.batches fwd);
                      let filtered_events =
                        match lf with
                        | Some l -> Livefilter.filtered l
                        | None -> 0
                      in
                      (* add the filtered events back so the report
                         counts whole-program events on every
                         configuration — filtered and unfiltered runs
                         stay bit-identical *)
                      let result =
                        let r = result_of eng sink_trace outcome in
                        { r with events = r.events + filtered_events }
                      in
                      Ok
                        (mk_report ~filtered:filtered_events ~degraded:None
                           result ~main_wall_ns ~total_wall_ns)))))

let run ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade ?queue_capacity
    ?batch_size ?wire ?forward_filter ?policy ?on_sink program ~input =
  match
    run_result ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade
      ?queue_capacity ?batch_size ?wire ?forward_filter ?policy ?on_sink
      program ~input
  with
  | Ok r -> r
  | Error e -> raise e.e_exn

let run_inline ?config ?obs ?trace ?flight ?policy ?on_sink program ~input =
  let eng, sink_trace = make_engine ?policy ?on_sink program in
  (match trace with
  | Some tr ->
      Dift_obs.Trace.name_track tr "app";
      Bool_engine.set_trace eng tr
  | None -> ());
  (match flight with
  | Some fl ->
      Dift_obs.Flight.name_domain fl "app";
      Bool_engine.set_flight eng fl
  | None -> ());
  let m = Machine.create ?config program ~input in
  (match obs with
  | Some reg ->
      Bool_engine.register_obs eng reg;
      Obs_tool.attach reg m
  | None -> ());
  Machine.attach m
    (Tool.make ~dispatch_cost:0 ~on_exec:(Bool_engine.process eng)
       "inline-dift");
  let t0 = now_ns () in
  let outcome =
    match trace with
    | Some tr ->
        Dift_obs.Trace.span tr ~cat:"vm" "app.run" (fun () -> Machine.run m)
    | None -> Machine.run m
  in
  let i_wall_ns = now_ns () - t0 in
  { i_result = result_of eng sink_trace outcome; i_wall_ns }

(* -- the sharded N-helper runtime ------------------------------------- *)

module Bool_shards = Shard_engine.Make (Taint.Bool)

type sharded_report = {
  s_result : result;
  s_shards : int;
  s_route : Shard_engine.route;
  s_queue_capacity : int;
  s_batch_size : int;
  s_wire : Channel.wire;
  s_filtered_events : int;
      (** events the producer-side liveness filter dropped (0 with the
          filter off); [s_result.events] already adds them back *)
  s_cross_events : int;
  s_exchange_messages : int;
  s_per_shard : Shard_engine.shard_stat array;
  s_main_wall_ns : int;
  s_total_wall_ns : int;
  s_degraded : degraded option;
}

let run_sharded_result ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade
    ?route ?(queue_capacity = 64) ?(batch_size = 64) ?xchg_capacity
    ?block_bits ?(wire = `Coded) ?(forward_filter = false) ?policy ?on_sink
    ~shards program ~input =
  if shards < 1 then
    invalid_arg (Fmt.str "Parallel.run_sharded: shards = %d < 1" shards);
  validate_geometry "run_sharded" ~queue_capacity ~batch_size;
  (* control-plane taint escapes the read set: stand down silently,
     exactly as in {!run_result} *)
  let lf =
    let p = Option.value policy ~default:Policy.default in
    if forward_filter && not p.Policy.propagate_control then
      Some (Livefilter.create ~slots:shards ())
    else None
  in
  let c =
    Bool_shards.cluster ?policy ?route ?block_bits ?obs ?trace ?flight
      ?chaos ?watchdog ~queue_capacity ~batch_size ?xchg_capacity ~wire
      ?filter:lf ~shards program
  in
  let t_start = now_ns () in
  let partial () =
    Array.fold_left
      (fun acc (s : Shard_engine.shard_stat) ->
        {
          acc with
          p_events = acc.p_events + s.Shard_engine.fed;
          p_batches = acc.p_batches + s.Shard_engine.batches;
          p_dropped_batches =
            acc.p_dropped_batches + s.Shard_engine.dropped_batches;
          p_dropped_events =
            acc.p_dropped_events + s.Shard_engine.dropped_events;
        })
      {
        p_events = 0;
        p_batches = 0;
        p_dropped_batches = 0;
        p_dropped_events = 0;
        p_wall_ns = now_ns () - t_start;
      }
      (Bool_shards.shard_stats c)
  in
  (* attribute a cluster failure to the first shard that died of its
     own exception (not of the Shard_dead cascade) *)
  let error_of_failure (f : Shard_engine.failure) =
    let primary_shard =
      match
        List.find_opt
          (fun (_, e) -> e <> Shard_engine.Shard_dead)
          f.Shard_engine.f_shards
      with
      | Some (s, _) -> Some s
      | None -> (
          match f.Shard_engine.f_shards with
          | (s, _) :: _ -> Some s
          | [] -> None)
    in
    {
      e_leg =
        (match primary_shard with Some s -> `Shard s | None -> `App);
      e_exn = f.Shard_engine.f_primary;
      e_secondary =
        List.filter_map
          (fun (s, e) ->
            if Some s = primary_shard then None else Some e)
          f.Shard_engine.f_shards;
      e_partial = partial ();
    }
  in
  flight_name flight "app";
  flight_ev flight "run.start" ~a:shards ~b:queue_capacity
    ~detail:"sharded";
  let errored e =
    flight_ev flight "run.error" ~detail:(leg_to_string e.e_leg);
    Error e
  in
  let wd_fired () =
    match watchdog with Some w -> Watchdog.fired w | None -> None
  in
  (* the deadline miss is the root cause of whatever the legs then
     died of — it takes over as the primary error (see run_result) *)
  let wd_override e =
    match wd_fired () with
    | None -> e
    | Some m ->
        {
          e_leg = `Deadline;
          e_exn = Watchdog.Deadline_exceeded m;
          e_secondary = e.e_exn :: e.e_secondary;
          e_partial = e.e_partial;
        }
  in
  (* Degraded-mode inline completion, sharded edition.  Unlike the
     two-domain runtime there is no exact resume point: a cross-shard
     event may have been half-exchanged when the cluster died, and no
     single cutoff covers N shards mid-protocol.  The replay is
     therefore a full inline rerun on a fresh engine — trivially
     bit-identical to {!run_inline} — while the partial cluster
     accounting survives in the report ([d_cutoff_step] is [-1]:
     nothing was resumed). *)
  let conclude_err e =
    match degrade with
    | Some `Inline when e.e_leg <> `App -> (
        flight_ev flight "run.degrade" ~a:(-1)
          ~detail:(leg_to_string e.e_leg);
        let replay () =
          let eng, sink_trace = make_engine ?policy ?on_sink program in
          let m = Machine.create ?config program ~input in
          Machine.attach m
            (Tool.make ~dispatch_cost:0 ~on_exec:(Bool_engine.process eng)
               "degraded-inline-dift");
          let outcome = Machine.run m in
          result_of eng sink_trace outcome
        in
        match replay () with
        | exception rx -> errored { e with e_secondary = e.e_secondary @ [ rx ] }
        | result ->
            flight_ev flight "run.done" ~a:result.events ~b:0;
            let wall = now_ns () - t_start in
            Ok
              {
                s_result = result;
                s_shards = shards;
                s_route =
                  (match route with Some r -> r | None -> `Request_reply);
                s_queue_capacity = queue_capacity;
                s_batch_size = batch_size;
                s_wire = wire;
                s_filtered_events =
                  (match lf with Some l -> Livefilter.filtered l | None -> 0);
                s_cross_events = Bool_shards.cross_events c;
                s_exchange_messages = Bool_shards.exchange_messages c;
                s_per_shard = Bool_shards.shard_stats c;
                s_main_wall_ns = wall;
                s_total_wall_ns = wall;
                s_degraded =
                  Some
                    {
                      d_leg = e.e_leg;
                      d_exn = e.e_exn;
                      d_cutoff_step = -1;
                      d_replayed_events = result.events;
                    };
              })
    | _ -> errored e
  in
  let finish_err e = conclude_err (wd_override e) in
  match Bool_shards.start c with
  | exception Shard_engine.Spawn_failure ex ->
      finish_err
        { e_leg = `Spawn; e_exn = ex; e_secondary = [];
          e_partial = partial () }
  | () -> (
      let m = Machine.create ?config program ~input in
      (match obs with Some reg -> Obs_tool.attach reg m | None -> ());
      (match trace with
      | Some tr -> Dift_obs.Trace.name_track tr "app"
      | None -> ());
      Machine.attach m
        (Tool.make ~dispatch_cost:0
           ~on_exec:(Bool_shards.feed c)
           "sharded-dift-router");
      let t0 = now_ns () in
      let run_machine () =
        match trace with
        | Some tr ->
            Dift_obs.Trace.span tr ~cat:"vm" "app.run" (fun () ->
                Machine.run m)
        | None -> Machine.run m
      in
      match run_machine () with
      | exception ex ->
          (* shut the channels down before reporting so every helper
             exits; their failures are secondary to the app's.  The
             crash may have split a cross-shard event across only some
             participants, so the mesh must go down too — a plain
             close would leave the home shard waiting on a provide leg
             that never comes. *)
          Bool_shards.abort c;
          let secondary =
            match Bool_shards.finish_result c with
            | Ok _ -> []
            | Error f ->
                List.map snd f.Shard_engine.f_shards
          in
          finish_err
            { e_leg = `App; e_exn = ex; e_secondary = secondary;
              e_partial = partial () }
      | outcome -> (
          let s_main_wall_ns = now_ns () - t0 in
          (* closes the channels, joins every shard *)
          match Bool_shards.finish_result c with
          | Error f -> finish_err (error_of_failure f)
          | Ok _ when wd_fired () <> None ->
              (* a cascade can leave every shard terminating cleanly:
                 the watchdog verdict outranks the ordinary one *)
              let m = Option.get (wd_fired ()) in
              conclude_err
                {
                  e_leg = `Deadline;
                  e_exn = Watchdog.Deadline_exceeded m;
                  e_secondary = [];
                  e_partial = partial ();
                }
          | Ok merged ->
              let s_total_wall_ns = now_ns () - t0 in
              let s_filtered_events =
                match lf with Some l -> Livefilter.filtered l | None -> 0
              in
              flight_ev flight "run.done"
                ~a:merged.Bool_shards.m_events
                ~b:(Bool_shards.exchange_messages c);
              (* Deterministic sink delivery: unlike {!run}, whose
                 [on_sink] runs streaming on the helper domain, sharded
                 sink callbacks fire here, after the join, in global
                 step order. *)
              let sink_trace_hash =
                List.fold_left
                  (fun h (step, sink, taint, _) ->
                    mix h (Engine.sink_to_string sink, taint, step))
                  0 merged.Bool_shards.m_sinks
              in
              (match on_sink with
              | Some f ->
                  List.iter
                    (fun (_, sink, taint, e) -> f sink taint e)
                    merged.Bool_shards.m_sinks
              | None -> ());
              Ok
                {
                  s_result =
                    {
                      outcome;
                      events = merged.Bool_shards.m_events + s_filtered_events;
                      sources = merged.Bool_shards.m_sources;
                      sink_hits = merged.Bool_shards.m_sink_hits;
                      sink_trace_hash;
                      tainted_locations =
                        merged.Bool_shards.m_tainted_locations;
                      shadow_words = merged.Bool_shards.m_shadow_words;
                      taint_fingerprint = merged.Bool_shards.m_fingerprint;
                    };
                  s_shards = shards;
                  s_route =
                    (match route with Some r -> r | None -> `Request_reply);
                  s_queue_capacity = queue_capacity;
                  s_batch_size = batch_size;
                  s_wire = wire;
                  s_filtered_events;
                  s_cross_events = Bool_shards.cross_events c;
                  s_exchange_messages = Bool_shards.exchange_messages c;
                  s_per_shard = Bool_shards.shard_stats c;
                  s_main_wall_ns;
                  s_total_wall_ns;
                  s_degraded = None;
                }))

let run_sharded ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade ?route
    ?queue_capacity ?batch_size ?xchg_capacity ?block_bits ?wire
    ?forward_filter ?policy ?on_sink ~shards program ~input =
  match
    run_sharded_result ?config ?obs ?trace ?flight ?chaos ?watchdog ?degrade
      ?route ?queue_capacity ?batch_size ?xchg_capacity ?block_bits ?wire
      ?forward_filter ?policy ?on_sink ~shards program ~input
  with
  | Ok r -> r
  | Error e -> raise e.e_exn

let pp_sharded_report ppf r =
  Fmt.pf ppf
    "%d shard%s (%a): %d cross events, %d exchange msgs; main %.2f ms, \
     total %.2f ms"
    r.s_shards
    (if r.s_shards = 1 then "" else "s")
    Shard_engine.pp_route r.s_route r.s_cross_events r.s_exchange_messages
    (float_of_int r.s_main_wall_ns /. 1e6)
    (float_of_int r.s_total_wall_ns /. 1e6)

let native_wall_ns ?config program ~input =
  let m = Machine.create ?config program ~input in
  let t0 = now_ns () in
  ignore (Machine.run m);
  now_ns () - t0

let speedup i r =
  float_of_int i.i_wall_ns /. float_of_int (max 1 r.total_wall_ns)

let main_ratio i r =
  float_of_int r.main_wall_ns /. float_of_int (max 1 i.i_wall_ns)

let pp_result ppf r =
  Fmt.pf ppf
    "%a; %d events, %d sources, %d sink hits; shadow %d locs / %d words"
    Event.pp_outcome r.outcome r.events r.sources r.sink_hits
    r.tainted_locations r.shadow_words

let pp_report ppf r =
  Fmt.pf ppf
    "queue %d x %d (%a wire%t): %a; %d batches, %d stalls, %d waits; main \
     %.2f ms, total %.2f ms"
    r.queue_capacity r.batch_size Channel.pp_wire r.wire
    (fun ppf ->
      if r.filtered_events > 0 then
        Fmt.pf ppf ", %d filtered" r.filtered_events)
    pp_result r.result r.batches r.producer_stalls r.consumer_waits
    (float_of_int r.main_wall_ns /. 1e6)
    (float_of_int r.total_wall_ns /. 1e6)

let pp_inline_report ppf r =
  Fmt.pf ppf "inline: %a; %.2f ms" pp_result r.i_result
    (float_of_int r.i_wall_ns /. 1e6)
