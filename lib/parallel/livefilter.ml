(** Producer-side taint-liveness filter; see the interface for the
    protocol and the soundness argument. *)

open Dift_vm

type t = {
  page_bits : int;
  mask : int;  (** word-index mask; [Array.length words - 1] *)
  words : int Atomic.t array;
      (** H — the monotone ever-tainted page-hash bitmap.  Helpers set
          bits (check-then-CAS-OR); nobody ever clears one. *)
  stamps : int array;
      (** producer-only: last step at which the producer forwarded an
          event that may produce taint in a location hashing to this
          word ([min_int] = never) *)
  epochs : int Atomic.t array;
      (** per-consumer: step of the last event fully processed {e and
          published} ([-1] = none yet) *)
  mutable cached_min : int;
      (** producer cache of [min epochs] — monotone, so staleness only
          over-forwards *)
  mutable since_refresh : int;
  mutable filtered : int;  (** producer-only: events dropped *)
  reset_interval : int;  (** admitted events between reset attempts; 0
                             disables generation resets *)
  mutable since_reset : int;  (** producer-only *)
  mutable fed_last : int;
      (** producer-only: step of the last {e forwarded} event ([-1] =
          none) — quiescence is every epoch covering it *)
  mutable standdown : bool;
      (** producer-only: H was just cleared and is being rebuilt; no
          filtering until every slot has acked the new generation *)
  generation : int Atomic.t;  (** bumped by the producer at each reset *)
  acks : int Atomic.t array;
      (** per-consumer: last generation whose repopulation this slot
          completed *)
  mutable resets : int;  (** producer-only: completed H clears *)
}

let refresh_interval = 256

let create ?(page_bits = 6) ?(words = 1024) ?(reset_interval = 8192) ~slots ()
    =
  if slots < 1 then
    invalid_arg (Fmt.str "Livefilter.create: slots = %d < 1" slots);
  if reset_interval < 0 then
    invalid_arg
      (Fmt.str "Livefilter.create: reset_interval = %d < 0" reset_interval);
  if words < 1 || words land (words - 1) <> 0 then
    invalid_arg
      (Fmt.str "Livefilter.create: words = %d not a positive power of two"
         words);
  {
    page_bits;
    mask = words - 1;
    words = Array.init words (fun _ -> Atomic.make 0);
    stamps = Array.make words min_int;
    epochs = Array.init slots (fun _ -> Atomic.make (-1));
    cached_min = -1;
    since_refresh = 0;
    filtered = 0;
    reset_interval;
    since_reset = 0;
    fed_last = -1;
    standdown = false;
    generation = Atomic.make 0;
    acks = Array.init slots (fun _ -> Atomic.make 0);
    resets = 0;
  }

(* Key of a location: (page of its index, plane).  Registers (odd
   locs) and memory (even locs) land on disjoint keys so a dense
   register file cannot shadow the memory pages. *)
let key_of t loc = (((loc lsr 1) lsr t.page_bits) lsl 1) lor (loc land 1)
let word_of t loc = key_of t loc lsr 6 land t.mask
let bit_of t loc = 1 lsl (key_of t loc land 63)

let refresh_min t =
  let m = ref max_int in
  for i = 0 to Array.length t.epochs - 1 do
    let e = Atomic.get t.epochs.(i) in
    if e < !m then m := e
  done;
  t.cached_min <- !m;
  t.since_refresh <- 0

(* A location is possibly-live iff its page hash has ever been
   published tainted, or some event that may have produced taint there
   is not yet covered by every consumer's published epoch. *)
let live t loc =
  let w = word_of t loc in
  Atomic.get t.words.(w) land bit_of t loc <> 0
  || t.stamps.(w) > t.cached_min

let rec any_live t = function
  | [] -> false
  | l :: tl -> live t l || any_live t tl

(* Generation reset (producer side).  H is monotone, so on taint-dense
   phases it saturates and the filter stops earning its keep even
   after the taint dies.  At a {e quiescent} point — every consumer's
   published epoch covers the last event the producer ever forwarded,
   hence no publish can be in flight — the producer clears H, bumps
   the generation, and {e stands down} (forwards everything, stamps
   every write) until each consumer has republished its live taint
   from its shadow and acked the generation.  Standdown over-forwards
   and over-stamps only, so it is sound by the same argument as a
   stale [cached_min]; what the reset buys is that pages whose taint
   has since been overwritten come back {e clean}. *)
let maybe_reset t =
  if t.standdown then begin
    let g = Atomic.get t.generation in
    let all_acked = ref true in
    for i = 0 to Array.length t.acks - 1 do
      if Atomic.get t.acks.(i) < g then all_acked := false
    done;
    if !all_acked then t.standdown <- false
  end
  else if t.reset_interval > 0 then begin
    t.since_reset <- t.since_reset + 1;
    if t.since_reset >= t.reset_interval && t.fed_last >= 0 then begin
      let quiet = ref true in
      for i = 0 to Array.length t.epochs - 1 do
        if Atomic.get t.epochs.(i) < t.fed_last then quiet := false
      done;
      (* not quiet: re-check on the next admit — two or three atomic
         loads, not worth a separate cadence *)
      if !quiet then begin
        t.since_reset <- 0;
        (* safe: quiescence means no consumer holds an unprocessed
           event, and the producer (us) is the only feeder — nobody
           can be CAS-ing bits while we clear *)
        Array.iter (fun w -> Atomic.set w 0) t.words;
        Atomic.incr t.generation;
        t.resets <- t.resets + 1;
        t.standdown <- true
      end
    end
  end

let admit t (e : Event.exec) =
  t.since_refresh <- t.since_refresh + 1;
  if t.since_refresh >= refresh_interval then refresh_min t;
  maybe_reset t;
  if t.standdown then begin
    (* H is being rebuilt: no filtering, and stamp {e every} write —
       an event whose reads are live only in a consumer's
       not-yet-republished shadow must still protect its writes *)
    List.iter
      (fun l -> t.stamps.(word_of t l) <- e.Event.step)
      e.Event.writes;
    t.fed_last <- e.Event.step;
    true
  end
  else begin
    let live_in = any_live t e.Event.reads in
    (* every forwarded event that may introduce taint (a source, or a
       propagation from live reads) stamps its write words, so nothing
       downstream of it can be dropped before the helper publishes H *)
    if live_in || Site.is_input_instr e.Event.instr then
      List.iter
        (fun l -> t.stamps.(word_of t l) <- e.Event.step)
        e.Event.writes;
    let forward =
      (not (Site.filterable_instr e.Event.instr))
      || live_in
      (* untainted writes over possibly-tainted locations clear taint
         in the helper's shadow — they must go through *)
      || any_live t e.Event.writes
    in
    if forward then t.fed_last <- e.Event.step
    else t.filtered <- t.filtered + 1;
    forward
  end

let filtered t = t.filtered
let resets t = t.resets
let reset_pending t = t.standdown
let generation t = Atomic.get t.generation

(* -- consumer side ------------------------------------------------------ *)

let publish_loc t loc =
  let w = t.words.(word_of t loc) in
  let bit = bit_of t loc in
  (* check-then-CAS: steady state on already-published pages is one
     atomic load, no write traffic *)
  let rec set () =
    let cur = Atomic.get w in
    if cur land bit = 0 then
      if not (Atomic.compare_and_set w cur (cur lor bit)) then set ()
  in
  set ()

let publish t ~tainted (v : Event.view) =
  for i = 0 to v.Event.v_nwrites - 1 do
    let l = v.Event.v_writes.(i) in
    if tainted l then publish_loc t l
  done

let advance ?repopulate t ~slot ~step =
  (match repopulate with
  | Some f ->
      (* a new generation: republish this consumer's live taint from
         its shadow {e before} acking, so the producer resumes
         filtering only against a complete H.  The generation is
         stable while any slot is unacked (the producer stands down),
         so the load/ack pair cannot straddle a bump. *)
      let g = Atomic.get t.generation in
      if Atomic.get t.acks.(slot) < g then begin
        f ();
        Atomic.set t.acks.(slot) g
      end
  | None -> ());
  if step > Atomic.get t.epochs.(slot) then Atomic.set t.epochs.(slot) step
