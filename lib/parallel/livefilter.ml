(** Producer-side taint-liveness filter; see the interface for the
    protocol and the soundness argument. *)

open Dift_vm

type t = {
  page_bits : int;
  mask : int;  (** word-index mask; [Array.length words - 1] *)
  words : int Atomic.t array;
      (** H — the monotone ever-tainted page-hash bitmap.  Helpers set
          bits (check-then-CAS-OR); nobody ever clears one. *)
  stamps : int array;
      (** producer-only: last step at which the producer forwarded an
          event that may produce taint in a location hashing to this
          word ([min_int] = never) *)
  epochs : int Atomic.t array;
      (** per-consumer: step of the last event fully processed {e and
          published} ([-1] = none yet) *)
  mutable cached_min : int;
      (** producer cache of [min epochs] — monotone, so staleness only
          over-forwards *)
  mutable since_refresh : int;
  mutable filtered : int;  (** producer-only: events dropped *)
}

let refresh_interval = 256

let create ?(page_bits = 6) ?(words = 1024) ~slots () =
  if slots < 1 then
    invalid_arg (Fmt.str "Livefilter.create: slots = %d < 1" slots);
  if words < 1 || words land (words - 1) <> 0 then
    invalid_arg
      (Fmt.str "Livefilter.create: words = %d not a positive power of two"
         words);
  {
    page_bits;
    mask = words - 1;
    words = Array.init words (fun _ -> Atomic.make 0);
    stamps = Array.make words min_int;
    epochs = Array.init slots (fun _ -> Atomic.make (-1));
    cached_min = -1;
    since_refresh = 0;
    filtered = 0;
  }

(* Key of a location: (page of its index, plane).  Registers (odd
   locs) and memory (even locs) land on disjoint keys so a dense
   register file cannot shadow the memory pages. *)
let key_of t loc = (((loc lsr 1) lsr t.page_bits) lsl 1) lor (loc land 1)
let word_of t loc = key_of t loc lsr 6 land t.mask
let bit_of t loc = 1 lsl (key_of t loc land 63)

let refresh_min t =
  let m = ref max_int in
  for i = 0 to Array.length t.epochs - 1 do
    let e = Atomic.get t.epochs.(i) in
    if e < !m then m := e
  done;
  t.cached_min <- !m;
  t.since_refresh <- 0

(* A location is possibly-live iff its page hash has ever been
   published tainted, or some event that may have produced taint there
   is not yet covered by every consumer's published epoch. *)
let live t loc =
  let w = word_of t loc in
  Atomic.get t.words.(w) land bit_of t loc <> 0
  || t.stamps.(w) > t.cached_min

let rec any_live t = function
  | [] -> false
  | l :: tl -> live t l || any_live t tl

let admit t (e : Event.exec) =
  t.since_refresh <- t.since_refresh + 1;
  if t.since_refresh >= refresh_interval then refresh_min t;
  let live_in = any_live t e.Event.reads in
  (* every forwarded event that may introduce taint (a source, or a
     propagation from live reads) stamps its write words, so nothing
     downstream of it can be dropped before the helper publishes H *)
  if live_in || Site.is_input_instr e.Event.instr then
    List.iter
      (fun l -> t.stamps.(word_of t l) <- e.Event.step)
      e.Event.writes;
  if (not (Site.filterable_instr e.Event.instr)) || live_in then true
  else if any_live t e.Event.writes then
    (* untainted writes over possibly-tainted locations clear taint in
       the helper's shadow — they must go through *)
    true
  else begin
    t.filtered <- t.filtered + 1;
    false
  end

let filtered t = t.filtered

(* -- consumer side ------------------------------------------------------ *)

let publish_loc t loc =
  let w = t.words.(word_of t loc) in
  let bit = bit_of t loc in
  (* check-then-CAS: steady state on already-published pages is one
     atomic load, no write traffic *)
  let rec set () =
    let cur = Atomic.get w in
    if cur land bit = 0 then
      if not (Atomic.compare_and_set w cur (cur lor bit)) then set ()
  in
  set ()

let publish t ~tainted (v : Event.view) =
  for i = 0 to v.Event.v_nwrites - 1 do
    let l = v.Event.v_writes.(i) in
    if tainted l then publish_loc t l
  done

let advance t ~slot ~step =
  if step > Atomic.get t.epochs.(slot) then Atomic.set t.epochs.(slot) step
