(** The forwarding-plane switch: one producer/consumer surface over
    the two wire formats, so each runtime picks its encoding once and
    the feed/drain/supervision logic downstream is wire-agnostic.

    - [`Boxed] — the original plane: whole {!Dift_vm.Event.exec}
      records over an [Event.exec] {!Forwarder} (one pointer per
      event, heap-shaped payload).
    - [`Coded] — the de-boxed plane: flat {!Codec} batches of interned
      site ids and integer lanes (zero allocation per event in the
      steady state).

    Consumers always see {!Dift_vm.Event.view}s: the coded wire
    decodes into its scratch view, the boxed wire refills one from
    each record.  Every event-level counter is in logical events on
    both wires, so reports reconcile identically. *)

open Dift_vm

type wire = [ `Boxed | `Coded ]

val pp_wire : wire Fmt.t

type t =
  | Boxed of Event.exec Forwarder.t
  | Coded of Codec.t

(** [create ~wire ~queue_capacity ~batch_size ~table ()] — both wires
    buffer up to [queue_capacity * batch_size] events; the coded wire
    uses [batch_size] as its [events_per_batch] and forces [table]
    (the interned site table is only built when a coded channel
    actually needs it). *)
val create :
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?progress:Dift_obs.Progress.t ->
  ?escalate:bool ->
  ?ns:string ->
  wire:wire ->
  queue_capacity:int ->
  batch_size:int ->
  table:Site.table Lazy.t ->
  unit ->
  t

val wire : t -> wire

(** {1 Producer side} *)

val add : t -> Event.exec -> unit
val flush : t -> unit
val close : t -> unit

(** {1 Consumer side} *)

(** Apply [f] to every forwarded event as a reused view (do not retain
    it; see {!Codec.drain}).  [after_batch] fires with the last step
    after each decoded batch on the coded wire, and after {e every}
    event on the boxed wire (which has no batch hook — a sound
    refinement for the filter's epoch advance). *)
val drain :
  ?around_batch:((unit -> unit) -> unit) ->
  ?after_batch:(last_step:int -> unit) ->
  t ->
  f:(Event.view -> unit) ->
  unit

val abort : t -> unit
val aborted : t -> bool

(** {1 Accounting} (identical semantics on both wires) *)

val events : t -> int
val batches : t -> int
val dropped_batches : t -> int
val dropped_events : t -> int
val discarded_batches : t -> int
val discarded_events : t -> int
val consumed_batches : t -> int
val consumed_events : t -> int
val producer_stalls : t -> int
val consumer_waits : t -> int
val in_flight_batches : t -> int
