(** Deterministic fault injection for the parallel runtimes.

    The decoupled architecture of paper §2.1 is only as sound as its
    failure and shutdown legs: helper crash mid-drain, application
    crash mid-run, a stalled exchange ring, an abort racing a parked
    peer.  Those legs run rarely in production and never on the happy
    path the cross-validation tests exercise — so this module makes
    them {e schedulable}: a {!plan} is a deterministic list of faults
    keyed to the N-th occurrence of a channel operation, and the
    runtimes ({!Forwarder}, {!Parallel}, {!Shard_engine}) consult an
    optional {!t} at each seam.

    The seam is strictly {b opt-in}: without a [?chaos] argument the
    runtimes take their ordinary direct [Spsc] path — no wrapper, no
    indirect call, no overhead ([bench/check_regression.exe] gates
    this).

    Plans are reproducible two ways: {!plan_of_seed} derives one
    pseudo-randomly from an integer seed (the CI sweep), and the
    {!plan_of_string} grammar round-trips through {!plan_to_string}
    (the [diftc taint --fault-plan] flag), so any red sweep seed is a
    one-flag repro. *)

(** The exception injected by a [`Raise] fault — stands in for a
    helper/application crash.  The payload names the channel and
    operation it fired on. *)
exception Injected of string

(** Which channel operation a rule intercepts.  [Push]/[Pop] are the
    producer/consumer sides of any {!Spsc}-backed channel (forwarding
    ring or exchange ring); [Spawn] intercepts [Domain.spawn] in the
    runtimes, modelling helper-domain creation failure. *)
type op = Push | Pop | Spawn

type fault =
  | Stall of int
      (** sleep this many ns {e before} the operation: an artificial
          full/empty stall on the intercepted side *)
  | Delay of int
      (** sleep this many ns before the operation completes: the
          peer's wakeup arrives late (a delayed-wakeup window) *)
  | Drop  (** fail the operation: a push is dropped (and counted), a
              pop discards the popped element (and counts it) *)
  | Abort  (** abort the channel (or the whole exchange mesh) at this
               operation *)
  | Raise  (** raise {!Injected} from the operation: a crash on the
               intercepting side *)

(** One scheduled fault: fire [fault] on the [at]-th (1-based)
    occurrence of [on] for channels whose name starts with [where]
    ([None] matches every channel).  Each rule fires at most once per
    matching channel instance. *)
type rule = { on : op; at : int; fault : fault; where : string option }

type plan = rule list

(** [plan_of_seed ?rules seed] derives a reproducible pseudo-random
    plan ([rules] rules, default 4) from [seed]: mixed push/pop
    stalls, delays, drops, aborts and raises at small occurrence
    indices, occasionally a spawn failure.  Same seed, same plan. *)
val plan_of_seed : ?rules:int -> int -> plan

(** Render a plan in the grammar {!plan_of_string} accepts —
    [plan_of_string (plan_to_string p) = Ok p]. *)
val plan_to_string : plan -> string

(** Parse the [--fault-plan] grammar:
    {v
plan  := rule (';' rule)*
rule  := [where '/'] op '@' at '=' fault
op    := 'push' | 'pop' | 'spawn'
fault := 'stall:' ns | 'delay:' ns | 'drop' | 'abort' | 'raise'
    v}
    e.g. [push@3=abort;parallel.shard1/pop@2=raise;xchg/push@1=stall:2000000].
    [where] is matched as a prefix of the channel namespace
    ([parallel], [parallel.shard<i>], [xchg.<src>.<dst>]). *)
val plan_of_string : string -> (plan, string) result

val pp_plan : plan Fmt.t

(** {1 Instances}

    A {!t} is one run's fault state: the plan plus a fired-fault
    count.  Each channel derives a per-channel {!inst} carrying its
    own operation counters, so rule occurrence indices are counted
    per channel, not globally. *)

type t

(** [create ?flight plan] — with [?flight], every fired rule records a
    [chaos.fire] flight event (category [chaos], [a] = occurrence
    index, [detail] = ["<ns>/<op>=<fault>"]) {e on the domain the
    fault intercepts} — so a crash bundle always carries at least one
    flight event from the crashing domain, whichever leg the plan
    hit. *)
val create : ?flight:Dift_obs.Flight.t -> plan -> t

val plan : t -> plan

(** Faults fired so far, across every instance (atomic — readable
    from any domain). *)
val fired : t -> int

(** Total injected sleep actually served so far, in ns, across every
    instance (atomic).  Individual [Stall]/[Delay] durations are
    clamped to 2 s apiece before serving, so a fat-fingered plan
    degrades a run instead of wedging it past any watchdog deadline;
    this total is post-clamp, letting tests reconcile elapsed wall
    time against the plan. *)
val stalled_ns : t -> int

(** Publish [chaos.fired] and [chaos.stalled_ns] gauges. *)
val register_obs : t -> Dift_obs.Registry.t -> unit

(** A per-channel view: [ns] selects which rules apply (prefix
    match).  Push operations must come from the channel's single
    producer domain and pops from its single consumer domain, like
    the underlying {!Spsc} sides.

    [escalate] marks a channel whose losses would wedge a protocol
    riding on it (e.g. the sharded request/reply feed rings, where a
    shard missing an event strands its peers mid-exchange): [Drop]
    and [Abort] faults on such a channel are served as [Raise_now]
    instead — a crash of the intercepting side, which the supervised
    shutdown tears down cleanly.  Same policy the exchange mesh
    applies to its own rings.

    [targeted_only] restricts the instance to rules with an explicit
    [where] prefix: bare rules (no [where]) do not match.  Auxiliary
    rings whose faults are pure degradations — the forwarder's
    free-list ring ([ring.free.*]) — use it so that a plan like
    [pop@1=raise] keeps meaning "the first {e event-carrying} pop",
    not whichever recycling pop happens to run first. *)
type inst

val instance : ?escalate:bool -> ?targeted_only:bool -> t -> ns:string -> inst

(** What the intercepted operation should do.  [Stall]/[Delay] faults
    are served {e inside} [on_push]/[on_pop] (the call sleeps, then
    returns [Proceed]); the terminal faults are returned for the seam
    to interpret, so that dropped work is accounted where the counts
    live. *)
type action =
  | Proceed
  | Fail  (** [Drop]: the caller drops/discards and counts *)
  | Abort_now  (** [Abort]: the caller aborts the channel/mesh *)
  | Raise_now of exn  (** [Raise]: the caller raises after accounting *)

val on_push : inst -> action
val on_pop : inst -> action

(** The [Spawn] interception point — global to the run (domains are
    spawned from one supervising domain). *)
val on_spawn : t -> action
