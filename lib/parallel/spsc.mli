(** A bounded single-producer/single-consumer channel — the software
    incarnation of the core-to-core forwarding queue of paper §2.1
    ("Exploiting multicores", after Nagarajan et al., INTERACT'08).

    The main core pushes, the helper core pops; capacity is fixed at
    creation, so a lagging consumer exerts backpressure on the
    producer exactly as the paper's bounded hardware queue does.  The
    implementation is a ring buffer with atomic head/tail indices: the
    common push/pop path takes no lock, and a Mutex/Condition pair is
    used only to park a blocked side (producer on a full ring,
    consumer on an empty one) and to wake it again.

    The channel is strictly one producer domain and one consumer
    domain; none of the operations below may be called from two
    domains concurrently on the same side.

    Lifecycle: the producer eventually calls {!close} (no more
    pushes); the consumer drains and {!pop} returns [None].  If the
    consumer dies instead, it calls {!abort}, which turns every
    subsequent or blocked {!push} into a counted drop so the producer
    can never deadlock against a dead helper.

    Slots hold elements directly behind a unique sentinel rather than
    as ['a option], so a push allocates nothing. *)

type 'a t

(** [create ?push_leg ?pop_leg ~capacity] is an empty channel holding
    at most [capacity] elements.  The optional {!Dift_obs.Progress}
    legs are armed while the corresponding side is {e parked} (producer
    on a full ring, consumer on an empty one) — the non-blocking fast
    path never touches them — letting a watchdog see which seam a
    wedged run is blocked on.
    @raise Invalid_argument if [capacity < 1]. *)
val create :
  ?push_leg:Dift_obs.Progress.leg ->
  ?pop_leg:Dift_obs.Progress.leg ->
  capacity:int ->
  unit ->
  'a t

(** The fixed slot count the channel was created with. *)
val capacity : 'a t -> int

(** Elements currently buffered (racy snapshot, exact when quiescent). *)
val length : 'a t -> int

(** Whether {!close} has run (atomic; readable from any domain). *)
val closed : 'a t -> bool

(** Whether {!abort} has run (atomic; readable from any domain).  The
    fault-injection tests use this to assert which side tore the
    channel down. *)
val aborted : 'a t -> bool

(** {1 Producer side} *)

(** [push t x] enqueues [x], blocking while the channel is full.
    After {!abort}, [x] is dropped (and counted) instead.
    @raise Invalid_argument if the channel is closed. *)
val push : 'a t -> 'a -> unit

(** [try_push t x] enqueues [x] if the channel has room and returns
    [true]; returns [false] (without blocking or counting a stall) if
    it is full.  After {!abort}, behaves like {!push}: the element is
    dropped, counted, and [true] is returned.
    @raise Invalid_argument if the channel is closed. *)
val try_push : 'a t -> 'a -> bool

(** No more pushes; blocked and future {!pop}s see the remaining
    elements and then [None].  Idempotent. *)
val close : 'a t -> unit

(** Times the producer had to block on a full channel — the software
    analogue of the cycle model's [stall_cycles] backpressure counter.
    The stall/wait/drop counters are atomic, so they may be read from
    {e any} domain (including a third, monitoring domain) while the
    channel is in use; reads are never torn and successive reads are
    monotonic. *)
val producer_stalls : 'a t -> int

(** Elements dropped because the consumer aborted (atomic; readable
    from any domain). *)
val dropped : 'a t -> int

(** {1 Consumer side} *)

(** [pop t] dequeues the oldest element, blocking while the channel is
    empty and not yet closed; [None] once the channel is closed and
    drained (or aborted). *)
val pop : 'a t -> 'a option

(** [try_pop t] dequeues the oldest element if one is buffered;
    [None] if the channel is momentarily empty (or aborted) — it never
    blocks and does not distinguish empty from closed-and-drained. *)
val try_pop : 'a t -> 'a option

(** Consumer gives up: wakes and un-blocks the producer permanently,
    turning pushes into drops.  Used to propagate a helper-side crash
    without deadlocking the main core.  Idempotent. *)
val abort : 'a t -> unit

(** [pop_remaining t] dequeues the oldest buffered element {e even
    after} {!abort} — [pop]/[try_pop] honour the abort flag before the
    buffer, so elements delivered before the abort would otherwise sit
    in the ring uncounted.  The consumer calls this in a loop after
    aborting to sweep those elements into its discard accounting
    (post-abort pushes are already counted as {!dropped}, so every
    element ends up in exactly one book).  Never blocks; [None] when
    the buffer is empty.  Consumer side only. *)
val pop_remaining : 'a t -> 'a option

(** Times the consumer had to block on an empty channel (helper idle
    episodes; atomic, readable from any domain). *)
val consumer_waits : 'a t -> int
