(** Post-mortem crash bundles for the parallel runtimes.

    When a supervised run ({!Parallel.run_result},
    {!Parallel.run_sharded_result}) comes back with an
    {!Parallel.error}, everything a triage needs is still alive in
    the calling domain: the structured error itself, the final
    observability {!Dift_obs.Registry} snapshot, each domain's
    {!Dift_obs.Flight} tail (safe to read — the supervised runtimes
    join every domain before returning [Error]), the trace-drop
    accounting and the active fault plan.  This module assembles
    those into one self-describing JSON document and writes it
    atomically, so a crashed [diftc] invocation leaves exactly one
    readable artifact behind — the bundle [diftc inspect] renders.

    The bundle format is documented in [docs/observability.md]
    ("Flight recorder & crash bundles"). *)

(** The schema tag stamped into every bundle (the [schema] field):
    [dift-crash-bundle/1]. *)
val schema : string

(** The runtime geometry at the moment of the crash — enough to
    reproduce the channel shapes of the failed run. *)
type geometry = {
  g_runtime : string;  (** ["parallel"] (two-domain) or ["sharded"] *)
  g_shards : int;  (** helper domains; [1] for the two-domain runtime *)
  g_queue_capacity : int;  (** per-channel ring slots, in batches *)
  g_batch_size : int;  (** events per batch *)
  g_xchg_capacity : int option;  (** exchange-ring slots (sharded only) *)
  g_wire : Channel.wire;  (** forwarding wire ([`Coded] or [`Boxed]) *)
  g_forward_filter : bool;  (** producer-side liveness filter enabled *)
  g_deadline : string option;
      (** watchdog deadlines in {!Watchdog.deadlines_to_string}
          grammar, when supervision was on *)
  g_degrade : bool;  (** degraded-mode inline completion enabled *)
}

val geometry_json : geometry -> Dift_obs.Json.t

(** Structured rendering of a supervised failure: the failing leg
    (as [pp] prints it: [app], [helper], [shard-N], [spawn],
    [deadline]), the primary exception, every secondary shutdown
    failure, and the channel accounting of {!Parallel.partial}.  When
    the primary exception is {!Watchdog.Deadline_exceeded}, a
    ["deadline"] object is added carrying the stalled seam, its frozen
    epoch, the blocked and deadline durations, and the full
    armed-seam portrait at detection time. *)
val error_json : Parallel.error -> Dift_obs.Json.t

(** [bundle ~error geometry] assembles the crash bundle:

    - ["schema"]: {!schema};
    - ["error"]: {!error_json};
    - ["geometry"]: {!geometry_json};
    - ["fault_plan"] (with [?chaos]): the active plan in
      {!Chaos.plan_to_string} grammar plus the fired-fault count;
    - ["metrics"] (with [?obs]): the final registry snapshot
      ({!Dift_obs.Registry.to_json});
    - ["first_heartbeat"] (with [?first_heartbeat]): the run's beat 0,
      so [inspect] can show metric deltas;
    - ["trace"] (with [?trace]): buffered/dropped/capacity event
      accounting of the execution tracer;
    - ["flight"] (with [?flight]): every domain's recorder tail
      ({!Dift_obs.Flight.to_json}) — call only after the runtime
      returned, when all recording domains have joined;
    - every [(key, json)] of [?extra], appended last (workload name,
      input size, seed…). *)
val bundle :
  ?obs:Dift_obs.Registry.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?trace:Dift_obs.Trace.t ->
  ?first_heartbeat:Dift_obs.Json.t ->
  ?extra:(string * Dift_obs.Json.t) list ->
  error:Parallel.error ->
  geometry ->
  Dift_obs.Json.t

(** [write ~file j] writes [j] (pretty-printed, trailing newline)
    atomically: the bytes go to a [.tmp] sibling first and are
    renamed over [file] only once flushed — a reader never sees a
    truncated bundle, even if the writer dies mid-dump. *)
val write : file:string -> Dift_obs.Json.t -> unit
