(** The de-boxed forwarding plane: a flat struct-of-arrays wire format
    for the event stream, replacing per-event {!Dift_vm.Event.exec}
    records (boxed ints, two location lists, a function pointer) with
    preallocated integer lanes plus an interned {!Dift_vm.Site} id.

    {b Wire format.}  A {!batch} holds up to [events_per_batch] events
    as parallel [int array] lanes — site id, step, tid, addr, value,
    next_pc, input_index, and a [desc] word — plus one shared growable
    overflow area.  [desc] bit 0 picks the encoding of the event's
    read/write location sets:

    - [1] — {e frame-compact}: [desc lsr 1] is the activation-frame
      serial.  The sets are rebuilt from the site row's static
      register offsets ([frame * Site.frame_stride + off]) and, for
      loads/stores, the memory cell from the [addr] lane.  The encoder
      verifies this shape {e element-wise against the live event}
      before using it, so decoding is exact by construction.
    - [0] — {e explicit}: [desc lsr 1] is an offset into the overflow
      area holding [nreads, nwrites, reads.., writes..] verbatim.
      Used whenever the dynamic shape diverges from the static row:
      call/return boundaries (two frames), indirect-call target
      operands, faulting events.
    - [desc < 0] — {e escape}: the event is foreign to the interned
      program (a hand-built stream whose [(func, pc, instr)] is not
      physically one of the program's own sites); it rides boxed in
      the batch's escape lane at index [-desc - 1] and decodes by
      {!Dift_vm.Event.view_fill}, exact by construction.  The encoder
      detects this per event ({!Dift_vm.Site.base_opt} plus physical
      identity of the row's function and instruction), so machine
      streams never take it and the steady state stays flat.

    Steady-state forwarding allocates nothing per event: lanes are
    written in place, full batches travel the ring as single elements
    (weighted by their event count, see {!Forwarder.add_n}), the
    consumer decodes each event into one reused {!Dift_vm.Event.view}
    scratch, and spent batches cycle back to the producer over a free
    ring ([ring.free.<ns>] chaos seam, explicitly-targeted rules
    only).

    See the "Wire format" section of [docs/forwarding-protocol.md]. *)

open Dift_vm

(** {1 Batches} *)

type batch = {
  b_site : int array;
  b_step : int array;
  b_tid : int array;
  b_addr : int array;
  b_value : int array;
  b_next_pc : int array;
  b_input : int array;
  b_desc : int array;
  mutable b_ovf : int array;
  mutable b_esc : Event.exec array;
      (** boxed escape lane for foreign events (negative [desc]) *)
  mutable b_n : int;
  mutable b_ovf_n : int;
  mutable b_esc_n : int;
}

(** A fresh batch with all lanes sized [events_per_batch].
    @raise Invalid_argument if [events_per_batch < 1]. *)
val batch_create : events_per_batch:int -> batch

val batch_capacity : batch -> int
val batch_length : batch -> int
val batch_clear : batch -> unit

(** {1 Raw encode / decode}

    Exposed for the round-trip property tests and the benchmark
    harness; runtimes normally go through the channel below. *)

type encoder

val encoder : Site.table -> encoder

(** Append one event to the batch (which must not be full). *)
val encode : encoder -> batch -> Event.exec -> unit

(** [decode_into table b i v] rebuilds event [i] of [b] into the
    reusable view [v] (invalidating [v]'s cached exec).  Allocates
    nothing once [v]'s scratch arrays cover the stream's maximum
    read/write fan. *)
val decode_into : Site.table -> batch -> int -> Event.view -> unit

(** {1 The coded channel}

    A drop-in counterpart of an [Event.exec Forwarder.t]: the producer
    {!feed}s raw events, the consumer {!drain}s decoded views.  All
    event-level accounting (events, dropped/discarded/consumed) is in
    logical events, so reports and ledgers reconcile exactly as with
    the boxed channel. *)

type t

(** [create ~queue_capacity ~events_per_batch ~table ()] — the
    underlying ring holds [queue_capacity] encoded batches of up to
    [events_per_batch] events each, so the channel buffers up to
    [queue_capacity * events_per_batch] events, matching a boxed
    channel of the same [queue_capacity] and [batch_size =
    events_per_batch].  The observability/chaos options are forwarded
    to {!Forwarder.create} unchanged (same [ns] conventions); the
    codec's free ring registers its chaos seam under
    [ring.free.<ns>].
    @raise Invalid_argument if either size is [< 1]. *)
val create :
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?progress:Dift_obs.Progress.t ->
  ?escalate:bool ->
  ?ns:string ->
  queue_capacity:int ->
  events_per_batch:int ->
  table:Site.table ->
  unit ->
  t

val table : t -> Site.table

(** {2 Producer side} *)

(** Encode and forward one event; ships the open batch when it
    reaches [events_per_batch] (blocking while the ring is full). *)
val feed : t -> Event.exec -> unit

(** Ship the open partial batch, if any. *)
val flush : t -> unit

(** Flush and close the ring. *)
val close : t -> unit

(** {2 Consumer side} *)

(** [drain t ~f] decodes every forwarded event in program order into
    an internal scratch view and applies [f] to it; returns when the
    channel is closed and fully drained.  The view is {e reused}: [f]
    must not retain it (call {!Dift_vm.Event.view_to_exec} to
    materialise a snapshot).  [around_batch] is {!Forwarder.drain}'s
    hook, wrapping each {e encoded} batch.  [after_batch
    ~last_step:s] runs after each non-empty batch with the step of
    its last event — the liveness filter's epoch-advance hook.  If
    [f] raises, the channel is aborted before the exception
    propagates. *)
val drain :
  ?around_batch:((unit -> unit) -> unit) ->
  ?after_batch:(last_step:int -> unit) ->
  t ->
  f:(Event.view -> unit) ->
  unit

(** Consumer gives up: unblocks the producer for good. *)
val abort : t -> unit

val aborted : t -> bool

(** {2 Accounting} (see {!Forwarder} for semantics; event counters
    move in logical events via {!Forwarder.add_n} weights) *)

val events : t -> int
val batches : t -> int
val dropped_batches : t -> int
val dropped_events : t -> int
val discarded_batches : t -> int
val discarded_events : t -> int
val consumed_batches : t -> int
val consumed_events : t -> int
val producer_stalls : t -> int
val consumer_waits : t -> int
val in_flight_batches : t -> int
