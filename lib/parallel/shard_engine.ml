(** Per-shard DIFT workers and the cross-shard exchange protocol; see
    the interface for the architecture and
    [docs/forwarding-protocol.md] for the protocol and its
    deadlock-freedom argument. *)

open Dift_vm
open Dift_core

type route = [ `Request_reply | `Broadcast ]

let pp_route ppf (r : route) =
  Fmt.string ppf
    (match r with
    | `Request_reply -> "request-reply"
    | `Broadcast -> "broadcast")

type shard_stat = {
  shard : int;
  fed : int;
  handled : int;
  batches : int;
  dropped_batches : int;
  dropped_events : int;
  discarded_batches : int;
  discarded_events : int;
  busy_ns : int;
  wall_ns : int;
  producer_stalls : int;
  consumer_waits : int;
  exchange_sent : int;
  exchange_received : int;
}

exception Shard_dead
exception Spawn_failure of exn

type failure = {
  f_primary : exn;
  f_shards : (int * exn) list;
}

let pp_failure ppf f =
  Fmt.pf ppf "primary %s; %d shard%s dead%a"
    (Printexc.to_string f.f_primary)
    (List.length f.f_shards)
    (if List.length f.f_shards = 1 then "" else "s")
    (fun ppf -> function
      | [] -> ()
      | l ->
          Fmt.pf ppf " (%a)"
            (Fmt.list ~sep:Fmt.comma (fun ppf (s, e) ->
                 Fmt.pf ppf "shard %d: %s" s (Printexc.to_string e)))
            l)
    f.f_shards

(* Monotonic: shard busy/wall intervals must never go negative even if
   the system clock steps mid-run. *)
let now_ns = Dift_obs.Clock.now_ns

module Make (D : Taint.DOMAIN) = struct
  module E = Engine.Make (D)

  (* One exchange message: the step it belongs to (a protocol
     self-check — rings are FIFO, so a mismatch means a routing bug)
     plus taint values positional on the event's read or write list. *)
  type msg = int * D.t array

  type xchg = {
    rings : msg Spsc.t array array;  (** [rings.(src).(dst)] *)
    journals : msg list ref array array option;
        (** consumed messages per ring, newest first; written only by
            each ring's consumer domain *)
    x_chaos : Chaos.inst array array option;
        (** fault seams per ring, namespaced [xchg.<src>.<dst>] *)
  }

  let create_xchg ?(capacity = 256) ?(journal = false) ?chaos ?progress
      ~shards () =
    if capacity < 1 then
      invalid_arg "Shard_engine.create_xchg: capacity < 1";
    {
      rings =
        Array.init shards (fun src ->
            Array.init shards (fun dst ->
                (* one watchdog leg per blocking side of each mesh
                   ring, so a stalled exchange names its exact edge *)
                match progress with
                | None -> Spsc.create ~capacity ()
                | Some p ->
                    Spsc.create
                      ~push_leg:
                        (Dift_obs.Progress.leg p
                           (Fmt.str "xchg.%d.%d.push" src dst))
                      ~pop_leg:
                        (Dift_obs.Progress.leg p
                           (Fmt.str "xchg.%d.%d.pop" src dst))
                      ~capacity ()));
      journals =
        (if journal then
           Some
             (Array.init shards (fun _ ->
                  Array.init shards (fun _ -> ref [])))
         else None);
      x_chaos =
        Option.map
          (fun c ->
            Array.init shards (fun src ->
                Array.init shards (fun dst ->
                    Chaos.instance c ~ns:(Fmt.str "xchg.%d.%d" src dst))))
          chaos;
    }

  let abort_xchg x = Array.iter (Array.iter Spsc.abort) x.rings

  let journal x ~src ~dst =
    match x.journals with
    | None -> []
    | Some j -> List.rev !(j.(src).(dst))

  let prefill x ~src ~dst msgs =
    List.iter (Spsc.push x.rings.(src).(dst)) msgs

  type worker = {
    w_shard : int;
    router : Router.t;
    route : route;
    x : xchg;
    eng : E.t;
    record_sinks : bool;
    w_flight : Dift_obs.Flight.t option;
        (** exchange legs record [xchg.push]/[xchg.pop] flight events *)
    w_scratch : Event.view;
        (** refilled per event on the boxed {!handle} path; coded
            drains hand their own scratch view to {!handle_view} *)
    mutable sinks : (int * Engine.sink * D.t * Event.exec) list;
        (** newest first *)
    mutable w_handled : int;
    mutable sent : int;
    mutable received : int;
    mutable w_prog : Dift_obs.Progress.leg option;
        (** [work.shard<i>]: ticked per handled view — the progress
            pulse that keeps legitimately parked peers from tripping
            the watchdog while this shard computes *)
    mutable w_last_step : int;
        (** step of the last view handled ([-1] = none); written by
            the shard domain, read after the join *)
  }

  let worker ?policy ?flight ~router ~route ~xchg ~record_sinks ~shard
      program =
    let policy = Option.value policy ~default:Policy.default in
    (match route with
    | `Request_reply when policy.Policy.propagate_control ->
        invalid_arg
          "Shard_engine: propagate_control entangles every event through \
           per-thread control state and cannot be sharded exactly; use \
           ~route:`Broadcast"
    | _ -> ());
    let eng = E.create ~policy program in
    (* wall-clock runtime: modelled-cycle charging is meaningless here *)
    E.set_charge eng ignore;
    (* engine milestones land on whichever domain drains this shard *)
    (match flight with Some fl -> E.set_flight eng fl | None -> ());
    let f0 = List.hd (Dift_isa.Program.functions program) in
    let w =
      {
        w_shard = shard;
        router;
        route;
        x = xchg;
        eng;
        record_sinks;
        w_flight = flight;
        w_scratch =
          Event.view_create ~func:f0 ~instr:f0.Dift_isa.Func.body.(0);
        sinks = [];
        w_handled = 0;
        sent = 0;
        received = 0;
        w_prog = None;
        w_last_step = -1;
      }
    in
    if record_sinks then
      E.on_sink eng (fun sink taint e ->
          w.sinks <- (e.Event.step, sink, taint, e) :: w.sinks);
    w

  let engine w = w.eng
  let handled w = w.w_handled
  let exchange_sent w = w.sent
  let exchange_received w = w.received

  (* Exchange messages are protocol legs, not payload: silently losing
     one would wedge the peer waiting for it.  An injected [Fail] on
     the mesh therefore escalates to a crash of the intercepting
     shard (which aborts the mesh and cascades cleanly), and
     [Abort_now] tears the whole mesh down. *)
  let x_chaos_act w ~src ~dst action =
    match action with
    | Chaos.Proceed -> ()
    | Chaos.Fail ->
        raise
          (Chaos.Injected
             (Fmt.str "injected exchange failure on ring %d->%d" src dst))
    | Chaos.Abort_now -> Array.iter (Array.iter Spsc.abort) w.x.rings
    | Chaos.Raise_now e -> raise e

  (* One bounded flight event for an exchange leg on the acting
     shard's ring ([a] = source shard, [b] = destination shard). *)
  let flight_x w name ~src ~dst =
    match w.w_flight with
    | None -> ()
    | Some fl -> Dift_obs.Flight.record fl ~cat:"xchg" name ~a:src ~b:dst

  let push_x w ~dst m =
    (match w.x.x_chaos with
    | None -> ()
    | Some insts ->
        x_chaos_act w ~src:w.w_shard ~dst
          (Chaos.on_push insts.(w.w_shard).(dst)));
    w.sent <- w.sent + 1;
    flight_x w "xchg.push" ~src:w.w_shard ~dst;
    Spsc.push w.x.rings.(w.w_shard).(dst) m

  let pop_x w ~src =
    (match w.x.x_chaos with
    | None -> ()
    | Some insts ->
        x_chaos_act w ~src ~dst:w.w_shard
          (Chaos.on_pop insts.(src).(w.w_shard)));
    match Spsc.pop w.x.rings.(src).(w.w_shard) with
    | None ->
        flight_x w "xchg.dead" ~src ~dst:w.w_shard;
        raise Shard_dead
    | Some m ->
        flight_x w "xchg.pop" ~src ~dst:w.w_shard;
        w.received <- w.received + 1;
        (match w.x.journals with
        | Some j ->
            let cell = j.(src).(w.w_shard) in
            cell := m :: !cell
        | None -> ());
        m

  let protocol_error w ~expect ~got =
    failwith
      (Fmt.str
         "Shard_engine: shard %d expected the exchange leg for step %d but \
          popped step %d — routing bug"
         w.w_shard expect got)

  (* Shards (other than this one) owning at least one of the first [n]
     locations of [arr]. *)
  let remote_mask w arr n =
    let m = ref 0 in
    for i = 0 to n - 1 do
      m := !m lor (1 lsl Router.shard_of_loc w.router arr.(i))
    done;
    !m land lnot (1 lsl w.w_shard)

  let exists_mine w arr n =
    let rec go i =
      i < n && (Router.owns w.router w.w_shard arr.(i) || go (i + 1))
    in
    go 0

  (* The home shard runs the *unmodified* sequential transfer function
     by windowing remote state through its own shadow: pull each
     provider's read-taint vector and [set] it in place, run
     {!E.process_view} (sinks, stats, policy handling and write
     stamping all behave exactly as in the sequential engine), then
     read the resulting taints of remote write locations back out of
     the shadow, ship them to their owners, and clear every remote
     location again.  The set/clear pairs cancel in the incremental
     footprint accounting, so per-shard footprints stay disjoint. *)
  let handle_home w (v : Event.view) =
    let sh = E.shadow w.eng in
    let mine l = Router.owns w.router w.w_shard l in
    let reads = v.Event.v_reads
    and nr = v.Event.v_nreads
    and writes = v.Event.v_writes
    and nw = v.Event.v_nwrites in
    Router.iter_shards (remote_mask w reads nr) (fun s ->
        let step, vec = pop_x w ~src:s in
        if step <> v.Event.v_step then
          protocol_error w ~expect:v.Event.v_step ~got:step;
        for i = 0 to nr - 1 do
          let l = reads.(i) in
          if Router.shard_of_loc w.router l = s then E.Sh.set sh l vec.(i)
        done);
    E.process_view w.eng v;
    let rmask = remote_mask w writes nw in
    if rmask <> 0 then begin
      let wv = Array.make nw D.bottom in
      for i = 0 to nw - 1 do
        let l = writes.(i) in
        if not (mine l) then wv.(i) <- E.Sh.get sh l
      done;
      Router.iter_shards rmask (fun s -> push_x w ~dst:s (v.Event.v_step, wv))
    end;
    for i = 0 to nr - 1 do
      let l = reads.(i) in
      if not (mine l) then E.Sh.clear sh l
    done;
    for i = 0 to nw - 1 do
      let l = writes.(i) in
      if not (mine l) then E.Sh.clear sh l
    done

  (* A non-home participant: provide the taints of its owned read
     locations (positional on the event's read list), then — if it
     owns write locations — await the home's write vector and store
     its share.  Provide-before-await is the leg order the
     deadlock-freedom argument relies on. *)
  let handle_assist w (v : Event.view) ~home =
    let sh = E.shadow w.eng in
    let mine l = Router.owns w.router w.w_shard l in
    let reads = v.Event.v_reads
    and nr = v.Event.v_nreads
    and writes = v.Event.v_writes
    and nw = v.Event.v_nwrites in
    if exists_mine w reads nr then begin
      let vec = Array.make nr D.bottom in
      for i = 0 to nr - 1 do
        let l = reads.(i) in
        if mine l then vec.(i) <- E.Sh.get sh l
      done;
      push_x w ~dst:home (v.Event.v_step, vec)
    end;
    if exists_mine w writes nw then begin
      let step, wv = pop_x w ~src:home in
      if step <> v.Event.v_step then
        protocol_error w ~expect:v.Event.v_step ~got:step;
      for i = 0 to nw - 1 do
        let l = writes.(i) in
        if mine l then E.Sh.set sh l wv.(i)
      done
    end

  let handle_view w (v : Event.view) =
    w.w_handled <- w.w_handled + 1;
    w.w_last_step <- v.Event.v_step;
    (match w.w_prog with
    | Some l -> Dift_obs.Progress.tick l
    | None -> ());
    match w.route with
    | `Broadcast -> E.process_view w.eng v
    | `Request_reply ->
        let mask = Router.participants_view w.router v in
        if Router.is_local mask then E.process_view w.eng v
        else begin
          let home = Router.home_of_view w.router v in
          if home = w.w_shard then handle_home w v
          else handle_assist w v ~home
        end

  let handle w (e : Event.exec) =
    Event.view_fill w.w_scratch e;
    handle_view w w.w_scratch

  (* -- deterministic merge --------------------------------------------- *)

  type merged = {
    m_events : int;
    m_sources : int;
    m_sink_hits : int;
    m_sinks : (int * Engine.sink * D.t * Event.exec) list;
    m_tainted_locations : int;
    m_shadow_words : int;
    m_fingerprint : int;
  }

  (* Same recipe as the sequential fingerprint: every (loc, taint)
     entry, sorted, hashed.  Request/reply shards own disjoint
     location sets, so concatenating their folds enumerates exactly
     the sequential shadow. *)
  let fingerprint_of ws =
    Array.fold_left
      (fun acc w ->
        E.Sh.fold (fun loc d acc -> (loc, d) :: acc) (E.shadow w.eng) acc)
      [] ws
    |> List.sort compare |> Hashtbl.hash

  let merge ws =
    match ws.(0).route with
    | `Broadcast ->
        (* full replication: shard 0 holds the whole answer *)
        let w0 = ws.(0) in
        let s = E.stats w0.eng in
        let tl, sw = E.shadow_footprint w0.eng in
        {
          m_events = s.Engine.events;
          m_sources = s.Engine.sources;
          m_sink_hits = s.Engine.sink_hits;
          m_sinks = List.rev w0.sinks;
          m_tainted_locations = tl;
          m_shadow_words = sw;
          m_fingerprint = fingerprint_of [| w0 |];
        }
    | `Request_reply ->
        let ev = ref 0
        and src = ref 0
        and hits = ref 0
        and tl = ref 0
        and sw = ref 0 in
        Array.iter
          (fun w ->
            let s = E.stats w.eng in
            ev := !ev + s.Engine.events;
            src := !src + s.Engine.sources;
            hits := !hits + s.Engine.sink_hits;
            let t, wd = E.shadow_footprint w.eng in
            tl := !tl + t;
            sw := !sw + wd)
          ws;
        (* each shard's list is already step-ascending (it processes
           its ring in forwarding order); a stable sort on the step is
           a k-way merge that keeps intra-step order (all entries of
           one step come from that event's home shard) *)
        let sinks =
          Array.fold_left (fun acc w -> List.rev_append w.sinks acc) [] ws
          |> List.stable_sort (fun (a, _, _, _) (b, _, _, _) ->
                 compare (a : int) b)
        in
        {
          m_events = !ev;
          m_sources = !src;
          m_sink_hits = !hits;
          m_sinks = sinks;
          m_tainted_locations = !tl;
          m_shadow_words = !sw;
          m_fingerprint = fingerprint_of ws;
        }

  (* The sequential reference: one worker, one shard, no exchange —
     [handle] degenerates to [E.process] on every event. *)
  let sequential ?policy program events =
    let router = Router.create ~shards:1 () in
    let xchg = create_xchg ~capacity:1 ~shards:1 () in
    let w =
      worker ?policy ~router ~route:`Broadcast ~xchg ~record_sinks:true
        ~shard:0 program
    in
    List.iter (handle w) events;
    merge [| w |]

  (* -- a cluster: workers + inbound rings + helper domains ------------- *)

  type shard_clock = { mutable busy_ns : int; mutable wall_ns : int }

  type cluster = {
    c_router : Router.t;
    c_route : route;
    c_xchg : xchg;
    workers : worker array;
    chans : Channel.t array;
    c_filter : Livefilter.t option;
    clocks : shard_clock array;
    c_trace : Dift_obs.Trace.t option;
    c_flight : Dift_obs.Flight.t option;
    c_chaos : Chaos.t option;
    c_spawn_legs : Dift_obs.Progress.leg option array;
        (** [spawn.shard<i>]: armed from just before [Domain.spawn]
            until the shard body's first instruction *)
    c_join_legs : Dift_obs.Progress.leg option array;
        (** [join.shard<i>]: armed around the join fan-in *)
    mutable domains : unit Domain.t array;
    mutable cross : int;
  }

  let cluster ?policy ?(route = `Request_reply) ?block_bits ?obs ?trace
      ?flight ?chaos ?watchdog ?(queue_capacity = 64) ?(batch_size = 64)
      ?(xchg_capacity = 256) ?(xchg_journal = false) ?(wire = `Coded)
      ?filter ~shards program =
    let router = Router.create ?block_bits ~shards () in
    let progress = Option.map Watchdog.progress watchdog in
    let xchg =
      create_xchg ~capacity:xchg_capacity ~journal:xchg_journal ?chaos
        ?progress ~shards ()
    in
    let workers =
      Array.init shards (fun s ->
          worker ?policy ?flight ~router ~route ~xchg
            ~record_sinks:
              (match route with
              | `Request_reply -> true
              | `Broadcast -> s = 0)
            ~shard:s program)
    in
    (* one interned site table, shared by every coded shard channel *)
    let table = lazy (Site.of_program program) in
    let chans =
      (* request/reply shards coordinate on every cross-shard event, so
         a lost inbound batch would strand peers mid-exchange: escalate
         injected losses on these rings to clean shard crashes *)
      let escalate = route = `Request_reply in
      Array.init shards (fun s ->
          Channel.create ?obs ?trace ?flight ?chaos ?progress ~escalate
            ~ns:(Fmt.str "parallel.shard%d" s)
            ~wire ~queue_capacity ~batch_size ~table ())
    in
    let leg_array prefix =
      match progress with
      | None -> Array.make shards None
      | Some p ->
          Array.init shards (fun s ->
              Some (Dift_obs.Progress.leg p (prefix ^ string_of_int s)))
    in
    (match progress with
    | Some p ->
        Array.iteri
          (fun s w ->
            w.w_prog <-
              Some (Dift_obs.Progress.leg p (Fmt.str "work.shard%d" s)))
          workers
    | None -> ());
    let clocks = Array.init shards (fun _ -> { busy_ns = 0; wall_ns = 0 }) in
    let c =
      {
        c_router = router;
        c_route = route;
        c_xchg = xchg;
        workers;
        chans;
        c_filter = filter;
        clocks;
        c_trace = trace;
        c_flight = flight;
        c_chaos = chaos;
        c_spawn_legs = leg_array "spawn.shard";
        c_join_legs = leg_array "join.shard";
        domains = [||];
        cross = 0;
      }
    in
    (* cascade hooks, in dependency order: the feed rings first (their
       consumers unpark and terminate), then the exchange mesh (any
       shard parked mid-exchange gets [Shard_dead] and cascades) —
       the same teardown {!abort} runs on a feeder crash, and every
       piece is idempotent *)
    (match watchdog with
    | Some w ->
        Array.iteri
          (fun s ch ->
            Watchdog.on_miss w
              ~name:(Fmt.str "parallel.shard%d" s)
              (fun () -> Channel.abort ch))
          chans;
        Watchdog.on_miss w ~name:"xchg" (fun () -> abort_xchg xchg)
    | None -> ());
    (match obs with
    | Some reg ->
        let open Dift_obs in
        Array.iteri
          (fun s (k : shard_clock) ->
            let n suffix = Fmt.str "parallel.shard%d.%s" s suffix in
            Registry.gauge_fn reg (n "busy_ns")
              ~help:"shard time spent processing batches" (fun () ->
                k.busy_ns);
            Registry.gauge_fn reg (n "wall_ns")
              ~help:"shard wall time, spawn to drain end" (fun () ->
                k.wall_ns);
            Registry.gauge_fn reg (n "utilization_pct")
              ~help:"busy / wall, percent" (fun () ->
                k.busy_ns * 100 / max 1 k.wall_ns);
            Registry.gauge_fn reg (n "exchange_sent")
              ~help:"cross-shard taint vectors pushed" (fun () ->
                c.workers.(s).sent))
          clocks;
        Registry.gauge_fn reg "parallel.router.cross_events"
          ~help:"events spanning more than one shard" (fun () -> c.cross)
    | None -> ());
    c

  let router c = c.c_router
  let cross_events c = c.cross

  let exchange_messages c =
    Array.fold_left (fun acc w -> acc + w.sent) 0 c.workers

  let feed c e =
    let forward =
      match c.c_filter with
      | None -> true
      | Some lf -> Livefilter.admit lf e
    in
    if forward then
      match c.c_route with
      | `Broadcast -> Array.iter (fun ch -> Channel.add ch e) c.chans
      | `Request_reply ->
          let mask = Router.participants c.c_router e in
          if Router.is_local mask then
            Router.iter_shards mask (fun s -> Channel.add c.chans.(s) e)
          else begin
            c.cross <- c.cross + 1;
            Router.iter_shards mask (fun s -> Channel.add c.chans.(s) e);
            (* flush every participant: no copy of a cross-shard event
               may sit in an open batch while a peer shard blocks
               awaiting one of its exchange legs *)
            Router.iter_shards mask (fun s -> Channel.flush c.chans.(s))
          end

  let spawn_one c s w =
    (* chaos [Spawn] interception: any non-Proceed action models
       [Domain.spawn] itself failing for this shard *)
    (match c.c_chaos with
    | None -> ()
    | Some ch -> (
        match Chaos.on_spawn ch with
        | Chaos.Proceed -> ()
        | Chaos.Raise_now e -> raise e
        | Chaos.Fail | Chaos.Abort_now ->
            raise
              (Chaos.Injected (Fmt.str "injected spawn failure, shard %d" s))));
    Domain.spawn (fun () ->
        (* disarm the spawn leg: the shard body is running, so the
           spawn-to-first-progress window is over *)
        (match c.c_spawn_legs.(s) with
        | Some l -> Dift_obs.Progress.leave l
        | None -> ());
        (match c.c_trace with
        | Some tr -> Dift_obs.Trace.name_track tr (Fmt.str "shard-%d" s)
        | None -> ());
        (match c.c_flight with
        | Some fl ->
            Dift_obs.Flight.name_domain fl (Fmt.str "shard-%d" s);
            Dift_obs.Flight.record fl ~cat:"run" "shard.start" ~a:s
        | None -> ());
        let k = c.clocks.(s) in
        let around_batch body =
          let t0 = now_ns () in
          (match c.c_trace with
          | Some tr -> Dift_obs.Trace.span tr ~cat:"core" "engine.batch" body
          | None -> body ());
          k.busy_ns <- k.busy_ns + (now_ns () - t0)
        in
        let t0 = now_ns () in
        Fun.protect ~finally:(fun () -> k.wall_ns <- now_ns () - t0)
        @@ fun () ->
        let f, after_batch =
          match c.c_filter with
          | None -> ((fun v -> handle_view w v), None)
          | Some lf ->
              (* publish per event (after processing), advance the
                 shard's epoch per decoded batch: the filter's
                 soundness relies on exactly this order *)
              let sh = E.shadow w.eng in
              let tainted l = not (D.is_bottom (E.Sh.get sh l)) in
              (* generation reset: republish this shard's live taint
                 (shard shadows are disjoint under request/reply and
                 identical under broadcast, so the union over slots is
                 exactly the live taint) *)
              let repopulate () =
                E.Sh.fold
                  (fun loc d () ->
                    if not (D.is_bottom d) then Livefilter.publish_loc lf loc)
                  sh ()
              in
              ( (fun v ->
                  handle_view w v;
                  Livefilter.publish lf ~tainted v),
                Some
                  (fun ~last_step ->
                    Livefilter.advance ~repopulate lf ~slot:s ~step:last_step)
              )
        in
        try Channel.drain ~around_batch ?after_batch c.chans.(s) ~f
        with ex ->
          (* unblock the application and every peer shard before
             dying, so the failure cascades instead of wedging *)
          Channel.abort c.chans.(s);
          abort_xchg c.c_xchg;
          (match c.c_flight with
          | Some fl ->
              Dift_obs.Flight.record fl ~cat:"run" "shard.crash" ~a:s
                ~detail:(Printexc.to_string ex)
          | None -> ());
          raise ex)

  let start c =
    let n = Array.length c.workers in
    let doms = Array.make n None in
    (try
       for s = 0 to n - 1 do
         (* armed from here until the shard body's first instruction:
            a domain that never gets scheduled is a watchable seam *)
         (match c.c_spawn_legs.(s) with
         | Some l -> Dift_obs.Progress.enter l
         | None -> ());
         match spawn_one c s c.workers.(s) with
         | d -> doms.(s) <- Some d
         | exception ex ->
             (* the body never ran, so it cannot disarm the leg *)
             (match c.c_spawn_legs.(s) with
             | Some l -> Dift_obs.Progress.leave l
             | None -> ());
             raise ex
       done
     with ex ->
       (* a later shard failed to spawn: tear the channels down so the
          shards already running terminate, join them, and surface one
          structured failure — no leaked domain, no partial cluster *)
       Array.iter Channel.abort c.chans;
       abort_xchg c.c_xchg;
       Array.iter
         (function
           | Some d -> ( try Domain.join d with _ -> ())
           | None -> ())
         doms;
       raise (Spawn_failure ex));
    c.domains <- Array.map Option.get doms

  let close_feed c = Array.iter Channel.close c.chans

  (* Feeder crash mid-event: a cross-shard event may have reached only
     some of its participants, leaving the home shard parked against a
     provide leg that will never come.  Tear down the feed rings *and*
     the mesh so every shard terminates (normal drain end or a clean
     [Shard_dead] cascade) and the joins in {!finish_result} return. *)
  let abort c =
    Array.iter Channel.abort c.chans;
    abort_xchg c.c_xchg

  let finish_result c =
    (* An injected failure during the trailing flush must not leak
       domains: re-close every channel (idempotent — the raising flush
       already detached its batch) so the shards still terminate. *)
    let feed_exn =
      match close_feed c with
      | () -> None
      | exception ex ->
          Array.iter
            (fun ch ->
              try Channel.close ch
              with _ -> (
                (* the raising flush detached its batch, so a second
                   close is a quiet no-op flush + ring close *)
                try Channel.close ch with _ -> Channel.abort ch))
            c.chans;
          Some ex
    in
    let exns =
      Array.mapi
        (fun s d ->
          let join () =
            match c.c_join_legs.(s) with
            | None -> Domain.join d
            | Some l ->
                Dift_obs.Progress.enter l;
                Fun.protect
                  ~finally:(fun () -> Dift_obs.Progress.leave l)
                  (fun () -> Domain.join d)
          in
          match join () with
          | () -> None
          | exception ex -> Some (s, ex))
        c.domains
    in
    c.domains <- [||];
    let dead = List.filter_map Fun.id (Array.to_list exns) in
    match (dead, feed_exn) with
    | [], None -> Ok (merge c.workers)
    | _ ->
        (* prefer the original failure over the Shard_dead cascade it
           triggered in the other shards *)
        let primary =
          match List.find_opt (fun (_, e) -> e <> Shard_dead) dead with
          | Some (_, e) -> e
          | None -> (
              match feed_exn with Some ex -> ex | None -> Shard_dead)
        in
        Error { f_primary = primary; f_shards = dead }

  let finish c =
    match finish_result c with Ok m -> m | Error f -> raise f.f_primary

  let shard_stats c =
    Array.mapi
      (fun s w ->
        {
          shard = s;
          fed = Channel.events c.chans.(s);
          handled = w.w_handled;
          batches = Channel.batches c.chans.(s);
          dropped_batches = Channel.dropped_batches c.chans.(s);
          dropped_events = Channel.dropped_events c.chans.(s);
          discarded_batches = Channel.discarded_batches c.chans.(s);
          discarded_events = Channel.discarded_events c.chans.(s);
          busy_ns = c.clocks.(s).busy_ns;
          wall_ns = c.clocks.(s).wall_ns;
          producer_stalls = Channel.producer_stalls c.chans.(s);
          consumer_waits = Channel.consumer_waits c.chans.(s);
          exchange_sent = w.sent;
          exchange_received = w.received;
        })
      c.workers

  let run_stream ?policy ?route ?block_bits ?queue_capacity ?batch_size
      ?xchg_capacity ?wire ?filter ~shards program events =
    let c =
      cluster ?policy ?route ?block_bits ?queue_capacity ?batch_size
        ?xchg_capacity ?wire ?filter ~shards program
    in
    start c;
    List.iter (feed c) events;
    finish c
end
