(** The forwarding-plane switch: one producer/consumer surface over
    either wire, so the runtimes pick the encoding with a constructor
    and nothing downstream changes.  See the interface. *)

open Dift_vm

type wire = [ `Boxed | `Coded ]

let pp_wire ppf (w : wire) =
  Fmt.string ppf (match w with `Boxed -> "boxed" | `Coded -> "coded")

type t =
  | Boxed of Event.exec Forwarder.t
  | Coded of Codec.t

let wire = function Boxed _ -> `Boxed | Coded _ -> `Coded

let add t e =
  match t with Boxed f -> Forwarder.add f e | Coded c -> Codec.feed c e

let flush = function Boxed f -> Forwarder.flush f | Coded c -> Codec.flush c
let close = function Boxed f -> Forwarder.close f | Coded c -> Codec.close c
let abort = function Boxed f -> Forwarder.abort f | Coded c -> Codec.abort c

let aborted = function
  | Boxed f -> Forwarder.aborted f
  | Coded c -> Codec.aborted c

let drain ?around_batch ?after_batch t ~f =
  match t with
  | Coded c -> Codec.drain ?around_batch ?after_batch c ~f
  | Boxed fwd ->
      (* decode-free wire: refill one scratch view per event.  The
         boxed wire has no batch-boundary hook, so [after_batch]
         degenerates to a per-event call — a sound refinement for its
         one client, the liveness filter's epoch advance. *)
      let scratch = ref None in
      Forwarder.drain ?around_batch fwd ~f:(fun (e : Event.exec) ->
          let v =
            match !scratch with
            | Some v -> v
            | None ->
                let v =
                  Event.view_create ~func:e.Event.func ~instr:e.Event.instr
                in
                scratch := Some v;
                v
          in
          Event.view_fill v e;
          f v;
          match after_batch with
          | Some g -> g ~last_step:e.Event.step
          | None -> ())

let events = function
  | Boxed f -> Forwarder.events f
  | Coded c -> Codec.events c

let batches = function
  | Boxed f -> Forwarder.batches f
  | Coded c -> Codec.batches c

let dropped_batches = function
  | Boxed f -> Forwarder.dropped_batches f
  | Coded c -> Codec.dropped_batches c

let dropped_events = function
  | Boxed f -> Forwarder.dropped_events f
  | Coded c -> Codec.dropped_events c

let discarded_batches = function
  | Boxed f -> Forwarder.discarded_batches f
  | Coded c -> Codec.discarded_batches c

let discarded_events = function
  | Boxed f -> Forwarder.discarded_events f
  | Coded c -> Codec.discarded_events c

let consumed_batches = function
  | Boxed f -> Forwarder.consumed_batches f
  | Coded c -> Codec.consumed_batches c

let consumed_events = function
  | Boxed f -> Forwarder.consumed_events f
  | Coded c -> Codec.consumed_events c

let producer_stalls = function
  | Boxed f -> Forwarder.producer_stalls f
  | Coded c -> Codec.producer_stalls c

let consumer_waits = function
  | Boxed f -> Forwarder.consumer_waits f
  | Coded c -> Codec.consumer_waits c

let in_flight_batches = function
  | Boxed f -> Forwarder.in_flight_batches f
  | Coded c -> Codec.in_flight_batches c

(** Build a channel of the requested wire with shared geometry.  The
    coded wire's [events_per_batch] is the boxed wire's [batch_size],
    so both buffer [queue_capacity * batch_size] events. *)
let create ?obs ?trace ?flight ?chaos ?progress ?escalate ?ns ~wire
    ~queue_capacity ~batch_size ~table () =
  match wire with
  | `Boxed ->
      Boxed
        (Forwarder.create ?obs ?trace ?flight ?chaos ?progress ?escalate ?ns
           ~queue_capacity ~batch_size ())
  | `Coded ->
      Coded
        (Codec.create ?obs ?trace ?flight ?chaos ?progress ?escalate ?ns
           ~queue_capacity ~events_per_batch:batch_size
           ~table:(Lazy.force table) ())
