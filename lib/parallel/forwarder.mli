(** The event-forwarding channel between the application core and the
    DIFT helper core (paper §2.1): batches of {!Dift_vm.Event.exec}
    records carried over a bounded {!Spsc} ring.

    The paper's forwarding set — memory addresses and values, input
    words, and control-flow outcomes — is exactly what an
    {!Dift_vm.Event.exec} record carries, so whole event records are
    forwarded.  To amortise channel synchronisation, the producer
    accumulates events into fixed-size batches and pushes one batch
    (one ring slot) at a time; the ring capacity is therefore counted
    in {e batches}, and the channel buffers up to
    [queue_capacity * batch_size] events.  Batch backing arrays are
    recycled from the consumer back to the producer over an internal
    free list, so steady-state forwarding allocates nothing per
    batch.

    Shutdown protocol: the producer calls {!close}, which flushes the
    trailing partial batch and closes the ring; {!drain} then returns
    once every forwarded event has been consumed.  If the consumer
    fails, {!abort} permanently unblocks the producer (further events
    are dropped and counted) so the application can finish and observe
    the helper's exception at join time.

    See [docs/forwarding-protocol.md] for the full protocol. *)

open Dift_vm

type t

(** [create ~queue_capacity ~batch_size] — a ring of [queue_capacity]
    batch slots, each holding up to [batch_size] events.

    With [?obs], the channel registers its [parallel.ring.*] gauges
    (capacity, stalls, waits, drops — all backed by the ring's atomic
    counters, so a snapshot from any domain is safe) and records the
    [parallel.forwarder.batch_occupancy] histogram on every push.

    With [?trace], the channel additionally records the execution
    timeline of every ring transfer (category [parallel]): each
    pushed batch becomes a [ring.enqueue] span on the producer's
    track — named [ring.stall] when the push parked on a full ring, so
    backpressure waves are visible — each pop a [ring.dequeue] span on
    the consumer's track (named [ring.wait] when it parked on an empty
    ring, a helper idle episode), and both sides sample the
    [ring.occupancy] counter track after every transfer.
    @raise Invalid_argument if either size is [< 1]. *)
val create :
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  queue_capacity:int ->
  batch_size:int ->
  unit ->
  t

(** {1 Producer (application-core) side} *)

(** Forward one event; pushes the current batch when it reaches
    [batch_size] (blocking while the ring is full). *)
val add : t -> Event.exec -> unit

(** Push the current partial batch, if any. *)
val flush : t -> unit

(** Flush and close the ring: no more events will be forwarded. *)
val close : t -> unit

(** Events forwarded so far. *)
val events : t -> int

(** Batches pushed so far (ring messages). *)
val batches : t -> int

(** Times the producer blocked on a full ring (backpressure; the
    wall-clock analogue of the simulator's [stall_cycles]). *)
val producer_stalls : t -> int

(** Batches dropped after an {!abort}. *)
val dropped : t -> int

(** {1 Consumer (helper-core) side} *)

(** [drain t ~f] applies [f] to every forwarded event in program
    order; returns when the channel is closed and fully drained.

    [around_batch] wraps the processing of each popped batch (the
    thunk it receives runs [f] over the whole batch); the runtime uses
    it to time helper-domain busy periods without a per-event clock
    read.  It must call the thunk exactly once. *)
val drain :
  ?around_batch:((unit -> unit) -> unit) -> t -> f:(Event.exec -> unit) -> unit

(** Consumer gives up (helper crash): unblocks the producer for good. *)
val abort : t -> unit

(** Times the consumer blocked on an empty ring (helper idle
    episodes). *)
val consumer_waits : t -> int
