(** The batched forwarding channel between an application core and a
    DIFT helper core (paper §2.1): batches of elements — usually
    {!Dift_vm.Event.exec} records — carried over a bounded {!Spsc}
    ring.

    The paper's forwarding set — memory addresses and values, input
    words, and control-flow outcomes — is exactly what an
    {!Dift_vm.Event.exec} record carries, so whole event records are
    forwarded.  To amortise channel synchronisation, the producer
    accumulates elements into fixed-size batches and pushes one batch
    (one ring slot) at a time; the ring capacity is therefore counted
    in {e batches}, and the channel buffers up to
    [queue_capacity * batch_size] elements.  Batch backing arrays are
    recycled from the consumer back to the producer over an internal
    free list, so steady-state forwarding allocates nothing per
    batch.

    The channel is used in two places: {!Parallel.run} forwards the
    whole event stream over a single channel to its one helper, and
    {!Parallel.run_sharded} creates one channel per shard (with a
    per-shard [?ns] metric namespace) and routes each event to the
    shards that participate in it.

    Shutdown protocol: the producer calls {!close}, which flushes the
    trailing partial batch and closes the ring; {!drain} then returns
    once every forwarded element has been consumed.  If the consumer
    fails, {!abort} permanently unblocks the producer (further
    elements are dropped and counted) so the application can finish
    and observe the helper's exception at join time.

    See [docs/forwarding-protocol.md] for the full protocol. *)

(** A forwarding channel carrying elements of type ['a].  Strictly one
    producer domain and one consumer domain, like the underlying
    {!Spsc} ring. *)
type 'a t

(** [create ~queue_capacity ~batch_size ()] — a ring of
    [queue_capacity] batch slots, each holding up to [batch_size]
    elements.

    With [?obs], the channel registers its ring gauges (capacity,
    stalls, waits, drops — all backed by the ring's atomic counters,
    so a snapshot from any domain is safe) and records a
    batch-occupancy histogram on every push.  [?ns] sets the metric
    name prefix (default ["parallel"], giving [parallel.ring.*] and
    [parallel.forwarder.*]); the sharded runtime passes
    [parallel.shard<i>] so each shard's channel publishes its own
    series.

    With [?trace], the channel additionally records the execution
    timeline of every ring transfer (category [parallel]): each
    pushed batch becomes a [ring.enqueue] span on the producer's
    track — named [ring.stall] when the push parked on a full ring, so
    backpressure waves are visible — each pop a [ring.dequeue] span on
    the consumer's track (named [ring.wait] when it parked on an empty
    ring, a helper idle episode), and both sides sample the
    [ring.occupancy] counter track after every transfer.

    With [?flight], the channel records one bounded flight-recorder
    event per channel operation on the acting domain's ring, in the
    category of the channel's [?ns]: [ring.push]/[ring.pop] (a = batch
    length, b = ring occupancy after), [ring.drop]/[ring.discard]
    (a = batch length, b = running loss count), [ring.close]
    (a = events, b = batches), [ring.abort], and [ring.sweep]
    (a = batches, b = events recovered by the post-abort sweep).  See
    the event catalogue in [docs/observability.md].

    With [?chaos], every batch push and batch pop consults the
    fault-injection plan (see {!Chaos}): the channel derives a
    {!Chaos.inst} for its namespace, injected push failures become
    counted {!dropped_batches}, injected pop failures become counted
    {!discarded_batches}, and injected raises surface from
    {!flush}/{!drain} after accounting.  The internal free-list ring
    is a second seam under the namespace [ring.free.<ns>], matched by
    {e explicitly targeted} rules only (a bare [pop@1=raise] still
    means the event ring): a [drop] skips recycling once, an [abort]
    disables the free ring for good (every batch thereafter falls to
    the GC — pure degradation, no event loss), a [raise] crashes the
    side it intercepts.  Without [?chaos] the channel takes the
    direct [Spsc] path — no per-operation overhead.

    With [?progress], the channel registers two {!Dift_obs.Progress}
    legs — [<ns>.push] and [<ns>.pop] — armed while the corresponding
    side is parked (full ring / empty ring) and ticked once per
    delivered resp. consumed batch, so a watchdog can tell a busy
    channel from a wedged one.  The free-list ring registers no legs:
    it never blocks.  Without [?progress] the hot path is untouched.

    [escalate] (default [false]) marks a channel whose losses would
    wedge a protocol riding on it: injected drop/abort faults are then
    served as raises instead of counted losses (see
    {!Chaos.instance}).  The sharded engine sets it on the
    request/reply feed rings.
    @raise Invalid_argument if either size is [< 1]. *)
val create :
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?progress:Dift_obs.Progress.t ->
  ?escalate:bool ->
  ?ns:string ->
  queue_capacity:int ->
  batch_size:int ->
  unit ->
  'a t

(** {1 Producer (application-core) side} *)

(** Forward one element; pushes the current batch when it reaches
    [batch_size] (blocking while the ring is full). *)
val add : 'a t -> 'a -> unit

(** [add_n t e n] forwards one element that stands for [n] logical
    events — an encoded multi-event batch (see {!Codec}).  Every event
    counter on the channel ({!events}, {!dropped_events},
    {!discarded_events}, {!consumed_events}) moves by [n]; batch and
    ring-occupancy accounting still move by one element. *)
val add_n : 'a t -> 'a -> int -> unit

(** Push the current partial batch, if any.  The sharded router calls
    this after every cross-shard event so no participant's copy can
    sit in an open batch while a peer shard blocks waiting for it. *)
val flush : 'a t -> unit

(** Flush and close the ring: no more elements will be forwarded. *)
val close : 'a t -> unit

(** Elements accepted by {!add} so far (delivered or not). *)
val events : 'a t -> int

(** Batches actually delivered to the ring (ring messages).  A batch
    lost to an abort or an injected failure is {e not} counted here —
    it lands in {!dropped_batches} instead, so with [batch_size = 1]
    the books reconcile exactly:
    [events = batches + dropped_events] after {!close}. *)
val batches : 'a t -> int

(** Times the producer blocked on a full ring (backpressure; the
    wall-clock analogue of the simulator's [stall_cycles]). *)
val producer_stalls : 'a t -> int

(** Batches lost on the producer side — pushed after an {!abort}, or
    failed by an injected fault.  Alias: {!dropped}. *)
val dropped_batches : 'a t -> int

(** Elements inside {!dropped_batches}. *)
val dropped_events : 'a t -> int

(** Same as {!dropped_batches}. *)
val dropped : 'a t -> int

(** Whether the underlying ring has been {!abort}ed (atomic; readable
    from any domain). *)
val aborted : 'a t -> bool

(** {1 Consumer (helper-core) side} *)

(** [drain t ~f] applies [f] to every forwarded element in program
    order; returns when the channel is closed and fully drained.

    [around_batch] wraps the processing of each popped batch (the
    thunk it receives runs [f] over the whole batch); the runtime uses
    it to time helper-domain busy periods without a per-event clock
    read.  It must call the thunk exactly once.

    If [f] (or [around_batch]) raises, the channel is aborted before
    the exception propagates, so a producer parked against a full ring
    is released — its pushes become counted drops instead of a
    wedge.

    {b Abort accounting.}  When drain ends by abort (its own, an
    injected one, or a raise), it {e sweeps} the batches still
    buffered in the ring into {!discarded_batches} — they were
    delivered but can never be consumed, and the producer cannot
    publish after an abort, so without the sweep up to
    [queue_capacity] batches would vanish from the books.  After both
    domains quiesce the ledger closes exactly:
    [batches = consumed_batches + discarded_batches +
    in_flight_batches], where {!in_flight_batches} is non-zero only
    for a push that raced the abort flag itself. *)
val drain :
  ?around_batch:((unit -> unit) -> unit) -> 'a t -> f:('a -> unit) -> unit

(** Consumer gives up (helper crash): unblocks the producer for good. *)
val abort : 'a t -> unit

(** Times the consumer blocked on an empty ring (helper idle
    episodes). *)
val consumer_waits : 'a t -> int

(** Batches popped but not processed — an injected pop failure
    discarded them, or the post-abort sweep recovered them from the
    ring (consumer-side mirror of {!dropped_batches}; always [0]
    without [?chaos] on a clean run). *)
val discarded_batches : 'a t -> int

(** Elements inside {!discarded_batches}. *)
val discarded_events : 'a t -> int

(** Batches fully processed by {!drain} (every element saw [f]). *)
val consumed_batches : 'a t -> int

(** Elements inside {!consumed_batches}. *)
val consumed_events : 'a t -> int

(** Batches delivered to the ring but not yet popped (racy snapshot,
    exact when both sides have quiesced).  The residual term of the
    post-abort ledger — see {!drain}. *)
val in_flight_batches : 'a t -> int
