(** The sharded DIFT runtime's worker layer: N helper shards, each an
    unmodified sequential {!Dift_core.Engine} over the shard's slice
    of shadow memory, plus the cross-shard taint exchange.

    {2 Exact sharding by shadow windowing}

    A {!Router} partitions the location space; each worker owns the
    shadow entries of its own shard and nothing else.  An event whose
    locations span shards is delivered to every participant, and each
    participant derives its role from the event alone:

    - {e providers} (owners of read locations) send the taints of
      their read locations to the home shard, positional on the
      event's read list;
    - the {e home} shard (owner of the first written location) windows
      those remote taints into its own shadow with plain [Sh.set],
      runs the ordinary sequential [Engine.process] — so policies,
      sinks, stats and write stamping behave {e exactly} as in the
      sequential engine — then reads the remote write taints back out,
      ships them, and clears every remote location again;
    - {e receivers} (owners of written locations) await the home's
      write vector and store their share.

    The two legs are the "read-request/taint-reply" exchange of
    [docs/forwarding-protocol.md]; messages travel over a full mesh of
    {!Spsc} rings, one per ordered shard pair.  Because rings are
    FIFO, every shard processes its inbound events in global step
    order, and providers always send before receivers await, the
    protocol is deadlock-free (the argument is spelled out in the
    protocol document).

    The [`Request_reply] route is exact for every policy {e except}
    [propagate_control], whose per-thread control state entangles all
    events; {!val-worker} rejects that combination.  The [`Broadcast]
    route replicates every event to every shard instead — each shard
    computes the full answer redundantly, shard 0 reports — which
    supports every policy (including control flow) at the cost of no
    tracking-work reduction; it is the conservative end of the
    bandwidth-versus-synchronisation trade.

    This module is the machinery under {!Parallel.run_sharded}; it is
    exposed so tests can drive raw event streams through real domain
    clusters ({!Make.run_stream}) and the benchmark harness can replay
    recorded exchanges against isolated workers. *)

open Dift_isa
open Dift_vm
open Dift_core

(** Cross-shard resolution strategy: [`Request_reply] is the exact
    two-phase exchange over disjoint shards; [`Broadcast] is full
    replication (every shard sees every event, shard 0 reports). *)
type route = [ `Request_reply | `Broadcast ]

(** Prints [request-reply] or [broadcast] (the same spelling the CLI
    accepts). *)
val pp_route : route Fmt.t

(** Per-shard activity summary, reported by {!Make.shard_stats} after
    a cluster run. *)
type shard_stat = {
  shard : int;  (** shard index *)
  fed : int;  (** events the router handed this shard's channel *)
  handled : int;  (** events delivered to this shard (incl. assists) *)
  batches : int;  (** inbound ring batches actually delivered *)
  dropped_batches : int;
      (** inbound batches lost producer-side (post-abort or injected) *)
  dropped_events : int;  (** events inside [dropped_batches] *)
  discarded_batches : int;
      (** inbound batches popped but not processed (injected) *)
  discarded_events : int;  (** events inside [discarded_batches] *)
  busy_ns : int;  (** time spent inside batch processing *)
  wall_ns : int;  (** helper wall time, spawn to drain end *)
  producer_stalls : int;  (** app blocked on this shard's full ring *)
  consumer_waits : int;  (** shard blocked on its empty ring *)
  exchange_sent : int;  (** cross-shard taint vectors pushed *)
  exchange_received : int;  (** cross-shard taint vectors popped *)
}

(** Raised (and cascaded) when a peer shard died mid-protocol: an
    exchange pop returned end-of-stream because some shard aborted the
    mesh.  {!Make.finish} re-raises the original failure in
    preference to this cascade marker. *)
exception Shard_dead

(** Raised by {!Make.start} when a helper domain could not be spawned
    (the payload is the underlying spawn exception).  The cluster is
    already torn down when this escapes: channels aborted, every
    previously spawned shard joined. *)
exception Spawn_failure of exn

(** The structured outcome of a failed cluster run, as reported by
    {!Make.finish_result}: the primary exception (the first
    non-{!Shard_dead} failure, falling back to a close-time injected
    failure and then to {!Shard_dead} itself) plus every shard that
    died with its own exception. *)
type failure = {
  f_primary : exn;
  f_shards : (int * exn) list;  (** (shard index, its exception) *)
}

val pp_failure : failure Fmt.t

(** The worker layer over one taint domain. *)
module Make (D : Taint.DOMAIN) : sig
  (** This worker's engine instantiation (independent of any other
      [Engine.Make (D)] application). *)
  module E : module type of Engine.Make (D)

  (** {1 The exchange mesh} *)

  (** One exchange message: the owning step (a FIFO self-check) and a
      taint vector positional on the event's read or write list. *)
  type msg = int * D.t array

  (** A full mesh of {!Spsc} rings, one per ordered shard pair. *)
  type xchg

  (** [create_xchg ~shards ()] builds the mesh.  [capacity] bounds
      each ring (any value [>= 1] is deadlock-free; it only trades
      memory against provider stalls).  With [~journal:true] every
      consumed message is also recorded, retrievable per ring with
      {!journal} — the benchmark harness uses this to replay a shard's
      inbound exchange against an isolated worker.

      With [?chaos], every ring derives a fault-injection instance
      under the namespace [xchg.<src>.<dst>].  Exchange messages are
      protocol legs, so the terminal faults escalate: an injected
      [Drop] or [Raise] crashes the intercepting shard (which aborts
      the mesh — the failure cascades as {!Shard_dead} instead of
      wedging a waiting peer), and [Abort] tears the whole mesh down.
      [Stall]/[Delay] only sleep, leaving results bit-identical.

      With [?progress], every ring's blocking push/pop parks publish
      watchdog progress epochs on legs [xchg.<src>.<dst>.push]/[.pop]
      (see {!Watchdog}).
      @raise Invalid_argument if [capacity < 1]. *)
  val create_xchg :
    ?capacity:int ->
    ?journal:bool ->
    ?chaos:Chaos.t ->
    ?progress:Dift_obs.Progress.t ->
    shards:int ->
    unit ->
    xchg

  (** Abort every ring in the mesh: blocked pops return, blocked
      pushes drop.  Used to cascade a shard failure. *)
  val abort_xchg : xchg -> unit

  (** The messages consumed from ring [src → dst], oldest first;
      [[]] unless the mesh was created with [~journal:true]. *)
  val journal : xchg -> src:int -> dst:int -> msg list

  (** Push recorded messages back into ring [src → dst] ahead of an
      isolated replay.  The ring capacity must accommodate them. *)
  val prefill : xchg -> src:int -> dst:int -> msg list -> unit

  (** {1 Workers} *)

  type worker

  (** [worker ~router ~route ~xchg ~record_sinks ~shard program] is
      shard [shard]'s engine plus protocol state.  With
      [record_sinks], every sink callback is recorded (step, sink,
      taint, event) for the deterministic merge.
      @raise Invalid_argument when [route] is [`Request_reply] and the
      policy enables [propagate_control] (see the module preamble). *)
  val worker :
    ?policy:Policy.t ->
    ?flight:Dift_obs.Flight.t ->
    router:Router.t ->
    route:route ->
    xchg:xchg ->
    record_sinks:bool ->
    shard:int ->
    Program.t ->
    worker

  (** Process one routed event: run it locally, or play this shard's
      home/provider/receiver legs of the cross-shard exchange.  May
      block on the mesh; raises {!Shard_dead} if a peer aborted. *)
  val handle : worker -> Event.exec -> unit

  (** {!handle} over a decoded {!Event.view} — the zero-copy path the
      coded wire drains through ({!Channel.drain} hands every shard a
      reused scratch view).  The view is read during the call only. *)
  val handle_view : worker -> Event.view -> unit

  (** The shard's underlying engine (its shadow holds only owned
      locations once all events are handled). *)
  val engine : worker -> E.t

  (** Events this worker handled (including assist-only legs). *)
  val handled : worker -> int

  (** Exchange vectors this worker pushed. *)
  val exchange_sent : worker -> int

  (** Exchange vectors this worker popped. *)
  val exchange_received : worker -> int

  (** {1 Deterministic merge} *)

  (** The order-independent union of every shard's results, directly
      comparable against a sequential run. *)
  type merged = {
    m_events : int;  (** engine events (each event has one home) *)
    m_sources : int;  (** taint injections *)
    m_sink_hits : int;  (** sinks reached by non-bottom taint *)
    m_sinks : (int * Engine.sink * D.t * Event.exec) list;
        (** every sink callback, globally step-ordered *)
    m_tainted_locations : int;  (** summed over disjoint shards *)
    m_shadow_words : int;  (** summed over disjoint shards *)
    m_fingerprint : int;
        (** hash of the sorted (loc, taint) entries of the union
            shadow — same recipe as the sequential fingerprint *)
  }

  (** Merge the workers of one cluster (call only after all domains
      joined).  Request/reply sums disjoint shards; broadcast reports
      shard 0. *)
  val merge : worker array -> merged

  (** The sequential reference: one engine processing [events] in
      order, reported in the same {!merged} shape. *)
  val sequential : ?policy:Policy.t -> Program.t -> Event.exec list -> merged

  (** {1 Clusters: workers + inbound rings + helper domains} *)

  type cluster

  (** [cluster ~shards program] assembles a router, the exchange mesh,
      one worker and one inbound {!Forwarder} channel per shard
      (metric namespace [parallel.shard<i>] when [?obs] is given, plus
      per-shard [busy_ns]/[wall_ns]/[utilization_pct] gauges and the
      [parallel.router.cross_events] counter).  No domains run yet —
      call {!start}.

      With [?chaos], the same fault plan is threaded through every
      seam: each shard's inbound channel (namespace
      [parallel.shard<i>]), every exchange ring ([xchg.<src>.<dst>];
      see {!create_xchg}), and {!start}'s domain spawns.

      With [?flight], every seam also records bounded flight-recorder
      events on the acting domain's ring: the inbound channels'
      [ring.*] events (see {!Forwarder.create}), exchange legs as
      [xchg.push]/[xchg.pop]/[xchg.dead] (category [xchg],
      [a] = source shard, [b] = destination), shard lifecycle
      [shard.start]/[shard.crash] (category [run]), and the engines'
      [engine.progress] milestones.
      [?wire] picks the forwarding-plane encoding for every shard's
      inbound channel (default [`Coded] — the de-boxed {!Codec} plane;
      [`Boxed] forwards whole event records as before); both wires are
      result-identical.  With [?filter] (created by the caller with
      one slot per shard), the feeder consults the producer-side
      taint-liveness filter before routing each event, and every shard
      publishes taint and advances its epoch as it drains — see
      {!Livefilter} for the soundness argument.

      With [?watchdog], every blocking seam registers a progress leg
      into the watchdog's table — feed rings
      ([parallel.shard<i>.push]/[.pop]), exchange rings
      ([xchg.<src>.<dst>.push]/[.pop]), spawn windows
      ([spawn.shard<i>]), join fan-in ([join.shard<i>]) — plus a
      per-view work pulse ([work.shard<i>]), and the cluster registers
      its cascade hooks (abort each feed channel, then the mesh) so a
      deadline miss tears the run down in dependency order.  The
      supervisor must consult {!Watchdog.fired} after
      {!finish_result}: a post-cascade run can complete looking
      ordinary.
      @raise Invalid_argument for [shards < 1] or non-positive channel
      geometry. *)
  val cluster :
    ?policy:Policy.t ->
    ?route:route ->
    ?block_bits:int ->
    ?obs:Dift_obs.Registry.t ->
    ?trace:Dift_obs.Trace.t ->
    ?flight:Dift_obs.Flight.t ->
    ?chaos:Chaos.t ->
    ?watchdog:Watchdog.t ->
    ?queue_capacity:int ->
    ?batch_size:int ->
    ?xchg_capacity:int ->
    ?xchg_journal:bool ->
    ?wire:Channel.wire ->
    ?filter:Livefilter.t ->
    shards:int ->
    Program.t ->
    cluster

  (** The cluster's routing topology. *)
  val router : cluster -> Router.t

  (** Route one event from the application domain: deliver it to every
      participant shard's inbound channel, flushing all of them when
      the event crosses shards (see {!Forwarder.flush}).  [`Broadcast]
      delivers every event to every shard. *)
  val feed : cluster -> Event.exec -> unit

  (** Spawn one helper domain per shard, each draining its inbound
      channel through {!handle}.  A failing shard aborts its channel
      and the whole mesh so the failure cascades instead of wedging.
      @raise Spawn_failure if a domain cannot be spawned; the already
      spawned shards are joined and every channel aborted first, so
      the cluster never leaks a domain. *)
  val start : cluster -> unit

  (** Close every inbound channel (flushing trailing batches): the
      shutdown fan-in.  {!finish} calls this; exposed for drivers that
      need to stop feeding early. *)
  val close_feed : cluster -> unit

  (** Emergency teardown after a feeder crash mid-event: aborts every
      inbound channel and the exchange mesh.  A cross-shard event that
      reached only some participants would otherwise strand its home
      shard on a provide leg forever; after [abort], every shard
      terminates (normal drain end or the [Shard_dead] cascade) and
      {!finish_result}'s joins return.  Call it before
      {!finish_result} when the domain feeding {!feed} raised. *)
  val abort : cluster -> unit

  (** Close the channels, join every helper domain and merge.
      Re-raises the first non-{!Shard_dead} helper failure, or
      {!Shard_dead} if only the cascade markers remain. *)
  val finish : cluster -> merged

  (** Supervised variant of {!finish}: always joins every domain
      (never leaks one), and reports failures as a structured
      {!failure} value instead of re-raising, so callers can inspect
      which shards died and still read partial {!shard_stats}. *)
  val finish_result : cluster -> (merged, failure) result

  (** Events that crossed shards (request/reply route only). *)
  val cross_events : cluster -> int

  (** Total exchange vectors pushed across the mesh. *)
  val exchange_messages : cluster -> int

  (** Per-shard activity after {!finish}. *)
  val shard_stats : cluster -> shard_stat array

  (** [run_stream ~shards program events] — cluster, start, feed the
      whole list, finish.  The test-suite driver for comparing
      sharded(N) against {!sequential} on arbitrary streams. *)
  val run_stream :
    ?policy:Policy.t ->
    ?route:route ->
    ?block_bits:int ->
    ?queue_capacity:int ->
    ?batch_size:int ->
    ?xchg_capacity:int ->
    ?wire:Channel.wire ->
    ?filter:Livefilter.t ->
    shards:int ->
    Program.t ->
    Event.exec list ->
    merged
end
