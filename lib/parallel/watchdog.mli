(** Watchdog deadlines and timeout-and-cascade shutdown for the
    parallel runtimes.

    The supervised-shutdown layer (PR "fault-injection and supervised
    shutdown") guarantees that a {e crash} on any leg cascades
    cleanly.  A {e wedge} — a peer that stops making progress without
    dying (a stall fault, a scheduling pathology, a deadlocked
    consumer) — previously hung the run forever.  This module closes
    that gap: every blocking seam of both runtimes publishes a
    progress epoch into a shared {!Dift_obs.Progress} table, and one
    watchdog (a {!Dift_obs.Sampler} job, so it can share the heartbeat
    sampler's domain) checks the table against configurable deadlines
    and, on a miss, drives the same idempotent abort cascade the crash
    paths use — so a wedged run terminates with a structured
    [`Deadline] error instead of hanging.

    {b Miss semantics — why there are no false positives.}  A leg's
    epoch parity says whether it is inside a blocking region
    ({!Dift_obs.Progress}); seams also {e tick} their leg once per
    unit of work.  A leg misses its deadline iff all three hold for at
    least the leg's deadline [D]:
    - the leg is {e armed} (parked inside a blocking region),
    - the leg's own epoch has not changed for [D],
    - the {e global} epoch sum has not changed for [D].

    The global condition is the load-bearing one: a consumer parked on
    an empty ring while the application computes between batches, or a
    join leg armed while a helper drains a long backlog, are armed and
    frozen for arbitrarily long — but some other leg is ticking, so
    the sum moves and nothing fires.  A genuine wedge, by
    construction, freezes {e every} leg (whatever the stalled side
    was feeding or draining backs up), so the sum freezes too, and the
    armed leg with the longest block names the stalled seam.  The cost
    of this precision: a wedge is detected only once the whole
    pipeline has backed up, which on a bounded ring takes at most one
    ring's worth of slack after the stall.

    {b Cascade.}  Supervisors register teardown hooks ({!on_miss}) in
    dependency order — feed channels before the exchange mesh, one
    hook per abortable resource, every hook idempotent (they are the
    same aborts the crash paths run).  On a miss, hooks whose name is
    a prefix of the stalled seam run first (the resource the wedge
    sits on), then the rest in registration order; each hook runs
    under its own exception handler.  The aborts unpark every blocked
    side, the helpers terminate, and the supervisor — which must
    consult {!fired} after its joins — surfaces the structured
    [`Deadline] error.

    One watchdog supervises one run: create it, pass it to
    [Parallel.run_result ~watchdog] / [run_sharded_result ~watchdog],
    and {!stop} it after the run returns.  Hooks and legs accumulate
    per run; reuse across runs is not supported. *)

(** {1 Deadlines} *)

(** A default deadline plus per-seam overrides, matched by {e prefix}
    of the seam name (first matching override wins).  Seam names:
    [parallel.push]/[parallel.pop] (two-domain ring),
    [parallel.shard<i>.push]/[.pop] (shard feed rings),
    [xchg.<src>.<dst>.push]/[.pop] (exchange mesh),
    [spawn.helper]/[spawn.shard<i>] (spawn to first progress),
    [join.helper]/[join.shard<i>] (join fan-in). *)
type deadlines

(** [deadlines ?overrides default_ms].
    @raise Invalid_argument on a non-positive deadline or an empty
    prefix. *)
val deadlines : ?overrides:(string * int) list -> int -> deadlines

(** Parse the [--deadline-ms] grammar, mirroring the fault-plan one:
    {v
spec     := default_ms (';' override)*
override := seam_prefix '=' ms
    v}
    e.g. [500], [500;xchg=200;join.helper=2000]. *)
val deadlines_of_string : string -> (deadlines, string) result

(** Render in the {!deadlines_of_string} grammar (round-trips). *)
val deadlines_to_string : deadlines -> string

(** The deadline for a seam: first override whose prefix matches, else
    the default. *)
val deadline_ms : deadlines -> string -> int

(** {1 Misses} *)

type miss = {
  m_seam : string;  (** the stalled seam (leg name) *)
  m_epoch : int;  (** its frozen epoch (odd: armed) *)
  m_blocked_ns : int;  (** how long it had been frozen when detected *)
  m_deadline_ns : int;  (** the deadline it missed *)
  m_armed : (string * int) list;
      (** every armed leg at detection time, with epochs — the
          blocked-seam portrait of the wedge *)
}

(** The structured error surfaced on the [`Deadline] leg. *)
exception Deadline_exceeded of miss

val pp_miss : miss Fmt.t

(** {1 The watchdog} *)

type t

(** [create ?obs ?flight ?sampler deadlines] — a fresh watchdog with
    its own empty {!progress} table, checking on [?sampler] (shared
    with e.g. the heartbeat) or on a private sampler stopped by
    {!stop}.  The check interval is a quarter of the shortest
    configured deadline, clamped to [2..50] ms, so a miss is detected
    within roughly 1.25x its deadline.  With [?obs], publishes
    [watchdog.checks] and [watchdog.fired] gauges plus the progress
    table's own.  With [?flight], a miss records [watchdog.miss]
    (detail = seam, a/b = blocked/deadline ms) and one
    [watchdog.cascade] event per hook run, on the detecting domain. *)
val create :
  ?obs:Dift_obs.Registry.t ->
  ?flight:Dift_obs.Flight.t ->
  ?sampler:Dift_obs.Sampler.t ->
  deadlines ->
  t

(** The progress table the supervised run's seams register into. *)
val progress : t -> Dift_obs.Progress.t

(** Register a cascade hook (idempotent teardown of one resource), in
    dependency order.  [name] should be the seam-name prefix of the
    resource it aborts — hooks prefixing the stalled seam run first.
    Callable from the supervising domain before and during the run. *)
val on_miss : t -> name:string -> (unit -> unit) -> unit

(** The miss, once one has fired (atomic; readable from any domain).
    Supervisors consult this after their joins: a post-cascade run can
    otherwise look like an ordinary completion. *)
val fired : t -> miss option

(** Deadline checks run so far (atomic). *)
val checks : t -> int

(** The configured deadlines. *)
val deadline_spec : t -> deadlines

(** Run one deadline check synchronously on the calling domain
    (serialized with the sampler's checks).  Deterministic tests use
    this instead of waiting out the sampler interval. *)
val check_now : t -> unit

(** Unschedule the check job (synchronously — no check is in flight
    once this returns) and stop the private sampler if one was
    created.  Does not clear {!fired}. *)
val stop : t -> unit
