(** Sharding topology for the N-helper runtime; see the interface.

    Everything here is pure arithmetic over the integer {!Loc}
    encoding, so the application domain and every helper domain can
    evaluate the same routing function on the same event and agree on
    the verdict without sharing any state. *)

open Dift_vm

type t = { shards : int; block_bits : int }

(* 2^6 = 64 locations per block = exactly [Reg.count], so a whole
   register frame is one block and plain ALU traffic (reads and write
   inside one activation) stays on one shard; consecutive frames, and
   consecutive 64-word memory blocks, round-robin across shards. *)
let default_block_bits = 6

(* Participant sets are int bitmasks, one bit per shard. *)
let max_shards = Sys.int_size - 2

let create ?(block_bits = default_block_bits) ~shards () =
  if shards < 1 then
    invalid_arg (Fmt.str "Router.create: shards = %d < 1" shards);
  if shards > max_shards then
    invalid_arg
      (Fmt.str "Router.create: shards = %d > %d" shards max_shards);
  if block_bits < 0 || block_bits > 30 then
    invalid_arg
      (Fmt.str "Router.create: block_bits = %d outside [0, 30]" block_bits);
  { shards; block_bits }

let shards t = t.shards
let block_bits t = t.block_bits

(* [Loc] packs the plane tag in bit 0 (mem: [a lsl 1]; reg:
   [idx lsl 1 lor 1]), so [loc lsr 1] recovers the per-plane index.
   Both planes share the block ring; a shard owns locations from both. *)
let shard_of_loc t loc = (loc lsr 1) lsr t.block_bits mod t.shards

let owns t shard loc = shard_of_loc t loc = shard

(* The home shard executes the engine transfer function for the event:
   the owner of the first write if any (it keeps most stores local),
   else the owner of the first read (sink-only events such as [Br] and
   [Sys Write] evaluate where their operand taint lives), else a
   step-round-robin shard for events touching no tracked location. *)
let home_of t (e : Event.exec) =
  match e.writes with
  | w :: _ -> shard_of_loc t w
  | [] -> (
      match e.reads with
      | r :: _ -> shard_of_loc t r
      | [] -> e.step mod t.shards)

let mask_of_locs t locs =
  List.fold_left (fun m l -> m lor (1 lsl shard_of_loc t l)) 0 locs

let participants t (e : Event.exec) =
  (1 lsl home_of t e) lor mask_of_locs t e.reads lor mask_of_locs t e.writes

(* View-based variants over the decoded wire: same arithmetic on the
   view's scratch arrays, so the feeding domain (exec) and a draining
   shard (view) always reach the same verdict for the same event. *)
let mask_of_arr t arr n =
  let m = ref 0 in
  for i = 0 to n - 1 do
    m := !m lor (1 lsl shard_of_loc t arr.(i))
  done;
  !m

let home_of_view t (v : Event.view) =
  if v.Event.v_nwrites > 0 then shard_of_loc t v.Event.v_writes.(0)
  else if v.Event.v_nreads > 0 then shard_of_loc t v.Event.v_reads.(0)
  else v.Event.v_step mod t.shards

let participants_view t (v : Event.view) =
  (1 lsl home_of_view t v)
  lor mask_of_arr t v.Event.v_reads v.Event.v_nreads
  lor mask_of_arr t v.Event.v_writes v.Event.v_nwrites

let is_local mask = mask land (mask - 1) = 0

(* Iterate the set bits of a participant mask in ascending shard
   order — the canonical leg order the deadlock-freedom argument in
   [docs/forwarding-protocol.md] relies on. *)
let iter_shards mask f =
  let m = ref mask in
  let s = ref 0 in
  while !m <> 0 do
    if !m land 1 = 1 then f !s;
    incr s;
    m := !m lsr 1
  done
