(** The real two-domain DIFT runtime (paper §2.1, "Exploiting
    multicores").

    Where [Dift_multicore.Helper] {e simulates} the main-core /
    helper-core split with a cycle model, this module {e runs} it: the
    application executes in the calling OCaml 5 domain while a helper
    [Domain.t] consumes the forwarded event stream through a bounded
    {!Forwarder} channel and drives the shared taint engine
    ({!Dift_core.Engine} over {!Dift_core.Taint.Bool}).  The numbers
    it reports are wall-clock, not modelled cycles — the software
    proof that the paper's decoupled architecture keeps the
    application core running while tracking proceeds elsewhere.

    Because the channel is a FIFO and the VM's event stream is
    deterministic (seeded scheduling), the helper processes exactly
    the event sequence an inline engine would, so {!run} and
    {!run_inline} produce identical {!result}s — asserted by the
    cross-validation tests in [test/test_parallel.ml].

    Helper-side exceptions (from the engine or a client [on_sink]
    callback) abort the channel, so the application domain cannot
    deadlock on a full queue, and are re-raised from {!run} after the
    join. *)

open Dift_isa
open Dift_vm
open Dift_core

module Bool_engine : module type of Engine.Make (Taint.Bool)

(** The functional outcome of a tracked run — everything that must be
    identical between the parallel and the sequential runtime. *)
type result = {
  outcome : Event.outcome;
  events : int;  (** events the engine processed *)
  sources : int;  (** taint injections at input reads *)
  sink_hits : int;  (** sinks reached by tainted data *)
  sink_trace_hash : int;
      (** order-sensitive hash of every sink observation
          [(sink, taint, step)] *)
  tainted_locations : int;
  shadow_words : int;
  taint_fingerprint : int;
      (** hash of the full final shadow state (sorted location/taint
          pairs) *)
}

(** {1 Supervised outcomes}

    The [_result] runtimes ({!run_result}, {!run_sharded_result})
    never re-raise a failure: every shutdown leg — helper crash
    mid-drain, application crash mid-run, spawn failure, an injected
    channel fault, a {!Watchdog} deadline miss — joins every domain it
    started and comes back as a structured {!error}, so a driver can
    distinguish {e which} side failed and still read coherent partial
    statistics.  The classic {!run}/{!val-run_sharded} wrappers
    re-raise [e_exn] for compatibility. *)

(** Which leg of the protocol failed first. *)
type leg =
  [ `App  (** the application domain (including a trailing-flush
              failure on its side of the channel) *)
  | `Helper  (** the single helper domain of {!run} *)
  | `Shard of int  (** the first sharded helper that died of its own
                       exception (not of the [Shard_dead] cascade) *)
  | `Spawn  (** [Domain.spawn] itself failed; no run happened *)
  | `Deadline
    (** the {!Watchdog} detected a wedged seam and cascaded the
        shutdown; [e_exn] is {!Watchdog.Deadline_exceeded} naming the
        stalled seam, its frozen epoch and how long it was blocked.
        Whatever the legs then died of is in [e_secondary]. *) ]

(** Channel accounting at the moment the error was assembled — enough
    to reconcile how much work was fed, delivered and lost. *)
type partial = {
  p_events : int;  (** events accepted by the channel(s) *)
  p_batches : int;  (** batches actually delivered *)
  p_dropped_batches : int;  (** batches lost producer-side *)
  p_dropped_events : int;  (** events inside those batches *)
  p_wall_ns : int;  (** wall time since the runtime was entered *)
}

type error = {
  e_leg : leg;
  e_exn : exn;  (** the primary failure *)
  e_secondary : exn list;
      (** failures of the {e other} legs, observed while shutting
          down (e.g. the helper's cascade after an app crash) *)
  e_partial : partial;
}

(** One line: failing leg, primary exception, secondary count and the
    partial channel accounting. *)
val pp_error : error Fmt.t

(** How a run that lost its parallel plane was completed anyway
    ([~degrade:`Inline]): the failing leg and its exception, plus the
    resume point — [d_cutoff_step] is the step of the last event the
    parallel plane had fully processed ([-1] when nothing was: a spawn
    failure, or any sharded degrade, which always reruns from scratch)
    and [d_replayed_events] how many events the inline completion
    processed past it. *)
type degraded = {
  d_leg : leg;
  d_exn : exn;
  d_cutoff_step : int;
  d_replayed_events : int;
}

val pp_degraded : degraded Fmt.t

type report = {
  result : result;
  queue_capacity : int;  (** ring slots, in batches *)
  batch_size : int;  (** events per batch *)
  wire : Channel.wire;  (** forwarding-plane encoding of the run *)
  filtered_events : int;
      (** events dropped producer-side by the taint-liveness filter
          ([0] with the filter off); [result.events] already adds them
          back, so it counts whole-program events on every
          configuration *)
  batches : int;  (** ring messages actually delivered *)
  dropped_batches : int;
      (** batches lost producer-side (post-abort or injected); always
          [0] on a clean un-injected run *)
  dropped_events : int;  (** events inside [dropped_batches] *)
  producer_stalls : int;
      (** times the application domain blocked on a full ring *)
  consumer_waits : int;
      (** times the helper domain blocked on an empty ring *)
  main_wall_ns : int;  (** application-domain run time *)
  total_wall_ns : int;  (** until the helper joined *)
  degraded : degraded option;
      (** [Some _] iff the parallel plane failed and the run was
          completed by the degraded-mode inline replay; the [result]
          is then still bit-identical to {!run_inline}'s *)
}

type inline_report = {
  i_result : result;
  i_wall_ns : int;
}

(** [run program ~input] executes [program] in the current domain
    while a spawned helper domain performs the taint tracking.

    [queue_capacity] (default 64) and [batch_size] (default 64) shape
    the forwarding channel.  [on_sink] runs {e on the helper domain}
    for every sink event.  Exceptions raised helper-side are re-raised
    here after the application run completes.

    With [?obs], the run is fully instrumented into the registry: the
    VM's [vm.*] counters ({!Dift_vm.Obs_tool}), the engine's
    [core.engine.*]/[core.shadow.*] gauges, the channel's
    [parallel.ring.*]/[parallel.forwarder.*] metrics, and
    [parallel.helper.*] (busy/wall time, a [parallel.helper.batch]
    span over per-batch propagation latency, and a derived utilization
    percentage).  The registry may be snapshotted from any domain,
    including while the run is in flight.

    With [?trace], the run is recorded on an execution timeline
    ({!Dift_obs.Trace}) with one track per domain: the application
    track (named ["app"]) carries the [app.run] span and the
    producer's [ring.enqueue]/[ring.stall] spans, the helper track
    (named ["helper"]) carries the [helper.drain] envelope, one
    [engine.batch] span per propagated batch, the consumer's
    [ring.dequeue]/[ring.wait] spans, and the engine's shadow-footprint
    counter samples; both sides feed the [ring.occupancy] counter
    track.  Export with {!Dift_obs.Trace.write} after the run.

    [wire] picks the forwarding-plane encoding (default [`Coded]:
    interned sites and flat {!Codec} batches — zero allocation per
    forwarded event in the steady state; [`Boxed] forwards whole
    event records as before).  Both wires produce bit-identical
    reports.  With [~forward_filter:true], the application domain
    additionally drops events that provably cannot touch live taint
    (see {!Livefilter}); results stay bit-identical — only
    [filtered_events] and the forwarded volume change.  The filter
    stands down silently under [propagate_control].

    With [?chaos], every channel operation and the helper spawn
    consult the fault plan (see {!Chaos}); without it the runtime
    takes its ordinary direct path.

    With [?watchdog], every blocking seam publishes progress into the
    watchdog's table — ring parks as [parallel.push]/[parallel.pop],
    the spawn window as [spawn.helper], the join as [join.helper] —
    and the runtime registers its cascade hook (abort the channel), so
    a wedged peer is torn down after its deadline and surfaced as a
    [`Deadline] error instead of hanging the run (see {!Watchdog}).
    The caller creates and {!Watchdog.stop}s the watchdog; one
    watchdog supervises one run.

    With [~degrade:`Inline], a failure of any non-application leg
    (helper crash, spawn failure, deadline miss) no longer ends the
    run: the application domain re-executes the deterministic machine
    and completes the tracking through the retained engine, processing
    exactly the events past the last fully-processed batch boundary —
    the report comes back [Ok], flagged [degraded], with a [result]
    bit-identical to {!run_inline}'s.  A client [on_sink] callback
    then fires on the calling domain for the replayed suffix.  If the
    replay itself fails, the original error returns with the replay
    exception appended to [e_secondary].

    With [?flight], both domains record their recent structured
    events on the always-on flight recorder ({!Dift_obs.Flight}):
    the application ring is named ["app"] and carries [run.start],
    the channel's producer-side [ring.*] events and the final
    [run.done]/[run.error] marker; the helper ring is named
    ["helper"] and carries [helper.start], the consumer-side
    [ring.*] events and the engine's [engine.progress] milestones.
    Recording is bounded and never blocks — see
    [docs/observability.md].

    @raise Invalid_argument if [queue_capacity] or [batch_size] is
    [< 1]. *)
val run :
  ?config:Machine.config ->
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?watchdog:Watchdog.t ->
  ?degrade:[ `Inline ] ->
  ?queue_capacity:int ->
  ?batch_size:int ->
  ?wire:Channel.wire ->
  ?forward_filter:bool ->
  ?policy:Policy.t ->
  ?on_sink:(Engine.sink -> bool -> Event.exec -> unit) ->
  Program.t ->
  input:int array ->
  report

(** Supervised {!run}: identical on success; every failure leg joins
    the helper and returns a structured {!error} instead of raising.
    {!run} is [run_result] with [Error e] re-raised as [e.e_exn]. *)
val run_result :
  ?config:Machine.config ->
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?watchdog:Watchdog.t ->
  ?degrade:[ `Inline ] ->
  ?queue_capacity:int ->
  ?batch_size:int ->
  ?wire:Channel.wire ->
  ?forward_filter:bool ->
  ?policy:Policy.t ->
  ?on_sink:(Engine.sink -> bool -> Event.exec -> unit) ->
  Program.t ->
  input:int array ->
  (report, error) Stdlib.result

(** The sequential baseline: the same engine attached inline in the
    current domain, reported in the same shape.  [?obs] instruments
    the VM and engine as in {!run} (no [parallel.*] group — there is
    no channel); [?trace] records a single-track timeline ([app.run]
    span plus engine counter samples, all on the calling domain);
    [?flight] names the calling domain's recorder ring ["app"] and
    records the engine's [engine.progress] milestones on it. *)
val run_inline :
  ?config:Machine.config ->
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?policy:Policy.t ->
  ?on_sink:(Engine.sink -> bool -> Event.exec -> unit) ->
  Program.t ->
  input:int array ->
  inline_report

(** {1 The sharded N-helper runtime}

    {!run_sharded} generalises {!run} from one helper domain to [N]:
    a {!Router} partitions shadow memory across shards by block
    interleaving the {!Dift_vm.Loc} encoding, the application domain
    routes each forwarded event to the shards it touches over
    per-shard {!Forwarder} channels, and events spanning shards are
    resolved by {!Shard_engine}'s two-phase read-request/taint-reply
    exchange (or conservatively broadcast — see
    {!Shard_engine.route}).  Results merge deterministically at join:
    sharded(N), sharded(1), {!run} and {!run_inline} all produce the
    same {!result} — asserted kernel-by-kernel and property-tested in
    [test/test_sharded.ml]. *)

(** What {!run_sharded} reports on top of the merged {!result}:
    routing and exchange volume, plus per-shard activity. *)
type sharded_report = {
  s_result : result;  (** merged, comparable against {!run_inline} *)
  s_shards : int;
  s_route : Shard_engine.route;
  s_queue_capacity : int;  (** per-shard inbound ring slots *)
  s_batch_size : int;  (** events per inbound batch *)
  s_wire : Channel.wire;  (** forwarding-plane encoding of the run *)
  s_filtered_events : int;
      (** events dropped producer-side by the taint-liveness filter
          ([0] with the filter off); [s_result.events] already adds
          them back *)
  s_cross_events : int;  (** events that spanned shards *)
  s_exchange_messages : int;  (** taint vectors through the mesh *)
  s_per_shard : Shard_engine.shard_stat array;
  s_main_wall_ns : int;  (** application-domain run time *)
  s_total_wall_ns : int;  (** until the last shard joined *)
  s_degraded : degraded option;
      (** [Some _] iff the cluster failed and the run was completed by
          the degraded-mode inline replay (always a full rerun — no
          consistent cross-shard resume point exists mid-protocol);
          [s_result] is then still bit-identical to {!run_inline}'s *)
}

(** [run_sharded ~shards program ~input] executes [program] in the
    current domain while [shards] helper domains track taint, each
    owning a disjoint slice of shadow memory.

    [route] picks the cross-shard strategy (default [`Request_reply];
    that route rejects policies with [propagate_control] — use
    [`Broadcast] for control-flow tracking).  [block_bits] sets the
    interleaving granularity ({!Router.default_block_bits} aligns
    blocks with register frames).  [queue_capacity]/[batch_size]
    shape each shard's inbound channel and [xchg_capacity] each
    exchange ring.

    Unlike {!run}, [on_sink] fires on the {e calling} domain after the
    join, in global step order (the deterministic merge); the hash and
    counts in [s_result] are nevertheless bit-identical to the
    streaming runtimes.

    With [?obs], each shard's channel publishes under
    [parallel.shard<i>.*] alongside per-shard busy/wall/utilization
    gauges and the router's [parallel.router.cross_events]; with
    [?trace], each shard gets its own [shard-<i>] track of batch and
    ring spans next to the [app] track.

    [wire] and [forward_filter] behave as in {!run} ([`Coded] default;
    the filter keeps one liveness epoch per shard and stands down
    under [propagate_control]).

    With [?chaos], the fault plan is threaded through every shard's
    inbound channel, every exchange ring and the domain spawns (see
    {!Shard_engine.Make.cluster}).

    With [?watchdog], every blocking seam of the cluster publishes
    progress — feed rings ([parallel.shard<i>.push]/[.pop]), exchange
    rings ([xchg.<src>.<dst>.push]/[.pop]), spawn windows
    ([spawn.shard<i>]), the join fan-in ([join.shard<i>]) and a
    per-view work pulse ([work.shard<i>]) — and the cluster registers
    its cascade hooks in dependency order (each feed channel, then the
    mesh), so a wedged shard or exchange leg is torn down after its
    deadline and surfaced as a [`Deadline] error.  With
    [~degrade:`Inline], any non-application failure is completed by a
    {e full} inline rerun on a fresh engine (no consistent cross-shard
    resume point exists mid-protocol) — [Ok], flagged [s_degraded],
    bit-identical to {!run_inline}.

    With [?flight], the application ring (named ["app"]) records
    [run.start], producer-side [ring.*] events for every shard
    channel and the final [run.done]/[run.error] marker, and each
    shard ring (named ["shard-<i>"]) records [shard.start],
    consumer-side [ring.*] events, the exchange-mesh [xchg.*] legs,
    [engine.progress] milestones and — if the shard dies of its own
    exception — a terminal [shard.crash] event.

    @raise Invalid_argument if [shards], [queue_capacity] or
    [batch_size] is [< 1]. *)
val run_sharded :
  ?config:Machine.config ->
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?watchdog:Watchdog.t ->
  ?degrade:[ `Inline ] ->
  ?route:Shard_engine.route ->
  ?queue_capacity:int ->
  ?batch_size:int ->
  ?xchg_capacity:int ->
  ?block_bits:int ->
  ?wire:Channel.wire ->
  ?forward_filter:bool ->
  ?policy:Policy.t ->
  ?on_sink:(Engine.sink -> bool -> Event.exec -> unit) ->
  shards:int ->
  Program.t ->
  input:int array ->
  sharded_report

(** Supervised {!val-run_sharded}: identical on success; every failure
    (a shard's own crash, the [Shard_dead] cascade, an application
    crash, a spawn failure) joins all domains and returns a structured
    {!error} with the failing shard identified in [e_leg].
    {!val-run_sharded} is [run_sharded_result] with [Error e]
    re-raised as [e.e_exn]. *)
val run_sharded_result :
  ?config:Machine.config ->
  ?obs:Dift_obs.Registry.t ->
  ?trace:Dift_obs.Trace.t ->
  ?flight:Dift_obs.Flight.t ->
  ?chaos:Chaos.t ->
  ?watchdog:Watchdog.t ->
  ?degrade:[ `Inline ] ->
  ?route:Shard_engine.route ->
  ?queue_capacity:int ->
  ?batch_size:int ->
  ?xchg_capacity:int ->
  ?block_bits:int ->
  ?wire:Channel.wire ->
  ?forward_filter:bool ->
  ?policy:Policy.t ->
  ?on_sink:(Engine.sink -> bool -> Event.exec -> unit) ->
  shards:int ->
  Program.t ->
  input:int array ->
  (sharded_report, error) Stdlib.result

(** One-line summary of a sharded run (shard count, route, exchange
    volume, wall times); combine with {!pp_result} for the merged
    outcome. *)
val pp_sharded_report : sharded_report Fmt.t

(** {1 Baselines and comparisons} *)

(** Wall time of an uninstrumented run (the native baseline). *)
val native_wall_ns :
  ?config:Machine.config -> Program.t -> input:int array -> int

(** [speedup inline parallel]: inline wall time over parallel total
    wall time ([> 1.] when offloading wins). *)
val speedup : inline_report -> report -> float

(** Application-domain slowdown of the parallel run over an inline
    run ([< 1.] when the main domain finishes faster than inline —
    the paper's main-core overhead, wall-clock edition). *)
val main_ratio : inline_report -> report -> float

(** Outcome, event/source/sink counts and shadow footprint on one
    line. *)
val pp_result : result Fmt.t

(** Channel geometry, {!pp_result}, batch/stall/wait counts and wall
    times. *)
val pp_report : report Fmt.t

(** {!pp_result} plus the inline wall time. *)
val pp_inline_report : inline_report Fmt.t
