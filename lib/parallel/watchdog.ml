(** Deadline supervision over a {!Dift_obs.Progress} table; see the
    interface for the model and the false-positive argument. *)

(* -- deadlines ---------------------------------------------------------- *)

type deadlines = { default_ms : int; overrides : (string * int) list }

let deadlines ?(overrides = []) default_ms =
  if default_ms < 1 then
    invalid_arg (Fmt.str "Watchdog.deadlines: %d ms < 1" default_ms);
  List.iter
    (fun (pre, ms) ->
      if pre = "" then invalid_arg "Watchdog.deadlines: empty seam prefix";
      if ms < 1 then
        invalid_arg (Fmt.str "Watchdog.deadlines: %s = %d ms < 1" pre ms))
    overrides;
  { default_ms; overrides }

let deadlines_to_string d =
  String.concat ";"
    (string_of_int d.default_ms
    :: List.map (fun (pre, ms) -> Fmt.str "%s=%d" pre ms) d.overrides)

let deadlines_of_string s =
  let parts =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  match parts with
  | [] -> Error "empty deadline spec"
  | def :: rest -> (
      match int_of_string_opt def with
      | None -> Error (Fmt.str "bad default deadline %S (want ms)" def)
      | Some default_ms when default_ms < 1 ->
          Error (Fmt.str "default deadline %d ms < 1" default_ms)
      | Some default_ms ->
          let overrides =
            List.fold_left
              (fun acc part ->
                match acc with
                | Error _ -> acc
                | Ok os -> (
                    match String.index_opt part '=' with
                    | None ->
                        Error (Fmt.str "override %S: missing '='" part)
                    | Some i -> (
                        let pre = String.sub part 0 i in
                        let ms_s =
                          String.sub part (i + 1)
                            (String.length part - i - 1)
                        in
                        if pre = "" then
                          Error (Fmt.str "override %S: empty prefix" part)
                        else
                          match int_of_string_opt ms_s with
                          | Some ms when ms >= 1 -> Ok ((pre, ms) :: os)
                          | _ ->
                              Error
                                (Fmt.str "override %S: bad ms %S" part ms_s))))
              (Ok []) rest
          in
          Result.map
            (fun os -> { default_ms; overrides = List.rev os })
            overrides)

let prefix ~pre s =
  String.length pre <= String.length s
  && String.sub s 0 (String.length pre) = pre

let deadline_ms d seam =
  match List.find_opt (fun (pre, _) -> prefix ~pre seam) d.overrides with
  | Some (_, ms) -> ms
  | None -> d.default_ms

(* -- misses ------------------------------------------------------------- *)

type miss = {
  m_seam : string;
  m_epoch : int;
  m_blocked_ns : int;
  m_deadline_ns : int;
  m_armed : (string * int) list;
}

exception Deadline_exceeded of miss

let pp_miss ppf m =
  Fmt.pf ppf
    "deadline exceeded: seam %s blocked %.1f ms (deadline %.1f ms, epoch \
     %d); armed: %a"
    m.m_seam
    (float_of_int m.m_blocked_ns /. 1e6)
    (float_of_int m.m_deadline_ns /. 1e6)
    m.m_epoch
    Fmt.(list ~sep:comma (pair ~sep:(any "@") string int))
    m.m_armed

let () =
  Printexc.register_printer (function
    | Deadline_exceeded m -> Some (Fmt.str "%a" pp_miss m)
    | _ -> None)

(* -- the watchdog ------------------------------------------------------- *)

type seen = { mutable s_epoch : int; mutable s_since_ns : int }

type t = {
  w_deadlines : deadlines;
  w_progress : Dift_obs.Progress.t;
  w_sampler : Dift_obs.Sampler.t;
  w_owned : bool;
  mutable w_job : Dift_obs.Sampler.job option;
  w_fired : miss option Atomic.t;
  w_checks : int Atomic.t;
  w_lock : Mutex.t;
      (** serializes [check] (sampler job vs an explicit {!check_now})
          and guards [w_hooks] *)
  mutable w_hooks : (string * (unit -> unit)) list;  (** reversed *)
  w_flight : Dift_obs.Flight.t option;
  w_seen : (int, seen) Hashtbl.t;  (** keyed by [Progress.id]; only
                                       touched under [w_lock] *)
  mutable w_last_total : int;
  mutable w_total_since_ns : int;
}

let min_deadline_ms d =
  List.fold_left (fun a (_, ms) -> min a ms) d.default_ms d.overrides

(* Run the cascade: hooks whose name prefixes the stalled seam first
   (the channel the wedge sits on), then every other hook in
   registration (dependency) order.  All hooks are idempotent aborts,
   and each runs under its own handler so one failing hook cannot
   strand the rest of the teardown. *)
let cascade t m =
  let hooks = List.rev t.w_hooks in
  let hit, rest =
    List.partition (fun (name, _) -> prefix ~pre:name m.m_seam) hooks
  in
  List.iter
    (fun (name, f) ->
      (match t.w_flight with
      | Some fl ->
          Dift_obs.Flight.record fl ~cat:"watchdog" "watchdog.cascade"
            ~detail:name
      | None -> ());
      try f () with _ -> ())
    (hit @ rest)

let fire t m =
  Atomic.set t.w_fired (Some m);
  (match t.w_flight with
  | Some fl ->
      Dift_obs.Flight.record fl ~cat:"watchdog" "watchdog.miss"
        ~a:(m.m_blocked_ns / 1_000_000)
        ~b:(m.m_deadline_ns / 1_000_000)
        ~detail:m.m_seam
  | None -> ());
  cascade t m

(* One deadline check.  A leg misses its deadline iff it is armed
   (parked inside a blocking region), its own epoch has been frozen
   for at least its deadline, AND the global epoch sum has been frozen
   just as long — the global condition is what keeps legitimate waits
   (a consumer parked while the producer computes, a join armed while
   a helper drains) from ever firing: as long as {e anything} in the
   run ticks, no leg can miss.  Conversely, a genuine wedge freezes
   the whole table, and the armed leg names the seam. *)
let check t =
  if Atomic.get t.w_fired = None then begin
    Atomic.incr t.w_checks;
    let now = Dift_obs.Clock.now_ns () in
    let total = Dift_obs.Progress.total t.w_progress in
    if total <> t.w_last_total then begin
      t.w_last_total <- total;
      t.w_total_since_ns <- now
    end;
    let total_frozen_ns = now - t.w_total_since_ns in
    let worst = ref None in
    List.iter
      (fun leg ->
        let id = Dift_obs.Progress.id leg in
        let e = Dift_obs.Progress.epoch leg in
        match Hashtbl.find_opt t.w_seen id with
        | None -> Hashtbl.add t.w_seen id { s_epoch = e; s_since_ns = now }
        | Some s ->
            if e <> s.s_epoch then begin
              s.s_epoch <- e;
              s.s_since_ns <- now
            end
            else if e land 1 = 1 then begin
              let blocked_ns = now - s.s_since_ns in
              let deadline_ns =
                deadline_ms t.w_deadlines (Dift_obs.Progress.name leg)
                * 1_000_000
              in
              if blocked_ns >= deadline_ns && total_frozen_ns >= deadline_ns
              then
                match !worst with
                | Some (_, b, _) when b >= blocked_ns -> ()
                | _ -> worst := Some (leg, blocked_ns, deadline_ns)
            end)
      (Dift_obs.Progress.legs t.w_progress);
    match !worst with
    | None -> ()
    | Some (leg, blocked_ns, deadline_ns) ->
        let armed =
          List.filter_map
            (fun l ->
              if Dift_obs.Progress.armed l then
                Some
                  (Dift_obs.Progress.name l, Dift_obs.Progress.epoch l)
              else None)
            (Dift_obs.Progress.legs t.w_progress)
        in
        fire t
          {
            m_seam = Dift_obs.Progress.name leg;
            m_epoch = Dift_obs.Progress.epoch leg;
            m_blocked_ns = blocked_ns;
            m_deadline_ns = deadline_ns;
            m_armed = armed;
          }
  end

let check_locked t =
  Mutex.lock t.w_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.w_lock) (fun () -> check t)

let create ?obs ?flight ?sampler w_deadlines =
  let w_progress = Dift_obs.Progress.create () in
  let w_sampler, w_owned =
    match sampler with
    | Some s -> (s, false)
    | None -> (Dift_obs.Sampler.create (), true)
  in
  (* sample a few times per shortest deadline so a miss is detected
     within ~1.25x its deadline; clamp so sub-10ms deadlines don't
     spin the sampler and huge ones still stop promptly *)
  let interval_ms = max 2 (min 50 (min_deadline_ms w_deadlines / 4)) in
  let t =
    {
      w_deadlines;
      w_progress;
      w_sampler;
      w_owned;
      w_job = None;
      w_fired = Atomic.make None;
      w_checks = Atomic.make 0;
      w_lock = Mutex.create ();
      w_hooks = [];
      w_flight = flight;
      w_seen = Hashtbl.create 16;
      w_last_total = 0;
      w_total_since_ns = Dift_obs.Clock.now_ns ();
    }
  in
  t.w_job <-
    Some
      (Dift_obs.Sampler.add w_sampler ~name:"watchdog" ~interval_ms (fun () ->
           check_locked t));
  (match obs with
  | Some reg ->
      Dift_obs.Registry.gauge_fn reg "watchdog.checks"
        ~help:"deadline checks run" (fun () -> Atomic.get t.w_checks);
      Dift_obs.Registry.gauge_fn reg "watchdog.fired"
        ~help:"1 after a deadline miss" (fun () ->
          match Atomic.get t.w_fired with Some _ -> 1 | None -> 0);
      Dift_obs.Progress.register_obs t.w_progress reg
  | None -> ());
  t

let progress t = t.w_progress
let fired t = Atomic.get t.w_fired
let checks t = Atomic.get t.w_checks
let deadline_spec t = t.w_deadlines

let on_miss t ~name f =
  Mutex.lock t.w_lock;
  t.w_hooks <- (name, f) :: t.w_hooks;
  Mutex.unlock t.w_lock

let check_now t = check_locked t

let stop t =
  (* synchronous: after remove, no check is in flight *)
  (match t.w_job with
  | Some j ->
      t.w_job <- None;
      Dift_obs.Sampler.remove t.w_sampler j
  | None -> ());
  if t.w_owned then Dift_obs.Sampler.stop t.w_sampler
