(** Batched event forwarding over the {!Spsc} ring (paper §2.1); see
    the interface for the protocol. *)

open Dift_vm

type t = {
  ring : Event.exec array Spsc.t;
  batch_size : int;
  mutable buf : Event.exec array;  (** [[||]] when no batch is open *)
  mutable fill : int;
  mutable events : int;
  mutable batches : int;
  occupancy : Dift_obs.Registry.histogram option;
      (** events per pushed batch, when observability is on *)
  trace : Dift_obs.Trace.t option;
      (** execution timeline: enqueue/stall and dequeue/wait spans
          plus the ring-occupancy counter track *)
}

(* Power-of-two occupancy buckets up to the batch size: a full batch
   lands in the last real bucket, so the overflow bucket staying at
   zero is itself an invariant check. *)
let occupancy_buckets batch_size =
  let rec up acc b = if b >= batch_size then List.rev (batch_size :: acc)
    else up (b :: acc) (b * 2)
  in
  up [] 1

let create ?obs ?trace ~queue_capacity ~batch_size () =
  if batch_size < 1 then invalid_arg "Forwarder.create: batch_size < 1";
  let ring = Spsc.create ~capacity:queue_capacity in
  let occupancy =
    Option.map
      (fun reg ->
        let open Dift_obs in
        Registry.gauge_fn reg "parallel.ring.capacity_batches"
          ~help:"ring slots" (fun () -> Spsc.capacity ring);
        Registry.gauge_fn reg "parallel.ring.stalls"
          ~help:"producer blocked on a full ring" (fun () ->
            Spsc.producer_stalls ring);
        Registry.gauge_fn reg "parallel.ring.waits"
          ~help:"consumer blocked on an empty ring" (fun () ->
            Spsc.consumer_waits ring);
        Registry.gauge_fn reg "parallel.ring.drops"
          ~help:"batches dropped after abort" (fun () -> Spsc.dropped ring);
        Registry.histogram reg "parallel.forwarder.batch_occupancy"
          ~help:"events per pushed batch"
          ~buckets:(occupancy_buckets batch_size))
      obs
  in
  let t =
    {
      ring;
      batch_size;
      buf = [||];
      fill = 0;
      events = 0;
      batches = 0;
      occupancy;
      trace;
    }
  in
  (match obs with
  | Some reg ->
      let open Dift_obs in
      Registry.gauge_fn reg "parallel.forwarder.events"
        ~help:"events forwarded" (fun () -> t.events);
      Registry.gauge_fn reg "parallel.forwarder.batches"
        ~help:"batches pushed" (fun () -> t.batches)
  | None -> ());
  t

let events t = t.events
let batches t = t.batches
let producer_stalls t = Spsc.producer_stalls t.ring
let consumer_waits t = Spsc.consumer_waits t.ring
let dropped t = Spsc.dropped t.ring

(* Push one batch, recording the producer's side of the timeline: a
   span named [ring.stall] when the push parked on a full ring (a
   backpressure wave) and [ring.enqueue] otherwise, then a sample of
   the ring occupancy. *)
let traced_push t batch =
  match t.trace with
  | None -> Spsc.push t.ring batch
  | Some tr ->
      let open Dift_obs in
      let stalls0 = Spsc.producer_stalls t.ring in
      let t0 = Trace.now_ns tr in
      Spsc.push t.ring batch;
      let dur_ns = Trace.now_ns tr - t0 in
      let name =
        if Spsc.producer_stalls t.ring > stalls0 then "ring.stall"
        else "ring.enqueue"
      in
      Trace.complete_ns tr ~cat:"parallel" name ~start_ns:t0 ~dur_ns;
      Trace.counter tr ~cat:"parallel" "ring.occupancy"
        (Spsc.length t.ring)

let flush t =
  if t.fill > 0 then begin
    let batch =
      if t.fill = t.batch_size then t.buf else Array.sub t.buf 0 t.fill
    in
    (match t.occupancy with
    | Some h -> Dift_obs.Registry.observe h t.fill
    | None -> ());
    (* the consumer takes ownership of the array; open a fresh one *)
    t.buf <- [||];
    t.fill <- 0;
    t.batches <- t.batches + 1;
    traced_push t batch
  end

let add t e =
  if t.buf == [||] then t.buf <- Array.make t.batch_size e;
  t.buf.(t.fill) <- e;
  t.fill <- t.fill + 1;
  t.events <- t.events + 1;
  if t.fill = t.batch_size then flush t

let close t =
  flush t;
  Spsc.close t.ring

let abort t = Spsc.abort t.ring

(* Pop one batch, recording the consumer's side of the timeline: a
   span named [ring.wait] when the pop parked on an empty ring (a
   helper idle episode) and [ring.dequeue] otherwise, then a sample of
   the ring occupancy. *)
let traced_pop t =
  match t.trace with
  | None -> Spsc.pop t.ring
  | Some tr ->
      let open Dift_obs in
      let waits0 = Spsc.consumer_waits t.ring in
      let t0 = Trace.now_ns tr in
      let batch = Spsc.pop t.ring in
      let dur_ns = Trace.now_ns tr - t0 in
      let name =
        if Spsc.consumer_waits t.ring > waits0 then "ring.wait"
        else "ring.dequeue"
      in
      Trace.complete_ns tr ~cat:"parallel" name ~start_ns:t0 ~dur_ns;
      Trace.counter tr ~cat:"parallel" "ring.occupancy"
        (Spsc.length t.ring);
      batch

let drain ?(around_batch = fun k -> k ()) t ~f =
  let rec loop () =
    match traced_pop t with
    | None -> ()
    | Some batch ->
        around_batch (fun () -> Array.iter f batch);
        loop ()
  in
  loop ()
